package dlsbl_test

import (
	"fmt"

	"dlsbl"
)

// ExampleOptimal computes the optimal split of Algorithm 2.1 on the
// hand-checkable two-processor instance used throughout the test suite.
func ExampleOptimal() {
	in := dlsbl.Instance{Network: dlsbl.NCPFE, Z: 1, W: []float64{2, 3}}
	alloc, makespan, err := dlsbl.OptimalMakespan(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha = [%.4f %.4f], makespan = %.4f\n", alloc[0], alloc[1], makespan)
	// Output: alpha = [0.6667 0.3333], makespan = 1.3333
}

// ExampleMechanism_Run prices the same schedule with DLS-BL: each
// processor's utility equals its marginal contribution to shrinking the
// makespan.
func ExampleMechanism_Run() {
	mech := dlsbl.Mechanism{Network: dlsbl.NCPFE, Z: 1}
	out, err := mech.Run([]float64{2, 3}, []float64{2, 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("payments = [%.4f %.4f]\n", out.Payment[0], out.Payment[1])
	fmt.Printf("utilities = [%.4f %.4f]\n", out.Utility[0], out.Utility[1])
	// Output:
	// payments = [4.0000 1.6667]
	// utilities = [2.6667 0.6667]
}

// ExampleRunProtocol runs the full distributed mechanism with one
// processor broadcasting contradictory bids; the referee fines it and
// terminates the run.
func ExampleRunProtocol() {
	behaviors := make([]dlsbl.Behavior, 3)
	behaviors[1] = dlsbl.Equivocator
	out, err := dlsbl.RunProtocol(dlsbl.ProtocolConfig{
		Network:   dlsbl.NCPFE,
		Z:         0.2,
		TrueW:     []float64{1, 2, 3},
		Behaviors: behaviors,
		Fine:      30,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed=%v phase=%s\n", out.Completed, out.TerminatedIn)
	fmt.Printf("fines = [%.0f %.0f %.0f]\n", out.Fines[0], out.Fines[1], out.Fines[2])
	fmt.Printf("rewards = [%.0f %.0f %.0f]\n", out.Rewards[0], out.Rewards[1], out.Rewards[2])
	// Output:
	// completed=false phase=bidding
	// fines = [0 30 0]
	// rewards = [15 0 15]
}

// ExampleOptimalStarOrder shows the star-network extension: with
// heterogeneous links the service order matters, and children are
// optimally served fastest-link first.
func ExampleOptimalStarOrder() {
	s := dlsbl.StarInstance{
		Z: []float64{0.8, 0.1, 0.4},
		W: []float64{2, 2, 2},
	}
	order, _, makespan, err := dlsbl.OptimalStarOrder(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("serve children in order %v, makespan %.4f\n", order, makespan)
	// Output: serve children in order [1 2 0], makespan 0.8647
}
