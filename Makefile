# Development targets for the DLS-BL reproduction. Everything is plain
# `go` — the Makefile only names the invocations CI and humans repeat.

GO ?= go

.PHONY: all build test race race-service vet doccheck net-smoke net-trace trend ci serve bench-smoke bench-payments bench-faults bench-multiload bench-hotpath bench-pipeline bench-adversary bench-obs faults-soak fuzz-smoke fuzz-short cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Focused race gate over the concurrent subsystems: the service daemon
# (per-pool runners, queue backpressure, graceful drain, the 200-job
# load test) and the protocol's reliable transport. `race` subsumes it;
# this target exists for fast iteration on concurrency changes.
race-service:
	$(GO) test -race ./internal/service/... ./internal/protocol/...

# Doc-comment lint over the packages whose godoc is part of the repo's
# contract: every exported top-level symbol must carry a doc comment.
doccheck:
	$(GO) run ./cmd/doccheck ./internal/protocol ./internal/sig ./internal/netbus ./internal/bus

# The 3-process loopback deployment check: build dls-serve and dls-node,
# boot 1 driver + 2 workers over real UDP sockets, run a full round and
# assert bit-identical payments/transcript against the simulated bus
# (dls-serve -net-round's built-in parity verdict). Skips gracefully
# where loopback sockets are unavailable.
net-smoke:
	$(GO) test -run=TestNetSmokeMultiProcess -v -count=1 ./internal/netbus/

# The distributed-telemetry deployment check: the same 3-process
# loopback round, run with per-node telemetry enabled and dls-serve
# -net-trace, must produce one merged Chrome trace spanning all three
# OS processes (clock-aligned tracks, round-attributed datagram events)
# while the traced socket run's payments stay bit-identical to the
# untraced simulated-bus run.
net-trace:
	$(GO) test -run=TestNetTraceMultiProcess -v -count=1 ./internal/netbus/

# The full gate a change must pass before merging: build, vet, the
# doc-comment lint, the race-enabled test suite (which includes the
# service load test and the protocol transport under -race), the
# coverage floor, a short run of every fuzz target, the envelope
# hot-path benchmark (which doubles as the payment-parity and zero-alloc
# regression check), the pipelined-packing benchmark (which asserts the
# 1.3x-over-FIFO throughput target at batch depth >= 4), and the
# Byzantine adversary gate (targeted faults, framing, crashes and
# referee failover must all end with honest survivors paid), the
# multi-process loopback smoke, and the distributed-telemetry trace
# smoke (merged 3-process Chrome trace with payment parity intact).
ci: build vet doccheck race cover fuzz-short bench-hotpath bench-pipeline bench-adversary net-smoke net-trace

# Statement-coverage gate. The floor is set just under the measured
# suite-wide figure so a change that lands untested code fails loudly;
# raise it when coverage rises, never lower it to make a change fit.
# The profile lands under the git-ignored .cover/ so a coverage run
# never dirties the working tree.
COVER_FLOOR ?= 78.0
COVER_PROFILE ?= .cover/coverage.out
cover:
	@mkdir -p $(dir $(COVER_PROFILE))
	$(GO) test -count=1 -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# Ten seconds of every fuzz target: the mechanism engine against the
# naive baseline, envelope tampering, the DLT closed forms, the
# bid-session membership model, the binary payload codec differentially
# against JSON, the witness-report payload (binary/JSON differential on
# the accusation wire format), the netbus datagram receive path (decode
# totality + canonical re-encode fixpoint), and the installment round-ID
# grammar (parse/print fixed point).
fuzz-short:
	$(GO) test -run=NONE -fuzz=FuzzEngineParity -fuzztime=10s ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzEnvelopeTampering -fuzztime=10s ./internal/sig/
	$(GO) test -run=NONE -fuzz=FuzzOptimal -fuzztime=10s ./internal/dlt/
	$(GO) test -run=NONE -fuzz=FuzzLinear -fuzztime=10s ./internal/dlt/
	$(GO) test -run=NONE -fuzz=FuzzBidSessionMembership -fuzztime=10s ./internal/protocol/
	$(GO) test -run=NONE -fuzz=FuzzRoundRef -fuzztime=10s ./internal/protocol/
	$(GO) test -run=NONE -fuzz=FuzzPayloadCodec -fuzztime=10s ./internal/referee/
	$(GO) test -run=NONE -fuzz=FuzzWitnessReport -fuzztime=10s ./internal/referee/
	$(GO) test -run=NONE -fuzz=FuzzWireFrame -fuzztime=10s ./internal/netbus/

# Run the scheduling daemon with its demo pool on :8080. See the
# README's "Service mode" section for the client conversation.
serve:
	$(GO) run ./cmd/dls-serve

# Extended mixed-fault soak: the protocol under a combined drop/dup/
# delay/corrupt/reorder plan across many seeds, asserting fault-free
# payments every time. DLSBL_SOAK_ROUNDS picks the seed count.
faults-soak:
	DLSBL_SOAK_ROUNDS=250 $(GO) test -run=TestMixedFaultSoak -v ./internal/protocol/

# Fault-tolerant transport measurements → BENCH_FAULTS.json (sibling of
# BENCH_PAYMENTS.json), plus the zero-overhead guard benchmarks.
bench-faults:
	$(GO) test -run=NONE -bench='BroadcastReliable|ProtocolRun' -benchmem ./internal/bus/ ./internal/protocol/
	$(GO) run ./cmd/dls-bench -faults

# Amortized multi-load bidding vs per-job bidding → BENCH_MULTILOAD.json:
# wall time, bus traffic and the payment-parity check for k-job streams.
bench-multiload:
	$(GO) run ./cmd/dls-bench -multiload

# Envelope hot path → BENCH_HOTPATH.json: reuse-round ns/op legacy vs
# hot (binary codec + verify memo), payment parity across arms, the
# zero-alloc guards, and a sustained service soak (rounds/min, p99).
bench-hotpath:
	$(GO) run ./cmd/dls-bench -hotpath

# Pipelined cross-job packing vs the FIFO runner → BENCH_PIPELINE.json:
# the D×R sweep on the default m=16 pool, the live-protocol replay of
# the D=4, R=4 cell, and the meets_target verdict (speedup >= 1.3 at
# batch depth >= 4). Fails if the target is missed.
bench-pipeline:
	$(GO) run ./cmd/dls-bench -pipeline
	@grep -q '"meets_target": true' BENCH_PIPELINE.json || \
		{ echo "BENCH_PIPELINE.json missed the 1.3x throughput target"; exit 1; }

# Byzantine adversary tiers → BENCH_ADVERSARY.json: targeted per-pair
# fault plans around the corroboration threshold, a framing attack, a
# mid-run crash, and crash plus referee failover. The meets_target
# verdict requires every tier to end with honest survivors completing
# the round, no honest processor fined, and the tier's defensive outcome
# (eviction set, framing conviction, verified failover transcript) to
# hold. Fails loudly if any tier regresses.
bench-adversary:
	$(GO) run ./cmd/dls-bench -adversary
	@grep -q '"meets_target": true' BENCH_ADVERSARY.json || \
		{ echo "BENCH_ADVERSARY.json failed the adversary gate"; exit 1; }

# Fold every BENCH_*.json sibling report into TREND.json — the flat
# metric-point trajectory document dashboards diff across commits. Run
# the bench modes you care about first; the trend covers whatever
# reports exist and fails only when there are none.
trend:
	$(GO) run ./cmd/dls-bench -trend

# One iteration of every benchmark — catches bit-rot in the bench
# harness without paying for real measurements.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Real numbers for the payment hot path (the O(m) engine vs the naive
# O(m²) baseline) plus the machine-readable BENCH_PAYMENTS.json.
bench-payments:
	$(GO) test -run=NONE -bench='MechanismRun|PaymentEngineRunInto' -benchmem .
	$(GO) run ./cmd/dls-bench -json

# Tracer overhead guard: the nil-tracer path (every run without -trace)
# against a streaming NDJSON tracer, over a full protocol run. The nil
# path must stay within noise of the pre-tracer baseline.
bench-obs:
	$(GO) test -run=NONE -bench=BenchmarkTracerOverhead -benchmem ./internal/protocol/

# Short differential-fuzz pass of the engine against the naive path.
fuzz-smoke:
	$(GO) test -run=FuzzEngineParity -fuzz=FuzzEngineParity -fuzztime=10s ./internal/core/

clean:
	$(GO) clean ./...
