# Development targets for the DLS-BL reproduction. Everything is plain
# `go` — the Makefile only names the invocations CI and humans repeat.

GO ?= go

.PHONY: all build test race vet bench-smoke bench-payments fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark — catches bit-rot in the bench
# harness without paying for real measurements.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Real numbers for the payment hot path (the O(m) engine vs the naive
# O(m²) baseline) plus the machine-readable BENCH_PAYMENTS.json.
bench-payments:
	$(GO) test -run=NONE -bench='MechanismRun|PaymentEngineRunInto' -benchmem .
	$(GO) run ./cmd/dls-bench -json

# Short differential-fuzz pass of the engine against the naive path.
fuzz-smoke:
	$(GO) test -run=FuzzEngineParity -fuzz=FuzzEngineParity -fuzztime=10s ./internal/core/

clean:
	$(GO) clean ./...
