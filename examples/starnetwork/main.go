// Star network: the paper's future-work direction ("investigate other
// network architectures") realized — a single-level tree where each
// worker has its own link speed. Unlike the bus (Theorem 2.2), the
// service ORDER now changes the makespan; the classical result is to
// serve children fastest-link first, which this example verifies against
// exhaustive search and quantifies.
//
//	go run ./examples/starnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlsbl"
)

func main() {
	// A small cluster behind heterogeneous links: a fast LAN peer, two
	// mid-range nodes, and a slow WAN node — all equally fast CPUs, so
	// only the links differentiate them.
	s := dlsbl.StarInstance{
		RootW: 2.5, // the originator also computes (front end)
		Z:     []float64{0.05, 0.3, 0.3, 1.2},
		W:     []float64{2, 2, 2, 2},
	}

	fmt.Println("service-order study (RootW=2.5, w=2 everywhere, z varies):")
	order, alloc, best, err := dlsbl.OptimalStarOrder(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimal order (fastest link first): %v  → makespan %.4f\n", order, best)
	fmt.Printf("  root keeps α=%.4f; children receive %v\n", alloc.Root, fmtAlloc(alloc.Children))

	// Compare against the identity order and the worst order.
	idAlloc, err := dlsbl.OptimalStar(s)
	if err != nil {
		log.Fatal(err)
	}
	idMS, err := dlsbl.StarMakespan(s, idAlloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  identity order:                     [0 1 2 3]  → makespan %.4f\n", idMS)

	worstOrder, worstMS := findWorstOrder(s)
	fmt.Printf("  worst order (exhaustive):           %v  → makespan %.4f (%.1f%% worse than optimal)\n",
		worstOrder, worstMS, 100*(worstMS/best-1))

	// Exhaustive confirmation of the sequencing theorem.
	exOrder, exMS, err := dlsbl.ExhaustiveStarOrder(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exhaustive best:                    %v  → makespan %.4f\n", exOrder, exMS)

	// How much does ordering matter as link heterogeneity grows?
	fmt.Println("\nordering penalty vs link heterogeneity (m=6, w=2, z ∈ [z0, z0·spread]):")
	fmt.Printf("%8s %12s %12s %10s\n", "spread", "T(best)", "T(worst)", "penalty")
	rng := rand.New(rand.NewSource(4))
	for _, spread := range []float64{1, 2, 4, 8, 16} {
		var sumBest, sumWorst float64
		for trial := 0; trial < 20; trial++ {
			in := dlsbl.StarInstance{Z: make([]float64, 6), W: make([]float64, 6)}
			for i := range in.Z {
				in.Z[i] = 0.1 * (1 + rng.Float64()*(spread-1))
				in.W[i] = 2
			}
			_, _, b, err := dlsbl.OptimalStarOrder(in)
			if err != nil {
				log.Fatal(err)
			}
			_, w := findWorstOrderGeneric(in)
			sumBest += b
			sumWorst += w
		}
		fmt.Printf("%8.0fx %12.4f %12.4f %9.1f%%\n", spread, sumBest/20, sumWorst/20, 100*(sumWorst/sumBest-1))
	}
	fmt.Println("\nuniform links (spread 1x) reproduce the bus: order is irrelevant,")
	fmt.Println("exactly Theorem 2.2; heterogeneity is what makes sequencing matter.")
}

func fmtAlloc(a dlsbl.Allocation) string {
	out := "["
	for i, x := range a {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.4f", x)
	}
	return out + "]"
}

func findWorstOrder(s dlsbl.StarInstance) ([]int, float64) {
	return findWorstOrderGeneric(s)
}

func findWorstOrderGeneric(s dlsbl.StarInstance) ([]int, float64) {
	m := len(s.W)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	worst := -1.0
	var worstPerm []int
	var recurse func(k int)
	recurse = func(k int) {
		if k == m {
			inst, err := s.Permute(perm)
			if err != nil {
				log.Fatal(err)
			}
			alloc, err := dlsbl.OptimalStar(inst)
			if err != nil {
				log.Fatal(err)
			}
			ms, err := dlsbl.StarMakespan(inst, alloc)
			if err != nil {
				log.Fatal(err)
			}
			if ms > worst {
				worst = ms
				worstPerm = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return worstPerm, worst
}
