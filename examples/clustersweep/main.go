// Cluster sweep: the workload the paper's introduction motivates — a
// large data set split across a heterogeneous bus-connected cluster. The
// sweep shows how the optimal makespan and speedup scale with the number
// of processors and with the communication/computation ratio, where the
// naive splits fall behind, and where NCP-NFE distribution stops paying
// (the z ≥ w_m boundary).
//
//	go run ./examples/clustersweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlsbl"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	fmt.Println("speedup of the optimal split vs cluster size (z=0.1, w∈[1,4]):")
	fmt.Printf("%5s %12s %12s %12s %12s\n", "m", "CP", "NCP-FE", "NCP-NFE", "equal/opt")
	for _, m := range []int{2, 4, 8, 16, 32, 64} {
		w := make([]float64, m)
		for i := range w {
			w[i] = 1 + rng.Float64()*3
		}
		row := []float64{}
		var eqRatio float64
		for _, net := range dlsbl.Networks {
			in := dlsbl.Instance{Network: net, Z: 0.1, W: w}
			alloc, opt, err := dlsbl.OptimalMakespan(in)
			if err != nil {
				log.Fatal(err)
			}
			_ = alloc
			// Speedup vs the best single processor.
			best := -1.0
			for i := range w {
				solo := make(dlsbl.Allocation, m)
				solo[i] = 1
				ms, err := dlsbl.Makespan(in, solo)
				if err != nil {
					log.Fatal(err)
				}
				if best < 0 || ms < best {
					best = ms
				}
			}
			row = append(row, best/opt)
			if net == dlsbl.NCPFE {
				eq, err := dlsbl.Makespan(in, dlsbl.EqualSplit(m))
				if err != nil {
					log.Fatal(err)
				}
				eqRatio = eq / opt
			}
		}
		fmt.Printf("%5d %12.3f %12.3f %12.3f %12.3f\n", m, row[0], row[1], row[2], eqRatio)
	}

	fmt.Println("\nmakespan vs communication cost z (m=8, NCP-FE vs NCP-NFE):")
	w := []float64{1, 1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0}
	fmt.Printf("%6s %12s %12s %16s\n", "z", "NCP-FE", "NCP-NFE", "NFE distributes?")
	for _, z := range []float64{0.05, 0.2, 0.5, 1, 2, 3, 4} {
		fe := dlsbl.Instance{Network: dlsbl.NCPFE, Z: z, W: w}
		nfe := dlsbl.Instance{Network: dlsbl.NCPNFE, Z: z, W: w}
		_, msFE, err := dlsbl.OptimalMakespan(fe)
		if err != nil {
			log.Fatal(err)
		}
		_, msNFE, err := dlsbl.OptimalMakespan(nfe)
		if err != nil {
			log.Fatal(err)
		}
		distributes := "yes"
		if z >= w[len(w)-1] {
			distributes = "no (z ≥ w_m)"
		}
		fmt.Printf("%6.2f %12.4f %12.4f %16s\n", z, msFE, msNFE, distributes)
	}

	fmt.Println("\naffine extension: with per-transfer overhead it pays to use fewer processors:")
	fmt.Printf("%8s %6s %12s\n", "Scm", "used", "makespan")
	for _, scm := range []float64{0, 0.05, 0.2, 0.5, 1} {
		in := dlsbl.AffineInstance{
			Instance: dlsbl.Instance{Network: dlsbl.CP, Z: 0.1, W: w},
			Scm:      scm,
		}
		alloc, ms, err := dlsbl.OptimalAffine(in)
		if err != nil {
			log.Fatal(err)
		}
		used := 0
		for _, a := range alloc {
			if a > 1e-12 {
				used++
			}
		}
		fmt.Printf("%8.2f %6d %12.4f\n", scm, used, ms)
	}
}
