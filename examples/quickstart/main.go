// Quickstart: compute an optimal divisible-load schedule on a bus network
// without a control processor, then run the DLS-BL mechanism to price it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlsbl"
)

func main() {
	// Four processors on a bus: P1 originates the load and has a front
	// end (it computes while transmitting). w_i is the time to process
	// one unit of load; z the time to ship one unit over the bus.
	in := dlsbl.Instance{
		Network: dlsbl.NCPFE,
		Z:       0.2,
		W:       []float64{1.0, 1.5, 2.0, 2.5},
	}

	// Step 1 — the DLT layer: the optimal split equalizes every
	// processor's finishing time (Theorem 2.1).
	alloc, makespan, err := dlsbl.OptimalMakespan(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal allocation:")
	ft, err := dlsbl.FinishTimes(in, alloc)
	if err != nil {
		log.Fatal(err)
	}
	for i := range alloc {
		fmt.Printf("  P%d: w=%.2f  α=%.4f  finishes at %.4f\n", i+1, in.W[i], alloc[i], ft[i])
	}
	fmt.Printf("makespan: %.4f (every processor finishes simultaneously)\n\n", makespan)

	// Step 2 — draw it (the paper's Figure 2).
	chart, err := dlsbl.RenderFigure(in, dlsbl.GanttOptions{Width: 64, ShowBus: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)

	// Step 3 — the mechanism layer: with strategic owners, DLS-BL pays
	// each processor compensation + bonus so that truthful bidding and
	// full-speed execution maximize its profit.
	mech := dlsbl.Mechanism{Network: in.Network, Z: in.Z}
	out, err := mech.Run(in.W, dlsbl.TruthfulExec(in.W))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DLS-BL payments (everyone truthful):")
	for i := range out.Payment {
		fmt.Printf("  P%d: compensation=%.4f  bonus=%.4f  payment=%.4f  utility=%.4f\n",
			i+1, out.Compensation[i], out.Bonus[i], out.Payment[i], out.Utility[i])
	}
	fmt.Printf("user pays %.4f in total\n\n", out.UserCost)

	// Step 4 — the distributed protocol: the processors run the
	// mechanism themselves, with signed bids and a passive referee.
	res, err := dlsbl.RunProtocol(dlsbl.ProtocolConfig{
		Network: in.Network, Z: in.Z, TrueW: in.W, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLS-BL-NCP protocol completed: makespan %.4f, %d control messages (%d units), nobody fined\n",
		res.Makespan, res.BusStats.Messages, res.BusStats.Units)
}
