// Repeated jobs: a processor pool runs a stream of divisible-load jobs
// under DLS-BL-NCP. One processor cheats its payment vector in round 2;
// the referee fines it, and under a ban policy it forfeits every future
// bonus — reputation turns the paper's one-shot fine into an escalating
// deterrent. The run also prints the referee's hash-chained audit
// transcript for the offending round.
//
//	go run ./examples/repeatedjobs
package main

import (
	"fmt"
	"log"

	"dlsbl"
)

func main() {
	pool := &dlsbl.Session{
		Network: dlsbl.NCPFE,
		TrueW:   []float64{1.0, 1.5, 2.0, 2.5},
		Fine:    20,
		Policy:  dlsbl.BanDeviants,
	}

	jobs := make([]dlsbl.SessionJob, 6)
	for i := range jobs {
		jobs[i] = dlsbl.SessionJob{Z: 0.2, Seed: int64(i + 1)}
	}
	// Round 2 (index 1): P2 submits an inflated payment vector.
	jobs[1].Behaviors = []dlsbl.Behavior{{}, dlsbl.PaymentCheat}

	rep, err := pool.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("six jobs, P2 cheats its payment vector in job 2 (policy: ban-deviants):")
	fmt.Printf("%5s %10s %10s %10s %10s\n", "job", "U(P1)", "U(P2)", "U(P3)", "U(P4)")
	for r, out := range rep.Rounds {
		marker := ""
		if r == 1 {
			marker = "  ← cheat caught, fined 20"
		}
		if r > 1 {
			marker = "  (P2 banned)"
		}
		fmt.Printf("%5d %10.4f %10.4f %10.4f %10.4f%s\n",
			r+1, out.Utilities[0], out.Utilities[1], out.Utilities[2], out.Utilities[3], marker)
	}
	fmt.Printf("\ncumulative utilities: %v\n", formatVec(rep.CumulativeUtility))
	fmt.Printf("P2 banned after job %d\n\n", rep.BannedAfter[1]+1)

	// Compare against full honesty to price the deviation.
	honest := make([]dlsbl.SessionJob, 6)
	copy(honest, jobs)
	honest[1] = dlsbl.SessionJob{Z: 0.2, Seed: 2}
	hrep, err := pool.Run(honest)
	if err != nil {
		log.Fatal(err)
	}
	loss := hrep.CumulativeUtility[1] - rep.CumulativeUtility[1]
	fmt.Printf("what the single deviation cost P2 over 6 jobs: %.4f (fine 20 + forfeited bonuses %.4f)\n\n",
		loss, loss-20)

	// The referee's tamper-evident transcript of the offending round.
	fmt.Println("audit transcript of job 2:")
	for _, e := range rep.Rounds[1].Transcript {
		guilty := "-"
		if len(e.Guilty) > 0 {
			guilty = e.Guilty[0]
		}
		fmt.Printf("  [%02d] %-10s %-10s guilty=%-4s %.70s\n", e.Seq, e.Action, e.Phase, guilty, e.Detail)
	}
	if err := dlsbl.VerifyTranscript(rep.Rounds[1].Transcript); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transcript hash chain verifies ✓")
}

func formatVec(xs []float64) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.4f", x)
	}
	return out + "]"
}
