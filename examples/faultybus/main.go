// Faultybus: DLS-BL-NCP without the paper's reliability assumption.
//
// The paper specifies the protocol over a perfectly reliable
// atomic-broadcast bus. This example degrades that bus three ways and
// shows what the retry/eviction machinery delivers in exchange:
//
//  1. a lossy link (10% drop, 5% duplication) — the protocol completes
//     with payments IDENTICAL to the fault-free run, because
//     retransmission and nonce-deduplication make the faults invisible
//     to the economics;
//
//  2. a crashed processor — the survivors evict it, re-solve the
//     allocation over the reduced bid vector (Theorem 2.2: any subset is
//     still optimal) and finish; the referee's transcript records the
//     eviction as an audited availability failure, with no fine;
//
//  3. data-plane latency jitter — the realized makespan stretches while
//     the payments stay exactly put.
//
//     go run ./examples/faultybus
package main

import (
	"fmt"
	"log"

	"dlsbl"
)

func main() {
	base := dlsbl.ProtocolConfig{
		Network: dlsbl.NCPFE,
		Z:       0.2,
		TrueW:   []float64{1.0, 1.5, 2.0, 2.5},
		Seed:    1,
	}

	// Baseline: the reliable bus of the paper.
	clean, err := dlsbl.RunProtocol(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- reliable bus (the paper's assumption) --")
	fmt.Printf("completed: payments %v\n\n", fmtVec(clean.Payments))

	// 1. Lossy link: 10% drop + 5% duplication, absorbed by retries.
	lossy := base
	lossy.Faults = &dlsbl.FaultPlan{Seed: 42, Drop: 0.10, Duplicate: 0.05}
	out, err := dlsbl.RunProtocol(lossy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- lossy link: 10% drop, 5% duplication --")
	fmt.Printf("completed: payments %v\n", fmtVec(out.Payments))
	fmt.Printf("transport: %d retransmissions, %d timeouts, %d duplicate discards, %.0f backoff time\n",
		out.Fault.Retransmits, out.Fault.Timeouts, out.Fault.DupDiscards, out.Fault.BackoffTime)
	fmt.Printf("bus: %d deliveries dropped, %d duplicated\n", out.BusStats.Dropped, out.BusStats.Duplicated)
	same := true
	for i := range clean.Payments {
		if out.Payments[i] != clean.Payments[i] {
			same = false
		}
	}
	fmt.Printf("payments identical to the fault-free run: %v\n\n", same)

	// 2. A crashed processor: P3 is blackholed from the start.
	crashed := base
	crashed.Faults = &dlsbl.FaultPlan{Seed: 7, Unresponsive: []string{"P3"}}
	out, err = dlsbl.RunProtocol(crashed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- crashed processor: P3 unresponsive --")
	for _, ev := range out.Evictions {
		fmt.Printf("evicted %s in the %s phase: %s\n", ev.Proc, ev.Phase, ev.Reason)
	}
	fmt.Printf("survivors completed on the re-solved allocation: %v\n", fmtVec(out.Alloc))
	fmt.Printf("P3 fined: %.0f (an eviction is an availability failure, not an offense)\n", out.Fines[2])
	for _, e := range out.Transcript {
		if e.Action == "eviction" {
			fmt.Printf("audit entry #%d [%s]: %s\n", e.Seq, e.Action, e.Detail)
		}
	}
	if err := dlsbl.VerifyTranscript(out.Transcript); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash-chained transcript verifies\n\n")

	// 3. Data-plane jitter: transfers stretch, payments do not.
	jittery := base
	jittery.Faults = &dlsbl.FaultPlan{Seed: 5, JitterMax: 0.3}
	out, err = dlsbl.RunProtocol(jittery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- data-plane latency jitter: up to +0.3 per transfer --")
	fmt.Printf("makespan %.4f vs fault-free %.4f (+%.1f%%)\n",
		out.Makespan, clean.Makespan, 100*(out.Makespan/clean.Makespan-1))
	fmt.Printf("payments unchanged: %v\n", fmtVec(out.Payments))
}

func fmtVec(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", x)
	}
	return s + "]"
}
