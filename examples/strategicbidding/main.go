// Strategic bidding: sweep one processor's bid around its true value and
// watch its utility peak exactly at truth — the strategyproofness of
// Theorem 3.1, drawn as an ASCII curve for all three network classes.
//
//	go run ./examples/strategicbidding
package main

import (
	"fmt"
	"log"
	"strings"

	"dlsbl"
)

func main() {
	trueW := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	const deviator = 2 // P3 considers lying about its speed

	ratios := []float64{0.25, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0}

	for _, net := range dlsbl.Networks {
		mech := dlsbl.Mechanism{Network: net, Z: 0.2}
		pts, err := mech.BidSweep(trueW, deviator, ratios)
		if err != nil {
			log.Fatal(err)
		}
		var truthU, maxU float64
		for _, p := range pts {
			if p.Ratio == 1 {
				truthU = p.Utility
			}
			if p.Utility > maxU {
				maxU = p.Utility
			}
		}
		fmt.Printf("\n%s — P%d's utility as it scales its bid (true w=%.1f):\n",
			net, deviator+1, trueW[deviator])
		for _, p := range pts {
			bar := int(40 * p.Utility / maxU)
			if bar < 0 {
				bar = 0
			}
			marker := " "
			if p.Ratio == 1 {
				marker = "← truth"
			}
			fmt.Printf("  b/t=%.2f  U=%8.4f |%s%s| %s\n",
				p.Ratio, p.Utility, strings.Repeat("█", bar), strings.Repeat(" ", 40-bar), marker)
		}
		if truthU >= maxU-1e-12 {
			fmt.Printf("  → truth-telling is optimal (Theorem 3.1 holds on %s)\n", net)
		} else {
			fmt.Printf("  → VIOLATION: some lie beats truth by %g\n", maxU-truthU)
		}
	}

	// Slacking is equally unprofitable: executing slower than bid shrinks
	// the bonus one-for-one with the makespan damage.
	fmt.Println("\nNCP-FE — P3's utility as it slacks (truthful bid, w̃/t sweep):")
	mech := dlsbl.Mechanism{Network: dlsbl.NCPFE, Z: 0.2}
	execPts, err := mech.ExecSweep(trueW, deviator, []float64{1, 1.25, 1.5, 2, 3}, dlsbl.WithVerification)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range execPts {
		fmt.Printf("  w̃/t=%.2f  U=%8.4f\n", p.Ratio, p.Utility)
	}
	fmt.Println("  → full-speed execution is optimal (mechanism with verification)")
}
