// Cheater detection: inject every deviation class Section 4 of the paper
// enumerates into a full DLS-BL-NCP run and watch the referee catch it —
// the deviant is fined F, the informers split the proceeds, and deviation
// never pays (Lemma 5.1, Lemma 5.2, Theorem 5.1).
//
//	go run ./examples/cheaterdetection
package main

import (
	"fmt"
	"log"
	"strings"

	"dlsbl"
)

func main() {
	trueW := []float64{1.0, 1.5, 2.0, 2.5}

	baseline, err := run(trueW, -1, dlsbl.Honest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline (everyone honest):")
	for i, u := range baseline.Utilities {
		fmt.Printf("  P%d utility %8.4f\n", i+1, u)
	}

	fmt.Printf("\n%-26s %-6s %-11s %-12s %12s %12s\n",
		"deviation", "proc", "caught in", "fined", "utility", "honest U")
	for _, b := range dlsbl.DeviantCatalog {
		// Originator-only deviations go on P1 (the NCP-FE originator),
		// the rest on P2.
		idx := 1
		if b.MisallocateExtraBlocks != 0 || b.TamperBlocks || b.RefuseMediation {
			idx = 0
		}
		out, err := run(trueW, idx, b)
		if err != nil {
			log.Fatal(err)
		}
		var fined []string
		for i, f := range out.Fines {
			if f > 0 {
				fined = append(fined, fmt.Sprintf("P%d", i+1))
			}
		}
		caught := "completed"
		if !out.Completed {
			caught = out.TerminatedIn
		}
		finedLabel := strings.Join(fined, "+")
		if finedLabel == "" {
			finedLabel = "nobody"
		}
		fmt.Printf("%-26s %-6s %-11s %-12s %12.4f %12.4f\n",
			b.Name, fmt.Sprintf("P%d", idx+1), caught, finedLabel,
			out.Utilities[idx], baseline.Utilities[idx])
	}

	fmt.Println("\nevery finable deviation lands on the deviant; the cooperative")
	fmt.Println("short-shipper is remediated through the referee without a fine,")
	fmt.Println("exactly as the paper's mediation procedure specifies — and no")
	fmt.Println("deviation beats honest utility.")
}

func run(trueW []float64, idx int, b dlsbl.Behavior) (*dlsbl.ProtocolOutcome, error) {
	behaviors := make([]dlsbl.Behavior, len(trueW))
	if idx >= 0 {
		behaviors[idx] = b
	}
	return dlsbl.RunProtocol(dlsbl.ProtocolConfig{
		Network:   dlsbl.NCPFE,
		Z:         0.2,
		TrueW:     trueW,
		Behaviors: behaviors,
		Seed:      3,
	})
}
