// Hierarchies and result collection: the two DLT refinements every real
// deployment runs into. First, organizing workers into a multi-level tree
// (solved by the equivalent-processor reduction) and seeing when it beats
// a flat star; second, paying for the results to come back over the same
// one-port bus, where the paper's equal-finish optimality no longer holds.
//
//	go run ./examples/hierarchies
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlsbl"
)

func main() {
	// ---- Part 1: a 13-processor, two-level tree ----
	// The root heads two clusters of 4 over moderately fast links; each
	// cluster head redistributes over its own port. Four more workers
	// hang directly off the root.
	cluster := func(headW float64) *dlsbl.Tree {
		head := &dlsbl.Tree{W: headW, Z: 0.15}
		for i := 0; i < 3; i++ {
			head.Children = append(head.Children, &dlsbl.Tree{W: 2 + 0.5*float64(i), Z: 0.05})
		}
		return head
	}
	root := &dlsbl.Tree{W: 2}
	root.Children = append(root.Children, cluster(2.2), cluster(1.8))
	for i := 0; i < 4; i++ {
		root.Children = append(root.Children, &dlsbl.Tree{W: 3, Z: 0.1})
	}

	alloc, makespan, err := dlsbl.OptimalTree(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-level tree: %d processors, depth %d\n", root.Size(), root.Depth())
	fmt.Printf("  unit-load makespan %.4f\n", makespan)
	fmt.Printf("  root keeps α=%.4f; cluster heads get α=%.4f and α=%.4f (incl. their subtrees: see below)\n",
		alloc[0], alloc[1], alloc[5])
	var sum float64
	for _, a := range alloc {
		sum += a
	}
	fmt.Printf("  fractions sum to %.9f across all %d nodes\n\n", sum, len(alloc))

	// Collapse each cluster into its equivalent processor and check the
	// self-similarity that powers the reduction.
	eq, err := root.Children[0].EquivalentW()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster 1 behaves exactly like one processor with w_eq=%.4f\n\n", eq)

	// ---- Part 2: result collection ----
	// Same bus workload, but now every processor ships δ·α_i of results
	// back. The equal-finish split stops being optimal: retuning staggers
	// the finishes so returns overlap late computations.
	rng := rand.New(rand.NewSource(2))
	in := dlsbl.Instance{Network: dlsbl.CP, Z: 0.25, W: []float64{1, 1.5, 2, 2.5, 3}}
	base, err := dlsbl.Optimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %14s %14s %14s\n", "delta", "equal-finish", "tuned (FIFO)", "gain")
	for _, delta := range []float64{0.25, 0.5, 1, 2} {
		c := dlsbl.CollectInstance{Instance: in, Delta: delta}
		equal, err := dlsbl.CollectMakespan(c, base, dlsbl.FIFO)
		if err != nil {
			log.Fatal(err)
		}
		_, tuned, err := dlsbl.TuneCollection(c, base, dlsbl.FIFO, 600, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %14.4f %14.4f %13.1f%%\n", delta, equal, tuned, 100*(1-tuned/equal))
	}
	fmt.Println("\nthe heavier the results, the more the paper's equal-finish rule")
	fmt.Println("(Theorem 2.1) overpays — it is specifically a no-collection property.")
}
