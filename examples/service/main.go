// Service mode: the scheduling daemon end-to-end, in one process. The
// example starts a service.Server on a loopback port, creates two pools
// over HTTP, streams a batch of jobs against each (one batch includes a
// payment cheat, so the ban policy fires), and reads /metrics — the same
// conversation a remote client would have with a deployed dls-serve.
//
//	go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"dlsbl/internal/service"
)

func main() {
	srv := service.New(service.Config{Workers: 4, QueueDepth: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("dls-serve speaking on %s\n\n", base)

	// Two pools: "alpha" forgives, "beta" bans deviants.
	for _, spec := range []string{
		`{"name":"alpha","network":"ncp-fe","w":[1,1.5,2,2.5]}`,
		`{"name":"beta","network":"ncp-fe","w":[2,3,4,5,6],"policy":"ban-deviants"}`,
	} {
		post(base+"/v1/pools", spec)
	}

	// Stream jobs against both pools concurrently; the per-pool runners
	// overlap while each pool's own rounds stay serialized.
	var wg sync.WaitGroup
	for _, body := range []string{
		`{"pool":"alpha","jobs":[{"z":0.2,"seed":1},{"z":0.2,"seed":2},{"z":0.3,"seed":3}]}`,
		`{"pool":"beta","jobs":[
			{"z":0.2,"seed":10},
			{"z":0.2,"seed":11,"behaviors":["","payment-cheat-2x"]},
			{"z":0.2,"seed":12}]}`,
	} {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewBufferString(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var rec struct {
					Event    string    `json:"event"`
					Pool     string    `json:"pool"`
					Job      int       `json:"job"`
					Payments []float64 `json:"payments"`
					Fines    []float64 `json:"fines"`
					Banned   []string  `json:"banned"`
				}
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					log.Fatal(err)
				}
				switch rec.Event {
				case "result":
					fmt.Printf("[%s] job %d: payments=%.3f fines=%.1f banned=%v\n",
						rec.Pool, rec.Job, rec.Payments, rec.Fines, rec.Banned)
				case "done":
					fmt.Printf("[%s] batch done\n", rec.Pool)
				}
			}
		}(body)
	}
	wg.Wait()

	// The warm pools: the second batch against a pool reuses its cached
	// keypairs, so only the first round of each pool paid key generation.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmetrics: %d submitted, %d completed, p99 run %.1f ms\n",
		m.Jobs.Submitted, m.Jobs.Completed, m.LatencyMS.Run.P99)
	for _, p := range m.Pools {
		fmt.Printf("  pool %-5s rounds=%d warm_keys=%d banned=%v cumulative=%.2f\n",
			p.Name, p.Rounds, p.WarmKeys, p.Banned, p.CumulativeUtility)
	}

	srv.Close()
	_ = httpSrv.Close()
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}
