// Benchmark harness: one bench per reproduced paper artifact (E1…E12,
// matching DESIGN.md §4), plus the ablation micro-benches DESIGN.md §5
// calls out (closed form vs bisection solver, signature costs, protocol
// scaling). Run with:
//
//	go test -bench=. -benchmem
package dlsbl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsbl"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/experiments"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// benchExperiment runs a registered experiment end-to-end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(42); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One bench per paper artifact ----

func BenchmarkE1FigureCP(b *testing.B)               { benchExperiment(b, "E1") }
func BenchmarkE2FigureNCPFE(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3FigureNCPNFE(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4SimultaneousFinish(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5OrderInvariance(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Strategyproofness(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7VoluntaryParticipation(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8Compliance(b *testing.B)             { benchExperiment(b, "E8") }
func BenchmarkE9FinesOnlyDeviants(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10CommComplexity(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Baselines(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12Verification(b *testing.B)          { benchExperiment(b, "E12") }

// Extension experiments (DESIGN.md §4, X-series).
func BenchmarkX1StarSequencing(b *testing.B)      { benchExperiment(b, "X1") }
func BenchmarkX2Coalitions(b *testing.B)          { benchExperiment(b, "X2") }
func BenchmarkX3Frugality(b *testing.B)           { benchExperiment(b, "X3") }
func BenchmarkX4Topologies(b *testing.B)          { benchExperiment(b, "X4") }
func BenchmarkX5MultiRound(b *testing.B)          { benchExperiment(b, "X5") }
func BenchmarkX6StarMechanism(b *testing.B)       { benchExperiment(b, "X6") }
func BenchmarkX7LinearMechanism(b *testing.B)     { benchExperiment(b, "X7") }
func BenchmarkX8ResultCollection(b *testing.B)    { benchExperiment(b, "X8") }
func BenchmarkX9TreeNetworks(b *testing.B)        { benchExperiment(b, "X9") }
func BenchmarkX10Dynamics(b *testing.B)           { benchExperiment(b, "X10") }
func BenchmarkX11Decentralization(b *testing.B)   { benchExperiment(b, "X11") }
func BenchmarkX12AffineMechanism(b *testing.B)    { benchExperiment(b, "X12") }
func BenchmarkX13CostlyVerification(b *testing.B) { benchExperiment(b, "X13") }
func BenchmarkX14RepeatedPlay(b *testing.B)       { benchExperiment(b, "X14") }
func BenchmarkX15TwoParam(b *testing.B)           { benchExperiment(b, "X15") }
func BenchmarkX18Pipeline(b *testing.B)           { benchExperiment(b, "X18") }

// ---- Ablation: closed-form allocation vs independent bisection solver ----

func benchInstance(net dlt.Network, m int) dlt.Instance {
	rng := rand.New(rand.NewSource(int64(m)))
	return dlt.RandomInstance(rng, net, m, 0.5, 8, 0.02, 0.49)
}

func BenchmarkOptimalClosedForm(b *testing.B) {
	for _, m := range []int{8, 64, 512} {
		in := benchInstance(dlt.NCPFE, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dlt.Optimal(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptimalBisection(b *testing.B) {
	for _, m := range []int{8, 64, 512} {
		in := benchInstance(dlt.NCPFE, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dlt.SolveBisect(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Mechanism and protocol scaling ----

func BenchmarkMechanismRun(b *testing.B) {
	// m = 512 and m = 4096 exercise the regime where the naive O(m²)
	// path is unusable and the raw product recursion used to underflow;
	// the O(m) engine must scale ~linearly through them.
	for _, m := range []int{4, 16, 64, 512, 4096} {
		in := benchInstance(dlt.NCPFE, m)
		mech := core.Mechanism{Network: dlt.NCPFE, Z: in.Z}
		exec := core.TruthfulExec(in.W)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in.W, exec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMechanismRunNaive is the pre-engine per-agent re-solve kept
// for differential testing — the baseline the O(m) engine is measured
// against.
func BenchmarkMechanismRunNaive(b *testing.B) {
	for _, m := range []int{4, 16, 64, 512} {
		in := benchInstance(dlt.NCPFE, m)
		mech := core.Mechanism{Network: dlt.NCPFE, Z: in.Z}
		exec := core.TruthfulExec(in.W)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mech.RunNaive(in.W, exec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPaymentEngineRunInto is the steady-state hot path: a warm
// engine writing into a reused Outcome. Allocs/op must report 0.
func BenchmarkPaymentEngineRunInto(b *testing.B) {
	for _, m := range []int{4, 64, 512, 4096} {
		in := benchInstance(dlt.NCPFE, m)
		exec := core.TruthfulExec(in.W)
		eng := core.NewPaymentEngine(dlt.NCPFE, in.Z)
		var out core.Outcome
		if err := eng.RunInto(in.W, exec, core.WithVerification, &out); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.RunInto(in.W, exec, core.WithVerification, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProtocolHonest(b *testing.B) {
	for _, m := range []int{4, 16, 64} {
		in := benchInstance(dlt.NCPFE, m)
		cfg := protocol.Config{Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Seed: 1, NBlocks: 8 * m}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			var units int
			for i := 0; i < b.N; i++ {
				out, err := protocol.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				units = out.BusStats.Units
			}
			b.ReportMetric(float64(units), "msg-units")
		})
	}
}

func BenchmarkSchedule(b *testing.B) {
	in := benchInstance(dlt.NCPFE, 64)
	a, err := dlt.Optimal(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dlt.Schedule(in, a); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Crypto substrate costs ----

func BenchmarkSealAndVerify(b *testing.B) {
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(1))
	if err != nil {
		b.Fatal(err)
	}
	reg := sig.NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		b.Fatal(err)
	}
	payload := map[string]float64{"bid": 2.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := sig.Seal(k, "bid", payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Verify(reg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Facade sanity bench (also exercises the public API) ----

func BenchmarkFacadeOptimal(b *testing.B) {
	in := dlsbl.Instance{Network: dlsbl.NCPFE, Z: 0.2, W: []float64{1, 1.5, 2, 2.5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dlsbl.OptimalMakespan(in); err != nil {
			b.Fatal(err)
		}
	}
}
