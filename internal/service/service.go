// Package service is the long-running scheduling daemon over the
// DLS-BL-NCP machinery: the path from a one-shot reproduction to the
// ROADMAP's heavy-traffic north star. A Server owns named processor
// pools, each a persistent session (internal/session) whose reputation
// state and warm Ed25519 keyring survive between jobs, and runs submitted
// jobs through a bounded worker pool.
//
// Concurrency model:
//
//   - every pool has ONE runner goroutine consuming the pool's FIFO, so
//     jobs against the same pool serialize — the reputation state and the
//     ban bookkeeping evolve exactly as a sequential session.Run would
//     evolve them, and per-job payments are bit-identical to a direct
//     protocol.Run with the same seed;
//   - runners for DISTINCT pools execute concurrently, bounded by a
//     server-wide worker semaphore (Config.Workers);
//   - admission is backpressured: when the queued-job count would exceed
//     Config.QueueDepth the submission is rejected whole with
//     ErrQueueFull (HTTP 429), never partially admitted;
//   - Close drains: queued and in-flight jobs finish, new submissions are
//     refused with ErrClosed (HTTP 503), and Close returns only when
//     every runner has exited.
//
// The warm keyring is the service's main economy of scale: Ed25519 key
// generation dominates a cold protocol run, so a pool pays it once per
// identity on its first round and never again (see sig.Keyring).
package service

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/pipeline"
)

// Errors the admission path reports; the HTTP layer maps them to status
// codes (404, 429, 503).
var (
	ErrUnknownPool = errors.New("service: unknown pool")
	ErrQueueFull   = errors.New("service: job queue full")
	ErrClosed      = errors.New("service: server is shutting down")
)

// Config sizes the server.
type Config struct {
	// Workers bounds the number of protocol runs executing at once across
	// all pools. Zero selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-yet-started jobs
	// across all pools; admissions beyond it fail with ErrQueueFull.
	// Zero selects 256.
	QueueDepth int
	// Logger receives the server's structured event log (pool lifecycle,
	// admissions, rejections, per-job completions, drain). Nil discards —
	// the library default stays silent; dls-serve passes its slog root.
	Logger *slog.Logger
}

// Server is the scheduling service.
type Server struct {
	workers    int
	queueDepth int
	sem        chan struct{} // worker slots
	metrics    *metrics
	log        *slog.Logger

	mu     sync.Mutex
	pools  map[string]*Pool
	closed bool

	queued  atomic.Int64 // jobs admitted and not yet picked up by a runner
	runners sync.WaitGroup

	// testHookBeforeRun, when set, runs on the pool runner after a task
	// leaves the queue and before it takes a worker slot. Tests use it to
	// hold a runner in a deterministic spot.
	testHookBeforeRun func(p *Pool, t *Task)
	// testHookDuringRun, when set, runs on the pool runner inside the
	// worker-slot section, after the running-jobs gauge is raised and
	// before the round executes. Tests use it to pin cross-pool
	// concurrency deterministically (rounds are now fast enough that two
	// runners rarely overlap by accident on a small box).
	testHookDuringRun func(p *Pool, t *Task)
}

// New creates a server. Pools are added with CreatePool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		sem:        make(chan struct{}, cfg.Workers),
		metrics:    newMetrics(),
		log:        cfg.Logger,
		pools:      make(map[string]*Pool),
	}
}

// CreatePool registers a new named pool and starts its runner. The pool
// begins with a clean reputation record and a cold keyring; its first
// round warms the ring.
func (s *Server) CreatePool(spec PoolSpec) (*Pool, error) {
	p, err := newPool(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.pools[p.spec.Name]; dup {
		return nil, fmt.Errorf("service: pool %q already exists", p.spec.Name)
	}
	s.pools[p.spec.Name] = p
	s.runners.Add(1)
	go s.runPool(p)
	s.log.Info("pool created",
		"pool", p.spec.Name, "network", p.network.String(),
		"policy", p.policy.String(), "m", len(p.sess.TrueW),
		"multiload", p.spec.Multiload)
	return p, nil
}

// Pool looks a pool up by name.
func (s *Server) Pool(name string) (*Pool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[name]
	return p, ok
}

// PoolNames returns the registered pool names (unordered).
func (s *Server) PoolNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.pools))
	for n := range s.pools {
		names = append(names, n)
	}
	return names
}

// reserve claims n queue slots, all or nothing.
func (s *Server) reserve(n int) bool {
	for {
		cur := s.queued.Load()
		if cur+int64(n) > int64(s.queueDepth) {
			return false
		}
		if s.queued.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// Submit admits jobs against a pool in FIFO order and returns one Task
// per job; results arrive on each Task as its round completes. The whole
// batch is admitted or none of it: a submission that would overflow the
// queue fails with ErrQueueFull and leaves the queue untouched. Artifact
// names ("timeline", "transcript", "verdicts") select per-job artifacts
// embedded in the results.
func (s *Server) Submit(pool string, jobs []JobSpec, artifacts []string) ([]*Task, error) {
	if len(jobs) == 0 {
		return nil, errors.New("service: empty job list")
	}
	arts, err := parseArtifacts(artifacts)
	if err != nil {
		return nil, err
	}
	// Behavior names are resolved at admission so a typo fails the whole
	// submission up front, not job k of n mid-stream.
	for i, spec := range jobs {
		if _, err := spec.toJob(); err != nil {
			return nil, fmt.Errorf("service: job %d: %w", i, err)
		}
	}
	p, ok := s.Pool(pool)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPool, pool)
	}
	if !s.reserve(len(jobs)) {
		s.metrics.rejected(len(jobs))
		s.log.Warn("submission rejected",
			"pool", pool, "jobs", len(jobs),
			"queued", s.queued.Load(), "depth", s.queueDepth)
		return nil, fmt.Errorf("%w: %d queued, depth %d", ErrQueueFull, s.queued.Load(), s.queueDepth)
	}
	now := time.Now()
	tasks := make([]*Task, len(jobs))
	for i, spec := range jobs {
		tasks[i] = &Task{
			pool:      p,
			spec:      spec,
			artifacts: arts,
			index:     i,
			enqueued:  now,
			done:      make(chan struct{}),
		}
	}
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		s.queued.Add(int64(-len(jobs)))
		return nil, ErrClosed
	}
	p.fifo = append(p.fifo, tasks...)
	p.cond.Broadcast()
	p.mu.Unlock()
	s.metrics.submitted(len(jobs))
	s.log.Info("jobs submitted", "pool", pool, "jobs", len(jobs))
	return tasks, nil
}

// runPool is a pool's runner: it consumes the pool FIFO one task at a
// time (per-pool serialization), taking a server-wide worker slot for the
// duration of each protocol run (cross-pool bound). On a pipelined pool
// (PipelineDepth > 1) it dequeues up to that many queued tasks in one
// grab instead, so the batch can share a packed bus schedule. It exits
// once the server is closing and the FIFO has drained.
func (s *Server) runPool(p *Pool) {
	defer s.runners.Done()
	grab := 1
	if p.spec.PipelineDepth > 1 {
		grab = p.spec.PipelineDepth
	}
	for {
		p.mu.Lock()
		for len(p.fifo) == 0 && !p.closing {
			p.cond.Wait()
		}
		if len(p.fifo) == 0 {
			p.mu.Unlock()
			return
		}
		n := grab
		if n > len(p.fifo) {
			n = len(p.fifo)
		}
		batch := p.fifo[:n:n]
		p.fifo = p.fifo[n:]
		p.mu.Unlock()
		s.queued.Add(int64(-n))
		for _, t := range batch {
			if h := s.testHookBeforeRun; h != nil {
				h(p, t)
			}
		}
		s.sem <- struct{}{}
		s.metrics.runStarted()
		for _, t := range batch {
			if h := s.testHookDuringRun; h != nil {
				h(p, t)
			}
			s.runTask(p, t)
		}
		if len(batch) > 1 {
			s.packBatch(p, batch)
		}
		s.metrics.runFinished()
		<-s.sem
		for _, t := range batch {
			close(t.done)
		}
	}
}

// packBatch folds a pipelined batch's realized outcomes into one shared
// bus schedule and stamps each job's packed finish time and the batch
// speedup into its result. The economics are already settled per job;
// packing is pure virtual-time placement, so a pack failure (e.g. every
// round terminated early) only costs the telemetry.
func (s *Server) packBatch(p *Pool, batch []*Task) {
	var jobs []pipeline.Job
	var idx []int
	var z float64
	for i, t := range batch {
		out := t.out
		if out == nil || !out.Completed {
			continue
		}
		rounds := len(out.Installments)
		if rounds == 0 {
			rounds = 1
		}
		policy := dlt.EqualRounds
		if t.spec.InstallmentPolicy != "" {
			policy, _ = dlt.ParseRoundPolicy(t.spec.InstallmentPolicy)
		}
		job, err := pipeline.JobFromOutcome(fmt.Sprintf("%s/r%d", p.spec.Name, t.res.Round), out, rounds, policy)
		if err != nil {
			continue
		}
		jobs = append(jobs, job)
		idx = append(idx, i)
		z = t.spec.Z
	}
	if len(jobs) < 2 {
		return
	}
	plan, err := pipeline.Pack(p.network, z, jobs)
	if err != nil {
		s.log.Warn("batch packing failed", "pool", p.spec.Name, "jobs", len(jobs), "error", err)
		return
	}
	for k, i := range idx {
		batch[i].res.PackedWith = len(jobs)
		batch[i].res.PackedMakespan = plan.Finish[k]
		batch[i].res.BatchSpeedup = plan.Speedup()
	}
	p.mu.Lock()
	p.packedJobs += len(jobs)
	p.mu.Unlock()
	p.obs.Event(obs.Event{
		Kind:   obs.EvPacked,
		Detail: fmt.Sprintf("packed %d jobs into one bus schedule, speedup %.3f over FIFO", len(jobs), plan.Speedup()),
	})
	s.log.Info("batch packed",
		"pool", p.spec.Name, "jobs", len(jobs),
		"makespan", plan.Makespan, "fifo_total", plan.FIFOTotal,
		"speedup", plan.Speedup())
}

// runTask plays one round against the pool and fills the task's result.
// Every round runs under the pool's resident tracer (phase quantiles,
// event counters); a "trace" artifact additionally composes in a
// per-job recorder whose records ride back in the result.
func (s *Server) runTask(p *Pool, t *Task) {
	started := time.Now()
	res := JobResult{Event: "result", Pool: p.spec.Name, Job: t.index, Round: -1}
	job, err := t.spec.toJob()
	if err == nil {
		var rec *obs.Recorder
		job.Tracer = obs.Multi(p.obs, p.sentinel)
		if t.artifacts[ArtifactTrace] {
			rec = obs.NewRecorder()
			job.Tracer = obs.Multi(p.obs, p.sentinel, rec)
		}
		if job.Installments > 1 {
			p.inFlight.Store(int64(job.Installments))
		}
		p.mu.Lock()
		res.Round = p.state.Round
		out, stepErr := p.sess.Step(p.state, job)
		banned := bannedNames(p.procNames, p.state.Banned)
		p.mu.Unlock()
		p.inFlight.Store(0)
		err = stepErr
		if out != nil {
			t.out = out
			res.fill(out, t.artifacts)
			res.Banned = banned
		}
		if rec != nil {
			res.Trace = rec.Records()
		}
	}
	if err != nil {
		res.Error = err.Error()
	}
	res.QueueMS = float64(started.Sub(t.enqueued)) / float64(time.Millisecond)
	res.RunMS = float64(time.Since(started)) / float64(time.Millisecond)
	t.res = res
	s.metrics.finished(res)
	if res.Error != "" {
		s.log.Error("job failed",
			"pool", p.spec.Name, "job", t.index, "round", res.Round,
			"run_ms", res.RunMS, "error", res.Error)
	} else {
		s.log.Info("job finished",
			"pool", p.spec.Name, "job", t.index, "round", res.Round,
			"completed", res.Completed, "queue_ms", res.QueueMS,
			"run_ms", res.RunMS)
	}
}

// Queued returns the number of admitted jobs not yet picked up.
func (s *Server) Queued() int { return int(s.queued.Load()) }

// sentinelViolations collects the latched economic-invariant breaches
// across pools, keyed by pool name. Empty means every sentinel is clear
// and /healthz reports 200.
func (s *Server) sentinelViolations() map[string][]string {
	s.mu.Lock()
	pools := make([]*Pool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	out := make(map[string][]string)
	for _, p := range pools {
		if v := p.sentinel.Violations(); len(v) > 0 {
			out[p.Name()] = v
		}
	}
	return out
}

// Close drains the service: new submissions are refused, every queued and
// in-flight job still completes (their Tasks resolve), and Close returns
// once all pool runners have exited. It is idempotent and safe to call
// concurrently.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	pools := make([]*Pool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	s.log.Info("server draining", "pools", len(pools), "queued", s.queued.Load())
	for _, p := range pools {
		p.mu.Lock()
		p.closing = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	s.runners.Wait()
	s.log.Info("server closed")
}
