package service

import (
	"fmt"
	"time"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
	"dlsbl/internal/session"
)

// JobSpec is one DLS-BL-NCP job submission — the JSON element of a
// POST /v1/jobs batch. Zero values select the protocol defaults, so
// {"z":0.2,"seed":1} is a complete honest job.
type JobSpec struct {
	// Z is the per-unit communication time of this job's bus session.
	Z float64 `json:"z"`
	// Seed drives key generation (cold pools only) and the synthetic
	// dataset.
	Seed int64 `json:"seed"`
	// NBlocks and BlockSize set the dataset granularity (0 = defaults).
	NBlocks   int `json:"nblocks,omitempty"`
	BlockSize int `json:"blocksize,omitempty"`
	// Behaviors names each processor's strategy for this round (see
	// agent.Catalog; "" or a short list defaults to honest).
	Behaviors []string `json:"behaviors,omitempty"`
	// Faults, when present, runs the round over an unreliable bus;
	// Retry bounds the retransmission machinery.
	Faults *bus.FaultPlan        `json:"faults,omitempty"`
	Retry  *protocol.RetryPolicy `json:"retry,omitempty"`
	// Installments pipelines this job: > 1 serves the load in that many
	// installment sub-rounds, overlapping communication with computation
	// (requires a Multiload pool). InstallmentPolicy is "equal" (default)
	// or "geometric".
	Installments      int    `json:"installments,omitempty"`
	InstallmentPolicy string `json:"installment_policy,omitempty"`
}

// toJob resolves the spec into a session job, rejecting unknown behavior
// names.
func (spec JobSpec) toJob() (session.Job, error) {
	job := session.Job{
		Z:         spec.Z,
		Seed:      spec.Seed,
		NBlocks:   spec.NBlocks,
		BlockSize: spec.BlockSize,
		Faults:    spec.Faults,
	}
	if spec.Retry != nil {
		job.Retry = *spec.Retry
	}
	if spec.Installments < 0 {
		return session.Job{}, fmt.Errorf("installments must be >= 0, got %d", spec.Installments)
	}
	job.Installments = spec.Installments
	if spec.InstallmentPolicy != "" {
		p, err := dlt.ParseRoundPolicy(spec.InstallmentPolicy)
		if err != nil {
			return session.Job{}, err
		}
		job.InstallmentPolicy = p
	}
	for _, name := range spec.Behaviors {
		b, ok := agent.ByName(name)
		if !ok {
			return session.Job{}, fmt.Errorf("unknown behavior %q", name)
		}
		job.Behaviors = append(job.Behaviors, b)
	}
	return job, nil
}

// Artifact names accepted in a submission's "artifacts" list.
const (
	ArtifactTimeline   = "timeline"
	ArtifactTranscript = "transcript"
	ArtifactVerdicts   = "verdicts"
	// ArtifactTrace embeds the round's span/event records (obs.Record
	// stream) in each result: the same data dls-sim -trace renders as a
	// Chrome trace, per job over HTTP.
	ArtifactTrace = "trace"
)

func parseArtifacts(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make(map[string]bool, len(names))
	for _, n := range names {
		switch n {
		case ArtifactTimeline, ArtifactTranscript, ArtifactVerdicts, ArtifactTrace:
			out[n] = true
		default:
			return nil, fmt.Errorf("service: unknown artifact %q (timeline, transcript, verdicts or trace)", n)
		}
	}
	return out, nil
}

// Task is one admitted job. The submitter holds it and waits for the
// result; the pool runner fills it and closes Done.
type Task struct {
	pool      *Pool
	spec      JobSpec
	artifacts map[string]bool
	index     int
	enqueued  time.Time
	done      chan struct{}
	res       JobResult
	// out keeps the round's protocol outcome until the runner finishes
	// with the task (pipelined pools pack a batch's outcomes after the
	// rounds play); it is never exposed to the submitter.
	out *protocol.Outcome
}

// Done is closed when the job's result is available.
func (t *Task) Done() <-chan struct{} { return t.done }

// Wait blocks until the job finishes and returns its result.
func (t *Task) Wait() JobResult {
	<-t.done
	return t.res
}

// Result returns the job's result; it is valid once Done is closed.
func (t *Task) Result() JobResult { return t.res }

// JobResult is the NDJSON record streamed back per job. Round is the
// pool-local round index the job played as (-1 when it failed before
// playing); Error carries a protocol- or session-level failure, in which
// case the economic fields are absent.
type JobResult struct {
	Event string `json:"event"` // always "result"
	Pool  string `json:"pool"`
	Job   int    `json:"job"` // index within the submission
	Round int    `json:"round"`
	Error string `json:"error,omitempty"`

	Completed     bool    `json:"completed"`
	TerminatedIn  string  `json:"terminated_in,omitempty"`
	FineMagnitude float64 `json:"fine_magnitude,omitempty"`
	// BidReused marks a round served from the pool's cached bid set
	// (Multiload pools); BidSpliced marks a round that re-bid only the one
	// changed member and spliced it into the cache; RoundID is the round's
	// session-salted identifier.
	BidReused  bool   `json:"bid_reused,omitempty"`
	BidSpliced bool   `json:"bid_spliced,omitempty"`
	RoundID    string `json:"round_id,omitempty"`

	Bids      []float64 `json:"bids,omitempty"`
	Alloc     []float64 `json:"alloc,omitempty"`
	Payments  []float64 `json:"payments,omitempty"`
	Fines     []float64 `json:"fines,omitempty"`
	Utilities []float64 `json:"utilities,omitempty"`
	UserCost  float64   `json:"user_cost,omitempty"`
	Makespan  float64   `json:"makespan,omitempty"`

	// Installments is the number of sub-rounds a pipelined job was served
	// in (0 for whole-load jobs). On a pipelined pool (PipelineDepth > 1),
	// PackedWith counts the jobs of this job's shared bus schedule,
	// PackedMakespan is this job's finish time inside it, and BatchSpeedup
	// is the batch's throughput gain over serving its jobs FIFO.
	Installments   int     `json:"installments,omitempty"`
	PackedWith     int     `json:"packed_with,omitempty"`
	PackedMakespan float64 `json:"packed_makespan,omitempty"`
	BatchSpeedup   float64 `json:"batch_speedup,omitempty"`

	// Banned is the pool's ban list AFTER this round settled.
	Banned    []string                 `json:"banned,omitempty"`
	Evictions []protocol.EvictionEvent `json:"evictions,omitempty"`
	// Fault counts what the reliable-transport layer did; present only
	// when the job ran under a fault plan.
	Fault *protocol.FaultStats `json:"fault,omitempty"`

	// QueueMS is the time the job waited for its pool's runner; RunMS is
	// the round's execution time.
	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`

	// Optional artifacts, selected per submission. Trace is the round's
	// span/event record stream (see internal/obs); feed it to
	// obs.ChromeTrace for a chrome://tracing view.
	Timeline   *dlt.Timeline        `json:"timeline,omitempty"`
	Transcript []referee.AuditEntry `json:"transcript,omitempty"`
	Verdicts   []referee.Verdict    `json:"verdicts,omitempty"`
	Trace      []obs.Record         `json:"trace,omitempty"`
}

// fill copies the protocol outcome into the result.
func (r *JobResult) fill(out *protocol.Outcome, artifacts map[string]bool) {
	r.Completed = out.Completed
	r.TerminatedIn = out.TerminatedIn
	r.FineMagnitude = out.FineMagnitude
	r.BidReused = out.BidReused
	r.BidSpliced = out.BidSpliced
	r.RoundID = out.RoundID
	r.Bids = out.Bids
	r.Alloc = out.Alloc
	r.Payments = out.Payments
	r.Fines = out.Fines
	r.Utilities = out.Utilities
	r.UserCost = out.UserCost
	r.Makespan = out.Makespan
	r.Installments = len(out.Installments)
	r.Evictions = out.Evictions
	if out.Fault != (protocol.FaultStats{}) || len(out.Evictions) > 0 {
		f := out.Fault
		r.Fault = &f
	}
	if artifacts[ArtifactTimeline] && out.Completed {
		tl := out.Timeline
		r.Timeline = &tl
	}
	if artifacts[ArtifactTranscript] {
		r.Transcript = out.Transcript
	}
	if artifacts[ArtifactVerdicts] {
		r.Verdicts = out.Verdicts
	}
}
