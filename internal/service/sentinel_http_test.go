package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlsbl/internal/obs"
)

// TestSentinelSurfacesThroughService pins the alerting path: a latched
// pool sentinel must show up in the pool snapshot, the Prometheus
// exposition, and flip /healthz to 503 — and a healthy server must not
// trip any of the three.
func TestSentinelSurfacesThroughService(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	p, err := srv.CreatePool(PoolSpec{Name: "alpha", Network: "ncp-fe", TrueW: []float64{1, 1.5, 2, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d, want 200", code)
	}
	if got := srv.sentinelViolations(); len(got) != 0 {
		t.Fatalf("healthy server reports violations: %v", got)
	}
	if snap := p.Snapshot(); len(snap.SentinelViolations) != 0 {
		t.Fatalf("healthy pool snapshot carries violations: %v", snap.SentinelViolations)
	}

	// A malformed payment event is exactly what a protocol bug (or a
	// tampered telemetry stream) would feed the pool's sentinel.
	p.sentinel.Event(obs.Event{Kind: obs.EvPayment, From: "P1", Round: "s1:r1",
		Values: []float64{5, 2, 2}})

	if snap := p.Snapshot(); len(snap.SentinelViolations) == 0 {
		t.Fatal("latched violation missing from the pool snapshot")
	}
	bad := srv.sentinelViolations()
	if len(bad["alpha"]) == 0 {
		t.Fatalf("sentinelViolations() = %v, want an entry for pool alpha", bad)
	}

	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with latched sentinel = %d, want 503", code)
	}
	var health struct {
		Status     string              `json:"status"`
		Violations map[string][]string `json:"violations"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("parsing healthz body %q: %v", body, err)
	}
	if health.Status != "sentinel_violation" || len(health.Violations["alpha"]) == 0 {
		t.Fatalf("healthz body %q, want sentinel_violation with pool alpha detail", body)
	}

	_, prom := get("/metrics?format=prometheus")
	if !strings.Contains(prom, `dlsbl_pool_sentinel_violations{pool="alpha"} 1`) {
		t.Fatalf("prometheus exposition lacks the sentinel gauge:\n%s", prom)
	}
}
