package service

import (
	"fmt"
	"sync"
	"testing"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

// TestLoad200ConcurrentJobs is the PR's acceptance load test: 200
// concurrent job submissions spread across 8 pools, run under -race,
// with every job's payments bit-identical to a direct protocol.Run with
// the same seed. All pools share TrueW, so one reference run per seed
// covers every pool — payments depend only on (z, w, seed), never on
// which pool (or which warm keyring) played the round.
func TestLoad200ConcurrentJobs(t *testing.T) {
	const (
		nPools    = 8
		seedsPer  = 25 // 8 × 25 = 200 submissions
		z         = 0.2
		totalJobs = nPools * seedsPer
	)
	trueW := []float64{1, 1.5, 2, 2.5}

	// Reference payments, one cold direct run per seed.
	want := make(map[int64][]float64, seedsPer)
	for seed := int64(1); seed <= seedsPer; seed++ {
		out, err := protocol.Run(protocol.Config{
			Network: dlt.NCPFE, Z: z, TrueW: trueW, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = out.Payments
	}

	srv := New(Config{Workers: 4, QueueDepth: totalJobs})
	defer srv.Close()
	srv.testHookDuringRun = overlapRendezvous(2)
	poolNames := make([]string, nPools)
	for i := range poolNames {
		poolNames[i] = fmt.Sprintf("pool-%02d", i)
		if _, err := srv.CreatePool(PoolSpec{Name: poolNames[i], TrueW: trueW}); err != nil {
			t.Fatal(err)
		}
	}

	// 200 goroutines, one submission each, all released at once.
	type outcome struct {
		pool string
		seed int64
		res  JobResult
	}
	results := make(chan outcome, totalJobs)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, pool := range poolNames {
		for seed := int64(1); seed <= seedsPer; seed++ {
			wg.Add(1)
			go func(pool string, seed int64) {
				defer wg.Done()
				<-start
				tasks, err := srv.Submit(pool, []JobSpec{{Z: z, Seed: seed}}, nil)
				if err != nil {
					t.Errorf("submit %s seed %d: %v", pool, seed, err)
					return
				}
				results <- outcome{pool: pool, seed: seed, res: tasks[0].Wait()}
			}(pool, seed)
		}
	}
	close(start)
	wg.Wait()
	close(results)

	seen := 0
	for o := range results {
		seen++
		if o.res.Error != "" {
			t.Fatalf("%s seed %d failed: %s", o.pool, o.seed, o.res.Error)
		}
		if !equalF64(o.res.Payments, want[o.seed]) {
			t.Fatalf("%s seed %d: payments %v, direct run got %v",
				o.pool, o.seed, o.res.Payments, want[o.seed])
		}
	}
	if seen != totalJobs {
		t.Fatalf("collected %d results, want %d", seen, totalJobs)
	}

	// Every pool played exactly its share of rounds, serialized locally,
	// on a keyring warmed once.
	for _, name := range poolNames {
		p, ok := srv.Pool(name)
		if !ok {
			t.Fatalf("pool %s missing", name)
		}
		snap := p.Snapshot()
		if snap.Rounds != seedsPer {
			t.Fatalf("pool %s rounds = %d, want %d", name, snap.Rounds, seedsPer)
		}
		if snap.WarmKeys != len(trueW)+2 {
			t.Fatalf("pool %s warm keys = %d, want %d", name, snap.WarmKeys, len(trueW)+2)
		}
	}
	m := srv.Metrics()
	if m.Jobs.Completed != totalJobs || m.Jobs.Failed != 0 {
		t.Fatalf("metrics completed=%d failed=%d, want %d/0", m.Jobs.Completed, m.Jobs.Failed, totalJobs)
	}
	if m.Jobs.PeakRun < 2 {
		t.Fatalf("peak running = %d; distinct pools never overlapped", m.Jobs.PeakRun)
	}
}
