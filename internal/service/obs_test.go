package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// promSample matches a text-exposition sample line:
// name{labels} value — the grammar a Prometheus scraper accepts.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE.+-]+$`)

// TestPrometheusExposition runs jobs against a multiload pool, scrapes
// GET /metrics?format=prometheus and verifies the body is structurally
// parseable exposition: every non-comment line matches the sample
// grammar, every family carries HELP and TYPE headers, and the phase
// duration and event-counter families the pool tracer feeds are
// present once a round has played.
func TestPrometheusExposition(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 16})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 1.5, 2, 2.5}, Multiload: true}); err != nil {
		t.Fatal(err)
	}
	tasks, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 1}, {Z: 0.2, Seed: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if res := task.Wait(); res.Error != "" {
			t.Fatalf("job failed: %s", res.Error)
		}
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}

	helped := map[string]bool{}
	typed := map[string]bool{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		seen[line[:strings.IndexAny(line, "{ ")]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name := range seen {
		if !helped[name] || !typed[name] {
			t.Errorf("family %s missing HELP or TYPE header", name)
		}
	}
	for _, want := range []string{
		"dlsbl_jobs_total", "dlsbl_protocol_rounds_total",
		"dlsbl_pool_phase_ms", "dlsbl_pool_events_total",
		"dlsbl_multiload_saved_total", "dlsbl_build_info",
	} {
		if !seen[want] {
			t.Errorf("family %s absent from exposition", want)
		}
	}
}

// TestMultiloadServerAggregate pins the server-wide multiload rollup:
// the snapshot's Multiload block must equal the sum over every
// multiload pool of its saved-traffic counters, and count only
// multiload pools.
func TestMultiloadServerAggregate(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 64})
	defer srv.Close()
	for _, name := range []string{"a", "b"} {
		if _, err := srv.CreatePool(PoolSpec{Name: name, TrueW: []float64{1, 2, 3}, Multiload: true}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "plain", TrueW: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "plain"} {
		tasks, err := srv.Submit(name, []JobSpec{{Z: 0.2, Seed: 1}, {Z: 0.2, Seed: 2}, {Z: 0.2, Seed: 3}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range tasks {
			if res := task.Wait(); res.Error != "" {
				t.Fatalf("pool %s: job failed: %s", name, res.Error)
			}
		}
	}

	snap := srv.Metrics()
	if snap.Multiload.Pools != 2 {
		t.Fatalf("Multiload.Pools = %d, want 2", snap.Multiload.Pools)
	}
	var msgs, dels, units, rebids int
	for _, p := range snap.Pools {
		if !p.Multiload {
			if p.MessagesSaved != 0 || p.DeliveriesSaved != 0 {
				t.Fatalf("non-multiload pool %s reports savings", p.Name)
			}
			continue
		}
		msgs += p.MessagesSaved
		dels += p.DeliveriesSaved
		units += p.UnitsSaved
		rebids += p.Rebids
	}
	if dels == 0 {
		t.Fatal("multiload pools played reuse rounds but saved no deliveries")
	}
	if snap.Multiload.MessagesSaved != msgs || snap.Multiload.DeliveriesSaved != dels ||
		snap.Multiload.UnitsSaved != units || snap.Multiload.Rebids != rebids {
		t.Fatalf("aggregate %+v does not sum the pools (want %d/%d/%d msgs/dels/units, %d rebids)",
			snap.Multiload, msgs, dels, units, rebids)
	}
}

// TestTraceArtifact submits with the "trace" artifact and checks each
// result carries the round's record stream — spans properly nested,
// all five phases present — while a submission without the artifact
// carries none.
func TestTraceArtifact(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 16})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 1.5, 2}}); err != nil {
		t.Fatal(err)
	}
	tasks, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 1}}, []string{"trace"})
	if err != nil {
		t.Fatal(err)
	}
	res := tasks[0].Wait()
	if res.Error != "" {
		t.Fatalf("job failed: %s", res.Error)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace artifact requested but result carries no records")
	}
	phases := map[string]bool{}
	depth := 0
	for i, r := range res.Trace {
		switch r.Type {
		case "begin":
			depth++
			phases[r.Name] = true
		case "end":
			depth--
			if depth < 0 {
				t.Fatalf("record %d: end without begin", i)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced spans in trace artifact (depth %d at end)", depth)
	}
	for _, want := range []string{"initialization", "bidding", "allocating", "processing", "payments"} {
		if !phases[want] {
			t.Errorf("phase %q missing from trace artifact", want)
		}
	}

	plain, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := plain[0].Wait(); len(res.Trace) != 0 {
		t.Fatal("trace records present without the trace artifact")
	}
}

// TestRingWraparound pins the latency reservoir at its capacity edge:
// past ringCap observations the ring holds exactly the most recent
// ringCap values, and samples() hands back a defensive copy the caller
// can mutate without corrupting the reservoir.
func TestRingWraparound(t *testing.T) {
	var r ring
	n := ringCap + 10
	for i := 0; i < n; i++ {
		r.add(float64(i))
	}
	got := r.samples()
	if len(got) != ringCap {
		t.Fatalf("samples() length %d, want %d", len(got), ringCap)
	}
	want := map[float64]bool{}
	for i := n - ringCap; i < n; i++ {
		want[float64(i)] = true
	}
	for _, x := range got {
		if !want[x] {
			t.Fatalf("sample %v is older than the last %d observations", x, ringCap)
		}
		delete(want, x)
	}
	if len(want) != 0 {
		t.Fatalf("%d recent observations missing from the reservoir", len(want))
	}

	got[0] = -1
	again := r.samples()
	for _, x := range again {
		if x == -1 {
			t.Fatal("mutating samples() result corrupted the reservoir — not a defensive copy")
		}
	}
}
