package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Submission is the JSON body of POST /v1/jobs: a batch of jobs against
// one pool, optionally requesting per-job artifacts. The jobs run in
// order on the pool's runner; the response streams one NDJSON record per
// job as it completes.
type Submission struct {
	Pool      string    `json:"pool"`
	Artifacts []string  `json:"artifacts,omitempty"`
	Jobs      []JobSpec `json:"jobs"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/pools        create a pool (PoolSpec body) → PoolSnapshot
//	GET  /v1/pools        list pool snapshots
//	GET  /v1/pools/{name} one pool snapshot
//	POST /v1/jobs         submit a batch (Submission body) → NDJSON stream
//	GET  /metrics         counters + latency quantiles (MetricsSnapshot);
//	                      ?format=prometheus selects text exposition 0.0.4
//	GET  /healthz         liveness + invariant probe: 200 while every
//	                      pool's economic-invariant sentinel is clear,
//	                      503 with the latched violations otherwise
//
// Error statuses: 400 malformed body or unknown behavior/artifact name,
// 404 unknown pool, 429 queue full (backpressure — retry later),
// 503 shutting down or sentinel violation latched.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if bad := s.sentinelViolations(); len(bad) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "sentinel_violation", "violations": bad,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_ = WritePrometheus(w, s.Metrics())
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /v1/pools", s.handleCreatePool)
	mux.HandleFunc("GET /v1/pools", s.handleListPools)
	mux.HandleFunc("GET /v1/pools/{name}", s.handleGetPool)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleCreatePool(w http.ResponseWriter, r *http.Request) {
	var spec PoolSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding pool spec: %v", err)
		return
	}
	p, err := s.CreatePool(spec)
	switch {
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, p.Snapshot())
}

func (s *Server) handleListPools(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics().Pools)
}

func (s *Server) handleGetPool(w http.ResponseWriter, r *http.Request) {
	p, ok := s.Pool(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pool %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, p.Snapshot())
}

// handleJobs admits a batch and streams NDJSON: an "accepted" record,
// one "result" record per job as its round completes (in submission
// order), and a closing "done" record with the batch totals.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		httpError(w, http.StatusBadRequest, "decoding submission: %v", err)
		return
	}
	tasks, err := s.Submit(sub.Pool, sub.Jobs, sub.Artifacts)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownPool):
			httpError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]any{"event": "accepted", "pool": sub.Pool, "jobs": len(tasks)})
	flush()
	failed := 0
	for _, t := range tasks {
		res := t.Wait()
		if res.Error != "" {
			failed++
		}
		_ = enc.Encode(res)
		flush()
	}
	_ = enc.Encode(map[string]any{
		"event":      "done",
		"pool":       sub.Pool,
		"jobs":       len(tasks),
		"failed":     failed,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
	flush()
}
