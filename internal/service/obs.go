package service

import (
	"sort"
	"sync"
	"time"

	"dlsbl/internal/obs"
)

// poolObs is the pool-resident obs.Tracer: every round a pool plays runs
// under it (composed with any per-job recorder via obs.Multi), folding
// phase wall-clock durations into per-phase latency reservoirs and
// counting bus/transport/protocol events by kind. It is the bridge from
// the protocol's span stream to the service dashboard — GET /metrics
// reads it through PoolSnapshot, so phase-level tail behavior (is
// Bidding dominating? are retransmits climbing?) is visible without
// asking any job for a trace artifact.
//
// The protocol emits spans strictly nested and single-threaded (one
// runner goroutine per pool), but snapshots arrive from HTTP goroutines,
// so every access takes the mutex.
type poolObs struct {
	mu     sync.Mutex
	starts map[string]time.Time
	phase  map[string]*ring
	events map[string]int64
}

func newPoolObs() *poolObs {
	return &poolObs{
		starts: make(map[string]time.Time),
		phase:  make(map[string]*ring),
		events: make(map[string]int64),
	}
}

// BeginPhase implements obs.Tracer.
func (o *poolObs) BeginPhase(name, round, epoch string) {
	o.mu.Lock()
	o.starts[name] = time.Now()
	o.mu.Unlock()
}

// EndPhase implements obs.Tracer.
func (o *poolObs) EndPhase(name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t0, ok := o.starts[name]
	if !ok {
		return
	}
	delete(o.starts, name)
	r := o.phase[name]
	if r == nil {
		r = &ring{}
		o.phase[name] = r
	}
	r.add(float64(time.Since(t0)) / float64(time.Millisecond))
}

// Event implements obs.Tracer.
func (o *poolObs) Event(e obs.Event) {
	o.mu.Lock()
	o.events[e.Kind]++
	o.mu.Unlock()
}

// phaseSummaries reports per-phase duration statistics over the most
// recent rounds, keyed by phase name.
func (o *poolObs) phaseSummaries() map[string]LatencySummary {
	o.mu.Lock()
	samples := make(map[string][]float64, len(o.phase))
	for name, r := range o.phase {
		samples[name] = r.samples()
	}
	o.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	out := make(map[string]LatencySummary, len(samples))
	for name, xs := range samples {
		out[name] = summarize(xs)
	}
	return out
}

// eventCounts copies the cumulative per-kind event counters.
func (o *poolObs) eventCounts() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.events) == 0 {
		return nil
	}
	out := make(map[string]int64, len(o.events))
	for k, v := range o.events {
		out[k] = v
	}
	return out
}

// sortedKeys returns m's keys in lexical order, for deterministic
// exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
