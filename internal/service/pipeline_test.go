package service

import (
	"math/rand"
	"strings"
	"testing"
)

// TestPipelinedPoolValidation: PipelineDepth > 1 demands a multiload
// ncp-fe pool, and installment jobs demand a multiload pool.
func TestPipelinedPoolValidation(t *testing.T) {
	w := []float64{1, 1.5, 2}
	srv := New(Config{Workers: 2, QueueDepth: 16})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "a", TrueW: w, PipelineDepth: 4}); err == nil {
		t.Error("pipelined pool without multiload accepted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "b", TrueW: w, Network: "ncp-nfe", Multiload: true, PipelineDepth: 4}); err == nil {
		t.Error("pipelined ncp-nfe pool accepted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "c", TrueW: w, PipelineDepth: -1}); err == nil {
		t.Error("negative pipeline depth accepted")
	}
	if _, err := srv.Submit("a", []JobSpec{{Z: 0.2, Seed: 1, InstallmentPolicy: "nope"}}, nil); !strings.Contains(errString(err), "round policy") {
		t.Errorf("bad installment policy error = %v", err)
	}
	// Installment jobs against a plain (non-multiload) pool fail at run
	// time with a clear error, not silently as whole loads.
	if _, err := srv.CreatePool(PoolSpec{Name: "plain", TrueW: w}); err != nil {
		t.Fatal(err)
	}
	tasks, err := srv.Submit("plain", []JobSpec{{Z: 0.2, Seed: 1, Installments: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := tasks[0].Wait(); !strings.Contains(res.Error, "Multiload") {
		t.Errorf("installments on a plain pool: error = %q", res.Error)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestPipelinedPoolPacksBatch: a PipelineDepth=4 pool grabs a 4-job batch,
// plays each job's economics in order, and packs the realized installment
// schedules into one shared bus plan — every result carries the batch's
// packed finish time and a speedup over FIFO, and the pool's telemetry
// counts the packed jobs.
func TestPipelinedPoolPacksBatch(t *testing.T) {
	w := []float64{1, 1.2, 1.4, 1.6, 1.8, 2, 1.1, 1.3}
	srv := New(Config{Workers: 2, QueueDepth: 32})
	defer srv.Close()
	p, err := srv.CreatePool(PoolSpec{Name: "pipe", TrueW: w, Multiload: true, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]JobSpec, 4)
	for i := range specs {
		specs[i] = JobSpec{Z: 0.1, Seed: int64(i + 1), Installments: 4, InstallmentPolicy: "geometric"}
	}
	tasks, err := srv.Submit("pipe", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var speedup float64
	for i, task := range tasks {
		res := task.Wait()
		if res.Error != "" {
			t.Fatalf("job %d: %s", i, res.Error)
		}
		if !res.Completed || res.Installments != 4 {
			t.Fatalf("job %d: completed=%v installments=%d", i, res.Completed, res.Installments)
		}
		if res.PackedWith != 4 || !(res.PackedMakespan > 0) {
			t.Errorf("job %d: packed_with=%d packed_makespan=%v", i, res.PackedWith, res.PackedMakespan)
		}
		if res.BatchSpeedup <= 1 {
			t.Errorf("job %d: batch speedup %v, want > 1", i, res.BatchSpeedup)
		}
		if i == 0 {
			speedup = res.BatchSpeedup
		} else if res.BatchSpeedup != speedup {
			t.Errorf("job %d reports speedup %v, job 0 reported %v", i, res.BatchSpeedup, speedup)
		}
	}
	snap := p.Snapshot()
	if snap.PipelineDepth != 4 || snap.PackedJobs != 4 || snap.Rounds != 4 {
		t.Errorf("snapshot depth=%d packed=%d rounds=%d", snap.PipelineDepth, snap.PackedJobs, snap.Rounds)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, srv.Metrics()); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		`dlsbl_pool_pipeline_depth{pool="pipe"} 4`,
		`dlsbl_pool_installments_in_flight{pool="pipe"}`,
		`dlsbl_pool_packed_jobs_total{pool="pipe"} 4`,
	} {
		if !strings.Contains(sb.String(), family) {
			t.Errorf("prometheus exposition missing %q", family)
		}
	}
}

// TestPipelinedDegenerateParity is the correctness anchor the pipelined
// runner hangs off: with PipelineDepth=1 and whole loads (R=1), a pool is
// byte-for-byte the plain FIFO runner — over randomized pools with
// deviants and bus faults, every result field that carries money or
// verdicts is bit-identical to a depth-0 pool playing the same jobs.
func TestPipelinedDegenerateParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	behaviors := []string{"", "", "", "overbid-1.5x", "underbid-0.6x", "payment-cheat-2x"}
	for trial := 0; trial < 8; trial++ {
		m := 3 + rng.Intn(4)
		w := make([]float64, m)
		for i := range w {
			w[i] = 1 + rng.Float64()
		}
		nJobs := 2 + rng.Intn(4)
		specs := make([]JobSpec, nJobs)
		for j := range specs {
			specs[j] = JobSpec{Z: 0.2, Seed: rng.Int63n(1 << 30)}
			for i := 1; i < m; i++ {
				if rng.Intn(4) == 0 {
					specs[j].Behaviors = append(specs[j].Behaviors, behaviors[rng.Intn(len(behaviors))])
				} else {
					specs[j].Behaviors = append(specs[j].Behaviors, "")
				}
			}
			if rng.Intn(3) == 0 {
				specs[j].Faults = faultPlan(0.1)
			}
		}

		run := func(depth int) []JobResult {
			srv := New(Config{Workers: 2, QueueDepth: 64})
			defer srv.Close()
			if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: w, Multiload: true, PipelineDepth: depth}); err != nil {
				t.Fatal(err)
			}
			tasks, err := srv.Submit("p", specs, []string{ArtifactTranscript, ArtifactVerdicts})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]JobResult, len(tasks))
			for i, task := range tasks {
				out[i] = task.Wait()
			}
			return out
		}
		plain, piped := run(0), run(1)
		for j := range plain {
			a, b := plain[j], piped[j]
			if a.Error != b.Error || a.Completed != b.Completed {
				t.Fatalf("trial %d job %d: error/completed diverge: %+v vs %+v", trial, j, a, b)
			}
			if !equalF64(a.Payments, b.Payments) || !equalF64(a.Fines, b.Fines) || !equalF64(a.Utilities, b.Utilities) {
				t.Fatalf("trial %d job %d: money diverges between depth 0 and 1", trial, j)
			}
			if a.RoundID != b.RoundID || a.UserCost != b.UserCost || a.Makespan != b.Makespan {
				t.Fatalf("trial %d job %d: round id or totals diverge", trial, j)
			}
			if len(a.Verdicts) != len(b.Verdicts) || len(a.Transcript) != len(b.Transcript) {
				t.Fatalf("trial %d job %d: verdicts/transcript shape diverges", trial, j)
			}
			for k := range a.Transcript {
				if a.Transcript[k].Hash != b.Transcript[k].Hash {
					t.Fatalf("trial %d job %d: transcript hash chain diverges at entry %d", trial, j, k)
				}
			}
		}
	}
}
