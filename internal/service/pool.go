package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/session"
	"dlsbl/internal/sig"
)

// PoolSpec declares a named processor pool: the DLS-BL-NCP system class,
// the pool's private processing rates, the fine magnitude and the
// reputation policy. It is the JSON body of POST /v1/pools.
type PoolSpec struct {
	Name string `json:"name"`
	// Network is "ncp-fe" (default) or "ncp-nfe".
	Network string `json:"network,omitempty"`
	// TrueW are the pool's private per-unit processing times.
	TrueW []float64 `json:"w"`
	// Fine is the per-job fine magnitude F; 0 derives it per job from
	// the bids (referee.SuggestedFine).
	Fine float64 `json:"fine,omitempty"`
	// Policy is "forgive" (default) or "ban-deviants".
	Policy string `json:"policy,omitempty"`
	// Multiload amortizes the Bidding phase across the pool's jobs: the
	// pool bids once and later rounds reuse the cached signed bids,
	// re-bidding only when the bid profile changes (ban, eviction,
	// behavior change). Θ(m) control-plane traffic per job instead of
	// Θ(m²); payments are unchanged. See session.Session.Multiload.
	Multiload bool `json:"multiload,omitempty"`
	// PipelineDepth > 1 turns the pool's FIFO runner into the pipelined
	// scheduler: the runner dequeues up to PipelineDepth queued jobs at a
	// time, plays each one's economics in admission order, then packs the
	// realized schedules into one shared bus plan (pipeline.Pack) whose
	// per-job finish times ride back in the results. Requires Multiload
	// (installment sub-rounds run from the cached bids) and the ncp-fe
	// class (the nfe originator cannot overlap). 0 or 1 keeps the plain
	// FIFO runner, byte-identical behavior.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
}

// Pool is a registered processor pool: a persistent session whose
// reputation state and warm keyring survive across the jobs the service
// runs against it. All rounds against one pool execute on its single
// runner goroutine, in admission order.
type Pool struct {
	spec      PoolSpec
	network   dlt.Network
	policy    session.Policy
	sess      *session.Session
	procNames []string
	// obs is the pool's resident tracer: every round runs under it, so
	// phase-duration quantiles and bus-event counters accumulate across
	// the pool's lifetime (see poolObs).
	obs *poolObs
	// sentinel watches every round's event stream for economic-invariant
	// violations (payment shape, conservation, telescoping installments,
	// witnessed evictions, evidenced convictions) and latches the first
	// breach for /metrics and /healthz. See obs.Sentinel.
	sentinel *obs.Sentinel

	mu      sync.Mutex
	cond    *sync.Cond
	fifo    []*Task
	state   *session.State
	closing bool
	// packedJobs totals the jobs packed into shared bus schedules
	// (PipelineDepth > 1 batches of two or more), under mu.
	packedJobs int
	// inFlight is the number of installment sub-rounds of the load being
	// served right now (atomic: the runner writes it around Step while
	// snapshots read concurrently).
	inFlight atomic.Int64
}

func parseNetwork(name string) (dlt.Network, error) {
	switch strings.ToLower(name) {
	case "", "ncp-fe", "ncpfe", "fe":
		return dlt.NCPFE, nil
	case "ncp-nfe", "ncpnfe", "nfe":
		return dlt.NCPNFE, nil
	default:
		return 0, fmt.Errorf("service: unknown network %q (DLS-BL-NCP runs on ncp-fe or ncp-nfe)", name)
	}
}

func parsePolicy(name string) (session.Policy, error) {
	switch strings.ToLower(name) {
	case "", "forgive":
		return session.Forgive, nil
	case "ban-deviants", "ban":
		return session.BanDeviants, nil
	default:
		return 0, fmt.Errorf("service: unknown policy %q (forgive or ban-deviants)", name)
	}
}

func newPool(spec PoolSpec) (*Pool, error) {
	if spec.Name == "" {
		return nil, errors.New("service: pool needs a name")
	}
	network, err := parseNetwork(spec.Network)
	if err != nil {
		return nil, err
	}
	policy, err := parsePolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	if spec.PipelineDepth < 0 {
		return nil, fmt.Errorf("service: pipeline depth must be >= 0, got %d", spec.PipelineDepth)
	}
	if spec.PipelineDepth > 1 {
		if !spec.Multiload {
			return nil, errors.New("service: pipelined pools require multiload (installment sub-rounds run from the cached bids)")
		}
		if network != dlt.NCPFE {
			return nil, fmt.Errorf("service: pipelined pools require ncp-fe (the %v originator cannot overlap)", network)
		}
	}
	sess := &session.Session{
		Network:   network,
		TrueW:     append([]float64(nil), spec.TrueW...),
		Fine:      spec.Fine,
		Policy:    policy,
		Keys:      sig.NewKeyring(),
		Multiload: spec.Multiload,
		// Warm pools run the hot path: binary payload codec plus a
		// pool-lifetime verified-envelope memo, so repeat rounds skip both
		// encoding/json and re-verification of bit-identical envelopes.
		// Payments and transcripts are bit-identical to the legacy path
		// (TestHotPathParity).
		Codec: sig.CodecBinary,
		Memo:  sig.NewVerifyMemo(),
	}
	state, err := sess.NewState()
	if err != nil {
		return nil, err
	}
	procNames := make([]string, len(spec.TrueW))
	for i := range procNames {
		procNames[i] = fmt.Sprintf("P%d", i+1)
	}
	p := &Pool{
		spec:      spec,
		network:   network,
		policy:    policy,
		sess:      sess,
		procNames: procNames,
		obs:       newPoolObs(),
		sentinel:  obs.NewSentinel(),
		state:     state,
	}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// bannedNames maps the banned mask to processor ids.
func bannedNames(procs []string, banned []bool) []string {
	var out []string
	for i, b := range banned {
		if b {
			out = append(out, procs[i])
		}
	}
	return out
}

// PoolSnapshot is a pool's publicly visible state, served by
// GET /v1/pools. WarmKeys counts the cached keypairs — m+2 once the first
// round has paid the key-generation cost for everyone.
type PoolSnapshot struct {
	Name              string    `json:"name"`
	Network           string    `json:"network"`
	Policy            string    `json:"policy"`
	M                 int       `json:"m"`
	TrueW             []float64 `json:"w"`
	Fine              float64   `json:"fine,omitempty"`
	Rounds            int       `json:"rounds"`
	Queued            int       `json:"queued"`
	Banned            []string  `json:"banned,omitempty"`
	CumulativeUtility []float64 `json:"cumulative_utility"`
	WarmKeys          int       `json:"warm_keys"`

	// Amortized-bidding telemetry (Multiload pools). RoundsSinceRebid
	// counts consecutive rounds served from the cached bids;
	// MessagesSaved / DeliveriesSaved / UnitsSaved total the bus traffic
	// the avoided Bidding exchanges would have cost (Deliveries is the
	// Θ(m²) term).
	Multiload         bool `json:"multiload,omitempty"`
	Rebids            int  `json:"rebids,omitempty"`
	IncrementalRebids int  `json:"incremental_rebids,omitempty"`
	RoundsSinceRebid  int  `json:"rounds_since_rebid,omitempty"`
	MessagesSaved     int  `json:"messages_saved,omitempty"`
	DeliveriesSaved   int  `json:"deliveries_saved,omitempty"`
	UnitsSaved        int  `json:"units_saved,omitempty"`

	// Pipelined-scheduler telemetry (PipelineDepth > 1 pools).
	// InstallmentsInFlight is the number of sub-rounds of the load being
	// served at snapshot time; PackedJobs totals the jobs packed into
	// shared bus schedules over the pool's lifetime.
	PipelineDepth        int `json:"pipeline_depth,omitempty"`
	InstallmentsInFlight int `json:"installments_in_flight,omitempty"`
	PackedJobs           int `json:"packed_jobs,omitempty"`

	// Verified-envelope memo telemetry (the hot-path verification cache
	// every pool carries): VerifyMemoHits counts Ed25519 verifications
	// skipped because the envelope had already verified bit-identically;
	// VerifyMemoSize is the current number of memoized digests.
	VerifyMemoHits int64 `json:"verify_memo_hits,omitempty"`
	VerifyMemoSize int   `json:"verify_memo_size,omitempty"`

	// SentinelViolations lists the economic-invariant breaches the pool's
	// sentinel has latched (oldest first); empty on a healthy pool. Any
	// entry here flips /healthz to 503 — an invariant violation means a
	// bug or tampering, never legitimate adversary behavior.
	SentinelViolations []string `json:"sentinel_violations,omitempty"`

	// Traffic totals the pool's control-plane bus traffic across rounds
	// (session.TrafficStats semantics: Deliveries is the Θ(m²) term).
	Traffic session.TrafficStats `json:"traffic"`

	// PhaseMS reports wall-clock duration statistics per protocol phase
	// over the pool's most recent rounds; BusEvents counts bus, transport
	// and protocol events by kind (obs event kinds: deliver, drop,
	// retransmit, eviction, …) since the pool was created. Both come from
	// the pool's resident tracer.
	PhaseMS   map[string]LatencySummary `json:"phase_ms,omitempty"`
	BusEvents map[string]int64          `json:"bus_events,omitempty"`
}

// Snapshot returns the pool's current state.
func (p *Pool) Snapshot() PoolSnapshot {
	phase := p.obs.phaseSummaries()
	events := p.obs.eventCounts()
	p.mu.Lock()
	defer p.mu.Unlock()
	bs := p.state.BidStats()
	ms := p.sess.Memo.Stats()
	return PoolSnapshot{
		Name:                 p.spec.Name,
		Network:              p.network.String(),
		Policy:               p.policy.String(),
		M:                    len(p.sess.TrueW),
		TrueW:                append([]float64(nil), p.sess.TrueW...),
		Fine:                 p.spec.Fine,
		Rounds:               p.state.Round,
		Queued:               len(p.fifo),
		Banned:               bannedNames(p.procNames, p.state.Banned),
		CumulativeUtility:    append([]float64(nil), p.state.CumulativeUtility...),
		WarmKeys:             p.sess.Keys.Len(),
		Multiload:            p.spec.Multiload,
		Rebids:               bs.Rebids,
		IncrementalRebids:    bs.IncrementalRebids,
		RoundsSinceRebid:     bs.RoundsSinceRebid,
		MessagesSaved:        bs.SavedMessages,
		DeliveriesSaved:      bs.SavedDeliveries,
		UnitsSaved:           bs.SavedUnits,
		PipelineDepth:        p.spec.PipelineDepth,
		InstallmentsInFlight: int(p.inFlight.Load()),
		PackedJobs:           p.packedJobs,
		VerifyMemoHits:       ms.Hits,
		VerifyMemoSize:       ms.Size,
		SentinelViolations:   p.sentinel.Violations(),
		Traffic:              p.state.Traffic,
		PhaseMS:              phase,
		BusEvents:            events,
	}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.spec.Name }

// Rounds returns the number of rounds the pool has played.
func (p *Pool) Rounds() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state.Round
}
