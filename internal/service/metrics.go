package service

import (
	"sort"
	"sync"

	"dlsbl/internal/obs"
	"dlsbl/internal/stats"
)

// ring is a fixed-capacity sample reservoir for latency quantiles: it
// keeps the most recent ringCap observations, which is what a service
// dashboard wants (current tail behavior, not all-time history).
const ringCap = 4096

type ring struct {
	buf  []float64
	next int
	full bool
}

func (r *ring) add(x float64) {
	if r.buf == nil {
		r.buf = make([]float64, 0, ringCap)
	}
	if !r.full && len(r.buf) < ringCap {
		r.buf = append(r.buf, x)
		return
	}
	r.full = true
	r.buf[r.next] = x
	r.next = (r.next + 1) % ringCap
}

func (r *ring) samples() []float64 {
	return append([]float64(nil), r.buf...)
}

// metrics aggregates the service counters and latency reservoirs. The
// counters are cumulative since server start; the latency quantiles are
// over the most recent ringCap jobs.
type metrics struct {
	mu sync.Mutex

	jobsSubmitted int64
	jobsCompleted int64 // result delivered, no error
	jobsFailed    int64 // result delivered with an error
	jobsRejected  int64 // refused for backpressure

	running     int
	peakRunning int

	rounds          int64 // protocol rounds played (completed or terminated)
	evictions       int64
	finedProcessors int64
	retransmits     int64

	queueWaitMS ring
	runMS       ring
}

func newMetrics() *metrics { return &metrics{} }

func (m *metrics) submitted(n int) {
	m.mu.Lock()
	m.jobsSubmitted += int64(n)
	m.mu.Unlock()
}

func (m *metrics) rejected(n int) {
	m.mu.Lock()
	m.jobsRejected += int64(n)
	m.mu.Unlock()
}

func (m *metrics) runStarted() {
	m.mu.Lock()
	m.running++
	if m.running > m.peakRunning {
		m.peakRunning = m.running
	}
	m.mu.Unlock()
}

func (m *metrics) runFinished() {
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
}

// finished folds one job result into the counters.
func (m *metrics) finished(res JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if res.Error == "" {
		m.jobsCompleted++
	} else {
		m.jobsFailed++
	}
	// A round was played iff the protocol produced an outcome — Bids is
	// set on every outcome, completed or terminated, but absent when the
	// run failed outright.
	if res.Error == "" || len(res.Bids) > 0 {
		m.rounds++
	}
	m.evictions += int64(len(res.Evictions))
	for _, f := range res.Fines {
		if f > 0 {
			m.finedProcessors++
		}
	}
	if res.Fault != nil {
		m.retransmits += int64(res.Fault.Retransmits)
	}
	m.queueWaitMS.add(res.QueueMS)
	m.runMS.add(res.RunMS)
}

// LatencySummary reports distribution statistics over the most recent
// jobs (up to 4096), in milliseconds, computed with internal/stats.
type LatencySummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

func summarize(xs []float64) LatencySummary {
	s := stats.Summarize(xs)
	if s.N == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		N:    s.N,
		Mean: s.Mean,
		Min:  s.Min,
		Max:  s.Max,
		P50:  stats.Quantile(xs, 0.50),
		P90:  stats.Quantile(xs, 0.90),
		P99:  stats.Quantile(xs, 0.99),
	}
}

// MetricsSnapshot is the GET /metrics body.
type MetricsSnapshot struct {
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		PeakRun   int   `json:"peak_running"`
	} `json:"jobs"`
	Protocol struct {
		Rounds          int64 `json:"rounds"`
		Evictions       int64 `json:"evictions"`
		FinedProcessors int64 `json:"fined_processors"`
		Retransmits     int64 `json:"retransmits"`
	} `json:"protocol"`
	LatencyMS struct {
		QueueWait LatencySummary `json:"queue_wait"`
		Run       LatencySummary `json:"run"`
	} `json:"latency_ms"`
	// Multiload aggregates the amortized-bidding savings server-wide:
	// across every Multiload pool, the bus traffic the reused bids
	// avoided (DeliveriesSaved is the Θ(m²) term) and the rebids the
	// profile changes forced.
	Multiload struct {
		Pools           int `json:"pools"`
		Rebids          int `json:"rebids"`
		MessagesSaved   int `json:"messages_saved"`
		DeliveriesSaved int `json:"deliveries_saved"`
		UnitsSaved      int `json:"units_saved"`
	} `json:"multiload"`
	// Build identifies the running binary (module version, VCS revision).
	Build obs.BuildInfo  `json:"build"`
	Pools []PoolSnapshot `json:"pools"`
}

// Metrics returns a consistent snapshot of the counters, latency
// quantiles and per-pool state.
func (s *Server) Metrics() MetricsSnapshot {
	var snap MetricsSnapshot
	m := s.metrics
	m.mu.Lock()
	snap.Jobs.Submitted = m.jobsSubmitted
	snap.Jobs.Completed = m.jobsCompleted
	snap.Jobs.Failed = m.jobsFailed
	snap.Jobs.Rejected = m.jobsRejected
	snap.Jobs.Running = m.running
	snap.Jobs.PeakRun = m.peakRunning
	snap.Protocol.Rounds = m.rounds
	snap.Protocol.Evictions = m.evictions
	snap.Protocol.FinedProcessors = m.finedProcessors
	snap.Protocol.Retransmits = m.retransmits
	wait := m.queueWaitMS.samples()
	run := m.runMS.samples()
	m.mu.Unlock()
	snap.Jobs.Queued = s.Queued()
	snap.LatencyMS.QueueWait = summarize(wait)
	snap.LatencyMS.Run = summarize(run)

	s.mu.Lock()
	pools := make([]*Pool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	sort.Slice(pools, func(i, j int) bool { return pools[i].spec.Name < pools[j].spec.Name })
	for _, p := range pools {
		ps := p.Snapshot()
		if ps.Multiload {
			snap.Multiload.Pools++
			snap.Multiload.Rebids += ps.Rebids
			snap.Multiload.MessagesSaved += ps.MessagesSaved
			snap.Multiload.DeliveriesSaved += ps.DeliveriesSaved
			snap.Multiload.UnitsSaved += ps.UnitsSaved
		}
		snap.Pools = append(snap.Pools, ps)
	}
	snap.Build = obs.Build()
	return snap
}
