package service

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4, the `GET /metrics?format=prometheus` body. The format is
// hand-written — a dozen metric families do not justify a client
// library dependency — and every family carries HELP/TYPE headers so a
// scraper's metadata view is complete. Counters are cumulative since
// server start; the latency quantiles are over the most recent ringCap
// jobs (pre-aggregated summaries, not histograms, because the service
// already keeps exact reservoirs).
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	b := &strings.Builder{}
	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	sample := func(name, labels string, v float64) {
		if labels != "" {
			fmt.Fprintf(b, "%s{%s} %g\n", name, labels, v)
		} else {
			fmt.Fprintf(b, "%s %g\n", name, v)
		}
	}

	family("dlsbl_jobs_total", "Jobs by terminal disposition since server start.", "counter")
	sample("dlsbl_jobs_total", `state="submitted"`, float64(snap.Jobs.Submitted))
	sample("dlsbl_jobs_total", `state="completed"`, float64(snap.Jobs.Completed))
	sample("dlsbl_jobs_total", `state="failed"`, float64(snap.Jobs.Failed))
	sample("dlsbl_jobs_total", `state="rejected"`, float64(snap.Jobs.Rejected))

	family("dlsbl_jobs_queued", "Jobs admitted and not yet picked up by a pool runner.", "gauge")
	sample("dlsbl_jobs_queued", "", float64(snap.Jobs.Queued))
	family("dlsbl_jobs_running", "Protocol runs executing right now.", "gauge")
	sample("dlsbl_jobs_running", "", float64(snap.Jobs.Running))
	family("dlsbl_jobs_running_peak", "High-water mark of concurrent protocol runs.", "gauge")
	sample("dlsbl_jobs_running_peak", "", float64(snap.Jobs.PeakRun))

	family("dlsbl_protocol_rounds_total", "Protocol rounds played (completed or terminated).", "counter")
	sample("dlsbl_protocol_rounds_total", "", float64(snap.Protocol.Rounds))
	family("dlsbl_protocol_evictions_total", "Processors evicted for unreachability.", "counter")
	sample("dlsbl_protocol_evictions_total", "", float64(snap.Protocol.Evictions))
	family("dlsbl_protocol_fined_total", "Processor fines levied by the referee.", "counter")
	sample("dlsbl_protocol_fined_total", "", float64(snap.Protocol.FinedProcessors))
	family("dlsbl_protocol_retransmits_total", "Transport retransmissions across all rounds.", "counter")
	sample("dlsbl_protocol_retransmits_total", "", float64(snap.Protocol.Retransmits))

	family("dlsbl_multiload_rebids_total", "Re-bids forced by bid-profile changes, across Multiload pools.", "counter")
	sample("dlsbl_multiload_rebids_total", "", float64(snap.Multiload.Rebids))
	family("dlsbl_multiload_saved_total", "Bus traffic the reused bids avoided, across Multiload pools.", "counter")
	sample("dlsbl_multiload_saved_total", `unit="messages"`, float64(snap.Multiload.MessagesSaved))
	sample("dlsbl_multiload_saved_total", `unit="deliveries"`, float64(snap.Multiload.DeliveriesSaved))
	sample("dlsbl_multiload_saved_total", `unit="units"`, float64(snap.Multiload.UnitsSaved))

	latency := func(stage string, s LatencySummary) {
		labels := func(q string) string { return fmt.Sprintf(`stage=%q,quantile=%q`, stage, q) }
		sample("dlsbl_latency_ms", labels("0.5"), s.P50)
		sample("dlsbl_latency_ms", labels("0.9"), s.P90)
		sample("dlsbl_latency_ms", labels("0.99"), s.P99)
	}
	family("dlsbl_latency_ms", "Job latency quantiles over the most recent jobs, in milliseconds.", "gauge")
	latency("queue_wait", snap.LatencyMS.QueueWait)
	latency("run", snap.LatencyMS.Run)

	family("dlsbl_pool_rounds", "Rounds a pool has played.", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_rounds", fmt.Sprintf("pool=%q", p.Name), float64(p.Rounds))
	}
	family("dlsbl_pool_queued", "Jobs waiting in a pool's FIFO.", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_queued", fmt.Sprintf("pool=%q", p.Name), float64(p.Queued))
	}
	family("dlsbl_pool_banned", "Processors a pool has banned.", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_banned", fmt.Sprintf("pool=%q", p.Name), float64(len(p.Banned)))
	}
	family("dlsbl_pool_bus_deliveries_total", "Receiver-side bus deliveries a pool's rounds cost (the Θ(m²) term).", "counter")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_bus_deliveries_total", fmt.Sprintf("pool=%q", p.Name), float64(p.Traffic.Deliveries))
	}

	family("dlsbl_pool_pipeline_depth", "Configured pipeline depth (jobs a runner batch packs into one bus schedule; <=1 is plain FIFO).", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_pipeline_depth", fmt.Sprintf("pool=%q", p.Name), float64(p.PipelineDepth))
	}
	family("dlsbl_pool_installments_in_flight", "Installment sub-rounds of the load being served right now.", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_installments_in_flight", fmt.Sprintf("pool=%q", p.Name), float64(p.InstallmentsInFlight))
	}
	family("dlsbl_pool_packed_jobs_total", "Jobs packed into shared bus schedules over the pool's lifetime.", "counter")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_packed_jobs_total", fmt.Sprintf("pool=%q", p.Name), float64(p.PackedJobs))
	}

	family("dlsbl_pool_sentinel_violations", "Economic-invariant violations the pool's sentinel has latched; any nonzero value is an incident, not adversary noise.", "gauge")
	for _, p := range snap.Pools {
		sample("dlsbl_pool_sentinel_violations", fmt.Sprintf("pool=%q", p.Name), float64(len(p.SentinelViolations)))
	}

	family("dlsbl_pool_phase_ms", "Per-phase wall-clock duration quantiles over a pool's recent rounds.", "gauge")
	for _, p := range snap.Pools {
		for _, phase := range sortedKeys(p.PhaseMS) {
			s := p.PhaseMS[phase]
			labels := func(q string) string {
				return fmt.Sprintf(`pool=%q,phase=%q,quantile=%q`, p.Name, phase, q)
			}
			sample("dlsbl_pool_phase_ms", labels("0.5"), s.P50)
			sample("dlsbl_pool_phase_ms", labels("0.9"), s.P90)
			sample("dlsbl_pool_phase_ms", labels("0.99"), s.P99)
		}
	}

	family("dlsbl_pool_events_total", "Bus, transport and protocol events by kind (obs event kinds).", "counter")
	for _, p := range snap.Pools {
		for _, kind := range sortedKeys(p.BusEvents) {
			sample("dlsbl_pool_events_total",
				fmt.Sprintf(`pool=%q,kind=%q`, p.Name, kind), float64(p.BusEvents[kind]))
		}
	}

	family("dlsbl_build_info", "Build metadata; the value is always 1.", "gauge")
	sample("dlsbl_build_info", fmt.Sprintf(
		`go_version=%q,module=%q,version=%q,vcs_revision=%q,vcs_modified="%t"`,
		snap.Build.GoVersion, snap.Build.Module, snap.Build.Version,
		snap.Build.VCSRevision, snap.Build.VCSModified), 1)

	_, err := io.WriteString(w, b.String())
	return err
}
