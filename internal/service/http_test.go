package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPRoundTrip drives the full API surface over a real listener:
// pool creation, an NDJSON job stream with artifacts, pool snapshots and
// the metrics endpoint.
func TestHTTPRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 32})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/pools", `{"name":"alpha","network":"ncp-fe","w":[1,1.5,2,2.5],"policy":"ban-deviants"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create pool: %s", resp.Status)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/jobs",
		`{"pool":"alpha","artifacts":["timeline","transcript"],"jobs":[{"z":0.2,"seed":1},{"z":0.2,"seed":2,"behaviors":["","payment-cheat-2x"]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var events []string
	var results []JobResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, probe.Event)
		if probe.Event == "result" {
			var res JobResult
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
	}
	resp.Body.Close()
	if want := []string{"accepted", "result", "result", "done"}; strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("event stream = %v, want %v", events, want)
	}
	if results[0].Round != 0 || results[1].Round != 1 {
		t.Fatalf("rounds = %d,%d; stream must preserve submission order", results[0].Round, results[1].Round)
	}
	if results[0].Timeline == nil || len(results[0].Transcript) == 0 {
		t.Fatal("requested artifacts missing from result")
	}
	if results[1].Fines[1] == 0 || len(results[1].Banned) != 1 {
		t.Fatalf("cheat round: fines=%v banned=%v", results[1].Fines, results[1].Banned)
	}

	// Pool snapshot reflects both rounds and the warm keyring.
	resp, err := http.Get(ts.URL + "/v1/pools/alpha")
	if err != nil {
		t.Fatal(err)
	}
	var snap PoolSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Rounds != 2 || snap.WarmKeys != 6 {
		t.Fatalf("snapshot rounds=%d warm_keys=%d, want 2 and 6", snap.Rounds, snap.WarmKeys)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Jobs.Completed != 2 || m.LatencyMS.Run.N != 2 || m.Protocol.FinedProcessors != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestHTTPStatusCodes maps the admission errors onto 404/429/400/503.
func TestHTTPStatusCodes(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookBeforeRun = func(p *Pool, task *Task) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}

	check := func(body string, want int) {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/jobs", body)
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s → %s, want %d", body, resp.Status, want)
		}
	}
	check(`{"pool":"ghost","jobs":[{"z":0.2,"seed":1}]}`, http.StatusNotFound)
	check(`{"pool":"p","jobs":[{"z":0.2,"seed":1,"behaviors":["nope"]}]}`, http.StatusBadRequest)
	check(`{"pool":"p"`, http.StatusBadRequest)

	// Park the runner, fill the queue, then overflow → 429.
	go func() {
		resp := postJSON(t, ts.URL+"/v1/jobs", `{"pool":"p","jobs":[{"z":0.2,"seed":1}]}`)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
	}()
	<-started
	if _, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", `{"pool":"p","jobs":[{"z":0.2,"seed":3}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow → %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()
	close(release)
	srv.Close()

	resp = postJSON(t, ts.URL+"/v1/jobs", `{"pool":"p","jobs":[{"z":0.2,"seed":4}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown → %s, want 503", resp.Status)
	}
	resp.Body.Close()
}

// TestHTTPFaultyJob exercises the per-job fault plan and retry policy
// through the JSON surface.
func TestHTTPFaultyJob(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/pools", `{"name":"p","w":[1,1.5,2,2.5]}`)
	resp.Body.Close()

	body := `{"pool":"p","jobs":[{"z":0.2,"seed":7,
		"faults":{"seed":42,"drop":0.2,"duplicate":0.1},
		"retry":{"max_attempts":8}}]}`
	resp = postJSON(t, ts.URL+"/v1/jobs", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	var res JobResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Event string `json:"event"`
		}
		_ = json.Unmarshal(sc.Bytes(), &probe)
		if probe.Event == "result" {
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				t.Fatal(err)
			}
		}
	}
	if res.Error != "" {
		t.Fatalf("faulty job failed: %s", res.Error)
	}
	if res.Fault == nil {
		t.Fatal("fault stats absent; JSON fault plan did not reach the bus")
	}
	direct, err := protocol.Run(protocol.Config{
		Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5}, Seed: 7,
		Faults: faultPlan(0.2), Retry: protocol.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", res.Fault.Retransmits) != fmt.Sprintf("%v", direct.Fault.Retransmits) {
		t.Fatalf("retransmits %d, direct run got %d", res.Fault.Retransmits, direct.Fault.Retransmits)
	}
	if !equalF64(res.Payments, direct.Payments) {
		t.Fatalf("payments %v, direct run got %v", res.Payments, direct.Payments)
	}
}
