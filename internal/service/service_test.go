package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/session"
)

func faultPlan(p float64) *bus.FaultPlan {
	return &bus.FaultPlan{Seed: 42, Drop: p, Duplicate: p / 2}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchMatchesSessionRun pins the service's core contract: a batch of
// jobs against one pool — including a deviant round and the ensuing ban —
// produces per-round payments, fines and utilities BIT-identical to a
// sequential session.Run of the same jobs, even though the pool reuses
// warm keys the direct session never sees.
func TestBatchMatchesSessionRun(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	srv := New(Config{Workers: 4, QueueDepth: 64})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: w, Policy: "ban-deviants"}); err != nil {
		t.Fatal(err)
	}

	specs := make([]JobSpec, 6)
	jobs := make([]session.Job, 6)
	for i := range specs {
		specs[i] = JobSpec{Z: 0.2, Seed: int64(i + 1)}
		jobs[i] = session.Job{Z: 0.2, Seed: int64(i + 1)}
	}
	specs[1].Behaviors = []string{"", "payment-cheat-2x"}
	jobs[1].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}

	tasks, err := srv.Submit("p", specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	ref := &session.Session{Network: dlt.NCPFE, TrueW: w, Policy: session.BanDeviants}
	rep, err := ref.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i, task := range tasks {
		res := task.Wait()
		if res.Error != "" {
			t.Fatalf("job %d: %s", i, res.Error)
		}
		if res.Round != i {
			t.Fatalf("job %d ran as round %d", i, res.Round)
		}
		out := rep.Rounds[i]
		if !equalF64(res.Payments, out.Payments) {
			t.Errorf("round %d payments = %v, session.Run got %v", i, res.Payments, out.Payments)
		}
		if !equalF64(res.Fines, out.Fines) {
			t.Errorf("round %d fines = %v, session.Run got %v", i, res.Fines, out.Fines)
		}
		if !equalF64(res.Utilities, out.Utilities) {
			t.Errorf("round %d utilities = %v, session.Run got %v", i, res.Utilities, out.Utilities)
		}
	}
	p, _ := srv.Pool("p")
	snap := p.Snapshot()
	if len(snap.Banned) != 1 || snap.Banned[0] != "P2" {
		t.Fatalf("banned = %v, want [P2]", snap.Banned)
	}
	if !equalF64(snap.CumulativeUtility, rep.CumulativeUtility) {
		t.Fatalf("cumulative utility = %v, session.Run got %v", snap.CumulativeUtility, rep.CumulativeUtility)
	}
	if want := len(w) + 2; snap.WarmKeys != want {
		t.Fatalf("warm keys = %d, want %d (m processors + user + referee)", snap.WarmKeys, want)
	}
}

// TestConcurrentSameSubmissionsSerialize hammers one pool from many
// goroutines. Every job must run (rounds counter = total), and — the
// serialization guarantee — every job's payments must be bit-identical to
// a direct cold protocol.Run with the same seed, which could not hold if
// two rounds interleaved inside the pool's session state.
func TestConcurrentSameSubmissionsSerialize(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	srv := New(Config{Workers: 4, QueueDepth: 256})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: w}); err != nil {
		t.Fatal(err)
	}

	const n = 40
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		out, err := protocol.Run(protocol.Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Payments
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tasks, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: int64(i + 1)}}, nil)
			if err != nil {
				errs <- err
				return
			}
			res := tasks[0].Wait()
			if res.Error != "" {
				errs <- errors.New(res.Error)
				return
			}
			if !equalF64(res.Payments, want[i]) {
				errs <- fmt.Errorf("seed %d: payments %v, direct run got %v", i+1, res.Payments, want[i])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	p, _ := srv.Pool("p")
	if p.Rounds() != n {
		t.Fatalf("pool played %d rounds, want %d", p.Rounds(), n)
	}
}

// overlapRendezvous returns a testHookDuringRun that blocks every runner
// inside the worker-slot section until n of them are there at once, then
// releases everyone (later arrivals pass straight through). It pins the
// cross-pool concurrency contract deterministically: the running-jobs
// gauge provably reaches n, however fast individual rounds are.
func overlapRendezvous(n int) func(*Pool, *Task) {
	var mu sync.Mutex
	met := make(chan struct{})
	count := 0
	return func(*Pool, *Task) {
		mu.Lock()
		count++
		if count == n {
			close(met)
		}
		mu.Unlock()
		<-met
	}
}

// TestDisjointPoolsOverlap checks the other half of the concurrency
// contract: rounds against distinct pools run in parallel (peak running
// protocol executions > 1), while each pool's own rounds stay ordered.
func TestDisjointPoolsOverlap(t *testing.T) {
	srv := New(Config{Workers: 8, QueueDepth: 256})
	defer srv.Close()
	srv.testHookDuringRun = overlapRendezvous(2)
	const pools = 8
	for i := 0; i < pools; i++ {
		spec := PoolSpec{Name: fmt.Sprintf("pool%d", i), TrueW: []float64{1, 1.5, 2, 2.5, 3, 3.5}}
		if _, err := srv.CreatePool(spec); err != nil {
			t.Fatal(err)
		}
	}
	var all []*Task
	for i := 0; i < pools; i++ {
		specs := make([]JobSpec, 10)
		for j := range specs {
			specs[j] = JobSpec{Z: 0.2, Seed: int64(100*i + j + 1)}
		}
		tasks, err := srv.Submit(fmt.Sprintf("pool%d", i), specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, tasks...)
	}
	for _, task := range all {
		if res := task.Wait(); res.Error != "" {
			t.Fatal(res.Error)
		}
	}
	m := srv.Metrics()
	if m.Jobs.PeakRun < 2 {
		t.Fatalf("peak concurrent runs = %d; disjoint pools never overlapped", m.Jobs.PeakRun)
	}
	for i := 0; i < pools; i++ {
		p, _ := srv.Pool(fmt.Sprintf("pool%d", i))
		if p.Rounds() != 10 {
			t.Fatalf("pool%d played %d rounds, want 10", i, p.Rounds())
		}
	}
}

// TestQueueFullBackpressure pins the admission contract deterministically:
// with the single runner parked via the test hook, a queue of depth 2
// admits exactly two more jobs and refuses the next whole batch with
// ErrQueueFull, leaving the queue untouched (all-or-nothing).
func TestQueueFullBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookBeforeRun = func(p *Pool, task *Task) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}

	first, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started // runner holds job 1; queue is empty again

	queued, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 2}, {Z: 0.2, Seed: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Queued() != 2 {
		t.Fatalf("queued = %d, want 2", srv.Queued())
	}
	if _, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 4}}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	// A too-large batch is refused whole even with one slot free.
	if srv.Queued() != 2 {
		t.Fatalf("rejected submission mutated the queue: %d", srv.Queued())
	}
	m := srv.Metrics()
	if m.Jobs.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", m.Jobs.Rejected)
	}

	close(release)
	for _, task := range append(first, queued...) {
		if res := task.Wait(); res.Error != "" {
			t.Fatal(res.Error)
		}
	}
	srv.Close()
}

// TestCloseDrains pins graceful shutdown: jobs admitted before Close all
// deliver results, and submissions after Close fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 64})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookBeforeRun = func(p *Pool, task *Task) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	specs := make([]JobSpec, 5)
	for i := range specs {
		specs[i] = JobSpec{Z: 0.2, Seed: int64(i + 1)}
	}
	tasks, err := srv.Submit("p", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started // four jobs still queued behind the parked runner

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	close(release)
	<-closed

	for i, task := range tasks {
		select {
		case <-task.Done():
		default:
			t.Fatalf("Close returned with job %d unfinished", i)
		}
		if res := task.Result(); res.Error != "" {
			t.Fatalf("job %d: %s", i, res.Error)
		}
	}
	if m := srv.Metrics(); m.Jobs.Completed != 5 {
		t.Fatalf("completed = %d, want 5", m.Jobs.Completed)
	}
	if _, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 9}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit error = %v, want ErrClosed", err)
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "q", TrueW: []float64{1, 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close CreatePool error = %v, want ErrClosed", err)
	}
}

// TestAdmissionValidation: unknown pools, behaviors and artifact names
// fail the whole submission up front.
func TestAdmissionValidation(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("ghost", []JobSpec{{Z: 0.2, Seed: 1}}, nil); !errors.Is(err, ErrUnknownPool) {
		t.Fatalf("unknown pool error = %v", err)
	}
	if _, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 1, Behaviors: []string{"time-traveler"}}}, nil); err == nil {
		t.Fatal("unknown behavior admitted")
	}
	if _, err := srv.Submit("p", []JobSpec{{Z: 0.2, Seed: 1}}, []string{"hologram"}); err == nil {
		t.Fatal("unknown artifact admitted")
	}
	if _, err := srv.Submit("p", nil, nil); err == nil {
		t.Fatal("empty job list admitted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 2}}); err == nil {
		t.Fatal("duplicate pool admitted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "bad", TrueW: []float64{1}}); err == nil {
		t.Fatal("one-processor pool admitted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "bad", TrueW: []float64{1, 2}, Network: "ring"}); err == nil {
		t.Fatal("unknown network admitted")
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "bad", TrueW: []float64{1, 2}, Policy: "lenient"}); err == nil {
		t.Fatal("unknown policy admitted")
	}
}

// TestFaultyJobThroughService runs a job under a fault plan through the
// pool and checks the transport counters surface in the result.
func TestFaultyJobThroughService(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "p", TrueW: []float64{1, 1.5, 2, 2.5}}); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		Z: 0.2, Seed: 7,
		Faults: faultPlan(0.2),
		Retry:  &protocol.RetryPolicy{MaxAttempts: 8},
	}
	tasks, err := srv.Submit("p", []JobSpec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := tasks[0].Wait()
	if res.Error != "" {
		t.Fatalf("faulty job failed: %s", res.Error)
	}
	if res.Fault == nil || res.Fault.Retransmits == 0 {
		t.Fatalf("fault stats = %+v, want retransmissions recorded", res.Fault)
	}

	// Payments under faults stay bit-identical to the direct run.
	direct, err := protocol.Run(protocol.Config{
		Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5}, Seed: 7,
		Faults: faultPlan(0.2), Retry: protocol.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !equalF64(res.Payments, direct.Payments) {
		t.Fatalf("payments %v, direct faulty run got %v", res.Payments, direct.Payments)
	}
}

// TestMultiloadPoolAmortizesBidding pins the service's amortized-bidding
// surface: a multiload pool bids once, streams bid_reused=true for every
// later job, exposes the savings in its snapshot, and still produces
// payments bit-identical to a per-job pool over the same specs.
func TestMultiloadPoolAmortizesBidding(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	srv := New(Config{Workers: 4, QueueDepth: 64})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "amortized", TrueW: w, Multiload: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreatePool(PoolSpec{Name: "perjob", TrueW: w}); err != nil {
		t.Fatal(err)
	}

	specs := make([]JobSpec, 5)
	for i := range specs {
		specs[i] = JobSpec{Z: 0.2, Seed: int64(i + 1)}
	}

	warm, err := srv.Submit("amortized", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := srv.Submit("perjob", specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	m := len(w)
	for i := range specs {
		wres, cres := warm[i].Wait(), cold[i].Wait()
		if wres.Error != "" || cres.Error != "" {
			t.Fatalf("job %d: warm=%q cold=%q", i, wres.Error, cres.Error)
		}
		if wres.BidReused != (i > 0) {
			t.Errorf("job %d: bid_reused = %v, want %v", i, wres.BidReused, i > 0)
		}
		if wres.RoundID == "" {
			t.Errorf("job %d: multiload result has no round_id", i)
		}
		if cres.BidReused || cres.RoundID != "" {
			t.Errorf("job %d: per-job pool leaked multiload fields: reused=%v id=%q",
				i, cres.BidReused, cres.RoundID)
		}
		if !equalF64(wres.Payments, cres.Payments) {
			t.Errorf("job %d payments diverge: multiload %v, per-job %v", i, wres.Payments, cres.Payments)
		}
		if !equalF64(wres.Utilities, cres.Utilities) {
			t.Errorf("job %d utilities diverge: multiload %v, per-job %v", i, wres.Utilities, cres.Utilities)
		}
	}

	p, _ := srv.Pool("amortized")
	snap := p.Snapshot()
	if !snap.Multiload {
		t.Error("snapshot does not mark the pool multiload")
	}
	if snap.Rebids != 1 || snap.RoundsSinceRebid != len(specs)-1 {
		t.Errorf("snapshot rebids=%d sinceRebid=%d, want 1 and %d", snap.Rebids, snap.RoundsSinceRebid, len(specs)-1)
	}
	// Each of the 4 reuse rounds skips m bid broadcasts (m·m deliveries).
	if want := (len(specs) - 1) * m * m; snap.DeliveriesSaved != want {
		t.Errorf("snapshot deliveries_saved=%d, want %d", snap.DeliveriesSaved, want)
	}
	if snap.MessagesSaved != (len(specs)-1)*m {
		t.Errorf("snapshot messages_saved=%d, want %d", snap.MessagesSaved, (len(specs)-1)*m)
	}

	cp, _ := srv.Pool("perjob")
	csnap := cp.Snapshot()
	if csnap.Multiload || csnap.Rebids != 0 || csnap.DeliveriesSaved != 0 {
		t.Errorf("per-job pool snapshot leaked multiload telemetry: %+v", csnap)
	}
}

// TestMultiloadPoolRebidsAfterBan drives a ban-deviants multiload pool
// through a cheat round and checks the service re-bids exactly once — the
// ban flips the bid profile. Because the ban is a single-member change
// (P2 leaves), that re-bid is an incremental splice, not a full Θ(m²)
// exchange; the pool then settles back into reuse.
func TestMultiloadPoolRebidsAfterBan(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	srv := New(Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	if _, err := srv.CreatePool(PoolSpec{Name: "strict", TrueW: w, Policy: "ban-deviants", Multiload: true}); err != nil {
		t.Fatal(err)
	}

	specs := make([]JobSpec, 5)
	for i := range specs {
		specs[i] = JobSpec{Z: 0.2, Seed: int64(i + 1)}
	}
	specs[1].Behaviors = []string{"", "payment-cheat-2x"}

	tasks, err := srv.Submit("strict", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 bids; round 1 reuses (a payment cheat doesn't move the
	// bids); round 2 splices because P2's ban forces it to abstain — a
	// single-member leave; rounds 3-4 reuse the post-ban cache.
	wantReused := []bool{false, true, false, true, true}
	wantSpliced := []bool{false, false, true, false, false}
	for i, task := range tasks {
		res := task.Wait()
		if res.Error != "" {
			t.Fatalf("job %d: %s", i, res.Error)
		}
		if res.BidReused != wantReused[i] {
			t.Errorf("job %d: bid_reused = %v, want %v", i, res.BidReused, wantReused[i])
		}
		if res.BidSpliced != wantSpliced[i] {
			t.Errorf("job %d: bid_spliced = %v, want %v", i, res.BidSpliced, wantSpliced[i])
		}
	}

	p, _ := srv.Pool("strict")
	snap := p.Snapshot()
	if snap.Rebids != 1 || snap.IncrementalRebids != 1 || snap.RoundsSinceRebid != 2 {
		t.Errorf("snapshot rebids=%d incremental=%d sinceRebid=%d, want 1, 1 and 2",
			snap.Rebids, snap.IncrementalRebids, snap.RoundsSinceRebid)
	}
	if snap.VerifyMemoHits == 0 {
		t.Errorf("verify_memo_hits = 0, want > 0 (reuse rounds should hit the pool memo)")
	}
	if got := snap.Banned; len(got) != 1 || got[0] != "P2" {
		t.Errorf("banned = %v, want [P2]", got)
	}
}
