package referee

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// Audit transcript. The referee is only "minimally trusted": it holds no
// processor parameters unless a conflict arises, and its decisions move
// real money. To make those decisions reviewable after the fact, every
// adjudication and settlement is appended to a hash-chained transcript —
// each entry commits to its content AND to the previous entry's digest,
// so no record can be silently altered, reordered or dropped without
// breaking the chain.

// AuditEntry is one transcript record. Round carries the session-salted
// round ID the referee was bound to when the entry was sealed (empty for
// standalone runs); it is covered by the entry hash, so the transcript
// commits to WHICH round every adjudication belonged to — a replayed
// message from an earlier round cannot be laundered into a later round's
// chain without breaking it.
type AuditEntry struct {
	Seq      int      `json:"seq"`
	Action   string   `json:"action"` // "verdict", "settlement", "meter", "payments", "eviction", "bid-reuse"
	Phase    string   `json:"phase"`
	Round    string   `json:"round,omitempty"`
	Guilty   []string `json:"guilty,omitempty"`
	Detail   string   `json:"detail"`
	PrevHash string   `json:"prev"`
	Hash     string   `json:"hash"` // SHA-256 over (seq, action, phase, round, guilty, detail, prev)
}

// AuditLog is the referee's append-only, hash-chained transcript.
type AuditLog struct {
	entries []AuditEntry
}

// genesisHash anchors the chain.
const genesisHash = "dls-bl-ncp-audit-genesis"

func (l *AuditLog) lastHash() string {
	if len(l.entries) == 0 {
		return genesisHash
	}
	return l.entries[len(l.entries)-1].Hash
}

// Append records an action and returns the sealed entry. Standalone runs
// have no round ID; session-bound callers use AppendRound.
func (l *AuditLog) Append(action, phase string, guilty []string, detail string) AuditEntry {
	return l.AppendRound("", action, phase, guilty, detail)
}

// AppendRound records an action stamped with the session round it belongs
// to and returns the sealed entry.
func (l *AuditLog) AppendRound(round, action, phase string, guilty []string, detail string) AuditEntry {
	e := AuditEntry{
		Seq:      len(l.entries),
		Action:   action,
		Phase:    phase,
		Round:    round,
		Guilty:   append([]string(nil), guilty...),
		Detail:   detail,
		PrevHash: l.lastHash(),
	}
	e.Hash = hashEntry(e)
	l.entries = append(l.entries, e)
	return e
}

func hashEntry(e AuditEntry) string {
	// The hash field itself is excluded from the digest.
	e.Hash = ""
	payload, err := json.Marshal(e)
	if err != nil {
		// AuditEntry contains only marshalable fields; this cannot fire.
		panic("referee: audit entry not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Entries returns a copy of the transcript.
func (l *AuditLog) Entries() []AuditEntry {
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the number of records.
func (l *AuditLog) Len() int { return len(l.entries) }

// Verify re-derives the whole chain and reports the first inconsistency:
// a mutated entry, a broken link or a bad sequence number.
func (l *AuditLog) Verify() error {
	prev := genesisHash
	for i, e := range l.entries {
		if e.Seq != i {
			return fmt.Errorf("referee: audit entry %d has sequence %d", i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("referee: audit entry %d breaks the chain", i)
		}
		if hashEntry(e) != e.Hash {
			return fmt.Errorf("referee: audit entry %d content does not match its hash", i)
		}
		prev = e.Hash
	}
	return nil
}

// VerifyEntries validates a transcript copy that left the referee (e.g.
// one attached to a protocol outcome).
func VerifyEntries(entries []AuditEntry) error {
	l := AuditLog{entries: entries}
	return l.Verify()
}

// String renders the transcript for humans.
func (l *AuditLog) String() string {
	var b strings.Builder
	for _, e := range l.entries {
		guilty := "-"
		if len(e.Guilty) > 0 {
			guilty = strings.Join(e.Guilty, "+")
		}
		fmt.Fprintf(&b, "[%03d] %-10s %-10s guilty=%-8s %s\n", e.Seq, e.Action, e.Phase, guilty, e.Detail)
	}
	return b.String()
}
