package referee

import (
	"math"
	"strings"
	"testing"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/sig"
	"dlsbl/internal/workload"
)

// fixture bundles everything a referee test needs: m processors with
// keys, a registry, a ledger and the referee itself.
type fixture struct {
	procs  []string
	keys   map[string]*sig.KeyPair
	reg    *sig.Registry
	ledger *payment.Ledger
	ref    *Referee
	mech   core.Mechanism
}

func newFixture(t *testing.T, m int, fine float64) *fixture {
	t.Helper()
	f := &fixture{
		keys: make(map[string]*sig.KeyPair),
		reg:  sig.NewRegistry(),
		mech: core.Mechanism{Network: dlt.NCPFE, Z: 0.2},
	}
	accounts := []string{Account, "user"}
	for i := 0; i < m; i++ {
		id := procName(i)
		f.procs = append(f.procs, id)
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		f.keys[id] = k
		if err := f.reg.Register(id, k.Public); err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, id)
	}
	var err error
	f.ledger, err = payment.NewLedger(accounts...)
	if err != nil {
		t.Fatal(err)
	}
	f.ref, err = New(f.reg, f.ledger, f.mech, f.procs, fine)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func procName(i int) string { return "P" + string(rune('1'+i)) }

func (f *fixture) signedBid(t *testing.T, proc string, bid float64) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[proc], KindBid, BidPayload{Proc: proc, Bid: bid})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func (f *fixture) signedVector(t *testing.T, proc string, bids []sig.Envelope) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[proc], KindBidVector, BidVectorPayload{Proc: proc, Bids: bids})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func (f *fixture) bidEnvelopes(t *testing.T, bids []float64) []sig.Envelope {
	t.Helper()
	out := make([]sig.Envelope, len(bids))
	for i, b := range bids {
		out[i] = f.signedBid(t, f.procs[i], b)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 3, 100)
	if _, err := New(nil, f.ledger, f.mech, f.procs, 10); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(f.reg, nil, f.mech, f.procs, 10); err == nil {
		t.Error("nil ledger accepted")
	}
	if _, err := New(f.reg, f.ledger, f.mech, []string{"P1"}, 10); err == nil {
		t.Error("single processor accepted")
	}
	if _, err := New(f.reg, f.ledger, f.mech, []string{"P1", "P1"}, 10); err == nil {
		t.Error("duplicate processors accepted")
	}
	if _, err := New(f.reg, f.ledger, f.mech, []string{"P1", ""}, 10); err == nil {
		t.Error("empty processor id accepted")
	}
	if _, err := New(f.reg, f.ledger, f.mech, f.procs, 0); err == nil {
		t.Error("zero fine accepted")
	}
	if _, err := New(f.reg, f.ledger, f.mech, f.procs, math.Inf(1)); err == nil {
		t.Error("infinite fine accepted")
	}
	if f.ref.Fine() != 100 {
		t.Errorf("Fine() = %v", f.ref.Fine())
	}
}

func TestSuggestedFine(t *testing.T) {
	fine := SuggestedFine([]float64{1, 3, 2}, 1.5)
	if fine != 2*1.5*3 {
		t.Errorf("SuggestedFine = %v, want 9", fine)
	}
	// slackFactor below 1 is clamped.
	if got := SuggestedFine([]float64{2}, 0); got != 4 {
		t.Errorf("clamped SuggestedFine = %v, want 4", got)
	}
}

func TestCheckFineSufficient(t *testing.T) {
	f := newFixture(t, 3, 2)
	if err := f.ref.CheckFineSufficient([]float64{0.5, 0.5, 0.5}); err != nil {
		t.Errorf("sufficient fine rejected: %v", err)
	}
	if err := f.ref.CheckFineSufficient([]float64{1, 1, 1}); err == nil {
		t.Error("insufficient fine accepted")
	}
}

func TestJudgeEquivocationGenuine(t *testing.T) {
	f := newFixture(t, 3, 100)
	a := f.signedBid(t, "P2", 1.5)
	b := f.signedBid(t, "P2", 9.5)
	v, err := f.ref.JudgeEquivocation("P1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" || !v.Terminates || v.Phase != "bidding" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestJudgeEquivocationUnfounded(t *testing.T) {
	f := newFixture(t, 3, 100)
	a := f.signedBid(t, "P2", 1.5)
	same := f.signedBid(t, "P2", 1.5)
	v, err := f.ref.JudgeEquivocation("P1", a, same)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" || !v.Terminates {
		t.Errorf("verdict = %+v", v)
	}
	// A forged pair is also unfounded.
	forged := f.signedBid(t, "P2", 7)
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[0] ^= 1
	v2, err := f.ref.JudgeEquivocation("P3", a, forged)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Guilty) != 1 || v2.Guilty[0] != "P3" {
		t.Errorf("forged-evidence verdict = %+v", v2)
	}
}

func TestJudgeEquivocationUnknownParties(t *testing.T) {
	f := newFixture(t, 2, 100)
	a := f.signedBid(t, "P1", 1)
	if _, err := f.ref.JudgeEquivocation("ghost", a, a); err == nil {
		t.Error("unknown accuser accepted")
	}
	// Equivocation by a registered non-participant.
	outsider, err := sig.GenerateKeyPair("outsider", sig.DeterministicSource(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Register(outsider.ID, outsider.Public); err != nil {
		t.Fatal(err)
	}
	oa, _ := sig.Seal(outsider, KindBid, BidPayload{Proc: "outsider", Bid: 1})
	ob, _ := sig.Seal(outsider, KindBid, BidPayload{Proc: "outsider", Bid: 2})
	if _, err := f.ref.JudgeEquivocation("P1", oa, ob); err == nil {
		t.Error("non-participant equivocation accepted")
	}
}

func TestVerifyBidVector(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	vec := f.signedVector(t, "P1", f.bidEnvelopes(t, bids))
	got, err := f.ref.VerifyBidVector(vec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bids {
		if got[i] != bids[i] {
			t.Errorf("bids = %v, want %v", got, bids)
		}
	}

	short := f.signedVector(t, "P1", f.bidEnvelopes(t, bids)[:2])
	if _, err := f.ref.VerifyBidVector(short); err == nil {
		t.Error("short vector accepted")
	}

	// Entry j signed by the wrong processor.
	swapped := f.bidEnvelopes(t, bids)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := f.ref.VerifyBidVector(f.signedVector(t, "P1", swapped)); err == nil {
		t.Error("wrong-signer entry accepted")
	}

	// Tampered inner bid.
	tampered := f.bidEnvelopes(t, bids)
	tampered[2].Payload = []byte(strings.Replace(string(tampered[2].Payload), "3", "8", 1))
	if _, err := f.ref.VerifyBidVector(f.signedVector(t, "P1", tampered)); err == nil {
		t.Error("tampered inner bid accepted")
	}

	// Vector claiming to be from someone else.
	imposter, err := sig.Seal(f.keys["P2"], KindBidVector, BidVectorPayload{Proc: "P1", Bids: f.bidEnvelopes(t, bids)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ref.VerifyBidVector(imposter); err == nil {
		t.Error("sender/payload mismatch accepted")
	}

	// Non-positive bid inside a correctly signed envelope.
	zeroBids := f.bidEnvelopes(t, []float64{1, 2, 3})
	z, err := sig.Seal(f.keys["P2"], KindBid, BidPayload{Proc: "P2", Bid: 0})
	if err != nil {
		t.Fatal(err)
	}
	zeroBids[1] = z
	if _, err := f.ref.VerifyBidVector(f.signedVector(t, "P1", zeroBids)); err == nil {
		t.Error("zero bid accepted")
	}
}

func countsFromBids(ref *Referee, nBlocks int) func([]float64) ([]int, error) {
	return func(bids []float64) ([]int, error) {
		alloc, err := dlt.Optimal(dlt.Instance{Network: dlt.NCPFE, Z: 0.2, W: bids})
		if err != nil {
			return nil, err
		}
		asg, err := workload.Partition(alloc, nBlocks)
		if err != nil {
			return nil, err
		}
		counts := make([]int, len(asg))
		for i, a := range asg {
			counts[i] = a.Count()
		}
		return counts, nil
	}
}

func TestJudgeAllocationClaimOverDelivery(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	envs := f.bidEnvelopes(t, bids)
	claimVec := f.signedVector(t, "P2", envs)
	origVec := f.signedVector(t, "P1", envs)
	recompute := countsFromBids(f.ref, 100)
	counts, err := recompute(bids)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.ref.JudgeAllocationClaim("P2", "P1", claimVec, origVec, counts[1]+5, recompute)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" || !v.Terminates {
		t.Errorf("over-delivery verdict = %+v", v)
	}
}

func TestJudgeAllocationClaimUnfounded(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	envs := f.bidEnvelopes(t, bids)
	recompute := countsFromBids(f.ref, 100)
	counts, err := recompute(bids)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.ref.JudgeAllocationClaim("P2", "P1",
		f.signedVector(t, "P2", envs), f.signedVector(t, "P1", envs), counts[1], recompute)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" {
		t.Errorf("unfounded-claim verdict = %+v", v)
	}
}

func TestJudgeAllocationClaimShortGoesToMediation(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	envs := f.bidEnvelopes(t, bids)
	recompute := countsFromBids(f.ref, 100)
	counts, _ := recompute(bids)
	if _, err := f.ref.JudgeAllocationClaim("P2", "P1",
		f.signedVector(t, "P2", envs), f.signedVector(t, "P1", envs), counts[1]-1, recompute); err == nil {
		t.Error("short delivery adjudicated without mediation")
	}
}

func TestJudgeAllocationClaimBadVectors(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	good := f.bidEnvelopes(t, bids)
	recompute := countsFromBids(f.ref, 100)

	// Claimant's vector fails (short).
	v, err := f.ref.JudgeAllocationClaim("P2", "P1",
		f.signedVector(t, "P2", good[:2]), f.signedVector(t, "P1", good), 5, recompute)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" {
		t.Errorf("bad claimant vector verdict = %+v", v)
	}

	// Both vectors fail.
	v2, err := f.ref.JudgeAllocationClaim("P2", "P1",
		f.signedVector(t, "P2", good[:2]), f.signedVector(t, "P1", good[:1]), 5, recompute)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Guilty) != 2 {
		t.Errorf("both-bad verdict = %+v", v2)
	}

	// Unknown parties.
	if _, err := f.ref.JudgeAllocationClaim("ghost", "P1", sig.Envelope{}, sig.Envelope{}, 0, recompute); err == nil {
		t.Error("unknown claimant accepted")
	}
	if _, err := f.ref.JudgeAllocationClaim("P2", "ghost", sig.Envelope{}, sig.Envelope{}, 0, recompute); err == nil {
		t.Error("unknown originator accepted")
	}
}

// TestJudgeAllocationClaimSurfacesEquivocation: if the two submitted
// vectors differ at position j with both entries authentic, processor j
// signed two different bids and is the one fined.
func TestJudgeAllocationClaimSurfacesEquivocation(t *testing.T) {
	f := newFixture(t, 3, 100)
	envsA := f.bidEnvelopes(t, []float64{1, 2, 3})
	envsB := f.bidEnvelopes(t, []float64{1, 2, 3})
	envsB[2] = f.signedBid(t, "P3", 7) // P3 signed a second bid
	recompute := countsFromBids(f.ref, 100)
	v, err := f.ref.JudgeAllocationClaim("P2", "P1",
		f.signedVector(t, "P2", envsA), f.signedVector(t, "P1", envsB), 5, recompute)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P3" {
		t.Errorf("equivocation-in-claim verdict = %+v", v)
	}
}

func TestMediateShortDelivery(t *testing.T) {
	f := newFixture(t, 3, 100)
	cases := []struct {
		ev     ShortDeliveryEvidence
		guilty string
	}{
		{ShortDeliveryEvidence{OriginatorRefused: true}, "P1"},
		{ShortDeliveryEvidence{IntegrityFailed: true}, "P1"},
		{ShortDeliveryEvidence{ClaimantStillClaims: true}, "P2"},
		{ShortDeliveryEvidence{}, ""},
	}
	for _, tc := range cases {
		v, err := f.ref.MediateShortDelivery("P2", "P1", tc.ev)
		if err != nil {
			t.Fatal(err)
		}
		if tc.guilty == "" {
			if !v.Clean() || v.Terminates {
				t.Errorf("clean mediation verdict = %+v", v)
			}
			continue
		}
		if len(v.Guilty) != 1 || v.Guilty[0] != tc.guilty || !v.Terminates {
			t.Errorf("evidence %+v verdict = %+v", tc.ev, v)
		}
	}
	if _, err := f.ref.MediateShortDelivery("ghost", "P1", ShortDeliveryEvidence{}); err == nil {
		t.Error("unknown claimant accepted")
	}
	if _, err := f.ref.MediateShortDelivery("P2", "ghost", ShortDeliveryEvidence{}); err == nil {
		t.Error("unknown originator accepted")
	}
}

func TestMeters(t *testing.T) {
	f := newFixture(t, 3, 100)
	if _, err := f.ref.Meters(); err == nil {
		t.Error("missing meters accepted")
	}
	if err := f.ref.RecordMeter("ghost", 1); err == nil {
		t.Error("unknown processor metered")
	}
	if err := f.ref.RecordMeter("P1", -1); err == nil {
		t.Error("negative reading accepted")
	}
	if err := f.ref.RecordMeter("P1", math.NaN()); err == nil {
		t.Error("NaN reading accepted")
	}
	for i, phi := range []float64{0.5, 0.25, 0.75} {
		if err := f.ref.RecordMeter(f.procs[i], phi); err != nil {
			t.Fatal(err)
		}
	}
	phi, err := f.ref.Meters()
	if err != nil {
		t.Fatal(err)
	}
	if phi[0] != 0.5 || phi[1] != 0.25 || phi[2] != 0.75 {
		t.Errorf("meters = %v", phi)
	}
}

func (f *fixture) paymentSubmission(t *testing.T, proc string, q []float64) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[proc], KindPayment, PaymentPayload{Proc: proc, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestJudgePaymentsUnanimous(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	out, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string][]sig.Envelope{}
	for _, p := range f.procs {
		subs[p] = []sig.Envelope{f.paymentSubmission(t, p, out.Payment)}
	}
	v, q, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() || v.Terminates {
		t.Errorf("unanimous verdict = %+v", v)
	}
	for i := range q {
		if q[i] != out.Payment[i] {
			t.Errorf("Q = %v, want %v", q, out.Payment)
		}
	}
}

func TestJudgePaymentsWrongVector(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	out, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]float64(nil), out.Payment...)
	wrong[0] *= 2
	subs := map[string][]sig.Envelope{
		"P1": {f.paymentSubmission(t, "P1", out.Payment)},
		"P2": {f.paymentSubmission(t, "P2", wrong)},
		"P3": {f.paymentSubmission(t, "P3", out.Payment)},
	}
	v, q, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" || v.Terminates {
		t.Errorf("wrong-vector verdict = %+v", v)
	}
	for i := range q {
		if q[i] != out.Payment[i] {
			t.Errorf("recomputed Q = %v, want %v", q, out.Payment)
		}
	}
}

func TestJudgePaymentsEquivocationAndMissing(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	out, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	other := append([]float64(nil), out.Payment...)
	other[1] += 1
	subs := map[string][]sig.Envelope{
		"P1": {f.paymentSubmission(t, "P1", out.Payment), f.paymentSubmission(t, "P1", other)},
		// P2 submits nothing.
		"P3": {f.paymentSubmission(t, "P3", out.Payment)},
	}
	v, _, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 2 || v.Guilty[0] != "P1" || v.Guilty[1] != "P2" {
		t.Errorf("verdict = %+v", v)
	}
	// Duplicate identical submissions are NOT equivocation.
	subs2 := map[string][]sig.Envelope{
		"P1": {f.paymentSubmission(t, "P1", out.Payment), f.paymentSubmission(t, "P1", out.Payment)},
		"P2": {f.paymentSubmission(t, "P2", out.Payment)},
		"P3": {f.paymentSubmission(t, "P3", out.Payment)},
	}
	v2, _, err := f.ref.JudgePayments(bids, exec, subs2)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Clean() {
		t.Errorf("duplicate identical submissions fined: %+v", v2)
	}
}

func TestJudgePaymentsMalformed(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	out, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	// P2's vector has the wrong length; P3 signs a vector naming P1.
	imposter, err := sig.Seal(f.keys["P3"], KindPayment, PaymentPayload{Proc: "P1", Q: out.Payment})
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string][]sig.Envelope{
		"P1": {f.paymentSubmission(t, "P1", out.Payment)},
		"P2": {f.paymentSubmission(t, "P2", out.Payment[:2])},
		"P3": {imposter},
	}
	v, _, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 2 {
		t.Errorf("verdict = %+v", v)
	}
	if _, _, err := f.ref.JudgePayments([]float64{1}, exec, subs); err == nil {
		t.Error("mismatched bids length accepted")
	}
}

func TestSettleFineFlow(t *testing.T) {
	f := newFixture(t, 4, 100)
	v := Verdict{Phase: "bidding", Guilty: []string{"P2"}, Reason: "equivocation", Terminates: true}
	if err := f.ref.Settle(v, nil); err != nil {
		t.Fatal(err)
	}
	// P2 pays 100; P1, P3, P4 receive 100/3 each; escrow empties.
	for account, want := range map[string]float64{
		"P2": -100, "P1": 100.0 / 3, "P3": 100.0 / 3, "P4": 100.0 / 3, Account: 0,
	} {
		got, err := f.ledger.Balance(account)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s balance = %v, want %v", account, got, want)
		}
	}
	if math.Abs(f.ledger.NetDrift()) > 1e-9 {
		t.Errorf("ledger drift %v", f.ledger.NetDrift())
	}
}

func TestSettleWithWorkCompensation(t *testing.T) {
	f := newFixture(t, 3, 100)
	v := Verdict{Phase: "allocating", Guilty: []string{"P1"}, Reason: "misallocation", Terminates: true}
	work := map[string]float64{"P2": 10, "P3": 4}
	if err := f.ref.Settle(v, work); err != nil {
		t.Fatal(err)
	}
	// Pool 100: P2 gets 10 + 43, P3 gets 4 + 43.
	for account, want := range map[string]float64{
		"P1": -100, "P2": 53, "P3": 47, Account: 0,
	} {
		got, _ := f.ledger.Balance(account)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s balance = %v, want %v", account, got, want)
		}
	}
}

func TestSettleGuiltyWorkNotCompensated(t *testing.T) {
	f := newFixture(t, 3, 100)
	v := Verdict{Phase: "allocating", Guilty: []string{"P1"}, Reason: "x", Terminates: true}
	// P1 did work but is guilty: no compensation for it.
	if err := f.ref.Settle(v, map[string]float64{"P1": 50, "P2": 10}); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ledger.Balance("P1")
	if got != -100 {
		t.Errorf("guilty P1 balance = %v, want -100", got)
	}
}

func TestSettleErrors(t *testing.T) {
	f := newFixture(t, 2, 10)
	if err := f.ref.Settle(Verdict{Guilty: []string{"ghost"}}, nil); err == nil {
		t.Error("non-participant fined")
	}
	if err := f.ref.Settle(Verdict{Guilty: []string{"P1", "P2"}}, nil); err == nil {
		t.Error("all-guilty settlement accepted")
	}
	if err := f.ref.Settle(Verdict{Guilty: []string{"P1"}}, map[string]float64{"P2": 50}); err == nil {
		t.Error("work compensation exceeding the pool accepted (F too small)")
	}
	if err := f.ref.Settle(Verdict{Guilty: []string{"P1"}}, map[string]float64{"P2": -1}); err == nil {
		t.Error("negative work compensation accepted")
	}
	// Clean verdict: no-op.
	before := f.ledger.History()
	if err := f.ref.Settle(Verdict{}, nil); err != nil {
		t.Fatal(err)
	}
	if len(f.ledger.History()) != len(before) {
		t.Error("clean verdict moved money")
	}
}

func TestVerdictClean(t *testing.T) {
	if !(Verdict{}).Clean() {
		t.Error("empty verdict not clean")
	}
	if (Verdict{Guilty: []string{"x"}}).Clean() {
		t.Error("guilty verdict clean")
	}
}
