package referee

import (
	"strings"
	"testing"

	"dlsbl/internal/sig"
)

func TestRecordFailoverEntry(t *testing.T) {
	f := newFixture(t, 3, 100)
	e := f.ref.RecordFailover(Account, StandbyAccount)
	if e.Action != "failover" || e.Phase != "processing" {
		t.Errorf("entry = %+v, want a failover/processing entry", e)
	}
	if !strings.Contains(e.Detail, StandbyAccount) || !strings.Contains(e.Detail, Account) {
		t.Errorf("detail %q names neither referee", e.Detail)
	}
	if err := VerifyEntries(f.ref.Transcript()); err != nil {
		t.Fatal(err)
	}
	if s := f.ref.AuditString(); !strings.Contains(s, "failover") {
		t.Errorf("AuditString misses the failover entry:\n%s", s)
	}
}

func TestRecordEvictionEntry(t *testing.T) {
	f := newFixture(t, 3, 100)
	e := f.ref.RecordEviction("P2", "bidding", "unreachable")
	if e.Action != "eviction" || !strings.Contains(e.Detail, "P2") {
		t.Errorf("entry = %+v", e)
	}
	// RecordEviction only logs; Evict is the state change.
	if _, err := f.ref.Meters(); err == nil {
		t.Skip("meters empty as expected") // nothing more to assert here
	}
}

func TestBindRoundsSplicedAndBidSplice(t *testing.T) {
	f := newFixture(t, 3, 100)
	if err := f.ref.BindRoundsSpliced("s:r2", "s:r2", []string{"s:r1", "s:r2", "s:r1"}); err != nil {
		t.Fatal(err)
	}
	e := f.ref.RecordBidSplice("P2", "rate", "s:r1")
	if e.Action != "bid-splice" || !strings.Contains(e.Detail, "P2") {
		t.Errorf("entry = %+v", e)
	}
	if err := f.ref.BindRoundsSpliced("s:r3", "s:r3", []string{"s:r1"}); err == nil {
		t.Error("epoch vector of the wrong length accepted")
	}
}

func TestUseVerifierStillJudges(t *testing.T) {
	f := newFixture(t, 3, 100)
	f.ref.UseVerifier(sig.NewBatchVerifier(f.reg, nil))
	rep := f.witnessReport(t, "P1", "P2", "")
	v, err := f.ref.JudgeWitnessReport(rep, WitnessEvidence{
		Corroborating: 1, Witnesses: 2, Threshold: 2, RelayDelivered: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Errorf("verdict = %+v", v)
	}
}
