package referee

import (
	"encoding/json"
	"math"
	"testing"
	"unicode/utf8"

	"dlsbl/internal/sig"
)

// FuzzPayloadCodec differentially fuzzes the binary codec against the
// JSON codec: for arbitrary payload fields, both encodings must decode
// back to the same value (bit-exact floats included), and arbitrary bytes
// fed to the binary decoder must error or decode — never panic, never
// round-trip to different bytes.
func FuzzPayloadCodec(f *testing.F) {
	f.Add("P1", 1.5, "s01:r3", []byte(nil))
	f.Add("", 0.0, "", []byte{0xD1, 1, 'b'})
	f.Add("P2", math.Inf(1), "r", []byte{0xD1, 1, 'p', 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, proc string, bid float64, round string, raw []byte) {
		// NaN breaks value equality (and encoding/json rejects it), so
		// canonicalize while keeping every other bit pattern, ±Inf
		// included... which json also rejects; the binary codec handles
		// both, so compare those arms by bits instead of via JSON.
		bids := BidPayload{Proc: proc, Bid: bid, Round: round}
		enc := bids.AppendBinary(nil)
		var got BidPayload
		if err := got.DecodeBinary(enc); err != nil {
			t.Fatalf("self-encoded bid failed to decode: %v", err)
		}
		if got.Proc != bids.Proc || got.Round != bids.Round ||
			math.Float64bits(got.Bid) != math.Float64bits(bids.Bid) {
			t.Fatalf("binary round trip: got %+v, want %+v", got, bids)
		}

		pay := PaymentPayload{Proc: proc, Q: []float64{bid, -bid, 0.25}, Round: round}
		pEnc := pay.AppendBinary(nil)
		var gotPay PaymentPayload
		if err := gotPay.DecodeBinary(pEnc); err != nil {
			t.Fatalf("self-encoded payment failed to decode: %v", err)
		}
		for i := range pay.Q {
			if math.Float64bits(gotPay.Q[i]) != math.Float64bits(pay.Q[i]) {
				t.Fatalf("payment q[%d]: %x != %x", i, gotPay.Q[i], pay.Q[i])
			}
		}

		// JSON agreement arm, for values JSON can carry at all: json
		// rejects NaN/±Inf and rewrites invalid UTF-8 to U+FFFD, while
		// the binary codec preserves every bit — so compare only where
		// JSON is lossless.
		if !math.IsNaN(bid) && !math.IsInf(bid, 0) &&
			utf8.ValidString(proc) && utf8.ValidString(round) {
			jb, err := json.Marshal(bids)
			if err != nil {
				t.Fatalf("json marshal: %v", err)
			}
			var viaJSON BidPayload
			if err := json.Unmarshal(jb, &viaJSON); err != nil {
				t.Fatalf("json unmarshal: %v", err)
			}
			if viaJSON != got {
				t.Fatalf("codecs disagree: json %+v, binary %+v", viaJSON, got)
			}
		}

		// Hostile-input arm: arbitrary bytes must decode or error, and a
		// successful decode must re-encode to the identical bytes (the
		// codec admits exactly one encoding per value).
		var hostile BidPayload
		if err := hostile.DecodeBinary(raw); err == nil {
			if re := hostile.AppendBinary(nil); string(re) != string(raw) {
				t.Fatalf("non-canonical encoding accepted: %x re-encodes to %x", raw, re)
			}
		}
		var hostileVec BidVectorPayload
		_ = hostileVec.DecodeBinary(raw)
		var hostileMeters MetersPayload
		_ = hostileMeters.DecodeBinary(raw)
	})
}

var _ = sig.ErrBinaryPayload // keep the import honest if arms change
