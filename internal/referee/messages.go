package referee

import "dlsbl/internal/sig"

// Envelope kinds and payload types for every signed message the protocol
// exchanges. They live here because the referee is the arbiter of their
// validity; the protocol package reuses them.

// Message kinds, one per protocol artifact.
const (
	KindBid       = "dls/bid"        // Bidding phase broadcast
	KindBidVector = "dls/bid-vector" // vector submitted to the referee on a claim
	KindPayment   = "dls/payment"    // Computing Payments submission
	KindMeters    = "dls/meters"     // referee's meter broadcast
	KindClaim     = "dls/claim"      // misallocation claim
)

// BidPayload is the Bidding phase message S_Pi(b_i, P_i). Round, when
// non-empty, binds the bid to the session round it was broadcast in (its
// bid epoch): a bid-reuse session folds a fresh session-salted round ID
// into every signed artifact so the referee can tell a current-epoch bid
// from a replayed or superseded one. Standalone runs leave it empty.
type BidPayload struct {
	Proc  string  `json:"proc"`
	Bid   float64 `json:"bid"`
	Round string  `json:"round,omitempty"`
}

// BidVectorPayload is the full vector of signed bids a party submits to
// the referee when adjudicating an allocation claim. Every element is the
// original signed bid envelope; a party can only alter its own entry by
// signing a second, contradictory bid — which is equivocation evidence.
// Round binds the vector to the round it was submitted in; a vector
// captured in round j and replayed in round j+1 fails VerifyBidVector.
type BidVectorPayload struct {
	Proc  string         `json:"proc"`
	Bids  []sig.Envelope `json:"bids"`
	Round string         `json:"round,omitempty"`
}

// PaymentPayload is the Computing Payments submission S_Pi(P_i, Q).
// Round binds the submission to its round, like BidVectorPayload.Round.
type PaymentPayload struct {
	Proc  string    `json:"proc"`
	Q     []float64 `json:"q"`
	Round string    `json:"round,omitempty"`
}

// MetersPayload is the referee's broadcast of observed execution times
// (φ_1, …, φ_m) read from the tamper-proof meters.
type MetersPayload struct {
	Phi []float64 `json:"phi"`
}

// ClaimPayload is a misallocation claim raised in the Allocating Load
// phase: the claimant received Delivered blocks but expected its share of
// the allocation.
type ClaimPayload struct {
	Proc      string `json:"proc"`
	Delivered int    `json:"delivered"`
	Expected  int    `json:"expected"`
}
