package referee

import (
	"fmt"

	"dlsbl/internal/sig"
)

// Envelope kinds and payload types for every signed message the protocol
// exchanges. They live here because the referee is the arbiter of their
// validity; the protocol package reuses them.

// Message kinds, one per protocol artifact.
const (
	KindBid           = "dls/bid"            // Bidding phase broadcast
	KindBidVector     = "dls/bid-vector"     // vector submitted to the referee on a claim
	KindPayment       = "dls/payment"        // Computing Payments submission
	KindMeters        = "dls/meters"         // referee's meter broadcast
	KindClaim         = "dls/claim"          // misallocation claim
	KindWitnessReport = "dls/witness-report" // unreachability report against a bidder
	KindAuditReplica  = "dls/audit-replica"  // primary → standby audit-log replication
)

// BidPayload is the Bidding phase message S_Pi(b_i, P_i). Round, when
// non-empty, binds the bid to the session round it was broadcast in (its
// bid epoch): a bid-reuse session folds a fresh session-salted round ID
// into every signed artifact so the referee can tell a current-epoch bid
// from a replayed or superseded one. Standalone runs leave it empty.
type BidPayload struct {
	Proc  string  `json:"proc"`
	Bid   float64 `json:"bid"`
	Round string  `json:"round,omitempty"`
}

// BidVectorPayload is the full vector of signed bids a party submits to
// the referee when adjudicating an allocation claim. Every element is the
// original signed bid envelope; a party can only alter its own entry by
// signing a second, contradictory bid — which is equivocation evidence.
// Round binds the vector to the round it was submitted in; a vector
// captured in round j and replayed in round j+1 fails VerifyBidVector.
type BidVectorPayload struct {
	Proc  string         `json:"proc"`
	Bids  []sig.Envelope `json:"bids"`
	Round string         `json:"round,omitempty"`
}

// PaymentPayload is the Computing Payments submission S_Pi(P_i, Q).
// Round binds the submission to its round, like BidVectorPayload.Round.
type PaymentPayload struct {
	Proc  string    `json:"proc"`
	Q     []float64 `json:"q"`
	Round string    `json:"round,omitempty"`
}

// MetersPayload is the referee's broadcast of observed execution times
// (φ_1, …, φ_m) read from the tamper-proof meters.
type MetersPayload struct {
	Phi []float64 `json:"phi"`
}

// ClaimPayload is a misallocation claim raised in the Allocating Load
// phase: the claimant received Delivered blocks but expected its share of
// the allocation.
type ClaimPayload struct {
	Proc      string `json:"proc"`
	Delivered int    `json:"delivered"`
	Expected  int    `json:"expected"`
}

// WitnessReportPayload is a signed unreachability report: Witness claims
// it never received Accused's Bidding-phase broadcast within the retry
// budget. Eviction for unreachability demands matching reports from
// ≥⌈m/2⌉ DISTINCT witnesses (CorroborationThreshold), so one strategic
// processor cannot frame a rival by filing alone — an uncorroborated
// report triggers a bid relay through the referee instead, and a witness
// that maintains its claim after the verified relay is itself convicted
// (JudgeWitnessReport). Round binds the report to its session round like
// every other signed artifact.
type WitnessReportPayload struct {
	Witness string `json:"witness"`
	Accused string `json:"accused"`
	Round   string `json:"round,omitempty"`
}

// ---- Binary hot-path codec -------------------------------------------------
//
// Each hot phase payload implements sig.BinaryAppender/BinaryDecoder: a
// deterministic length-prefixed encoding behind a per-type tag byte, so
// sig.SealCodec(..., sig.CodecBinary) skips encoding/json on the round's
// hot path while JSON envelopes stay decodable (the codecs are
// self-describing — see sig.Codec).

// Binary payload type tags.
const (
	tagBid       = 'b'
	tagBidVector = 'v'
	tagPayment   = 'p'
	tagMeters    = 'm'
	tagWitness   = 'w'
)

// AppendBinary implements sig.BinaryAppender.
func (p BidPayload) AppendBinary(dst []byte) []byte {
	dst = sig.AppendBinaryHeader(dst, tagBid)
	dst = sig.AppendString(dst, p.Proc)
	dst = sig.AppendFloat(dst, p.Bid)
	return sig.AppendString(dst, p.Round)
}

// DecodeBinary implements sig.BinaryDecoder.
func (p *BidPayload) DecodeBinary(src []byte) error {
	r := sig.NewBinReader(src, tagBid)
	r.StringInto(&p.Proc)
	p.Bid = r.Float()
	r.StringInto(&p.Round)
	return r.Close()
}

// AppendBinary implements sig.BinaryAppender.
func (p BidVectorPayload) AppendBinary(dst []byte) []byte {
	dst = sig.AppendBinaryHeader(dst, tagBidVector)
	dst = sig.AppendString(dst, p.Proc)
	dst = sig.AppendUvarint(dst, uint64(len(p.Bids)))
	for _, e := range p.Bids {
		dst = e.AppendBinary(dst)
	}
	return sig.AppendString(dst, p.Round)
}

// DecodeBinary implements sig.BinaryDecoder.
func (p *BidVectorPayload) DecodeBinary(src []byte) error {
	r := sig.NewBinReader(src, tagBidVector)
	r.StringInto(&p.Proc)
	n := r.Uvarint()
	if n > uint64(len(src)) { // each envelope takes ≥4 bytes; cheap sanity bound
		return fmt.Errorf("%w: bid vector length %d", sig.ErrBinaryPayload, n)
	}
	if uint64(cap(p.Bids)) < n {
		p.Bids = make([]sig.Envelope, n)
	}
	p.Bids = p.Bids[:n]
	for i := range p.Bids {
		r.DecodeEnvelope(&p.Bids[i])
	}
	r.StringInto(&p.Round)
	return r.Close()
}

// AppendBinary implements sig.BinaryAppender.
func (p PaymentPayload) AppendBinary(dst []byte) []byte {
	dst = sig.AppendBinaryHeader(dst, tagPayment)
	dst = sig.AppendString(dst, p.Proc)
	dst = sig.AppendFloats(dst, p.Q)
	return sig.AppendString(dst, p.Round)
}

// DecodeBinary implements sig.BinaryDecoder.
func (p *PaymentPayload) DecodeBinary(src []byte) error {
	r := sig.NewBinReader(src, tagPayment)
	r.StringInto(&p.Proc)
	r.FloatsInto(&p.Q)
	r.StringInto(&p.Round)
	return r.Close()
}

// AppendBinary implements sig.BinaryAppender.
func (p MetersPayload) AppendBinary(dst []byte) []byte {
	dst = sig.AppendBinaryHeader(dst, tagMeters)
	return sig.AppendFloats(dst, p.Phi)
}

// DecodeBinary implements sig.BinaryDecoder.
func (p *MetersPayload) DecodeBinary(src []byte) error {
	r := sig.NewBinReader(src, tagMeters)
	r.FloatsInto(&p.Phi)
	return r.Close()
}

// AppendBinary implements sig.BinaryAppender.
func (p WitnessReportPayload) AppendBinary(dst []byte) []byte {
	dst = sig.AppendBinaryHeader(dst, tagWitness)
	dst = sig.AppendString(dst, p.Witness)
	dst = sig.AppendString(dst, p.Accused)
	return sig.AppendString(dst, p.Round)
}

// DecodeBinary implements sig.BinaryDecoder.
func (p *WitnessReportPayload) DecodeBinary(src []byte) error {
	r := sig.NewBinReader(src, tagWitness)
	r.StringInto(&p.Witness)
	r.StringInto(&p.Accused)
	r.StringInto(&p.Round)
	return r.Close()
}
