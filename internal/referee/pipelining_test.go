package referee

import (
	"strings"
	"testing"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/sig"
)

// Conviction tests for the pipelined scheduler's sub-rounds: installment
// round IDs keep stale-installment replays and cross-installment
// equivocation convictable, and a payment dispute inside a sub-round is
// judged against the installment payment rule.

func (f *fixture) paymentAt(t *testing.T, proc, round string, q []float64) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[proc], KindPayment, PaymentPayload{Proc: proc, Q: q, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func (f *fixture) bidAt(t *testing.T, proc, round string, bid float64) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[proc], KindBid, BidPayload{Proc: proc, Bid: bid, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestJudgePaymentsStaleInstallmentReplay: a payment vector signed for
// installment rN.i1 and replayed in rN.i2 is convicted as a stale-round
// replay — installments of one load stamp distinct round IDs, so the
// whole-round replay check covers sub-rounds with no extra machinery.
func TestJudgePaymentsStaleInstallmentReplay(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	const rounds, cur, prev = 4, "s01:r3.i2", "s01:r3.i1"

	f.ref.BindRounds(cur, "s01:r1")
	f.ref.RecordInstallment(2, rounds, 0.25, dlt.EqualRounds)
	out, err := f.mech.RunRounds(bids, exec, rounds, dlt.EqualRounds, core.WithVerification)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string][]sig.Envelope{
		"P1": {f.paymentAt(t, "P1", cur, out.Payment)},
		"P2": {f.paymentAt(t, "P2", prev, out.Payment)}, // replayed from i1
		"P3": {f.paymentAt(t, "P3", cur, out.Payment)},
	}
	v, q, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" {
		t.Fatalf("guilty = %v, want the replayer P2", v.Guilty)
	}
	if !strings.Contains(v.Reason, "stale-round replay") {
		t.Errorf("reason %q does not name the replay", v.Reason)
	}
	if !vectorsEqual(q, out.Payment) {
		t.Errorf("agreed Q = %v, want the installment truth %v", q, out.Payment)
	}
}

// TestJudgePaymentsInstallmentRecompute: a disputed payment vector in a
// pipelined sub-round is judged against the R-installment payment rule —
// a deviant submitting the single-round payment vector (the truth of the
// unpipelined mechanism, but not of this load) is convicted.
func TestJudgePaymentsInstallmentRecompute(t *testing.T) {
	f := newFixture(t, 3, 100)
	bids := []float64{1, 2, 3}
	exec := []float64{1, 2, 3}
	const rounds, cur = 4, "s01:r3.i2"

	f.ref.BindRounds(cur, "s01:r1")
	f.ref.RecordInstallment(2, rounds, 0.25, dlt.EqualRounds)
	truth, err := f.mech.RunRounds(bids, exec, rounds, dlt.EqualRounds, core.WithVerification)
	if err != nil {
		t.Fatal(err)
	}
	single, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	if vectorsEqual(truth.Payment, single.Payment) {
		t.Fatal("test needs the installment and single-round payments to differ")
	}
	subs := map[string][]sig.Envelope{
		"P1": {f.paymentAt(t, "P1", cur, truth.Payment)},
		"P2": {f.paymentAt(t, "P2", cur, single.Payment)},
		"P3": {f.paymentAt(t, "P3", cur, truth.Payment)},
	}
	v, q, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" {
		t.Fatalf("guilty = %v, want P2 (submitted the single-round vector)", v.Guilty)
	}
	if !vectorsEqual(q, truth.Payment) {
		t.Errorf("agreed Q = %v, want the installment truth %v", q, truth.Payment)
	}
}

// TestJudgeEquivocationAcrossInstallments: installments of one load are
// served from bids of one shared epoch, so contradictory signed bids of
// that epoch convict the equivocator no matter which installment the
// evidence surfaces in — and evidence from outside the epoch (a stale
// bid from an earlier load) stays unusable, turning the accusation back
// on the accuser.
func TestJudgeEquivocationAcrossInstallments(t *testing.T) {
	f := newFixture(t, 3, 100)
	const epoch = "s01:r1"
	a := f.bidAt(t, "P2", epoch, 2)
	b := f.bidAt(t, "P2", epoch, 3)

	// Evidence surfaces while sub-round r3.i2 of a pipelined load is live.
	f.ref.BindRounds("s01:r3.i2", epoch)
	f.ref.RecordInstallment(2, 4, 0.25, dlt.EqualRounds)
	v, err := f.ref.JudgeEquivocation("P1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" || !v.Terminates {
		t.Fatalf("verdict = %+v, want P2 convicted with termination", v)
	}

	// Same contradiction, but one bid was signed for a different epoch:
	// not evidence in this load, so the accusation is unfounded.
	stale := f.bidAt(t, "P2", "s01:r2", 3)
	v, err = f.ref.JudgeEquivocation("P1", a, stale)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" {
		t.Fatalf("verdict = %+v, want the accuser P1 convicted", v)
	}
}
