package referee

import (
	"strings"
	"testing"
)

func TestAuditChainAppendsAndVerifies(t *testing.T) {
	var log AuditLog
	if err := log.Verify(); err != nil {
		t.Fatalf("empty log failed verification: %v", err)
	}
	e1 := log.Append("verdict", "bidding", []string{"P2"}, "equivocation")
	e2 := log.Append("settlement", "bidding", []string{"P2"}, "collected 20")
	if log.Len() != 2 {
		t.Fatalf("len = %d", log.Len())
	}
	if e2.PrevHash != e1.Hash {
		t.Error("chain link broken on append")
	}
	if e1.Seq != 0 || e2.Seq != 1 {
		t.Error("sequence numbers wrong")
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("fresh log failed verification: %v", err)
	}
	if err := VerifyEntries(log.Entries()); err != nil {
		t.Fatalf("exported entries failed verification: %v", err)
	}
}

func TestAuditDetectsTampering(t *testing.T) {
	var log AuditLog
	log.Append("verdict", "bidding", []string{"P2"}, "equivocation")
	log.Append("settlement", "bidding", []string{"P2"}, "collected 20")
	log.Append("meter", "processing", nil, "P1 reported φ=0.5")

	// Mutate a detail.
	entries := log.Entries()
	entries[1].Detail = "collected 0"
	if err := VerifyEntries(entries); err == nil {
		t.Error("mutated detail accepted")
	}

	// Drop an entry.
	dropped := append(append([]AuditEntry(nil), log.Entries()[:1]...), log.Entries()[2:]...)
	if err := VerifyEntries(dropped); err == nil {
		t.Error("dropped entry accepted")
	}

	// Reorder.
	reordered := log.Entries()
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if err := VerifyEntries(reordered); err == nil {
		t.Error("reordered entries accepted")
	}

	// Rewrite guilty list with a re-derived hash but stale link.
	forged := log.Entries()
	forged[2].Guilty = []string{"P1"}
	forged[2].Hash = hashEntry(forged[2])
	if err := VerifyEntries(forged); err != nil {
		// Tail rewrite with recomputed hash still verifies — that is the
		// expected property of a hash chain without signatures: only the
		// PREFIX is protected. Rewriting entry 1 instead must break
		// entry 2's PrevHash.
		t.Fatalf("unexpected: %v", err)
	}
	forgedMid := log.Entries()
	forgedMid[1].Guilty = []string{"P3"}
	forgedMid[1].Hash = hashEntry(forgedMid[1])
	if err := VerifyEntries(forgedMid); err == nil {
		t.Error("mid-chain rewrite accepted")
	}
}

func TestAuditString(t *testing.T) {
	var log AuditLog
	log.Append("verdict", "payments", []string{"P1", "P2"}, "x")
	log.Append("meter", "processing", nil, "y")
	s := log.String()
	if !strings.Contains(s, "P1+P2") || !strings.Contains(s, "meter") {
		t.Errorf("rendering missing fields:\n%s", s)
	}
}

// TestRefereeProducesTranscript: the adjudication methods append to the
// transcript and it verifies end-to-end.
func TestRefereeProducesTranscript(t *testing.T) {
	f := newFixture(t, 3, 100)
	a := f.signedBid(t, "P2", 1.5)
	b := f.signedBid(t, "P2", 9.5)
	if _, err := f.ref.JudgeEquivocation("P1", a, b); err != nil {
		t.Fatal(err)
	}
	if err := f.ref.RecordMeter("P1", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := f.ref.Settle(Verdict{Phase: "bidding", Guilty: []string{"P2"}, Reason: "equivocation"}, nil); err != nil {
		t.Fatal(err)
	}
	tr := f.ref.Transcript()
	if len(tr) != 3 {
		t.Fatalf("transcript has %d entries, want 3:\n%s", len(tr), f.ref.AuditString())
	}
	if tr[0].Action != "verdict" || tr[1].Action != "meter" || tr[2].Action != "settlement" {
		t.Errorf("actions = %s/%s/%s", tr[0].Action, tr[1].Action, tr[2].Action)
	}
	if err := VerifyEntries(tr); err != nil {
		t.Fatalf("referee transcript failed verification: %v", err)
	}
}
