package referee

import (
	"encoding/json"
	"reflect"
	"testing"

	"dlsbl/internal/sig"
)

// codecPayloads returns one representative value per hot-path payload
// type, including the awkward cases: empty strings, empty slices, NaN-free
// negative and subnormal floats, and a nested envelope.
func codecPayloads() []any {
	return []any{
		BidPayload{Proc: "P1", Bid: 1.5, Round: "s01:r3"},
		BidPayload{}, // zero value: empty strings, zero bid
		PaymentPayload{Proc: "P2", Q: []float64{0.25, -1, 5e-324}, Round: "s01:r3"},
		PaymentPayload{Proc: "P2"}, // no q at all
		MetersPayload{Phi: []float64{0.125, 2.5, 3.75}},
		BidVectorPayload{
			Proc: "P1",
			Bids: []sig.Envelope{
				{Sender: "P1", Kind: KindBid, Payload: []byte(`{"proc":"P1"}`), Signature: []byte{1, 2}},
				{Sender: "P2", Kind: KindBid, Payload: []byte{0xD1, 1, 'b'}, Signature: []byte{3}},
			},
			Round: "s01:r3",
		},
	}
}

// roundTrip encodes v with the binary codec and decodes into a fresh
// value of the same type, returning the decode result as an interface.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	enc := v.(sig.BinaryAppender).AppendBinary(nil)
	out := reflect.New(reflect.TypeOf(v))
	if err := out.Interface().(sig.BinaryDecoder).DecodeBinary(enc); err != nil {
		t.Fatalf("%T: decode: %v", v, err)
	}
	return out.Elem().Interface()
}

// TestBinaryCodecRoundTrip pins the binary codec against the JSON codec:
// every hot-path payload round-trips bit-exactly (floats via their
// IEEE-754 bit patterns), and the two codecs agree on the decoded value.
func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, v := range codecPayloads() {
		got := roundTrip(t, v)
		if !payloadEqual(v, got) {
			t.Errorf("%T binary round trip:\n got %+v\nwant %+v", v, got, v)
		}

		// JSON agreement: marshaling the original and the binary round
		// trip must produce identical documents.
		a, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%T: JSON disagrees after binary round trip:\n got %s\nwant %s", v, b, a)
		}
	}
}

// payloadEqual compares payloads, treating nil and empty slices as equal
// (the decoder reuses capacity, so an empty slice decodes as empty, not
// nil — JSON output is identical either way except for q, which both
// codecs preserve as present-and-empty).
func payloadEqual(a, b any) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

// TestBinaryCodecSelfDescribing checks mixed-codec interop end to end: a
// binary-sealed envelope opens into the payload struct with no codec
// configuration on the receiving side, and a JSON-sealed one still does.
func TestBinaryCodecSelfDescribing(t *testing.T) {
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := sig.NewRegistry()
	if err := reg.Register("P1", k.Public); err != nil {
		t.Fatal(err)
	}
	want := BidPayload{Proc: "P1", Bid: 2.25, Round: "s9:r1"}
	for _, codec := range []sig.Codec{sig.CodecJSON, sig.CodecBinary} {
		env, err := sig.SealCodec(k, KindBid, want, codec)
		if err != nil {
			t.Fatal(err)
		}
		var got BidPayload
		if err := env.Open(reg, &got); err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if got != want {
			t.Errorf("%v: got %+v, want %+v", codec, got, want)
		}
	}
}

// TestBinaryCodecRejectsMalformed checks the decoder's strictness: a
// wrong type tag, a truncated body and trailing garbage all error instead
// of decoding something plausible.
func TestBinaryCodecRejectsMalformed(t *testing.T) {
	enc := BidPayload{Proc: "P1", Bid: 1.5}.AppendBinary(nil)

	var p PaymentPayload
	if err := p.DecodeBinary(enc); err == nil {
		t.Error("bid payload decoded under the payment tag")
	}
	var b BidPayload
	if err := b.DecodeBinary(enc[:len(enc)-3]); err == nil {
		t.Error("truncated payload decoded")
	}
	if err := b.DecodeBinary(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestBinaryCodecAllocs is the CI allocs guard for the codec half of the
// envelope hot path: encoding into a warm buffer and decoding into a warm
// struct must both be allocation-free.
func TestBinaryCodecAllocs(t *testing.T) {
	bid := BidPayload{Proc: "P1", Bid: 1.5, Round: "s01:r3"}
	pay := PaymentPayload{Proc: "P1", Q: []float64{0.25, 0.5, 0.25}, Round: "s01:r3"}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = bid.AppendBinary(buf[:0])
		buf = pay.AppendBinary(buf[:0])
	}); n != 0 {
		t.Errorf("AppendBinary into a warm buffer: %v allocs/op, want 0", n)
	}

	bidEnc := bid.AppendBinary(nil)
	payEnc := pay.AppendBinary(nil)
	var gotBid BidPayload
	var gotPay PaymentPayload
	// Warm the targets once so strings and slices have their capacity.
	if err := gotBid.DecodeBinary(bidEnc); err != nil {
		t.Fatal(err)
	}
	if err := gotPay.DecodeBinary(payEnc); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := gotBid.DecodeBinary(bidEnc); err != nil {
			t.Fatal(err)
		}
		if err := gotPay.DecodeBinary(payEnc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeBinary into a warm struct: %v allocs/op, want 0", n)
	}
}
