package referee

import (
	"strings"
	"testing"

	"dlsbl/internal/sig"
)

func (f *fixture) witnessReport(t *testing.T, witness, accused, round string) sig.Envelope {
	t.Helper()
	env, err := sig.Seal(f.keys[witness], KindWitnessReport,
		WitnessReportPayload{Witness: witness, Accused: accused, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCorroborationThreshold(t *testing.T) {
	for _, c := range []struct{ m, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 4}, {9, 5}, {15, 8}, {16, 8},
	} {
		if got := CorroborationThreshold(c.m); got != c.want {
			t.Errorf("CorroborationThreshold(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestJudgeWitnessReportFramingConviction(t *testing.T) {
	f := newFixture(t, 4, 100)
	rep := f.witnessReport(t, "P1", "P2", "")
	ev := WitnessEvidence{Corroborating: 1, Witnesses: 3, Threshold: 2,
		RelayDelivered: true, ClaimMaintained: true}
	v, err := f.ref.JudgeWitnessReport(rep, ev)
	if err != nil {
		t.Fatal(err)
	}
	if v.Clean() {
		t.Fatal("maintained claim against a verified relay judged clean")
	}
	if v.Terminates {
		t.Error("framing conviction must not terminate the round")
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" {
		t.Errorf("Guilty = %v, want [P1] (the framer, never the rival)", v.Guilty)
	}
	if !strings.Contains(v.Reason, "framing") {
		t.Errorf("Reason = %q, want a framing-attempt reason", v.Reason)
	}
	if err := f.ref.Settle(v, nil); err != nil {
		t.Fatal(err)
	}
	framer, err := f.ledger.Balance("P1")
	if err != nil {
		t.Fatal(err)
	}
	if framer >= 0 {
		t.Errorf("framer balance = %v, want a net fine", framer)
	}
	rival, err := f.ledger.Balance("P2")
	if err != nil {
		t.Fatal(err)
	}
	if rival < 0 {
		t.Errorf("rival balance = %v; the accused must never pay", rival)
	}
	if err := VerifyEntries(f.ref.Transcript()); err != nil {
		t.Fatalf("transcript broken after conviction: %v", err)
	}
	var sawReport bool
	for _, e := range f.ref.Transcript() {
		if e.Action == "witness-report" {
			sawReport = true
		}
	}
	if !sawReport {
		t.Error("no witness-report entry in the transcript")
	}
}

func TestJudgeWitnessReportWithdrawnClean(t *testing.T) {
	f := newFixture(t, 4, 100)
	rep := f.witnessReport(t, "P3", "P1", "")
	v, err := f.ref.JudgeWitnessReport(rep, WitnessEvidence{
		Corroborating: 1, Witnesses: 3, Threshold: 2, RelayDelivered: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() || v.Terminates {
		t.Errorf("withdrawn report verdict = %+v, want clean", v)
	}
	if !strings.Contains(v.Reason, "withdrew") {
		t.Errorf("Reason = %q", v.Reason)
	}
}

func TestJudgeWitnessReportUnadjudicable(t *testing.T) {
	f := newFixture(t, 4, 100)
	rep := f.witnessReport(t, "P3", "P1", "")
	v, err := f.ref.JudgeWitnessReport(rep, WitnessEvidence{
		Corroborating: 1, Witnesses: 3, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() || v.Terminates {
		t.Errorf("undelivered-relay verdict = %+v, want clean (unadjudicable)", v)
	}
	if !strings.Contains(v.Reason, "unadjudicable") {
		t.Errorf("Reason = %q", v.Reason)
	}
}

func TestJudgeWitnessReportValidation(t *testing.T) {
	f := newFixture(t, 3, 100)
	ev := WitnessEvidence{Corroborating: 1, Witnesses: 2, Threshold: 2, RelayDelivered: true}

	// Payload names a witness other than the signer.
	env, err := sig.Seal(f.keys["P1"], KindWitnessReport,
		WitnessReportPayload{Witness: "P2", Accused: "P3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ref.JudgeWitnessReport(env, ev); err == nil {
		t.Error("impersonated witness accepted")
	}

	// Self-accusation.
	if _, err := f.ref.JudgeWitnessReport(f.witnessReport(t, "P1", "P1", ""), ev); err == nil {
		t.Error("self-accusation accepted")
	}

	// Accused is not a participant.
	if _, err := f.ref.JudgeWitnessReport(f.witnessReport(t, "P1", "P9", ""), ev); err == nil {
		t.Error("report against a non-participant accepted")
	}

	// Witness is registered but not a participant.
	outsider, err := sig.GenerateKeyPair("X1", sig.DeterministicSource(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Register("X1", outsider.Public); err != nil {
		t.Fatal(err)
	}
	oenv, err := sig.Seal(outsider, KindWitnessReport,
		WitnessReportPayload{Witness: "X1", Accused: "P2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ref.JudgeWitnessReport(oenv, ev); err == nil {
		t.Error("non-participant witness accepted")
	}

	// Stale-round replay.
	f.ref.BindRounds("s:r2", "s:r2")
	if _, err := f.ref.JudgeWitnessReport(f.witnessReport(t, "P1", "P2", "s:r1"), ev); err == nil {
		t.Error("stale-round report accepted")
	}
	if _, err := f.ref.JudgeWitnessReport(f.witnessReport(t, "P1", "P2", "s:r2"), ev); err != nil {
		t.Errorf("current-round report rejected: %v", err)
	}
}
