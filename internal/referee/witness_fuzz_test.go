package referee

import (
	"bytes"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzWitnessReport hammers the WitnessReportPayload codec with hostile
// bytes — the witness report is the one message an adversary crafts to
// get a rival evicted, so its decoder must be total (no panics), its
// canonical encoding must be a fixpoint, and the binary and JSON codecs
// must agree on every representable payload.
func FuzzWitnessReport(f *testing.F) {
	// A valid encoding: header (magic, version, tag 'w'), then the three
	// uvarint-length-prefixed strings Witness="P1", Accused="P2", Round="".
	f.Add([]byte("\xd1\x01w\x02P1\x02P2\x00"))
	f.Add([]byte("\xd1\x01w"))                 // bare header, no fields
	f.Add([]byte("\xd1\x01w\xff\xff\xff\xff")) // hostile length prefix
	f.Add([]byte(`{"witness":"P1","accused":"P2","round":"s:r1"}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: raw bytes through the binary decoder. Any input may be
		// rejected, but none may panic, and anything accepted must
		// re-encode canonically to a decode fixpoint.
		var p WitnessReportPayload
		if err := p.DecodeBinary(data); err == nil {
			enc := p.AppendBinary(nil)
			var q WitnessReportPayload
			if err := q.DecodeBinary(enc); err != nil {
				t.Fatalf("canonical re-encoding does not decode: %v\nenc=%x", err, enc)
			}
			if q != p {
				t.Fatalf("decode(encode(p)) = %+v, want %+v", q, p)
			}
			if !bytes.Equal(q.AppendBinary(nil), enc) {
				t.Fatalf("canonical encoding is not a fixpoint: %x vs %x", q.AppendBinary(nil), enc)
			}
			// Differential: the JSON codec must round-trip the same
			// payload to the same value (strings only, so no NaN/Inf or
			// invalid-UTF-8 JSON escaping concerns beyond validity).
			if utf8.ValidString(p.Witness) && utf8.ValidString(p.Accused) && utf8.ValidString(p.Round) {
				js, err := json.Marshal(p)
				if err != nil {
					t.Fatalf("json encode of decoded payload: %v", err)
				}
				var r WitnessReportPayload
				if err := json.Unmarshal(js, &r); err != nil {
					t.Fatalf("json round-trip: %v", err)
				}
				if r != p {
					t.Fatalf("json differential: %+v vs %+v", r, p)
				}
			}
		}

		// Arm 2: the same bytes as JSON. A payload the JSON codec accepts
		// must survive a trip through the binary codec unchanged.
		var j WitnessReportPayload
		if err := json.Unmarshal(data, &j); err == nil {
			var back WitnessReportPayload
			if err := back.DecodeBinary(j.AppendBinary(nil)); err != nil {
				t.Fatalf("binary round-trip of JSON payload: %v", err)
			}
			if back != j {
				t.Fatalf("json→binary differential: %+v vs %+v", back, j)
			}
		}
	})
}
