package referee

import (
	"strings"
	"testing"

	"dlsbl/internal/sig"
)

// standbyFixture wires a fixture's referee to a Standby through an
// in-process replication channel: each replica payload is sealed with
// the (registered) referee key and applied immediately, exactly as the
// protocol layer ships it over the reliable transport. The tamper hook,
// when set, may mutate the payload in flight.
type standbyFixture struct {
	*fixture
	refKey *sig.KeyPair
	sb     *Standby
	tamper func(*AuditReplicaPayload)
}

func newStandbyFixture(t *testing.T, m int, fine float64) *standbyFixture {
	t.Helper()
	f := newFixture(t, m, fine)
	refKey, err := sig.GenerateKeyPair(Account, sig.DeterministicSource(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Register(Account, refKey.Public); err != nil {
		t.Fatal(err)
	}
	sf := &standbyFixture{fixture: f, refKey: refKey, sb: NewStandby()}
	if err := f.ref.AttachStandby(func(p AuditReplicaPayload) error {
		if sf.tamper != nil {
			sf.tamper(&p)
		}
		env, err := sig.Seal(refKey, KindAuditReplica, p)
		if err != nil {
			return err
		}
		return sf.sb.Apply(f.reg, env)
	}); err != nil {
		t.Fatal(err)
	}
	return sf
}

func sameEntries(a, b []AuditEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Hash != b[i].Hash {
			return false
		}
	}
	return true
}

func TestStandbyPromoteParity(t *testing.T) {
	f := newStandbyFixture(t, 3, 100)

	// Drive the primary through meter records and a witness conviction;
	// every append streams to the standby. (No BindRounds here: the
	// fixture's payment submissions carry no round, and the snapshot was
	// taken at attach time — the protocol layer arms the standby after
	// binding, so bindings always precede the snapshot in production.)
	exec := []float64{1, 2, 3}
	for i, p := range f.procs {
		if err := f.ref.RecordMeter(p, exec[i]); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.witnessReport(t, "P1", "P2", "")
	v, err := f.ref.JudgeWitnessReport(rep, WitnessEvidence{
		Corroborating: 1, Witnesses: 2, Threshold: 2,
		RelayDelivered: true, ClaimMaintained: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ref.Settle(v, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.ref.ReplicationErr(); err != nil {
		t.Fatalf("replication failed: %v", err)
	}

	promoted, err := f.sb.Promote(f.reg, f.ledger, f.mech)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(f.ref.Transcript(), promoted.Transcript()) {
		t.Fatal("promoted transcript diverges from the primary's")
	}
	if err := VerifyEntries(promoted.Transcript()); err != nil {
		t.Fatalf("promoted transcript does not verify: %v", err)
	}
	pphi, err := promoted.Meters()
	if err != nil {
		t.Fatal(err)
	}
	for i := range exec {
		if pphi[i] != exec[i] {
			t.Fatalf("promoted meters = %v, want %v (exact bits)", pphi, exec)
		}
	}

	// The promoted standby adjudicates payments bit-identically to the
	// primary from the same submissions. (No Settle here: both referees
	// share the ledger, so settling twice would double-pay.)
	bids := []float64{1, 2, 3}
	out, err := f.mech.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string][]sig.Envelope{}
	for _, p := range f.procs {
		subs[p] = []sig.Envelope{f.paymentSubmission(t, p, out.Payment)}
	}
	vp, qp, err := f.ref.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	vs, qs, err := promoted.JudgePayments(bids, exec, subs)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Clean() != vs.Clean() || vp.Terminates != vs.Terminates {
		t.Errorf("verdicts diverge: primary %+v, standby %+v", vp, vs)
	}
	for i := range qp {
		if qp[i] != qs[i] {
			t.Errorf("payment vectors diverge: primary %v, standby %v", qp, qs)
		}
	}
}

func TestStandbyPromoteAfterEviction(t *testing.T) {
	f := newStandbyFixture(t, 4, 100)
	for i, p := range f.procs {
		if err := f.ref.RecordMeter(p, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.ref.Evict("P2", "bidding", "unreachable per corroborated witness reports"); err != nil {
		t.Fatal(err)
	}
	promoted, err := f.sb.Promote(f.reg, f.ledger, f.mech)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := promoted.Meters()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 4} // P1, P3, P4 — P2's meter left with it
	if len(phi) != len(want) {
		t.Fatalf("promoted meters = %v, want %v", phi, want)
	}
	for i := range want {
		if phi[i] != want[i] {
			t.Fatalf("promoted meters = %v, want %v", phi, want)
		}
	}
	if !sameEntries(f.ref.Transcript(), promoted.Transcript()) {
		t.Error("promoted transcript diverges after eviction")
	}
}

func TestStandbyApplyOrdering(t *testing.T) {
	f := newFixture(t, 3, 100)
	refKey, err := sig.GenerateKeyPair(Account, sig.DeterministicSource(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Register(Account, refKey.Public); err != nil {
		t.Fatal(err)
	}
	seal := func(p AuditReplicaPayload) sig.Envelope {
		env, err := sig.Seal(refKey, KindAuditReplica, p)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	sb := NewStandby()
	entry := f.ref.RecordBidReuse("s:r1", 1)
	if err := sb.Apply(f.reg, seal(AuditReplicaPayload{Entry: &entry})); err == nil {
		t.Error("update before the snapshot accepted")
	}
	snap := AuditReplicaPayload{Snapshot: &StandbySnapshot{Procs: f.procs, Fine: 100}}
	if err := sb.Apply(f.reg, seal(snap)); err != nil {
		t.Fatal(err)
	}
	if err := sb.Apply(f.reg, seal(snap)); err == nil ||
		!strings.Contains(err.Error(), "second snapshot") {
		t.Errorf("second snapshot error = %v", err)
	}
	if _, err := NewStandby().Promote(f.reg, f.ledger, f.mech); err == nil {
		t.Error("promote without a snapshot accepted")
	}

	// Unsigned / wrongly signed replicas are rejected.
	bad, err := sig.Seal(f.keys["P1"], KindAuditReplica, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewStandby().Apply(f.reg, bad); err == nil {
		t.Error("replica signed by a processor key accepted")
	}
}

func TestStandbyApplyRejectsTornChain(t *testing.T) {
	f := newStandbyFixture(t, 3, 100)

	// Tamper with the next replica's sequence number: the standby must
	// reject it on arrival and the primary must latch the failure.
	f.tamper = func(p *AuditReplicaPayload) {
		if p.Entry != nil {
			p.Entry.Seq += 5
		}
	}
	f.ref.RecordBidReuse("s:r1", 1)
	if err := f.ref.ReplicationErr(); err == nil ||
		!strings.Contains(err.Error(), "sequence") {
		t.Errorf("ReplicationErr = %v, want a sequence mismatch", err)
	}

	// A torn replica stream must refuse later, in-order entries too: the
	// chain no longer extends.
	f.tamper = nil
	f.ref.RecordBidReuse("s:r1", 2)
	if len(f.sb.Entries()) != 0 {
		t.Errorf("standby accepted %d entries after a torn stream", len(f.sb.Entries()))
	}

	// Content tampering is caught by the per-entry hash.
	f2 := newStandbyFixture(t, 3, 100)
	f2.tamper = func(p *AuditReplicaPayload) {
		if p.Entry != nil {
			p.Entry.Detail = "doctored"
		}
	}
	f2.ref.RecordBidReuse("s:r1", 1)
	if err := f2.ref.ReplicationErr(); err == nil ||
		!strings.Contains(err.Error(), "hash") {
		t.Errorf("ReplicationErr = %v, want a content-hash mismatch", err)
	}
}

func TestStandbyEntriesCopy(t *testing.T) {
	f := newStandbyFixture(t, 3, 100)
	f.ref.RecordBidReuse("s:r1", 1)
	got := f.sb.Entries()
	if len(got) != 1 {
		t.Fatalf("replicated %d entries, want 1", len(got))
	}
	got[0].Detail = "mutated by caller"
	if f.sb.Entries()[0].Detail == "mutated by caller" {
		t.Error("Entries exposes internal state")
	}
}
