// Package referee implements the minimally-trusted third party of
// DLS-BL-NCP (Section 4). The referee "is isolated and remains passive
// until signaled by a processor that presumes cheating"; it never holds
// the processor parameters unless a conflict arises. Its duties:
//
//   - adjudicate equivocation evidence from the Bidding phase;
//   - adjudicate misallocation claims in the Allocating Load phase,
//     including mediating short deliveries;
//   - read the tamper-proof execution meters and broadcast (φ_1,…,φ_m);
//   - referee the Computing Payments phase: detect contradictory or
//     incorrect payment vectors, recompute the truth when vectors
//     disagree, fine the deviants F each and redistribute the proceeds;
//   - settle all fines through the payment ledger: deviants pay F, any
//     processor that already commenced work is compensated α_i·w̃_i, and
//     the remainder is split evenly among the non-deviating processors.
package referee

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/sig"
)

// Account is the ledger account name of the referee's fine escrow.
const Account = "referee"

// Verdict is the outcome of one adjudication.
type Verdict struct {
	Phase      string   // which protocol stage produced it
	Guilty     []string // parties fined F each (sorted, deduplicated)
	Reason     string
	Terminates bool // whether the protocol must stop immediately
}

// Clean reports whether nobody was fined.
func (v Verdict) Clean() bool { return len(v.Guilty) == 0 }

// Referee holds the adjudication state for one protocol run.
type Referee struct {
	reg    *sig.Registry
	ledger *payment.Ledger
	mech   core.Mechanism
	procs  []string
	index  map[string]int
	fine   float64
	meters map[string]float64
	audit  AuditLog

	// Round binding for bid-reuse sessions. round is the current round's
	// session-salted ID; bidEpoch is the round ID the cached bids were
	// signed in (equal to round during a bidding round, older during a
	// reuse round). Both empty for standalone runs, which disables every
	// round check — legacy messages carry no Round field.
	round    string
	bidEpoch string
	// epochs, when non-nil, carries per-processor bid epochs (processor
	// index order) for rounds served from a spliced cache: after an
	// incremental re-bid the changed member's bid was signed in a newer
	// round than everyone else's. Nil means the uniform bidEpoch applies.
	epochs []string

	// ver, when non-nil, routes envelope verification through a memoized
	// batch verifier. Purely an accelerator: a memo hit is possible only
	// for a byte-identical envelope that already verified against the
	// same registry (see sig.VerifyMemo), so adjudications are unchanged.
	ver *sig.BatchVerifier

	// instRounds/instPolicy, set by RecordInstallment, mark this round as
	// an installment sub-round of a pipelined load: payment recomputation
	// then uses the R-installment rule. Zero for whole-load rounds.
	instRounds int
	instPolicy dlt.RoundPolicy

	// send, when non-nil, streams every state change (audit entries,
	// meters, evictions, installment bindings) to a standby referee; see
	// AttachStandby. replErr latches the first replication failure.
	send    func(AuditReplicaPayload) error
	replErr error
}

// New creates a referee for the given participant list (in processor
// index order). fine is the publicly known magnitude F; the paper requires
// F ≥ Σ_j α_j·w̃_j, which CheckFineSufficient verifies once execution
// values are known.
func New(reg *sig.Registry, ledger *payment.Ledger, mech core.Mechanism, procs []string, fine float64) (*Referee, error) {
	if reg == nil || ledger == nil {
		return nil, errors.New("referee: nil registry or ledger")
	}
	if len(procs) < 2 {
		return nil, errors.New("referee: need at least two processors")
	}
	if !(fine > 0) || math.IsInf(fine, 0) {
		return nil, fmt.Errorf("referee: invalid fine %v", fine)
	}
	idx := make(map[string]int, len(procs))
	for i, p := range procs {
		if p == "" {
			return nil, errors.New("referee: empty processor id")
		}
		if _, dup := idx[p]; dup {
			return nil, fmt.Errorf("referee: duplicate processor %q", p)
		}
		idx[p] = i
	}
	return &Referee{
		reg:    reg,
		ledger: ledger,
		mech:   mech,
		procs:  append([]string(nil), procs...),
		index:  idx,
		fine:   fine,
		meters: make(map[string]float64, len(procs)),
	}, nil
}

// Fine returns the publicly known fine magnitude F.
func (r *Referee) Fine() float64 { return r.fine }

// BindRounds attaches the referee to a bid-reuse session round: round is
// the current round's session-salted ID (stamped on every audit entry and
// demanded of every per-round artifact — bid vectors, payment vectors);
// bidEpoch is the round the cached bids were signed in, demanded of every
// bid envelope inside a vector and of equivocation evidence. A bidding
// round passes round == bidEpoch; a reuse round passes the older epoch.
// Never calling BindRounds (both empty) keeps the legacy behavior where
// no message carries a Round field and none is checked.
func (r *Referee) BindRounds(round, bidEpoch string) {
	r.round = round
	r.bidEpoch = bidEpoch
	r.epochs = nil
}

// BindRoundsSpliced attaches the referee to a round served from a
// spliced bid cache: bidEpoch is the base epoch (the last full
// exchange), and epochs[j] is the epoch processor j's bid in force was
// actually signed in — newer than the base for members that re-bid
// incrementally. epochs must be in processor index order and cover every
// processor.
func (r *Referee) BindRoundsSpliced(round, bidEpoch string, epochs []string) error {
	if len(epochs) != len(r.procs) {
		return fmt.Errorf("referee: %d epochs for %d processors", len(epochs), len(r.procs))
	}
	r.round = round
	r.bidEpoch = bidEpoch
	r.epochs = append([]string(nil), epochs...)
	return nil
}

// epochFor returns the bid epoch in force for processor index j.
func (r *Referee) epochFor(j int) string {
	if r.epochs != nil {
		return r.epochs[j]
	}
	return r.bidEpoch
}

// UseVerifier routes the referee's envelope verification through a
// memoized batch verifier; nil restores plain per-envelope verification.
func (r *Referee) UseVerifier(v *sig.BatchVerifier) { r.ver = v }

// open verifies an envelope (through the verifier when set) and decodes
// its payload.
func (r *Referee) open(env *sig.Envelope, v any) error {
	if r.ver != nil {
		return r.ver.Open(env, v)
	}
	return env.Open(r.reg, v)
}

// isEquivocation is sig.IsEquivocation through the verifier when set.
func (r *Referee) isEquivocation(a, b sig.Envelope) bool {
	if r.ver != nil {
		return r.ver.IsEquivocation(a, b)
	}
	return sig.IsEquivocation(r.reg, a, b)
}

// replicate streams one state change to the attached standby, latching
// the first failure (surfaced by ReplicationErr and at promotion time).
func (r *Referee) replicate(p AuditReplicaPayload) {
	if r.send == nil {
		return
	}
	if err := r.send(p); err != nil && r.replErr == nil {
		r.replErr = err
	}
}

// appendAudit seals one transcript entry and mirrors it to the standby.
// Every audit append in this package funnels through here (or through a
// sibling that attaches extra replica state), so an attached standby
// sees the full chain.
func (r *Referee) appendAudit(action, phase string, guilty []string, detail string) AuditEntry {
	e := r.audit.AppendRound(r.round, action, phase, guilty, detail)
	r.replicate(AuditReplicaPayload{Entry: &e})
	return e
}

// RecordBidSplice enters an incremental re-bid into the transcript: this
// round spliced proc's freshly signed bid into the cached bid set, with
// every other member's bid left in its original epoch. The entry keeps
// the amortization auditable alongside RecordBidReuse's.
func (r *Referee) RecordBidSplice(proc, kind, baseEpoch string) AuditEntry {
	return r.appendAudit("bid-splice", "bidding", nil,
		fmt.Sprintf("%s of %s spliced into bid set of epoch %s", kind, proc, baseEpoch))
}

// RecordBidReuse enters a reuse decision into the transcript: this round
// is being served from bids signed in epoch, sinceRebid rounds ago. The
// entry makes the amortization auditable — a reviewer can check that the
// member set never changed between the epoch entry and this one.
func (r *Referee) RecordBidReuse(epoch string, sinceRebid int) AuditEntry {
	return r.appendAudit("bid-reuse", "bidding", nil,
		fmt.Sprintf("serving round from bids of epoch %s (%d rounds since rebid)", epoch, sinceRebid))
}

// RecordInstallment enters an installment boundary into the transcript:
// this round is sub-round k of `of` installments of one pipelined load,
// carrying the given fraction of it under the given division policy. The
// entry makes the pipelining auditable — a reviewer can check that a
// load's installment fractions sum to 1 and that every sub-round carried
// a distinct round ID (which is what keeps cross-installment replays
// convictable) — and arms the referee's payment recomputation with the
// installment rule, so a payment dispute in a pipelined sub-round is
// judged against the R-installment truth, not the single-round one.
func (r *Referee) RecordInstallment(k, of int, frac float64, policy dlt.RoundPolicy) AuditEntry {
	r.instRounds, r.instPolicy = of, policy
	e := r.audit.AppendRound(r.round, "installment", "bidding", nil,
		fmt.Sprintf("installment %d/%d (%s) carrying load fraction %.9g", k, of, policy, frac))
	r.replicate(AuditReplicaPayload{Entry: &e, Inst: &InstBinding{Rounds: of, Policy: policy}})
	return e
}

// audited appends a verdict to the hash-chained transcript and returns it.
func (r *Referee) audited(v Verdict) Verdict {
	r.appendAudit("verdict", v.Phase, v.Guilty, v.Reason)
	return v
}

// RecordEviction enters an availability failure into the transcript: a
// processor removed from the run because its traffic could not be
// delivered within the retry budget. An eviction is NOT a strategic
// offense — the processor is not fined and no Verdict is produced; the
// entry exists so the decision is auditable after the fact, clearly
// distinguished from the "verdict" entries that carry fines.
func (r *Referee) RecordEviction(proc, phase, reason string) AuditEntry {
	return r.appendAudit("eviction", phase, nil, fmt.Sprintf("%s evicted: %s", proc, reason))
}

// Evict removes a participant mid-run — the crash-recovery path: a
// processor that fail-stops after bidding (so the referee already holds
// its binding) is cut from the adjudication state, and the eviction is
// entered into the transcript like a bidding-phase one. Meters it may
// have reported are discarded; payment adjudication proceeds over the
// survivors, whose reduced instance stays optimal per Theorem 2.2.
func (r *Referee) Evict(proc, phase, reason string) (AuditEntry, error) {
	i, ok := r.index[proc]
	if !ok {
		return AuditEntry{}, fmt.Errorf("referee: cannot evict unknown processor %q", proc)
	}
	if len(r.procs) <= 2 {
		return AuditEntry{}, fmt.Errorf("referee: evicting %s would leave fewer than two processors", proc)
	}
	r.procs = append(r.procs[:i], r.procs[i+1:]...)
	if r.epochs != nil {
		r.epochs = append(r.epochs[:i], r.epochs[i+1:]...)
	}
	r.index = make(map[string]int, len(r.procs))
	for j, p := range r.procs {
		r.index[p] = j
	}
	delete(r.meters, proc)
	e := r.audit.AppendRound(r.round, "eviction", phase, nil, fmt.Sprintf("%s evicted: %s", proc, reason))
	r.replicate(AuditReplicaPayload{Entry: &e, Evict: proc})
	return e, nil
}

// RecordFailover enters a referee promotion into the transcript: the
// primary at fromAccount became unreachable and this referee (rebuilt
// from the replicated audit log by Standby.Promote) took over the round
// at toAccount. The entry is the one deliberate transcript divergence
// between a failed-over round and an uninterrupted one — verdicts and
// payments stay bit-identical, and the entry records why the chains
// differ.
func (r *Referee) RecordFailover(fromAccount, toAccount string) AuditEntry {
	return r.appendAudit("failover", "processing", nil,
		fmt.Sprintf("standby %s promoted; primary %s unreachable", toAccount, fromAccount))
}

// Transcript returns a copy of the audit log entries; VerifyEntries
// validates such a copy independently of the referee.
func (r *Referee) Transcript() []AuditEntry { return r.audit.Entries() }

// AuditString renders the transcript for humans.
func (r *Referee) AuditString() string { return r.audit.String() }

// SuggestedFine returns a fine magnitude that satisfies F ≥ Σ α_j·w̃_j for
// any feasible allocation as long as no processor slacks beyond
// slackFactor times the slowest bid: Σ α_j·w̃_j ≤ max_j w̃_j ≤
// slackFactor·max_j b_j. A safety factor of 2 is applied on top.
func SuggestedFine(bids []float64, slackFactor float64) float64 {
	mx := 0.0
	for _, b := range bids {
		if b > mx {
			mx = b
		}
	}
	if slackFactor < 1 {
		slackFactor = 1
	}
	return 2 * slackFactor * mx
}

// CheckFineSufficient verifies the paper's requirement F ≥ Σ_j α_j·w̃_j
// given the realized compensations.
func (r *Referee) CheckFineSufficient(compensations []float64) error {
	var sum float64
	for _, c := range compensations {
		sum += c
	}
	if r.fine < sum {
		return fmt.Errorf("referee: fine %v below total compensation %v", r.fine, sum)
	}
	return nil
}

// ---- Bidding phase ----------------------------------------------------

// JudgeEquivocation adjudicates a report that `accused` broadcast two
// contradictory signed bids. If the evidence holds the accused is fined
// and the protocol terminates; if it is unfounded the accuser is fined
// instead ("If the concerns are unfounded, P_j is penalized F").
//
// Under a bound session (BindRounds) both evidence envelopes must carry
// bids of the CURRENT bid epoch. Two contradictory bids from different
// epochs are not equivocation — a processor that announced a rate change
// legitimately signs a new, different bid in the new epoch, and the old
// one must not be usable to frame it. Cross-epoch "evidence" is therefore
// unfounded and fines the accuser.
func (r *Referee) JudgeEquivocation(accuser string, a, b sig.Envelope) (Verdict, error) {
	if _, ok := r.index[accuser]; !ok {
		return Verdict{}, fmt.Errorf("referee: unknown accuser %q", accuser)
	}
	if r.isEquivocation(a, b) && r.evidenceInEpoch(a) && r.evidenceInEpoch(b) {
		if _, ok := r.index[a.Sender]; !ok {
			return Verdict{}, fmt.Errorf("referee: equivocation by non-participant %q", a.Sender)
		}
		return r.audited(Verdict{
			Phase:      "bidding",
			Guilty:     []string{a.Sender},
			Reason:     fmt.Sprintf("%s broadcast contradictory signed bids", a.Sender),
			Terminates: true,
		}), nil
	}
	return r.audited(Verdict{
		Phase:      "bidding",
		Guilty:     []string{accuser},
		Reason:     fmt.Sprintf("%s raised an unfounded equivocation claim", accuser),
		Terminates: true,
	}), nil
}

// evidenceInEpoch reports whether an equivocation-evidence envelope is a
// bid of the sender's current bid epoch (per-processor after a splice).
// Outside a session (empty bidEpoch) every envelope qualifies. An
// envelope that fails to open also qualifies — sig.IsEquivocation has
// already vouched for both signatures by the time this runs, so an
// unopenable payload cannot occur on the true branch.
func (r *Referee) evidenceInEpoch(env sig.Envelope) bool {
	if r.bidEpoch == "" {
		return true
	}
	var bp BidPayload
	if err := r.open(&env, &bp); err != nil {
		return true
	}
	epoch := r.bidEpoch
	if j, ok := r.index[env.Sender]; ok {
		epoch = r.epochFor(j)
	}
	return bp.Round == epoch
}

// CorroborationThreshold returns the number of distinct witnesses that
// must report a bidder unreachable before the protocol may evict it:
// ⌈m/2⌉ over the pre-eviction participant count m. With m ≥ 3 a single
// strategic processor can never reach the threshold alone, so framing a
// rival requires corrupting a majority of the pool — at which point the
// "rival" really is partitioned from most of it.
func CorroborationThreshold(m int) int { return (m + 1) / 2 }

// WitnessEvidence is what the referee observed while handling one
// unreachability report that stayed BELOW the corroboration threshold:
// it fetched the accused's signed bid from a holder, relayed it to the
// witness, and noted whether the witness kept claiming unreachability.
type WitnessEvidence struct {
	// Corroborating is the number of distinct witnesses that reported the
	// same accused (including this one); Witnesses is the size of the
	// witness pool (the accused's m−1 peers before any eviction) and
	// Threshold is CorroborationThreshold of the pre-eviction count m.
	Corroborating int
	Witnesses     int
	Threshold     int
	// RelayDelivered: the referee's relay of the accused's verified bid
	// reached the witness.
	RelayDelivered bool
	// ClaimMaintained: after the verified relay the witness still alleged
	// it never received the bid — the framing attack.
	ClaimMaintained bool
}

// JudgeWitnessReport adjudicates one signed unreachability report that
// did not reach the corroboration threshold. The report itself is
// entered into the transcript; then, mirroring MediateShortDelivery's
// claimant logic: a witness that withdraws after the referee's verified
// bid relay is clean (a genuine transient loss, now healed), while a
// witness that MAINTAINS the claim is fined — the relay proves the bid
// is obtainable, so persisting is a convictable framing attempt. The
// fine does not terminate the round: the framer's own bid is still
// bound and the honest majority proceeds.
func (r *Referee) JudgeWitnessReport(report sig.Envelope, ev WitnessEvidence) (Verdict, error) {
	var wp WitnessReportPayload
	if err := r.open(&report, &wp); err != nil {
		return Verdict{}, fmt.Errorf("referee: witness report rejected: %w", err)
	}
	if wp.Witness != report.Sender {
		return Verdict{}, fmt.Errorf("referee: witness report names %q but was sent by %q", wp.Witness, report.Sender)
	}
	if _, ok := r.index[wp.Witness]; !ok {
		return Verdict{}, fmt.Errorf("referee: unknown witness %q", wp.Witness)
	}
	if _, ok := r.index[wp.Accused]; !ok {
		return Verdict{}, fmt.Errorf("referee: witness report accuses non-participant %q", wp.Accused)
	}
	if wp.Witness == wp.Accused {
		return Verdict{}, fmt.Errorf("referee: %s filed a witness report against itself", wp.Witness)
	}
	if wp.Round != r.round {
		return Verdict{}, fmt.Errorf("referee: witness report carries round %q, current round is %q (stale-round replay?)",
			wp.Round, r.round)
	}
	r.appendAudit("witness-report", "bidding", nil,
		fmt.Sprintf("%s reports %s unreachable (%d of %d witnesses, threshold %d)",
			wp.Witness, wp.Accused, ev.Corroborating, ev.Witnesses, ev.Threshold))
	switch {
	case !ev.RelayDelivered:
		return r.audited(Verdict{
			Phase: "bidding",
			Reason: fmt.Sprintf("bid relay of %s's bid to %s undeliverable; report unadjudicable",
				wp.Accused, wp.Witness),
		}), nil
	case ev.ClaimMaintained:
		return r.audited(Verdict{
			Phase:  "bidding",
			Guilty: []string{wp.Witness},
			Reason: fmt.Sprintf("%s maintained its unreachability claim against %s after a verified bid relay (%d of %d witnesses below threshold %d: framing attempt)",
				wp.Witness, wp.Accused, ev.Corroborating, ev.Witnesses, ev.Threshold),
		}), nil
	default:
		return r.audited(Verdict{
			Phase: "bidding",
			Reason: fmt.Sprintf("%s withdrew its report against %s after the verified bid relay",
				wp.Witness, wp.Accused),
		}), nil
	}
}

// ---- Allocating Load phase ---------------------------------------------

// VerifyBidVector checks one party's submitted vector of signed bids:
// correct length, every envelope authentic, position j signed by processor
// j, and payload consistent. It returns the plain bid values on success.
func (r *Referee) VerifyBidVector(env sig.Envelope) ([]float64, error) {
	var vec BidVectorPayload
	if err := r.open(&env, &vec); err != nil {
		return nil, err
	}
	if vec.Proc != env.Sender {
		return nil, fmt.Errorf("referee: vector payload names %q but was sent by %q", vec.Proc, env.Sender)
	}
	if vec.Round != r.round {
		return nil, fmt.Errorf("referee: vector from %s carries round %q, current round is %q (stale-round replay?)",
			env.Sender, vec.Round, r.round)
	}
	if len(vec.Bids) != len(r.procs) {
		return nil, fmt.Errorf("referee: vector has %d bids for %d processors", len(vec.Bids), len(r.procs))
	}
	bids := make([]float64, len(r.procs))
	for j := range vec.Bids {
		bidEnv := &vec.Bids[j]
		var bp BidPayload
		if err := r.open(bidEnv, &bp); err != nil {
			return nil, fmt.Errorf("referee: bid %d in %s's vector: %w", j, env.Sender, err)
		}
		if bidEnv.Sender != r.procs[j] || bp.Proc != r.procs[j] {
			return nil, fmt.Errorf("referee: bid %d in %s's vector signed by %q, want %q",
				j, env.Sender, bidEnv.Sender, r.procs[j])
		}
		if bp.Round != r.epochFor(j) {
			return nil, fmt.Errorf("referee: bid %d in %s's vector signed in epoch %q, current bid epoch is %q",
				j, env.Sender, bp.Round, r.epochFor(j))
		}
		if !(bp.Bid > 0) || math.IsInf(bp.Bid, 0) {
			return nil, fmt.Errorf("referee: bid %d in %s's vector is invalid (%v)", j, env.Sender, bp.Bid)
		}
		bids[j] = bp.Bid
	}
	return bids, nil
}

// JudgeAllocationClaim adjudicates a misallocation claim: the claimant
// says its delivered block count differs from the allocation everyone
// should have computed. Both the claimant and the load originator submit
// their signed bid-vectors. Outcomes, following Section 4:
//
//   - a party whose vector is inconsistent or fails authentication is
//     fined (possibly both);
//   - if the valid vectors disagree at position j, both entries are
//     correctly signed by processor j — equivocation — so j is fined;
//   - with an agreed vector the referee recomputes the expected counts.
//     If the claimant indeed received too much, the originator is fined;
//     if the claim is unfounded, the claimant is fined.
//
// Short deliveries (delivered < expected) go through MediateShortDelivery
// instead. expectedCounts are the per-processor block counts the referee
// recomputes from the agreed bids; the caller supplies the function to
// avoid a dependency cycle on the partitioning code.
func (r *Referee) JudgeAllocationClaim(
	claimant, originator string,
	claimantVec, originatorVec sig.Envelope,
	delivered int,
	recomputeCounts func(bids []float64) ([]int, error),
) (Verdict, error) {
	ci, ok := r.index[claimant]
	if !ok {
		return Verdict{}, fmt.Errorf("referee: unknown claimant %q", claimant)
	}
	if _, ok := r.index[originator]; !ok {
		return Verdict{}, fmt.Errorf("referee: unknown originator %q", originator)
	}
	guilty := map[string]string{}

	cBids, cErr := r.VerifyBidVector(claimantVec)
	if cErr != nil {
		guilty[claimant] = fmt.Sprintf("claimant vector rejected: %v", cErr)
	}
	oBids, oErr := r.VerifyBidVector(originatorVec)
	if oErr != nil {
		guilty[originator] = fmt.Sprintf("originator vector rejected: %v", oErr)
	}
	if len(guilty) > 0 {
		return r.audited(r.verdictFromMap("allocating", guilty, true)), nil
	}

	// Both vectors verified: any disagreement at position j is a pair of
	// authentic contradictory bids from processor j.
	for j := range cBids {
		if cBids[j] != oBids[j] {
			guilty[r.procs[j]] = fmt.Sprintf("contradictory signed bids (%v vs %v) surfaced during claim", cBids[j], oBids[j])
		}
	}
	if len(guilty) > 0 {
		return r.audited(r.verdictFromMap("allocating", guilty, true)), nil
	}

	counts, err := recomputeCounts(cBids)
	if err != nil {
		return Verdict{}, fmt.Errorf("referee: recomputing allocation: %w", err)
	}
	if len(counts) != len(r.procs) {
		return Verdict{}, fmt.Errorf("referee: recomputed %d counts for %d processors", len(counts), len(r.procs))
	}
	expected := counts[ci]
	switch {
	case delivered > expected:
		return r.audited(Verdict{
			Phase:      "allocating",
			Guilty:     []string{originator},
			Reason:     fmt.Sprintf("%s delivered %d blocks to %s, allocation says %d", originator, delivered, claimant, expected),
			Terminates: true,
		}), nil
	case delivered == expected:
		return r.audited(Verdict{
			Phase:      "allocating",
			Guilty:     []string{claimant},
			Reason:     fmt.Sprintf("%s's misallocation claim is unfounded (delivered = expected = %d)", claimant, expected),
			Terminates: true,
		}), nil
	default:
		return Verdict{}, fmt.Errorf("referee: short delivery (%d < %d) must go through MediateShortDelivery", delivered, expected)
	}
}

// ShortDeliveryEvidence describes what the referee observes while
// mediating an α'_i < α_i claim: it requests the missing blocks from the
// originator, verifies their integrity against the user's signatures and
// forwards them.
type ShortDeliveryEvidence struct {
	// OriginatorRefused: the originator did not transmit the requested
	// number of blocks.
	OriginatorRefused bool
	// IntegrityFailed: a forwarded block failed the user-signature check.
	IntegrityFailed bool
	// ClaimantStillClaims: after a verified complete delivery the
	// claimant still alleges shortage.
	ClaimantStillClaims bool
}

// MediateShortDelivery resolves the three cases of Section 4: "If P_lo
// refuses to transmit the correct number of load units or load unit
// integrity fails, P_lo is fined. If P_i [still] claims that it did not
// receive enough load units, P_i is fined." A clean mediation (originator
// cooperates, blocks verify, claimant satisfied) fines nobody and the
// protocol continues.
func (r *Referee) MediateShortDelivery(claimant, originator string, ev ShortDeliveryEvidence) (Verdict, error) {
	if _, ok := r.index[claimant]; !ok {
		return Verdict{}, fmt.Errorf("referee: unknown claimant %q", claimant)
	}
	if _, ok := r.index[originator]; !ok {
		return Verdict{}, fmt.Errorf("referee: unknown originator %q", originator)
	}
	switch {
	case ev.OriginatorRefused:
		return r.audited(Verdict{Phase: "allocating", Guilty: []string{originator},
			Reason: originator + " refused to transmit the correct number of load units", Terminates: true}), nil
	case ev.IntegrityFailed:
		return r.audited(Verdict{Phase: "allocating", Guilty: []string{originator},
			Reason: originator + " transmitted load units failing the integrity check", Terminates: true}), nil
	case ev.ClaimantStillClaims:
		return r.audited(Verdict{Phase: "allocating", Guilty: []string{claimant},
			Reason: claimant + " maintained an unfounded shortage claim after verified delivery", Terminates: true}), nil
	default:
		return r.audited(Verdict{Phase: "allocating", Reason: "short delivery remediated"}), nil
	}
}

// ---- Processing Load phase ----------------------------------------------

// RecordMeter stores the tamper-proof meter reading φ_i for a processor.
func (r *Referee) RecordMeter(proc string, phi float64) error {
	if _, ok := r.index[proc]; !ok {
		return fmt.Errorf("referee: unknown processor %q", proc)
	}
	if !(phi >= 0) || math.IsInf(phi, 0) {
		return fmt.Errorf("referee: invalid meter reading %v for %s", phi, proc)
	}
	r.meters[proc] = phi
	e := r.audit.AppendRound(r.round, "meter", "processing", nil, fmt.Sprintf("%s reported φ=%.9g", proc, phi))
	// The entry's rendered detail rounds φ; the replica carries the exact
	// bits so a promoted standby recomputes payments bit-identically.
	r.replicate(AuditReplicaPayload{Entry: &e, Meter: &MeterReading{Proc: proc, Phi: phi}})
	return nil
}

// Meters returns (φ_1, …, φ_m) in processor index order; it errors if any
// meter is missing.
func (r *Referee) Meters() ([]float64, error) {
	phi := make([]float64, len(r.procs))
	for i, p := range r.procs {
		v, ok := r.meters[p]
		if !ok {
			return nil, fmt.Errorf("referee: no meter reading for %s", p)
		}
		phi[i] = v
	}
	return phi, nil
}

// ---- Computing Payments phase -------------------------------------------

// paymentTol is the relative tolerance for comparing independently
// computed payment vectors. Honest processors compute bit-identical
// vectors from identical inputs; the tolerance only guards against
// platform-dependent floating-point quirks.
const paymentTol = 1e-9

// JudgePayments adjudicates the Computing Payments phase. submissions
// maps each processor to the signed payment-vector envelopes it sent to
// the referee (normally exactly one). Deviations fined F each:
//
//   - contradictory multiple submissions (equivocation);
//   - missing, unverifiable or malformed submissions;
//   - vectors that disagree with the recomputed truth when the
//     submissions are not unanimous.
//
// On success it returns the agreed payment vector Q alongside the verdict;
// the protocol then forwards Q to the payment infrastructure. Payment-
// phase fines never terminate the protocol — the work is already done and
// the user is still billed.
func (r *Referee) JudgePayments(bids, exec []float64, submissions map[string][]sig.Envelope) (Verdict, []float64, error) {
	m := len(r.procs)
	if len(bids) != m || len(exec) != m {
		return Verdict{}, nil, fmt.Errorf("referee: bids/exec have %d/%d entries for %d processors", len(bids), len(exec), m)
	}
	guilty := map[string]string{}
	vectors := make(map[string][]float64, m)

	for _, p := range r.procs {
		envs := submissions[p]
		if len(envs) == 0 {
			guilty[p] = "no payment vector submitted"
			continue
		}
		// Multiple contradictory submissions are equivocation.
		if len(envs) > 1 {
			contradictory := false
			for k := 1; k < len(envs); k++ {
				if r.isEquivocation(envs[0], envs[k]) {
					contradictory = true
					break
				}
			}
			if contradictory {
				guilty[p] = "submitted contradictory payment vectors"
				continue
			}
		}
		var pp PaymentPayload
		if err := r.open(&envs[0], &pp); err != nil {
			guilty[p] = fmt.Sprintf("payment vector rejected: %v", err)
			continue
		}
		if envs[0].Sender != p || pp.Proc != p {
			guilty[p] = "payment vector sender mismatch"
			continue
		}
		if pp.Round != r.round {
			guilty[p] = fmt.Sprintf("payment vector carries round %q, current round is %q (stale-round replay?)", pp.Round, r.round)
			continue
		}
		if len(pp.Q) != m {
			guilty[p] = fmt.Sprintf("payment vector has %d entries, want %d", len(pp.Q), m)
			continue
		}
		vectors[p] = pp.Q
	}

	// Unanimity check among the (so far) valid vectors.
	unanimous := true
	var reference []float64
	for _, p := range r.procs {
		v, ok := vectors[p]
		if !ok {
			unanimous = false
			continue
		}
		if reference == nil {
			reference = v
			continue
		}
		if !vectorsEqual(reference, v) {
			unanimous = false
		}
	}

	if unanimous && len(guilty) == 0 && reference != nil {
		return r.audited(Verdict{Phase: "payments", Reason: "unanimous payment vectors"}), reference, nil
	}

	// Disagreement (or prior guilt): the referee recomputes the truth
	// from the bids and the meter-derived execution values — under the
	// installment payment rule when this round is a pipelined sub-round.
	out, err := r.mech.RunRounds(bids, exec, r.instRounds, r.instPolicy, core.WithVerification)
	if err != nil {
		return Verdict{}, nil, fmt.Errorf("referee: recomputing payments: %w", err)
	}
	truth := out.Payment
	for p, v := range vectors {
		if !vectorsEqual(truth, v) {
			guilty[p] = "payment vector disagrees with recomputation"
		}
	}
	v := r.verdictFromMap("payments", guilty, false)
	if v.Clean() {
		v.Reason = "recomputed payments match all submissions"
	}
	return r.audited(v), truth, nil
}

func vectorsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		den := math.Max(math.Max(math.Abs(a[i]), math.Abs(b[i])), 1)
		if math.Abs(a[i]-b[i])/den > paymentTol {
			return false
		}
	}
	return true
}

// ---- Settlement -----------------------------------------------------------

// Settle executes a verdict on the ledger: every guilty party pays F into
// the referee's escrow; processors that already commenced work are
// compensated their α_i·w̃_i out of the escrow (workDone maps processor to
// that amount; nil when no work happened); the remainder is split evenly
// among the non-deviating processors. Settle is a no-op for a clean
// verdict.
func (r *Referee) Settle(v Verdict, workDone map[string]float64) error {
	if v.Clean() {
		return nil
	}
	guiltySet := make(map[string]bool, len(v.Guilty))
	for _, g := range v.Guilty {
		if _, ok := r.index[g]; !ok {
			return fmt.Errorf("referee: cannot fine non-participant %q", g)
		}
		guiltySet[g] = true
	}
	collected := 0.0
	for _, g := range v.Guilty {
		if err := r.ledger.Transfer(g, Account, r.fine, "fine: "+v.Reason); err != nil {
			return err
		}
		collected += r.fine
	}
	// Compensate commenced work first.
	paidWork := 0.0
	for _, p := range r.procs {
		amt := workDone[p]
		if amt < 0 || math.IsNaN(amt) || math.IsInf(amt, 0) {
			return fmt.Errorf("referee: invalid work compensation %v for %s", amt, p)
		}
		if amt == 0 || guiltySet[p] {
			continue
		}
		if err := r.ledger.Transfer(Account, p, amt, "work compensation on termination"); err != nil {
			return err
		}
		paidWork += amt
	}
	remainder := collected - paidWork
	if remainder < -1e-9 {
		return fmt.Errorf("referee: fine pool %v cannot cover work compensation %v (F too small)", collected, paidWork)
	}
	nonDeviating := len(r.procs) - len(guiltySet)
	if nonDeviating <= 0 {
		return errors.New("referee: every processor deviated; nobody to reward")
	}
	share := remainder / float64(nonDeviating)
	if share < 0 {
		share = 0
	}
	for _, p := range r.procs {
		if guiltySet[p] {
			continue
		}
		if err := r.ledger.Transfer(Account, p, share, "fine redistribution: "+v.Reason); err != nil {
			return err
		}
	}
	r.appendAudit("settlement", v.Phase, v.Guilty,
		fmt.Sprintf("collected %.6g, work compensation %.6g, share %.6g to each of %d non-deviants", collected, paidWork, share, nonDeviating))
	return nil
}

func (r *Referee) verdictFromMap(phase string, guilty map[string]string, terminates bool) Verdict {
	if len(guilty) == 0 {
		return Verdict{Phase: phase}
	}
	names := make([]string, 0, len(guilty))
	for g := range guilty {
		names = append(names, g)
	}
	sort.Strings(names)
	reason := ""
	for _, g := range names {
		if reason != "" {
			reason += "; "
		}
		reason += g + ": " + guilty[g]
	}
	return Verdict{Phase: phase, Guilty: names, Reason: reason, Terminates: terminates}
}
