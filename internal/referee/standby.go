package referee

import (
	"errors"
	"fmt"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/sig"
)

// Referee failover. The referee is minimally trusted but, until this
// file, singly available: it holds the only copy of the hash-chained
// audit transcript, the meter readings and the round bindings, so losing
// it mid-round lost the round. A Standby fixes that: the primary streams
// every state change over the existing reliable transport (KindAuditReplica
// envelopes signed with the referee key), the standby verifies each
// replica against the incremental hash chain, and Promote rebuilds a
// fully armed *Referee from the replicated state — able to adjudicate
// the rest of the round with verdicts and payments bit-identical to the
// primary's, since both compute from the same replicated inputs.

// StandbyAccount is the bus endpoint and ledger-facing identity of the
// standby referee.
const StandbyAccount = "referee-standby"

// StandbySnapshot is the full referee state at attach time: the primary
// sends it once, then streams incremental AuditReplicaPayload updates.
type StandbySnapshot struct {
	Procs      []string           `json:"procs"`
	Fine       float64            `json:"fine"`
	Round      string             `json:"round,omitempty"`
	BidEpoch   string             `json:"bid_epoch,omitempty"`
	Epochs     []string           `json:"epochs,omitempty"`
	InstRounds int                `json:"inst_rounds,omitempty"`
	InstPolicy dlt.RoundPolicy    `json:"inst_policy,omitempty"`
	Meters     map[string]float64 `json:"meters,omitempty"`
	Entries    []AuditEntry       `json:"entries,omitempty"`
}

// MeterReading replicates one tamper-proof meter value exactly. The
// audit entry renders φ rounded for humans; payments recompute from
// these bits.
type MeterReading struct {
	Proc string  `json:"proc"`
	Phi  float64 `json:"phi"`
}

// InstBinding replicates the installment payment rule RecordInstallment
// armed on the primary.
type InstBinding struct {
	Rounds int             `json:"rounds"`
	Policy dlt.RoundPolicy `json:"policy"`
}

// AuditReplicaPayload is one primary → standby replication message. The
// first message of a round carries the Snapshot; every later one carries
// the freshly sealed audit Entry plus whatever structured state the
// entry's action implies (a meter reading, an eviction, an installment
// binding) — the entry alone is enough to extend the hash chain, the
// side state is what Promote needs to adjudicate.
type AuditReplicaPayload struct {
	Snapshot *StandbySnapshot `json:"snapshot,omitempty"`
	Entry    *AuditEntry      `json:"entry,omitempty"`
	Meter    *MeterReading    `json:"meter,omitempty"`
	Inst     *InstBinding     `json:"inst,omitempty"`
	Evict    string           `json:"evict,omitempty"`
}

// Standby accumulates the primary's replicated state and can promote
// itself into a full Referee when the primary dies. It performs the
// hash-chain verification ON APPLY, so a corrupted or reordered replica
// stream is rejected the moment it arrives, not at promotion time.
type Standby struct {
	snap    *StandbySnapshot
	entries []AuditEntry
	meters  map[string]float64
	evicted map[string]bool
	inst    *InstBinding
}

// NewStandby returns an empty standby awaiting the primary's snapshot.
func NewStandby() *Standby {
	return &Standby{meters: make(map[string]float64), evicted: make(map[string]bool)}
}

// Apply verifies and folds in one replication envelope: the signature
// must check against reg (the primary referee's key), and a carried
// audit entry must extend the replicated hash chain exactly — Seq,
// PrevHash and content hash all verified incrementally.
func (s *Standby) Apply(reg *sig.Registry, env sig.Envelope) error {
	if env.Sender != Account {
		return fmt.Errorf("referee: standby rejected replica signed by %q, want the primary %q", env.Sender, Account)
	}
	var p AuditReplicaPayload
	if err := env.Open(reg, &p); err != nil {
		return fmt.Errorf("referee: standby rejected replica: %w", err)
	}
	if p.Snapshot != nil {
		if s.snap != nil {
			return errors.New("referee: standby received a second snapshot")
		}
		if err := VerifyEntries(p.Snapshot.Entries); err != nil {
			return fmt.Errorf("referee: snapshot transcript: %w", err)
		}
		s.snap = p.Snapshot
		s.entries = append([]AuditEntry(nil), p.Snapshot.Entries...)
		for proc, phi := range p.Snapshot.Meters {
			s.meters[proc] = phi
		}
		if p.Snapshot.InstRounds > 0 {
			s.inst = &InstBinding{Rounds: p.Snapshot.InstRounds, Policy: p.Snapshot.InstPolicy}
		}
		return nil
	}
	if s.snap == nil {
		return errors.New("referee: standby received an update before the snapshot")
	}
	if p.Entry != nil {
		e := *p.Entry
		if e.Seq != len(s.entries) {
			return fmt.Errorf("referee: replica entry sequence %d, want %d", e.Seq, len(s.entries))
		}
		prev := genesisHash
		if len(s.entries) > 0 {
			prev = s.entries[len(s.entries)-1].Hash
		}
		if e.PrevHash != prev {
			return fmt.Errorf("referee: replica entry %d breaks the chain", e.Seq)
		}
		if hashEntry(e) != e.Hash {
			return fmt.Errorf("referee: replica entry %d content does not match its hash", e.Seq)
		}
		s.entries = append(s.entries, e)
	}
	if p.Meter != nil {
		s.meters[p.Meter.Proc] = p.Meter.Phi
	}
	if p.Inst != nil {
		s.inst = p.Inst
	}
	if p.Evict != "" {
		s.evicted[p.Evict] = true
		delete(s.meters, p.Evict)
	}
	return nil
}

// Entries returns a copy of the replicated transcript so far.
func (s *Standby) Entries() []AuditEntry { return append([]AuditEntry(nil), s.entries...) }

// Promote rebuilds a fully armed Referee from the replicated state. The
// returned referee adopts the replicated transcript (chain continuity:
// its next entry extends the primary's last replicated hash), the round
// bindings, the meter readings and the surviving participant list, so
// its adjudications and payment recomputations are bit-identical to
// what the primary would have produced from the same inputs.
func (s *Standby) Promote(reg *sig.Registry, ledger *payment.Ledger, mech core.Mechanism) (*Referee, error) {
	if s.snap == nil {
		return nil, errors.New("referee: standby has no replicated snapshot to promote from")
	}
	var procs []string
	for _, p := range s.snap.Procs {
		if !s.evicted[p] {
			procs = append(procs, p)
		}
	}
	ref, err := New(reg, ledger, mech, procs, s.snap.Fine)
	if err != nil {
		return nil, fmt.Errorf("referee: promoting standby: %w", err)
	}
	ref.round = s.snap.Round
	ref.bidEpoch = s.snap.BidEpoch
	if s.snap.Epochs != nil {
		var epochs []string
		for i, p := range s.snap.Procs {
			if !s.evicted[p] && i < len(s.snap.Epochs) {
				epochs = append(epochs, s.snap.Epochs[i])
			}
		}
		ref.epochs = epochs
	}
	if s.inst != nil {
		ref.instRounds, ref.instPolicy = s.inst.Rounds, s.inst.Policy
	}
	for proc, phi := range s.meters {
		ref.meters[proc] = phi
	}
	ref.audit = AuditLog{entries: append([]AuditEntry(nil), s.entries...)}
	return ref, nil
}

// AttachStandby arms replication: the send function carries one
// AuditReplicaPayload to the standby (the protocol layer seals it with
// the referee key and ships it over the reliable transport). The current
// state goes out immediately as a snapshot; every subsequent audit
// append, meter record, eviction and installment binding streams after
// it. A send failure latches (see ReplicationErr) rather than failing
// the adjudication that triggered it — the primary stays authoritative;
// only a later promotion must refuse to proceed from a torn replica.
func (r *Referee) AttachStandby(send func(AuditReplicaPayload) error) error {
	snap := &StandbySnapshot{
		Procs:      append([]string(nil), r.procs...),
		Fine:       r.fine,
		Round:      r.round,
		BidEpoch:   r.bidEpoch,
		Epochs:     append([]string(nil), r.epochs...),
		InstRounds: r.instRounds,
		InstPolicy: r.instPolicy,
		Entries:    r.audit.Entries(),
	}
	if len(r.meters) > 0 {
		snap.Meters = make(map[string]float64, len(r.meters))
		for p, phi := range r.meters {
			snap.Meters[p] = phi
		}
	}
	if err := send(AuditReplicaPayload{Snapshot: snap}); err != nil {
		return fmt.Errorf("referee: standby snapshot: %w", err)
	}
	r.send = send
	return nil
}

// ReplicationErr returns the first standby replication failure, or nil.
// Promotion paths must check it: a standby behind a torn stream would
// adjudicate from stale state.
func (r *Referee) ReplicationErr() error { return r.replErr }
