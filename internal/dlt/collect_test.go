package dlt

import (
	"math/rand"
	"testing"
)

func randomCollect(rng *rand.Rand, net Network, m int) CollectInstance {
	return CollectInstance{
		Instance: RandomInstance(rng, net, m, 0.5, 8, 0.02, 0.49),
		Delta:    rng.Float64() * 0.5,
	}
}

func TestCollectValidate(t *testing.T) {
	ok := CollectInstance{Instance: Instance{Network: CP, Z: 0.1, W: []float64{1}}, Delta: 0.2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CollectInstance{Instance: ok.Instance, Delta: -1}).Validate(); err == nil {
		t.Error("negative delta accepted")
	}
	if err := (CollectInstance{Instance: Instance{Network: CP, Z: -1, W: []float64{1}}}).Validate(); err == nil {
		t.Error("invalid base instance accepted")
	}
	if _, err := ScheduleWithCollection(ok, Allocation{1}, CollectOrder(9)); err == nil {
		t.Error("unknown order accepted")
	}
}

func TestCollectOrderString(t *testing.T) {
	if FIFO.String() != "FIFO" || LIFO.String() != "LIFO" {
		t.Error("order names wrong")
	}
}

// TestCollectZeroDeltaMatchesPlainSchedule: with Delta = 0 collection
// adds nothing.
func TestCollectZeroDeltaMatchesPlainSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, net := range Networks {
		in := CollectInstance{Instance: DefaultRandomInstance(rng, net, 6)}
		a, err := Optimal(in.Instance)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Makespan(in.Instance, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range []CollectOrder{FIFO, LIFO} {
			ms, err := CollectMakespan(in, a, order)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(ms, plain) > tol {
				t.Errorf("%v/%v: delta=0 makespan %v, plain %v", net, order, ms, plain)
			}
		}
	}
}

// TestCollectHandComputedCP: m=2, z=1, w=(2,2), δ=0.5, α=(0.5,0.5), FIFO.
// Distribution: comm1 [0,0.5), comm2 [0.5,1). Compute: P1 [0.5,1.5),
// P2 [1,2). Returns (sizes 0.25 each): P1 at max(bus=1, comp=1.5)=1.5 →
// [1.5,1.75); P2 at max(1.75, 2)=2 → [2,2.25). Makespan 2.25.
// LIFO: P2 first at max(1,2)=2 → [2,2.25); P1 at max(2.25,1.5) →
// [2.25,2.5). Makespan 2.5 — FIFO wins here.
func TestCollectHandComputedCP(t *testing.T) {
	c := CollectInstance{Instance: Instance{Network: CP, Z: 1, W: []float64{2, 2}}, Delta: 0.5}
	a := Allocation{0.5, 0.5}
	fifo, err := CollectMakespan(c, a, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(fifo, 2.25) > tol {
		t.Errorf("FIFO makespan %v, want 2.25", fifo)
	}
	lifo, err := CollectMakespan(c, a, LIFO)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(lifo, 2.5) > tol {
		t.Errorf("LIFO makespan %v, want 2.5", lifo)
	}
}

// TestCollectBusStaysSerial: distribution and return transfers never
// overlap on the one-port bus.
func TestCollectBusStaysSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, net := range Networks {
		for trial := 0; trial < 30; trial++ {
			c := randomCollect(rng, net, 2+rng.Intn(8))
			a, err := Optimal(c.Instance)
			if err != nil {
				t.Fatal(err)
			}
			for _, order := range []CollectOrder{FIFO, LIFO} {
				tl, err := ScheduleWithCollection(c, a, order)
				if err != nil {
					t.Fatal(err)
				}
				spans := tl.BusSpans()
				for i := 1; i < len(spans); i++ {
					if spans[i].Start < spans[i-1].End-tol {
						t.Fatalf("%v/%v: bus overlap %+v then %+v", net, order, spans[i-1], spans[i])
					}
				}
			}
		}
	}
}

// TestCollectReturnAfterCompute: a result never leaves before its
// computation ends.
func TestCollectReturnAfterCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	c := randomCollect(rng, NCPFE, 6)
	a, err := Optimal(c.Instance)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := ScheduleWithCollection(c, a, LIFO)
	if err != nil {
		t.Fatal(err)
	}
	compEnd := make([]float64, c.M())
	for _, s := range tl.Spans {
		if s.Kind == Comp && s.End > compEnd[s.Proc] {
			compEnd[s.Proc] = s.End
		}
	}
	for _, s := range tl.Spans {
		if s.Round == 1 && s.Start < compEnd[s.Proc]-tol {
			t.Errorf("P%d returns at %v before computing ends at %v", s.Proc+1, s.Start, compEnd[s.Proc])
		}
	}
}

// TestTuneCollectionNeverWorsens and usually improves the
// distribution-optimal split once returns matter.
func TestTuneCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	improved := 0
	for trial := 0; trial < 20; trial++ {
		c := CollectInstance{
			Instance: RandomInstance(rng, CP, 5, 0.5, 4, 0.1, 0.4),
			Delta:    0.5 + rng.Float64(),
		}
		a, err := Optimal(c.Instance)
		if err != nil {
			t.Fatal(err)
		}
		before, err := CollectMakespan(c, a, FIFO)
		if err != nil {
			t.Fatal(err)
		}
		tuned, after, err := TuneCollection(c, a, FIFO, 400, rng)
		if err != nil {
			t.Fatal(err)
		}
		if after > before+tol {
			t.Errorf("tuning worsened: %v -> %v", before, after)
		}
		if err := tuned.Validate(c.M()); err != nil {
			t.Errorf("tuned allocation infeasible: %v", err)
		}
		if after < before-1e-6 {
			improved++
		}
	}
	if improved == 0 {
		t.Error("tuning never improved any instance with heavy returns")
	}
	// Validation paths.
	c := CollectInstance{Instance: Instance{Network: CP, Z: 0.1, W: []float64{1, 2}}, Delta: 0.1}
	if _, _, err := TuneCollection(c, Allocation{0.5, 0.5}, FIFO, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, _, err := TuneCollection(c, Allocation{0.7, 0.7}, FIFO, 10, rng); err == nil {
		t.Error("infeasible start accepted")
	}
}
