package dlt

import "fmt"

// Optimal computes the optimal load allocation for the instance using the
// closed-form algorithms of Section 2: Algorithm 2.1 for NCP-FE,
// Algorithm 2.2 for NCP-NFE, and the analogous recursion for CP. By
// Theorem 2.1 the result equalizes all finishing times; by Theorem 2.2 the
// processor order does not affect the optimal makespan (only the fractions
// permute).
//
// Caveat (inherited from the paper, which states Theorem 2.1 without its
// regime condition): for NCP-NFE the all-participate equal-finish solution
// is globally optimal only when the bus is faster than the originator's
// own processing, z < w_m. When z > w_m every unit shipped out delays the
// front-end-less originator by more than it saves, so the true optimum
// keeps the whole load on the originator. Optimal implements the paper's
// Algorithm 2.2 verbatim; use DistributionBeneficial to detect the regime.
func Optimal(in Instance) (Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	switch in.Network {
	case CP:
		return optimalCP(in), nil
	case NCPFE:
		return optimalNCPFE(in), nil
	case NCPNFE:
		return optimalNCPNFE(in), nil
	}
	return nil, fmt.Errorf("dlt: unknown network class %v", in.Network)
}

// DistributionBeneficial reports whether distributing load across all
// processors improves on the best single processor. For CP and NCP-FE it
// is always true: an extra recipient strictly shrinks every other share
// without delaying anyone who already finished. For NCP-NFE the marginal
// trade of moving ε load from the originator to any other processor costs
// the originator z·ε of delayed start and saves it w_m·ε of processing, so
// distribution pays exactly when z < w_m.
func DistributionBeneficial(in Instance) bool {
	if in.Network != NCPNFE || in.M() == 1 {
		return true
	}
	return in.Z < in.W[in.M()-1]
}

// OptimalGlobal returns the globally optimal allocation even outside the
// paper's regime: identical to Optimal except for NCP-NFE with z ≥ w_m,
// where distributing is a net loss and the whole load stays on the
// originator. (At z = w_m both choices tie; the solo allocation is
// returned for determinism.)
func OptimalGlobal(in Instance) (Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if DistributionBeneficial(in) {
		return Optimal(in)
	}
	return SingleProcessor(in.M(), in.M()-1), nil
}

// OptimalMakespan computes the optimal allocation and its makespan in one
// call.
func OptimalMakespan(in Instance) (Allocation, float64, error) {
	a, err := Optimal(in)
	if err != nil {
		return nil, 0, err
	}
	t, err := Makespan(in, a)
	if err != nil {
		return nil, 0, err
	}
	return a, t, nil
}

// optimalCP solves BUS-LINEAR-CP. Equalizing consecutive finishing times
// in eq. (1) gives α_i·w_i = α_{i+1}(z + w_{i+1}), i.e. the same ratio
// recursion k_i = w_i/(z + w_{i+1}) as Algorithm 2.1.
func optimalCP(in Instance) Allocation {
	return chainAllocation(in.W, in.Z, in.M())
}

// optimalNCPFE implements Algorithm 2.1 (BUS-LINEAR-NCP-FE). Recursion (7)
// is α_i·w_i = α_{i+1}·z + α_{i+1}·w_{i+1} for i = 1,…,m−1, identical in
// form to the CP case; only the realized finishing times differ.
func optimalNCPFE(in Instance) Allocation {
	return chainAllocation(in.W, in.Z, in.M())
}

// chainAllocation solves the common ratio recursion
// α_{i+1} = α_i · w_i/(z + w_{i+1}) over the first n processors and
// normalizes Σα = 1. The product chain is computed by ChainProducts,
// which renormalizes the running product so the recursion survives large
// m on fast buses (see chain.go).
func chainAllocation(w []float64, z float64, n int) Allocation {
	a := make(Allocation, n)
	sum := ChainProducts(CP, z, w[:n], a, nil)
	for i := range a {
		a[i] /= sum
	}
	return a
}

// optimalNCPNFE implements Algorithm 2.2 (BUS-LINEAR-NCP-NFE). Recursions
// (8) cover i = 1,…,m−2 with the same k_j = w_j/(z + w_{j+1}); recursion
// (9), α_{m−1}·w_{m−1} = α_m·w_m, links the originator P_m (which starts
// computing only after all transfers finish, so no z term appears).
// ChainProducts applies (9) on the final link for the NCPNFE class.
func optimalNCPNFE(in Instance) Allocation {
	m := in.M()
	a := make(Allocation, m)
	sum := ChainProducts(NCPNFE, in.Z, in.W, a, nil)
	for i := range a {
		a[i] /= sum
	}
	return a
}
