package dlt

import "math"

// Chain-product primitives shared by the closed-form allocators
// (Algorithms 2.1/2.2 and the CP analogue) and the O(m) payment engine in
// internal/core.
//
// The equal-finish optimum of every bus class is a product chain: with
// k_j = w_j/(z + w_{j+1}) for the interior links (recursions (7)/(8)) and
// the front-end-less originator's final link k_{m-2} = w_{m-2}/w_{m-1}
// (recursion (9)), the unnormalized fractions are p_0 = 1,
// p_i = p_{i-1}·k_{i-1}, and the allocation is α_i = p_i/Σ_j p_j.
//
// The raw running product reaches denormals and then exactly zero near
// m ≈ 500 on a fast bus (z ≫ w drives every k far below 1), silently
// zeroing the tail of the allocation and poisoning any ratio formed from
// the products. ChainProducts therefore renormalizes the running product
// with math.Frexp whenever its magnitude leaves [2^-256, 2^256], carrying
// the scale in a per-index binary exponent, and finally rebases every
// entry onto the largest one. Growth is bounded — Π k_j ≤ w_0/min_j w_j,
// since the (z + w) denominators only shrink the telescoping product — so
// only decay needs unbounded headroom, but the exponent track handles
// both directions uniformly.

// Magnitude window outside which the running chain product is rebased to
// a fresh Frexp mantissa. 2^±256 leaves ample slack on both sides of the
// float64 range for the per-step ratio multiply and the final sums.
const (
	chainRescaleLo = 0x1p-256
	chainRescaleHi = 0x1p+256
)

// ChainProducts fills p (len(p) ≥ len(w)) with the chain products of the
// class's equal-finish recursion over speeds w, uniformly scaled so the
// largest entry has magnitude ≈ 1 whenever renormalization fires (and
// exactly the raw products, anchored at p_0 = 1, when it does not), and
// returns their sum S in the same scale. The optimal allocation is
// α_i = p[i]/S; any ratio of entries or partial sums is scale-free, which
// is what the payment engine consumes.
//
// For NCPNFE the final link uses recursion (9); CP and NCPFE share the
// standard chain. exps is optional scratch of len ≥ len(w) for the
// exponent track; pass nil to allocate lazily (which only happens when
// renormalization actually fires, i.e. on extreme instances).
func ChainProducts(net Network, z float64, w []float64, p []float64, exps []int) float64 {
	n := len(w)
	if n == 0 {
		return 0
	}
	nfeTail := net == NCPNFE
	p[0] = 1
	cur := 1.0
	curExp := 0
	rescaled := false
	sum := 1.0
	for i := 1; i < n; i++ {
		var k float64
		if nfeTail && i == n-1 {
			k = w[i-1] / w[i] // recursion (9): no z term on the final link
		} else {
			k = w[i-1] / (z + w[i]) // k_{i-1} of Algorithm 2.1
		}
		cur *= k
		if cur < chainRescaleLo || cur > chainRescaleHi {
			if !rescaled {
				if exps == nil {
					exps = make([]int, n)
				}
				for j := 0; j < i; j++ {
					exps[j] = 0
				}
				rescaled = true
			}
			f, e := math.Frexp(cur)
			cur = f
			curExp += e
		}
		p[i] = cur
		if rescaled {
			exps[i] = curExp
		}
		sum += cur
	}
	if !rescaled {
		return sum
	}
	// Rebase every entry onto the largest effective magnitude so that sums
	// and ratios of the stored values are exact up to float rounding.
	// Entries more than ~1100 binary orders below the maximum flush to
	// zero, which is below any representable contribution anyway.
	eMax := math.MinInt
	for i := 0; i < n; i++ {
		if p[i] == 0 {
			continue // total underflow inside a step; genuinely negligible
		}
		if e := exps[i] + math.Ilogb(p[i]); e > eMax {
			eMax = e
		}
	}
	sum = 0
	for i := 0; i < n; i++ {
		p[i] = math.Ldexp(p[i], exps[i]-eMax)
		sum += p[i]
	}
	return sum
}
