package dlt

import (
	"errors"
	"fmt"
	"math"
)

// Multi-level tree networks — the last of the classical DLT topologies
// (the reference book's tree chapter, and the paper's "other network
// architectures" future work). A Tree node either IS a processor (leaf)
// or a processor that heads a subtree: it receives its subtree's whole
// load over its link (store-and-forward), keeps a share for itself and
// redistributes the rest to its children over its own one-port port,
// computing while it transmits (front end).
//
// The classical solution technique is the *equivalent processor*
// reduction: because every quantity in the linear model is homogeneous of
// degree one in the load, a whole subtree behaves exactly like a single
// processor whose per-unit processing time equals the subtree's makespan
// on unit load. Collapsing subtrees bottom-up reduces the tree to a flat
// star, which OptimalStar solves; expanding top-down yields every node's
// fraction.

// Tree is a node of the distribution tree: a processor with per-unit
// time W, reached over a link with per-unit time Z (Z of the root is
// ignored — the root originates the load), plus zero or more child
// subtrees.
type Tree struct {
	W        float64
	Z        float64
	Children []*Tree
}

// Validate checks the whole tree.
func (t *Tree) Validate() error {
	if t == nil {
		return errors.New("dlt: nil tree")
	}
	return t.validate(true)
}

func (t *Tree) validate(root bool) error {
	if !(t.W > 0) || math.IsInf(t.W, 0) {
		return fmt.Errorf("dlt: invalid tree node w=%v", t.W)
	}
	if !root {
		if !(t.Z >= 0) || math.IsInf(t.Z, 0) {
			return fmt.Errorf("dlt: invalid tree link z=%v", t.Z)
		}
	}
	for _, c := range t.Children {
		if c == nil {
			return errors.New("dlt: nil child subtree")
		}
		if err := c.validate(false); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of processors in the tree.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the number of levels (a lone node has depth 1).
func (t *Tree) Depth() int {
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// EquivalentW returns the subtree's equivalent per-unit processing time:
// the makespan of the subtree on unit load when its head originates the
// distribution. A leaf's equivalent time is its own W.
func (t *Tree) EquivalentW() (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return t.equivalentW()
}

func (t *Tree) equivalentW() (float64, error) {
	if len(t.Children) == 0 {
		return t.W, nil
	}
	star, err := t.localStar()
	if err != nil {
		return 0, err
	}
	sa, err := OptimalStar(star)
	if err != nil {
		return 0, err
	}
	return StarMakespan(star, sa)
}

// localStar collapses the node's children into equivalent processors and
// returns the star the node solves locally: itself as a computing root
// serving one equivalent child per subtree, in the z-optimal order
// (OptimalStar is order-sensitive; sortedness is the children's own
// responsibility — callers get optimality via OptimalTree, which sorts).
func (t *Tree) localStar() (StarInstance, error) {
	star := StarInstance{RootW: t.W}
	for _, c := range t.Children {
		eq, err := c.equivalentW()
		if err != nil {
			return StarInstance{}, err
		}
		star.Z = append(star.Z, c.Z)
		star.W = append(star.W, eq)
	}
	// Serve faster links first (the star sequencing theorem).
	order := orderByZThenW(star.Z, star.W)
	permuted, err := star.Permute(order)
	if err != nil {
		return StarInstance{}, err
	}
	return permuted, nil
}

func orderByZThenW(z, w []float64) []int {
	order := make([]int, len(z))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0; b-- {
			i, j := order[b], order[b-1]
			if z[i] < z[j] || (z[i] == z[j] && w[i] < w[j]) {
				order[b], order[b-1] = order[b-1], order[b]
			} else {
				break
			}
		}
	}
	return order
}

// TreeAllocation maps every node to its load fraction, in the order of a
// pre-order walk (node before its children, children in declaration
// order).
type TreeAllocation []float64

// OptimalTree computes the optimal load split across the whole tree via
// the equivalent-processor reduction, returning the per-node fractions
// (pre-order) and the makespan on unit load.
func OptimalTree(t *Tree) (TreeAllocation, float64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	alloc := make(TreeAllocation, t.Size())
	ms, err := t.assign(1.0, alloc, 0)
	if err != nil {
		return nil, 0, err
	}
	return alloc, ms, nil
}

// assign distributes `load` within the subtree, filling alloc starting at
// pre-order position pos, and returns the subtree makespan for that load.
func (t *Tree) assign(load float64, alloc TreeAllocation, pos int) (float64, error) {
	if len(t.Children) == 0 {
		alloc[pos] = load
		return load * t.W, nil
	}
	star := StarInstance{RootW: t.W}
	childPos := make([]int, len(t.Children))
	p := pos + 1
	for i, c := range t.Children {
		eq, err := c.equivalentW()
		if err != nil {
			return 0, err
		}
		star.Z = append(star.Z, c.Z)
		star.W = append(star.W, eq)
		childPos[i] = p
		p += c.Size()
	}
	order := orderByZThenW(star.Z, star.W)
	permuted, err := star.Permute(order)
	if err != nil {
		return 0, err
	}
	sa, err := OptimalStar(permuted)
	if err != nil {
		return 0, err
	}
	ms, err := StarMakespan(permuted, sa)
	if err != nil {
		return 0, err
	}
	alloc[pos] = load * sa.Root
	for servicePos, childIdx := range order {
		childLoad := load * sa.Children[servicePos]
		if _, err := t.Children[childIdx].assign(childLoad, alloc, childPos[childIdx]); err != nil {
			return 0, err
		}
	}
	return load * ms, nil
}

// TreeFinishCheck verifies the self-similarity property the reduction
// relies on: the realized makespan equals EquivalentW times the load.
// Exposed for tests and the X9 experiment.
func TreeFinishCheck(t *Tree, load float64) (float64, error) {
	eq, err := t.EquivalentW()
	if err != nil {
		return 0, err
	}
	return eq * load, nil
}
