package dlt

import (
	"errors"
	"math"
	"sort"
)

// Affine-cost extension. The paper's linear model charges α·z per transfer
// and α·w per computation. The standard DLT refinement (and the paper's
// "cohesive theory" future-work direction) adds fixed overheads: a
// transfer costs Scm + α·z and a computation costs Scp + α·w. With fixed
// overheads it can be optimal to leave slow processors out, so the solver
// also searches over the participant subset (the k fastest bidders, for
// every k — see OptimalAffine).

// AffineInstance augments an Instance with fixed per-transfer (Scm) and
// per-computation (Scp) overheads shared by all processors.
type AffineInstance struct {
	Instance
	Scm float64 // fixed communication start-up cost per transfer
	Scp float64 // fixed computation start-up cost per processor
}

// Validate extends Instance.Validate with overhead checks.
func (in AffineInstance) Validate() error {
	if err := in.Instance.Validate(); err != nil {
		return err
	}
	if math.IsNaN(in.Scm) || in.Scm < 0 || math.IsNaN(in.Scp) || in.Scp < 0 {
		return errors.New("dlt: affine overheads must be non-negative")
	}
	return nil
}

// affineFinish evaluates per-processor finishing times under the affine
// model for the n participating processors (prefix of the instance order).
func affineFinish(in AffineInstance, a Allocation, n int) []float64 {
	t := make([]float64, n)
	switch in.Network {
	case CP:
		var comm float64
		for i := 0; i < n; i++ {
			comm += in.Scm + in.Z*a[i]
			t[i] = comm + in.Scp + a[i]*in.W[i]
		}
	case NCPFE:
		t[0] = in.Scp + a[0]*in.W[0]
		var comm float64
		for i := 1; i < n; i++ {
			comm += in.Scm + in.Z*a[i]
			t[i] = comm + in.Scp + a[i]*in.W[i]
		}
	case NCPNFE:
		var comm float64
		for i := 0; i < n-1; i++ {
			comm += in.Scm + in.Z*a[i]
			t[i] = comm + in.Scp + a[i]*in.W[i]
		}
		t[n-1] = comm + in.Scp + a[n-1]*in.W[n-1]
	}
	return t
}

// affineSolvePrefix finds the equal-finish allocation over exactly the
// first n processors by bisection on the common makespan, mirroring
// SolveBisect. Returns the allocation (length n) and its makespan.
func affineSolvePrefix(in AffineInstance, n int) (Allocation, float64) {
	alloc := func(T float64) Allocation {
		a := make(Allocation, n)
		switch in.Network {
		case CP:
			var prefix float64
			for i := 0; i < n; i++ {
				prefix += in.Scm
				ai := (T - prefix - in.Scp) / (in.W[i] + in.Z)
				if ai < 0 {
					ai = 0
				}
				a[i] = ai
				prefix += in.Z * ai
			}
		case NCPFE:
			a[0] = math.Max((T-in.Scp)/in.W[0], 0)
			var prefix float64
			for i := 1; i < n; i++ {
				prefix += in.Scm
				ai := (T - prefix - in.Scp) / (in.W[i] + in.Z)
				if ai < 0 {
					ai = 0
				}
				a[i] = ai
				prefix += in.Z * ai
			}
		case NCPNFE:
			var prefix float64
			for i := 0; i < n-1; i++ {
				prefix += in.Scm
				ai := (T - prefix - in.Scp) / (in.W[i] + in.Z)
				if ai < 0 {
					ai = 0
				}
				a[i] = ai
				prefix += in.Z * ai
			}
			am := (T - prefix - in.Scp) / in.W[n-1]
			if am < 0 {
				am = 0
			}
			a[n-1] = am
		}
		return a
	}
	lo := 0.0
	hi := float64(n)*in.Scm + in.Scp + in.Z + maxOf(in.W[:n])
	for alloc(hi).Sum() < 1 {
		hi *= 2
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if alloc(mid).Sum() < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	a := alloc(hi)
	s := a.Sum()
	for i := range a {
		a[i] /= s
	}
	t := affineFinish(in, a, n)
	return a, maxOf(t)
}

// OptimalAffine computes the optimal affine-model allocation. With fixed
// overheads not everyone should participate, and because links and
// overheads are uniform the optimal k-participant subset is always the k
// FASTEST eligible processors: the solver sorts candidates by speed,
// searches over participant counts, and maps the fractions back to the
// original indices. (An earlier draft searched prefixes of the given
// order instead; that version violated voluntary participation — see the
// affine-mechanism tests — because excluding one processor could unlock a
// better subset than any the prefix search had considered.)
//
// The load-originating processor of the NCP classes always participates:
// it holds the data and its fixed cost burdens only itself. Non-
// participants receive fraction zero. Returns the allocation (length m,
// original order) and the optimal makespan.
func OptimalAffine(in AffineInstance) (Allocation, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	m := in.M()
	orig := in.Network.Originator(m)

	// Candidates sorted by speed, fastest first; the originator (if any)
	// is pinned to its structural slot and excluded from the sort.
	var candidates []int
	for i := 0; i < m; i++ {
		if i != orig {
			candidates = append(candidates, i)
		}
	}
	sort.SliceStable(candidates, func(a, b int) bool { return in.W[candidates[a]] < in.W[candidates[b]] })

	bestT := math.Inf(1)
	var bestA Allocation
	minK := 0
	if orig < 0 {
		minK = 1 // CP: at least one worker must take the load
	}
	for k := minK; k <= len(candidates); k++ {
		chosen := candidates[:k]
		// Build the participating instance in the network's structural
		// order: NCP-FE originator first, NCP-NFE originator last.
		var idx []int
		switch in.Network {
		case NCPFE:
			idx = append([]int{orig}, chosen...)
		case NCPNFE:
			idx = append(append([]int{}, chosen...), orig)
		default:
			idx = append([]int{}, chosen...)
		}
		w := make([]float64, len(idx))
		for p, i := range idx {
			w[p] = in.W[i]
		}
		sub := AffineInstance{Instance: Instance{Network: in.Network, Z: in.Z, W: w}, Scm: in.Scm, Scp: in.Scp}
		a, t := affineSolvePrefix(sub, len(idx))
		if t < bestT {
			bestT = t
			full := make(Allocation, m)
			for p, i := range idx {
				full[i] = a[p]
			}
			bestA = full
		}
	}
	if bestA == nil {
		return nil, 0, errors.New("dlt: affine solver found no feasible subset")
	}
	return bestA, bestT, nil
}
