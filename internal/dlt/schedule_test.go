package dlt

import (
	"math/rand"
	"testing"
)

// TestScheduleMatchesFinishTimes: the explicit timeline realizes exactly
// the closed-form finishing times of eqs. (1)–(3).
func TestScheduleMatchesFinishTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, net := range Networks {
		for trial := 0; trial < 100; trial++ {
			m := 1 + rng.Intn(16)
			in := DefaultRandomInstance(rng, net, m)
			a, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := Schedule(in, a)
			if err != nil {
				t.Fatal(err)
			}
			want, err := FinishTimes(in, a)
			if err != nil {
				t.Fatal(err)
			}
			got := tl.FinishTimes()
			for i := range want {
				if relErr(got[i], want[i]) > tol {
					t.Errorf("%v m=%d: timeline T[%d]=%v, eq gives %v", net, m, i, got[i], want[i])
				}
			}
			ms, _ := Makespan(in, a)
			if relErr(tl.Makespan, ms) > tol {
				t.Errorf("%v m=%d: timeline makespan %v, want %v", net, m, tl.Makespan, ms)
			}
		}
	}
}

// TestScheduleOnePortBus: bus spans never overlap (one-port model).
func TestScheduleOnePortBus(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, net := range Networks {
		for trial := 0; trial < 50; trial++ {
			in := DefaultRandomInstance(rng, net, 1+rng.Intn(12))
			a, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := Schedule(in, a)
			if err != nil {
				t.Fatal(err)
			}
			assertOnePort(t, tl)
		}
	}
}

func assertOnePort(t *testing.T, tl Timeline) {
	t.Helper()
	spans := tl.BusSpans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End-tol {
			t.Errorf("bus spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
}

// TestScheduleCommBeforeComp: every computation starts no earlier than the
// arrival of its fraction (except FE-originator chunks, which never cross
// the bus).
func TestScheduleCommBeforeComp(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, net := range Networks {
		in := DefaultRandomInstance(rng, net, 8)
		a, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := Schedule(in, a)
		if err != nil {
			t.Fatal(err)
		}
		arrival := map[int]float64{}
		for _, s := range tl.Spans {
			if s.Kind == Comm {
				arrival[s.Proc] = s.End
			}
		}
		for _, s := range tl.Spans {
			if s.Kind != Comp {
				continue
			}
			if arr, ok := arrival[s.Proc]; ok && s.Start < arr-tol {
				t.Errorf("%v: P%d computes at %v before arrival %v", net, s.Proc+1, s.Start, arr)
			}
		}
	}
}

// TestScheduleNFEOriginatorLast: the NFE originator starts computing only
// after the bus falls silent.
func TestScheduleNFEOriginatorLast(t *testing.T) {
	in := Instance{Network: NCPNFE, Z: 0.5, W: []float64{1, 2, 3, 4}}
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Schedule(in, a)
	if err != nil {
		t.Fatal(err)
	}
	busEnd := 0.0
	for _, s := range tl.BusSpans() {
		if s.End > busEnd {
			busEnd = s.End
		}
	}
	for _, s := range tl.Spans {
		if s.Proc == 3 && s.Kind == Comp && s.Start < busEnd-tol {
			t.Errorf("NFE originator computes at %v while bus busy until %v", s.Start, busEnd)
		}
	}
}

func TestSpanKindString(t *testing.T) {
	if Comm.String() != "comm" || Comp.String() != "comp" {
		t.Errorf("span kinds render as %q/%q", Comm.String(), Comp.String())
	}
}

func TestScheduleErrors(t *testing.T) {
	in := Instance{Network: CP, Z: 1, W: []float64{1, 2}}
	if _, err := Schedule(in, Allocation{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Schedule(Instance{Network: CP, Z: -1, W: []float64{1}}, Allocation{1}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestMultiRoundBasics(t *testing.T) {
	in := Instance{Network: NCPFE, Z: 0.4, W: []float64{1, 1.5, 2, 2.5}}
	if _, err := MultiRound(in, 0, EqualRounds); err == nil {
		t.Error("rounds=0 accepted")
	}
	nfe := in.Clone()
	nfe.Network = NCPNFE
	if _, err := MultiRound(nfe, 2, EqualRounds); err == nil {
		t.Error("NFE multi-round accepted")
	}
	tl, err := MultiRound(in, 1, EqualRounds)
	if err != nil {
		t.Fatal(err)
	}
	// One round with the optimal proportions == the single-round schedule.
	a, _ := Optimal(in)
	ms, _ := Makespan(in, a)
	if relErr(tl.Makespan, ms) > tol {
		t.Errorf("1-round makespan %v, want single-round %v", tl.Makespan, ms)
	}
	assertOnePort(t, tl)
}

// TestMultiRoundNotWorseTotalWork: the total fraction scheduled is 1 and
// each processor's summed chunk fractions equal its single-round optimum.
func TestMultiRoundConservesLoad(t *testing.T) {
	in := Instance{Network: CP, Z: 0.3, W: []float64{1, 2, 3}}
	for _, policy := range []RoundPolicy{EqualRounds, GeometricRounds} {
		tl, err := MultiRound(in, 5, policy)
		if err != nil {
			t.Fatal(err)
		}
		perProc := make([]float64, in.M())
		var total float64
		for _, s := range tl.Spans {
			if s.Kind == Comp {
				perProc[s.Proc] += s.Frac
				total += s.Frac
			}
		}
		if relErr(total, 1) > tol {
			t.Errorf("%v: total computed fraction %v, want 1", policy, total)
		}
		a, _ := Optimal(in)
		for i := range perProc {
			if relErr(perProc[i], a[i]) > tol {
				t.Errorf("%v: P%d total %v, want %v", policy, i+1, perProc[i], a[i])
			}
		}
		assertOnePort(t, tl)
	}
}

func TestRoundPolicyString(t *testing.T) {
	if EqualRounds.String() != "equal" || GeometricRounds.String() != "geometric" {
		t.Error("RoundPolicy.String mismatch")
	}
}

func TestRoundFractionsGeometric(t *testing.T) {
	per, err := RoundFractions(3, GeometricRounds)
	if err != nil {
		t.Fatal(err)
	}
	// 1,2,4 normalized by 7.
	want := []float64{1.0 / 7, 2.0 / 7, 4.0 / 7}
	for i := range want {
		if relErr(per[i], want[i]) > tol {
			t.Errorf("per[%d] = %v, want %v", i, per[i], want[i])
		}
	}
	if _, err := RoundFractions(2, RoundPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}
