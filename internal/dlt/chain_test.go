package dlt

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// fastBusInstance builds the regime that used to underflow the raw
// product recursion: a fast bus (large z) against ordinary processors
// drives every chain ratio k_j = w_j/(z+w_{j+1}) far below 1, so the raw
// running product decays like k^i and hit denormals (then exact zero)
// near m ≈ 500 before the Frexp renormalization in ChainProducts.
func fastBusInstance(rng *rand.Rand, net Network, m int) Instance {
	return RandomInstance(rng, net, m, 0.5, 8, 4, 5)
}

// bigChainAlloc computes the exact chain allocation with big.Float
// arithmetic: p_0 = 1, p_i = p_{i-1}·k_{i-1}, α_i = p_i/Σp_j.
func bigChainAlloc(net Network, z float64, w []float64) []*big.Float {
	const prec = 200
	n := len(w)
	p := make([]*big.Float, n)
	p[0] = big.NewFloat(1).SetPrec(prec)
	sum := big.NewFloat(1).SetPrec(prec)
	for i := 1; i < n; i++ {
		den := new(big.Float).SetPrec(prec)
		if net == NCPNFE && i == n-1 {
			den.SetFloat64(w[i]) // recursion (9): no z on the final link
		} else {
			den.Add(big.NewFloat(z).SetPrec(prec), big.NewFloat(w[i]).SetPrec(prec))
		}
		num := new(big.Float).SetPrec(prec).Mul(p[i-1], big.NewFloat(w[i-1]).SetPrec(prec))
		p[i] = num.Quo(num, den)
		sum.Add(sum, p[i])
	}
	for i := range p {
		p[i] = new(big.Float).SetPrec(prec).Quo(p[i], sum)
	}
	return p
}

// TestChainAllocationMatchesBigFloat checks the renormalized float64
// chain against a 200-bit reference across all classes and sizes that
// straddle the old underflow point. Entries whose exact value is below
// float64's representable range are only required to come out (near)
// zero and non-negative.
func TestChainAllocationMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, net := range Networks {
		for _, m := range []int{8, 64, 512, 2048} {
			in := fastBusInstance(rng, net, m)
			got, err := Optimal(in)
			if err != nil {
				t.Fatalf("%v m=%d: %v", net, m, err)
			}
			want := bigChainAlloc(in.Network, in.Z, in.W)
			for i := 0; i < m; i++ {
				ref, _ := want[i].Float64()
				if math.IsNaN(got[i]) || math.IsInf(got[i], 0) || got[i] < 0 {
					t.Fatalf("%v m=%d: α[%d]=%v", net, m, i, got[i])
				}
				if ref < 1e-300 {
					if got[i] > 1e-290 {
						t.Fatalf("%v m=%d: α[%d]=%v, reference ~%v", net, m, i, got[i], ref)
					}
					continue
				}
				if diff := math.Abs(got[i]-ref) / ref; diff > 1e-12 {
					t.Fatalf("%v m=%d: α[%d]=%v vs reference %v (rel %v)", net, m, i, got[i], ref, diff)
				}
			}
		}
	}
}

// TestChainAllocationLargeMUnderflow is the direct regression for the
// float-underflow bug: on a fast bus at m = 2048 and m = 4096 the
// allocation must stay feasible, finite, and strictly positive at the
// head — the raw recursion instead zeroed everything past i ≈ 500 and,
// for NCP-NFE, handed the originator an exact-zero share.
func TestChainAllocationLargeMUnderflow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, net := range Networks {
		for _, m := range []int{2048, 4096} {
			in := fastBusInstance(rng, net, m)
			a, err := Optimal(in)
			if err != nil {
				t.Fatalf("%v m=%d: %v", net, m, err)
			}
			if err := a.Validate(m); err != nil {
				t.Fatalf("%v m=%d: %v", net, m, err)
			}
			// The head of the chain carries essentially all the load
			// (each ratio k ≲ w/z < 1/2 here, so shares decay at least
			// geometrically); the first entries must be sane positive
			// fractions, not 0/0 debris, and the first 64 must hold
			// nearly everything.
			if !(a[0] > 0.1) || !(a[1] > 0) {
				t.Fatalf("%v m=%d: head α[0]=%v α[1]=%v", net, m, a[0], a[1])
			}
			if head := Allocation(a[:64]).Sum(); !(head > 0.999) {
				t.Fatalf("%v m=%d: first 64 shares sum to %v", net, m, head)
			}
			// The tail must have decayed to (near) nothing rather than
			// gone NaN: the old recursion's exact-zero products poisoned
			// downstream ratios, while legitimate decay just yields
			// negligible shares.
			for i := m / 2; i < m; i++ {
				if math.IsNaN(a[i]) || a[i] > 1e-100 {
					t.Fatalf("%v m=%d: tail α[%d]=%v", net, m, i, a[i])
				}
			}
		}
	}
}

// TestChainProductsScratchReuse checks that a caller-provided exponent
// scratch gives bit-identical results to the lazily-allocated one, and
// that consecutive calls on the same buffers do not leak state between
// instances of different magnitudes.
func TestChainProductsScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m = 1024
	exps := make([]int, m)
	pA := make([]float64, m)
	pB := make([]float64, m)
	for trial := 0; trial < 4; trial++ {
		// Alternate extreme (rescaling) and benign (non-rescaling)
		// instances through the same scratch.
		zLo, zHi := 4.0, 5.0
		if trial%2 == 1 {
			zLo, zHi = 0.02, 0.05
		}
		in := RandomInstance(rng, NCPNFE, m, 0.5, 8, zLo, zHi)
		sumA := ChainProducts(in.Network, in.Z, in.W, pA, exps)
		sumB := ChainProducts(in.Network, in.Z, in.W, pB, nil)
		if sumA != sumB {
			t.Fatalf("trial %d: sum %v (reused scratch) vs %v (fresh)", trial, sumA, sumB)
		}
		for i := range pA {
			if pA[i] != pB[i] {
				t.Fatalf("trial %d: p[%d] %v (reused scratch) vs %v (fresh)", trial, i, pA[i], pB[i])
			}
		}
	}
}

// TestChainProductsBenignBitIdentical pins the fast path: when no
// renormalization fires, ChainProducts must reproduce the raw product
// recursion bit for bit (the pre-engine behavior), so small-m results
// across the repo are unchanged by the underflow fix.
func TestChainProductsBenignBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, net := range Networks {
		for _, m := range []int{2, 3, 17, 64} {
			in := DefaultRandomInstance(rng, net, m)
			p := make([]float64, m)
			sum := ChainProducts(in.Network, in.Z, in.W, p, nil)
			// Raw recursion, same operation order.
			raw := make([]float64, m)
			raw[0] = 1
			rawSum := 1.0
			for i := 1; i < m; i++ {
				var k float64
				if net == NCPNFE && i == m-1 {
					k = in.W[i-1] / in.W[i]
				} else {
					k = in.W[i-1] / (in.Z + in.W[i])
				}
				raw[i] = raw[i-1] * k
				rawSum += raw[i]
			}
			if sum != rawSum {
				t.Fatalf("%v m=%d: sum %v vs raw %v", net, m, sum, rawSum)
			}
			for i := range p {
				if p[i] != raw[i] {
					t.Fatalf("%v m=%d: p[%d] %v vs raw %v", net, m, i, p[i], raw[i])
				}
			}
		}
	}
}
