package dlt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Star-network extension — the paper's future work ("for future work, we
// are planning to investigate other network architectures"). A star (or
// single-level tree) generalizes the bus: the originator reaches child i
// over its own link with per-unit time Z[i], so links are heterogeneous
// and — unlike on the bus (Theorem 2.2) — the service ORDER now matters.
// The classical DLT result is that serving children in non-decreasing
// link time z is optimal; OptimalStarOrder implements it and the tests
// verify it against exhaustive search.

// StarInstance is a single-level tree: an originating root that serves m
// children sequentially (one-port), child i over a link with per-unit
// time Z[i] and per-unit processing time W[i]. RootW is the root's own
// per-unit processing time when it has a front end and computes
// concurrently; RootW = 0 means the root is a pure distributor (the
// control-processor configuration).
type StarInstance struct {
	RootW float64
	Z     []float64
	W     []float64
}

// M returns the number of children.
func (s StarInstance) M() int { return len(s.W) }

// Validate checks shape and positivity.
func (s StarInstance) Validate() error {
	if len(s.W) == 0 {
		return errors.New("dlt: star instance has no children")
	}
	if len(s.Z) != len(s.W) {
		return fmt.Errorf("dlt: star has %d links for %d children", len(s.Z), len(s.W))
	}
	if math.IsNaN(s.RootW) || math.IsInf(s.RootW, 0) || s.RootW < 0 {
		return fmt.Errorf("dlt: invalid root processing time %v", s.RootW)
	}
	for i := range s.W {
		if !(s.W[i] > 0) || math.IsInf(s.W[i], 0) {
			return fmt.Errorf("dlt: invalid star w[%d]=%v", i, s.W[i])
		}
		if !(s.Z[i] >= 0) || math.IsInf(s.Z[i], 0) {
			return fmt.Errorf("dlt: invalid star z[%d]=%v", i, s.Z[i])
		}
	}
	return nil
}

// Permute returns the instance with children reordered by perm.
func (s StarInstance) Permute(perm []int) (StarInstance, error) {
	m := s.M()
	if len(perm) != m {
		return StarInstance{}, fmt.Errorf("dlt: permutation has %d entries for %d children", len(perm), m)
	}
	seen := make([]bool, m)
	out := StarInstance{RootW: s.RootW, Z: make([]float64, m), W: make([]float64, m)}
	for pos, idx := range perm {
		if idx < 0 || idx >= m || seen[idx] {
			return StarInstance{}, fmt.Errorf("dlt: invalid permutation %v", perm)
		}
		seen[idx] = true
		out.Z[pos] = s.Z[idx]
		out.W[pos] = s.W[idx]
	}
	return out, nil
}

// StarAllocation is a star load split: the root's fraction plus one
// fraction per child, in service order. Root + children sum to 1.
type StarAllocation struct {
	Root     float64
	Children Allocation
}

// Sum returns the total assigned fraction.
func (a StarAllocation) Sum() float64 { return a.Root + a.Children.Sum() }

// StarFinishTimes evaluates the finishing times for a star schedule:
// child i finishes at Σ_{j≤i} α_j·z_j + α_i·w_i; the front-end root
// finishes at α_0·RootW.
func StarFinishTimes(s StarInstance, a StarAllocation) (root float64, children []float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	if len(a.Children) != s.M() {
		return 0, nil, fmt.Errorf("dlt: star allocation has %d children, want %d", len(a.Children), s.M())
	}
	children = make([]float64, s.M())
	var comm float64
	for i := range a.Children {
		comm += a.Children[i] * s.Z[i]
		children[i] = comm + a.Children[i]*s.W[i]
	}
	if s.RootW > 0 {
		root = a.Root * s.RootW
	}
	return root, children, nil
}

// StarMakespan returns max over root and children.
func StarMakespan(s StarInstance, a StarAllocation) (float64, error) {
	root, children, err := StarFinishTimes(s, a)
	if err != nil {
		return 0, err
	}
	ms := root
	for _, t := range children {
		if t > ms {
			ms = t
		}
	}
	return ms, nil
}

// OptimalStar computes the equal-finish allocation for the given child
// order: unnormalized fractions at common finish time 1 —
// u_root = 1/RootW, u_1 = 1/(z_1+w_1), u_{i+1} = u_i·w_i/(z_{i+1}+w_{i+1})
// — then normalized.
func OptimalStar(s StarInstance) (StarAllocation, error) {
	if err := s.Validate(); err != nil {
		return StarAllocation{}, err
	}
	m := s.M()
	u := make(Allocation, m)
	u[0] = 1 / (s.Z[0] + s.W[0])
	for i := 1; i < m; i++ {
		u[i] = u[i-1] * s.W[i-1] / (s.Z[i] + s.W[i])
	}
	uRoot := 0.0
	if s.RootW > 0 {
		uRoot = 1 / s.RootW
	}
	total := uRoot + u.Sum()
	a := StarAllocation{Root: uRoot / total, Children: make(Allocation, m)}
	for i := range u {
		a.Children[i] = u[i] / total
	}
	return a, nil
}

// OptimalStarOrder returns the optimal service order — children sorted by
// non-decreasing link time z (the classical single-level-tree sequencing
// result; ties broken by processing time for determinism) — together with
// the allocation and makespan realized under it. The returned order maps
// service position → original child index.
func OptimalStarOrder(s StarInstance) ([]int, StarAllocation, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, StarAllocation{}, 0, err
	}
	order := make([]int, s.M())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if s.Z[order[a]] != s.Z[order[b]] {
			return s.Z[order[a]] < s.Z[order[b]]
		}
		return s.W[order[a]] < s.W[order[b]]
	})
	perm, err := s.Permute(order)
	if err != nil {
		return nil, StarAllocation{}, 0, err
	}
	alloc, err := OptimalStar(perm)
	if err != nil {
		return nil, StarAllocation{}, 0, err
	}
	ms, err := StarMakespan(perm, alloc)
	if err != nil {
		return nil, StarAllocation{}, 0, err
	}
	return order, alloc, ms, nil
}

// ExhaustiveStarOrder searches all m! service orders (m ≤ 9) and returns
// the best. It exists to validate OptimalStarOrder in tests and the X1
// experiment.
func ExhaustiveStarOrder(s StarInstance) ([]int, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	m := s.M()
	if m > 9 {
		return nil, 0, fmt.Errorf("dlt: exhaustive order search limited to 9 children, got %d", m)
	}
	best := math.Inf(1)
	var bestOrder []int
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	var recurse func(k int) error
	recurse = func(k int) error {
		if k == m {
			inst, err := s.Permute(perm)
			if err != nil {
				return err
			}
			alloc, err := OptimalStar(inst)
			if err != nil {
				return err
			}
			ms, err := StarMakespan(inst, alloc)
			if err != nil {
				return err
			}
			if ms < best {
				best = ms
				bestOrder = append([]int(nil), perm...)
			}
			return nil
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := recurse(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, 0, err
	}
	return bestOrder, best, nil
}

// UniformStar converts a bus instance into the equivalent star with all
// links equal to z: the CP bus is exactly the star with RootW = 0, and
// NCP-FE is the star whose root computes (RootW = w_1) serving the
// remaining processors. The tests use it to cross-check the star solver
// against the bus closed forms.
func UniformStar(in Instance) (StarInstance, error) {
	if err := in.Validate(); err != nil {
		return StarInstance{}, err
	}
	switch in.Network {
	case CP:
		z := make([]float64, in.M())
		for i := range z {
			z[i] = in.Z
		}
		return StarInstance{Z: z, W: append([]float64(nil), in.W...)}, nil
	case NCPFE:
		if in.M() < 2 {
			return StarInstance{}, errors.New("dlt: NCP-FE star conversion needs m ≥ 2")
		}
		z := make([]float64, in.M()-1)
		for i := range z {
			z[i] = in.Z
		}
		return StarInstance{RootW: in.W[0], Z: z, W: append([]float64(nil), in.W[1:]...)}, nil
	default:
		return StarInstance{}, fmt.Errorf("dlt: no star equivalent for %v", in.Network)
	}
}
