package dlt

import (
	"fmt"
	"math"
)

// FinishTimes evaluates the per-processor finishing times T_i(α) of
// eqs. (1)–(3) for an arbitrary allocation on the instance's network class.
// The speeds used are in.W, which may be bids, true values or execution
// values depending on the caller — the mechanism's payment rule evaluates
// the same schedule under several speed vectors.
//
// Processors with α_i = 0 still appear in the transmission order but
// occupy zero bus time, so they finish at the moment their (empty)
// transfer completes.
func FinishTimes(in Instance, a Allocation) ([]float64, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	m := in.M()
	if len(a) != m {
		return nil, fmt.Errorf("dlt: allocation has %d entries, want %d", len(a), m)
	}
	t := make([]float64, m)
	switch in.Network {
	case CP:
		// T_i = z·Σ_{j≤i} α_j + α_i·w_i           (eq. (1))
		var comm float64
		for i := 0; i < m; i++ {
			comm += in.Z * a[i]
			t[i] = comm + a[i]*in.W[i]
		}
	case NCPFE:
		// T_1 = α_1·w_1; T_i = z·Σ_{2≤j≤i} α_j + α_i·w_i   (eq. (2))
		t[0] = a[0] * in.W[0]
		var comm float64
		for i := 1; i < m; i++ {
			comm += in.Z * a[i]
			t[i] = comm + a[i]*in.W[i]
		}
	case NCPNFE:
		// T_i = z·Σ_{j≤i} α_j + α_i·w_i (i<m);
		// T_m = z·Σ_{j≤m−1} α_j + α_m·w_m          (eq. (3))
		var comm float64
		for i := 0; i < m-1; i++ {
			comm += in.Z * a[i]
			t[i] = comm + a[i]*in.W[i]
		}
		t[m-1] = comm + a[m-1]*in.W[m-1]
	}
	return t, nil
}

// Makespan returns T(α) = max_i T_i(α) (objective (4)).
func Makespan(in Instance, a Allocation) (float64, error) {
	t, err := FinishTimes(in, a)
	if err != nil {
		return 0, err
	}
	return maxOf(t), nil
}

// MakespanWithSpeeds evaluates the makespan of allocation a when the
// processors execute at speeds exec rather than at the instance speeds.
// This is the T(α(b), (b_{-i}, w̃_i)) term of the bonus function: the
// allocation was computed from the bids, but the schedule is realized at
// the (possibly different) execution values.
func MakespanWithSpeeds(in Instance, a Allocation, exec []float64) (float64, error) {
	if len(exec) != in.M() {
		return 0, fmt.Errorf("dlt: exec speeds have %d entries, want %d", len(exec), in.M())
	}
	realized := in.Clone()
	copy(realized.W, exec)
	return Makespan(realized, a)
}

// FinishSpread returns max_i T_i − min_i T_i over processors with α_i > 0.
// By Theorem 2.1 the optimal allocation drives the spread to zero; tests
// and the experiment harness use it as the optimality residual.
func FinishSpread(in Instance, a Allocation) (float64, error) {
	t, err := FinishTimes(in, a)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, ti := range t {
		if a[i] <= 0 {
			continue
		}
		if ti < lo {
			lo = ti
		}
		if ti > hi {
			hi = ti
		}
	}
	if math.IsInf(lo, 1) { // no positive fractions
		return 0, nil
	}
	return hi - lo, nil
}

func maxOf(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}
