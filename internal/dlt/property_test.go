package dlt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickInstance decodes arbitrary quick-generated values into a valid
// instance: sizes clamped to [1,20], speeds to [0.1, 50], z to [0, 10].
func quickInstance(netIdx uint8, mRaw uint8, zRaw float64, seed int64) Instance {
	net := Networks[int(netIdx)%len(Networks)]
	m := 1 + int(mRaw)%20
	z := math.Abs(math.Mod(zRaw, 10))
	if math.IsNaN(z) || math.IsInf(z, 0) {
		z = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.1 + rng.Float64()*49.9
	}
	return Instance{Network: net, Z: z, W: w}
}

// Property: Optimal always returns a feasible allocation with zero finish
// spread.
func TestQuickOptimalFeasibleAndBalanced(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		a, err := Optimal(in)
		if err != nil {
			return false
		}
		if err := a.Validate(in.M()); err != nil {
			return false
		}
		spread, err := FinishSpread(in, a)
		if err != nil {
			return false
		}
		ms, _ := Makespan(in, a)
		return spread <= 1e-8*math.Max(ms, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal makespan is monotone non-increasing when a
// processor is added (more capacity can only help), which underlies the
// voluntary-participation proof.
func TestQuickAddingProcessorHelps(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64, extraRaw float64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		_, base, err := OptimalMakespan(in)
		if err != nil {
			return false
		}
		extra := 0.1 + math.Abs(math.Mod(extraRaw, 50))
		if math.IsNaN(extra) || math.IsInf(extra, 0) {
			extra = 1
		}
		grown := in.Clone()
		// Insert the newcomer in a non-originating slot.
		switch in.Network {
		case NCPNFE:
			grown.W = append([]float64{extra}, grown.W...)
		default:
			grown.W = append(grown.W, extra)
		}
		if !DistributionBeneficial(grown) {
			// Outside the z < w_m NFE regime more participants can hurt;
			// see Optimal's doc comment.
			return true
		}
		_, bigger, err := OptimalMakespan(grown)
		if err != nil {
			return false
		}
		return bigger <= base*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal makespan is monotone in every processing speed —
// slowing any processor down never decreases the optimal makespan.
func TestQuickMakespanMonotoneInSpeeds(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64, whichRaw uint8, factorRaw float64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		_, base, err := OptimalMakespan(in)
		if err != nil {
			return false
		}
		factor := 1 + math.Abs(math.Mod(factorRaw, 4))
		if math.IsNaN(factor) || math.IsInf(factor, 0) {
			factor = 2
		}
		slow := in.Clone()
		slow.W[int(whichRaw)%in.M()] *= factor
		_, worse, err := OptimalMakespan(slow)
		if err != nil {
			return false
		}
		return worse >= base*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation monotonicity of the underlying one-parameter
// mechanism (Archer–Tardos): bidding slower never increases your assigned
// fraction.
func TestQuickAllocationMonotoneInOwnBid(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64, whichRaw uint8, factorRaw float64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		i := int(whichRaw) % in.M()
		a, err := Optimal(in)
		if err != nil {
			return false
		}
		factor := 1 + math.Abs(math.Mod(factorRaw, 4))
		if math.IsNaN(factor) || math.IsInf(factor, 0) {
			factor = 2
		}
		slower := in.Clone()
		slower.W[i] *= factor
		b, err := Optimal(slower)
		if err != nil {
			return false
		}
		return b[i] <= a[i]*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: bisection and closed form agree for arbitrary instances.
func TestQuickBisectionAgrees(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		a, err := Optimal(in)
		if err != nil {
			return false
		}
		b, err := SolveBisect(in)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all w and z by a common factor scales the optimal
// makespan by that factor and leaves fractions unchanged (the model is
// homogeneous of degree one).
func TestQuickHomogeneity(t *testing.T) {
	f := func(netIdx, mRaw uint8, zRaw float64, seed int64, scaleRaw float64) bool {
		in := quickInstance(netIdx, mRaw, zRaw, seed)
		scale := 0.5 + math.Abs(math.Mod(scaleRaw, 10))
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 2
		}
		a1, t1, err := OptimalMakespan(in)
		if err != nil {
			return false
		}
		scaled := in.Clone()
		scaled.Z *= scale
		for i := range scaled.W {
			scaled.W[i] *= scale
		}
		a2, t2, err := OptimalMakespan(scaled)
		if err != nil {
			return false
		}
		if math.Abs(t2-scale*t1) > 1e-6*math.Max(t2, 1) {
			return false
		}
		for i := range a1 {
			if math.Abs(a1[i]-a2[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
