package dlt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result-collection extension. Classical DLT (and the paper) ignores the
// cost of returning results to the originator; the follow-up literature
// (Beaumont, Casanova, Legrand, Robert, Yang — cited by the paper as [2])
// studies it because it changes both the optimal split and the preferred
// bus order. Here each processor produces results of size Delta·α_i that
// must cross the one-port bus back to the originator after its
// computation finishes; the schedule ends when the last result lands.
//
// No closed form is known in general, so this module is simulation-exact:
// it builds explicit timelines for the two canonical return orders (FIFO —
// same order as distribution — and LIFO — reverse) and provides a local
// search that retunes the load split for the collection-aware makespan.

// CollectInstance augments a bus instance with the result-size ratio
// Delta (output bytes per input byte; 0 recovers the no-collection
// model).
type CollectInstance struct {
	Instance
	Delta float64
}

// Validate extends Instance.Validate.
func (c CollectInstance) Validate() error {
	if err := c.Instance.Validate(); err != nil {
		return err
	}
	if math.IsNaN(c.Delta) || math.IsInf(c.Delta, 0) || c.Delta < 0 {
		return fmt.Errorf("dlt: invalid result ratio delta=%v", c.Delta)
	}
	return nil
}

// CollectOrder selects the bus order of the result-return transfers.
type CollectOrder int

const (
	// FIFO returns results in distribution order: the first-served
	// processor (which finishes its chunk earliest) returns first.
	FIFO CollectOrder = iota
	// LIFO returns results in reverse distribution order: the last-served
	// processor returns first.
	LIFO
)

// String names the order.
func (o CollectOrder) String() string {
	if o == FIFO {
		return "FIFO"
	}
	return "LIFO"
}

// ScheduleWithCollection builds the full timeline: the distribution and
// computation spans of Schedule, followed by the serialized result
// returns in the chosen order. A processor's return can start only after
// its computation ends and the bus is free; the originator's own result
// (NCP classes) never crosses the bus.
func ScheduleWithCollection(c CollectInstance, a Allocation, order CollectOrder) (Timeline, error) {
	if err := c.Validate(); err != nil {
		return Timeline{}, err
	}
	if order != FIFO && order != LIFO {
		return Timeline{}, fmt.Errorf("dlt: unknown collection order %d", int(order))
	}
	tl, err := Schedule(c.Instance, a)
	if err != nil {
		return Timeline{}, err
	}
	m := c.M()
	// Computation end per processor, and where the bus frees up.
	compEnd := make([]float64, m)
	busFree := 0.0
	for _, s := range tl.Spans {
		if s.Kind == Comp && s.End > compEnd[s.Proc] {
			compEnd[s.Proc] = s.End
		}
		if s.BusOwner && s.End > busFree {
			busFree = s.End
		}
	}
	orig := c.Network.Originator(m)
	var returners []int
	for i := 0; i < m; i++ {
		if i != orig {
			returners = append(returners, i)
		}
	}
	if order == LIFO {
		for l, r := 0, len(returners)-1; l < r; l, r = l+1, r-1 {
			returners[l], returners[r] = returners[r], returners[l]
		}
	}
	for _, i := range returners {
		size := c.Delta * a[i]
		start := math.Max(busFree, compEnd[i])
		end := start + c.Z*size
		if size > 0 {
			tl.Spans = append(tl.Spans, Span{
				Proc: i, Kind: Comm, Start: start, End: end, Frac: size, BusOwner: true, Round: 1,
			})
			busFree = end
		}
		if end > tl.Makespan {
			tl.Makespan = end
		}
	}
	return tl, nil
}

// CollectMakespan evaluates the collection-aware makespan.
func CollectMakespan(c CollectInstance, a Allocation, order CollectOrder) (float64, error) {
	tl, err := ScheduleWithCollection(c, a, order)
	if err != nil {
		return 0, err
	}
	return tl.Makespan, nil
}

// TuneCollection improves an allocation for the collection-aware makespan
// by seeded random local search: propose moving a small fraction between
// two processors, keep the move when the makespan drops. It never returns
// an allocation worse than the input. Deterministic for a given rng.
func TuneCollection(c CollectInstance, start Allocation, order CollectOrder, iters int, rng *rand.Rand) (Allocation, float64, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	if rng == nil {
		return nil, 0, errors.New("dlt: TuneCollection requires a seeded rng")
	}
	m := c.M()
	if err := start.Validate(m); err != nil {
		return nil, 0, err
	}
	best := start.Clone()
	bestMS, err := CollectMakespan(c, best, order)
	if err != nil {
		return nil, 0, err
	}
	step := 0.25
	for k := 0; k < iters; k++ {
		cand := best.Clone()
		i, j := rng.Intn(m), rng.Intn(m)
		if i == j {
			continue
		}
		eps := rng.Float64() * step * cand[i]
		cand[i] -= eps
		cand[j] += eps
		ms, err := CollectMakespan(c, cand, order)
		if err != nil {
			return nil, 0, err
		}
		if ms < bestMS {
			best, bestMS = cand, ms
		} else if k%64 == 63 && step > 1e-4 {
			step *= 0.8 // cool down as improvements dry up
		}
	}
	return best, bestMS, nil
}
