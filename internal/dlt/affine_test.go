package dlt

import (
	"math/rand"
	"testing"
)

func TestAffineZeroOverheadsMatchLinear(t *testing.T) {
	// With zero overheads the affine optimum must achieve exactly the
	// linear optimal makespan. The affine rule serves participants sorted
	// by speed (a fixed public order), so the per-index FRACTIONS may
	// differ from the identity-order linear solution — only the makespan
	// is order-invariant (Theorem 2.2).
	rng := rand.New(rand.NewSource(20))
	for _, net := range Networks {
		for trial := 0; trial < 30; trial++ {
			in := DefaultRandomInstance(rng, net, 1+rng.Intn(10))
			aff := AffineInstance{Instance: in}
			a, ms, err := OptimalAffine(aff)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(in.M()); err != nil {
				t.Fatalf("%v: infeasible affine allocation: %v", net, err)
			}
			// Compare against the GLOBAL linear optimum: outside the
			// z < w_m NFE regime the subset search correctly keeps the
			// load on the originator, beating the paper's all-participate
			// algorithm — exactly what OptimalGlobal returns.
			g, err := OptimalGlobal(in)
			if err != nil {
				t.Fatal(err)
			}
			lms, err := Makespan(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(ms, lms) > 1e-7 {
				t.Errorf("%v: affine(0,0) makespan %v, global linear %v", net, ms, lms)
			}
		}
	}
}

func TestAffineValidation(t *testing.T) {
	bad := AffineInstance{Instance: Instance{Network: CP, Z: 1, W: []float64{1}}, Scm: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative Scm accepted")
	}
	if _, _, err := OptimalAffine(bad); err == nil {
		t.Error("OptimalAffine accepted invalid instance")
	}
}

// TestAffineDropsSlowProcessors: with a large per-transfer overhead it is
// optimal to use fewer processors; the chosen allocation must then beat
// the full-participation allocation.
func TestAffineDropsSlowProcessors(t *testing.T) {
	in := AffineInstance{
		Instance: Instance{Network: CP, Z: 0.1, W: []float64{1, 1, 1, 1, 1, 1, 1, 1}},
		Scm:      5, // shipping anything to an extra processor costs 5
	}
	a, ms, err := OptimalAffine(in)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, ai := range a {
		if ai > 1e-12 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("with Scm=5 expected a single participant, got %d (α=%v)", used, a)
	}
	// Full participation must be no better.
	fullA, fullT := affineSolvePrefix(in, in.M())
	_ = fullA
	if fullT < ms-1e-9 {
		t.Errorf("prefix search missed a better solution: full %v < best %v", fullT, ms)
	}
}

// TestAffinePrefixMonotoneTradeoff: makespan of the chosen solution is the
// minimum over all prefixes.
func TestAffineBestOverPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, net := range Networks {
		for trial := 0; trial < 20; trial++ {
			m := 2 + rng.Intn(8)
			in := AffineInstance{
				Instance: DefaultRandomInstance(rng, net, m),
				Scm:      rng.Float64() * 2,
				Scp:      rng.Float64(),
			}
			_, best, err := OptimalAffine(in)
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= m; n++ {
				if net == NCPNFE {
					continue // prefix construction differs; covered by the solver itself
				}
				_, tn := affineSolvePrefix(in, n)
				if tn < best-1e-9 {
					t.Errorf("%v m=%d: prefix %d gives %v < reported best %v", net, m, n, tn, best)
				}
			}
		}
	}
}

// TestAffineEqualFinish: the affine solution equalizes finishing times of
// the participants.
func TestAffineEqualFinish(t *testing.T) {
	in := AffineInstance{
		Instance: Instance{Network: NCPFE, Z: 0.5, W: []float64{1, 2, 3}},
		Scm:      0.2, Scp: 0.1,
	}
	a, ms, err := OptimalAffine(in)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, ai := range a {
		if ai > 1e-12 {
			used++
		}
	}
	ft := affineFinish(in, a[:used], used)
	for i, ti := range ft {
		if a[i] > 1e-12 && relErr(ti, ms) > 1e-6 {
			t.Errorf("participant %d finishes at %v, makespan %v", i, ti, ms)
		}
	}
}

// TestMultiRoundBeatsSingleRoundWhenCommCheap: with several processors and
// moderate z, pipelining rounds lets late processors start earlier, so the
// multi-round makespan is no worse than single-round.
func TestMultiRoundNeverWorseMuch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(8)
		in := DefaultRandomInstance(rng, CP, m)
		_, single, err := OptimalMakespan(in)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := MultiRound(in, 4, GeometricRounds)
		if err != nil {
			t.Fatal(err)
		}
		// Multi-round with per-round optimal proportions is a heuristic;
		// it must stay within a small factor of the single-round optimum
		// (and often beats the last-processor idle time).
		if tl.Makespan > single*1.5+1e-9 {
			t.Errorf("m=%d: multi-round %v vastly worse than single %v", m, tl.Makespan, single)
		}
	}
}
