package dlt

import (
	"errors"
	"math"
)

// SolveBisect computes the optimal allocation by an algorithm independent
// of the closed forms in optimal.go, used for cross-validation (experiment
// E4 and the ablation benches).
//
// It exploits Theorem 2.1: at the optimum all processors finish at the
// common makespan T. For a candidate T the fractions are determined
// sequentially from the finishing-time equations —
//
//	CP:      α_i = (T − z·S_{i−1}) / (w_i + z)
//	NCP-FE:  α_1 = T/w_1,  α_i = (T − z·S'_{i−1}) / (w_i + z)
//	NCP-NFE: α_i = (T − z·S_{i−1}) / (w_i + z) (i<m),  α_m = (T − z·S_{m−1})/w_m
//
// where S is the running communicated prefix. The total Σα_i(T) is
// continuous and strictly increasing in T, so the unique T with
// Σα_i(T) = 1 is found by bisection.
func SolveBisect(in Instance) (Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	total := func(T float64) (Allocation, float64) {
		a := allocAtMakespan(in, T)
		return a, a.Sum()
	}
	// Bracket: T=0 gives total 0; T = z + max w processes the whole load
	// on any single processor, so total ≥ 1.
	lo, hi := 0.0, in.Z+maxOf(in.W)
	for {
		if _, s := total(hi); s >= 1 {
			break
		}
		hi *= 2
		if math.IsInf(hi, 1) {
			return nil, errors.New("dlt: bisection failed to bracket the makespan")
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if _, s := total(mid); s < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, _ := total(hi)
	// Remove the residual O(ulp) normalization error.
	s := a.Sum()
	for i := range a {
		a[i] /= s
	}
	return a, nil
}

// allocAtMakespan returns the (unnormalized) fractions that make every
// processor finish exactly at time T, clamped at zero when T is too small
// for a processor to receive work.
func allocAtMakespan(in Instance, T float64) Allocation {
	m := in.M()
	a := make(Allocation, m)
	switch in.Network {
	case CP:
		var prefix float64 // z·Σ_{j<i} α_j
		for i := 0; i < m; i++ {
			ai := (T - prefix) / (in.W[i] + in.Z)
			if ai < 0 {
				ai = 0
			}
			a[i] = ai
			prefix += in.Z * ai
		}
	case NCPFE:
		a[0] = math.Max(T/in.W[0], 0)
		var prefix float64
		for i := 1; i < m; i++ {
			ai := (T - prefix) / (in.W[i] + in.Z)
			if ai < 0 {
				ai = 0
			}
			a[i] = ai
			prefix += in.Z * ai
		}
	case NCPNFE:
		var prefix float64
		for i := 0; i < m-1; i++ {
			ai := (T - prefix) / (in.W[i] + in.Z)
			if ai < 0 {
				ai = 0
			}
			a[i] = ai
			prefix += in.Z * ai
		}
		am := (T - prefix) / in.W[m-1]
		if am < 0 {
			am = 0
		}
		a[m-1] = am
	}
	return a
}
