package dlt

import (
	"math"
	"math/rand"
	"testing"
)

// The pipelined protocol (internal/pipeline) serves live loads through
// MultiRoundSchedule, so the solver's invariants graduate from "ablation
// curiosity" to load-bearing. These property tests pin them down.

// TestRoundFractionsSumToOne: for both policies and R in 1..8 the
// installment fractions are positive, non-decreasing in cumulative mass,
// and sum to exactly 1 (within float tolerance).
func TestRoundFractionsSumToOne(t *testing.T) {
	for _, policy := range []RoundPolicy{EqualRounds, GeometricRounds} {
		for rounds := 1; rounds <= 8; rounds++ {
			per, err := RoundFractions(rounds, policy)
			if err != nil {
				t.Fatalf("%v R=%d: %v", policy, rounds, err)
			}
			if len(per) != rounds {
				t.Fatalf("%v R=%d: got %d fractions", policy, rounds, len(per))
			}
			sum := 0.0
			for r, f := range per {
				if f <= 0 || f > 1 {
					t.Errorf("%v R=%d: fraction %d = %v out of (0,1]", policy, rounds, r, f)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%v R=%d: fractions sum to %v, want 1", policy, rounds, sum)
			}
		}
	}
}

// TestMultiRoundNeverWorseThanSingle: on the overlapping classes (CP and
// NCP-FE) with the single-round optimal proportions, splitting the load
// into installments can only help — the multi-round makespan is at most
// the single-round optimum, for both policies and R in 1..8.
//
// Why this holds exactly (not just approximately): at the single-round
// optimum all participants finish together, which forces
// w_i·a_i > z·Σ_{j>i} a_j for every i — each processor's own compute time
// dominates the bus time left behind it. Every round-r finish candidate
// of processor i is then bounded by the common single-round finish time.
func TestMultiRoundNeverWorseThanSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, net := range []Network{CP, NCPFE} {
		for _, policy := range []RoundPolicy{EqualRounds, GeometricRounds} {
			for trial := 0; trial < 40; trial++ {
				m := 1 + rng.Intn(16)
				in := DefaultRandomInstance(rng, net, m)
				_, single, err := OptimalMakespan(in)
				if err != nil {
					t.Fatal(err)
				}
				for rounds := 1; rounds <= 8; rounds++ {
					tl, err := MultiRound(in, rounds, policy)
					if err != nil {
						t.Fatalf("%v %v m=%d R=%d: %v", net, policy, m, rounds, err)
					}
					if tl.Makespan > single*(1+1e-9)+1e-12 {
						t.Errorf("%v %v m=%d R=%d: multi-round makespan %v exceeds single-round %v",
							net, policy, m, rounds, tl.Makespan, single)
					}
					assertOnePort(t, tl)
					// Work conservation: scheduled compute fractions sum to 1.
					work := 0.0
					for _, s := range tl.Spans {
						if s.Kind == Comp {
							work += s.Frac
						}
					}
					if math.Abs(work-1) > 1e-9 {
						t.Errorf("%v %v m=%d R=%d: compute fractions sum to %v", net, policy, m, rounds, work)
					}
				}
			}
		}
	}
}

// TestPipelinedAllocationBalance: the steady-state allocation is a valid
// split (positive, summing to 1) whose bottleneck per-load occupancy —
// max(bus time, any processor's compute time) — never exceeds the
// single-round optimum's bottleneck, and beats it by ≥ 20% on pools where
// compute and bus are comparable (the regime the pipelined scheduler
// targets). Every processor's busy time sits at or below the balanced
// period, so back-to-back loads keep the pipeline full.
func TestPipelinedAllocationBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, net := range []Network{CP, NCPFE} {
		for trial := 0; trial < 60; trial++ {
			m := 2 + rng.Intn(15)
			in := DefaultRandomInstance(rng, net, m)
			a, err := PipelinedAllocation(in)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for i, x := range a {
				if !(x > 0) {
					t.Fatalf("%v m=%d: a[%d]=%v", net, m, i, x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%v m=%d: fractions sum to %v", net, m, sum)
			}
			period := pipelinePeriod(in, a)
			single, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			if period > pipelinePeriod(in, single)*(1+1e-9) {
				t.Errorf("%v m=%d: balanced period %v exceeds single-round bottleneck %v",
					net, m, period, pipelinePeriod(in, single))
			}
			// The fluid bound 1/Σ(1/w) is unbeatable; the balanced split
			// must sit within the bus-bound correction of it.
			fluid := 0.0
			for _, w := range in.W {
				fluid += 1 / w
			}
			fluid = 1 / fluid
			if net == CP || in.Z*sumInvTail(in) <= 1 {
				if period < fluid*(1-1e-9) {
					t.Errorf("%v m=%d: period %v beats the fluid bound %v", net, m, period, fluid)
				}
			}
		}
	}
	// The headline regime: m=16, w∈[1,2], z=0.1 — the default bench pool.
	rng = rand.New(rand.NewSource(84))
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	in := Instance{Network: NCPFE, Z: 0.1, W: w}
	a, err := PipelinedAllocation(in)
	if err != nil {
		t.Fatal(err)
	}
	_, singleT, err := OptimalMakespan(in)
	if err != nil {
		t.Fatal(err)
	}
	if gain := singleT / pipelinePeriod(in, a); gain < 1.2 {
		t.Errorf("m=16 z=0.1 steady-state gain %.3f, want >= 1.2", gain)
	}
	if _, err := PipelinedAllocation(Instance{Network: NCPNFE, Z: 0.1, W: w}); err == nil {
		t.Error("NCP-NFE pipelined allocation accepted")
	}
}

// pipelinePeriod is the per-load occupancy of the busiest resource: the
// shared bus or any single processor.
func pipelinePeriod(in Instance, a Allocation) float64 {
	period := 0.0
	for i := range a {
		if !(in.Network == NCPFE && i == 0) {
			period += in.Z * a[i]
		}
	}
	for i := range a {
		if c := in.W[i] * a[i]; c > period {
			period = c
		}
	}
	return period
}

func sumInvTail(in Instance) float64 {
	s := 0.0
	for i := 1; i < in.M(); i++ {
		s += 1 / in.W[i]
	}
	return s
}

// TestMultiRoundMakespanWithSpeeds: at the allocation's own speeds the
// fixed-allocation evaluator agrees with the schedule builder, and slower
// realized speeds only push the makespan out.
func TestMultiRoundMakespanWithSpeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 20; trial++ {
		in := DefaultRandomInstance(rng, NCPFE, 2+rng.Intn(10))
		a, err := PipelinedAllocation(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, rounds := range []int{1, 3, 5} {
			tl, err := MultiRoundSchedule(in, a, rounds, GeometricRounds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MultiRoundMakespanWithSpeeds(in, a, rounds, GeometricRounds, in.W)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(got, tl.Makespan) > tol {
				t.Errorf("m=%d R=%d: evaluator %v, builder %v", in.M(), rounds, got, tl.Makespan)
			}
			slow := append([]float64(nil), in.W...)
			slow[in.M()-1] *= 1.5
			worse, err := MultiRoundMakespanWithSpeeds(in, a, rounds, GeometricRounds, slow)
			if err != nil {
				t.Fatal(err)
			}
			if worse < got-1e-12 {
				t.Errorf("m=%d R=%d: slower execution shrank the makespan %v -> %v", in.M(), rounds, got, worse)
			}
		}
	}
	if _, err := MultiRoundMakespanWithSpeeds(Instance{Network: NCPFE, Z: 0.1, W: []float64{1, 2}}, Allocation{0.5, 0.5}, 2, EqualRounds, []float64{1}); err == nil {
		t.Error("short speeds vector accepted")
	}
}

// TestMultiRoundScheduleDegenerate: R=1 with the optimal allocation
// reproduces the single-round schedule's finish structure, and an
// allocation of the wrong arity is rejected.
func TestMultiRoundScheduleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	in := DefaultRandomInstance(rng, NCPFE, 6)
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	tl1, err := MultiRoundSchedule(in, a, 1, EqualRounds)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Schedule(in, a)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(tl1.Makespan, ref.Makespan) > tol {
		t.Errorf("R=1 makespan %v, single-round schedule %v", tl1.Makespan, ref.Makespan)
	}
	if _, err := MultiRoundSchedule(in, a[:3], 2, EqualRounds); err == nil {
		t.Error("short allocation accepted")
	}
	if err := InstallmentFeasible(NCPNFE, 2); err == nil {
		t.Error("NCP-NFE multi-round accepted")
	}
	if err := InstallmentFeasible(NCPNFE, 1); err != nil {
		t.Errorf("NCP-NFE single round rejected: %v", err)
	}
	if _, err := ParseRoundPolicy("geometric"); err != nil {
		t.Errorf("geometric: %v", err)
	}
	if _, err := ParseRoundPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
