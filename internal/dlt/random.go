package dlt

import "math/rand"

// RandomInstance draws a random instance for the given network class:
// m processors with w_i uniform in [wMin, wMax] and z uniform in
// [zMin, zMax]. All randomized tests and experiments pass an explicitly
// seeded *rand.Rand so results are reproducible.
func RandomInstance(rng *rand.Rand, net Network, m int, wMin, wMax, zMin, zMax float64) Instance {
	w := make([]float64, m)
	for i := range w {
		w[i] = wMin + rng.Float64()*(wMax-wMin)
	}
	return Instance{
		Network: net,
		Z:       zMin + rng.Float64()*(zMax-zMin),
		W:       w,
	}
}

// DefaultRandomInstance draws an instance with the parameter ranges used
// throughout the experiment harness: w ∈ [0.5, 8], z ∈ [0.05, 2].
func DefaultRandomInstance(rng *rand.Rand, net Network, m int) Instance {
	return RandomInstance(rng, net, m, 0.5, 8, 0.05, 2)
}
