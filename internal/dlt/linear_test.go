package dlt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomLinear(rng *rand.Rand, m int) LinearInstance {
	l := LinearInstance{Z: 0.02 + rng.Float64()*0.45, W: make([]float64, m)}
	for i := range l.W {
		l.W[i] = 0.5 + rng.Float64()*7.5
	}
	return l
}

func TestLinearValidate(t *testing.T) {
	if err := (LinearInstance{Z: 0.1, W: []float64{1, 2}}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LinearInstance{
		{},
		{Z: -1, W: []float64{1}},
		{Z: math.NaN(), W: []float64{1}},
		{Z: 0.1, W: []float64{0}},
		{Z: 0.1, W: []float64{1, math.Inf(1)}},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, l)
		}
	}
}

// TestLinearFinishTimesHandComputed: m=3, z=1, w=(2,2,2), α=(0.4,0.3,0.3).
// arrival_1=0, T_1=0.8; tail after 1 is 0.6 ⇒ arrival_2=0.6, T_2=1.2;
// tail after 2 is 0.3 ⇒ arrival_3=0.9, T_3=1.5.
func TestLinearFinishTimesHandComputed(t *testing.T) {
	l := LinearInstance{Z: 1, W: []float64{2, 2, 2}}
	ft, err := LinearFinishTimes(l, Allocation{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.8, 1.2, 1.5}
	for i := range want {
		if relErr(ft[i], want[i]) > tol {
			t.Errorf("T[%d] = %v, want %v", i, ft[i], want[i])
		}
	}
	if _, err := LinearFinishTimes(l, Allocation{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestOptimalLinearHandComputed: m=2, z=1, w=(2,3).
// Backward: α_2=1 (unnormalized); α_1 = (1·1 + 1·3)/2 = 2 ⇒ α=(2/3,1/3).
// T_1 = 2/3·2 = 4/3; arrival_2 = 1·(1/3) = 1/3; T_2 = 1/3 + 1/3·3 = 4/3. ✓
func TestOptimalLinearHandComputed(t *testing.T) {
	l := LinearInstance{Z: 1, W: []float64{2, 3}}
	a, ms, err := OptimalLinearMakespan(l)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(a[0], 2.0/3) > tol || relErr(a[1], 1.0/3) > tol {
		t.Errorf("α = %v, want [2/3 1/3]", a)
	}
	if relErr(ms, 4.0/3) > tol {
		t.Errorf("makespan = %v, want 4/3", ms)
	}
}

// TestOptimalLinearEqualFinish across random chains.
func TestOptimalLinearEqualFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 100; trial++ {
		l := randomLinear(rng, 1+rng.Intn(20))
		a, err := OptimalLinear(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(l.M()); err != nil {
			t.Fatal(err)
		}
		ft, err := LinearFinishTimes(l, a)
		if err != nil {
			t.Fatal(err)
		}
		ms := maxOf(ft)
		for i, ti := range ft {
			if relErr(ti, ms) > 1e-9 {
				t.Errorf("m=%d: T[%d]=%v, makespan %v", l.M(), i, ti, ms)
			}
		}
	}
}

// TestLinearPerturbationOptimality: random feasible perturbations of the
// equal-finish allocation never reduce the makespan.
func TestLinearPerturbationOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		l := randomLinear(rng, 2+rng.Intn(8))
		a, base, err := OptimalLinearMakespan(l)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			p := a.Clone()
			i, j := rng.Intn(l.M()), rng.Intn(l.M())
			if i == j {
				continue
			}
			eps := rng.Float64() * 0.2 * p[i]
			p[i] -= eps
			p[j] += eps
			ms, err := LinearMakespan(l, p)
			if err != nil {
				t.Fatal(err)
			}
			if ms < base*(1-1e-9) {
				t.Errorf("perturbation beat the equal-finish solution: %v < %v", ms, base)
			}
		}
	}
}

// TestLinearScheduleConsistent: the explicit timeline realizes the
// finish-time equations and conserves load.
func TestLinearScheduleConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		l := randomLinear(rng, 1+rng.Intn(10))
		a, err := OptimalLinear(l)
		if err != nil {
			t.Fatal(err)
		}
		tln, err := LinearSchedule(l, a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := LinearFinishTimes(l, a)
		if err != nil {
			t.Fatal(err)
		}
		// Computation spans end exactly at the finish times.
		compEnd := make([]float64, l.M())
		var total float64
		for _, s := range tln.Spans {
			if s.Kind == Comp {
				compEnd[s.Proc] = s.End
				total += s.Frac
			}
		}
		for i := range want {
			if relErr(compEnd[i], want[i]) > tol {
				t.Errorf("timeline T[%d]=%v, eq %v", i, compEnd[i], want[i])
			}
		}
		if relErr(total, 1) > tol {
			t.Errorf("timeline computes %v of the load", total)
		}
	}
	if _, err := LinearSchedule(LinearInstance{Z: 0.1, W: []float64{1}}, Allocation{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestOptimalLinearSubsetAllActiveMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 40; trial++ {
		l := randomLinear(rng, 1+rng.Intn(10))
		all := make([]bool, l.M())
		for i := range all {
			all[i] = true
		}
		sub, err := OptimalLinearSubset(l, all)
		if err != nil {
			t.Fatal(err)
		}
		full, err := OptimalLinear(l)
		if err != nil {
			t.Fatal(err)
		}
		for i := range full {
			if relErr(sub[i], full[i]) > tol {
				t.Errorf("all-active subset α[%d]=%v, full %v", i, sub[i], full[i])
			}
		}
	}
}

// TestOptimalLinearSubsetEqualFinish: active processors finish together;
// inactive processors receive nothing.
func TestOptimalLinearSubsetEqualFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(10)
		l := randomLinear(rng, m)
		active := make([]bool, m)
		nActive := 0
		for i := range active {
			active[i] = rng.Intn(2) == 0
			if active[i] {
				nActive++
			}
		}
		if nActive == 0 {
			active[rng.Intn(m)] = true
			nActive = 1
		}
		a, err := OptimalLinearSubset(l, active)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(m); err != nil {
			t.Fatal(err)
		}
		ft, err := LinearFinishTimes(l, a)
		if err != nil {
			t.Fatal(err)
		}
		var ms float64
		for i := range ft {
			if active[i] && ft[i] > ms {
				ms = ft[i]
			}
		}
		for i := range ft {
			if !active[i] {
				if a[i] != 0 {
					t.Errorf("inactive P%d received %v", i+1, a[i])
				}
				continue
			}
			if relErr(ft[i], ms) > 1e-9 {
				t.Errorf("active P%d finishes at %v, makespan %v (mask %v)", i+1, ft[i], ms, active)
			}
		}
	}
}

// TestOptimalLinearSubsetMoreHelps: activating an additional processor
// never increases the subset-optimal makespan (the node's hop cost is
// paid either way — only extra computing capacity changes).
func TestOptimalLinearSubsetMoreHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(8)
		l := randomLinear(rng, m)
		off := rng.Intn(m)
		active := make([]bool, m)
		for i := range active {
			active[i] = i != off
		}
		subA, err := OptimalLinearSubset(l, active)
		if err != nil {
			t.Fatal(err)
		}
		subMS, err := LinearMakespan(l, subA)
		if err != nil {
			t.Fatal(err)
		}
		_, fullMS, err := OptimalLinearMakespan(l)
		if err != nil {
			t.Fatal(err)
		}
		if fullMS > subMS+1e-9 {
			t.Errorf("full participation %v worse than subset %v (off=%d, %+v)", fullMS, subMS, off, l)
		}
	}
}

func TestOptimalLinearSubsetValidation(t *testing.T) {
	l := LinearInstance{Z: 0.1, W: []float64{1, 2}}
	if _, err := OptimalLinearSubset(l, []bool{true}); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := OptimalLinearSubset(l, []bool{false, false}); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := OptimalLinearSubset(LinearInstance{}, nil); err == nil {
		t.Error("invalid instance accepted")
	}
}

// TestLinearVsBusFE: a 1-hop chain equals the m=1 case; for m=2 the chain
// coincides with NCP-FE (single transfer of α_2 while P1 computes).
func TestLinearVsBusFE(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		l := randomLinear(rng, 2)
		bus := Instance{Network: NCPFE, Z: l.Z, W: append([]float64(nil), l.W...)}
		la, lms, err := OptimalLinearMakespan(l)
		if err != nil {
			t.Fatal(err)
		}
		ba, bms, err := OptimalMakespan(bus)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(lms, bms) > tol {
			t.Errorf("2-chain makespan %v, NCP-FE %v", lms, bms)
		}
		for i := range la {
			if relErr(la[i], ba[i]) > tol {
				t.Errorf("2-chain α=%v, NCP-FE %v", la, ba)
			}
		}
	}
}

// TestLinearVsBusTradeoff: for m ≥ 3 the chain pipeline differs from the
// bus; with cheap communication both approach the same compute-bound
// limit.
func TestLinearChainCheapCommLimit(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	l := LinearInstance{Z: 1e-9, W: w}
	_, lms, err := OptimalLinearMakespan(l)
	if err != nil {
		t.Fatal(err)
	}
	// Compute-bound limit: T with z=0 is 1/Σ(1/w_i).
	var inv float64
	for _, wi := range w {
		inv += 1 / wi
	}
	if relErr(lms, 1/inv) > 1e-6 {
		t.Errorf("z→0 chain makespan %v, compute-bound limit %v", lms, 1/inv)
	}
}

// Property: chain makespan is monotone in z and in every w.
func TestQuickLinearMonotonicity(t *testing.T) {
	f := func(seed int64, mRaw, whichRaw uint8, bumpRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw)%12
		l := randomLinear(rng, m)
		_, base, err := OptimalLinearMakespan(l)
		if err != nil {
			return false
		}
		bump := 1 + math.Abs(math.Mod(bumpRaw, 3))
		if math.IsNaN(bump) || math.IsInf(bump, 0) {
			bump = 2
		}
		slower := LinearInstance{Z: l.Z, W: append([]float64(nil), l.W...)}
		slower.W[int(whichRaw)%m] *= bump
		_, worse, err := OptimalLinearMakespan(slower)
		if err != nil {
			return false
		}
		if worse < base*(1-1e-9) {
			return false
		}
		congested := LinearInstance{Z: l.Z * bump, W: l.W}
		_, worse2, err := OptimalLinearMakespan(congested)
		if err != nil {
			return false
		}
		return worse2 >= base*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
