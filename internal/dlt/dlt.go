// Package dlt implements the Divisible Load Theory (DLT) substrate of
// Carroll & Grosu, "A Strategyproof Mechanism for Scheduling Divisible
// Loads in Bus Networks without Control Processor" (IPPS 2006).
//
// A divisible load of unit size is split among m processors connected by a
// bus. Processor P_i needs w_i time units to process one unit of load and
// the bus needs z time units to transfer one unit of load to any processor
// (one-port model: at most one transfer at a time). The package provides
//
//   - the three system classes of Section 2 of the paper — CP (bus with a
//     dedicated control processor, Figure 1 / eq. (1)), NCP-FE (no control
//     processor, originator with front end, Figure 2 / eq. (2)) and
//     NCP-NFE (no control processor, originator without front end,
//     Figure 3 / eq. (3));
//   - the closed-form optimal allocation algorithms (Algorithms 2.1 and
//     2.2 and the CP analogue), which equalize all finishing times
//     (Theorem 2.1);
//   - finish-time evaluation for arbitrary (possibly suboptimal)
//     allocations and arbitrary execution speeds, as required by the
//     mechanism's payment rule;
//   - an independent bisection solver used to cross-validate the closed
//     forms, naive baseline allocators, and the affine-cost and
//     multi-round extensions discussed as future work.
//
// All quantities are expressed in virtual time units per unit load.
package dlt

import (
	"errors"
	"fmt"
	"math"
)

// Network identifies one of the three bus-network system classes of the
// paper (Section 2).
type Network int

const (
	// CP is a bus network with a dedicated control processor P0 that
	// holds the load, has no processing capacity, and distributes load
	// fractions to the m worker processors over the one-port bus
	// (Figure 1). Every worker waits for its transfer to complete before
	// computing, so T_i = z·Σ_{j≤i} α_j + α_i·w_i (eq. (1)).
	CP Network = iota
	// NCPFE is a bus network without a control processor in which the
	// load-originating processor P_1 has a front end and therefore
	// computes while transmitting (Figure 2). T_1 = α_1·w_1 and, for
	// i ≥ 2, T_i = z·Σ_{2≤j≤i} α_j + α_i·w_i (eq. (2); the sum starts at
	// j = 2 because the originator's own fraction never crosses the bus,
	// as Figure 2 shows).
	NCPFE
	// NCPNFE is a bus network without a control processor in which the
	// load-originating processor P_m has no front end: it first transmits
	// α_1,…,α_{m−1} and only then processes its own fraction (Figure 3).
	// T_i = z·Σ_{j≤i} α_j + α_i·w_i for i < m and
	// T_m = z·Σ_{j≤m−1} α_j + α_m·w_m (eq. (3)).
	NCPNFE
)

// String returns the conventional name of the network class.
func (n Network) String() string {
	switch n {
	case CP:
		return "CP"
	case NCPFE:
		return "NCP-FE"
	case NCPNFE:
		return "NCP-NFE"
	default:
		return fmt.Sprintf("Network(%d)", int(n))
	}
}

// Networks lists all three system classes, in paper order. Useful for
// table-driven tests and experiment sweeps.
var Networks = []Network{CP, NCPFE, NCPNFE}

// Originator returns the index (0-based) of the load-originating processor
// among the m workers for this network class: P_1 for NCP-FE, P_m for
// NCP-NFE. For CP the originator is the separate control processor P0,
// which is not one of the workers; Originator returns -1 in that case.
func (n Network) Originator(m int) int {
	switch n {
	case NCPFE:
		return 0
	case NCPNFE:
		return m - 1
	default:
		return -1
	}
}

// Instance describes one divisible-load scheduling problem: the network
// class, the per-unit communication time z shared by all transfers, and the
// per-unit processing times W of the m processors (W[i] is w_{i+1} in the
// paper's 1-based notation).
type Instance struct {
	Network Network
	Z       float64
	W       []float64
}

// M returns the number of worker processors.
func (in Instance) M() int { return len(in.W) }

// Validate checks that the instance is well formed: at least one
// processor, strictly positive finite processing times, and a non-negative
// finite communication time.
func (in Instance) Validate() error {
	if len(in.W) == 0 {
		return errors.New("dlt: instance has no processors")
	}
	if in.Network != CP && in.Network != NCPFE && in.Network != NCPNFE {
		return fmt.Errorf("dlt: unknown network class %d", int(in.Network))
	}
	if math.IsNaN(in.Z) || math.IsInf(in.Z, 0) || in.Z < 0 {
		return fmt.Errorf("dlt: invalid communication time z=%v", in.Z)
	}
	for i, w := range in.W {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return fmt.Errorf("dlt: invalid processing time w[%d]=%v", i, w)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	return Instance{Network: in.Network, Z: in.Z, W: append([]float64(nil), in.W...)}
}

// Without returns the instance obtained when processor i does not
// participate, as needed by the mechanism's bonus term
// T(α(b_{-i}), b_{-i}) (Section 3).
//
// For CP this simply removes worker i. For the NCP classes the
// load-originating processor still holds the load even when it does not
// compute, so removing the originator degenerates the system into a CP
// network over the remaining m−1 processors: the originator keeps
// distributing fractions but contributes no processing. Removing a
// non-originating processor keeps the class unchanged.
func (in Instance) Without(i int) (Instance, error) {
	m := in.M()
	if i < 0 || i >= m {
		return Instance{}, fmt.Errorf("dlt: Without(%d) out of range for m=%d", i, m)
	}
	w := make([]float64, 0, m-1)
	w = append(w, in.W[:i]...)
	w = append(w, in.W[i+1:]...)
	net := in.Network
	if in.Network.Originator(m) == i {
		net = CP
	}
	return Instance{Network: net, Z: in.Z, W: w}, nil
}

// Allocation is a load split α = (α_1, …, α_m): Allocation[i] is the
// fraction of the unit load assigned to processor i. A feasible allocation
// is component-wise non-negative and sums to 1 (constraints (5)–(6)).
type Allocation []float64

// Sum returns Σ_i α_i.
func (a Allocation) Sum() float64 {
	var s float64
	for _, x := range a {
		s += x
	}
	return s
}

// Clone returns a copy of the allocation.
func (a Allocation) Clone() Allocation { return append(Allocation(nil), a...) }

// FeasibilityTol is the tolerance used by Validate for the Σα_i = 1
// normalization constraint.
const FeasibilityTol = 1e-9

// Validate checks feasibility: len(a) = m, α_i ≥ 0 and Σα_i = 1 within
// FeasibilityTol.
func (a Allocation) Validate(m int) error {
	if len(a) != m {
		return fmt.Errorf("dlt: allocation has %d entries, want %d", len(a), m)
	}
	for i, x := range a {
		if math.IsNaN(x) || x < -FeasibilityTol {
			return fmt.Errorf("dlt: negative allocation α[%d]=%v", i, x)
		}
	}
	if s := a.Sum(); math.Abs(s-1) > FeasibilityTol {
		return fmt.Errorf("dlt: allocation sums to %v, want 1", s)
	}
	return nil
}
