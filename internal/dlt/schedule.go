package dlt

import (
	"fmt"
	"sort"
)

// SpanKind distinguishes the two activity types in a schedule timeline.
type SpanKind int

const (
	// Comm is a bus transfer of a load fraction to a processor.
	Comm SpanKind = iota
	// Comp is a processor executing a load fraction.
	Comp
)

// String returns "comm" or "comp".
func (k SpanKind) String() string {
	if k == Comm {
		return "comm"
	}
	return "comp"
}

// Span is one contiguous activity in a schedule: processor Proc either
// receives (Comm) or executes (Comp) the load fraction Frac during
// [Start, End). Round is 0 for single-round schedules.
type Span struct {
	Proc     int
	Kind     SpanKind
	Start    float64
	End      float64
	Frac     float64
	Round    int
	BusOwner bool // true when the span occupies the shared bus
}

// Timeline is a full schedule: the spans of every processor plus the
// realized makespan. It is what the Gantt renderer draws to reproduce
// Figures 1–3.
type Timeline struct {
	Instance Instance
	Spans    []Span
	Makespan float64
}

// FinishTimes returns the last activity end per processor.
func (tl Timeline) FinishTimes() []float64 {
	t := make([]float64, tl.Instance.M())
	for _, s := range tl.Spans {
		if s.End > t[s.Proc] {
			t[s.Proc] = s.End
		}
	}
	return t
}

// BusSpans returns the spans that occupy the bus, sorted by start time.
// The one-port model requires them to be non-overlapping; tests assert it.
func (tl Timeline) BusSpans() []Span {
	var out []Span
	for _, s := range tl.Spans {
		if s.BusOwner {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Schedule constructs the explicit single-round timeline realizing the
// finishing-time equations (1)–(3) for allocation a: bus transfers are
// issued back-to-back in index order (any order is optimal by
// Theorem 2.2) and each processor computes as soon as its fraction has
// arrived. The NCP-NFE originator computes only after all its transfers
// complete; the NCP-FE originator computes from time zero.
func Schedule(in Instance, a Allocation) (Timeline, error) {
	if err := in.Validate(); err != nil {
		return Timeline{}, err
	}
	m := in.M()
	if len(a) != m {
		return Timeline{}, fmt.Errorf("dlt: allocation has %d entries, want %d", len(a), m)
	}
	tl := Timeline{Instance: in.Clone()}
	bus := 0.0
	addComm := func(p int, frac float64) float64 {
		end := bus + in.Z*frac
		tl.Spans = append(tl.Spans, Span{Proc: p, Kind: Comm, Start: bus, End: end, Frac: frac, BusOwner: true})
		bus = end
		return end
	}
	addComp := func(p int, start, frac float64) float64 {
		end := start + in.W[p]*frac
		tl.Spans = append(tl.Spans, Span{Proc: p, Kind: Comp, Start: start, End: end, Frac: frac})
		return end
	}
	switch in.Network {
	case CP:
		for i := 0; i < m; i++ {
			arr := addComm(i, a[i])
			addComp(i, arr, a[i])
		}
	case NCPFE:
		addComp(0, 0, a[0]) // front end: originator computes immediately
		for i := 1; i < m; i++ {
			arr := addComm(i, a[i])
			addComp(i, arr, a[i])
		}
	case NCPNFE:
		for i := 0; i < m-1; i++ {
			arr := addComm(i, a[i])
			addComp(i, arr, a[i])
		}
		// No front end: the originator computes after its last transfer.
		addComp(m-1, bus, a[m-1])
	}
	for _, s := range tl.Spans {
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}
