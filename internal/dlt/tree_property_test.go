package dlt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the tree makespan is monotone — slowing any node down never
// decreases the optimal makespan, and speeding it up never increases it.
func TestQuickTreeMonotoneInNodeSpeed(t *testing.T) {
	f := func(seed int64, depthRaw, fanoutRaw, whichRaw uint8, factorRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 1 + int(depthRaw)%3
		fanout := 1 + int(fanoutRaw)%3
		tr := randomTree(rng, depth, fanout)
		_, base, err := OptimalTree(tr)
		if err != nil {
			return false
		}
		factor := 1 + math.Abs(math.Mod(factorRaw, 3))
		if math.IsNaN(factor) || math.IsInf(factor, 0) {
			factor = 2
		}
		// Slow one node (pre-order position) down.
		nodes := collectNodes(tr)
		target := nodes[int(whichRaw)%len(nodes)]
		old := target.W
		target.W *= factor
		_, worse, err := OptimalTree(tr)
		target.W = old
		if err != nil {
			return false
		}
		return worse >= base*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: attaching an extra leaf to any node never increases the
// optimal makespan (it is served over its link only if beneficial —
// OptimalStar assigns it a positive share, which by the star voluntary-
// participation property cannot hurt when the root computes... verified
// empirically here across random trees).
func TestQuickTreeExtraLeafHelps(t *testing.T) {
	f := func(seed int64, depthRaw, fanoutRaw, whichRaw uint8, wRaw, zRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 1+int(depthRaw)%3, 1+int(fanoutRaw)%3)
		_, base, err := OptimalTree(tr)
		if err != nil {
			return false
		}
		w := 0.5 + math.Abs(math.Mod(wRaw, 7))
		z := 0.01 + math.Abs(math.Mod(zRaw, 0.3))
		if math.IsNaN(w) || math.IsNaN(z) {
			return true
		}
		nodes := collectNodes(tr)
		parent := nodes[int(whichRaw)%len(nodes)]
		parent.Children = append(parent.Children, &Tree{W: w, Z: z})
		_, grown, err := OptimalTree(tr)
		parent.Children = parent.Children[:len(parent.Children)-1]
		if err != nil {
			return false
		}
		return grown <= base*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree optimum is homogeneous of degree one in (W, Z).
func TestQuickTreeHomogeneity(t *testing.T) {
	f := func(seed int64, scaleRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3, 2)
		_, base, err := OptimalTree(tr)
		if err != nil {
			return false
		}
		scale := 0.5 + math.Abs(math.Mod(scaleRaw, 5))
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 2
		}
		scaleTree(tr, scale)
		_, scaled, err := OptimalTree(tr)
		scaleTree(tr, 1/scale)
		if err != nil {
			return false
		}
		return math.Abs(scaled-scale*base) <= 1e-6*math.Max(scaled, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func collectNodes(t *Tree) []*Tree {
	out := []*Tree{t}
	for _, c := range t.Children {
		out = append(out, collectNodes(c)...)
	}
	return out
}

func scaleTree(t *Tree, s float64) {
	t.W *= s
	t.Z *= s
	for _, c := range t.Children {
		scaleTree(c, s)
	}
}
