package dlt

import (
	"errors"
	"fmt"
	"math"
)

// Linear-network extension — the second canonical DLT topology from the
// reference book (and the paper's "other network architectures" future
// work): processors form a daisy chain P_1 → P_2 → … → P_m. P_1
// originates the load, keeps its fraction and forwards the remainder to
// P_2, which does the same, store-and-forward, with every processor
// owning a front end (it computes while forwarding).
//
// With tail loads r_i = Σ_{j>i} α_j, data reaches P_{i+1} at
// arrival_{i+1} = arrival_i + z·r_i, and P_i finishes at
// T_i = arrival_i + α_i·w_i. Equalizing consecutive finish times gives
// the backward recursion α_i·w_i = z·r_i + α_{i+1}·w_{i+1}, solved from
// the tail and normalized.

// LinearInstance is a daisy chain: Z is the per-unit transfer time on
// every hop (homogeneous links) and W the per-unit processing times in
// chain order (W[0] is the originator).
type LinearInstance struct {
	Z float64
	W []float64
}

// M returns the chain length.
func (l LinearInstance) M() int { return len(l.W) }

// Validate checks shape and positivity.
func (l LinearInstance) Validate() error {
	if len(l.W) == 0 {
		return errors.New("dlt: linear instance has no processors")
	}
	if math.IsNaN(l.Z) || math.IsInf(l.Z, 0) || l.Z < 0 {
		return fmt.Errorf("dlt: invalid linear z=%v", l.Z)
	}
	for i, w := range l.W {
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("dlt: invalid linear w[%d]=%v", i, w)
		}
	}
	return nil
}

// LinearFinishTimes evaluates T_i for an arbitrary allocation on the
// chain.
func LinearFinishTimes(l LinearInstance, a Allocation) ([]float64, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	m := l.M()
	if len(a) != m {
		return nil, fmt.Errorf("dlt: allocation has %d entries, want %d", len(a), m)
	}
	t := make([]float64, m)
	arrival := 0.0
	remaining := a.Sum()
	for i := 0; i < m; i++ {
		t[i] = arrival + a[i]*l.W[i]
		remaining -= a[i]
		if remaining < 0 {
			remaining = 0
		}
		arrival += l.Z * remaining // forward the tail to the next hop
	}
	return t, nil
}

// LinearMakespan returns max_i T_i.
func LinearMakespan(l LinearInstance, a Allocation) (float64, error) {
	t, err := LinearFinishTimes(l, a)
	if err != nil {
		return 0, err
	}
	return maxOf(t), nil
}

// OptimalLinear computes the equal-finish allocation by the backward
// recursion α_i·w_i = z·r_i + α_{i+1}·w_{i+1}, r_i = Σ_{j>i} α_j,
// starting from an unnormalized α_m = 1.
func OptimalLinear(l LinearInstance) (Allocation, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	m := l.M()
	a := make(Allocation, m)
	a[m-1] = 1
	tail := 0.0 // r_i accumulated while walking backward
	for i := m - 2; i >= 0; i-- {
		tail += a[i+1]
		a[i] = (l.Z*tail + a[i+1]*l.W[i+1]) / l.W[i]
	}
	sum := a.Sum()
	for i := range a {
		a[i] /= sum
	}
	return a, nil
}

// OptimalLinearSubset computes the optimal allocation when only the
// processors with active[i] == true compute; inactive processors remain
// in the chain as pure store-and-forward relays (their hop latency is
// still paid — a node cannot be spliced out of the physical wiring).
// The returned allocation has length M with zeros at inactive positions.
//
// Between consecutive active processors a and b (gap g = b−a hops), the
// tail load r crosses g hops unchanged, so equal finishing requires
// α_a·w_a = g·z·r_a + α_b·w_b.
func OptimalLinearSubset(l LinearInstance, active []bool) (Allocation, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	m := l.M()
	if len(active) != m {
		return nil, fmt.Errorf("dlt: active mask has %d entries, want %d", len(active), m)
	}
	var idx []int
	for i, on := range active {
		if on {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, errors.New("dlt: no active processors")
	}
	a := make(Allocation, m)
	last := idx[len(idx)-1]
	a[last] = 1
	tail := 0.0
	for k := len(idx) - 2; k >= 0; k-- {
		cur, next := idx[k], idx[k+1]
		tail += a[next]
		gap := float64(next - cur)
		a[cur] = (gap*l.Z*tail + a[next]*l.W[next]) / l.W[cur]
	}
	sum := a.Sum()
	for i := range a {
		a[i] /= sum
	}
	return a, nil
}

// OptimalLinearMakespan returns the equal-finish allocation and its
// makespan.
func OptimalLinearMakespan(l LinearInstance) (Allocation, float64, error) {
	a, err := OptimalLinear(l)
	if err != nil {
		return nil, 0, err
	}
	ms, err := LinearMakespan(l, a)
	if err != nil {
		return nil, 0, err
	}
	return a, ms, nil
}

// LinearSchedule builds the explicit chain timeline: hop i→i+1 carries
// the tail r_i starting when the data arrived at i; every processor
// computes its fraction from its arrival instant. Hop transfers are
// tagged BusOwner=false (each hop is a private link, not the shared bus).
func LinearSchedule(l LinearInstance, a Allocation) (Timeline, error) {
	if err := l.Validate(); err != nil {
		return Timeline{}, err
	}
	m := l.M()
	if len(a) != m {
		return Timeline{}, fmt.Errorf("dlt: allocation has %d entries, want %d", len(a), m)
	}
	tl := Timeline{Instance: Instance{Network: NCPFE, Z: l.Z, W: append([]float64(nil), l.W...)}}
	arrival := 0.0
	remaining := a.Sum()
	for i := 0; i < m; i++ {
		tl.Spans = append(tl.Spans, Span{
			Proc: i, Kind: Comp, Start: arrival, End: arrival + a[i]*l.W[i], Frac: a[i],
		})
		remaining -= a[i]
		if remaining < 0 {
			remaining = 0
		}
		if i < m-1 && remaining > 0 {
			tl.Spans = append(tl.Spans, Span{
				Proc: i + 1, Kind: Comm, Start: arrival, End: arrival + l.Z*remaining, Frac: remaining,
			})
		}
		arrival += l.Z * remaining
	}
	for _, s := range tl.Spans {
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}
