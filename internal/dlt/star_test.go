package dlt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomStar(rng *rand.Rand, m int, withRoot bool) StarInstance {
	s := StarInstance{Z: make([]float64, m), W: make([]float64, m)}
	for i := 0; i < m; i++ {
		s.Z[i] = 0.05 + rng.Float64()*0.4
		s.W[i] = 0.5 + rng.Float64()*7.5
	}
	if withRoot {
		s.RootW = 0.5 + rng.Float64()*7.5
	}
	return s
}

func TestStarValidate(t *testing.T) {
	ok := StarInstance{Z: []float64{0.1, 0.2}, W: []float64{1, 2}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []StarInstance{
		{},
		{Z: []float64{0.1}, W: []float64{1, 2}},
		{RootW: -1, Z: []float64{0.1}, W: []float64{1}},
		{Z: []float64{-0.1}, W: []float64{1}},
		{Z: []float64{0.1}, W: []float64{0}},
		{Z: []float64{math.NaN()}, W: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestStarPermute(t *testing.T) {
	s := StarInstance{RootW: 5, Z: []float64{0.1, 0.2, 0.3}, W: []float64{1, 2, 3}}
	p, err := s.Permute([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Z[0] != 0.3 || p.W[0] != 3 || p.Z[1] != 0.1 || p.RootW != 5 {
		t.Errorf("permuted = %+v", p)
	}
	if _, err := s.Permute([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := s.Permute([]int{0, 0, 1}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := s.Permute([]int{0, 1, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

// TestOptimalStarEqualFinish: children (and a computing root) all finish
// simultaneously, and the allocation is feasible.
func TestOptimalStarEqualFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 100; trial++ {
		s := randomStar(rng, 1+rng.Intn(12), trial%2 == 0)
		a, err := OptimalStar(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Sum()-1) > 1e-9 {
			t.Fatalf("allocation sums to %v", a.Sum())
		}
		root, children, err := StarFinishTimes(s, a)
		if err != nil {
			t.Fatal(err)
		}
		ms, _ := StarMakespan(s, a)
		for i, ti := range children {
			if relErr(ti, ms) > 1e-9 {
				t.Errorf("child %d finishes at %v, makespan %v", i, ti, ms)
			}
		}
		if s.RootW > 0 && relErr(root, ms) > 1e-9 {
			t.Errorf("root finishes at %v, makespan %v", root, ms)
		}
		if s.RootW == 0 && a.Root != 0 {
			t.Errorf("non-computing root received %v", a.Root)
		}
	}
}

// TestStarMatchesBusClosedForms: with uniform links the star solver must
// reproduce the CP and NCP-FE bus solutions exactly.
func TestStarMatchesBusClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(10)
		for _, net := range []Network{CP, NCPFE} {
			in := DefaultRandomInstance(rng, net, m)
			star, err := UniformStar(in)
			if err != nil {
				t.Fatal(err)
			}
			sa, err := OptimalStar(star)
			if err != nil {
				t.Fatal(err)
			}
			ba, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			sms, err := StarMakespan(star, sa)
			if err != nil {
				t.Fatal(err)
			}
			bms, err := Makespan(in, ba)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(sms, bms) > 1e-9 {
				t.Errorf("%v m=%d: star makespan %v, bus %v", net, m, sms, bms)
			}
			switch net {
			case CP:
				for i := range ba {
					if relErr(sa.Children[i], ba[i]) > 1e-9 {
						t.Errorf("CP: child %d star %v, bus %v", i, sa.Children[i], ba[i])
					}
				}
			case NCPFE:
				if relErr(sa.Root, ba[0]) > 1e-9 {
					t.Errorf("FE: root fraction %v, bus %v", sa.Root, ba[0])
				}
				for i := 1; i < m; i++ {
					if relErr(sa.Children[i-1], ba[i]) > 1e-9 {
						t.Errorf("FE: child %d star %v, bus %v", i, sa.Children[i-1], ba[i])
					}
				}
			}
		}
	}
	if _, err := UniformStar(Instance{Network: NCPNFE, Z: 0.1, W: []float64{1, 2}}); err == nil {
		t.Error("NFE star conversion accepted")
	}
	if _, err := UniformStar(Instance{Network: NCPFE, Z: 0.1, W: []float64{1}}); err == nil {
		t.Error("single-processor FE star conversion accepted")
	}
}

// TestOptimalStarOrderMatchesExhaustive: the sort-by-z order achieves the
// exhaustive-search optimum (the classical sequencing theorem).
func TestOptimalStarOrderMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 40; trial++ {
		s := randomStar(rng, 2+rng.Intn(5), trial%2 == 0)
		_, _, sorted, err := OptimalStarOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		_, best, err := ExhaustiveStarOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		if sorted > best*(1+1e-9) {
			t.Errorf("sorted-by-z makespan %v worse than exhaustive best %v (instance %+v)", sorted, best, s)
		}
	}
}

// TestStarOrderMattersWithHeterogeneousLinks: unlike the bus
// (Theorem 2.2), order changes the makespan once links differ.
func TestStarOrderMattersWithHeterogeneousLinks(t *testing.T) {
	s := StarInstance{Z: []float64{0.05, 0.8}, W: []float64{2, 2}}
	fwd, err := OptimalStar(s)
	if err != nil {
		t.Fatal(err)
	}
	fwdMS, _ := StarMakespan(s, fwd)
	rev, err := s.Permute([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	revAlloc, err := OptimalStar(rev)
	if err != nil {
		t.Fatal(err)
	}
	revMS, _ := StarMakespan(rev, revAlloc)
	if relErr(fwdMS, revMS) < 1e-9 {
		t.Error("heterogeneous-link orders produced identical makespans")
	}
	if fwdMS > revMS {
		t.Errorf("fast-link-first (%v) worse than slow-link-first (%v)", fwdMS, revMS)
	}
}

func TestExhaustiveStarOrderBounds(t *testing.T) {
	big := randomStar(rand.New(rand.NewSource(53)), 10, false)
	if _, _, err := ExhaustiveStarOrder(big); err == nil {
		t.Error("10-child exhaustive search accepted")
	}
	if _, _, err := ExhaustiveStarOrder(StarInstance{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestStarFinishTimesValidation(t *testing.T) {
	s := StarInstance{Z: []float64{0.1, 0.1}, W: []float64{1, 2}}
	if _, _, err := StarFinishTimes(s, StarAllocation{Children: Allocation{1}}); err == nil {
		t.Error("short allocation accepted")
	}
	if _, err := OptimalStar(StarInstance{}); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, _, _, err := OptimalStarOrder(StarInstance{}); err == nil {
		t.Error("invalid instance accepted by order solver")
	}
}

// Property: sort-by-z never loses to a random order.
func TestQuickStarSortedOrderDominates(t *testing.T) {
	f := func(seed int64, mRaw uint8, withRoot bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw)%6
		s := randomStar(rng, m, withRoot)
		_, _, sorted, err := OptimalStarOrder(s)
		if err != nil {
			return false
		}
		perm := rng.Perm(m)
		inst, err := s.Permute(perm)
		if err != nil {
			return false
		}
		alloc, err := OptimalStar(inst)
		if err != nil {
			return false
		}
		ms, err := StarMakespan(inst, alloc)
		if err != nil {
			return false
		}
		return sorted <= ms*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
