package dlt

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-9

func relErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

func TestNetworkString(t *testing.T) {
	cases := map[Network]string{CP: "CP", NCPFE: "NCP-FE", NCPNFE: "NCP-NFE", Network(99): "Network(99)"}
	for n, want := range cases {
		if got := n.String(); got != want {
			t.Errorf("Network(%d).String() = %q, want %q", int(n), got, want)
		}
	}
}

func TestOriginator(t *testing.T) {
	if got := CP.Originator(5); got != -1 {
		t.Errorf("CP originator = %d, want -1", got)
	}
	if got := NCPFE.Originator(5); got != 0 {
		t.Errorf("NCP-FE originator = %d, want 0", got)
	}
	if got := NCPNFE.Originator(5); got != 4 {
		t.Errorf("NCP-NFE originator = %d, want 4", got)
	}
}

func TestInstanceValidate(t *testing.T) {
	valid := Instance{Network: NCPFE, Z: 0.2, W: []float64{1, 2, 3}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{Network: NCPFE, Z: 0.2, W: nil},
		{Network: Network(7), Z: 0.2, W: []float64{1}},
		{Network: CP, Z: -1, W: []float64{1}},
		{Network: CP, Z: math.NaN(), W: []float64{1}},
		{Network: CP, Z: math.Inf(1), W: []float64{1}},
		{Network: CP, Z: 0.2, W: []float64{1, 0}},
		{Network: CP, Z: 0.2, W: []float64{1, -3}},
		{Network: CP, Z: 0.2, W: []float64{math.NaN()}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid instance accepted: %+v", i, in)
		}
	}
}

func TestAllocationValidate(t *testing.T) {
	if err := (Allocation{0.5, 0.5}).Validate(2); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
	if err := (Allocation{0.5, 0.5}).Validate(3); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	if err := (Allocation{1.5, -0.5}).Validate(2); err == nil {
		t.Error("negative allocation accepted")
	}
	if err := (Allocation{0.5, 0.4}).Validate(2); err == nil {
		t.Error("non-normalized allocation accepted")
	}
	if err := (Allocation{math.NaN(), 1}).Validate(2); err == nil {
		t.Error("NaN allocation accepted")
	}
}

func TestWithout(t *testing.T) {
	in := Instance{Network: NCPFE, Z: 0.3, W: []float64{1, 2, 3, 4}}
	sub, err := in.Without(2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Network != NCPFE {
		t.Errorf("removing non-originator changed network to %v", sub.Network)
	}
	wantW := []float64{1, 2, 4}
	for i := range wantW {
		if sub.W[i] != wantW[i] {
			t.Errorf("sub.W = %v, want %v", sub.W, wantW)
			break
		}
	}
	// Removing the NCP-FE originator degenerates to CP.
	sub0, err := in.Without(0)
	if err != nil {
		t.Fatal(err)
	}
	if sub0.Network != CP {
		t.Errorf("removing NCP-FE originator gave %v, want CP", sub0.Network)
	}
	// Removing the NCP-NFE originator (last index) degenerates to CP.
	nfe := Instance{Network: NCPNFE, Z: 0.3, W: []float64{1, 2, 3}}
	subN, err := nfe.Without(2)
	if err != nil {
		t.Fatal(err)
	}
	if subN.Network != CP {
		t.Errorf("removing NCP-NFE originator gave %v, want CP", subN.Network)
	}
	if _, err := in.Without(-1); err == nil {
		t.Error("Without(-1) accepted")
	}
	if _, err := in.Without(4); err == nil {
		t.Error("Without(m) accepted")
	}
	// Mutating the original must not change the copy.
	in.W[0] = 99
	if sub.W[0] == 99 {
		t.Error("Without aliases the parent W slice")
	}
}

func TestFinishTimesHandComputedCP(t *testing.T) {
	// m=2, z=1, w=(2,2), α=(0.5,0.5):
	// T1 = 1·0.5 + 0.5·2 = 1.5; T2 = 1·(0.5+0.5) + 0.5·2 = 2.
	in := Instance{Network: CP, Z: 1, W: []float64{2, 2}}
	ft, err := FinishTimes(in, Allocation{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ft[0], 1.5) > tol || relErr(ft[1], 2) > tol {
		t.Errorf("finish times = %v, want [1.5 2]", ft)
	}
}

func TestFinishTimesHandComputedNCPFE(t *testing.T) {
	// m=3, z=1, w=(2,2,2), α=(0.4,0.3,0.3):
	// T1 = 0.4·2 = 0.8
	// T2 = 1·0.3 + 0.3·2 = 0.9        (sum starts at j=2)
	// T3 = 1·(0.3+0.3) + 0.3·2 = 1.2
	in := Instance{Network: NCPFE, Z: 1, W: []float64{2, 2, 2}}
	ft, err := FinishTimes(in, Allocation{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.8, 0.9, 1.2}
	for i := range want {
		if relErr(ft[i], want[i]) > tol {
			t.Errorf("T[%d] = %v, want %v", i, ft[i], want[i])
		}
	}
}

func TestFinishTimesHandComputedNCPNFE(t *testing.T) {
	// m=3, z=1, w=(2,2,2), α=(0.4,0.3,0.3):
	// T1 = 1·0.4 + 0.4·2 = 1.2
	// T2 = 1·0.7 + 0.3·2 = 1.3
	// T3 = 1·0.7 + 0.3·2 = 1.3       (originator: no z term for itself)
	in := Instance{Network: NCPNFE, Z: 1, W: []float64{2, 2, 2}}
	ft, err := FinishTimes(in, Allocation{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.2, 1.3, 1.3}
	for i := range want {
		if relErr(ft[i], want[i]) > tol {
			t.Errorf("T[%d] = %v, want %v", i, ft[i], want[i])
		}
	}
}

func TestFinishTimesErrors(t *testing.T) {
	in := Instance{Network: CP, Z: 1, W: []float64{2, 2}}
	if _, err := FinishTimes(in, Allocation{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FinishTimes(Instance{Network: CP, Z: -1, W: []float64{1}}, Allocation{1}); err == nil {
		t.Error("invalid instance accepted")
	}
}

// TestOptimalHandComputedNCPFE checks Algorithm 2.1 against a fully
// hand-worked example: m=2, z=1, w=(2,3).
// k1 = w1/(z+w2) = 2/4 = 0.5, α = (1, 0.5)/1.5 = (2/3, 1/3).
// T1 = 2/3·2 = 4/3; T2 = 1/3·1 + 1/3·3 = 4/3. Equal. ✓
func TestOptimalHandComputedNCPFE(t *testing.T) {
	in := Instance{Network: NCPFE, Z: 1, W: []float64{2, 3}}
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(a[0], 2.0/3) > tol || relErr(a[1], 1.0/3) > tol {
		t.Errorf("α = %v, want [2/3 1/3]", a)
	}
	ms, err := Makespan(in, a)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, 4.0/3) > tol {
		t.Errorf("makespan = %v, want 4/3", ms)
	}
}

// TestOptimalHandComputedNCPNFE checks Algorithm 2.2 on m=2, z=1, w=(2,3):
// recursion (9): α1·2 = α2·3 ⇒ α = (3/5, 2/5).
// T1 = 1·3/5 + 3/5·2 = 9/5; T2 = 1·3/5 + 2/5·3 = 9/5. Equal. ✓
func TestOptimalHandComputedNCPNFE(t *testing.T) {
	in := Instance{Network: NCPNFE, Z: 1, W: []float64{2, 3}}
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(a[0], 0.6) > tol || relErr(a[1], 0.4) > tol {
		t.Errorf("α = %v, want [0.6 0.4]", a)
	}
	ms, err := Makespan(in, a)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, 1.8) > tol {
		t.Errorf("makespan = %v, want 1.8", ms)
	}
}

// TestOptimalHandComputedCP: m=2, z=1, w=(2,3).
// k1 = 2/(1+3) = 0.5 ⇒ α = (2/3, 1/3).
// T1 = 1·2/3 + 2/3·2 = 2; T2 = 1·1 + 1/3·3 = 2. Equal. ✓
func TestOptimalHandComputedCP(t *testing.T) {
	in := Instance{Network: CP, Z: 1, W: []float64{2, 3}}
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(a[0], 2.0/3) > tol || relErr(a[1], 1.0/3) > tol {
		t.Errorf("α = %v, want [2/3 1/3]", a)
	}
	ms, err := Makespan(in, a)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, 2) > tol {
		t.Errorf("makespan = %v, want 2", ms)
	}
}

func TestOptimalSingleProcessor(t *testing.T) {
	for _, net := range Networks {
		in := Instance{Network: net, Z: 0.7, W: []float64{3}}
		a, err := Optimal(in)
		if err != nil {
			t.Fatalf("%v: %v", net, err)
		}
		if relErr(a[0], 1) > tol {
			t.Errorf("%v: α = %v, want [1]", net, a)
		}
		ms, err := Makespan(in, a)
		if err != nil {
			t.Fatal(err)
		}
		want := 3.0
		if net == CP {
			want = 3.7 // the control processor must still ship the load
		}
		if relErr(ms, want) > tol {
			t.Errorf("%v: makespan = %v, want %v", net, ms, want)
		}
	}
}

// TestTheorem21SimultaneousFinish: the optimal allocation equalizes all
// finishing times, for all three classes and many random instances.
func TestTheorem21SimultaneousFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, net := range Networks {
		for trial := 0; trial < 200; trial++ {
			m := 1 + rng.Intn(32)
			in := DefaultRandomInstance(rng, net, m)
			a, err := Optimal(in)
			if err != nil {
				t.Fatalf("%v m=%d: %v", net, m, err)
			}
			if err := a.Validate(m); err != nil {
				t.Fatalf("%v m=%d: infeasible optimal allocation: %v", net, m, err)
			}
			spread, err := FinishSpread(in, a)
			if err != nil {
				t.Fatal(err)
			}
			ms, _ := Makespan(in, a)
			if spread/ms > 1e-9 {
				t.Errorf("%v m=%d: finish spread %v of makespan %v", net, m, spread, ms)
			}
		}
	}
}

// TestTheorem22OrderInvariance: permuting the processor order leaves the
// optimal makespan unchanged (allocation order is irrelevant on a bus).
func TestTheorem22OrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, net := range Networks {
		for trial := 0; trial < 100; trial++ {
			m := 2 + rng.Intn(12)
			in := DefaultRandomInstance(rng, net, m)
			_, base, err := OptimalMakespan(in)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 5; p++ {
				perm := in.Clone()
				// For the NCP classes the originator is pinned to its
				// position (it holds the load); permute the others.
				lo := 0
				hi := m
				switch net {
				case NCPFE:
					lo = 1
				case NCPNFE:
					hi = m - 1
				}
				for i := hi - 1; i > lo; i-- {
					j := lo + rng.Intn(i-lo+1)
					perm.W[i], perm.W[j] = perm.W[j], perm.W[i]
				}
				_, ms, err := OptimalMakespan(perm)
				if err != nil {
					t.Fatal(err)
				}
				if relErr(ms, base) > 1e-9 {
					t.Errorf("%v m=%d: permuted makespan %v != %v", net, m, ms, base)
				}
			}
		}
	}
}

// TestOptimalMatchesBisection cross-validates the closed forms against the
// independent bisection solver.
func TestOptimalMatchesBisection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, net := range Networks {
		for trial := 0; trial < 100; trial++ {
			m := 1 + rng.Intn(24)
			in := DefaultRandomInstance(rng, net, m)
			closed, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			solved, err := SolveBisect(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range closed {
				if math.Abs(closed[i]-solved[i]) > 1e-7 {
					t.Errorf("%v m=%d: α[%d] closed=%v bisect=%v", net, m, i, closed[i], solved[i])
				}
			}
		}
	}
}

// TestOptimalBeatsBaselines: the DLT-optimal makespan is never worse than
// equal-split or speed-proportional split.
func TestOptimalBeatsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, net := range Networks {
		for trial := 0; trial < 100; trial++ {
			m := 2 + rng.Intn(16)
			in := DefaultRandomInstance(rng, net, m)
			if !DistributionBeneficial(in) {
				// Outside the z < w_m regime the paper's NFE allocation
				// is not globally optimal; see Optimal's doc comment.
				continue
			}
			_, opt, err := OptimalMakespan(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, a := range map[string]Allocation{
				"equal":        EqualSplit(m),
				"proportional": ProportionalSplit(in.W),
			} {
				ms, err := Makespan(in, a)
				if err != nil {
					t.Fatal(err)
				}
				if opt > ms*(1+1e-9) {
					t.Errorf("%v m=%d: optimal %v worse than %s %v", net, m, opt, name, ms)
				}
			}
		}
	}
}

func TestMakespanWithSpeeds(t *testing.T) {
	in := Instance{Network: NCPFE, Z: 1, W: []float64{2, 3}}
	a := Allocation{2.0 / 3, 1.0 / 3}
	// Slow processor 2 down to w=6: T2 = 1/3 + 2 = 7/3 > T1 = 4/3.
	ms, err := MakespanWithSpeeds(in, a, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, 7.0/3) > tol {
		t.Errorf("makespan with slowed speeds = %v, want 7/3", ms)
	}
	if _, err := MakespanWithSpeeds(in, a, []float64{2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFinishSpreadIgnoresZeroFractions(t *testing.T) {
	in := Instance{Network: CP, Z: 1, W: []float64{2, 2, 2}}
	// Processor 3 gets nothing; its early finish must not count.
	a := Allocation{0.5, 0.5, 0}
	spread, err := FinishSpread(in, a)
	if err != nil {
		t.Fatal(err)
	}
	// T1 = 0.5 + 1 = 1.5, T2 = 1 + 1 = 2 ⇒ spread 0.5.
	if relErr(spread, 0.5) > tol {
		t.Errorf("spread = %v, want 0.5", spread)
	}
	zero := Allocation{0, 0, 0}
	s0, err := FinishSpread(in, zero)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 {
		t.Errorf("spread of all-zero allocation = %v, want 0", s0)
	}
}

func TestSpeedupAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, net := range Networks {
		for trial := 0; trial < 50; trial++ {
			in := DefaultRandomInstance(rng, net, 1+rng.Intn(16))
			if !DistributionBeneficial(in) {
				continue
			}
			a, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Speedup(in, a)
			if err != nil {
				t.Fatal(err)
			}
			if s < 1-1e-9 {
				t.Errorf("%v: optimal speedup %v < 1", net, s)
			}
		}
	}
}

func TestSingleProcessorAllocation(t *testing.T) {
	a := SingleProcessor(4, 2)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	if a[2] != 1 {
		t.Errorf("SingleProcessor(4,2) = %v", a)
	}
}

// TestNFEDistributionRegime pins down the z vs w_m boundary documented on
// Optimal: below it the paper's all-participate allocation beats the
// originator working alone, above it the solo originator wins.
func TestNFEDistributionRegime(t *testing.T) {
	w := []float64{2, 2, 2}
	for _, tc := range []struct {
		z          float64
		distribute bool
	}{
		{0.5, true}, {1.9, true}, {2.5, false}, {10, false},
	} {
		in := Instance{Network: NCPNFE, Z: tc.z, W: w}
		if got := DistributionBeneficial(in); got != tc.distribute {
			t.Errorf("z=%v: DistributionBeneficial=%v, want %v", tc.z, got, tc.distribute)
		}
		_, dist, err := OptimalMakespan(in)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := Makespan(in, SingleProcessor(3, 2))
		if err != nil {
			t.Fatal(err)
		}
		if tc.distribute && dist > solo+tol {
			t.Errorf("z=%v: distribution %v worse than solo %v in beneficial regime", tc.z, dist, solo)
		}
		if !tc.distribute && solo > dist+tol {
			t.Errorf("z=%v: solo %v worse than distribution %v outside beneficial regime", tc.z, solo, dist)
		}
	}
	// CP and NCP-FE are always beneficial.
	if !DistributionBeneficial(Instance{Network: CP, Z: 100, W: w}) {
		t.Error("CP flagged as non-beneficial")
	}
	if !DistributionBeneficial(Instance{Network: NCPFE, Z: 100, W: w}) {
		t.Error("NCP-FE flagged as non-beneficial")
	}
	if !DistributionBeneficial(Instance{Network: NCPNFE, Z: 100, W: []float64{1}}) {
		t.Error("single-processor NFE flagged as non-beneficial")
	}
}

// TestOptimalGlobal: inside the regime it matches Optimal; outside (NFE,
// z ≥ w_m) it keeps the load on the originator and beats Algorithm 2.2.
func TestOptimalGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		net := Networks[trial%3]
		in := DefaultRandomInstance(rng, net, 2+rng.Intn(10))
		g, err := OptimalGlobal(in)
		if err != nil {
			t.Fatal(err)
		}
		gms, err := Makespan(in, g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		pms, err := Makespan(in, p)
		if err != nil {
			t.Fatal(err)
		}
		if DistributionBeneficial(in) {
			if relErr(gms, pms) > tol {
				t.Errorf("%v: global %v != paper %v in beneficial regime", net, gms, pms)
			}
		} else {
			if gms > pms+tol {
				t.Errorf("%v: global %v worse than paper %v outside the regime", net, gms, pms)
			}
			if relErr(gms, in.W[in.M()-1]) > tol {
				t.Errorf("solo originator makespan %v, want w_m=%v", gms, in.W[in.M()-1])
			}
		}
	}
	if _, err := OptimalGlobal(Instance{Network: CP, Z: -1, W: []float64{1}}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestCPAndNCPFEShareFractions(t *testing.T) {
	// The CP and NCP-FE recursions coincide (same k_i), so the optimal
	// fractions are identical even though the makespans differ.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(10)
		cp := DefaultRandomInstance(rng, CP, m)
		fe := cp.Clone()
		fe.Network = NCPFE
		aCP, err := Optimal(cp)
		if err != nil {
			t.Fatal(err)
		}
		aFE, err := Optimal(fe)
		if err != nil {
			t.Fatal(err)
		}
		for i := range aCP {
			if relErr(aCP[i], aFE[i]) > tol {
				t.Fatalf("fractions differ at %d: %v vs %v", i, aCP[i], aFE[i])
			}
		}
		msCP, _ := Makespan(cp, aCP)
		msFE, _ := Makespan(fe, aFE)
		if msFE >= msCP {
			t.Errorf("NCP-FE makespan %v not better than CP %v (front end should help)", msFE, msCP)
		}
	}
}
