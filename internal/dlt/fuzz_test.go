package dlt

import (
	"math"
	"testing"
)

// Fuzz targets. Run with `go test -fuzz=FuzzOptimal ./internal/dlt`; the
// seed corpus below executes on every ordinary `go test`.

// FuzzOptimal: for any decoded valid instance, Optimal returns a feasible
// allocation with equal finishing times, consistent with the bisection
// solver.
func FuzzOptimal(f *testing.F) {
	f.Add(uint8(0), uint8(3), 0.2, 1.0, 2.0, 3.0)
	f.Add(uint8(1), uint8(5), 0.01, 5.0, 0.5, 1.5)
	f.Add(uint8(2), uint8(2), 1.5, 2.0, 2.0, 2.0)
	f.Add(uint8(0), uint8(1), 0.0, 0.1, 7.0, 0.9)
	f.Fuzz(func(t *testing.T, netRaw, mRaw uint8, z, w1, w2, w3 float64) {
		net := Networks[int(netRaw)%len(Networks)]
		m := 1 + int(mRaw)%12
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0 || z > 1e6 {
			t.Skip()
		}
		seedW := []float64{w1, w2, w3}
		w := make([]float64, m)
		for i := range w {
			v := seedW[i%3]
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 1e-6 || v > 1e6 {
				t.Skip()
			}
			w[i] = v * (1 + float64(i)*0.1)
		}
		in := Instance{Network: net, Z: z, W: w}
		a, err := Optimal(in)
		if err != nil {
			t.Fatalf("Optimal rejected a valid instance: %v", err)
		}
		if err := a.Validate(m); err != nil {
			t.Fatalf("infeasible allocation: %v (instance %+v)", err, in)
		}
		spread, err := FinishSpread(in, a)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := Makespan(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if spread > 1e-7*math.Max(ms, 1) {
			t.Fatalf("finish spread %v at makespan %v (instance %+v)", spread, ms, in)
		}
		b, err := SolveBisect(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-5 {
				t.Fatalf("closed form %v vs bisect %v at %d (instance %+v)", a[i], b[i], i, in)
			}
		}
	})
}

// FuzzLinear: the chain solver equalizes finish times for any valid
// instance.
func FuzzLinear(f *testing.F) {
	f.Add(uint8(3), 0.2, 1.0, 2.0)
	f.Add(uint8(7), 0.9, 0.5, 4.0)
	f.Fuzz(func(t *testing.T, mRaw uint8, z, w1, w2 float64) {
		m := 1 + int(mRaw)%16
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0 || z > 1e6 {
			t.Skip()
		}
		for _, v := range []float64{w1, w2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 1e-6 || v > 1e6 {
				t.Skip()
			}
		}
		w := make([]float64, m)
		for i := range w {
			if i%2 == 0 {
				w[i] = w1
			} else {
				w[i] = w2
			}
		}
		l := LinearInstance{Z: z, W: w}
		a, ms, err := OptimalLinearMakespan(l)
		if err != nil {
			t.Fatalf("OptimalLinear rejected valid instance: %v", err)
		}
		ft, err := LinearFinishTimes(l, a)
		if err != nil {
			t.Fatal(err)
		}
		for i, ti := range ft {
			if math.Abs(ti-ms) > 1e-7*math.Max(ms, 1) {
				t.Fatalf("T[%d]=%v, makespan %v", i, ti, ms)
			}
		}
	})
}
