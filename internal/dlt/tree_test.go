package dlt

import (
	"math"
	"math/rand"
	"testing"
)

func leaf(w, z float64) *Tree { return &Tree{W: w, Z: z} }

func randomTree(rng *rand.Rand, depth, maxFanout int) *Tree {
	t := &Tree{
		W: 0.5 + rng.Float64()*7.5,
		Z: 0.02 + rng.Float64()*0.3,
	}
	if depth <= 1 {
		return t
	}
	fanout := 1 + rng.Intn(maxFanout)
	for i := 0; i < fanout; i++ {
		t.Children = append(t.Children, randomTree(rng, depth-1, maxFanout))
	}
	return t
}

func TestTreeValidate(t *testing.T) {
	good := &Tree{W: 1, Children: []*Tree{leaf(2, 0.1)}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilTree *Tree
	if err := nilTree.Validate(); err == nil {
		t.Error("nil tree accepted")
	}
	bad := []*Tree{
		{W: 0},
		{W: 1, Children: []*Tree{{W: 2, Z: -0.1}}},
		{W: 1, Children: []*Tree{nil}},
		{W: 1, Children: []*Tree{{W: math.Inf(1), Z: 0.1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Root's Z is ignored even if odd.
	rootZ := &Tree{W: 1, Z: -5, Children: []*Tree{leaf(1, 0.1)}}
	if err := rootZ.Validate(); err != nil {
		t.Errorf("root link time should be ignored: %v", err)
	}
}

func TestTreeSizeDepth(t *testing.T) {
	tr := &Tree{W: 1, Children: []*Tree{
		{W: 2, Z: 0.1, Children: []*Tree{leaf(3, 0.1), leaf(4, 0.1)}},
		leaf(5, 0.2),
	}}
	if tr.Size() != 5 {
		t.Errorf("size = %d, want 5", tr.Size())
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
	if leaf(1, 0).Depth() != 1 {
		t.Error("leaf depth != 1")
	}
}

// TestTreeLeafEquivalent: a lone node's equivalent time is its own W.
func TestTreeLeafEquivalent(t *testing.T) {
	eq, err := leaf(3, 0.5).EquivalentW()
	if err != nil {
		t.Fatal(err)
	}
	if eq != 3 {
		t.Errorf("leaf equivalent = %v, want 3", eq)
	}
}

// TestTreeDepthOneMatchesStar: a root with leaf children is exactly a
// star with a computing root.
func TestTreeDepthOneMatchesStar(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		tr := &Tree{W: 0.5 + rng.Float64()*5}
		star := StarInstance{RootW: tr.W}
		for i := 0; i < n; i++ {
			c := leaf(0.5+rng.Float64()*5, 0.02+rng.Float64()*0.3)
			tr.Children = append(tr.Children, c)
			star.Z = append(star.Z, c.Z)
			star.W = append(star.W, c.W)
		}
		eq, err := tr.EquivalentW()
		if err != nil {
			t.Fatal(err)
		}
		_, _, starMS, err := OptimalStarOrder(star)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(eq, starMS) > 1e-9 {
			t.Errorf("tree equivalent %v, star optimum %v", eq, starMS)
		}
	}
}

// TestOptimalTreeConservesLoad: fractions are non-negative and sum to 1.
func TestOptimalTreeConservesLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(rng, 1+rng.Intn(4), 3)
		alloc, ms, err := OptimalTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(alloc) != tr.Size() {
			t.Fatalf("allocation has %d entries for %d nodes", len(alloc), tr.Size())
		}
		var sum float64
		for i, a := range alloc {
			if a < -1e-12 {
				t.Errorf("negative fraction %v at node %d", a, i)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("fractions sum to %v", sum)
		}
		if !(ms > 0) {
			t.Errorf("non-positive makespan %v", ms)
		}
	}
}

// TestTreeSelfSimilarity: the makespan on load L equals L times the
// equivalent unit time — the homogeneity the reduction relies on.
func TestTreeSelfSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	tr := randomTree(rng, 3, 3)
	eq, err := tr.EquivalentW()
	if err != nil {
		t.Fatal(err)
	}
	_, ms, err := OptimalTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, eq) > 1e-9 {
		t.Errorf("unit makespan %v != equivalent W %v", ms, eq)
	}
	check, err := TreeFinishCheck(tr, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(check, 2.5*eq) > 1e-12 {
		t.Errorf("TreeFinishCheck(2.5) = %v, want %v", check, 2.5*eq)
	}
}

// TestTreeConsistencyBottomUp: the head's local star over equivalent
// children reproduces the subtree fractions: each subtree's total
// assigned load equals its fraction in the parent's local star.
func TestTreeConsistencyBottomUp(t *testing.T) {
	tr := &Tree{W: 1, Children: []*Tree{
		{W: 1.5, Z: 0.1, Children: []*Tree{leaf(2, 0.05), leaf(2.5, 0.1)}},
		leaf(3, 0.2),
	}}
	alloc, _, err := OptimalTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-order: [root, sub-head, leaf(2), leaf(2.5), leaf(3)].
	subTotal := alloc[1] + alloc[2] + alloc[3]
	star, err := tr.localStar()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := OptimalStar(star)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(alloc[0], sa.Root) > 1e-9 {
		t.Errorf("root fraction %v, star says %v", alloc[0], sa.Root)
	}
	// The subtree (z=0.1) is served before leaf(3) (z=0.2) in the sorted
	// local star, so star child 0 is the subtree.
	if relErr(subTotal, sa.Children[0]) > 1e-9 {
		t.Errorf("subtree total %v, star says %v", subTotal, sa.Children[0])
	}
}

// TestTreeFlatteningHelps: distributing beats the root working alone, and
// adding a second level of helpers beats the bare root-with-children when
// the grandchildren have capacity worth the extra hop.
func TestTreeHierarchyValue(t *testing.T) {
	root := &Tree{W: 2, Children: []*Tree{
		{W: 2, Z: 0.05},
		{W: 2, Z: 0.05},
	}}
	_, flat, err := OptimalTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if flat >= 2 {
		t.Errorf("distribution did not beat the lone root: %v", flat)
	}
	deep := &Tree{W: 2, Children: []*Tree{
		{W: 2, Z: 0.05, Children: []*Tree{leaf(2, 0.05), leaf(2, 0.05)}},
		{W: 2, Z: 0.05, Children: []*Tree{leaf(2, 0.05), leaf(2, 0.05)}},
	}}
	_, deepMS, err := OptimalTree(deep)
	if err != nil {
		t.Fatal(err)
	}
	if deepMS >= flat {
		t.Errorf("second level did not help: deep %v vs flat %v", deepMS, flat)
	}
}

func TestOptimalTreeValidation(t *testing.T) {
	if _, _, err := OptimalTree(&Tree{W: 0}); err == nil {
		t.Error("invalid tree accepted")
	}
	if _, err := (&Tree{W: 0}).EquivalentW(); err == nil {
		t.Error("invalid tree accepted by EquivalentW")
	}
	if _, err := TreeFinishCheck(&Tree{W: 0}, 1); err == nil {
		t.Error("invalid tree accepted by TreeFinishCheck")
	}
}
