package dlt

import (
	"errors"
	"fmt"
	"math"
)

// Multi-round extension. Single-round bus scheduling forces the last
// processor to idle until its entire fraction arrives. Splitting the load
// into R installments lets every processor start on a small chunk early —
// the idea behind the multi-round algorithms the paper cites as related
// work (Yang, van der Raadt & Casanova). This module provides a
// simulation-exact multi-round schedule builder used by the ablation
// benches; it supports the CP and NCP-FE classes (the NFE originator
// cannot overlap transmission with computation, so multi-round degenerates
// to single-round there).

// RoundPolicy chooses how the unit load is divided across rounds.
type RoundPolicy int

const (
	// EqualRounds gives every round the same total fraction 1/R.
	EqualRounds RoundPolicy = iota
	// GeometricRounds makes round r+1 twice the size of round r, so early
	// rounds are small (fast pipeline fill) and later rounds amortize.
	GeometricRounds
)

// String names the policy.
func (p RoundPolicy) String() string {
	if p == EqualRounds {
		return "equal"
	}
	return "geometric"
}

// MultiRound builds an R-round schedule: each round's total fraction is
// chosen by the policy and split across processors in the single-round
// optimal proportions. Within a round the bus serves processors in index
// order; a processor executes chunks in arrival order, back-to-back when
// possible. Returns the explicit timeline.
func MultiRound(in Instance, rounds int, policy RoundPolicy) (Timeline, error) {
	if err := in.Validate(); err != nil {
		return Timeline{}, err
	}
	if rounds < 1 {
		return Timeline{}, errors.New("dlt: rounds must be >= 1")
	}
	if in.Network == NCPNFE {
		return Timeline{}, errors.New("dlt: multi-round requires an overlapping originator (CP or NCP-FE)")
	}
	per, err := roundFractions(rounds, policy)
	if err != nil {
		return Timeline{}, err
	}
	prop, err := Optimal(in)
	if err != nil {
		return Timeline{}, err
	}
	m := in.M()
	tl := Timeline{Instance: in.Clone()}
	bus := 0.0
	procFree := make([]float64, m)
	for r := 0; r < rounds; r++ {
		for i := 0; i < m; i++ {
			frac := per[r] * prop[i]
			if frac == 0 {
				continue
			}
			arrival := 0.0
			if in.Network == NCPFE && i == 0 {
				// The originator's chunk never crosses the bus.
			} else {
				end := bus + in.Z*frac
				tl.Spans = append(tl.Spans, Span{Proc: i, Kind: Comm, Start: bus, End: end, Frac: frac, Round: r, BusOwner: true})
				bus = end
				arrival = end
			}
			start := math.Max(arrival, procFree[i])
			end := start + in.W[i]*frac
			tl.Spans = append(tl.Spans, Span{Proc: i, Kind: Comp, Start: start, End: end, Frac: frac, Round: r})
			procFree[i] = end
		}
	}
	for _, s := range tl.Spans {
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}

func roundFractions(rounds int, policy RoundPolicy) ([]float64, error) {
	per := make([]float64, rounds)
	switch policy {
	case EqualRounds:
		for r := range per {
			per[r] = 1 / float64(rounds)
		}
	case GeometricRounds:
		// per[r] ∝ 2^r, normalized.
		total := math.Exp2(float64(rounds)) - 1
		for r := range per {
			per[r] = math.Exp2(float64(r)) / total
		}
	default:
		return nil, fmt.Errorf("dlt: unknown round policy %d", int(policy))
	}
	return per, nil
}
