package dlt

import (
	"errors"
	"fmt"
	"math"
)

// Multi-round extension. Single-round bus scheduling forces the last
// processor to idle until its entire fraction arrives. Splitting the load
// into R installments lets every processor start on a small chunk early —
// the idea behind the multi-round algorithms the paper cites as related
// work (Yang, van der Raadt & Casanova). This module provides a
// simulation-exact multi-round schedule builder; it supports the CP and
// NCP-FE classes (the NFE originator cannot overlap transmission with
// computation, so multi-round degenerates to single-round there). The
// builder is shared by the ablation benches and, since the pipelined
// scheduler landed, by the distributed protocol's installment rounds.

// RoundPolicy chooses how the unit load is divided across rounds.
type RoundPolicy int

const (
	// EqualRounds gives every round the same total fraction 1/R.
	EqualRounds RoundPolicy = iota
	// GeometricRounds makes round r+1 twice the size of round r, so early
	// rounds are small (fast pipeline fill) and later rounds amortize.
	GeometricRounds
)

// String names the policy.
func (p RoundPolicy) String() string {
	if p == EqualRounds {
		return "equal"
	}
	return "geometric"
}

// ParseRoundPolicy maps a policy name ("equal" or "geometric") back to
// its RoundPolicy, the inverse of String.
func ParseRoundPolicy(s string) (RoundPolicy, error) {
	switch s {
	case "equal":
		return EqualRounds, nil
	case "geometric":
		return GeometricRounds, nil
	}
	return 0, fmt.Errorf("dlt: unknown round policy %q", s)
}

// InstallmentFeasible reports whether a load on the given network class
// can be served in the given number of installment rounds. Any network
// accepts a single round; more than one requires an originator that
// overlaps transmission with computation (CP or NCP-FE).
func InstallmentFeasible(n Network, rounds int) error {
	if rounds < 1 {
		return errors.New("dlt: rounds must be >= 1")
	}
	if rounds > 1 && n == NCPNFE {
		return errors.New("dlt: multi-round requires an overlapping originator (CP or NCP-FE)")
	}
	return nil
}

// MultiRound builds an R-round schedule: each round's total fraction is
// chosen by the policy and split across processors in the single-round
// optimal proportions. Within a round the bus serves processors in index
// order; a processor executes chunks in arrival order, back-to-back when
// possible. Returns the explicit timeline.
func MultiRound(in Instance, rounds int, policy RoundPolicy) (Timeline, error) {
	prop, err := Optimal(in)
	if err != nil {
		return Timeline{}, err
	}
	return MultiRoundSchedule(in, prop, rounds, policy)
}

// MultiRoundSchedule builds the R-round timeline for an explicit
// per-processor allocation (fractions summing to 1). MultiRound is the
// common case of the single-round optimal allocation; the pipelined
// protocol passes the realized allocation from a live round instead.
func MultiRoundSchedule(in Instance, a Allocation, rounds int, policy RoundPolicy) (Timeline, error) {
	if err := in.Validate(); err != nil {
		return Timeline{}, err
	}
	if err := InstallmentFeasible(in.Network, rounds); err != nil {
		return Timeline{}, err
	}
	if len(a) != in.M() {
		return Timeline{}, fmt.Errorf("dlt: allocation has %d entries for %d processors", len(a), in.M())
	}
	per, err := RoundFractions(rounds, policy)
	if err != nil {
		return Timeline{}, err
	}
	m := in.M()
	tl := Timeline{Instance: in.Clone()}
	bus := 0.0
	procFree := make([]float64, m)
	for r := 0; r < rounds; r++ {
		for i := 0; i < m; i++ {
			frac := per[r] * a[i]
			if frac == 0 {
				continue
			}
			arrival := 0.0
			if in.Network == NCPFE && i == 0 {
				// The originator's chunk never crosses the bus.
			} else {
				end := bus + in.Z*frac
				tl.Spans = append(tl.Spans, Span{Proc: i, Kind: Comm, Start: bus, End: end, Frac: frac, Round: r, BusOwner: true})
				bus = end
				arrival = end
			}
			start := math.Max(arrival, procFree[i])
			end := start + in.W[i]*frac
			tl.Spans = append(tl.Spans, Span{Proc: i, Kind: Comp, Start: start, End: end, Frac: frac, Round: r})
			procFree[i] = end
		}
	}
	for _, s := range tl.Spans {
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}

// PipelinedAllocation computes the steady-state throughput-optimal load
// split for installment pipelining: the allocation minimizing the
// bottleneck resource occupancy per load, max(bus time, max_i w_i·α_i).
// In the single-round optimum the first-served processor computes for the
// entire makespan, so back-to-back loads leave a pipelined scheduler no
// room to improve; the balanced allocation instead equalizes per-load
// busy time across processors (α_i ∝ 1/w_i) — the steady-state principle
// of the multi-load literature (Gallet, Robert & Vivien; Cao, Wu &
// Robertazzi) — shrinking the bottleneck per-load cost toward the fluid
// bound 1/Σ(1/w_i). When the bus is the scarce resource (z·Σ_{i≠0}1/w_i
// > 1 on NCP-FE), the originator absorbs load until its computation and
// the bus drain in lockstep.
func PipelinedAllocation(in Instance) (Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Network == NCPNFE {
		return nil, errors.New("dlt: pipelined allocation requires an overlapping originator (CP or NCP-FE)")
	}
	m := in.M()
	a := make(Allocation, m)
	if in.Network == NCPFE {
		s := 0.0
		for i := 1; i < m; i++ {
			s += 1 / in.W[i]
		}
		if in.Z*s <= 1 {
			// Compute-bound: every processor, originator included, works
			// the same per-load time t = 1/Σ(1/w_i); the bus drains its
			// z·(1−α_0) within t.
			t := 1 / (1/in.W[0] + s)
			for i := range a {
				a[i] = t / in.W[i]
			}
		} else {
			// Bus-bound: the originator takes load until its computation
			// w_0·α_0 matches the bus's z·(1−α_0); the rest splits ∝ 1/w.
			a[0] = in.Z / (in.W[0] + in.Z)
			for i := 1; i < m; i++ {
				a[i] = (1 - a[0]) / (in.W[i] * s)
			}
		}
	} else {
		// CP: no computing originator; balancing the workers' busy times
		// gives α_i ∝ 1/w_i in both the compute- and bus-bound cases.
		s := 0.0
		for i := range a {
			s += 1 / in.W[i]
		}
		for i := range a {
			a[i] = 1 / (in.W[i] * s)
		}
	}
	sum := 0.0
	for _, x := range a {
		sum += x
	}
	for i := range a {
		a[i] /= sum
	}
	return a, nil
}

// MultiRoundMakespanWithSpeeds evaluates the R-installment greedy
// schedule's makespan for a FIXED allocation when the processors execute
// at the given speeds (communication still at the instance's bids-derived
// fractions and bus rate). This is the multi-round analogue of
// MakespanWithSpeeds, used by the payment rule's realized-makespan term.
func MultiRoundMakespanWithSpeeds(in Instance, a Allocation, rounds int, policy RoundPolicy, speeds []float64) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if err := InstallmentFeasible(in.Network, rounds); err != nil {
		return 0, err
	}
	m := in.M()
	if len(a) != m || len(speeds) != m {
		return 0, fmt.Errorf("dlt: allocation/speeds have %d/%d entries for %d processors", len(a), len(speeds), m)
	}
	per, err := RoundFractions(rounds, policy)
	if err != nil {
		return 0, err
	}
	run := in.Clone()
	run.W = append([]float64(nil), speeds...)
	f := make([]float64, m)
	multiRoundFinishes(run, a, per, f)
	t := 0.0
	for _, fi := range f {
		if fi > t {
			t = fi
		}
	}
	return t, nil
}

// multiRoundFinishes fills f with each processor's finish time in the
// greedy installment schedule — the span-free core of MultiRoundSchedule,
// tight enough to sit inside MultiRoundOptimal's fixed-point loop.
func multiRoundFinishes(in Instance, a Allocation, per []float64, f []float64) {
	bus := 0.0
	for i := range f {
		f[i] = 0
	}
	for _, p := range per {
		for i := 0; i < in.M(); i++ {
			frac := p * a[i]
			if frac == 0 {
				continue
			}
			arrival := 0.0
			if !(in.Network == NCPFE && i == 0) {
				bus += in.Z * frac
				arrival = bus
			}
			start := math.Max(arrival, f[i])
			f[i] = start + in.W[i]*frac
		}
	}
}

// RoundFractions returns the per-round load fractions for the policy:
// rounds entries, each positive, summing to 1.
func RoundFractions(rounds int, policy RoundPolicy) ([]float64, error) {
	if rounds < 1 {
		return nil, errors.New("dlt: rounds must be >= 1")
	}
	per := make([]float64, rounds)
	switch policy {
	case EqualRounds:
		for r := range per {
			per[r] = 1 / float64(rounds)
		}
	case GeometricRounds:
		// per[r] ∝ 2^r, normalized.
		total := math.Exp2(float64(rounds)) - 1
		for r := range per {
			per[r] = math.Exp2(float64(r)) / total
		}
	default:
		return nil, fmt.Errorf("dlt: unknown round policy %d", int(policy))
	}
	return per, nil
}
