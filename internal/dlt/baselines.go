package dlt

// Baseline allocators. Classical DLT motivates the optimal split by
// comparing against obvious heuristics; experiment E11 reproduces that
// comparison (optimal vs equal vs speed-proportional makespan).

// EqualSplit assigns every processor the same fraction 1/m.
func EqualSplit(m int) Allocation {
	a := make(Allocation, m)
	for i := range a {
		a[i] = 1 / float64(m)
	}
	return a
}

// ProportionalSplit assigns fractions proportional to processing speed
// 1/w_i, the natural heuristic that ignores communication: a processor
// twice as fast receives twice the load.
func ProportionalSplit(w []float64) Allocation {
	a := make(Allocation, len(w))
	var sum float64
	for i, wi := range w {
		a[i] = 1 / wi
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	return a
}

// SingleProcessor assigns the whole load to processor i. For CP the
// makespan is z + w_i; for an NCP originator it is just w_i. Used as the
// "no distribution" reference point in the scaling experiments.
func SingleProcessor(m, i int) Allocation {
	a := make(Allocation, m)
	a[i] = 1
	return a
}

// Speedup returns the ratio between the best single-processor makespan and
// the makespan of allocation a on the instance: the classical DLT speedup
// metric plotted in the cluster-sweep experiment.
func Speedup(in Instance, a Allocation) (float64, error) {
	t, err := Makespan(in, a)
	if err != nil {
		return 0, err
	}
	best := -1.0
	for i := range in.W {
		si, err := Makespan(in, SingleProcessor(in.M(), i))
		if err != nil {
			return 0, err
		}
		if best < 0 || si < best {
			best = si
		}
	}
	return best / t, nil
}
