package dlt

import (
	"math"
	"testing"
)

// Classical closed-form checkpoints from the DLT literature (Bharadwaj et
// al.; Robertazzi, "Ten Reasons to Use Divisible Load Theory"). These pin
// the implementation against formulas derived independently of the code.

// TestGeometricAllocationIdenticalProcessors: on a CP bus with identical
// processors, the ratio recursion gives α_{i+1}/α_i = k = w/(z+w), so the
// optimal fractions form a geometric sequence α_i = α_1·k^{i-1} with
// α_1 = (1−k)/(1−k^m).
func TestGeometricAllocationIdenticalProcessors(t *testing.T) {
	const (
		w = 2.0
		z = 0.5
		m = 9
	)
	in := Instance{Network: CP, Z: z, W: make([]float64, m)}
	for i := range in.W {
		in.W[i] = w
	}
	a, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	k := w / (z + w)
	alpha1 := (1 - k) / (1 - math.Pow(k, m))
	for i := 0; i < m; i++ {
		want := alpha1 * math.Pow(k, float64(i))
		if relErr(a[i], want) > 1e-12 {
			t.Errorf("α[%d] = %v, closed form %v", i, a[i], want)
		}
	}
	// Makespan: T = T_1 = (z+w)·α_1 for the CP bus.
	ms, err := Makespan(in, a)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ms, (z+w)*alpha1) > 1e-12 {
		t.Errorf("makespan %v, closed form %v", ms, (z+w)*alpha1)
	}
}

// TestSpeedupSaturation: as m → ∞ on a CP bus with identical processors
// the speedup saturates at σ = (z+w)/z = 1 + w/z — adding processors
// beyond the bus's capacity to feed them is useless (one of Robertazzi's
// "ten reasons" results). We check both the monotone approach and the
// bound.
func TestSpeedupSaturation(t *testing.T) {
	const (
		w = 2.0
		z = 0.25
	)
	limit := 1 + w/z // = 9
	prev := 0.0
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		in := Instance{Network: CP, Z: z, W: make([]float64, m)}
		for i := range in.W {
			in.W[i] = w
		}
		a, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Speedup(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-1e-9 {
			t.Errorf("m=%d: speedup %v fell below m/2's %v", m, s, prev)
		}
		if s > limit+1e-9 {
			t.Errorf("m=%d: speedup %v exceeds the saturation bound %v", m, s, limit)
		}
		prev = s
	}
	// At m=256 and k=w/(z+w)=8/9 the geometric tail has essentially
	// vanished: the speedup must be within 0.1% of the bound.
	if relErr(prev, limit) > 1e-3 {
		t.Errorf("speedup %v did not saturate to %v", prev, limit)
	}
}

// TestEqualFinishValueIdentity: the optimal CP makespan equals
// z·Σα + α_m·w_m evaluated at the last processor — both ends of the
// equal-finish chain must price the same schedule.
func TestEqualFinishValueIdentity(t *testing.T) {
	in := Instance{Network: CP, Z: 0.4, W: []float64{1, 2, 3, 4, 5}}
	a, ms, err := OptimalMakespan(in)
	if err != nil {
		t.Fatal(err)
	}
	first := in.Z*a[0] + a[0]*in.W[0]
	last := in.Z*a.Sum() + a[len(a)-1]*in.W[len(a)-1]
	if relErr(first, ms) > 1e-12 || relErr(last, ms) > 1e-12 {
		t.Errorf("chain ends disagree: first %v, last %v, makespan %v", first, last, ms)
	}
}

// TestNCPFEOriginatorAdvantage: on otherwise identical hardware, the
// NCP-FE makespan is smaller than CP's by exactly the bus time of the
// originator's own fraction being off the wire plus the rebalancing —
// concretely, NCP-FE ≤ CP − z·α_1^{CP} is NOT exact (the fractions
// rebalance), but NCP-FE < CP always, and both bracket the zero-z
// compute-bound limit 1/Σ(1/w).
func TestNCPFEOriginatorAdvantage(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	var inv float64
	for _, wi := range w {
		inv += 1 / wi
	}
	bound := 1 / inv
	for _, z := range []float64{0.05, 0.2, 0.5} {
		cp := Instance{Network: CP, Z: z, W: w}
		fe := Instance{Network: NCPFE, Z: z, W: w}
		_, cpMS, err := OptimalMakespan(cp)
		if err != nil {
			t.Fatal(err)
		}
		_, feMS, err := OptimalMakespan(fe)
		if err != nil {
			t.Fatal(err)
		}
		if !(feMS < cpMS) {
			t.Errorf("z=%v: NCP-FE %v not below CP %v", z, feMS, cpMS)
		}
		if feMS < bound-1e-12 || cpMS < bound-1e-12 {
			t.Errorf("z=%v: makespan beat the compute-bound limit %v", z, bound)
		}
	}
}
