package netbus

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteNodePrometheus renders a node's counters in Prometheus text
// exposition format 0.0.4 — the body of dls-node's -metrics-addr
// endpoint. The node_* namespace is deliberately separate from the
// service's dlsbl_* families: these are per-process datagram-plane
// counters, scraped per node, while dlsbl_* aggregates protocol-plane
// state at the driver.
func (n *Node) WriteNodePrometheus(w io.Writer) error {
	st := n.Stats()

	n.mu.Lock()
	type boxDepth struct {
		endpoint string
		depth    int
	}
	depths := make([]boxDepth, 0, len(n.boxes))
	for ep, box := range n.boxes {
		depths = append(depths, boxDepth{endpoint: ep, depth: len(box.queue)})
	}
	telemetryRecords, telemetryDropped := 0, 0
	if n.rec != nil {
		telemetryRecords = len(n.rec.RecordsSince(-1))
		telemetryDropped = n.rec.Dropped()
	}
	name := n.name
	n.mu.Unlock()
	sort.Slice(depths, func(i, j int) bool { return depths[i].endpoint < depths[j].endpoint })

	b := &strings.Builder{}
	family := func(metric, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
	}
	sample := func(metric, labels string, v float64) {
		if labels != "" {
			fmt.Fprintf(b, "%s{%s} %g\n", metric, labels, v)
		} else {
			fmt.Fprintf(b, "%s %g\n", metric, v)
		}
	}

	family("node_datagrams_in_total", "Datagrams received by this node, malformed ones included.", "counter")
	sample("node_datagrams_in_total", "", float64(st.DatagramsIn))
	family("node_datagrams_out_total", "Reply datagrams written by this node.", "counter")
	sample("node_datagrams_out_total", "", float64(st.DatagramsOut))
	family("node_resends_total", "Resent message frames recognized by frame-nonce dedup (the driver's ack was lost).", "counter")
	sample("node_resends_total", "", float64(st.DedupHits))
	family("node_decode_failures_total", "Datagrams rejected as malformed (bad magic/version, truncation, oversize, unknown endpoint).", "counter")
	sample("node_decode_failures_total", "", float64(st.BadFrames))
	family("node_enqueued_total", "Messages accepted into a mailbox.", "counter")
	sample("node_enqueued_total", "", float64(st.Enqueued))
	family("node_drains_total", "Drain requests answered.", "counter")
	sample("node_drains_total", "", float64(st.Drains))

	family("node_mailbox_depth", "Undrained messages queued per hosted endpoint.", "gauge")
	for _, d := range depths {
		sample("node_mailbox_depth", fmt.Sprintf("endpoint=%q", d.endpoint), float64(d.depth))
	}

	family("node_telemetry_records", "Trace records buffered awaiting a telemetry drain.", "gauge")
	sample("node_telemetry_records", "", float64(telemetryRecords))
	family("node_telemetry_dropped_total", "Trace records evicted by the telemetry buffer's cap.", "counter")
	sample("node_telemetry_dropped_total", "", float64(telemetryDropped))

	family("node_info", "Node identity; the value is always 1.", "gauge")
	sample("node_info", fmt.Sprintf("node=%q", name), 1)

	_, err := io.WriteString(w, b.String())
	return err
}
