package netbus

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"dlsbl/internal/bus"
	"dlsbl/internal/sig"
)

// sampleMsg builds one realistic delivery for framing tests.
func sampleMsg(t *testing.T) bus.Message {
	t.Helper()
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(42))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "dls/bid", map[string]any{"proc": "P1", "bid": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	return bus.Message{From: "P1", To: "*", Kind: "dls/bid", Size: 1, Nonce: 7, Env: env}
}

func TestFrameRoundTrip(t *testing.T) {
	msg := sampleMsg(t)
	frame := AppendMsgFrame(nil, 0xABCD, "w1", "P2", msg)
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Type != FtMsg || f.Nonce != 0xABCD || f.Node != "w1" {
		t.Errorf("header round-trip: %+v", f)
	}
	dest, got, err := DecodeMsgBody(f.Body)
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	if dest != "P2" {
		t.Errorf("dest = %q, want P2", dest)
	}
	if got.From != msg.From || got.To != msg.To || got.Kind != msg.Kind ||
		got.Size != msg.Size || got.Nonce != msg.Nonce || !got.Env.Equal(msg.Env) {
		t.Errorf("message round-trip:\n got  %+v\n want %+v", got, msg)
	}
}

func TestDrainRspRoundTrip(t *testing.T) {
	msg := sampleMsg(t)
	batch := []SeqMsg{{Seq: 3, Msg: msg}, {Seq: 4, Msg: msg}}
	frame := AppendDrainRspFrame(nil, 9, "w1", "P1", batch, true)
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagMore == 0 {
		t.Error("FlagMore lost in transit")
	}
	ep, got, err := DecodeDrainRspBody(f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ep != "P1" || len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Errorf("drain rsp round-trip: ep=%q got=%+v", ep, got)
	}
	if !got[1].Msg.Env.Equal(msg.Env) {
		t.Error("envelope mangled in drain batch")
	}
}

// TestTraceFrameRoundTrip pins the v2 trace-context extension: round,
// epoch and origin survive framing, and the body decodes exactly as an
// untraced message does.
func TestTraceFrameRoundTrip(t *testing.T) {
	msg := sampleMsg(t)
	frame := AppendMsgFrameTrace(nil, 0xBEEF, "w1", "P2", msg, "sdeadbeef:r3", "sdeadbeef:r3", 99)
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Version != Version || f.Flags&FlagTrace == 0 {
		t.Errorf("trace frame header: %+v", f)
	}
	if f.Round != "sdeadbeef:r3" || f.Epoch != "sdeadbeef:r3" || f.Origin != 99 {
		t.Errorf("trace context mangled: round=%q epoch=%q origin=%d", f.Round, f.Epoch, f.Origin)
	}
	dest, got, err := DecodeMsgBody(f.Body)
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	if dest != "P2" || got.Nonce != msg.Nonce || !got.Env.Equal(msg.Env) {
		t.Errorf("traced message round-trip: dest=%q got=%+v", dest, got)
	}
}

// TestLegacyFrameAccepted pins backward compatibility: a version-1
// datagram (the pre-telemetry wire) still parses, with its original
// version surfaced and no trace context.
func TestLegacyFrameAccepted(t *testing.T) {
	msg := sampleMsg(t)
	frame := AppendMsgFrame(nil, 0xABCD, "w1", "P2", msg)
	frame[4] = VersionLegacy
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if f.Version != VersionLegacy || f.Round != "" || f.Origin != 0 {
		t.Errorf("legacy frame header: %+v", f)
	}
	if _, _, err := DecodeMsgBody(f.Body); err != nil {
		t.Errorf("legacy body: %v", err)
	}
}

// TestTelemetryRoundTrip pins the v2 telemetry drain pair.
func TestTelemetryRoundTrip(t *testing.T) {
	req, err := DecodeFrame(AppendTelemetryFrame(nil, 11, "drv", 40))
	if err != nil {
		t.Fatal(err)
	}
	if req.Type != FtTelemetry {
		t.Fatalf("request type %d", req.Type)
	}
	ack, err := DecodeTelemetryBody(req.Body)
	if err != nil || ack != 40 {
		t.Fatalf("ackSeq = %d, err %v, want 40", ack, err)
	}
	lines := [][]byte{
		[]byte(`{"type":"event","name":"net_rx","seq":41}`),
		[]byte(`{"type":"event","name":"net_tx","seq":42}`),
	}
	rsp, err := DecodeFrame(AppendTelemetryRspFrame(nil, 11, "w1", lines, true))
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Type != FtTelemetryRsp || rsp.Flags&FlagMore == 0 {
		t.Fatalf("response header: %+v", rsp)
	}
	got, err := DecodeTelemetryRspBody(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != string(lines[0]) || string(got[1]) != string(lines[1]) {
		t.Errorf("telemetry lines round-trip: %q", got)
	}
}

// TestMalformedFrames pins every rejection class the receiver owes the
// wire: truncation (header and declared-length), oversize, bad magic,
// unknown version, unknown type, trailing garbage — plus the v2 rules
// (telemetry types and the trace flag do not exist in version 1, and
// the trace flag belongs to messages only).
func TestMalformedFrames(t *testing.T) {
	valid := AppendMsgFrame(nil, 1, "w1", "P1", sampleMsg(t))
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:headerFixed-1], ErrTruncated},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"future version", mutate(func(b []byte) []byte { b[4] = Version + 1; return b }), ErrBadVersion},
		{"zero version", mutate(func(b []byte) []byte { b[4] = 0; return b }), ErrBadVersion},
		{"unknown type", mutate(func(b []byte) []byte { b[5] = 0x7F; return b }), ErrWire},
		{"reserved set", mutate(func(b []byte) []byte { b[7] = 1; return b }), ErrWire},
		{"truncated body", valid[:len(valid)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xEE), ErrWire},
		{"oversize", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:12], MaxFrame+1)
			return b
		}), ErrOversize},
		{"v1 telemetry type", mutate(func(b []byte) []byte {
			b[4], b[5] = VersionLegacy, FtTelemetry
			return b
		}), ErrWire},
		{"v1 trace flag", mutate(func(b []byte) []byte {
			b[4], b[6] = VersionLegacy, FlagTrace
			return b
		}), ErrWire},
		{"trace flag on ping", func() []byte {
			b := AppendControlFrame(nil, FtPing, 1, "drv")
			b[6] = FlagTrace
			return b
		}(), ErrWire},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeFrame(tc.data)
			if err == nil {
				t.Fatal("malformed frame accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrWire) {
				t.Errorf("error %v does not wrap ErrWire", err)
			}
		})
	}
}

// TestMalformedBodies pins the body decoders' rejection paths: every
// cursor failure (truncation, non-minimal varints, absurd counts)
// surfaces as an ErrWire error, never a panic or a bogus value.
func TestMalformedBodies(t *testing.T) {
	msg := sampleMsg(t)
	frame := AppendMsgFrame(nil, 1, "w1", "P1", msg)
	f, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("msg truncated", func(t *testing.T) {
		for cut := 0; cut < len(f.Body); cut += 7 {
			if _, _, err := DecodeMsgBody(f.Body[:cut]); !errors.Is(err, ErrWire) {
				t.Errorf("cut at %d: err %v, want ErrWire", cut, err)
			}
		}
	})
	t.Run("msg non-minimal varint", func(t *testing.T) {
		// 0x82 0x00 is a two-byte encoding of 2 — legal LEB128, banned
		// here because it breaks the canonical-encoding fixpoint.
		body := append([]byte{0x82, 0x00}, f.Body[1:]...)
		if _, _, err := DecodeMsgBody(body); !errors.Is(err, ErrWire) {
			t.Errorf("non-minimal varint accepted: %v", err)
		}
	})
	t.Run("msg trailing garbage", func(t *testing.T) {
		body := append(append([]byte(nil), f.Body...), 0xAA)
		if _, _, err := DecodeMsgBody(body); !errors.Is(err, ErrWire) {
			t.Errorf("trailing garbage accepted: %v", err)
		}
	})
	t.Run("drain truncated", func(t *testing.T) {
		df, err := DecodeFrame(AppendDrainFrame(nil, 2, "drv", "P1", 5))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeDrainBody(df.Body[:1]); !errors.Is(err, ErrWire) {
			t.Errorf("truncated drain body accepted: %v", err)
		}
	})
	t.Run("drain rsp truncated", func(t *testing.T) {
		rf, err := DecodeFrame(AppendDrainRspFrame(nil, 3, "w1", "P1",
			[]SeqMsg{{Seq: 1, Msg: msg}}, false))
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(rf.Body); cut += 11 {
			if _, _, err := DecodeDrainRspBody(rf.Body[:cut]); !errors.Is(err, ErrWire) {
				t.Errorf("cut at %d: err %v, want ErrWire", cut, err)
			}
		}
	})
}

// rawNode boots a node and a raw UDP client socket for protocol-level
// poking below the Medium abstraction.
func rawNode(t *testing.T, endpoints ...string) (*Node, *net.UDPConn) {
	t.Helper()
	cfg := &Config{Nodes: map[string]NodeSpec{
		"n": {Addr: "127.0.0.1:0", Endpoints: endpoints},
	}}
	n, err := ListenNode(cfg, "n")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go n.Serve()
	t.Cleanup(func() { n.Close() })
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return n, c
}

// roundTrip sends one frame to the node and returns the decoded reply.
func roundTrip(t *testing.T, n *Node, c *net.UDPConn, frame []byte) Frame {
	t.Helper()
	if _, err := c.WriteTo(frame, n.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MaxFrame+1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	sz, _, err := c.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	f, err := DecodeFrame(buf[:sz])
	if err != nil {
		t.Fatalf("reply malformed: %v", err)
	}
	return f
}

// TestNodeResendDedup pins the ack-loss recovery: a resent FtMsg (same
// sender node + frame nonce) is acked again but enqueued once.
func TestNodeResendDedup(t *testing.T) {
	n, c := rawNode(t, "P1")
	msg := sampleMsg(t)
	frame := AppendMsgFrame(nil, 100, "drv", "P1", msg)
	for i := 0; i < 3; i++ {
		if f := roundTrip(t, n, c, frame); f.Type != FtAck || f.Nonce != 100 {
			t.Fatalf("attempt %d: reply %+v, want ack nonce 100", i, f)
		}
	}
	st := n.Stats()
	if st.Enqueued != 1 || st.DedupHits != 2 {
		t.Errorf("stats %+v, want Enqueued=1 DedupHits=2", st)
	}
}

// TestNodeDrainCumulativeAck pins the at-least-once drain protocol: a
// re-asked drain (lost response) re-serves the same batch; advancing
// the cumulative ack prunes it.
func TestNodeDrainCumulativeAck(t *testing.T) {
	n, c := rawNode(t, "P1")
	msg := sampleMsg(t)
	for i := uint64(1); i <= 3; i++ {
		roundTrip(t, n, c, AppendMsgFrame(nil, i, "drv", "P1", msg))
	}
	drain := func(ackSeq uint64) []SeqMsg {
		f := roundTrip(t, n, c, AppendDrainFrame(nil, 50+ackSeq, "drv", "P1", ackSeq))
		if f.Type != FtDrainRsp {
			t.Fatalf("reply %+v, want drain rsp", f)
		}
		_, batch, err := DecodeDrainRspBody(f.Body)
		if err != nil {
			t.Fatal(err)
		}
		return batch
	}
	if b := drain(0); len(b) != 3 {
		t.Fatalf("first drain: %d messages, want 3", len(b))
	}
	if b := drain(0); len(b) != 3 {
		t.Errorf("re-asked drain (lost response): %d messages, want the same 3", len(b))
	}
	if b := drain(3); len(b) != 0 {
		t.Errorf("drain after cumulative ack 3: %d messages, want 0", len(b))
	}
}

// TestNodeIgnoresForeignEndpoints: mail for an endpoint the node does
// not host is dropped without an ack — the driver's resend budget, not
// a misrouted mailbox, owns that failure.
func TestNodeIgnoresForeignEndpoints(t *testing.T) {
	n, c := rawNode(t, "P1")
	frame := AppendMsgFrame(nil, 7, "drv", "P9", sampleMsg(t))
	if _, err := c.WriteTo(frame, n.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := c.ReadFromUDP(buf); err == nil {
		t.Error("node acked mail for an endpoint it does not host")
	}
	if st := n.Stats(); st.BadFrames != 1 {
		t.Errorf("BadFrames = %d, want 1", st.BadFrames)
	}
}

// TestNodePingPong pins the liveness probe.
func TestNodePingPong(t *testing.T) {
	n, c := rawNode(t, "P1")
	if f := roundTrip(t, n, c, AppendControlFrame(nil, FtPing, 77, "drv")); f.Type != FtPong || f.Nonce != 77 {
		t.Errorf("ping reply %+v, want pong nonce 77", f)
	}
}
