package netbus_test

import (
	"bytes"
	"encoding/hex"
	"os"
	"strings"
	"testing"

	"dlsbl/internal/bus"
	"dlsbl/internal/netbus"
	"dlsbl/internal/sig"
)

// goldenHexFromDoc extracts the contents of the single ```hex fence in
// docs/WIRE.md — the normative golden frame.
func goldenHexFromDoc(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Fatalf("reading the wire spec: %v", err)
	}
	doc := string(raw)
	i := strings.Index(doc, "```hex\n")
	if i < 0 {
		t.Fatal("docs/WIRE.md has no ```hex fence — the golden example is gone")
	}
	rest := doc[i+len("```hex\n"):]
	j := strings.Index(rest, "```")
	if j < 0 {
		t.Fatal("docs/WIRE.md: unterminated ```hex fence")
	}
	compact := strings.NewReplacer("\n", "", " ", "", "\t", "").Replace(rest[:j])
	frame, err := hex.DecodeString(compact)
	if err != nil {
		t.Fatalf("docs/WIRE.md golden hex does not decode: %v", err)
	}
	return frame
}

// TestWireGoldenBytes keeps docs/WIRE.md honest: the golden frame
// embedded in the spec must be byte-identical to what the encoder
// produces for the documented inputs, and must decode back to them.
func TestWireGoldenBytes(t *testing.T) {
	golden := goldenHexFromDoc(t)

	// Reproduce the documented construction.
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(42))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "dls/bid", map[string]any{"bid": 1.5, "proc": "P1"})
	if err != nil {
		t.Fatal(err)
	}
	msg := bus.Message{From: "P1", To: "*", Kind: "dls/bid", Size: 1, Nonce: 7, Env: env}
	frame := netbus.AppendMsgFrame(nil, 0xC0FFEE, "w1", "P1", msg)

	if !bytes.Equal(frame, golden) {
		t.Fatalf("docs/WIRE.md golden frame drifted from the encoder:\n doc  %x\n code %x", golden, frame)
	}

	// And the documented frame decodes to the documented fields.
	f, err := netbus.DecodeFrame(golden)
	if err != nil {
		t.Fatalf("golden frame does not decode: %v", err)
	}
	if f.Type != netbus.FtMsg || f.Nonce != 0xC0FFEE || f.Node != "w1" {
		t.Errorf("golden header %+v, want FtMsg nonce=0xC0FFEE node=w1", f)
	}
	dest, m, err := netbus.DecodeMsgBody(f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dest != "P1" || m.From != "P1" || m.To != "*" || m.Kind != "dls/bid" || m.Nonce != 7 {
		t.Errorf("golden body: dest=%q msg=%+v", dest, m)
	}
	if string(m.Env.Payload) != `{"bid":1.5,"proc":"P1"}` {
		t.Errorf("golden payload %q", m.Env.Payload)
	}
}
