package netbus_test

import (
	"bytes"
	"encoding/hex"
	"os"
	"strings"
	"testing"

	"dlsbl/internal/bus"
	"dlsbl/internal/netbus"
	"dlsbl/internal/sig"
)

// goldenHexFromDoc extracts the contents of every ```hex fence in
// docs/WIRE.md, in document order — the normative golden frames (the
// current-version example first, the legacy example second).
func goldenHexFromDoc(t *testing.T) [][]byte {
	t.Helper()
	raw, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Fatalf("reading the wire spec: %v", err)
	}
	doc := string(raw)
	var frames [][]byte
	for {
		i := strings.Index(doc, "```hex\n")
		if i < 0 {
			break
		}
		doc = doc[i+len("```hex\n"):]
		j := strings.Index(doc, "```")
		if j < 0 {
			t.Fatal("docs/WIRE.md: unterminated ```hex fence")
		}
		compact := strings.NewReplacer("\n", "", " ", "", "\t", "").Replace(doc[:j])
		frame, err := hex.DecodeString(compact)
		if err != nil {
			t.Fatalf("docs/WIRE.md golden hex does not decode: %v", err)
		}
		frames = append(frames, frame)
		doc = doc[j:]
	}
	if len(frames) == 0 {
		t.Fatal("docs/WIRE.md has no ```hex fence — the golden examples are gone")
	}
	return frames
}

// goldenMsg reproduces the documented message construction.
func goldenMsg(t *testing.T) bus.Message {
	t.Helper()
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(42))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "dls/bid", map[string]any{"bid": 1.5, "proc": "P1"})
	if err != nil {
		t.Fatal(err)
	}
	return bus.Message{From: "P1", To: "*", Kind: "dls/bid", Size: 1, Nonce: 7, Env: env}
}

// TestWireGoldenBytes keeps docs/WIRE.md honest: the version-2 golden
// frame embedded in the spec must be byte-identical to what the encoder
// produces for the documented inputs and must decode back to them, and
// the legacy version-1 golden must still decode on today's receiver —
// the backward-compatibility promise, pinned in bytes.
func TestWireGoldenBytes(t *testing.T) {
	goldens := goldenHexFromDoc(t)
	if len(goldens) != 2 {
		t.Fatalf("docs/WIRE.md has %d ```hex fences, want 2 (current + legacy)", len(goldens))
	}
	msg := goldenMsg(t)

	t.Run("v2 traced", func(t *testing.T) {
		golden := goldens[0]
		frame := netbus.AppendMsgFrameTrace(nil, 0xC0FFEE, "w1", "P1", msg, "s1:r1", "s1:r1", 7)
		if !bytes.Equal(frame, golden) {
			t.Fatalf("docs/WIRE.md golden frame drifted from the encoder:\n doc  %x\n code %x", golden, frame)
		}
		f, err := netbus.DecodeFrame(golden)
		if err != nil {
			t.Fatalf("golden frame does not decode: %v", err)
		}
		if f.Version != netbus.Version || f.Type != netbus.FtMsg || f.Nonce != 0xC0FFEE || f.Node != "w1" {
			t.Errorf("golden header %+v, want v2 FtMsg nonce=0xC0FFEE node=w1", f)
		}
		if f.Round != "s1:r1" || f.Epoch != "s1:r1" || f.Origin != 7 {
			t.Errorf("golden trace context: round=%q epoch=%q origin=%d", f.Round, f.Epoch, f.Origin)
		}
		checkGoldenBody(t, f.Body)
	})

	t.Run("v1 legacy", func(t *testing.T) {
		golden := goldens[1]
		// The legacy frame is the untraced encoding with version byte 0x01.
		frame := netbus.AppendMsgFrame(nil, 0xC0FFEE, "w1", "P1", msg)
		frame[4] = netbus.VersionLegacy
		if !bytes.Equal(frame, golden) {
			t.Fatalf("docs/WIRE.md legacy golden drifted:\n doc  %x\n code %x", golden, frame)
		}
		f, err := netbus.DecodeFrame(golden)
		if err != nil {
			t.Fatalf("legacy golden no longer decodes — backward compatibility broken: %v", err)
		}
		if f.Version != netbus.VersionLegacy || f.Type != netbus.FtMsg || f.Nonce != 0xC0FFEE || f.Node != "w1" {
			t.Errorf("legacy header %+v, want v1 FtMsg nonce=0xC0FFEE node=w1", f)
		}
		if f.Round != "" || f.Epoch != "" || f.Origin != 0 {
			t.Errorf("legacy frame grew trace context: %+v", f)
		}
		checkGoldenBody(t, f.Body)
	})
}

// checkGoldenBody pins the documented body fields, shared by both
// goldens (the trace context does not alter the body encoding).
func checkGoldenBody(t *testing.T, body []byte) {
	t.Helper()
	dest, m, err := netbus.DecodeMsgBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if dest != "P1" || m.From != "P1" || m.To != "*" || m.Kind != "dls/bid" || m.Nonce != 7 {
		t.Errorf("golden body: dest=%q msg=%+v", dest, m)
	}
	if string(m.Env.Payload) != `{"bid":1.5,"proc":"P1"}` {
		t.Errorf("golden payload %q", m.Env.Payload)
	}
}
