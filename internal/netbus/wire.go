package netbus

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlsbl/internal/bus"
	"dlsbl/internal/sig"
)

// The on-wire frame format. Every UDP datagram the netbus exchanges is
// exactly one frame:
//
//	offset size field
//	0      4    magic "DLSB"
//	4      1    wire version (0x02; 0x01 accepted)
//	5      1    frame type
//	6      1    flags (FlagMore on drain/telemetry responses,
//	            FlagTrace on v2 messages)
//	7      1    reserved, must be 0
//	8      4    length: total frame size in bytes, big-endian uint32
//	12     8    frame nonce, big-endian uint64
//	20     …    sender node name: uvarint length + UTF-8 bytes
//	…      …    trace context, only when FlagTrace is set: round ID
//	            string, epoch string, origin uvarint
//	…      …    type-specific body
//
// The frame nonce correlates requests with replies (a reply echoes the
// request's nonce) and deduplicates resends at the receiver; it is NOT
// the protocol's logical message nonce, which travels inside message
// bodies. The length field lets a receiver reject truncated datagrams
// (length > datagram) and trailing garbage (length < datagram) even
// though UDP preserves datagram boundaries — a relay that fragments or
// pads is caught, not silently misparsed. docs/WIRE.md is the normative
// spec; TestWireGoldenBytes pins the golden example embedded there.

// Magic opens every netbus frame.
const Magic = "DLSB"

// Version is the wire version this implementation emits. Version 2
// added the optional trace-context extension (FlagTrace on FtMsg:
// round ID, bid epoch and origin sequence ride the header, so every
// datagram is attributable to a protocol round at every hop) and the
// telemetry drain frames (FtTelemetry/FtTelemetryRsp). Receivers also
// accept VersionLegacy frames unchanged — a v1 sender interoperates —
// but reject everything else; there is no negotiation on a datagram
// medium (see docs/WIRE.md §versioning).
const Version = 2

// VersionLegacy is the pre-telemetry wire version receivers still
// accept. Legacy frames carry no trace context and may not use the
// telemetry frame types.
const VersionLegacy = 1

// MaxFrame bounds a frame (and thus a datagram) in bytes. It sits under
// the 65,507-byte UDP payload ceiling with room for kernel headroom;
// oversized frames are rejected before parsing.
const MaxFrame = 60000

// headerFixed is the size of the fixed-width header prefix (everything
// before the sender name).
const headerFixed = 20

// Frame types.
const (
	// FtMsg carries one control-plane message into an endpoint's
	// mailbox. Body: message encoding (see appendMessage).
	FtMsg = byte(iota + 1)
	// FtAck acknowledges an FtMsg; the nonce echoes the acked frame's.
	// Empty body.
	FtAck
	// FtDrain asks the owner node for an endpoint's queued messages.
	// Body: endpoint string, then a cumulative-ack sequence number
	// (uvarint): the node deletes everything at or below it and returns
	// what remains.
	FtDrain
	// FtDrainRsp returns queued messages. Body: endpoint string, count
	// uvarint, then count × (seq uvarint + message encoding), ascending
	// by seq. FlagMore is set when the batch was cut to fit MaxFrame.
	FtDrainRsp
	// FtPing probes a node for liveness. Empty body.
	FtPing
	// FtPong answers a ping; the nonce echoes the ping's. Empty body.
	FtPong
	// FtTelemetry (v2) asks the node for its buffered trace records.
	// Body: a cumulative-ack record sequence number (uvarint): the node
	// prunes everything at or below it and returns what remains.
	FtTelemetry
	// FtTelemetryRsp (v2) returns buffered trace records as NDJSON
	// lines. Body: count uvarint, then count × bytes (one obs.Record
	// JSON document each), ascending by record seq. FlagMore is set
	// when the batch was cut to fit MaxFrame.
	FtTelemetryRsp
)

// FlagMore marks a drain or telemetry response that was truncated to
// fit MaxFrame: more entries remain queued and the drainer should ask
// again.
const FlagMore = byte(1 << 0)

// FlagTrace (v2) marks an FtMsg frame carrying the trace-context
// extension: round ID (string), bid epoch (string) and origin sequence
// (uvarint) follow the sender node name, before the body. Nodes echo
// the context into their telemetry events, which is what makes every
// hop of a datagram attributable to a protocol round.
const FlagTrace = byte(1 << 1)

// Frame decode errors. ErrWire is the root every specific error wraps,
// so callers can reject any malformed datagram with one errors.Is.
var (
	ErrWire       = errors.New("netbus: malformed frame")
	ErrBadMagic   = fmt.Errorf("%w: bad magic", ErrWire)
	ErrBadVersion = fmt.Errorf("%w: unsupported wire version", ErrWire)
	ErrTruncated  = fmt.Errorf("%w: truncated frame", ErrWire)
	ErrOversize   = fmt.Errorf("%w: frame exceeds MaxFrame", ErrWire)
)

// Frame is one parsed datagram: the fixed header, the optional v2
// trace context, plus the raw, type-specific body. Body aliases the
// datagram buffer — callers that retain a Frame past the next socket
// read must copy it.
type Frame struct {
	Version byte
	Type    byte
	Flags   byte
	Nonce   uint64
	Node    string // sending node's name from the peer table
	// Round, Epoch and Origin are the trace context (FlagTrace on
	// FtMsg): the protocol round the datagram belongs to, the epoch its
	// bid set was signed in, and the origin sequence (the logical
	// message nonce at the originating driver). All zero on frames
	// without the extension.
	Round  string
	Epoch  string
	Origin uint64
	Body   []byte
}

// AppendFrame appends a complete frame (header + body) to dst and
// returns the extended slice. The length field is computed from the
// final size.
func AppendFrame(dst []byte, typ, flags byte, nonce uint64, node string, body []byte) []byte {
	return appendFrameV(dst, Version, typ, flags, nonce, node, "", "", 0, body)
}

// appendFrameV is the version-explicit encoder behind every Append*
// helper: the fuzzed decode→encode fixpoint re-encodes legacy (v1)
// frames with their original version byte, and trace-context frames
// with their extension block.
func appendFrameV(dst []byte, version, typ, flags byte, nonce uint64, node, round, epoch string, origin uint64, body []byte) []byte {
	start := len(dst)
	dst = append(dst, Magic...)
	dst = append(dst, version, typ, flags, 0)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], nonce)
	dst = append(dst, n[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(node)))
	dst = append(dst, node...)
	if flags&FlagTrace != 0 {
		dst = sig.AppendString(dst, round)
		dst = sig.AppendString(dst, epoch)
		dst = sig.AppendUvarint(dst, origin)
	}
	dst = append(dst, body...)
	binary.BigEndian.PutUint32(dst[start+8:start+12], uint32(len(dst)-start))
	return dst
}

// maxType returns the highest frame type a wire version defines.
func maxType(version byte) byte {
	if version == VersionLegacy {
		return FtPong
	}
	return FtTelemetryRsp
}

// checkFlags validates the flag byte against the version's rules: v1
// allows only FlagMore on FtDrainRsp; v2 additionally allows FlagMore
// on FtTelemetryRsp and FlagTrace on FtMsg.
func checkFlags(version, typ, flags byte) error {
	allowed := byte(0)
	switch {
	case typ == FtDrainRsp:
		allowed = FlagMore
	case version >= Version && typ == FtTelemetryRsp:
		allowed = FlagMore
	case version >= Version && typ == FtMsg:
		allowed = FlagTrace
	}
	if flags&^allowed != 0 {
		return fmt.Errorf("%w: unknown flag bits %#x on frame type %d (version %d)", ErrWire, flags, typ, version)
	}
	return nil
}

// DecodeFrame parses one datagram. It rejects wrong magic, unknown
// versions, unknown frame types, length/datagram mismatches (truncation
// either way) and frames above MaxFrame. Legacy (v1) frames are
// accepted under their original, stricter rules — old frames still
// parse. The returned Body aliases data.
func DecodeFrame(data []byte) (Frame, error) {
	if len(data) < headerFixed {
		return Frame{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerFixed)
	}
	if string(data[:4]) != Magic {
		return Frame{}, ErrBadMagic
	}
	version := data[4]
	if version != Version && version != VersionLegacy {
		return Frame{}, fmt.Errorf("%w: got %d, speak %d (and accept legacy %d)", ErrBadVersion, version, Version, VersionLegacy)
	}
	typ := data[5]
	if typ < FtMsg || typ > maxType(version) {
		return Frame{}, fmt.Errorf("%w: unknown frame type %d for version %d", ErrWire, typ, version)
	}
	flags := data[6]
	if err := checkFlags(version, typ, flags); err != nil {
		return Frame{}, err
	}
	if data[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved byte", ErrWire)
	}
	length := binary.BigEndian.Uint32(data[8:12])
	if length > MaxFrame {
		return Frame{}, fmt.Errorf("%w: declared length %d", ErrOversize, length)
	}
	if uint64(length) > uint64(len(data)) {
		return Frame{}, fmt.Errorf("%w: declared %d bytes, datagram has %d", ErrTruncated, length, len(data))
	}
	if uint64(length) < uint64(len(data)) {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes past declared length", ErrWire, uint64(len(data))-uint64(length))
	}
	r := wireReader{buf: data, off: headerFixed}
	f := Frame{
		Version: version,
		Type:    typ,
		Flags:   flags,
		Nonce:   binary.BigEndian.Uint64(data[12:20]),
	}
	f.Node = r.str()
	if flags&FlagTrace != 0 {
		f.Round = r.str()
		f.Epoch = r.str()
		f.Origin = r.uvarint()
	}
	if r.err != nil {
		return Frame{}, r.err
	}
	f.Body = data[r.off:]
	return f, nil
}

// wireReader is a bounds-checked cursor over frame bodies. Unlike
// sig.BinReader it carries no payload magic — frame bodies are framed by
// the header, not self-describing.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrWire}, args...)...)
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		// Exactly one encoding per value: resend dedup and the fuzzed
		// decode→encode fixpoint both rely on byte-stable frames.
		r.fail("non-minimal varint")
		return 0
	}
	r.off += n
	return x
}

func (r *wireReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("length %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *wireReader) str() string   { return string(r.take(r.uvarint())) }
func (r *wireReader) bytes() []byte { return append([]byte(nil), r.take(r.uvarint())...) }
func (r *wireReader) rest() int     { return len(r.buf) - r.off }
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing body bytes", ErrWire, len(r.buf)-r.off)
	}
	return nil
}

// appendMessage appends the body encoding of one control-plane message:
// from, to, kind (uvarint-prefixed strings), abstract size (uvarint),
// the logical protocol nonce (uvarint), then the sealed envelope in the
// internal/sig nested-envelope encoding (sender, kind, payload,
// signature, each uvarint-prefixed).
func appendMessage(dst []byte, m bus.Message) []byte {
	dst = sig.AppendString(dst, m.From)
	dst = sig.AppendString(dst, m.To)
	dst = sig.AppendString(dst, m.Kind)
	dst = sig.AppendUvarint(dst, uint64(m.Size))
	dst = sig.AppendUvarint(dst, m.Nonce)
	return m.Env.AppendBinary(dst)
}

// readMessage parses one appendMessage encoding from the cursor.
func (r *wireReader) readMessage() bus.Message {
	var m bus.Message
	m.From = r.str()
	m.To = r.str()
	m.Kind = r.str()
	size := r.uvarint()
	if size > MaxFrame {
		r.fail("absurd message size %d", size)
		return m
	}
	m.Size = int(size)
	m.Nonce = r.uvarint()
	m.Env.Sender = r.str()
	m.Env.Kind = r.str()
	m.Env.Payload = r.bytes()
	m.Env.Signature = r.bytes()
	return m
}

// AppendMsgFrame frames one mailbox delivery (FtMsg). dest names the
// endpoint whose mailbox receives the copy — distinct from the
// message's own To, which stays "*" for broadcast emissions so drained
// messages are byte-comparable with the simulated bus's.
func AppendMsgFrame(dst []byte, nonce uint64, node, dest string, m bus.Message) []byte {
	body := sig.AppendString(nil, dest)
	body = appendMessage(body, m)
	return AppendFrame(dst, FtMsg, 0, nonce, node, body)
}

// DecodeMsgBody parses an FtMsg body into the destination endpoint and
// the delivered message.
func DecodeMsgBody(body []byte) (dest string, m bus.Message, err error) {
	r := wireReader{buf: body}
	dest = r.str()
	m = r.readMessage()
	if err := r.done(); err != nil {
		return "", bus.Message{}, err
	}
	return dest, m, nil
}

// AppendDrainFrame frames a drain request (FtDrain) for the endpoint,
// cumulatively acknowledging every sequence number at or below ackSeq.
func AppendDrainFrame(dst []byte, nonce uint64, node, endpoint string, ackSeq uint64) []byte {
	body := sig.AppendString(nil, endpoint)
	body = sig.AppendUvarint(body, ackSeq)
	return AppendFrame(dst, FtDrain, 0, nonce, node, body)
}

// DecodeDrainBody parses an FtDrain body.
func DecodeDrainBody(body []byte) (endpoint string, ackSeq uint64, err error) {
	r := wireReader{buf: body}
	endpoint = r.str()
	ackSeq = r.uvarint()
	return endpoint, ackSeq, r.done()
}

// SeqMsg is one mailbox entry in a drain response: the per-mailbox
// sequence number and the stored message.
type SeqMsg struct {
	Seq uint64
	Msg bus.Message
}

// AppendDrainRspFrame frames a drain response (FtDrainRsp) carrying the
// batch; more marks a batch truncated to fit MaxFrame.
func AppendDrainRspFrame(dst []byte, nonce uint64, node, endpoint string, batch []SeqMsg, more bool) []byte {
	body := sig.AppendString(nil, endpoint)
	body = sig.AppendUvarint(body, uint64(len(batch)))
	for _, sm := range batch {
		body = sig.AppendUvarint(body, sm.Seq)
		body = appendMessage(body, sm.Msg)
	}
	var flags byte
	if more {
		flags |= FlagMore
	}
	return AppendFrame(dst, FtDrainRsp, flags, nonce, node, body)
}

// DecodeDrainRspBody parses an FtDrainRsp body.
func DecodeDrainRspBody(body []byte) (endpoint string, batch []SeqMsg, err error) {
	r := wireReader{buf: body}
	endpoint = r.str()
	n := r.uvarint()
	if n > uint64(r.rest()) { // every entry takes ≥ 7 bytes; cheap bound
		return "", nil, fmt.Errorf("%w: drain batch count %d", ErrWire, n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		seq := r.uvarint()
		m := r.readMessage()
		batch = append(batch, SeqMsg{Seq: seq, Msg: m})
	}
	if err := r.done(); err != nil {
		return "", nil, err
	}
	return endpoint, batch, nil
}

// AppendControlFrame frames a bodyless control frame (FtAck, FtPing,
// FtPong) under the given nonce.
func AppendControlFrame(dst []byte, typ byte, nonce uint64, node string) []byte {
	return AppendFrame(dst, typ, 0, nonce, node, nil)
}

// AppendMsgFrameTrace frames one mailbox delivery (FtMsg) carrying the
// v2 trace-context extension: the protocol round, bid epoch and origin
// sequence ride the header under FlagTrace, so the receiving node can
// attribute the datagram to a round without opening the sealed body.
func AppendMsgFrameTrace(dst []byte, nonce uint64, node, dest string, m bus.Message, round, epoch string, origin uint64) []byte {
	body := sig.AppendString(nil, dest)
	body = appendMessage(body, m)
	return appendFrameV(dst, Version, FtMsg, FlagTrace, nonce, node, round, epoch, origin, body)
}

// AppendTelemetryFrame frames a telemetry drain request (FtTelemetry),
// cumulatively acknowledging every buffered record sequence number at
// or below ackSeq.
func AppendTelemetryFrame(dst []byte, nonce uint64, node string, ackSeq uint64) []byte {
	body := sig.AppendUvarint(nil, ackSeq)
	return AppendFrame(dst, FtTelemetry, 0, nonce, node, body)
}

// DecodeTelemetryBody parses an FtTelemetry body.
func DecodeTelemetryBody(body []byte) (ackSeq uint64, err error) {
	r := wireReader{buf: body}
	ackSeq = r.uvarint()
	return ackSeq, r.done()
}

// AppendTelemetryRspFrame frames a telemetry response (FtTelemetryRsp)
// carrying buffered trace records as NDJSON line bytes; more marks a
// batch truncated to fit MaxFrame.
func AppendTelemetryRspFrame(dst []byte, nonce uint64, node string, lines [][]byte, more bool) []byte {
	body := sig.AppendUvarint(nil, uint64(len(lines)))
	for _, l := range lines {
		body = sig.AppendUvarint(body, uint64(len(l)))
		body = append(body, l...)
	}
	var flags byte
	if more {
		flags |= FlagMore
	}
	return AppendFrame(dst, FtTelemetryRsp, flags, nonce, node, body)
}

// DecodeTelemetryRspBody parses an FtTelemetryRsp body into the record
// lines, each one obs.Record JSON document.
func DecodeTelemetryRspBody(body []byte) (lines [][]byte, err error) {
	r := wireReader{buf: body}
	n := r.uvarint()
	if n > uint64(r.rest()) { // every line takes ≥ 1 byte; cheap bound
		return nil, fmt.Errorf("%w: telemetry batch count %d", ErrWire, n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		lines = append(lines, r.bytes())
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return lines, nil
}
