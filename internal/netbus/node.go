package netbus

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"dlsbl/internal/obs"
)

// NodeStats counts what a mailbox node did; read them with Node.Stats.
type NodeStats struct {
	// Enqueued counts messages accepted into a mailbox.
	Enqueued uint64
	// DedupHits counts resent FtMsg frames recognized by frame nonce
	// and acked without re-enqueueing.
	DedupHits uint64
	// Drains counts drain requests answered.
	Drains uint64
	// BadFrames counts datagrams rejected as malformed (wrong magic or
	// version, truncation, oversize, unknown endpoint, unparsable body).
	BadFrames uint64
	// DatagramsIn counts datagrams received, malformed ones included.
	DatagramsIn uint64
	// DatagramsOut counts reply datagrams written.
	DatagramsOut uint64
}

// seenCap bounds the per-node resend-dedup window. Entries are evicted
// FIFO; the window only needs to cover the driver's resend horizon
// (milliseconds), so a few thousand frames is generous.
const seenCap = 8192

// seenKey identifies an FtMsg frame for resend deduplication.
type seenKey struct {
	node  string
	nonce uint64
}

// mailbox holds one endpoint's undrained messages with per-message
// sequence numbers for cumulative acknowledgement.
type mailbox struct {
	nextSeq uint64
	queue   []SeqMsg
}

// Node is a mailbox server: it hosts the inboxes of the endpoints
// assigned to it in the peer table and answers FtMsg/FtDrain/FtPing
// datagrams. A Node is stateless beyond its mailboxes — it never dials
// out and never originates traffic, every reply goes to the datagram's
// source address (the relay-node shape).
type Node struct {
	name string
	conn *net.UDPConn

	mu       sync.Mutex
	boxes    map[string]*mailbox
	seen     map[seenKey]bool
	seenFIFO []seenKey
	stats    NodeStats

	// rec is the bounded telemetry buffer served by FtTelemetry; extra is
	// an additional operator-installed tracer (e.g. an NDJSON stream);
	// tracer fans events out to whichever of the two are live.
	rec    *obs.Recorder
	extra  obs.Tracer
	tracer obs.Tracer

	closed chan struct{}
}

// SetTracer installs an additional tracer next to the telemetry buffer
// — dls-node's -trace flag streams NDJSON through one. Nil removes it.
func (n *Node) SetTracer(t obs.Tracer) {
	n.mu.Lock()
	n.extra = t
	n.tracer = obs.Multi(n.rec, n.extra)
	n.mu.Unlock()
}

// EnableTelemetry switches on the node's telemetry buffer: datagram
// events (net_rx/net_tx/decode_fail, round-attributed when the frame
// carried trace context) are retained in a capped recorder the driver
// drains via FtTelemetry. cap bounds the buffer (oldest evicted first,
// with a "truncated" marker); cap <= 0 selects an unbounded buffer.
func (n *Node) EnableTelemetry(cap int) {
	n.mu.Lock()
	n.rec = obs.NewRecorderCap(cap)
	n.tracer = obs.Multi(n.rec, n.extra)
	n.mu.Unlock()
}

// event emits one node-side datagram event. Caller holds the mutex.
func (n *Node) event(e obs.Event) {
	if n.tracer != nil {
		n.tracer.Event(e)
	}
}

// MailboxDepth returns the total number of undrained messages across
// the node's mailboxes — the backlog gauge on the metrics surface.
func (n *Node) MailboxDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	depth := 0
	for _, box := range n.boxes {
		depth += len(box.queue)
	}
	return depth
}

// ListenNode binds the named node's UDP socket per the peer table and
// prepares a mailbox for each endpoint it hosts. Call Serve to start
// answering.
func ListenNode(cfg *Config, name string) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Nodes[name]
	if !ok {
		return nil, fmt.Errorf("netbus: node %q not in peer table", name)
	}
	addr, err := net.ResolveUDPAddr("udp", spec.Addr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q: %w", name, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q listening on %s: %w", name, spec.Addr, err)
	}
	n := &Node{
		name:   name,
		conn:   conn,
		boxes:  make(map[string]*mailbox, len(spec.Endpoints)),
		seen:   make(map[seenKey]bool, seenCap),
		closed: make(chan struct{}),
	}
	for _, ep := range spec.Endpoints {
		n.boxes[ep] = &mailbox{}
	}
	return n, nil
}

// Name returns the node's peer-table name.
func (n *Node) Name() string { return n.name }

// LocalAddr returns the bound UDP address (useful when the table said
// port 0).
func (n *Node) LocalAddr() net.Addr { return n.conn.LocalAddr() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the socket down; a blocked Serve returns.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	return n.conn.Close()
}

// Serve answers datagrams until Close. It runs the receive loop on the
// calling goroutine and returns nil after a clean Close.
func (n *Node) Serve() error {
	buf := make([]byte, MaxFrame+1)
	out := make([]byte, 0, 2048)
	for {
		sz, src, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.closed:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netbus: node %q receive: %w", n.name, err)
		}
		out = n.handle(out[:0], buf[:sz])
		n.mu.Lock()
		n.stats.DatagramsIn++
		if len(out) > 0 {
			n.stats.DatagramsOut++
		}
		n.mu.Unlock()
		if len(out) > 0 {
			// Best-effort reply; a lost reply is re-asked by the driver.
			_, _ = n.conn.WriteToUDP(out, src)
		}
	}
}

// handle processes one datagram and appends the reply frame (if any) to
// out.
func (n *Node) handle(out, datagram []byte) []byte {
	f, err := DecodeFrame(datagram)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.event(obs.Event{Kind: obs.EvDecodeFail, From: n.name, Detail: err.Error()})
		n.mu.Unlock()
		return out // malformed datagrams are dropped silently, never answered
	}
	switch f.Type {
	case FtPing:
		return AppendControlFrame(out, FtPong, f.Nonce, n.name)
	case FtMsg:
		return n.handleMsg(out, f)
	case FtDrain:
		return n.handleDrain(out, f)
	case FtTelemetry:
		return n.handleTelemetry(out, f)
	default:
		// Acks, pongs and drain responses are driver-bound; a node
		// receiving one ignores it.
		return out
	}
}

// handleMsg enqueues a delivery (or recognizes a resend) and acks.
func (n *Node) handleMsg(out []byte, f Frame) []byte {
	dest, m, err := DecodeMsgBody(f.Body)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[dest]
	if !ok {
		n.stats.BadFrames++
		return out // not our endpoint: drop, no ack
	}
	k := seenKey{node: f.Node, nonce: f.Nonce}
	if n.seen[k] {
		// The driver resent because our ack was lost; ack again without
		// enqueueing a duplicate.
		n.stats.DedupHits++
		n.event(obs.Event{Kind: obs.EvDedupHit, From: m.From, To: dest, Msg: m.Kind,
			Round: f.Round, Origin: f.Nonce})
		return AppendControlFrame(out, FtAck, f.Nonce, n.name)
	}
	if len(n.seenFIFO) >= seenCap {
		delete(n.seen, n.seenFIFO[0])
		n.seenFIFO = n.seenFIFO[1:]
	}
	n.seen[k] = true
	n.seenFIFO = append(n.seenFIFO, k)
	box.nextSeq++
	box.queue = append(box.queue, SeqMsg{Seq: box.nextSeq, Msg: m})
	n.stats.Enqueued++
	// The frame nonce as origin matches this receive against the
	// driver's net_tx/net_rx bracket for the same exchange; the round
	// context, when the frame carried one, attributes it to a round.
	n.event(obs.Event{Kind: obs.EvNetRx, From: m.From, To: dest, Msg: m.Kind,
		Round: f.Round, Origin: f.Nonce})
	out = AppendControlFrame(out, FtAck, f.Nonce, n.name)
	n.event(obs.Event{Kind: obs.EvNetTx, From: n.name, To: f.Node, Msg: "ack",
		Round: f.Round, Origin: f.Nonce})
	return out
}

// handleDrain prunes acknowledged mail and returns what remains, cut to
// fit one datagram (FlagMore marks a truncated batch).
func (n *Node) handleDrain(out []byte, f Frame) []byte {
	endpoint, ackSeq, err := DecodeDrainBody(f.Body)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[endpoint]
	if !ok {
		n.stats.BadFrames++
		return out
	}
	// Cumulative ack: everything at or below ackSeq was consumed by the
	// driver and can be forgotten. Idempotent — a resent drain with the
	// same ackSeq re-sends the same batch.
	keep := box.queue[:0]
	for _, sm := range box.queue {
		if sm.Seq > ackSeq {
			keep = append(keep, sm)
		}
	}
	box.queue = keep
	// Cut the batch so the response frame stays under MaxFrame. The
	// per-message overhead is dominated by the envelope; estimate with
	// the exact body encoding.
	budget := MaxFrame - 256 // header + endpoint + count headroom
	var batch []SeqMsg
	used := 0
	more := false
	for _, sm := range box.queue {
		sz := len(appendMessage(nil, sm.Msg)) + 12
		if used+sz > budget {
			more = true
			break
		}
		batch = append(batch, sm)
		used += sz
	}
	n.stats.Drains++
	n.event(obs.Event{Kind: obs.EvNetRx, From: f.Node, To: endpoint, Msg: "drain", Origin: f.Nonce})
	out = AppendDrainRspFrame(out, f.Nonce, n.name, endpoint, batch, more)
	n.event(obs.Event{Kind: obs.EvNetTx, From: n.name, To: f.Node, Msg: "drain_rsp", Origin: f.Nonce})
	return out
}

// handleTelemetry prunes acknowledged trace records and returns what
// remains as NDJSON lines, cut to fit one datagram (FlagMore marks a
// truncated batch). A node without telemetry enabled answers with an
// empty batch — the collector cannot tell silence from "nothing
// buffered", which is fine: both mean no records.
func (n *Node) handleTelemetry(out []byte, f Frame) []byte {
	ackSeq, err := DecodeTelemetryBody(f.Body)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rec == nil {
		return AppendTelemetryRspFrame(out, f.Nonce, n.name, nil, false)
	}
	// Cumulative ack, mirroring mail drains: acknowledged records are
	// pruned, the rest re-served — a lost response is re-asked.
	n.rec.Prune(int(ackSeq))
	recs := n.rec.RecordsSince(int(ackSeq))
	budget := MaxFrame - 256 // header + count headroom
	var lines [][]byte
	used := 0
	more := false
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			continue // a record that cannot marshal is unshippable; skip it
		}
		sz := len(line) + 8
		if used+sz > budget {
			more = true
			break
		}
		lines = append(lines, line)
		used += sz
	}
	return AppendTelemetryRspFrame(out, f.Nonce, n.name, lines, more)
}
