package netbus

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// NodeStats counts what a mailbox node did; read them with Node.Stats.
type NodeStats struct {
	// Enqueued counts messages accepted into a mailbox.
	Enqueued uint64
	// DedupHits counts resent FtMsg frames recognized by frame nonce
	// and acked without re-enqueueing.
	DedupHits uint64
	// Drains counts drain requests answered.
	Drains uint64
	// BadFrames counts datagrams rejected as malformed (wrong magic or
	// version, truncation, oversize, unknown endpoint, unparsable body).
	BadFrames uint64
}

// seenCap bounds the per-node resend-dedup window. Entries are evicted
// FIFO; the window only needs to cover the driver's resend horizon
// (milliseconds), so a few thousand frames is generous.
const seenCap = 8192

// seenKey identifies an FtMsg frame for resend deduplication.
type seenKey struct {
	node  string
	nonce uint64
}

// mailbox holds one endpoint's undrained messages with per-message
// sequence numbers for cumulative acknowledgement.
type mailbox struct {
	nextSeq uint64
	queue   []SeqMsg
}

// Node is a mailbox server: it hosts the inboxes of the endpoints
// assigned to it in the peer table and answers FtMsg/FtDrain/FtPing
// datagrams. A Node is stateless beyond its mailboxes — it never dials
// out and never originates traffic, every reply goes to the datagram's
// source address (the relay-node shape).
type Node struct {
	name string
	conn *net.UDPConn

	mu       sync.Mutex
	boxes    map[string]*mailbox
	seen     map[seenKey]bool
	seenFIFO []seenKey
	stats    NodeStats

	closed chan struct{}
}

// ListenNode binds the named node's UDP socket per the peer table and
// prepares a mailbox for each endpoint it hosts. Call Serve to start
// answering.
func ListenNode(cfg *Config, name string) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Nodes[name]
	if !ok {
		return nil, fmt.Errorf("netbus: node %q not in peer table", name)
	}
	addr, err := net.ResolveUDPAddr("udp", spec.Addr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q: %w", name, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q listening on %s: %w", name, spec.Addr, err)
	}
	n := &Node{
		name:   name,
		conn:   conn,
		boxes:  make(map[string]*mailbox, len(spec.Endpoints)),
		seen:   make(map[seenKey]bool, seenCap),
		closed: make(chan struct{}),
	}
	for _, ep := range spec.Endpoints {
		n.boxes[ep] = &mailbox{}
	}
	return n, nil
}

// Name returns the node's peer-table name.
func (n *Node) Name() string { return n.name }

// LocalAddr returns the bound UDP address (useful when the table said
// port 0).
func (n *Node) LocalAddr() net.Addr { return n.conn.LocalAddr() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the socket down; a blocked Serve returns.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	return n.conn.Close()
}

// Serve answers datagrams until Close. It runs the receive loop on the
// calling goroutine and returns nil after a clean Close.
func (n *Node) Serve() error {
	buf := make([]byte, MaxFrame+1)
	out := make([]byte, 0, 2048)
	for {
		sz, src, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.closed:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netbus: node %q receive: %w", n.name, err)
		}
		out = n.handle(out[:0], buf[:sz])
		if len(out) > 0 {
			// Best-effort reply; a lost reply is re-asked by the driver.
			_, _ = n.conn.WriteToUDP(out, src)
		}
	}
}

// handle processes one datagram and appends the reply frame (if any) to
// out.
func (n *Node) handle(out, datagram []byte) []byte {
	f, err := DecodeFrame(datagram)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out // malformed datagrams are dropped silently, never answered
	}
	switch f.Type {
	case FtPing:
		return AppendControlFrame(out, FtPong, f.Nonce, n.name)
	case FtMsg:
		return n.handleMsg(out, f)
	case FtDrain:
		return n.handleDrain(out, f)
	default:
		// Acks, pongs and drain responses are driver-bound; a node
		// receiving one ignores it.
		return out
	}
}

// handleMsg enqueues a delivery (or recognizes a resend) and acks.
func (n *Node) handleMsg(out []byte, f Frame) []byte {
	dest, m, err := DecodeMsgBody(f.Body)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[dest]
	if !ok {
		n.stats.BadFrames++
		return out // not our endpoint: drop, no ack
	}
	k := seenKey{node: f.Node, nonce: f.Nonce}
	if n.seen[k] {
		// The driver resent because our ack was lost; ack again without
		// enqueueing a duplicate.
		n.stats.DedupHits++
		return AppendControlFrame(out, FtAck, f.Nonce, n.name)
	}
	if len(n.seenFIFO) >= seenCap {
		delete(n.seen, n.seenFIFO[0])
		n.seenFIFO = n.seenFIFO[1:]
	}
	n.seen[k] = true
	n.seenFIFO = append(n.seenFIFO, k)
	box.nextSeq++
	box.queue = append(box.queue, SeqMsg{Seq: box.nextSeq, Msg: m})
	n.stats.Enqueued++
	return AppendControlFrame(out, FtAck, f.Nonce, n.name)
}

// handleDrain prunes acknowledged mail and returns what remains, cut to
// fit one datagram (FlagMore marks a truncated batch).
func (n *Node) handleDrain(out []byte, f Frame) []byte {
	endpoint, ackSeq, err := DecodeDrainBody(f.Body)
	if err != nil {
		n.mu.Lock()
		n.stats.BadFrames++
		n.mu.Unlock()
		return out
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[endpoint]
	if !ok {
		n.stats.BadFrames++
		return out
	}
	// Cumulative ack: everything at or below ackSeq was consumed by the
	// driver and can be forgotten. Idempotent — a resent drain with the
	// same ackSeq re-sends the same batch.
	keep := box.queue[:0]
	for _, sm := range box.queue {
		if sm.Seq > ackSeq {
			keep = append(keep, sm)
		}
	}
	box.queue = keep
	// Cut the batch so the response frame stays under MaxFrame. The
	// per-message overhead is dominated by the envelope; estimate with
	// the exact body encoding.
	budget := MaxFrame - 256 // header + endpoint + count headroom
	var batch []SeqMsg
	used := 0
	more := false
	for _, sm := range box.queue {
		sz := len(appendMessage(nil, sm.Msg)) + 12
		if used+sz > budget {
			more = true
			break
		}
		batch = append(batch, sm)
		used += sz
	}
	n.stats.Drains++
	return AppendDrainRspFrame(out, f.Nonce, n.name, endpoint, batch, more)
}
