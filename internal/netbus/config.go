// Package netbus is the real-socket implementation of bus.Medium: the
// control-plane envelopes of the DLS-BL-NCP protocol framed onto UDP
// datagrams, so one round can span OS processes (and machines).
//
// Topology is a static peer table (Config): named nodes, each with a
// UDP address and the set of protocol endpoints (processor and referee
// identities) whose mailboxes it hosts. The process driving the
// protocol opens a Medium (Dial); every other process runs a Node
// (cmd/dls-node) — a stateless mailbox server in the relay-node shape:
// it never dials, never originates, only answers the datagrams that
// reach it. A message addressed to an endpoint physically transits the
// UDP socket of the node that owns it; drains pull it back with
// cumulative acknowledgement, so a lost response datagram is re-asked
// without losing or duplicating mail.
//
// Reliability layering mirrors the simulated bus exactly: the netbus
// delivers best-effort with deadline-driven resends below, and the
// protocol's reliable transport (retry, backoff, (sender, nonce) dedup,
// eviction) sits unchanged on top. A datagram lost beyond the medium's
// resend budget is surfaced as a drop — the same fault vocabulary
// (drop/retransmit/dedup_hit) the simulated bus uses, so obs events and
// bus.Stats keep their meaning on real sockets. docs/WIRE.md documents
// the frame format; docs/DEPLOY.md the multi-process deployment.
package netbus

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
)

// NodeSpec describes one process in the peer table: where it listens
// and which protocol endpoints' mailboxes it hosts.
type NodeSpec struct {
	// Addr is the node's UDP listen address, host:port. Port 0 is
	// allowed for tests (the bound address is discoverable via
	// Node.LocalAddr), but a multi-process table needs fixed ports.
	Addr string `json:"addr"`
	// Endpoints are the protocol identities (e.g. "P1", "referee")
	// whose mailboxes this node hosts. Each endpoint belongs to exactly
	// one node.
	Endpoints []string `json:"endpoints"`
}

// Config is the static peer table every process loads at startup: the
// complete map of node names to specs. Discovery is by configuration,
// not gossip — the mechanism's membership is fixed per round anyway.
type Config struct {
	Nodes map[string]NodeSpec `json:"nodes"`
}

// LoadConfig reads and validates a peer-table JSON file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netbus: reading peer table: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("netbus: parsing %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks the table: at least one node, resolvable addresses,
// and every endpoint owned by exactly one node.
func (c *Config) Validate() error {
	if c == nil || len(c.Nodes) == 0 {
		return fmt.Errorf("netbus: empty peer table")
	}
	owners := make(map[string]string)
	for name, spec := range c.Nodes {
		if name == "" {
			return fmt.Errorf("netbus: node with empty name")
		}
		if _, err := net.ResolveUDPAddr("udp", spec.Addr); err != nil {
			return fmt.Errorf("netbus: node %q address %q: %w", name, spec.Addr, err)
		}
		for _, ep := range spec.Endpoints {
			if ep == "" {
				return fmt.Errorf("netbus: node %q hosts an empty endpoint id", name)
			}
			if prev, dup := owners[ep]; dup {
				return fmt.Errorf("netbus: endpoint %q owned by both %q and %q", ep, prev, name)
			}
			owners[ep] = name
		}
	}
	return nil
}

// Owner returns the node hosting the endpoint's mailbox.
func (c *Config) Owner(endpoint string) (node string, ok bool) {
	for name, spec := range c.Nodes {
		for _, ep := range spec.Endpoints {
			if ep == endpoint {
				return name, true
			}
		}
	}
	return "", false
}

// Endpoints returns every endpoint in the table, sorted.
func (c *Config) Endpoints() []string {
	var eps []string
	for _, spec := range c.Nodes {
		eps = append(eps, spec.Endpoints...)
	}
	sort.Strings(eps)
	return eps
}
