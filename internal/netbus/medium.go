package netbus

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dlsbl/internal/bus"
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// Options tune the driver side of the netbus. The zero value selects
// the documented defaults.
type Options struct {
	// AckTimeout is how long one request waits for its reply before
	// resending. Zero selects 150ms.
	AckTimeout time.Duration
	// MaxAttempts is the per-frame transmission budget (first send +
	// resends) before the delivery is declared dropped. Zero selects 8.
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.AckTimeout == 0 {
		o.AckTimeout = 150 * time.Millisecond
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	return o
}

// Medium is the driver-process side of the netbus: a bus.Medium whose
// deliveries to remote endpoints cross real UDP sockets to the nodes
// hosting their mailboxes, while endpoints assigned to the local node
// are delivered in-process. The protocol's reliable transport runs on
// top unchanged; below it, the Medium resends unacknowledged frames on
// a deadline and, when the budget runs out, records the copy as dropped
// — exactly the fault vocabulary of the simulated bus, so the retry
// layer's recovery path is identical on both media.
//
// A Medium is safe for concurrent use but, like the simulated bus, is
// driven sequentially by the deterministic protocol. It is long-lived:
// one Medium serves any number of protocol runs, so Attach is
// idempotent for endpoints the peer table knows.
type Medium struct {
	mu   sync.Mutex
	name string
	conn *net.UDPConn
	opts Options

	owners map[string]string       // endpoint → node name
	addrs  map[string]*net.UDPAddr // node name → address

	attached map[string]bool
	order    []string // attached endpoints, sorted

	local  map[string][]bus.Message // mailboxes of locally hosted endpoints
	ackSeq map[string]uint64        // per remote endpoint: highest consumed seq

	session  uint64 // high 32 bits of every frame nonce
	frameCtr uint64
	nonce    uint64 // logical protocol nonce counter

	stats  bus.Stats
	net    NetStats
	tracer obs.Tracer

	// round/epoch is the trace context stamped into outgoing message
	// frames (FlagTrace); empty round disables the extension.
	round string
	epoch string

	telAck map[string]uint64 // per node: highest telemetry record seq consumed

	rbuf []byte // receive buffer, reused across requests
	wbuf []byte // send buffer, reused across frames
}

// NetStats counts the driver side's socket traffic, one level below
// bus.Stats: datagrams (not protocol messages), frame resends and
// datagrams that failed frame decoding. All monotonic.
type NetStats struct {
	DatagramsOut   int // datagrams written to the socket, resends included
	DatagramsIn    int // datagrams read from the socket, stale replies included
	Resends        int // retransmissions after an ack deadline
	DecodeFailures int // received datagrams DecodeFrame rejected
}

// Dial opens the driver side of the netbus as the named node of the
// peer table: it binds that node's UDP address, resolves every other
// node, and hosts the local node's endpoints in-process. The caller is
// the only process that may drive protocol traffic over this table.
func Dial(cfg *Config, local string, opts Options) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Nodes[local]
	if !ok {
		return nil, fmt.Errorf("netbus: node %q not in peer table", local)
	}
	laddr, err := net.ResolveUDPAddr("udp", spec.Addr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q: %w", local, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netbus: node %q listening on %s: %w", local, spec.Addr, err)
	}
	m := &Medium{
		name:     local,
		conn:     conn,
		opts:     opts.withDefaults(),
		owners:   make(map[string]string),
		addrs:    make(map[string]*net.UDPAddr),
		attached: make(map[string]bool),
		local:    make(map[string][]bus.Message),
		ackSeq:   make(map[string]uint64),
		telAck:   make(map[string]uint64),
		rbuf:     make([]byte, MaxFrame+1),
	}
	// Frame nonces are salted with a random session id so a fresh
	// driver never collides with a node's resend-dedup window left over
	// from an earlier driver. Protocol determinism is untouched: frame
	// nonces exist below the logical nonces the protocol sees.
	var salt [4]byte
	if _, err := cryptorand.Read(salt[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netbus: session salt: %w", err)
	}
	m.session = uint64(binary.BigEndian.Uint32(salt[:])) << 32
	for name, spec := range cfg.Nodes {
		if name != local {
			addr, err := net.ResolveUDPAddr("udp", spec.Addr)
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("netbus: node %q: %w", name, err)
			}
			m.addrs[name] = addr
		}
		for _, ep := range spec.Endpoints {
			m.owners[ep] = name
		}
	}
	return m, nil
}

// LocalAddr returns the driver's bound UDP address.
func (m *Medium) LocalAddr() net.Addr { return m.conn.LocalAddr() }

// Close releases the socket.
func (m *Medium) Close() error { return m.conn.Close() }

// SetTracer installs an observability tracer on the delivery path; the
// netbus emits the bus fault vocabulary (deliver/drop) plus transport
// vocabulary for its own machinery (retransmit for frame resends,
// dedup_hit when a node reports one). Nil (the default) costs nothing.
func (m *Medium) SetTracer(t obs.Tracer) {
	m.mu.Lock()
	m.tracer = t
	m.mu.Unlock()
}

// event emits one delivery event. Caller holds the mutex.
func (m *Medium) event(kind, from, to, msg string) {
	if m.tracer != nil {
		m.tracer.Event(obs.Event{Kind: kind, From: from, To: to, Msg: msg})
	}
}

// netEvent emits one datagram-scoped event carrying the frame nonce as
// its Origin (the clock-stitching key) and the current round context.
// Caller holds the mutex.
func (m *Medium) netEvent(kind, from, to, msg string, origin uint64) {
	if m.tracer != nil {
		m.tracer.Event(obs.Event{Kind: kind, From: from, To: to, Msg: msg, Round: m.round, Origin: origin})
	}
}

// SetRoundContext installs the trace context stamped into every
// subsequent outgoing message frame: round is the session-salted round
// ID, epoch the round its bid set was signed in. An empty round
// disables the extension (frames revert to the untraced encoding, which
// is byte-compatible with legacy receivers). The protocol calls this at
// round boundaries via a type assertion, so media without the method —
// the simulated bus — are untouched.
func (m *Medium) SetRoundContext(round, epoch string) {
	m.mu.Lock()
	m.round, m.epoch = round, epoch
	m.mu.Unlock()
}

// NetStats returns a snapshot of the datagram-level counters.
func (m *Medium) NetStats() NetStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.net
}

// Attach registers an endpoint. The endpoint must exist in the peer
// table; re-attaching a known endpoint is a no-op so one long-lived
// Medium can serve many protocol runs.
func (m *Medium) Attach(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	owner, ok := m.owners[id]
	if !ok {
		return fmt.Errorf("netbus: endpoint %q not in peer table", id)
	}
	if m.attached[id] {
		return nil
	}
	m.attached[id] = true
	i := sort.SearchStrings(m.order, id)
	m.order = append(m.order, "")
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = id
	if owner == m.name {
		m.local[id] = nil
	}
	return nil
}

// Endpoints returns the attached identities, sorted.
func (m *Medium) Endpoints() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// NextNonce allocates a fresh logical-message nonce.
func (m *Medium) NextNonce() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nonce++
	return m.nonce
}

// Stats returns a snapshot of the traffic counters. On the netbus,
// Dropped counts deliveries the resend budget could not confirm and
// Duplicated counts node-reported resend dedups; both stay zero on a
// healthy loopback.
func (m *Medium) Stats() bus.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// nextFrameNonce allocates a session-salted frame nonce. Caller holds
// the mutex.
func (m *Medium) nextFrameNonce() uint64 {
	m.frameCtr++
	return m.session | (m.frameCtr & 0xFFFFFFFF)
}

// request transmits the frame to addr and waits for a reply of the
// wanted type carrying the same nonce, resending on deadline. It
// returns the reply frame and how many transmissions it took, or an
// error after the budget. Caller holds the mutex (the protocol drives
// the medium sequentially; the socket round-trip is the critical path
// either way).
func (m *Medium) request(addr *net.UDPAddr, frame []byte, nonce uint64, want byte) (Frame, int, error) {
	for attempt := 1; attempt <= m.opts.MaxAttempts; attempt++ {
		if _, err := m.conn.WriteToUDP(frame, addr); err != nil {
			return Frame{}, attempt, fmt.Errorf("netbus: send to %s: %w", addr, err)
		}
		m.net.DatagramsOut++
		if attempt > 1 {
			m.net.Resends++
		}
		deadline := time.Now().Add(m.opts.AckTimeout)
		for {
			if err := m.conn.SetReadDeadline(deadline); err != nil {
				return Frame{}, attempt, err
			}
			sz, _, err := m.conn.ReadFromUDP(m.rbuf)
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return Frame{}, attempt, fmt.Errorf("netbus: medium closed")
				}
				break // deadline: resend
			}
			m.net.DatagramsIn++
			f, derr := DecodeFrame(m.rbuf[:sz])
			if derr != nil {
				m.net.DecodeFailures++
				if m.tracer != nil {
					m.tracer.Event(obs.Event{Kind: obs.EvDecodeFail, From: m.name,
						Round: m.round, Detail: derr.Error(), Origin: nonce})
				}
				continue // malformed reply; keep waiting
			}
			if f.Nonce != nonce || f.Type != want {
				continue // stale reply; keep waiting
			}
			return f, attempt, nil
		}
	}
	return Frame{}, m.opts.MaxAttempts, fmt.Errorf("netbus: no %d-reply from %s after %d attempts",
		want, addr, m.opts.MaxAttempts)
}

// deliver places one message in the destination endpoint's mailbox —
// appending locally, or shipping an FtMsg frame to the owner node and
// awaiting its ack. Delivery failure beyond the resend budget is a
// drop, not an error. Caller holds the mutex.
func (m *Medium) deliver(to string, msg bus.Message) {
	owner := m.owners[to]
	if owner == m.name {
		m.local[to] = append(m.local[to], msg)
		m.stats.Deliveries++
		m.stats.DeliveredUnits += msg.Size
		m.event(obs.EvDeliver, msg.From, to, msg.Kind)
		return
	}
	nonce := m.nextFrameNonce()
	if m.round != "" {
		// Traced delivery: the round context rides the frame header, the
		// logical nonce as origin ties the datagram to the protocol
		// message it carries.
		m.wbuf = AppendMsgFrameTrace(m.wbuf[:0], nonce, m.name, to, msg, m.round, m.epoch, msg.Nonce)
	} else {
		m.wbuf = AppendMsgFrame(m.wbuf[:0], nonce, m.name, to, msg)
	}
	m.netEvent(obs.EvNetTx, msg.From, to, msg.Kind, nonce)
	_, attempts, err := m.request(m.addrs[owner], m.wbuf, nonce, FtAck)
	if attempts > 1 {
		for i := 1; i < attempts; i++ {
			m.event(obs.EvRetransmit, msg.From, to, msg.Kind)
		}
	}
	if err != nil {
		m.stats.Dropped++
		m.event(obs.EvDrop, msg.From, to, msg.Kind)
		return
	}
	m.netEvent(obs.EvNetRx, msg.From, to, msg.Kind, nonce)
	m.stats.Deliveries++
	m.stats.DeliveredUnits += msg.Size
	m.event(obs.EvDeliver, msg.From, to, msg.Kind)
}

// checkSend validates one transmission's addressing. Caller holds the
// mutex.
func (m *Medium) checkSend(from string, size int) error {
	if size < 0 {
		return errors.New("netbus: negative message size")
	}
	if !m.attached[from] {
		return fmt.Errorf("netbus: unknown sender %q", from)
	}
	return nil
}

// BroadcastTagged delivers env to every attached endpoint except the
// sender, in sorted endpoint order (the simulated bus's order, so
// deterministic runs stay comparable across media).
func (m *Medium) BroadcastTagged(from, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkSend(from, size); err != nil {
		return 0, err
	}
	if nonce == 0 {
		m.nonce++
		nonce = m.nonce
	}
	msg := bus.Message{From: from, To: bus.BroadcastAddr, Kind: kind, Size: size, Nonce: nonce, Env: env}
	m.stats.Messages++
	m.stats.Units += size
	m.stats.Broadcasts++
	for _, id := range m.order {
		if id == from {
			continue
		}
		m.deliver(id, msg)
	}
	return nonce, nil
}

// SendTagged delivers env to a single endpoint under the given logical
// nonce (0 allocates one).
func (m *Medium) SendTagged(from, to, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkSend(from, size); err != nil {
		return 0, err
	}
	if !m.attached[to] {
		return 0, fmt.Errorf("netbus: unknown receiver %q", to)
	}
	if nonce == 0 {
		m.nonce++
		nonce = m.nonce
	}
	msg := bus.Message{From: from, To: to, Kind: kind, Size: size, Nonce: nonce, Env: env}
	m.stats.Messages++
	m.stats.Units += size
	m.stats.Unicasts++
	m.deliver(to, msg)
	return nonce, nil
}

// Drain removes and returns the endpoint's queued messages in arrival
// order. For a remote endpoint this asks the owner node, cumulatively
// acknowledging everything already consumed, and keeps asking while the
// node reports more than fits one datagram. An unreachable node yields
// an empty drain — indistinguishable from silence, which is exactly
// what the protocol's retry layer knows how to handle.
func (m *Medium) Drain(id string) ([]bus.Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.attached[id] {
		return nil, fmt.Errorf("netbus: unknown endpoint %q", id)
	}
	owner := m.owners[id]
	if owner == m.name {
		msgs := m.local[id]
		m.local[id] = nil
		return msgs, nil
	}
	var out []bus.Message
	for {
		nonce := m.nextFrameNonce()
		m.wbuf = AppendDrainFrame(m.wbuf[:0], nonce, m.name, id, m.ackSeq[id])
		m.netEvent(obs.EvNetTx, id, owner, "drain", nonce)
		rsp, _, err := m.request(m.addrs[owner], m.wbuf, nonce, FtDrainRsp)
		if err != nil {
			return out, nil // silence; the retry layer above recovers
		}
		m.netEvent(obs.EvNetRx, id, owner, "drain", nonce)
		endpoint, batch, derr := DecodeDrainRspBody(rsp.Body)
		if derr != nil || endpoint != id {
			return out, nil
		}
		for _, sm := range batch {
			if sm.Seq <= m.ackSeq[id] {
				m.stats.Duplicated++
				m.event(obs.EvDedupHit, sm.Msg.From, id, sm.Msg.Kind)
				continue
			}
			m.ackSeq[id] = sm.Seq
			out = append(out, sm.Msg)
		}
		if rsp.Flags&FlagMore == 0 {
			return out, nil
		}
	}
}

// Ping probes the named node and returns nil when it answers within
// the resend budget. Used for startup readiness checks.
func (m *Medium) Ping(node string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr, ok := m.addrs[node]
	if !ok {
		if node == m.name {
			return nil
		}
		return fmt.Errorf("netbus: node %q not in peer table", node)
	}
	nonce := m.nextFrameNonce()
	m.wbuf = AppendControlFrame(m.wbuf[:0], FtPing, nonce, m.name)
	_, _, err := m.request(addr, m.wbuf, nonce, FtPong)
	return err
}

// CollectTelemetry drains the named node's buffered trace records (see
// Node.EnableTelemetry), cumulatively acknowledging what earlier calls
// consumed, looping while the node reports more than fits one datagram.
// A node with telemetry disabled yields an empty batch. Collection
// follows the driver-originates-everything traffic shape — nodes never
// dial out, so this is how per-process traces reach the stitcher.
func (m *Medium) CollectTelemetry(node string) ([]obs.Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr, ok := m.addrs[node]
	if !ok {
		if node == m.name {
			return nil, nil // the driver's own records are already local
		}
		return nil, fmt.Errorf("netbus: node %q not in peer table", node)
	}
	var out []obs.Record
	for {
		nonce := m.nextFrameNonce()
		m.wbuf = AppendTelemetryFrame(m.wbuf[:0], nonce, m.name, m.telAck[node])
		rsp, _, err := m.request(addr, m.wbuf, nonce, FtTelemetryRsp)
		if err != nil {
			return out, fmt.Errorf("netbus: telemetry from %q: %w", node, err)
		}
		lines, derr := DecodeTelemetryRspBody(rsp.Body)
		if derr != nil {
			return out, fmt.Errorf("netbus: telemetry from %q: %w", node, derr)
		}
		for _, line := range lines {
			var rec obs.Record
			if err := json.Unmarshal(line, &rec); err != nil {
				return out, fmt.Errorf("netbus: telemetry record from %q: %w", node, err)
			}
			if uint64(rec.Seq) > m.telAck[node] {
				m.telAck[node] = uint64(rec.Seq)
			}
			out = append(out, rec)
		}
		if rsp.Flags&FlagMore == 0 {
			return out, nil
		}
	}
}

// The netbus driver is a bus.Medium.
var _ bus.Medium = (*Medium)(nil)
