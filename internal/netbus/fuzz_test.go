package netbus

import (
	"bytes"
	"testing"

	"dlsbl/internal/bus"
	"dlsbl/internal/sig"
)

// FuzzWireFrame throws arbitrary datagrams at the full receive path —
// frame header plus every body decoder — and checks total behavior: no
// panics, errors only of the ErrWire family, and accepted frames
// re-encode to the identical datagram (the decode→encode fixpoint that
// keeps resend dedup byte-stable). The committed seed corpus under
// testdata/fuzz/FuzzWireFrame covers every frame type plus the
// truncation/oversize/version mutants from TestMalformedFrames.
func FuzzWireFrame(f *testing.F) {
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(42))
	if err != nil {
		f.Fatal(err)
	}
	env, err := sig.Seal(k, "dls/bid", map[string]any{"proc": "P1", "bid": 1.5})
	if err != nil {
		f.Fatal(err)
	}
	msg := bus.Message{From: "P1", To: "*", Kind: "dls/bid", Size: 1, Nonce: 7, Env: env}
	f.Add(AppendMsgFrame(nil, 1, "drv", "P1", msg))
	f.Add(AppendControlFrame(nil, FtAck, 2, "w1"))
	f.Add(AppendDrainFrame(nil, 3, "drv", "P1", 9))
	f.Add(AppendDrainRspFrame(nil, 4, "w1", "P1", []SeqMsg{{Seq: 1, Msg: msg}}, true))
	f.Add(AppendControlFrame(nil, FtPing, 5, "drv"))
	f.Add(AppendControlFrame(nil, FtPong, 5, "w1"))
	f.Add(AppendMsgFrameTrace(nil, 7, "drv", "P1", msg, "s1:r1", "s1:r1", 42))
	f.Add(AppendTelemetryFrame(nil, 8, "drv", 17))
	f.Add(AppendTelemetryRspFrame(nil, 9, "w1",
		[][]byte{[]byte(`{"type":"event","name":"net_rx"}`)}, true))
	valid := AppendMsgFrame(nil, 6, "drv", "P1", msg)
	legacy := append([]byte(nil), valid...)
	legacy[4] = VersionLegacy
	f.Add(legacy)                         // v1 frame: must still parse
	f.Add(valid[:headerFixed-1])          // truncated header
	f.Add(valid[:len(valid)-3])           // truncated body
	f.Add(append(valid[:4:4], 0xFF))      // bad version
	f.Add([]byte("DLSBjunkjunkjunkjunk")) // header-sized garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // rejected; DecodeFrame must simply not panic
		}
		// Accepted header: body decoders must be total too, and the
		// decode→encode round trip must reproduce the datagram bit for
		// bit (uvarints are already minimal by construction here — the
		// fixpoint catches any second encoding sneaking in). The Append*
		// helpers emit the current version; a decoded legacy frame differs
		// only in its version byte, so the re-encode patches it back.
		sameVersion := func(re []byte) []byte {
			re[4] = fr.Version
			return re
		}
		switch fr.Type {
		case FtMsg:
			dest, m, err := DecodeMsgBody(fr.Body)
			if err != nil {
				return
			}
			var re []byte
			if fr.Flags&FlagTrace != 0 {
				re = AppendMsgFrameTrace(nil, fr.Nonce, fr.Node, dest, m, fr.Round, fr.Epoch, fr.Origin)
			} else {
				re = sameVersion(AppendMsgFrame(nil, fr.Nonce, fr.Node, dest, m))
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("msg frame not a fixpoint:\n in  %x\n out %x", data, re)
			}
		case FtDrain:
			ep, ack, err := DecodeDrainBody(fr.Body)
			if err != nil {
				return
			}
			re := sameVersion(AppendDrainFrame(nil, fr.Nonce, fr.Node, ep, ack))
			if !bytes.Equal(re, data) {
				t.Fatalf("drain frame not a fixpoint:\n in  %x\n out %x", data, re)
			}
		case FtDrainRsp:
			ep, batch, err := DecodeDrainRspBody(fr.Body)
			if err != nil {
				return
			}
			re := sameVersion(AppendDrainRspFrame(nil, fr.Nonce, fr.Node, ep, batch, fr.Flags&FlagMore != 0))
			if !bytes.Equal(re, data) {
				t.Fatalf("drain rsp not a fixpoint:\n in  %x\n out %x", data, re)
			}
		case FtTelemetry:
			ack, err := DecodeTelemetryBody(fr.Body)
			if err != nil {
				return
			}
			re := AppendTelemetryFrame(nil, fr.Nonce, fr.Node, ack)
			if !bytes.Equal(re, data) {
				t.Fatalf("telemetry frame not a fixpoint:\n in  %x\n out %x", data, re)
			}
		case FtTelemetryRsp:
			lines, err := DecodeTelemetryRspBody(fr.Body)
			if err != nil {
				return
			}
			re := AppendTelemetryRspFrame(nil, fr.Nonce, fr.Node, lines, fr.Flags&FlagMore != 0)
			if !bytes.Equal(re, data) {
				t.Fatalf("telemetry rsp not a fixpoint:\n in  %x\n out %x", data, re)
			}
		case FtAck, FtPing, FtPong:
			if len(fr.Body) == 0 {
				re := sameVersion(AppendControlFrame(nil, fr.Type, fr.Nonce, fr.Node))
				if fr.Flags == 0 && !bytes.Equal(re, data) {
					t.Fatalf("control frame not a fixpoint:\n in  %x\n out %x", data, re)
				}
			}
		}
	})
}
