package netbus_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildNetBinaries compiles dls-node and dls-serve into a temp dir and
// returns it; it skips the test where the go tool is unavailable.
func buildNetBinaries(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, cmdName := range []string{"dls-node", "dls-serve"} {
		build := exec.Command(goTool, "build", "-o", filepath.Join(dir, cmdName), "./cmd/"+cmdName)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", cmdName, err, out)
		}
	}
	return dir
}

// writeLoopbackPeers allocates three free loopback ports and writes the
// standard 1-driver + 2-worker peers.json into dir.
//
// The close→rebind window is a benign race on loopback; the ports were
// free a moment ago.
func writeLoopbackPeers(t *testing.T, dir string) string {
	t.Helper()
	ports := make([]int, 3)
	for i := range ports {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
		c.Close()
	}
	peers := fmt.Sprintf(`{"nodes": {
		"serve": {"addr": "127.0.0.1:%d", "endpoints": ["referee"]},
		"w1":    {"addr": "127.0.0.1:%d", "endpoints": ["P1", "P2"]},
		"w2":    {"addr": "127.0.0.1:%d", "endpoints": ["P3", "P4"]}
	}}`, ports[0], ports[1], ports[2])
	cfgPath := filepath.Join(dir, "peers.json")
	if err := os.WriteFile(cfgPath, []byte(peers), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

// startWorker boots one dls-node process with the given extra flags and
// blocks until it prints its ready line. Teardown rides the test cleanup.
func startWorker(t *testing.T, dir, cfgPath, name string, extra ...string) {
	t.Helper()
	args := append([]string{"-config", cfgPath, "-node", name}, extra...)
	node := exec.Command(filepath.Join(dir, "dls-node"), args...)
	stdout, err := node.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatalf("starting dls-node %s: %v", name, err)
	}
	t.Cleanup(func() {
		node.Process.Signal(syscall.SIGTERM)
		node.Wait()
	})
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			ready <- sc.Text()
		}
		close(ready)
	}()
	select {
	case line := <-ready:
		if !strings.HasPrefix(line, "ready node="+name) {
			t.Fatalf("dls-node %s startup line %q, want ready node=%s ...", name, line, name)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("dls-node %s never printed its ready line", name)
	}
}

// TestNetTraceMultiProcess is the acceptance check behind `make
// net-trace`: a 3-OS-process loopback round run with per-node telemetry
// enabled must yield (a) the same bit-identical payment parity the
// untraced smoke asserts — tracing must not perturb the mechanism — and
// (b) one merged Chrome trace whose tracks span all three processes on
// a single aligned clock, with round-attributed datagram events.
func TestNetTraceMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process trace smoke skipped in -short mode")
	}
	requireUDP(t)
	dir := buildNetBinaries(t)
	cfgPath := writeLoopbackPeers(t, dir)
	for _, name := range []string{"w1", "w2"} {
		startWorker(t, dir, cfgPath, name, "-telemetry", "65536")
	}

	tracePath := filepath.Join(dir, "trace.json")
	serve := exec.Command(filepath.Join(dir, "dls-serve"),
		"-net-round", "-net-config", cfgPath, "-net-seed", "7", "-net-trace", tracePath)
	out, err := serve.Output()
	if err != nil {
		t.Fatalf("dls-serve -net-round -net-trace: %v\nstdout: %s", err, out)
	}
	var report struct {
		Parity        string         `json:"parity"`
		Diverged      []string       `json:"diverged"`
		TraceFile     string         `json:"trace_file"`
		TraceRecords  map[string]int `json:"trace_records"`
		TraceStitched int            `json:"trace_stitched"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("parsing report %q: %v", out, err)
	}
	if report.Parity != "ok" {
		t.Errorf("parity = %q (diverged: %v), want ok — tracing must not perturb payments",
			report.Parity, report.Diverged)
	}
	if report.TraceStitched != 3 {
		t.Errorf("trace_stitched = %d, want 3 processes", report.TraceStitched)
	}
	for _, proc := range []string{"serve", "w1", "w2"} {
		if report.TraceRecords[proc] == 0 {
			t.Errorf("process %s contributed no telemetry records: %v", proc, report.TraceRecords)
		}
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("merged trace missing: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	names := map[int]string{}
	rounds, datagrams := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Ph == "M" {
			names[ev.PID], _ = ev.Args["name"].(string)
			continue
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("event %q (pid %d) has negative merged timestamp %v", ev.Name, ev.PID, ev.TS)
		}
		if ev.Name == "net_tx" || ev.Name == "net_rx" {
			datagrams++
			if r, ok := ev.Args["round"].(string); ok && r != "" {
				rounds++
			}
		}
	}
	if len(names) != 3 {
		t.Fatalf("merged trace has %d process tracks (%v), want 3", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, proc := range []string{"serve", "w1", "w2"} {
		if !seen[proc] {
			t.Errorf("no track named %q in merged trace: %v", proc, names)
		}
	}
	if datagrams == 0 {
		t.Error("merged trace carries no datagram (net_tx/net_rx) events")
	}
	if rounds == 0 {
		t.Error("no datagram event carries a round attribution")
	}
}
