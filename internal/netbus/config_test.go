package netbus_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dlsbl/internal/netbus"
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// TestLoadConfig exercises the peer-table loader: a valid table round-
// trips, and every rejection class names its problem.
func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	good := write("good.json", `{"nodes": {
		"serve": {"addr": "127.0.0.1:9000", "endpoints": ["referee"]},
		"w1":    {"addr": "127.0.0.1:9001", "endpoints": ["P1", "P2"]}
	}}`)
	cfg, err := netbus.LoadConfig(good)
	if err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if owner, ok := cfg.Owner("P2"); !ok || owner != "w1" {
		t.Errorf("Owner(P2) = %q, %v; want w1, true", owner, ok)
	}
	if _, ok := cfg.Owner("P9"); ok {
		t.Error("Owner invented a node for an unknown endpoint")
	}
	if eps := cfg.Endpoints(); !reflect.DeepEqual(eps, []string{"P1", "P2", "referee"}) {
		t.Errorf("Endpoints() = %v, want sorted [P1 P2 referee]", eps)
	}

	cases := []struct {
		name, body, wantErr string
	}{
		{"not json", `{"nodes": `, "parsing"},
		{"empty table", `{"nodes": {}}`, "empty peer table"},
		{"empty node name", `{"nodes": {"": {"addr": "127.0.0.1:1", "endpoints": ["P1"]}}}`, "empty name"},
		{"bad addr", `{"nodes": {"w1": {"addr": "no-port", "endpoints": ["P1"]}}}`, "address"},
		{"empty endpoint", `{"nodes": {"w1": {"addr": "127.0.0.1:1", "endpoints": [""]}}}`, "empty endpoint"},
		{"duplicate endpoint", `{"nodes": {
			"w1": {"addr": "127.0.0.1:1", "endpoints": ["P1"]},
			"w2": {"addr": "127.0.0.1:2", "endpoints": ["P1"]}
		}}`, "owned by both"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := netbus.LoadConfig(write(strings.ReplaceAll(tc.name, " ", "_")+".json", tc.body))
			if err == nil {
				t.Fatal("bad table accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	if _, err := netbus.LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestMediumIntrospection covers the driver-side accessors and the
// liveness probe: bound address, sorted endpoint listing, tracer
// events on the delivery path, and pings against live, local and
// unknown nodes.
func TestMediumIntrospection(t *testing.T) {
	requireUDP(t)
	m := startCluster(t, []string{"referee"}, map[string][]string{"w1": {"P1"}})
	if m.LocalAddr() == nil {
		t.Error("LocalAddr() = nil after Dial")
	}
	for _, ep := range []string{"referee", "P1"} {
		if err := m.Attach(ep); err != nil {
			t.Fatal(err)
		}
	}
	if eps := m.Endpoints(); !reflect.DeepEqual(eps, []string{"P1", "referee"}) {
		t.Errorf("Endpoints() = %v, want sorted [P1 referee]", eps)
	}

	if err := m.Ping("w1"); err != nil {
		t.Errorf("ping of a live node: %v", err)
	}
	if err := m.Ping("serve"); err != nil {
		t.Errorf("ping of the local node must be a no-op, got %v", err)
	}
	if err := m.Ping("nope"); err == nil {
		t.Error("ping of an unknown node succeeded")
	}

	rec := obs.NewRecorder()
	m.SetTracer(rec)
	k, err := sig.GenerateKeyPair("referee", sig.DeterministicSource(1))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "k", map[string]any{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SendTagged("referee", "P1", "k", env, 1, 0); err != nil {
		t.Fatal(err)
	}
	m.SetTracer(nil)
	records := rec.Records()
	if len(records) == 0 || records[len(records)-1].Name != obs.EvDeliver {
		t.Errorf("tracer saw %+v, want a trailing deliver record", records)
	}
}

// TestNodeName covers the trivial accessor alongside a real listen.
func TestNodeName(t *testing.T) {
	cfg := &netbus.Config{Nodes: map[string]netbus.NodeSpec{
		"n": {Addr: "127.0.0.1:0", Endpoints: []string{"P1"}},
	}}
	n, err := netbus.ListenNode(cfg, "n")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer n.Close()
	if n.Name() != "n" {
		t.Errorf("Name() = %q, want n", n.Name())
	}
}
