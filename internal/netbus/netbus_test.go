package netbus_test

import (
	"net"
	"reflect"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/netbus"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// requireUDP skips the test where loopback UDP sockets are unavailable
// (some sandboxes forbid them) — the graceful-skip contract of the
// net-smoke CI gate.
func requireUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

// startCluster boots one mailbox node per entry of workers on ephemeral
// loopback ports, then dials the driver medium as node "serve" hosting
// the serveEndpoints. Everything is torn down with the test.
func startCluster(t *testing.T, serveEndpoints []string, workers map[string][]string) *netbus.Medium {
	t.Helper()
	cfg := &netbus.Config{Nodes: map[string]netbus.NodeSpec{
		"serve": {Addr: "127.0.0.1:0", Endpoints: serveEndpoints},
	}}
	for name, eps := range workers {
		cfg.Nodes[name] = netbus.NodeSpec{Addr: "127.0.0.1:0", Endpoints: eps}
	}
	for name := range workers {
		n, err := netbus.ListenNode(cfg, name)
		if err != nil {
			t.Fatalf("ListenNode(%s): %v", name, err)
		}
		// Re-enter the bound port into the table so the driver can
		// route to it.
		spec := cfg.Nodes[name]
		spec.Addr = n.LocalAddr().String()
		cfg.Nodes[name] = spec
		go n.Serve()
		t.Cleanup(func() { n.Close() })
	}
	m, err := netbus.Dial(cfg, "serve", netbus.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestNetBusParity is the tentpole acceptance check: a full protocol
// round whose control plane crosses real UDP sockets (the referee local
// to the driver, the four processors split across two mailbox nodes)
// must produce payments, verdicts and a referee transcript bit-identical
// to the same round on the simulated in-process bus with the same seed
// and keyring.
func TestNetBusParity(t *testing.T) {
	requireUDP(t)
	base := protocol.Config{
		Network: dlt.NCPFE,
		Z:       0.2,
		TrueW:   []float64{1, 1.5, 2, 2.5},
		Seed:    7,
	}
	cases := []struct {
		name      string
		behaviors []agent.Behavior
	}{
		{name: "honest"},
		{name: "equivocator", behaviors: []agent.Behavior{{}, agent.Equivocator}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			simCfg := base
			simCfg.Behaviors = tc.behaviors
			simKeys := sig.NewKeyring()
			simCfg.Keys = simKeys
			simOut, err := protocol.Run(simCfg)
			if err != nil {
				t.Fatalf("simulated run: %v", err)
			}

			m := startCluster(t, []string{"referee"},
				map[string][]string{"w1": {"P1", "P2"}, "w2": {"P3", "P4"}})
			netCfg := base
			netCfg.Behaviors = tc.behaviors
			netCfg.Keys = simKeys // same keyring, per the acceptance criteria
			netCfg.Medium = m
			netOut, err := protocol.Run(netCfg)
			if err != nil {
				t.Fatalf("netbus run: %v", err)
			}

			if !reflect.DeepEqual(simOut.Payments, netOut.Payments) {
				t.Errorf("payments diverge:\n sim %v\n net %v", simOut.Payments, netOut.Payments)
			}
			if !reflect.DeepEqual(simOut.Fines, netOut.Fines) {
				t.Errorf("fines diverge:\n sim %v\n net %v", simOut.Fines, netOut.Fines)
			}
			if !reflect.DeepEqual(simOut.Utilities, netOut.Utilities) {
				t.Errorf("utilities diverge:\n sim %v\n net %v", simOut.Utilities, netOut.Utilities)
			}
			if !reflect.DeepEqual(simOut.Verdicts, netOut.Verdicts) {
				t.Errorf("verdicts diverge:\n sim %+v\n net %+v", simOut.Verdicts, netOut.Verdicts)
			}
			if !reflect.DeepEqual(simOut.Transcript, netOut.Transcript) {
				t.Errorf("transcripts diverge:\n sim %+v\n net %+v", simOut.Transcript, netOut.Transcript)
			}
			if st := m.Stats(); st.Dropped != 0 || st.Deliveries == 0 {
				t.Errorf("loopback stats: %+v (want zero drops, nonzero deliveries)", st)
			}
		})
	}
}

// TestNetBusMediumReuse runs two rounds over one long-lived medium —
// Attach must be idempotent and the logical nonce space must keep
// advancing so rounds never collide.
func TestNetBusMediumReuse(t *testing.T) {
	requireUDP(t)
	m := startCluster(t, []string{"referee"},
		map[string][]string{"w1": {"P1", "P2"}, "w2": {"P3", "P4"}})
	cfg := protocol.Config{
		Network: dlt.NCPFE,
		Z:       0.2,
		TrueW:   []float64{1, 1.5, 2, 2.5},
		Seed:    7,
		Medium:  m,
		Keys:    sig.NewKeyring(),
	}
	first, err := protocol.Run(cfg)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	second, err := protocol.Run(cfg)
	if err != nil {
		t.Fatalf("round 2 over the same medium: %v", err)
	}
	if !reflect.DeepEqual(first.Payments, second.Payments) {
		t.Errorf("same config, same medium, diverging payments: %v vs %v", first.Payments, second.Payments)
	}
}

// TestMediumRejectsStrangers pins the addressing errors: traffic naming
// endpoints outside the peer table (or not yet attached) must fail
// loudly instead of silently routing nowhere.
func TestMediumRejectsStrangers(t *testing.T) {
	requireUDP(t)
	m := startCluster(t, []string{"referee"}, map[string][]string{"w1": {"P1"}})
	if err := m.Attach("P9"); err == nil {
		t.Error("attached an endpoint the peer table does not know")
	}
	if err := m.Attach("P1"); err != nil {
		t.Fatalf("attach P1: %v", err)
	}
	if err := m.Attach("P1"); err != nil {
		t.Errorf("re-attach must be idempotent, got %v", err)
	}
	if _, err := m.SendTagged("ghost", "P1", "k", sig.Envelope{}, 1, 0); err == nil {
		t.Error("send from unattached sender succeeded")
	}
	if _, err := m.Drain("ghost"); err == nil {
		t.Error("drain of unknown endpoint succeeded")
	}
	if _, err := m.SendTagged("P1", "P1", "k", sig.Envelope{}, -1, 0); err == nil {
		t.Error("negative size accepted")
	}
}

// TestFaultVocabularyOnSockets pins the drop accounting: a message to
// an endpoint whose node is down is recorded as a drop (the simulated
// bus's vocabulary), not surfaced as an error — recovery belongs to the
// protocol's retry layer.
func TestFaultVocabularyOnSockets(t *testing.T) {
	requireUDP(t)
	// Reserve a port for "w1", then close it so the node is dark.
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	darkAddr := c.LocalAddr().String()
	c.Close()
	cfg := &netbus.Config{Nodes: map[string]netbus.NodeSpec{
		"serve": {Addr: "127.0.0.1:0", Endpoints: []string{"referee"}},
		"w1":    {Addr: darkAddr, Endpoints: []string{"P1"}},
	}}
	m, err := netbus.Dial(cfg, "serve", netbus.Options{AckTimeout: 10_000_000, MaxAttempts: 2}) // 10ms
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, ep := range []string{"referee", "P1"} {
		if err := m.Attach(ep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SendTagged("referee", "P1", "k", sig.Envelope{}, 1, 0); err != nil {
		t.Fatalf("send to dark node must not error, got %v", err)
	}
	if st := m.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (st %+v)", st.Dropped, st)
	}
	if msgs, err := m.Drain("P1"); err != nil || len(msgs) != 0 {
		t.Errorf("drain of dark endpoint: msgs=%d err=%v, want silence", len(msgs), err)
	}
}
