package netbus_test

import (
	"strings"
	"testing"

	"dlsbl/internal/netbus"
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// startTelemetryPair boots one worker node hosting P1 with its
// telemetry buffer armed, and dials the driver medium against it. It
// returns both handles — unlike startCluster, the node itself is under
// test here.
func startTelemetryPair(t *testing.T, cap int) (*netbus.Medium, *netbus.Node) {
	t.Helper()
	cfg := &netbus.Config{Nodes: map[string]netbus.NodeSpec{
		"serve": {Addr: "127.0.0.1:0", Endpoints: []string{"referee"}},
		"w1":    {Addr: "127.0.0.1:0", Endpoints: []string{"P1"}},
	}}
	n, err := netbus.ListenNode(cfg, "w1")
	if err != nil {
		t.Fatalf("ListenNode(w1): %v", err)
	}
	n.EnableTelemetry(cap)
	spec := cfg.Nodes["w1"]
	spec.Addr = n.LocalAddr().String()
	cfg.Nodes["w1"] = spec
	go n.Serve()
	t.Cleanup(func() { n.Close() })
	m, err := netbus.Dial(cfg, "serve", netbus.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	for _, ep := range []string{"referee", "P1"} {
		if err := m.Attach(ep); err != nil {
			t.Fatal(err)
		}
	}
	return m, n
}

// TestCollectTelemetryRoundTrip pins the pull path end to end in one
// process: the worker's datagram events carry the round context the
// driver stamped into the frames, a second collection is incremental
// (acked records are pruned, never re-served), and a large backlog
// pages across multiple FlagMore frames without loss or duplication.
func TestCollectTelemetryRoundTrip(t *testing.T) {
	requireUDP(t)
	m, _ := startTelemetryPair(t, 0)
	m.SetRoundContext("s9:r1", "e1")

	const sends = 200
	for i := 0; i < sends; i++ {
		if _, err := m.SendTagged("referee", "P1", "dls/bid", sig.Envelope{}, 1, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := m.CollectTelemetry("w1")
	if err != nil {
		t.Fatal(err)
	}
	// Every delivery is observed twice on the worker (message rx, ack
	// tx); the tail ack may still be in flight when the harvest runs. A
	// backlog this size cannot fit one datagram, so a near-complete
	// harvest proves the FlagMore paging works.
	if len(recs) < 2*sends-2 {
		t.Fatalf("collected %d records from %d sends, want at least %d", len(recs), sends, 2*sends-2)
	}
	seen := map[int]bool{}
	attributed := false
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("record seq %d served twice", r.Seq)
		}
		seen[r.Seq] = true
		if r.Name == obs.EvNetRx && r.Round == "s9:r1" && r.Origin != 0 {
			attributed = true
		}
	}
	if !attributed {
		t.Fatal("no collected net_rx record carries the driver's round context and frame origin")
	}

	// Incremental: the first harvest acked (and pruned) everything.
	again, err := m.CollectTelemetry("w1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if seen[r.Seq] {
			t.Fatalf("second collection re-served seq %d", r.Seq)
		}
	}
}

func TestCollectTelemetryUnarmedNode(t *testing.T) {
	requireUDP(t)
	cfg := &netbus.Config{Nodes: map[string]netbus.NodeSpec{
		"serve": {Addr: "127.0.0.1:0", Endpoints: []string{"referee"}},
		"w1":    {Addr: "127.0.0.1:0", Endpoints: []string{"P1"}},
	}}
	n, err := netbus.ListenNode(cfg, "w1")
	if err != nil {
		t.Fatal(err)
	}
	spec := cfg.Nodes["w1"]
	spec.Addr = n.LocalAddr().String()
	cfg.Nodes["w1"] = spec
	go n.Serve()
	t.Cleanup(func() { n.Close() })
	m, err := netbus.Dial(cfg, "serve", netbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	// An unarmed node answers with an empty stream, not an error — the
	// driver (dls-serve -net-trace) turns that into its own diagnostic.
	recs, err := m.CollectTelemetry("w1")
	if err != nil {
		t.Fatalf("collecting from an unarmed node errored: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("unarmed node served %d records, want none", len(recs))
	}
}

// TestWriteNodePrometheus exercises the per-node exposition a scraper
// sees behind dls-node -metrics-addr.
func TestWriteNodePrometheus(t *testing.T) {
	requireUDP(t)
	m, n := startTelemetryPair(t, 64)
	if _, err := m.SendTagged("referee", "P1", "dls/bid", sig.Envelope{}, 1, 1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := n.WriteNodePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE node_datagrams_in_total counter",
		"# TYPE node_datagrams_out_total counter",
		"# TYPE node_enqueued_total counter",
		`node_mailbox_depth{endpoint="P1"} 1`,
		"# TYPE node_telemetry_records gauge",
		`node_info{node="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "node_datagrams_in_total 0") {
		t.Fatalf("no inbound datagrams counted after a delivery:\n%s", out)
	}
}
