package netbus_test

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestNetSmokeMultiProcess is the deployment acceptance check behind
// `make net-smoke`: it builds the real binaries, boots 1 driver + 2
// worker OS processes on loopback UDP, runs a full round through
// dls-serve -net-round and asserts the built-in parity verdict. It
// skips where sockets or the go tool are unavailable, and under -short
// (the build+spawn cost is not worth paying in every unit-test loop).
func TestNetSmokeMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	requireUDP(t)
	dir := buildNetBinaries(t)
	cfgPath := writeLoopbackPeers(t, dir)
	for _, name := range []string{"w1", "w2"} {
		startWorker(t, dir, cfgPath, name)
	}

	serve := exec.Command(filepath.Join(dir, "dls-serve"),
		"-net-round", "-net-config", cfgPath, "-net-seed", "7")
	out, err := serve.Output()
	if err != nil {
		t.Fatalf("dls-serve -net-round: %v\nstdout: %s", err, out)
	}
	var report struct {
		Parity   string    `json:"parity"`
		Payments []float64 `json:"payments"`
		Dropped  int       `json:"dropped"`
		Diverged []string  `json:"diverged"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("parsing report %q: %v", out, err)
	}
	if report.Parity != "ok" {
		t.Errorf("parity = %q (diverged: %v), want ok", report.Parity, report.Diverged)
	}
	if len(report.Payments) != 4 {
		t.Errorf("payments %v, want 4 entries", report.Payments)
	}
	if report.Dropped != 0 {
		t.Errorf("dropped = %d on loopback, want 0", report.Dropped)
	}
}
