package netbus_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestNetSmokeMultiProcess is the deployment acceptance check behind
// `make net-smoke`: it builds the real binaries, boots 1 driver + 2
// worker OS processes on loopback UDP, runs a full round through
// dls-serve -net-round and asserts the built-in parity verdict. It
// skips where sockets or the go tool are unavailable, and under -short
// (the build+spawn cost is not worth paying in every unit-test loop).
func TestNetSmokeMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	requireUDP(t)
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for _, cmdName := range []string{"dls-node", "dls-serve"} {
		build := exec.Command(goTool, "build", "-o", filepath.Join(dir, cmdName), "./cmd/"+cmdName)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", cmdName, err, out)
		}
	}

	// Preallocate three free loopback ports. The close→rebind window is
	// a benign race on loopback; the ports were free a moment ago.
	ports := make([]int, 3)
	for i := range ports {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
		c.Close()
	}
	peers := fmt.Sprintf(`{"nodes": {
		"serve": {"addr": "127.0.0.1:%d", "endpoints": ["referee"]},
		"w1":    {"addr": "127.0.0.1:%d", "endpoints": ["P1", "P2"]},
		"w2":    {"addr": "127.0.0.1:%d", "endpoints": ["P3", "P4"]}
	}}`, ports[0], ports[1], ports[2])
	cfgPath := filepath.Join(dir, "peers.json")
	if err := os.WriteFile(cfgPath, []byte(peers), 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot the two worker processes and wait for their ready lines.
	for _, name := range []string{"w1", "w2"} {
		node := exec.Command(filepath.Join(dir, "dls-node"), "-config", cfgPath, "-node", name)
		stdout, err := node.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatalf("starting dls-node %s: %v", name, err)
		}
		t.Cleanup(func() {
			node.Process.Signal(syscall.SIGTERM)
			node.Wait()
		})
		ready := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			if sc.Scan() {
				ready <- sc.Text()
			}
			close(ready)
		}()
		select {
		case line := <-ready:
			if !strings.HasPrefix(line, "ready node="+name) {
				t.Fatalf("dls-node %s startup line %q, want ready node=%s ...", name, line, name)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("dls-node %s never printed its ready line", name)
		}
	}

	serve := exec.Command(filepath.Join(dir, "dls-serve"),
		"-net-round", "-net-config", cfgPath, "-net-seed", "7")
	out, err := serve.Output()
	if err != nil {
		t.Fatalf("dls-serve -net-round: %v\nstdout: %s", err, out)
	}
	var report struct {
		Parity   string    `json:"parity"`
		Payments []float64 `json:"payments"`
		Dropped  int       `json:"dropped"`
		Diverged []string  `json:"diverged"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("parsing report %q: %v", out, err)
	}
	if report.Parity != "ok" {
		t.Errorf("parity = %q (diverged: %v), want ok", report.Parity, report.Diverged)
	}
	if len(report.Payments) != 4 {
		t.Errorf("payments %v, want 4 entries", report.Payments)
	}
	if report.Dropped != 0 {
		t.Errorf("dropped = %d on loopback, want 0", report.Dropped)
	}
}
