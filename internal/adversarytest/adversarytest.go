// Package adversarytest builds deterministic, seeded attacker models for
// the Byzantine adversary tiers the protocol defends against, so every
// test and benchmark drives the SAME reproducible adversaries instead of
// hand-rolling fault plans:
//
//   - Tier 1, targeted message faults: per-pair drop/corrupt rules
//     (SeverLinks, IsolatePair, RandomPairs) that degrade exactly the
//     links an attacker controls while every other pair stays clean.
//     The protocol answer is the witness-corroboration rule — an
//     eviction needs ≥⌈m/2⌉ distinct witnesses, a lone report triggers
//     a referee bid relay instead.
//
//   - Tier 2, framing: a strategic processor files a fabricated
//     unreachability report against a rival (Framing). The rival is
//     never evicted (one witness < threshold) and the maintained claim
//     convicts the framer.
//
//   - Tier 3, fail-stop crashes: processors that die mid-computation
//     (CrashPlan), answered by checkpointed re-allocation over the
//     survivors with completed installments still credited.
//
// Everything is a plain value builder over bus.FaultPlan /
// agent.Behavior — no test-framework dependency — so the same models
// serve go tests, fuzz targets, the X19 experiment and dls-bench.
package adversarytest

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
)

// ProcID returns the canonical bus identity of the processor at config
// index i ("P1" for 0), matching the protocol layer's naming.
func ProcID(i int) string { return fmt.Sprintf("P%d", i+1) }

// Framing returns an m-processor behavior slice in which the processor
// at config index `attacker` runs the framing attack (agent.Framer: it
// files an unreachability report against its next neighbour and
// maintains the claim against the referee's verified bid relay); every
// other processor is honest.
func Framing(m, attacker int) []agent.Behavior {
	bs := make([]agent.Behavior, m)
	if attacker >= 0 && attacker < m {
		bs[attacker] = agent.Framer
	}
	return bs
}

// FramingRival returns the config index of the processor a framer at
// `attacker` accuses — its successor in index order among m processors,
// matching the protocol's framing target.
func FramingRival(m, attacker int) int { return (attacker + 1) % m }

// SeverLinks severs the directed links from each listed sender to the
// victim (Drop=1 pair rules): the strategic dropper's tool for making a
// rival look unreachable to a chosen subset of the pool. The plan's
// seed fixes every residual fault draw.
func SeverLinks(seed int64, victim string, senders ...string) *bus.FaultPlan {
	p := &bus.FaultPlan{Seed: seed}
	for _, s := range senders {
		p.Pairs = append(p.Pairs, bus.PairFault{From: s, To: victim, Drop: 1})
	}
	return p
}

// Blackhole severs the directed links from one sender to each listed
// receiver (Drop=1 pair rules): the receivers all miss the sender's bid,
// so each becomes a distinct corroborating witness against it. Black-
// holing ≥ referee.CorroborationThreshold(m) receivers is the smallest
// genuine outage that evicts the sender; fewer receivers stay below
// threshold and the referee's bid relay heals the round.
func Blackhole(seed int64, sender string, receivers ...string) *bus.FaultPlan {
	p := &bus.FaultPlan{Seed: seed}
	for _, r := range receivers {
		p.Pairs = append(p.Pairs, bus.PairFault{From: sender, To: r, Drop: 1})
	}
	return p
}

// IsolatePair severs both directions between two processors — the
// smallest genuine partition: each sees the other as missing, neither
// side can reach the corroboration threshold on its own, and the
// referee's bid relay heals the round.
func IsolatePair(seed int64, a, b string) *bus.FaultPlan {
	return &bus.FaultPlan{Seed: seed, Pairs: []bus.PairFault{
		{From: a, To: b, Drop: 1},
		{From: b, To: a, Drop: 1},
	}}
}

// RandomPairs draws n distinct directed links among m processors from a
// PRNG seeded with seed and applies the given drop probability to each —
// the randomized tier-1 adversary behind the property tests. The same
// (seed, m, n, drop) always yields the same plan.
func RandomPairs(seed int64, m, n int, drop float64) *bus.FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &bus.FaultPlan{Seed: seed}
	seen := make(map[[2]int]bool, n)
	for len(p.Pairs) < n && len(seen) < m*(m-1) {
		from := rng.Intn(m)
		to := rng.Intn(m)
		if from == to || seen[[2]int{from, to}] {
			continue
		}
		seen[[2]int{from, to}] = true
		p.Pairs = append(p.Pairs, bus.PairFault{From: ProcID(from), To: ProcID(to), Drop: drop})
	}
	return p
}

// CrashPlan fail-stops the listed processors at the start of the
// Processing Load phase of the given 1-based installment (0 fires on
// the first round that reaches the phase).
func CrashPlan(seed int64, installment int, procs ...string) *bus.FaultPlan {
	p := &bus.FaultPlan{Seed: seed}
	for _, id := range procs {
		p.Crashes = append(p.Crashes, bus.Crash{Proc: id, Installment: installment})
	}
	return p
}

// Merge folds the Pairs and Crashes of the later plans into the first
// (returning it), so composite adversaries — a dropper AND a crash, say
// — build from the primitive builders. The first plan's scalar fields
// (Seed, global probabilities) win.
func Merge(base *bus.FaultPlan, more ...*bus.FaultPlan) *bus.FaultPlan {
	for _, p := range more {
		if p == nil {
			continue
		}
		base.Pairs = append(base.Pairs, p.Pairs...)
		base.Crashes = append(base.Crashes, p.Crashes...)
	}
	return base
}
