package adversarytest

import (
	"reflect"
	"testing"

	"dlsbl/internal/bus"
)

func TestRandomPairsDeterministic(t *testing.T) {
	a := RandomPairs(42, 6, 8, 0.5)
	b := RandomPairs(42, 6, 8, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Pairs) != 8 {
		t.Fatalf("drew %d pairs, want 8", len(a.Pairs))
	}
	seen := make(map[[2]string]bool)
	for _, p := range a.Pairs {
		if p.From == p.To {
			t.Errorf("self-link %s→%s", p.From, p.To)
		}
		key := [2]string{p.From, p.To}
		if seen[key] {
			t.Errorf("duplicate link %s→%s", p.From, p.To)
		}
		seen[key] = true
		if p.Drop != 0.5 {
			t.Errorf("link %s→%s drop = %v, want 0.5", p.From, p.To, p.Drop)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if c := RandomPairs(43, 6, 8, 0.5); reflect.DeepEqual(a.Pairs, c.Pairs) {
		t.Error("different seeds drew identical plans")
	}
	// Requesting more links than exist saturates instead of spinning.
	if full := RandomPairs(1, 3, 100, 1); len(full.Pairs) != 6 {
		t.Errorf("m=3 has 6 directed links, drew %d", len(full.Pairs))
	}
}

func TestBuildersShapeValidPlans(t *testing.T) {
	for name, plan := range map[string]*bus.FaultPlan{
		"sever":     SeverLinks(1, "P3", "P1", "P2"),
		"blackhole": Blackhole(1, "P3", "P1", "P2"),
		"isolate":   IsolatePair(1, "P1", "P4"),
		"crash":     CrashPlan(1, 2, "P2", "P4"),
	} {
		if err := plan.Validate(); err != nil {
			t.Errorf("%s plan invalid: %v", name, err)
		}
	}
	sever := SeverLinks(1, "P3", "P1", "P2")
	for _, p := range sever.Pairs {
		if p.To != "P3" || p.Drop != 1 {
			t.Errorf("sever pair %+v, want →P3 with Drop=1", p)
		}
	}
	bh := Blackhole(1, "P3", "P1", "P2")
	for _, p := range bh.Pairs {
		if p.From != "P3" || p.Drop != 1 {
			t.Errorf("blackhole pair %+v, want P3→ with Drop=1", p)
		}
	}
	iso := IsolatePair(1, "P1", "P4")
	if len(iso.Pairs) != 2 || iso.Pairs[0].From != "P1" || iso.Pairs[1].From != "P4" {
		t.Errorf("isolate pairs = %+v, want both directions", iso.Pairs)
	}
	cp := CrashPlan(1, 2, "P2", "P4")
	if len(cp.Crashes) != 2 || cp.Crashes[0] != (bus.Crash{Proc: "P2", Installment: 2}) {
		t.Errorf("crash plan = %+v", cp.Crashes)
	}
}

func TestMergeComposesPlans(t *testing.T) {
	got := Merge(Blackhole(7, "P3", "P1"), CrashPlan(9, 1, "P2"), nil)
	if got.Seed != 7 {
		t.Errorf("merged seed = %d, want the base's 7", got.Seed)
	}
	if len(got.Pairs) != 1 || len(got.Crashes) != 1 {
		t.Errorf("merged plan = %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("merged plan invalid: %v", err)
	}
}

func TestFramingHelpers(t *testing.T) {
	bs := Framing(5, 2)
	if len(bs) != 5 {
		t.Fatalf("len = %d", len(bs))
	}
	for i, b := range bs {
		if (i == 2) != b.FrameRival {
			t.Errorf("seat %d FrameRival = %v", i, b.FrameRival)
		}
	}
	if FramingRival(5, 2) != 3 || FramingRival(5, 4) != 0 {
		t.Error("FramingRival must be the successor mod m")
	}
	if ProcID(0) != "P1" || ProcID(11) != "P12" {
		t.Errorf("ProcID naming broken: %s, %s", ProcID(0), ProcID(11))
	}
}
