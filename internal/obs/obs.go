// Package obs is the protocol's observability layer: structured tracing
// of phase spans and per-message events, with NDJSON and Chrome
// trace-event exports, plus build metadata for the service's telemetry
// surfaces.
//
// The design contract is "zero overhead when nil": producers (the bus,
// the reliable transport, the protocol phases) hold a Tracer interface
// and guard every emission with a nil check, so a run configured without
// tracing executes exactly the pre-tracing instruction stream — payments
// and audit transcripts are bit-identical either way (pinned by
// TestTracerNilParity in internal/protocol).
//
// A Tracer only observes. Nothing a Tracer does may feed back into
// protocol decisions: timestamps are wall-clock annotations on a
// virtual-time simulation and never enter an allocation, a payment or a
// verdict.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the bus, the reliable transport and the
// protocol phases. Bus-level kinds double as the fault class of the
// delivery they describe.
const (
	// Bus delivery pipeline (internal/bus).
	EvDeliver   = "deliver"   // a copy reached a receiver's inbox
	EvDrop      = "drop"      // a copy was lost (fault plan or blackholed endpoint)
	EvCorrupt   = "corrupt"   // a copy suffered a signature-breaking bit flip
	EvDuplicate = "duplicate" // a copy was cloned in flight
	EvDelay     = "delay"     // a copy was deferred to a later drain
	EvReorder   = "reorder"   // a copy jumped the receiver's queue

	// Reliable transport (internal/protocol).
	EvDedupHit       = "dedup_hit"       // an already-seen (sender, nonce) copy was discarded
	EvCorruptDiscard = "corrupt_discard" // a copy failed signature verification on arrival
	EvRetransmit     = "retransmit"      // a logical message was transmitted again
	EvTimeout        = "timeout"         // a retry round ended with deliveries still missing

	// Protocol phases.
	EvEviction   = "eviction"    // a processor was removed for unreachability
	EvBidReused  = "bid_reused"  // a round was served from a BidSession's cached bids
	EvBidSpliced = "bid_spliced" // a single changed member re-bid; the rest of the cache was spliced in
	EvConviction = "conviction"  // a verdict fined a processor

	// Verification fast path (internal/sig.BatchVerifier).
	EvVerifyBatch   = "verify_batch"    // a batch of envelopes was verified in one pass
	EvVerifyMemoHit = "verify_memo_hit" // verifications skipped via the verified-envelope memo

	// Pipelined scheduler (internal/pipeline).
	EvInstallment = "installment" // a sub-round served one installment of a pipelined load
	EvPacked      = "packed"      // a batch of jobs was packed into one shared bus schedule

	// Byzantine adversary tiers (internal/protocol, internal/referee).
	EvWitnessReport     = "witness_report"     // a witness reported a peer's bid unreachable
	EvFramingConviction = "framing_conviction" // a witness maintained its claim after a verified relay and was fined
	EvCheckpointResume  = "checkpoint_resume"  // survivors re-solved the instance after a mid-computation crash
	EvRefereeFailover   = "referee_failover"   // the standby referee was promoted mid-round

	// Netbus datagram layer (internal/netbus). Origin carries the frame
	// nonce so the same exchange is matchable across the driver's and the
	// node's traces (the clock-stitching key).
	EvNetTx      = "net_tx"      // a datagram left this process
	EvNetRx      = "net_rx"      // a datagram was received and accepted
	EvDecodeFail = "decode_fail" // a received datagram failed frame decoding

	// Economic sentinels (internal/protocol → Sentinel).
	EvPayment     = "payment"      // one processor's settled payment: Values = [Q, C, B] (load-fraction scaled)
	EvInvoice     = "invoice"      // the round's invoice total billed to the user: Values = [total]
	EvLoadSettled = "load_settled" // a pipelined load's aggregate payment across installments: Values = [total]
	EvEvidence    = "evidence"     // the referee received a signed, verifiable piece of evidence
)

// Phase names used for spans. Initialization covers setup (identities,
// keys, PKI, dataset); the other four are the paper's protocol phases.
const (
	PhaseInit       = "initialization"
	PhaseBidding    = "bidding"
	PhaseAllocating = "allocating"
	PhaseProcessing = "processing"
	PhasePayments   = "payments"
)

// Event is one point occurrence: a bus delivery outcome, a transport
// decision or a protocol incident. From/To are bus endpoint identities
// ("P3", "referee"); Msg is the protocol message kind ("dls/bid");
// Round, when empty, is filled by the receiving Tracer from the
// enclosing phase's round ID.
type Event struct {
	Kind   string
	From   string
	To     string
	Msg    string
	Round  string
	Detail string
	// Origin is the netbus frame nonce of the datagram this event
	// describes (zero when the event is not datagram-scoped). The same
	// exchange carries the same Origin in the driver's and the owning
	// node's traces, which is what lets the stitcher align their clocks.
	Origin uint64
	// Values carries the event's numeric payload — e.g. [Q, C, B] on a
	// payment event — so sentinels can check arithmetic invariants
	// without parsing Detail strings.
	Values []float64
}

// Tracer receives span and event records. Implementations must be safe
// for use from a single protocol run at a time; Recorder additionally
// locks so one Tracer can serve concurrent runs (e.g. a service pool
// observer shared with a snapshot reader).
//
// Producers MUST guard every call with a nil check — the nil Tracer is
// the documented zero-cost path.
type Tracer interface {
	// BeginPhase opens a span. round is the session-salted round ID in
	// force ("" for standalone runs); epoch is the round the bid set in
	// force was signed in.
	BeginPhase(name, round, epoch string)
	// EndPhase closes the most recent open span with this name.
	EndPhase(name string)
	// Event records a point occurrence inside the current span.
	Event(e Event)
}

// Record is one serialized trace record — the NDJSON line format and the
// input to the Chrome trace-event exporter. Type is "begin" or "end" for
// phase spans, "event" for point events, and "truncated" for the marker
// a capped recorder prepends when older records were dropped; TS is
// microseconds of wall time since the recorder's first record,
// non-decreasing across the record stream. Wall is the absolute wall
// clock (Unix microseconds) at emission — meaningless inside one
// process's trace, but the raw material the cross-process stitcher's
// clock alignment works from.
type Record struct {
	Seq    int       `json:"seq"`
	TS     float64   `json:"ts_us"`
	Wall   float64   `json:"wall_us,omitempty"`
	Type   string    `json:"type"`
	Name   string    `json:"name"`
	Phase  string    `json:"phase,omitempty"`
	Round  string    `json:"round,omitempty"`
	Epoch  string    `json:"epoch,omitempty"`
	From   string    `json:"from,omitempty"`
	To     string    `json:"to,omitempty"`
	Msg    string    `json:"msg,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Origin uint64    `json:"origin,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// Recorder is the standard Tracer: it timestamps and sequences records,
// annotates events with the enclosing phase and round, and either
// retains the records for later export (NewRecorder) or streams each one
// as an NDJSON line the moment it is emitted (NewStream, which retains
// nothing — the shape a long-running service wants).
type Recorder struct {
	mu      sync.Mutex
	started bool
	start   time.Time
	last    float64
	seq     int
	recs    []Record
	keep    bool
	cap     int // retained-record ceiling; 0 = unbounded
	dropped int // records the cap evicted, reported by the truncated marker
	sink    *json.Encoder
	sinkErr error

	// stack tracks open phases; round/epoch mirror the innermost span.
	stack []spanFrame
}

type spanFrame struct {
	name  string
	round string
	epoch string
}

// NewRecorder returns a Recorder that retains every record in memory for
// export via Records, WriteNDJSON or WriteChromeTrace.
func NewRecorder() *Recorder { return &Recorder{keep: true} }

// NewRecorderCap returns a retaining Recorder that keeps at most n
// records, evicting the oldest first (a ring). When anything was
// evicted, Records prepends a single "truncated" marker record carrying
// the drop count — a leaked long-lived recorder degrades to a bounded
// window instead of growing without limit. n <= 0 selects an unbounded
// recorder, identical to NewRecorder.
func NewRecorderCap(n int) *Recorder {
	if n <= 0 {
		return NewRecorder()
	}
	return &Recorder{keep: true, cap: n}
}

// NewStream returns a Recorder that writes each record to w as one
// NDJSON line at emission time and retains nothing. Write errors are
// sticky and reported by Err — tracing must never fail the traced run.
func NewStream(w io.Writer) *Recorder {
	return &Recorder{sink: json.NewEncoder(w)}
}

// Err reports the first sink write error a streaming Recorder hit, nil
// otherwise (and always nil for in-memory recorders).
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// now returns microseconds since the first record, clamped to be
// non-decreasing (span nesting stays monotonic even if the clock steps).
// Caller holds r.mu.
func (r *Recorder) now() float64 {
	if !r.started {
		r.started = true
		r.start = time.Now()
	}
	t := float64(time.Since(r.start)) / float64(time.Microsecond)
	if t < r.last {
		t = r.last
	}
	r.last = t
	return t
}

// emit seals one record. Caller holds r.mu.
func (r *Recorder) emit(rec Record) {
	rec.Seq = r.seq
	r.seq++
	rec.TS = r.now()
	rec.Wall = float64(time.Now().UnixMicro())
	if r.keep {
		if r.cap > 0 && len(r.recs) >= r.cap {
			evict := len(r.recs) - r.cap + 1
			r.dropped += evict
			r.recs = append(r.recs[:0], r.recs[evict:]...)
		}
		r.recs = append(r.recs, rec)
	}
	if r.sink != nil && r.sinkErr == nil {
		r.sinkErr = r.sink.Encode(rec)
	}
}

// BeginPhase implements Tracer.
func (r *Recorder) BeginPhase(name, round, epoch string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stack = append(r.stack, spanFrame{name: name, round: round, epoch: epoch})
	r.emit(Record{Type: "begin", Name: name, Round: round, Epoch: epoch})
}

// EndPhase implements Tracer. An EndPhase with no matching open span is
// recorded anyway (the exporters tolerate it) — a Tracer never panics a
// run.
func (r *Recorder) EndPhase(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var round, epoch string
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i].name == name {
			round, epoch = r.stack[i].round, r.stack[i].epoch
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
	r.emit(Record{Type: "end", Name: name, Round: round, Epoch: epoch})
}

// Event implements Tracer.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := Record{
		Type:   "event",
		Name:   e.Kind,
		From:   e.From,
		To:     e.To,
		Msg:    e.Msg,
		Round:  e.Round,
		Detail: e.Detail,
		Origin: e.Origin,
		Values: e.Values,
	}
	if n := len(r.stack); n > 0 {
		top := r.stack[n-1]
		rec.Phase = top.name
		if rec.Round == "" {
			rec.Round = top.round
		}
	}
	r.emit(rec)
}

// Records returns a copy of the retained records (empty for streaming
// recorders). A capped recorder that evicted records prepends one
// "truncated" marker record carrying the drop count, timed at the oldest
// surviving record so the gap renders where it happened.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dropped == 0 {
		return append([]Record(nil), r.recs...)
	}
	out := make([]Record, 0, len(r.recs)+1)
	marker := Record{
		Type:   "truncated",
		Name:   "truncated",
		Detail: fmt.Sprintf("%d older records dropped by the %d-record cap", r.dropped, r.cap),
	}
	if len(r.recs) > 0 {
		marker.Seq = r.recs[0].Seq - 1
		marker.TS = r.recs[0].TS
		marker.Wall = r.recs[0].Wall
	}
	return append(append(out, marker), r.recs...)
}

// Dropped reports how many records a capped recorder has evicted.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// RecordsSince returns the retained records with Seq strictly above seq
// — the cumulative-ack drain a telemetry collector uses, so re-asked
// drains are idempotent and already-shipped records are skipped.
func (r *Recorder) RecordsSince(seq int) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := len(r.recs)
	for i > 0 && r.recs[i-1].Seq > seq {
		i--
	}
	return append([]Record(nil), r.recs[i:]...)
}

// Prune discards retained records with Seq at or below seq — the
// collector acknowledged them, so a bounded node-side buffer stays
// small between telemetry drains. Pruned records do not count as
// dropped: they were delivered, not lost.
func (r *Recorder) Prune(seq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	keep := r.recs[:0]
	for _, rec := range r.recs {
		if rec.Seq > seq {
			keep = append(keep, rec)
		}
	}
	r.recs = keep
}

// WriteNDJSON writes the retained records to w, one JSON object per
// line.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: writing NDJSON: %w", err)
		}
	}
	return nil
}

// multi fans every call out to several tracers.
type multi []Tracer

func (m multi) BeginPhase(name, round, epoch string) {
	for _, t := range m {
		t.BeginPhase(name, round, epoch)
	}
}
func (m multi) EndPhase(name string) {
	for _, t := range m {
		t.EndPhase(name)
	}
}
func (m multi) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}

// Multi combines tracers; nil entries are dropped. It returns nil when
// nothing remains, preserving the zero-cost nil path, and the tracer
// itself when exactly one remains.
func Multi(tracers ...Tracer) Tracer {
	var kept multi
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}
