package obs

import (
	"strings"
	"testing"
)

func eventN(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		r.Event(Event{Kind: EvDeliver, From: "P1", To: "P2", Msg: "dls/bid"})
	}
}

func TestRecorderCapBoundsMemory(t *testing.T) {
	r := NewRecorderCap(10)
	eventN(r, 25)
	recs := r.Records()
	// 10 survivors plus the truncated marker.
	if len(recs) != 11 {
		t.Fatalf("capped recorder returned %d records, want 11", len(recs))
	}
	if recs[0].Type != "truncated" {
		t.Fatalf("first record is %q, want the truncated marker", recs[0].Type)
	}
	if !strings.Contains(recs[0].Detail, "15") {
		t.Fatalf("marker detail %q does not carry the drop count 15", recs[0].Detail)
	}
	if r.Dropped() != 15 {
		t.Fatalf("Dropped() = %d, want 15", r.Dropped())
	}
	// Survivors are the newest records, in order.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != 14+i {
			t.Fatalf("survivor %d has seq %d, want %d", i, recs[i].Seq, 14+i)
		}
	}
}

func TestRecorderCapNoMarkerBelowCap(t *testing.T) {
	r := NewRecorderCap(10)
	eventN(r, 10)
	recs := r.Records()
	if len(recs) != 10 || recs[0].Type == "truncated" {
		t.Fatalf("un-evicted capped recorder returned %d records (first %q), want 10 plain records",
			len(recs), recs[0].Type)
	}
}

func TestRecorderCapZeroIsUnbounded(t *testing.T) {
	r := NewRecorderCap(0)
	eventN(r, 500)
	if got := len(r.Records()); got != 500 {
		t.Fatalf("cap 0 retained %d records, want all 500", got)
	}
}

func TestRecordsSinceAndPrune(t *testing.T) {
	r := NewRecorderCap(100)
	eventN(r, 8)
	since := r.RecordsSince(4)
	if len(since) != 3 || since[0].Seq != 5 {
		t.Fatalf("RecordsSince(4) = %d records starting at seq %d, want 3 starting at 5",
			len(since), since[0].Seq)
	}
	// Re-asking is idempotent.
	if again := r.RecordsSince(4); len(again) != 3 {
		t.Fatalf("second RecordsSince(4) = %d records, want 3", len(again))
	}
	r.Prune(4)
	if got := len(r.RecordsSince(-1)); got != 3 {
		t.Fatalf("after Prune(4), %d records remain, want 3", got)
	}
	// Pruned records were delivered, not lost: no truncated marker.
	if recs := r.Records(); len(recs) != 3 || recs[0].Type == "truncated" {
		t.Fatalf("Prune produced a truncated marker: %+v", recs[0])
	}
}

func TestCappedChromeTraceRendersMarker(t *testing.T) {
	r := NewRecorderCap(5)
	r.BeginPhase(PhaseBidding, "s1:r1", "s1:r1")
	eventN(r, 10)
	r.EndPhase(PhaseBidding)
	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "truncated") {
		t.Fatal("Chrome export of a truncated recorder does not render the marker")
	}
}
