package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// drive emits a small but representative trace: two nested-free phases,
// bus events inside them, and a protocol incident carrying its own round.
func drive(t Tracer) {
	t.BeginPhase(PhaseBidding, "s1:r1", "s1:r1")
	t.Event(Event{Kind: EvDeliver, From: "P1", To: "P2", Msg: "dls/bid"})
	t.Event(Event{Kind: EvDrop, From: "P2", To: "P3", Msg: "dls/bid"})
	t.Event(Event{Kind: EvEviction, From: "P3", Round: "s1:r1", Detail: "unreachable"})
	t.EndPhase(PhaseBidding)
	t.BeginPhase(PhasePayments, "s1:r1", "s1:r1")
	t.Event(Event{Kind: EvDeliver, From: "P1", To: "referee", Msg: "dls/payment"})
	t.EndPhase(PhasePayments)
}

func TestRecorderSequencingAndAnnotation(t *testing.T) {
	r := NewRecorder()
	drive(r)
	recs := r.Records()
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	lastTS := -1.0
	for i, rec := range recs {
		if rec.Seq != i {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		if rec.TS < lastTS {
			t.Errorf("record %d timestamp %v went backwards (prev %v)", i, rec.TS, lastTS)
		}
		lastTS = rec.TS
	}
	// Events inherit the enclosing phase and its round.
	if recs[1].Phase != PhaseBidding || recs[1].Round != "s1:r1" {
		t.Errorf("deliver event not annotated: phase=%q round=%q", recs[1].Phase, recs[1].Round)
	}
	// An explicit event round wins over the span's.
	if recs[3].Name != EvEviction || recs[3].Round != "s1:r1" {
		t.Errorf("eviction event mangled: %+v", recs[3])
	}
	// Records() returns a copy.
	recs[0].Name = "mutated"
	if r.Records()[0].Name == "mutated" {
		t.Error("Records() aliased the recorder's internal slice")
	}
}

func TestEndPhaseWithoutBegin(t *testing.T) {
	r := NewRecorder()
	r.EndPhase("never-opened") // must not panic
	r.Event(Event{Kind: EvDeliver, From: "a", To: "b"})
	if got := len(r.Records()); got != 2 {
		t.Fatalf("got %d records, want 2", got)
	}
	if r.Records()[1].Phase != "" {
		t.Error("event outside any span should carry no phase")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	drive(r)
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var back []Record
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", len(back), err)
		}
		back = append(back, rec)
	}
	want := r.Records()
	if len(back) != len(want) {
		t.Fatalf("round-tripped %d records, want %d", len(back), len(want))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i], want[i]) {
			t.Errorf("record %d changed in round trip:\n got %+v\nwant %+v", i, back[i], want[i])
		}
	}
}

func TestStreamRetainsNothingAndWritesLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf)
	drive(s)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Records()); got != 0 {
		t.Fatalf("stream recorder retained %d records", got)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 8 {
		t.Fatalf("stream wrote %d lines, want 8", lines)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	r := NewRecorder()
	drive(r)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var phases, instants, meta int
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			phases++
			if ev["dur"].(float64) < 0 {
				t.Errorf("negative span duration: %v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected event phase %v", ev["ph"])
		}
	}
	if phases != 2 {
		t.Errorf("got %d phase slices, want 2", phases)
	}
	if instants != 4 {
		t.Errorf("got %d instant events, want 4", instants)
	}
	if meta < 3 { // process + protocol thread + at least one endpoint thread
		t.Errorf("got %d metadata events, want >= 3", meta)
	}
}

func TestChromeTraceClosesDanglingSpans(t *testing.T) {
	r := NewRecorder()
	r.BeginPhase(PhaseBidding, "r", "r")
	r.Event(Event{Kind: EvDeliver, From: "P1", To: "P2"})
	// The run died mid-phase: no EndPhase.
	data, err := ChromeTrace(r.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"ph": "X"`)) {
		t.Error("dangling begin did not become a complete slice")
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil (zero-cost path)")
	}
	a := NewRecorder()
	if got := Multi(nil, a); got != Tracer(a) {
		t.Error("Multi with one live tracer should return it unwrapped")
	}
	b := NewRecorder()
	m := Multi(a, b)
	m.BeginPhase(PhaseInit, "", "")
	m.Event(Event{Kind: EvDeliver})
	m.EndPhase(PhaseInit)
	if len(a.Records()) != 3 || len(b.Records()) != 3 {
		t.Errorf("fan-out failed: a=%d b=%d records", len(a.Records()), len(b.Records()))
	}
}

func TestBuild(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Error("Build() must always report the Go runtime version")
	}
	if bi.Module != "dlsbl" {
		t.Errorf("module = %q, want dlsbl", bi.Module)
	}
	if again := Build(); again != bi {
		t.Error("Build() must be stable across calls")
	}
}
