package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the binary's provenance, surfaced in the service's
// /metrics snapshot and dls-serve's startup log so a running deployment
// can always answer "which build is this?".
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build metadata from
// runtime/debug.ReadBuildInfo, computed once. Fields missing from the
// build (e.g. VCS stamps in a plain `go test` binary) stay empty; the
// Go runtime version is always present.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
