package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// syntheticExchange appends one datagram exchange under the given origin
// to a driver trace and a node trace: the driver brackets it (net_tx at
// send, net_rx at reply) on the true clock, the node observes it in
// between on a clock skewed by skew microseconds (node wall = true wall
// - skew). jitter shifts the node's observation point within the
// bracket, modeling asymmetric network latency.
func syntheticExchange(driver, node *[]Record, origin uint64, t0, rtt, skew, jitter float64) {
	*driver = append(*driver,
		Record{Type: "event", Name: EvNetTx, Origin: origin, Wall: t0, From: "serve", To: "w1"},
		Record{Type: "event", Name: EvNetRx, Origin: origin, Wall: t0 + rtt, From: "w1", To: "serve"},
	)
	mid := t0 + rtt/2 + jitter
	*node = append(*node,
		Record{Type: "event", Name: EvNetRx, Origin: origin, Wall: mid - skew, From: "serve", To: "P1"},
		Record{Type: "event", Name: EvNetTx, Origin: origin, Wall: mid + 20 - skew, From: "w1", To: "serve"},
	)
}

func TestEstimateOffsetRecoversSyntheticSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		skew := (rng.Float64() - 0.5) * 2e9 // up to ±1000 s of clock skew
		var driver, node []Record
		t0 := 1e12
		for i := 0; i < 20; i++ {
			rtt := 200 + 400*rng.Float64()
			jitter := (rng.Float64() - 0.5) * 0.2 * rtt
			syntheticExchange(&driver, &node, uint64(i+1), t0, rtt, skew, jitter)
			t0 += 1000 + 500*rng.Float64()
		}
		got, ok := EstimateOffset(driver, node)
		if !ok {
			t.Fatalf("trial %d: no shared origins", trial)
		}
		// The estimate can only be off by the latency asymmetry, which the
		// jitter bounds well below 100 µs here — vanishing next to the skew.
		if math.Abs(got-skew) > 100 {
			t.Fatalf("trial %d: estimated offset %.1f µs, true skew %.1f µs", trial, got, skew)
		}
	}
}

func TestEstimateOffsetNoSharedOrigins(t *testing.T) {
	ref := []Record{{Type: "event", Name: EvNetTx, Origin: 1, Wall: 100}}
	proc := []Record{{Type: "event", Name: EvNetRx, Origin: 2, Wall: 900}}
	if off, ok := EstimateOffset(ref, proc); ok || off != 0 {
		t.Fatalf("EstimateOffset = (%v, %v), want (0, false)", off, ok)
	}
}

// chromeDoc is the subset of the Chrome trace-event format the merge
// tests inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TS   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// seededThreeProcessTraces builds the deterministic driver + two-node
// record set the merge tests run on: two exchanges per node with fixed
// skews, plus a driver phase span and a round-attributed node event.
func seededThreeProcessTraces() []ProcessTrace {
	const skew1, skew2 = 5e6, -3e6
	var driver, node1, node2 []Record
	driver = append(driver, Record{Type: "begin", Name: PhaseBidding, Round: "s1:r1", Wall: 1e12 - 50})
	syntheticExchange(&driver, &node1, 101, 1e12, 400, skew1, 10)
	syntheticExchange(&driver, &node2, 201, 1e12+5000, 500, skew2, -15)
	syntheticExchange(&driver, &node1, 102, 1e12+10000, 300, skew1, 5)
	syntheticExchange(&driver, &node2, 202, 1e12+15000, 600, skew2, 0)
	driver = append(driver, Record{Type: "end", Name: PhaseBidding, Round: "s1:r1", Wall: 1e12 + 16000})
	node1 = append(node1, Record{
		Type: "event", Name: EvDedupHit, From: "serve", To: "P1", Msg: "dls/bid",
		Round: "s1:r1", Wall: 1e12 + 10400 - skew1,
	})
	return []ProcessTrace{
		{Process: "serve", Records: driver},
		{Process: "w1", Records: node1},
		{Process: "w2", Records: node2},
	}
}

func TestMergeChromeTraceThreeProcesses(t *testing.T) {
	out, err := MergeChromeTrace(seededThreeProcessTraces())
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	// One track group (pid) per process, named and offset-annotated.
	offsets := map[int]float64{}
	names := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Ph == "M" {
			names[ev.PID], _ = ev.Args["name"].(string)
			offsets[ev.PID], _ = ev.Args["clock_offset_us"].(float64)
		}
	}
	if len(names) != 3 || names[1] != "serve" || names[2] != "w1" || names[3] != "w2" {
		t.Fatalf("process tracks = %v, want pids 1..3 = serve, w1, w2", names)
	}
	if math.Abs(offsets[2]-5e6) > 100 || math.Abs(offsets[3]+3e6) > 100 {
		t.Fatalf("clock offsets = %v, want ≈ +5e6 (w1) and ≈ -3e6 (w2)", offsets)
	}

	// Timestamps live on one merged clock: non-negative everywhere, and
	// the node events land inside the driver's bracket despite the skew.
	minTS, maxTS := math.Inf(1), math.Inf(-1)
	rounds := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("event %q (pid %d) has negative merged timestamp %v", ev.Name, ev.PID, ev.TS)
		}
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		if r, ok := ev.Args["round"].(string); ok && r == "s1:r1" {
			rounds++
		}
	}
	// All activity spans ~16 ms of true time; megasecond skews surviving
	// into the merge would blow this apart.
	if maxTS-minTS > 20000 {
		t.Fatalf("merged span is %.0f µs wide, want < 20000 (clock alignment failed)", maxTS-minTS)
	}
	if rounds == 0 {
		t.Fatal("no merged event carries the round attribution")
	}
}

func TestMergeChromeTraceMonotonicPerProcess(t *testing.T) {
	procs := seededThreeProcessTraces()
	out, err := MergeChromeTrace(procs)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	last := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "i" {
			continue
		}
		if ev.TS < last[ev.PID] {
			t.Fatalf("pid %d event %q at %v precedes an earlier event at %v", ev.PID, ev.Name, ev.TS, last[ev.PID])
		}
		last[ev.PID] = ev.TS
	}
}

func TestMergeChromeTraceEmpty(t *testing.T) {
	if _, err := MergeChromeTrace(nil); err == nil {
		t.Fatal("merging zero processes should fail")
	}
}
