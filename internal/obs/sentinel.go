package obs

import (
	"fmt"
	"math"
	"sync"
)

// Sentinel is a Tracer that watches a live event stream for violations
// of the mechanism's economic invariants — the properties every correct
// execution satisfies no matter how the agents behave, because deviants
// are convicted with evidence rather than allowed to bend the
// arithmetic. A violation therefore indicates a bug (or tampering), not
// an adversary, and the sentinel latches it: Violations keeps reporting
// until Reset, which is what lets a service surface the first bad round
// on /metrics and /healthz long after it happened.
//
// Checked invariants, per round:
//
//  1. Payment shape (Definition 3.1): each payment event's Q equals
//     C + B within floating-point tolerance.
//  2. Payment conservation: the round's invoice total billed to the
//     user equals the sum of the round's individual payments Q_i —
//     the user pays exactly what the processors receive.
//  3. Telescoping installments: a pipelined load's settled aggregate
//     equals the sum of its installment sub-rounds' invoices.
//  4. Witness-corroborated eviction: an eviction citing the
//     ⌈m/2⌉-witness rule must be preceded, in the same round, by at
//     least threshold distinct witness_report events against the
//     evicted party.
//  5. Conviction evidence: a conviction must be preceded, in the same
//     round, by at least one signed-evidence event (a payment or
//     witness-report submission the referee verified).
//
// Like every Tracer, a Sentinel only observes — it never feeds back
// into protocol decisions, and attaching one leaves payments and
// transcripts bit-identical (the nil-parity contract).
type Sentinel struct {
	mu         sync.Mutex
	violations []string

	rounds map[string]*sentinelRound
	order  []string // insertion order, for bounded pruning
}

// sentinelRound is the per-round working state.
type sentinelRound struct {
	paymentSum  float64 // Σ Q_i of payment events seen so far
	payments    int
	invoiceSum  float64 // Σ invoice totals (one per whole round, one per installment)
	invoices    int
	witnesses   map[string]map[string]bool // accused → distinct witnesses
	evidence    int
	convictions int
}

// sentinelMaxRounds bounds the per-round state a long-lived Sentinel
// retains; older rounds are forgotten FIFO. Violations stay latched
// regardless — only the working state is pruned.
const sentinelMaxRounds = 4096

// NewSentinel returns an empty Sentinel ready to attach to a run (via
// Multi, next to whatever recorder the run already carries).
func NewSentinel() *Sentinel {
	return &Sentinel{rounds: make(map[string]*sentinelRound)}
}

// sentinelTol is the relative floating-point tolerance of the
// arithmetic checks: the payment terms are sums and differences of
// closed-form makespans, so anything beyond a few ulps of slack means a
// genuinely different number, not roundoff.
const sentinelTol = 1e-9

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= sentinelTol*(1+math.Abs(a)+math.Abs(b))
}

// round returns (creating if needed) the working state for a round ID.
// Caller holds s.mu.
func (s *Sentinel) round(id string) *sentinelRound {
	if r, ok := s.rounds[id]; ok {
		return r
	}
	if len(s.order) >= sentinelMaxRounds {
		delete(s.rounds, s.order[0])
		s.order = s.order[1:]
	}
	r := &sentinelRound{witnesses: make(map[string]map[string]bool)}
	s.rounds[id] = r
	s.order = append(s.order, id)
	return r
}

// violate latches one violation. Caller holds s.mu.
func (s *Sentinel) violate(format string, args ...any) {
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
}

// BeginPhase implements Tracer. The sentinel keys state by event round
// IDs, so spans carry no information it needs.
func (s *Sentinel) BeginPhase(name, round, epoch string) {}

// EndPhase implements Tracer.
func (s *Sentinel) EndPhase(name string) {}

// Event implements Tracer: it folds the event into the per-round state
// and checks whatever invariant the event completes.
func (s *Sentinel) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case EvPayment:
		if len(e.Values) != 3 {
			s.violate("round %q: payment event for %s carries %d values, want [Q, C, B]", e.Round, e.From, len(e.Values))
			return
		}
		q, c, b := e.Values[0], e.Values[1], e.Values[2]
		if !closeEnough(q, c+b) {
			s.violate("round %q: payment shape broken for %s: Q=%.12g but C+B=%.12g (Definition 3.1)",
				e.Round, e.From, q, c+b)
		}
		r := s.round(e.Round)
		r.paymentSum += q
		r.payments++
	case EvInvoice:
		if len(e.Values) != 1 {
			s.violate("round %q: invoice event carries %d values, want [total]", e.Round, len(e.Values))
			return
		}
		r := s.round(e.Round)
		r.invoiceSum += e.Values[0]
		r.invoices++
		if r.payments > 0 && !closeEnough(e.Values[0], r.paymentSum) {
			s.violate("round %q: payment conservation broken: invoice bills %.12g, processors receive Σ=%.12g",
				e.Round, e.Values[0], r.paymentSum)
		}
		// One invoice closes one round's payments. Standalone runs all
		// share the empty round ID, so the payment accumulator must not
		// leak into the next run under a long-lived (pool) sentinel.
		r.paymentSum, r.payments = 0, 0
	case EvLoadSettled:
		if len(e.Values) != 1 {
			s.violate("round %q: load_settled event carries %d values, want [total]", e.Round, len(e.Values))
			return
		}
		// e.Round is the whole-load ID "<salt>:rN"; its installments ran
		// as "<salt>:rN.iK". Sum their invoices and demand telescoping.
		var sum float64
		var parts int
		prefix := e.Round + "."
		for id, r := range s.rounds {
			if len(id) > len(prefix) && id[:len(prefix)] == prefix {
				sum += r.invoiceSum
				parts++
			}
		}
		if parts > 0 && !closeEnough(e.Values[0], sum) {
			s.violate("round %q: installment payments do not telescope: load settled %.12g, %d installments invoiced Σ=%.12g",
				e.Round, e.Values[0], parts, sum)
		}
	case EvWitnessReport:
		r := s.round(e.Round)
		if r.witnesses[e.To] == nil {
			r.witnesses[e.To] = make(map[string]bool)
		}
		r.witnesses[e.To][e.From] = true
		r.evidence++ // a witness report is sealed and verified: evidence
	case EvEvidence:
		s.round(e.Round).evidence++
	case EvEviction:
		// Only the witness-corroboration rule implies prior reports;
		// wholesale failures, crash checkpoints and relay-time outages
		// carry other reasons and need none.
		var got, of, thresh int
		if n, _ := fmt.Sscanf(e.Detail, "unreachable: %d of %d witnesses corroborate (threshold %d)",
			&got, &of, &thresh); n == 3 {
			r := s.round(e.Round)
			if len(r.witnesses[e.From]) < thresh {
				s.violate("round %q: %s evicted citing %d corroborating witnesses (threshold %d) but only %d witness_report events preceded it",
					e.Round, e.From, got, thresh, len(r.witnesses[e.From]))
			}
		}
	case EvConviction:
		r := s.round(e.Round)
		r.convictions++
		if r.evidence == 0 {
			s.violate("round %q: %s convicted (%s) with no signed-evidence event preceding the verdict",
				e.Round, e.From, e.Detail)
		}
	}
}

// Violations returns the latched violation descriptions, oldest first
// (empty on a healthy stream).
func (s *Sentinel) Violations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.violations...)
}

// Ok reports whether the sentinel has latched no violation.
func (s *Sentinel) Ok() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.violations) == 0
}

// Reset clears latched violations and working state — the operator
// acknowledged the incident and wants a clean sentinel.
func (s *Sentinel) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.violations = nil
	s.rounds = make(map[string]*sentinelRound)
	s.order = nil
}

// A Sentinel is a Tracer.
var _ Tracer = (*Sentinel)(nil)
