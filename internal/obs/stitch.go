package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Cross-process trace stitching. A multi-process netbus deployment
// produces one trace per OS process — the driver's recorder plus one
// telemetry buffer per dls-node — each timestamped by its own wall
// clock. The stitcher aligns them: every datagram exchange appears in
// two traces under the same Origin (the frame nonce), the driver
// bracketing it (net_tx before the socket write, net_rx after the
// reply) and the node observing it in between (its net_rx/net_tx
// pair). The node's events therefore happened, in driver time, inside
// the driver's bracket — the classic NTP argument — and the midpoint
// difference estimates the clock offset. Offsets feed one merged Chrome
// trace with a track group (pid) per process.

// ProcessTrace is one process's contribution to a merged trace: the
// process name (peer-table node name) and its records in emission
// order.
type ProcessTrace struct {
	Process string
	Records []Record
}

// originTimes collects, per Origin key, the wall-clock bracket a trace
// saw: first transmit and last receive (driver side), or first receive
// and last transmit (node side) — either way, the earliest and latest
// wall stamps the exchange produced in that process.
func originTimes(recs []Record) map[uint64][2]float64 {
	out := make(map[uint64][2]float64)
	for _, rec := range recs {
		if rec.Type != "event" || rec.Origin == 0 || rec.Wall == 0 {
			continue
		}
		if rec.Name != EvNetTx && rec.Name != EvNetRx {
			continue
		}
		t, ok := out[rec.Origin]
		if !ok {
			out[rec.Origin] = [2]float64{rec.Wall, rec.Wall}
			continue
		}
		if rec.Wall < t[0] {
			t[0] = rec.Wall
		}
		if rec.Wall > t[1] {
			t[1] = rec.Wall
		}
		out[rec.Origin] = t
	}
	return out
}

// EstimateOffset estimates the wall-clock offset, in microseconds, to
// add to proc's timestamps to express them on ref's clock. It matches
// datagram exchanges by Origin, takes the midpoint difference of each
// matched pair's bracket, and returns the median — robust against a
// few asymmetric-latency outliers. ok is false when the traces share no
// origin (no estimate is possible; treat the offset as zero).
func EstimateOffset(ref, proc []Record) (offset float64, ok bool) {
	rt, pt := originTimes(ref), originTimes(proc)
	var samples []float64
	for origin, r := range rt {
		p, shared := pt[origin]
		if !shared {
			continue
		}
		samples = append(samples, (r[0]+r[1])/2-(p[0]+p[1])/2)
	}
	if len(samples) == 0 {
		return 0, false
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], true
}

// MergeChromeTrace stitches per-process traces into one Chrome
// trace-event document: one pid per process (the first trace is the
// reference clock), clock offsets estimated per process and recorded in
// the process metadata, timestamps mapped onto the reference clock and
// clamped monotonic within each process (an offset estimate can never
// make a process's own record stream run backwards). Spans render on
// each process's "protocol" track; events render per endpoint, exactly
// as in the single-process export.
func MergeChromeTrace(procs []ProcessTrace) ([]byte, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("obs: nothing to stitch")
	}
	tr := chromeTrace{DisplayTimeUnit: "ms"}

	// Offsets first: every mapped wall stamp is needed to pick the
	// merged time origin.
	offsets := make([]float64, len(procs))
	for i := 1; i < len(procs); i++ {
		offsets[i], _ = EstimateOffset(procs[0].Records, procs[i].Records)
	}
	base := 0.0
	haveBase := false
	for i, p := range procs {
		for _, rec := range p.Records {
			if rec.Wall == 0 {
				continue
			}
			w := rec.Wall + offsets[i]
			if !haveBase || w < base {
				base, haveBase = w, true
			}
		}
	}

	for i, p := range procs {
		pid := i + 1
		role := "node"
		if i == 0 {
			role = "driver (reference clock)"
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": p.Process, "role": role, "clock_offset_us": offsets[i]},
		})
		if err := appendProcessEvents(&tr, pid, p.Records, offsets[i], base); err != nil {
			return nil, fmt.Errorf("obs: stitching process %q: %w", p.Process, err)
		}
	}
	return json.MarshalIndent(tr, "", " ")
}

// appendProcessEvents renders one process's records under the given pid,
// mapping each record's wall stamp onto the merged clock (offset applied,
// base subtracted, clamped monotonic) and falling back to the record's
// relative TS when it carries no wall stamp.
func appendProcessEvents(tr *chromeTrace, pid int, recs []Record, offset, base float64) error {
	last := 0.0
	mapTS := func(rec Record) float64 {
		t := rec.TS
		if rec.Wall != 0 {
			t = rec.Wall + offset - base
		}
		if t < last {
			t = last // monotonic clamp: offsets never reorder a process against itself
		}
		last = t
		return t
	}

	tids := map[string]int{"": 0}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": "protocol"},
	})
	tidFor := func(endpoint string) int {
		if id, ok := tids[endpoint]; ok {
			return id
		}
		id := len(tids)
		tids[endpoint] = id
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: id,
			Args: map[string]any{"name": endpoint},
		})
		return id
	}

	type open struct {
		rec Record
		ts  float64
	}
	var stack []open
	var lastTS float64
	closeSpan := func(o open, endTS float64) {
		dur := endTS - o.ts
		if dur < 0 {
			dur = 0
		}
		args := map[string]any{}
		if o.rec.Round != "" {
			args["round"] = o.rec.Round
		}
		if o.rec.Epoch != "" {
			args["epoch"] = o.rec.Epoch
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: o.rec.Name, Cat: "phase", Ph: "X",
			TS: o.ts, Dur: &dur, PID: pid, TID: 0, Args: args,
		})
	}
	for _, rec := range recs {
		ts := mapTS(rec)
		if ts > lastTS {
			lastTS = ts
		}
		switch rec.Type {
		case "begin":
			stack = append(stack, open{rec: rec, ts: ts})
		case "end":
			for j := len(stack) - 1; j >= 0; j-- {
				if stack[j].rec.Name == rec.Name {
					closeSpan(stack[j], ts)
					stack = append(stack[:j], stack[j+1:]...)
					break
				}
			}
		case "event", "truncated":
			endpoint := rec.To
			if endpoint == "" {
				endpoint = rec.From
			}
			args := map[string]any{}
			for k, v := range map[string]string{
				"from": rec.From, "to": rec.To, "msg": rec.Msg,
				"round": rec.Round, "phase": rec.Phase, "detail": rec.Detail,
			} {
				if v != "" {
					args[k] = v
				}
			}
			if rec.Origin != 0 {
				args["origin"] = rec.Origin
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: rec.Name, Cat: "event", Ph: "i", S: "t",
				TS: ts, PID: pid, TID: tidFor(endpoint), Args: args,
			})
		case "clock":
			// Alignment metadata; already consumed by the offset estimate.
		default:
			return fmt.Errorf("unknown record type %q (seq %d)", rec.Type, rec.Seq)
		}
	}
	for j := len(stack) - 1; j >= 0; j-- {
		closeSpan(stack[j], lastTS)
	}
	return nil
}
