package obs

import (
	"strings"
	"testing"
)

// honestRound feeds s one arithmetically consistent round: three payments
// whose Q splits into C+B exactly and one invoice billing their sum.
func honestRound(s *Sentinel, round string) {
	s.Event(Event{Kind: EvPayment, From: "P1", Round: round, Values: []float64{2.5, 2.0, 0.5}})
	s.Event(Event{Kind: EvPayment, From: "P2", Round: round, Values: []float64{1.25, 1.0, 0.25}})
	s.Event(Event{Kind: EvPayment, From: "P3", Round: round, Values: []float64{0.75, 0.5, 0.25}})
	s.Event(Event{Kind: EvInvoice, From: "user", Round: round, Values: []float64{4.5}})
}

func wantViolation(t *testing.T, s *Sentinel, substr string) {
	t.Helper()
	v := s.Violations()
	if len(v) == 0 {
		t.Fatalf("sentinel stayed clear, want a violation mentioning %q", substr)
	}
	for _, msg := range v {
		if strings.Contains(msg, substr) {
			return
		}
	}
	t.Fatalf("no violation mentions %q; got %q", substr, v)
}

func TestSentinelClearOnHonestStream(t *testing.T) {
	s := NewSentinel()
	honestRound(s, "s1:r1")
	honestRound(s, "s1:r2")
	// An evidenced conviction and a properly witnessed eviction are
	// legitimate adversary outcomes, not violations.
	s.Event(Event{Kind: EvEvidence, From: "P1", To: "referee", Round: "s1:r2"})
	s.Event(Event{Kind: EvConviction, From: "P1", Round: "s1:r2", Detail: "overbid"})
	s.Event(Event{Kind: EvWitnessReport, From: "P1", To: "P3", Round: "s1:r2"})
	s.Event(Event{Kind: EvWitnessReport, From: "P2", To: "P3", Round: "s1:r2"})
	s.Event(Event{Kind: EvEviction, From: "P3", Round: "s1:r2",
		Detail: "unreachable: 2 of 3 witnesses corroborate (threshold 2)"})
	if !s.Ok() {
		t.Fatalf("honest stream latched violations: %q", s.Violations())
	}
}

func TestSentinelPaymentShape(t *testing.T) {
	s := NewSentinel()
	// Q != C + B by far more than tolerance.
	s.Event(Event{Kind: EvPayment, From: "P1", Round: "s1:r1", Values: []float64{5, 2, 2}})
	wantViolation(t, s, "payment shape")

	s = NewSentinel()
	s.Event(Event{Kind: EvPayment, From: "P1", Round: "s1:r1", Values: []float64{5, 2}})
	wantViolation(t, s, "values")
}

func TestSentinelPaymentConservation(t *testing.T) {
	s := NewSentinel()
	s.Event(Event{Kind: EvPayment, From: "P1", Round: "s1:r1", Values: []float64{2, 2, 0}})
	s.Event(Event{Kind: EvPayment, From: "P2", Round: "s1:r1", Values: []float64{3, 3, 0}})
	s.Event(Event{Kind: EvInvoice, From: "user", Round: "s1:r1", Values: []float64{6}})
	wantViolation(t, s, "conservation")
}

func TestSentinelPaymentAccumulatorResetsPerInvoice(t *testing.T) {
	// Two standalone runs share the empty round ID under a pool sentinel;
	// the second run's invoice must not be checked against the first
	// run's payments.
	s := NewSentinel()
	s.Event(Event{Kind: EvPayment, From: "P1", Values: []float64{2, 2, 0}})
	s.Event(Event{Kind: EvInvoice, From: "user", Values: []float64{2}})
	s.Event(Event{Kind: EvPayment, From: "P1", Values: []float64{3, 3, 0}})
	s.Event(Event{Kind: EvInvoice, From: "user", Values: []float64{3}})
	if !s.Ok() {
		t.Fatalf("back-to-back runs latched violations: %q", s.Violations())
	}
}

func TestSentinelTelescopingInstallments(t *testing.T) {
	breakOne := func(settled float64) *Sentinel {
		s := NewSentinel()
		s.Event(Event{Kind: EvInvoice, From: "user", Round: "s1:r1.i1", Values: []float64{2}})
		s.Event(Event{Kind: EvInvoice, From: "user", Round: "s1:r1.i2", Values: []float64{3}})
		s.Event(Event{Kind: EvLoadSettled, From: "user", Round: "s1:r1", Values: []float64{settled}})
		return s
	}
	if s := breakOne(5); !s.Ok() {
		t.Fatalf("telescoping load latched violations: %q", s.Violations())
	}
	wantViolation(t, breakOne(6), "telescope")
}

func TestSentinelEvictionNeedsWitnesses(t *testing.T) {
	s := NewSentinel()
	// One witness short of the cited threshold.
	s.Event(Event{Kind: EvWitnessReport, From: "P1", To: "P3", Round: "s1:r1"})
	s.Event(Event{Kind: EvEviction, From: "P3", Round: "s1:r1",
		Detail: "unreachable: 2 of 3 witnesses corroborate (threshold 2)"})
	wantViolation(t, s, "witness_report")

	// Non-corroboration evictions (crashes, wholesale failures) carry
	// other reasons and need no witnesses.
	s = NewSentinel()
	s.Event(Event{Kind: EvEviction, From: "P3", Round: "s1:r1",
		Detail: "crashed at 40% of its assignment"})
	if !s.Ok() {
		t.Fatalf("crash eviction latched violations: %q", s.Violations())
	}
}

func TestSentinelConvictionNeedsEvidence(t *testing.T) {
	s := NewSentinel()
	s.Event(Event{Kind: EvConviction, From: "P2", Round: "s1:r1", Detail: "overbid"})
	wantViolation(t, s, "signed-evidence")

	// A witness report counts as evidence too (it is sealed and verified).
	s = NewSentinel()
	s.Event(Event{Kind: EvWitnessReport, From: "P1", To: "P2", Round: "s1:r1"})
	s.Event(Event{Kind: EvConviction, From: "P2", Round: "s1:r1", Detail: "framing"})
	if !s.Ok() {
		t.Fatalf("evidenced conviction latched violations: %q", s.Violations())
	}
}

func TestSentinelLatchesAndResets(t *testing.T) {
	s := NewSentinel()
	s.Event(Event{Kind: EvPayment, From: "P1", Round: "s1:r1", Values: []float64{5, 2, 2}})
	if s.Ok() {
		t.Fatal("violation did not latch")
	}
	// Later healthy rounds do not clear a latched violation.
	honestRound(s, "s1:r2")
	if s.Ok() || len(s.Violations()) != 1 {
		t.Fatalf("latch changed: ok=%t violations=%q", s.Ok(), s.Violations())
	}
	s.Reset()
	if !s.Ok() {
		t.Fatalf("Reset left violations: %q", s.Violations())
	}
	honestRound(s, "s1:r3")
	if !s.Ok() {
		t.Fatalf("post-Reset honest round latched: %q", s.Violations())
	}
}

func TestSentinelBoundsRoundState(t *testing.T) {
	s := NewSentinel()
	for i := 0; i < sentinelMaxRounds+100; i++ {
		s.Event(Event{Kind: EvPayment, From: "P1",
			Round:  "s1:r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)),
			Values: []float64{1, 1, 0}})
	}
	s.mu.Lock()
	n := len(s.rounds)
	s.mu.Unlock()
	if n > sentinelMaxRounds {
		t.Fatalf("retained %d rounds, cap is %d", n, sentinelMaxRounds)
	}
}

// A Sentinel must be attachable next to any recorder without disturbing
// it (the Multi composition the service uses).
func TestSentinelComposesUnderMulti(t *testing.T) {
	s := NewSentinel()
	rec := NewRecorder()
	tr := Multi(rec, s)
	tr.BeginPhase(PhasePayments, "s1:r1", "s1:r1")
	tr.Event(Event{Kind: EvPayment, From: "P1", Round: "s1:r1", Values: []float64{1, 2, 3}})
	tr.EndPhase(PhasePayments)
	if s.Ok() {
		t.Fatal("sentinel behind Multi missed the broken payment")
	}
	if got := len(rec.Records()); got != 3 {
		t.Fatalf("recorder behind Multi kept %d records, want 3", got)
	}
}
