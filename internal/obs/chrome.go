package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The output is the JSON-object form of the
// Trace Event Format ({"traceEvents": [...]}), loadable directly in
// chrome://tracing and in Perfetto's legacy-trace importer. Phases render
// as complete ("X") slices on a dedicated "protocol" track; per-message
// events render as instant ("i") marks on one track per bus endpoint
// (per-processor, plus the referee), so a faulty round visually shows
// WHERE the drops, retransmissions and dedup hits landed while the phase
// slices show where the time went.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// ChromeTrace converts records into trace-event form. The records are
// expected in emission order (Recorder.Records returns them so); begin/
// end pairs become complete slices, unclosed begins are closed at the
// last record's timestamp.
func ChromeTrace(recs []Record) ([]byte, error) {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "dls-bl-ncp"},
	}}}

	// Track assignment: tid 0 is the protocol (phase slices and
	// endpoint-less events); each bus endpoint gets its own track in
	// order of first appearance.
	tids := map[string]int{"": 0}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "protocol"},
	})
	tidFor := func(endpoint string) int {
		if id, ok := tids[endpoint]; ok {
			return id
		}
		id := len(tids)
		tids[endpoint] = id
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: id,
			Args: map[string]any{"name": endpoint},
		})
		return id
	}

	var lastTS float64
	type open struct {
		idx int // index of the begin record
		rec Record
	}
	var stack []open
	closeSpan := func(o open, endTS float64) {
		dur := endTS - o.rec.TS
		if dur < 0 {
			dur = 0
		}
		args := map[string]any{}
		if o.rec.Round != "" {
			args["round"] = o.rec.Round
		}
		if o.rec.Epoch != "" {
			args["epoch"] = o.rec.Epoch
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: o.rec.Name, Cat: "phase", Ph: "X",
			TS: o.rec.TS, Dur: &dur, PID: chromePID, TID: 0, Args: args,
		})
	}

	for i, rec := range recs {
		if rec.TS > lastTS {
			lastTS = rec.TS
		}
		switch rec.Type {
		case "begin":
			stack = append(stack, open{idx: i, rec: rec})
		case "end":
			for j := len(stack) - 1; j >= 0; j-- {
				if stack[j].rec.Name == rec.Name {
					closeSpan(stack[j], rec.TS)
					stack = append(stack[:j], stack[j+1:]...)
					break
				}
			}
		case "event":
			endpoint := rec.To
			if endpoint == "" {
				endpoint = rec.From
			}
			args := map[string]any{}
			for k, v := range map[string]string{
				"from": rec.From, "to": rec.To, "msg": rec.Msg,
				"round": rec.Round, "phase": rec.Phase, "detail": rec.Detail,
			} {
				if v != "" {
					args[k] = v
				}
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: rec.Name, Cat: "event", Ph: "i", S: "t",
				TS: rec.TS, PID: chromePID, TID: tidFor(endpoint), Args: args,
			})
		case "truncated":
			// The capped-recorder marker: render as an instant on the
			// protocol track so the viewer shows where the gap is.
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "truncated", Cat: "event", Ph: "i", S: "t",
				TS: rec.TS, PID: chromePID, TID: 0,
				Args: map[string]any{"detail": rec.Detail},
			})
		case "clock":
			// Clock-alignment metadata from the stitcher; nothing to draw.
		default:
			return nil, fmt.Errorf("obs: unknown record type %q (seq %d)", rec.Type, rec.Seq)
		}
	}
	// Unclosed spans (a run that errored out mid-phase) close at the last
	// observed timestamp, innermost first.
	for j := len(stack) - 1; j >= 0; j-- {
		closeSpan(stack[j], lastTS)
	}
	return json.MarshalIndent(tr, "", " ")
}

// WriteChromeTrace writes the retained records as Chrome trace-event
// JSON. Load the file via chrome://tracing ("Load") or ui.perfetto.dev
// ("Open trace file").
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	data, err := ChromeTrace(r.Records())
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
