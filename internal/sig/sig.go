// Package sig provides the cryptographic substrate the DLS-BL-NCP
// mechanism assumes (Section 4, "Initialization"): every participant owns
// a key set supporting digital signatures, public keys are registered
// under the participant's identity with a PKI, and messages travel as
// digitally signed envelopes S_β(m) = (m, SIG_β(m)).
//
// The implementation uses Ed25519 from the Go standard library, which
// satisfies the paper's only requirement — existential unforgeability —
// and binds signatures to both the sender identity and a message kind to
// rule out cross-phase replay.
package sig

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sort"
	"sync"
)

// KeyPair is one participant's signing key set. The private key never
// leaves the struct; Lemma 5.2's argument relies on no second party ever
// holding it.
type KeyPair struct {
	ID      string
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a key set for the given identity. A nil source
// uses crypto/rand; tests pass a deterministic source.
func GenerateKeyPair(id string, source io.Reader) (*KeyPair, error) {
	if id == "" {
		return nil, errors.New("sig: empty identity")
	}
	if source == nil {
		source = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(source)
	if err != nil {
		return nil, fmt.Errorf("sig: generating key for %q: %w", id, err)
	}
	return &KeyPair{ID: id, Public: pub, private: priv}, nil
}

// DeterministicSource returns an io.Reader yielding a reproducible byte
// stream for key generation in tests and seeded simulations.
func DeterministicSource(seed int64) io.Reader {
	return &detSource{rng: mrand.New(mrand.NewSource(seed))}
}

type detSource struct{ rng *mrand.Rand }

// Read fills p with seeded pseudo-random bytes (io.Reader for key
// generation).
func (d *detSource) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.rng.Intn(256))
	}
	return len(p), nil
}

// appendSigningBytes appends the domain-separated byte string that is
// actually signed: len-prefixed (kind, sender, payload) so no field
// boundary can be shifted between them. Append-style so hot paths can
// reuse one pooled buffer instead of allocating per signature.
func appendSigningBytes(dst []byte, kind, sender string, payload []byte) []byte {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(kind)))
	dst = append(dst, n[:]...)
	dst = append(dst, kind...)
	binary.BigEndian.PutUint64(n[:], uint64(len(sender)))
	dst = append(dst, n[:]...)
	dst = append(dst, sender...)
	binary.BigEndian.PutUint64(n[:], uint64(len(payload)))
	dst = append(dst, n[:]...)
	dst = append(dst, payload...)
	return dst
}

// signingBytes is the allocating form of appendSigningBytes, kept for
// cold paths and tests.
func signingBytes(kind, sender string, payload []byte) []byte {
	return appendSigningBytes(nil, kind, sender, payload)
}

// sbPool recycles signing-byte buffers across Seal/Verify calls. Buffers
// returned to the pool keep their grown capacity, so steady-state sign
// and verify perform zero allocations.
var sbPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Registry is the PKI: it maps identities to registered public keys.
// Registration is first-write-wins; re-registering an identity is an
// error, matching the paper's "registered under the participant's
// identity".
type Registry struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewRegistry returns an empty PKI.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]ed25519.PublicKey)}
}

// Register binds id to pub. Duplicate ids are rejected.
func (r *Registry) Register(id string, pub ed25519.PublicKey) error {
	if id == "" {
		return errors.New("sig: empty identity")
	}
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("sig: malformed public key for %q", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.keys[id]; dup {
		return fmt.Errorf("sig: identity %q already registered", id)
	}
	r.keys[id] = append(ed25519.PublicKey(nil), pub...)
	return nil
}

// PublicKey looks an identity up. The returned slice is a copy:
// Register already copies on write, and handing out the internal slice
// would let a caller silently mutate the PKI's registered key.
func (r *Registry) PublicKey(id string) (ed25519.PublicKey, bool) {
	k, ok := r.lookup(id)
	if !ok {
		return nil, false
	}
	return append(ed25519.PublicKey(nil), k...), true
}

// lookup returns the registered key without copying. Package-internal
// hot paths (Verify, the batch verifier) use it and must never retain or
// mutate the result.
func (r *Registry) lookup(id string) (ed25519.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.keys[id]
	return k, ok
}

// Identities returns the registered identities in sorted order.
func (r *Registry) Identities() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.keys))
	for id := range r.keys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Envelope is a digitally signed message S_β(m): the sender identity, a
// message kind (protocol phase tag), the canonical JSON payload and the
// Ed25519 signature over all three.
type Envelope struct {
	Sender    string `json:"sender"`
	Kind      string `json:"kind"`
	Payload   []byte `json:"payload"`
	Signature []byte `json:"signature"`
}

// Seal marshals v to canonical JSON and signs it under the key pair.
func Seal(k *KeyPair, kind string, v any) (Envelope, error) {
	if k == nil || len(k.private) == 0 {
		return Envelope{}, errors.New("sig: sealing requires a private key")
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return Envelope{}, fmt.Errorf("sig: marshaling %s payload: %w", kind, err)
	}
	return sealPayload(k, kind, payload)
}

// sealPayload signs an already-encoded payload. The signing bytes are
// assembled in a pooled buffer, so sealing allocates only the envelope's
// own payload and signature slices.
func sealPayload(k *KeyPair, kind string, payload []byte) (Envelope, error) {
	if k == nil || len(k.private) == 0 {
		return Envelope{}, errors.New("sig: sealing requires a private key")
	}
	bp := sbPool.Get().(*[]byte)
	msg := appendSigningBytes((*bp)[:0], kind, k.ID, payload)
	sigBytes := ed25519.Sign(k.private, msg)
	*bp = msg[:0]
	sbPool.Put(bp)
	return Envelope{Sender: k.ID, Kind: kind, Payload: payload, Signature: sigBytes}, nil
}

// SealInto signs an already-encoded payload into a reused envelope: the
// payload and signature are copied into e's existing capacity, and the
// signing bytes come from the pooled buffer. Sealing into a warm envelope
// is the zero-allocation sign path (see TestHotPathAllocs); Seal remains
// the convenient allocating form.
func SealInto(k *KeyPair, kind string, payload []byte, e *Envelope) error {
	if k == nil || len(k.private) == 0 {
		return errors.New("sig: sealing requires a private key")
	}
	bp := sbPool.Get().(*[]byte)
	msg := appendSigningBytes((*bp)[:0], kind, k.ID, payload)
	e.Sender = k.ID
	e.Kind = kind
	e.Payload = append(e.Payload[:0], payload...)
	e.Signature = append(e.Signature[:0], ed25519.Sign(k.private, msg)...)
	*bp = msg[:0]
	sbPool.Put(bp)
	return nil
}

// Errors reported by envelope verification.
var (
	ErrUnknownSender = errors.New("sig: sender not registered")
	ErrBadSignature  = errors.New("sig: signature verification failed")
)

// Verify checks the envelope's signature against the registry.
func (e Envelope) Verify(reg *Registry) error {
	pub, ok := reg.lookup(e.Sender)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSender, e.Sender)
	}
	return verifyWithKey(pub, &e)
}

// verifyWithKey checks the signature against an already-resolved public
// key, assembling the signing bytes in a pooled buffer.
func verifyWithKey(pub ed25519.PublicKey, e *Envelope) error {
	bp := sbPool.Get().(*[]byte)
	msg := appendSigningBytes((*bp)[:0], e.Kind, e.Sender, e.Payload)
	ok := ed25519.Verify(pub, msg, e.Signature)
	*bp = msg[:0]
	sbPool.Put(bp)
	if !ok {
		return fmt.Errorf("%w: sender %q kind %q", ErrBadSignature, e.Sender, e.Kind)
	}
	return nil
}

// Open verifies the envelope and decodes its payload into v: binary
// payloads (leading codec magic byte) through v's BinaryDecoder
// implementation, everything else as JSON.
func (e Envelope) Open(reg *Registry, v any) error {
	if err := e.Verify(reg); err != nil {
		return err
	}
	return decodePayload(e.Kind, e.Sender, e.Payload, v)
}

// Equal reports whether two envelopes are byte-identical.
func (e Envelope) Equal(o Envelope) bool {
	return e.Sender == o.Sender && e.Kind == o.Kind &&
		bytes.Equal(e.Payload, o.Payload) && bytes.Equal(e.Signature, o.Signature)
}

// IsEquivocation reports whether the two envelopes prove that a sender
// equivocated: same sender and kind, both correctly signed, but different
// payloads. This is the "multiple authenticated messages" evidence the
// Bidding phase hands to the referee.
func IsEquivocation(reg *Registry, a, b Envelope) bool {
	if a.Sender != b.Sender || a.Kind != b.Kind {
		return false
	}
	if bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	return a.Verify(reg) == nil && b.Verify(reg) == nil
}
