package sig

import (
	"errors"
	"fmt"
	"testing"
)

// testEnv seals a bid-shaped JSON payload under a fresh deterministic key
// registered with reg.
func testEnv(t *testing.T, reg *Registry, id string, seed int64, payload string) (*KeyPair, Envelope) {
	t.Helper()
	k, err := GenerateKeyPair(id, DeterministicSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(id, k.Public); err != nil {
		t.Fatal(err)
	}
	env, err := sealPayload(k, "dls/bid", []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return k, env
}

// TestRegistryPublicKeyReturnsCopy is the regression test for the PKI
// aliasing bug: PublicKey must hand out a copy, so a caller mutating the
// returned slice cannot silently corrupt the registered key and break (or
// forge) later verifications.
func TestRegistryPublicKeyReturnsCopy(t *testing.T) {
	reg := NewRegistry()
	_, env := testEnv(t, reg, "P1", 1, `{"proc":"P1","bid":1.5}`)

	pub, ok := reg.PublicKey("P1")
	if !ok {
		t.Fatal("P1 not registered")
	}
	for i := range pub {
		pub[i] ^= 0xFF // a hostile caller scribbles over its copy
	}
	if err := env.Verify(reg); err != nil {
		t.Fatalf("verification failed after caller mutated its PublicKey copy: %v", err)
	}
	again, _ := reg.PublicKey("P1")
	for i := range again {
		if again[i] != pub[i]^0xFF {
			t.Fatalf("byte %d: registry key changed under the caller's scribble", i)
		}
	}
}

// TestVerifyMemoSoundness checks the memo's safety contract: a hit is
// possible only for a byte-identical envelope that already verified, any
// byte change falls back to (failing) full verification, and failures are
// never memoized.
func TestVerifyMemoSoundness(t *testing.T) {
	reg := NewRegistry()
	_, env := testEnv(t, reg, "P1", 1, `{"proc":"P1","bid":1.5}`)
	memo := NewVerifyMemo()
	bv := NewBatchVerifier(reg, memo)

	if err := bv.Verify(&env); err != nil {
		t.Fatal(err)
	}
	if err := bv.Verify(&env); err != nil {
		t.Fatal(err)
	}
	if st := bv.Stats(); st.Verified != 1 || st.MemoHits != 1 {
		t.Fatalf("stats = %+v, want 1 verified and 1 memo hit", st)
	}

	// Any byte change misses the memo and fails the full verification —
	// a memoized original must not launder a tampered copy.
	tampered := env
	tampered.Payload = append([]byte(nil), env.Payload...)
	tampered.Payload[len(tampered.Payload)-2] ^= 1
	if err := bv.Verify(&tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered copy of memoized envelope: err = %v, want ErrBadSignature", err)
	}
	// The failure itself must not be memoized: it keeps failing.
	if err := bv.Verify(&tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered copy on retry: err = %v, want ErrBadSignature", err)
	}
	if ms := memo.Stats(); ms.Size != 1 {
		t.Fatalf("memo size = %d, want 1 (failures never stored)", ms.Size)
	}
}

// TestDisabledVerifyMemo checks the explicit opt-out: every Verify fully
// verifies, nothing is stored, and Enabled reports false (nil memos too).
func TestDisabledVerifyMemo(t *testing.T) {
	reg := NewRegistry()
	_, env := testEnv(t, reg, "P1", 1, `{"proc":"P1","bid":1.5}`)
	memo := DisabledVerifyMemo()
	if memo.Enabled() {
		t.Fatal("DisabledVerifyMemo().Enabled() = true")
	}
	if (*VerifyMemo)(nil).Enabled() {
		t.Fatal("nil memo reports Enabled")
	}
	bv := NewBatchVerifier(reg, memo)
	for i := 0; i < 3; i++ {
		if err := bv.Verify(&env); err != nil {
			t.Fatal(err)
		}
	}
	if st := bv.Stats(); st.Verified != 3 || st.MemoHits != 0 {
		t.Fatalf("stats = %+v, want 3 full verifications and no hits", st)
	}
}

// TestVerifyEach exercises the batch path: index-aligned errors for a
// mixed profile (valid, unknown sender, bad signature), intra-batch
// duplicate dedup, and memo warm-up across calls.
func TestVerifyEach(t *testing.T) {
	reg := NewRegistry()
	envs := make([]Envelope, 0, 6)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("P%d", i+1)
		_, env := testEnv(t, reg, id, int64(i+1), fmt.Sprintf(`{"proc":%q,"bid":%d.5}`, id, i+1))
		envs = append(envs, env)
	}
	envs = append(envs, envs[0]) // intra-batch duplicate of P1's bid
	bad := envs[1]
	bad.Payload = append([]byte(nil), bad.Payload...)
	bad.Payload[0] ^= 1
	envs = append(envs, bad)
	envs = append(envs, Envelope{Sender: "P9", Kind: "dls/bid"})

	bv := NewBatchVerifier(reg, NewVerifyMemo())
	errs := bv.VerifyEach(envs)
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Errorf("envs[%d]: %v, want nil", i, errs[i])
		}
	}
	if !errors.Is(errs[4], ErrBadSignature) {
		t.Errorf("tampered entry: %v, want ErrBadSignature", errs[4])
	}
	if !errors.Is(errs[5], ErrUnknownSender) {
		t.Errorf("unknown sender: %v, want ErrUnknownSender", errs[5])
	}
	st := bv.Stats()
	if st.Verified != 3 {
		t.Errorf("verified = %d, want 3 (duplicate shares the first copy's verdict)", st.Verified)
	}
	if st.MemoHits != 1 {
		t.Errorf("memo hits = %d, want 1 (the intra-batch duplicate)", st.MemoHits)
	}

	// Second pass over the valid prefix: everything is memoized now.
	if err := bv.VerifyAll(envs[:4]); err != nil {
		t.Fatal(err)
	}
	if st := bv.Stats(); st.Verified != 3 {
		t.Errorf("verified after warm pass = %d, want 3 (all hits)", st.Verified)
	}
}

// TestVerifyEachWorkers pins that the worker fan-out returns the same
// verdicts as the serial path for a larger profile.
func TestVerifyEachWorkers(t *testing.T) {
	reg := NewRegistry()
	var envs []Envelope
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("P%d", i+1)
		_, env := testEnv(t, reg, id, int64(i+1), fmt.Sprintf(`{"proc":%q}`, id))
		envs = append(envs, env)
	}
	envs[7].Payload = append([]byte(nil), envs[7].Payload...)
	envs[7].Payload[0] ^= 1

	for _, workers := range []int{1, 4} {
		bv := NewBatchVerifier(reg, nil)
		bv.Workers = workers
		errs := bv.VerifyEach(envs)
		for i, err := range errs {
			if i == 7 {
				if !errors.Is(err, ErrBadSignature) {
					t.Errorf("workers=%d envs[7]: %v, want ErrBadSignature", workers, err)
				}
			} else if err != nil {
				t.Errorf("workers=%d envs[%d]: %v", workers, i, err)
			}
		}
	}
}

// TestHotPathAllocs is the CI guard for the envelope hot path: sealing
// into a warm envelope, a memo-hit verification and the pooled
// signing-byte assembly must all stay at 0 allocs/op, so an accidental
// per-message allocation fails the build instead of shipping as a perf
// regression. (The payload codec's 0 allocs/op guard lives next to the
// payload types, in internal/referee.)
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	k, env := testEnv(t, reg, "P1", 1, `{"proc":"P1","bid":1.5}`)
	payload := append([]byte(nil), env.Payload...)

	var warm Envelope
	if err := SealInto(k, "dls/bid", payload, &warm); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := SealInto(k, "dls/bid", payload, &warm); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SealInto into a warm envelope: %v allocs/op, want 0", n)
	}
	if err := warm.Verify(reg); err != nil {
		t.Fatalf("warm-sealed envelope does not verify: %v", err)
	}

	bv := NewBatchVerifier(reg, NewVerifyMemo())
	if err := bv.Verify(&env); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := bv.Verify(&env); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("memo-hit Verify: %v allocs/op, want 0", n)
	}

	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendSigningBytes(buf[:0], env.Kind, env.Sender, env.Payload)
	}); n != 0 {
		t.Errorf("appendSigningBytes into a warm buffer: %v allocs/op, want 0", n)
	}
}
