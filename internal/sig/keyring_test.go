package sig

import (
	"sync"
	"testing"
)

func TestKeyringPutGet(t *testing.T) {
	r := NewKeyring()
	if _, ok := r.Get("P1"); ok {
		t.Fatal("empty ring returned a key")
	}
	k1, err := GenerateKeyPair("P1", DeterministicSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(k1); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get("P1")
	if !ok || got != k1 {
		t.Fatal("ring did not return the deposited pair")
	}

	// First deposit wins: a second pair under the same identity is a
	// no-op, so concurrent warmups cannot swap a pool's identity keys.
	k2, err := GenerateKeyPair("P1", DeterministicSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(k2); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get("P1"); got != k1 {
		t.Fatal("second Put replaced the first pair")
	}
	if r.Len() != 1 || len(r.Identities()) != 1 {
		t.Fatalf("len = %d, identities = %v", r.Len(), r.Identities())
	}
}

func TestKeyringNilSafety(t *testing.T) {
	var r *Keyring
	if _, ok := r.Get("P1"); ok {
		t.Fatal("nil ring returned a key")
	}
	if err := r.Put(&KeyPair{}); err == nil {
		t.Fatal("Put on nil ring should error")
	}
	if err := NewKeyring().Put(nil); err == nil {
		t.Fatal("Put(nil) should error")
	}
	if r.Len() != 0 {
		t.Fatal("nil ring has nonzero length")
	}
}

func TestKeyringConcurrent(t *testing.T) {
	r := NewKeyring()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := GenerateKeyPair("P1", DeterministicSource(int64(i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			if err := r.Put(k); err != nil {
				t.Error(err)
			}
			if _, ok := r.Get("P1"); !ok {
				t.Error("Get after Put missed")
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 1 {
		t.Fatalf("len = %d after concurrent deposits of one identity", r.Len())
	}
}
