package sig

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Codec selects how envelope payloads are encoded on the wire. JSON is
// the wire-compatible default and the transcript format; Binary is the
// deterministic length-prefixed hot-path encoding. The two are
// self-describing — every binary payload starts with binaryMagic, which
// can never open a JSON object ('{') — so a receiver decodes either
// without out-of-band agreement, and mixed-codec deployments interoperate.
type Codec uint8

const (
	// CodecJSON marshals payloads with encoding/json (the zero value, so
	// existing configurations are unchanged).
	CodecJSON Codec = iota
	// CodecBinary encodes payloads implementing BinaryPayload with the
	// deterministic length-prefixed binary codec; other payload types
	// fall back to JSON.
	CodecBinary
)

// String names the codec for telemetry and bench output.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// binaryMagic is the first byte of every binary-encoded payload. JSON
// payloads are objects or arrays and begin with '{' or '[', so the byte
// unambiguously selects the decoder.
const binaryMagic = 0xD1

// binaryVersion is the second byte; bumping it keeps old payloads
// decodable next to new ones.
const binaryVersion = 1

// BinaryAppender is implemented (on the value) by payload types that
// support the binary hot-path codec: AppendBinary appends the
// deterministic encoding (starting with binaryMagic) to dst and returns
// the extended slice.
type BinaryAppender interface {
	AppendBinary(dst []byte) []byte
}

// BinaryDecoder is the decode half (on the pointer): DecodeBinary parses
// an AppendBinary encoding, reusing the receiver's existing capacity
// where possible so steady-state decoding allocates nothing.
type BinaryDecoder interface {
	DecodeBinary(src []byte) error
}

// SealCodec seals v under the requested codec. CodecBinary uses v's
// BinaryPayload implementation when present and falls back to JSON
// otherwise, so callers can flip the codec without enumerating payload
// types.
func SealCodec(k *KeyPair, kind string, v any, c Codec) (Envelope, error) {
	if c == CodecBinary {
		if bp, ok := v.(BinaryAppender); ok {
			return sealPayload(k, kind, bp.AppendBinary(nil))
		}
	}
	return Seal(k, kind, v)
}

// decodePayload routes a verified payload to the matching decoder.
func decodePayload(kind, sender string, payload []byte, v any) error {
	if len(payload) > 0 && payload[0] == binaryMagic {
		if bp, ok := v.(BinaryDecoder); ok {
			if err := bp.DecodeBinary(payload); err != nil {
				return fmt.Errorf("sig: decoding binary %s payload from %q: %w", kind, sender, err)
			}
			return nil
		}
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("sig: unmarshaling %s payload from %q: %w", kind, sender, err)
	}
	return nil
}

// ---- Binary encoding primitives ------------------------------------------
//
// The encoding is deterministic by construction: uvarint lengths, UTF-8
// string bytes as-is, float64 as big-endian IEEE-754 bits. Equal values
// encode to equal bytes, which the verified-envelope memo and the
// equivocation rules both rely on.

// ErrBinaryPayload reports a malformed binary payload.
var ErrBinaryPayload = errors.New("sig: malformed binary payload")

// AppendBinaryHeader appends the codec magic, version and a per-type tag
// byte. Decoders check the tag so a payload of one type can never be
// silently decoded as another.
func AppendBinaryHeader(dst []byte, tag byte) []byte {
	return append(dst, binaryMagic, binaryVersion, tag)
}

// AppendUvarint appends x as an unsigned varint.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendFloat appends f as its big-endian IEEE-754 bit pattern.
func AppendFloat(dst []byte, f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return append(dst, b[:]...)
}

// AppendFloats appends a length-prefixed float64 slice.
func AppendFloats(dst []byte, xs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, f := range xs {
		dst = AppendFloat(dst, f)
	}
	return dst
}

// BinReader is a cursor over a binary payload. The first decode error
// sticks; callers check Err once at the end instead of after every read.
type BinReader struct {
	buf []byte
	off int
	err error
}

// NewBinReader positions a reader after the payload header, checking
// magic, version and the expected type tag. It returns a value — the
// reader lives on the decoder's stack, keeping warm decodes
// allocation-free.
func NewBinReader(src []byte, tag byte) BinReader {
	r := BinReader{buf: src}
	if len(src) < 3 || src[0] != binaryMagic {
		r.err = fmt.Errorf("%w: missing magic", ErrBinaryPayload)
		return r
	}
	if src[1] != binaryVersion {
		r.err = fmt.Errorf("%w: version %d, want %d", ErrBinaryPayload, src[1], binaryVersion)
		return r
	}
	if src[2] != tag {
		r.err = fmt.Errorf("%w: type tag %q, want %q", ErrBinaryPayload, src[2], tag)
		return r
	}
	r.off = 3
	return r
}

// Err returns the first decode error, or an error if trailing bytes
// remain unconsumed when trailing is disallowed.
func (r *BinReader) Err() error { return r.err }

// Close errors if undecoded bytes remain — a deterministic codec admits
// exactly one encoding per value.
func (r *BinReader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinaryPayload, len(r.buf)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned varint, rejecting non-minimal encodings so
// the codec keeps its one-encoding-per-value property (equivocation
// evidence and the verified-envelope memo both compare payload bytes).
func (r *BinReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: truncated varint", ErrBinaryPayload)
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.err = fmt.Errorf("%w: non-minimal varint", ErrBinaryPayload)
		return 0
	}
	r.off += n
	return x
}

// take returns the next n raw bytes.
func (r *BinReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrBinaryPayload, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// StringInto reads a length-prefixed string into *s, allocating only
// when the value actually changed — reuse-round decodes into a warm
// struct are allocation-free.
func (r *BinReader) StringInto(s *string) {
	b := r.take(r.Uvarint())
	if r.err != nil {
		return
	}
	if *s != string(b) {
		*s = string(b)
	}
}

// BytesInto reads a length-prefixed byte slice into *b, reusing its
// capacity.
func (r *BinReader) BytesInto(b *[]byte) {
	src := r.take(r.Uvarint())
	if r.err != nil {
		return
	}
	*b = append((*b)[:0], src...)
}

// Float reads one big-endian IEEE-754 float64.
func (r *BinReader) Float() float64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// FloatsInto reads a length-prefixed float64 slice into *xs, reusing its
// capacity.
func (r *BinReader) FloatsInto(xs *[]float64) {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		r.err = fmt.Errorf("%w: float count %d exceeds remaining bytes", ErrBinaryPayload, n)
		return
	}
	out := (*xs)[:0]
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Float())
	}
	*xs = out
}

// AppendBinary encodes the envelope itself (for payloads that nest
// envelopes, like bid vectors): length-prefixed sender, kind, payload and
// signature.
func (e Envelope) AppendBinary(dst []byte) []byte {
	dst = AppendString(dst, e.Sender)
	dst = AppendString(dst, e.Kind)
	dst = AppendBytes(dst, e.Payload)
	return AppendBytes(dst, e.Signature)
}

// DecodeEnvelope reads one nested envelope from the cursor.
func (r *BinReader) DecodeEnvelope(e *Envelope) {
	r.StringInto(&e.Sender)
	r.StringInto(&e.Kind)
	r.BytesInto(&e.Payload)
	r.BytesInto(&e.Signature)
}
