package sig

import (
	"errors"
	"sort"
	"sync"
)

// Keyring is a concurrency-safe cache of key pairs, keyed by identity. It
// exists because Ed25519 key generation dominates the cost of a protocol
// run (see the ROADMAP's Performance item): a long-lived processor pool
// that plays many rounds should pay for each participant's key set once,
// not once per job. internal/protocol consults a configured Keyring
// before generating, and deposits freshly generated pairs back, so the
// first round warms the ring and every later round reuses it.
//
// Reusing keys never changes the economics of a run — bids, allocations,
// meters and ledger flows are independent of the key bytes — it only
// changes which signatures appear on the wire. The per-run PKI Registry
// is still built fresh each run; the ring caches only the pairs.
type Keyring struct {
	mu   sync.RWMutex
	keys map[string]*KeyPair
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string]*KeyPair)}
}

// Get returns the cached pair for id, if present.
func (r *Keyring) Get(id string) (*KeyPair, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.keys[id]
	return k, ok
}

// Put deposits a pair under its identity. The first deposit for an
// identity wins: a ring shared by concurrent runs must hand every caller
// the same pair, so a racing second deposit is ignored rather than
// silently replacing keys other runs already registered.
func (r *Keyring) Put(k *KeyPair) error {
	if r == nil {
		return errors.New("sig: Put on nil keyring")
	}
	if k == nil || k.ID == "" {
		return errors.New("sig: keyring requires a pair with an identity")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.keys[k.ID]; !dup {
		r.keys[k.ID] = k
	}
	return nil
}

// Len returns the number of cached pairs.
func (r *Keyring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// Identities returns the cached identities in sorted order.
func (r *Keyring) Identities() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.keys))
	for id := range r.keys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
