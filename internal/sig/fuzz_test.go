package sig

import (
	"bytes"
	"testing"
)

// FuzzEnvelopeTampering: any mutation of a sealed envelope's payload,
// kind, sender or signature must fail verification; the untouched
// envelope must verify.
func FuzzEnvelopeTampering(f *testing.F) {
	k, err := GenerateKeyPair("P1", DeterministicSource(1))
	if err != nil {
		f.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(`{"bid":2.5}`), uint8(0), uint8(3))
	f.Add([]byte(`[1,2,3]`), uint8(1), uint8(0))
	f.Add([]byte(`"x"`), uint8(2), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, field, flip uint8) {
		env, err := Seal(k, "bid", 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Verify(reg); err != nil {
			t.Fatalf("fresh envelope failed verification: %v", err)
		}
		tampered := env
		switch field % 4 {
		case 0:
			if len(payload) == 0 || bytes.Equal(payload, env.Payload) {
				t.Skip()
			}
			tampered.Payload = payload
		case 1:
			tampered.Kind = "payment"
		case 2:
			tampered.Sender = "P2"
		case 3:
			tampered.Signature = append([]byte(nil), env.Signature...)
			if len(tampered.Signature) == 0 {
				t.Skip()
			}
			idx := int(flip) % len(tampered.Signature)
			tampered.Signature[idx] ^= 0x01
		}
		if err := tampered.Verify(reg); err == nil {
			t.Fatalf("tampered envelope verified (field %d)", field%4)
		}
	})
}
