package sig

import (
	"strings"
	"testing"
	"testing/quick"
)

type bidMsg struct {
	Bid  float64 `json:"bid"`
	Proc string  `json:"proc"`
}

func newPair(t *testing.T, id string, seed int64) *KeyPair {
	t.Helper()
	k, err := GenerateKeyPair(id, DeterministicSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := newPair(t, "P1", 1)
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		t.Fatal(err)
	}
	env, err := Seal(k, "bid", bidMsg{Bid: 2.5, Proc: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	var got bidMsg
	if err := env.Open(reg, &got); err != nil {
		t.Fatal(err)
	}
	if got.Bid != 2.5 || got.Proc != "P1" {
		t.Errorf("round trip gave %+v", got)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k := newPair(t, "P1", 2)
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		t.Fatal(err)
	}
	env, err := Seal(k, "bid", bidMsg{Bid: 2.5, Proc: "P1"})
	if err != nil {
		t.Fatal(err)
	}

	tampered := env
	tampered.Payload = []byte(strings.Replace(string(env.Payload), "2.5", "9.5", 1))
	if err := tampered.Verify(reg); err == nil {
		t.Error("payload tampering accepted")
	}

	rekinded := env
	rekinded.Kind = "payment"
	if err := rekinded.Verify(reg); err == nil {
		t.Error("kind substitution accepted (cross-phase replay)")
	}

	resent := env
	resent.Sender = "P2"
	k2 := newPair(t, "P2", 3)
	if err := reg.Register(k2.ID, k2.Public); err != nil {
		t.Fatal(err)
	}
	if err := resent.Verify(reg); err == nil {
		t.Error("sender substitution accepted")
	}

	flipped := env
	flipped.Signature = append([]byte(nil), env.Signature...)
	flipped.Signature[0] ^= 0xFF
	if err := flipped.Verify(reg); err == nil {
		t.Error("flipped signature accepted")
	}
}

func TestVerifyUnknownSender(t *testing.T) {
	k := newPair(t, "P1", 4)
	env, err := Seal(k, "bid", bidMsg{Bid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Verify(NewRegistry()); err == nil {
		t.Error("unregistered sender accepted")
	}
}

func TestOpenRejectsBadPayload(t *testing.T) {
	k := newPair(t, "P1", 5)
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		t.Fatal(err)
	}
	// Seal raw JSON that is valid for signing but not a bidMsg object.
	env, err := Seal(k, "bid", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var got bidMsg
	if err := env.Open(reg, &got); err == nil {
		t.Error("type-mismatched payload accepted")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	k := newPair(t, "P1", 6)
	if err := reg.Register("", k.Public); err == nil {
		t.Error("empty identity accepted")
	}
	if err := reg.Register("P1", k.Public[:5]); err == nil {
		t.Error("truncated key accepted")
	}
	if err := reg.Register("P1", k.Public); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("P1", k.Public); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, ok := reg.PublicKey("P1"); !ok {
		t.Error("registered key not found")
	}
	if _, ok := reg.PublicKey("P2"); ok {
		t.Error("phantom key found")
	}
	k2 := newPair(t, "P0", 7)
	if err := reg.Register("P0", k2.Public); err != nil {
		t.Fatal(err)
	}
	ids := reg.Identities()
	if len(ids) != 2 || ids[0] != "P0" || ids[1] != "P1" {
		t.Errorf("identities = %v", ids)
	}
}

func TestGenerateKeyPairValidation(t *testing.T) {
	if _, err := GenerateKeyPair("", nil); err == nil {
		t.Error("empty id accepted")
	}
	k, err := GenerateKeyPair("X", nil) // crypto/rand path
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Public) == 0 {
		t.Error("no public key generated")
	}
}

func TestSealRequiresPrivateKey(t *testing.T) {
	if _, err := Seal(nil, "bid", 1); err == nil {
		t.Error("nil keypair accepted")
	}
	if _, err := Seal(&KeyPair{ID: "x"}, "bid", 1); err == nil {
		t.Error("public-only keypair accepted")
	}
	k := newPair(t, "P1", 8)
	if _, err := Seal(k, "bid", func() {}); err == nil {
		t.Error("unmarshalable payload accepted")
	}
}

func TestEqual(t *testing.T) {
	k := newPair(t, "P1", 9)
	a, _ := Seal(k, "bid", bidMsg{Bid: 1})
	b, _ := Seal(k, "bid", bidMsg{Bid: 1})
	if !a.Equal(b) {
		t.Error("identical envelopes not equal (Ed25519 is deterministic)")
	}
	c, _ := Seal(k, "bid", bidMsg{Bid: 2})
	if a.Equal(c) {
		t.Error("different payloads equal")
	}
}

func TestIsEquivocation(t *testing.T) {
	k := newPair(t, "P1", 10)
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		t.Fatal(err)
	}
	a, _ := Seal(k, "bid", bidMsg{Bid: 1})
	b, _ := Seal(k, "bid", bidMsg{Bid: 2})
	if !IsEquivocation(reg, a, b) {
		t.Error("genuine equivocation not detected")
	}
	same, _ := Seal(k, "bid", bidMsg{Bid: 1})
	if IsEquivocation(reg, a, same) {
		t.Error("identical payloads flagged as equivocation")
	}
	other, _ := Seal(k, "payment", bidMsg{Bid: 2})
	if IsEquivocation(reg, a, other) {
		t.Error("different kinds flagged as equivocation")
	}
	// A forged second message must not prove equivocation.
	forged := b
	forged.Signature = append([]byte(nil), b.Signature...)
	forged.Signature[3] ^= 0x01
	if IsEquivocation(reg, a, forged) {
		t.Error("forged message accepted as equivocation evidence")
	}
}

func TestDeterministicSourceReproducible(t *testing.T) {
	k1 := newPair(t, "P1", 42)
	k2 := newPair(t, "P1", 42)
	if string(k1.Public) != string(k2.Public) {
		t.Error("same seed produced different keys")
	}
	k3 := newPair(t, "P1", 43)
	if string(k1.Public) == string(k3.Public) {
		t.Error("different seeds produced identical keys")
	}
}

// Property: every sealed envelope verifies, and any single-byte payload
// mutation is rejected.
func TestQuickSealVerifyAndTamper(t *testing.T) {
	k := newPair(t, "P1", 11)
	reg := NewRegistry()
	if err := reg.Register(k.ID, k.Public); err != nil {
		t.Fatal(err)
	}
	f := func(bid float64, label string, flip uint8) bool {
		env, err := Seal(k, "bid", bidMsg{Bid: bid, Proc: label})
		if err != nil {
			// Non-finite floats cannot be marshaled to JSON; acceptable.
			return true
		}
		if env.Verify(reg) != nil {
			return false
		}
		if len(env.Payload) == 0 {
			return true
		}
		tampered := env
		tampered.Payload = append([]byte(nil), env.Payload...)
		tampered.Payload[int(flip)%len(tampered.Payload)] ^= 0x5A
		return tampered.Verify(reg) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
