package sig

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// binPayload is a minimal payload implementing both halves of the binary
// codec, exercising every primitive (string, bytes, float, float slice,
// nested envelope).
type binPayload struct {
	Name string     `json:"name"`
	Blob []byte     `json:"blob,omitempty"`
	X    float64    `json:"x"`
	Xs   []float64  `json:"xs,omitempty"`
	Env  []Envelope `json:"env,omitempty"`
}

const binPayloadTag = 't'

func (p binPayload) AppendBinary(dst []byte) []byte {
	dst = AppendBinaryHeader(dst, binPayloadTag)
	dst = AppendString(dst, p.Name)
	dst = AppendBytes(dst, p.Blob)
	dst = AppendFloat(dst, p.X)
	dst = AppendFloats(dst, p.Xs)
	dst = AppendUvarint(dst, uint64(len(p.Env)))
	for _, e := range p.Env {
		dst = e.AppendBinary(dst)
	}
	return dst
}

func (p *binPayload) DecodeBinary(src []byte) error {
	r := NewBinReader(src, binPayloadTag)
	r.StringInto(&p.Name)
	r.BytesInto(&p.Blob)
	p.X = r.Float()
	r.FloatsInto(&p.Xs)
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	p.Env = p.Env[:0]
	for i := uint64(0); i < n; i++ {
		var e Envelope
		r.DecodeEnvelope(&e)
		p.Env = append(p.Env, e)
	}
	return r.Close()
}

func TestCodecString(t *testing.T) {
	if got := CodecJSON.String(); got != "json" {
		t.Errorf("CodecJSON.String() = %q", got)
	}
	if got := CodecBinary.String(); got != "binary" {
		t.Errorf("CodecBinary.String() = %q", got)
	}
}

// TestSealCodecRoundTrip seals the same payload under both codecs and
// opens each without any codec configuration on the receiving side — the
// encodings are self-describing.
func TestSealCodecRoundTrip(t *testing.T) {
	k, reg := testIdentity(t, "P1")
	want := binPayload{
		Name: "alpha",
		Blob: []byte{1, 2, 3},
		X:    -2.5,
		Xs:   []float64{0.25, 5e-324},
		Env:  []Envelope{{Sender: "P2", Kind: "bid", Payload: []byte("{}"), Signature: []byte{9}}},
	}
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		env, err := SealCodec(k, "test", want, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if isBin := len(env.Payload) > 0 && env.Payload[0] == binaryMagic; isBin != (c == CodecBinary) {
			t.Errorf("%v: payload starts with magic = %v", c, isBin)
		}
		var got binPayload
		if err := env.Open(reg, &got); err != nil {
			t.Fatalf("%v: open: %v", c, err)
		}
		if got.Name != want.Name || string(got.Blob) != string(want.Blob) ||
			got.X != want.X || len(got.Xs) != len(want.Xs) || len(got.Env) != 1 ||
			got.Env[0].Sender != "P2" || string(got.Env[0].Signature) != string(want.Env[0].Signature) {
			t.Errorf("%v: got %+v, want %+v", c, got, want)
		}
	}
}

// TestSealCodecJSONFallback: CodecBinary on a payload without a binary
// encoding falls back to JSON, and the result still opens.
func TestSealCodecJSONFallback(t *testing.T) {
	k, reg := testIdentity(t, "P1")
	type jsonOnly struct {
		V int `json:"v"`
	}
	env, err := SealCodec(k, "test", jsonOnly{V: 7}, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if env.Payload[0] == binaryMagic {
		t.Fatal("JSON fallback produced a binary payload")
	}
	var got jsonOnly
	if err := env.Open(reg, &got); err != nil {
		t.Fatal(err)
	}
	if got.V != 7 {
		t.Errorf("got %+v", got)
	}
}

// TestBinReaderRejects covers every decoder error branch: bad header,
// truncated and non-minimal varints, over-long lengths, oversized float
// counts, and trailing bytes.
func TestBinReaderRejects(t *testing.T) {
	good := binPayload{Name: "n", X: 1}.AppendBinary(nil)
	cases := []struct {
		name string
		src  []byte
	}{
		{"empty", nil},
		{"short", []byte{binaryMagic, binaryVersion}},
		{"wrong magic", append([]byte{'{'}, good[1:]...)},
		{"wrong version", append([]byte{binaryMagic, 99}, good[2:]...)},
		{"wrong tag", append([]byte{binaryMagic, binaryVersion, 'z'}, good[3:]...)},
		{"truncated varint", append(AppendBinaryHeader(nil, binPayloadTag), 0x80)},
		{"non-minimal varint", append(AppendBinaryHeader(nil, binPayloadTag), 0x80, 0x00)},
		{"length beyond buffer", append(AppendBinaryHeader(nil, binPayloadTag), 0x20, 'x')},
		{"truncated float", good[:len(good)-10]},
		{"trailing byte", append(append([]byte(nil), good...), 0)},
	}
	for _, c := range cases {
		var p binPayload
		if err := p.DecodeBinary(c.src); !errors.Is(err, ErrBinaryPayload) {
			t.Errorf("%s: err = %v, want ErrBinaryPayload", c.name, err)
		}
	}

	// Oversized float count: claims more floats than bytes remain.
	src := AppendBytes(AppendString(AppendBinaryHeader(nil, binPayloadTag), "n"), nil)
	src = AppendFloat(src, 0)       // X
	src = AppendUvarint(src, 1<<40) // Xs count, absurd
	var p binPayload
	if err := p.DecodeBinary(src); !errors.Is(err, ErrBinaryPayload) {
		t.Errorf("oversized float count: err = %v, want ErrBinaryPayload", err)
	}

	// Errors stick: reads after a failure return zero values.
	r := NewBinReader([]byte{binaryMagic, binaryVersion, binPayloadTag, 0x80}, binPayloadTag)
	if r.Uvarint() != 0 || r.Float() != 0 {
		t.Error("reads after an error returned nonzero values")
	}
	var s string
	r.StringInto(&s)
	var b []byte
	r.BytesInto(&b)
	var xs []float64
	r.FloatsInto(&xs)
	if s != "" || b != nil || xs != nil || r.Err() == nil || r.Close() == nil {
		t.Error("error did not stick through typed reads")
	}
}

// TestBinReaderWarmReuse checks the allocation-free reuse contracts:
// StringInto keeps the existing string when unchanged, BytesInto and
// FloatsInto reuse capacity.
func TestBinReaderWarmReuse(t *testing.T) {
	want := binPayload{Name: strings.Repeat("n", 32), Blob: []byte{1, 2}, X: math.Inf(-1), Xs: []float64{1, 2, 3}}
	enc := want.AppendBinary(nil)
	var got binPayload
	if err := got.DecodeBinary(enc); err != nil {
		t.Fatal(err)
	}
	blob, xs := &got.Blob[0], &got.Xs[0]
	if err := got.DecodeBinary(enc); err != nil {
		t.Fatal(err)
	}
	if &got.Blob[0] != blob || &got.Xs[0] != xs {
		t.Error("warm decode reallocated a slice it could have reused")
	}
	if got.Name != want.Name || math.Float64bits(got.X) != math.Float64bits(want.X) {
		t.Errorf("warm decode mutated values: %+v", got)
	}
}

// testIdentity generates a keypair and a registry holding it.
func testIdentity(t *testing.T, id string) (*KeyPair, *Registry) {
	t.Helper()
	k, err := GenerateKeyPair(id, DeterministicSource(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register(id, k.Public); err != nil {
		t.Fatal(err)
	}
	return k, reg
}

// TestBatchVerifierOpen covers the memoized open-and-decode path plus
// equivocation judgment through the batch verifier.
func TestBatchVerifierOpen(t *testing.T) {
	k, reg := testIdentity(t, "P1")
	bv := NewBatchVerifier(reg, NewVerifyMemo())
	if bv.Memo() == nil || !bv.Memo().Enabled() {
		t.Fatal("verifier lost its memo")
	}

	env, err := SealCodec(k, "test", binPayload{Name: "x", X: 3}, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	var got binPayload
	if err := bv.Open(&env, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.X != 3 {
		t.Errorf("got %+v", got)
	}
	if err := bv.Open(&env, &got); err != nil { // memo hit this time
		t.Fatal(err)
	}
	if s := bv.Stats(); s.MemoHits == 0 {
		t.Errorf("no memo hit recorded: %+v", s)
	}
	bad := env
	bad.Payload = append([]byte(nil), env.Payload...)
	bad.Payload[len(bad.Payload)-1] ^= 1
	if err := bv.Open(&bad, &got); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered open: %v", err)
	}

	other, err := SealCodec(k, "test", binPayload{Name: "y", X: 4}, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !bv.IsEquivocation(env, other) {
		t.Error("two signed payloads under one kind not judged equivocation")
	}
	if bv.IsEquivocation(env, env) {
		t.Error("identical envelopes judged equivocation")
	}
	if bv.IsEquivocation(env, bad) {
		t.Error("tampered envelope judged equivocation")
	}

	if err := bv.VerifyAll([]Envelope{env, other, env}); err != nil {
		t.Errorf("VerifyAll over valid profile: %v", err)
	}
	if err := bv.VerifyAll([]Envelope{env, bad}); !errors.Is(err, ErrBadSignature) {
		t.Errorf("VerifyAll over tampered profile: %v", err)
	}
}
