// Batch signature verification and the verified-envelope memo.
//
// Ed25519 verification is the protocol's dominant per-round cost once
// keys are warm: every transport delivery, every cached bid and every
// referee re-open pays ~70µs. Two observations make most of it
// avoidable. First, Ed25519 verification is deterministic — for a fixed
// (public key, message, signature) triple the answer never changes — so
// a digest over exactly that triple memoizes the decision soundly: a
// memo hit is possible only for a byte-identical envelope that already
// verified under the same registered key, and any byte change (payload,
// signature, sender, kind, or a re-registered key) changes the digest
// and falls back to a full verification. Convictability is unchanged:
// nothing unverified is ever accepted. Second, independent envelopes
// verify independently, so a whole bid profile can fan out across
// GOMAXPROCS workers.
package sig

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// memoDefaultCap bounds the memo; at 64 bytes of key material per entry
// this is ~4MB worst case. A full memo resets rather than evicts — the
// next round simply re-verifies and re-warms, trading a rare latency
// blip for O(1) bookkeeping.
const memoDefaultCap = 1 << 16

// VerifyMemo remembers content digests of envelopes that have already
// passed Ed25519 verification. It is safe for concurrent use and is
// meant to live as long as its key material stays valid — a BidSession,
// a service pool. Only successful verifications are stored; failures are
// never memoized (a corrupted copy must keep failing, and an envelope
// that later verifies under a different registry entry has a different
// digest anyway).
type VerifyMemo struct {
	mu   sync.RWMutex
	set  map[[sha256.Size]byte]struct{}
	cap  int
	off  bool
	hits atomic.Int64
	miss atomic.Int64
}

// NewVerifyMemo returns an empty memo with the default capacity bound.
func NewVerifyMemo() *VerifyMemo {
	return &VerifyMemo{set: make(map[[sha256.Size]byte]struct{}), cap: memoDefaultCap}
}

// DisabledVerifyMemo returns a memo that never stores or hits — the
// explicit opt-out for callers (benchmarks, parity tests) that need the
// unmemoized verification path under an API that requires a memo.
func DisabledVerifyMemo() *VerifyMemo {
	return &VerifyMemo{off: true}
}

// enabled reports whether the memo participates at all.
func (m *VerifyMemo) enabled() bool { return m != nil && !m.off }

// Enabled reports whether the memo participates in verification — false
// for nil and for DisabledVerifyMemo. Callers use it to skip batch
// pre-passes whose only value is warming the memo.
func (m *VerifyMemo) Enabled() bool { return m.enabled() }

// contains reports whether the digest is memoized, counting the outcome.
func (m *VerifyMemo) contains(d [sha256.Size]byte) bool {
	m.mu.RLock()
	_, ok := m.set[d]
	m.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.miss.Add(1)
	}
	return ok
}

// store memoizes a digest that just verified, resetting the map at the
// capacity bound.
func (m *VerifyMemo) store(d [sha256.Size]byte) {
	m.mu.Lock()
	if len(m.set) >= m.cap {
		m.set = make(map[[sha256.Size]byte]struct{})
	}
	m.set[d] = struct{}{}
	m.mu.Unlock()
}

// MemoStats are a memo's cumulative counters.
type MemoStats struct {
	// Hits counts verifications skipped because the digest was memoized.
	Hits int64
	// Misses counts digest lookups that fell through to full
	// verification.
	Misses int64
	// Size is the current number of memoized digests.
	Size int
}

// Stats returns the memo's counters; the zero value for a nil or
// disabled memo.
func (m *VerifyMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.RLock()
	n := len(m.set)
	m.mu.RUnlock()
	return MemoStats{Hits: m.hits.Load(), Misses: m.miss.Load(), Size: n}
}

// envelopeDigest is the memo key: SHA-256 over the registered public key,
// the domain-separated signing bytes and the signature — exactly the
// triple Ed25519 verification decides on.
func envelopeDigest(pub ed25519.PublicKey, e *Envelope) [sha256.Size]byte {
	bp := sbPool.Get().(*[]byte)
	msg := append((*bp)[:0], pub...)
	msg = appendSigningBytes(msg, e.Kind, e.Sender, e.Payload)
	msg = append(msg, e.Signature...)
	d := sha256.Sum256(msg)
	*bp = msg[:0]
	sbPool.Put(bp)
	return d
}

// BatchStats count what one BatchVerifier did.
type BatchStats struct {
	// Verified counts full Ed25519 verifications performed.
	Verified int
	// MemoHits counts verifications skipped via the memo.
	MemoHits int
	// Batches counts VerifyEach/VerifyAll invocations that had at least
	// one non-memoized envelope to verify.
	Batches int
}

// BatchVerifier verifies envelopes against one registry, consulting a
// VerifyMemo first and fanning independent verifications out across
// workers. It is NOT safe for concurrent use — each protocol run owns
// one — but the memo it consults may be shared across runs.
type BatchVerifier struct {
	reg  *Registry
	memo *VerifyMemo
	// Workers bounds the verification fan-out; 0 selects GOMAXPROCS.
	Workers int

	stats BatchStats
}

// NewBatchVerifier creates a verifier over reg. memo may be nil (no
// memoization, every envelope fully verifies).
func NewBatchVerifier(reg *Registry, memo *VerifyMemo) *BatchVerifier {
	return &BatchVerifier{reg: reg, memo: memo}
}

// Memo returns the memo the verifier consults (nil when unmemoized).
func (b *BatchVerifier) Memo() *VerifyMemo { return b.memo }

// Stats returns the verifier's counters.
func (b *BatchVerifier) Stats() BatchStats { return b.stats }

// Verify checks one envelope, through the memo when enabled. The
// envelope is not retained.
func (b *BatchVerifier) Verify(e *Envelope) error {
	pub, ok := b.reg.lookup(e.Sender)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSender, e.Sender)
	}
	if !b.memo.enabled() {
		b.stats.Verified++
		return verifyWithKey(pub, e)
	}
	d := envelopeDigest(pub, e)
	if b.memo.contains(d) {
		b.stats.MemoHits++
		return nil
	}
	if err := verifyWithKey(pub, e); err != nil {
		return err
	}
	b.stats.Verified++
	b.memo.store(d)
	return nil
}

// Open verifies the envelope (memoized) and decodes its payload into v.
func (b *BatchVerifier) Open(e *Envelope, v any) error {
	if err := b.Verify(e); err != nil {
		return err
	}
	return decodePayload(e.Kind, e.Sender, e.Payload, v)
}

// IsEquivocation is sig.IsEquivocation through the memoized verifier:
// same sender and kind, different payloads, both correctly signed.
func (b *BatchVerifier) IsEquivocation(x, y Envelope) bool {
	if x.Sender != y.Sender || x.Kind != y.Kind {
		return false
	}
	if string(x.Payload) == string(y.Payload) {
		return false
	}
	return b.Verify(&x) == nil && b.Verify(&y) == nil
}

// batchJob is one envelope awaiting full verification after the memo
// pre-pass.
type batchJob struct {
	idx    int
	pub    ed25519.PublicKey
	digest [sha256.Size]byte
	memoed bool
}

// VerifyEach verifies every envelope and returns the per-envelope
// errors, index-aligned (nil entries verified). The memo pre-pass runs
// serially — hit/miss counts are deterministic for a given input — and
// only the misses fan out across Workers goroutines. Duplicate misses
// within one call (bit-identical envelopes) verify once.
func (b *BatchVerifier) VerifyEach(envs []Envelope) []error {
	errs := make([]error, len(envs))
	var pending []batchJob
	memo := b.memo.enabled()
	// Serial memo pre-pass, deduplicating identical envelopes.
	firstOf := make(map[[sha256.Size]byte]int)
	for i := range envs {
		e := &envs[i]
		pub, ok := b.reg.lookup(e.Sender)
		if !ok {
			errs[i] = fmt.Errorf("%w: %q", ErrUnknownSender, e.Sender)
			continue
		}
		j := batchJob{idx: i, pub: pub}
		if memo {
			j.digest = envelopeDigest(pub, e)
			j.memoed = true
			if b.memo.contains(j.digest) {
				b.stats.MemoHits++
				continue
			}
			if first, dup := firstOf[j.digest]; dup {
				// Same digest pending earlier in this batch: share its
				// verdict instead of verifying twice.
				errs[i] = errDefer{first}
				continue
			}
			firstOf[j.digest] = i
		}
		pending = append(pending, j)
	}
	if len(pending) > 0 {
		b.stats.Batches++
		workers := b.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(pending) {
			workers = len(pending)
		}
		if workers <= 1 {
			for _, j := range pending {
				errs[j.idx] = verifyWithKey(j.pub, &envs[j.idx])
			}
		} else {
			var wg sync.WaitGroup
			next := atomic.Int64{}
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for {
						k := int(next.Add(1)) - 1
						if k >= len(pending) {
							return
						}
						j := pending[k]
						errs[j.idx] = verifyWithKey(j.pub, &envs[j.idx])
					}
				}()
			}
			wg.Wait()
		}
		// Serial post-pass: count, memoize successes, resolve deferrals.
		for _, j := range pending {
			if errs[j.idx] == nil {
				b.stats.Verified++
				if j.memoed {
					b.memo.store(j.digest)
				}
			}
		}
	}
	for i, err := range errs {
		if d, ok := err.(errDefer); ok {
			if errs[d.idx] == nil {
				errs[i] = nil
				b.stats.MemoHits++
			} else {
				errs[i] = errs[d.idx]
			}
		}
	}
	return errs
}

// errDefer marks an intra-batch duplicate awaiting the first copy's
// verdict.
type errDefer struct{ idx int }

// Error satisfies the error interface; the value is internal and never
// escapes VerifyAll.
func (e errDefer) Error() string { return "sig: deferred to duplicate envelope" }

// VerifyAll verifies a whole profile of envelopes in one pass and
// returns the first failure in index order (nil when all verified).
func (b *BatchVerifier) VerifyAll(envs []Envelope) error {
	for _, err := range b.VerifyEach(envs) {
		if err != nil {
			return err
		}
	}
	return nil
}
