package gantt

import (
	"strings"
	"testing"

	"dlsbl/internal/dlt"
)

func testInstance(net dlt.Network) dlt.Instance {
	return dlt.Instance{Network: net, Z: 0.3, W: []float64{1, 1.5, 2, 2.5, 3}}
}

func TestFigureAllNetworks(t *testing.T) {
	for _, net := range dlt.Networks {
		out, err := Figure(testInstance(net), Options{ShowBus: true, ShowTimes: true})
		if err != nil {
			t.Fatalf("%v: %v", net, err)
		}
		if !strings.Contains(out, net.String()) {
			t.Errorf("%v: header missing network name:\n%s", net, out)
		}
		for _, label := range []string{"P1", "P5", "bus", "legend:"} {
			if !strings.Contains(out, label) {
				t.Errorf("%v: output missing %q:\n%s", net, label, out)
			}
		}
		if !strings.Contains(out, "makespan=") {
			t.Errorf("%v: missing makespan", net)
		}
	}
}

func TestRenderRowStructure(t *testing.T) {
	in := testInstance(dlt.NCPFE)
	a, err := dlt.Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := dlt.Schedule(in, a)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(tl, Options{Width: 40, ShowTimes: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 5 processors + legend.
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), out)
	}
	// Each processor row has exactly Width cells between the pipes.
	for _, ln := range lines[1:6] {
		start := strings.Index(ln, "|")
		end := strings.Index(ln[start+1:], "|")
		if got := len([]rune(ln[start+1 : start+1+end])); got != 40 {
			t.Errorf("row width = %d, want 40: %q", got, ln)
		}
	}
}

// TestRenderFEOriginatorNoComm: in the NCP-FE chart the originator's row
// must contain no communication glyphs (its fraction never crosses the
// bus) while every other processor's row has some.
func TestRenderFEOriginatorNoComm(t *testing.T) {
	in := testInstance(dlt.NCPFE)
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	out, err := Render(tl, Options{Width: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "P1 ") && strings.ContainsRune(ln, '▒') {
			t.Errorf("FE originator row shows communication: %q", ln)
		}
		if strings.HasPrefix(ln, "P2 ") && !strings.ContainsRune(ln, '▒') {
			t.Errorf("P2 row shows no communication: %q", ln)
		}
	}
}

// TestRenderNFEOriginatorComputesLast: the NFE originator's computation
// glyphs must all come after the last bus activity.
func TestRenderNFEOriginatorComputesLast(t *testing.T) {
	in := testInstance(dlt.NCPNFE)
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	out, err := Render(tl, Options{Width: 60, ShowBus: true})
	if err != nil {
		t.Fatal(err)
	}
	var busLine, origLine string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "bus") {
			busLine = ln
		}
		if strings.HasPrefix(ln, "P5 ") {
			origLine = ln
		}
	}
	lastBus := -1
	for i, r := range []rune(busLine) {
		if r == '▒' {
			lastBus = i
		}
	}
	firstComp := -1
	for i, r := range []rune(origLine) {
		if r == '█' {
			firstComp = i
			break
		}
	}
	if firstComp >= 0 && lastBus >= 0 && firstComp < lastBus {
		t.Errorf("NFE originator computes (col %d) before bus quiets (col %d)\n%s\n%s",
			firstComp, lastBus, busLine, origLine)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(dlt.Timeline{}, Options{}); err == nil {
		t.Error("empty timeline accepted")
	}
	in := testInstance(dlt.CP)
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	if _, err := Render(tl, Options{Width: 2}); err == nil {
		t.Error("tiny width accepted")
	}
	bad := tl
	bad.Spans = append([]dlt.Span(nil), tl.Spans...)
	bad.Spans[0].Proc = 99
	if _, err := Render(bad, Options{}); err == nil {
		t.Error("out-of-range processor accepted")
	}
	zero := tl
	zero.Makespan = 0
	if _, err := Render(zero, Options{}); err == nil {
		t.Error("zero makespan accepted")
	}
	if _, err := Figure(dlt.Instance{Network: dlt.CP, Z: -1, W: []float64{1}}, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestTinySpansVisible(t *testing.T) {
	// A processor with a minuscule fraction still shows at least one cell.
	in := dlt.Instance{Network: dlt.CP, Z: 0.01, W: []float64{1, 1000}}
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	out, err := Render(tl, Options{Width: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "P2 ") && !strings.ContainsRune(ln, '█') {
			t.Errorf("tiny computation span invisible: %q", ln)
		}
	}
}

// TestFigureRoundsStacks: a pipelined timeline renders one sub-bar per
// installment under each processor (labels P1.1…P1.R), reports the
// installment count in the header, and falls back to the single-round
// figure at rounds <= 1.
func TestFigureRoundsStacks(t *testing.T) {
	in := dlt.Instance{Network: dlt.NCPFE, Z: 0.2, W: []float64{1, 1.5, 2}}
	out, err := FigureRounds(in, 3, dlt.GeometricRounds, Options{Width: 40, ShowBus: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "installments=3") {
		t.Errorf("header misses installment count:\n%s", out)
	}
	for _, label := range []string{"P1.1", "P1.3", "P3.1", "P3.3"} {
		if !strings.Contains(out, label+" ") {
			t.Errorf("missing stacked sub-bar %s:\n%s", label, out)
		}
	}
	if strings.Contains(out, "P1.4") {
		t.Errorf("more sub-bars than installments:\n%s", out)
	}

	single, err := FigureRounds(in, 1, dlt.EqualRounds, Options{Width: 40, ShowBus: true})
	if err != nil {
		t.Fatal(err)
	}
	figure, err := Figure(in, Options{Width: 40, ShowBus: true})
	if err != nil {
		t.Fatal(err)
	}
	if single != figure {
		t.Error("rounds=1 diverges from the single-round figure")
	}
	if strings.Contains(figure, "installments=") || strings.Contains(figure, "P1.1") {
		t.Errorf("single-round figure changed shape:\n%s", figure)
	}

	if _, err := FigureRounds(dlt.Instance{Network: dlt.NCPNFE, Z: 0.2, W: []float64{1, 2}}, 3, dlt.EqualRounds, Options{Width: 40}); err == nil {
		t.Error("NCP-NFE pipelined figure accepted")
	}
}
