package gantt

import (
	"encoding/xml"
	"strings"
	"testing"

	"dlsbl/internal/dlt"
)

func TestRenderSVGWellFormed(t *testing.T) {
	for _, net := range dlt.Networks {
		out, err := FigureSVG(testInstance(net), SVGOptions{ShowBus: true})
		if err != nil {
			t.Fatalf("%v: %v", net, err)
		}
		// Must be parseable XML.
		dec := xml.NewDecoder(strings.NewReader(out))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%v: malformed XML: %v", net, err)
			}
		}
		for _, want := range []string{"<svg", "</svg>", "P1", "P5", net.String()} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: output missing %q", net, want)
			}
		}
	}
}

func TestRenderSVGSpanCount(t *testing.T) {
	in := testInstance(dlt.NCPFE)
	a, err := dlt.Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := dlt.Schedule(in, a)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderSVG(tl, SVGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One rect per span + the background rect (no bus lane requested).
	got := strings.Count(out, "<rect")
	want := len(tl.Spans) + 1
	if got != want {
		t.Errorf("rect count %d, want %d", got, want)
	}
	// With the bus lane every BusOwner span draws one extra rect.
	withBus, err := RenderSVG(tl, SVGOptions{ShowBus: true})
	if err != nil {
		t.Fatal(err)
	}
	busSpans := len(tl.BusSpans())
	if got := strings.Count(withBus, "<rect"); got != want+busSpans {
		t.Errorf("bus rect count %d, want %d", got, want+busSpans)
	}
}

func TestRenderSVGValidation(t *testing.T) {
	if _, err := RenderSVG(dlt.Timeline{}, SVGOptions{}); err == nil {
		t.Error("empty timeline accepted")
	}
	in := testInstance(dlt.CP)
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	if _, err := RenderSVG(tl, SVGOptions{Width: 10}); err == nil {
		t.Error("tiny width accepted")
	}
	bad := tl
	bad.Spans = append([]dlt.Span(nil), tl.Spans...)
	bad.Spans[0].Proc = 99
	if _, err := RenderSVG(bad, SVGOptions{}); err == nil {
		t.Error("out-of-range processor accepted")
	}
	zero := tl
	zero.Makespan = 0
	if _, err := RenderSVG(zero, SVGOptions{}); err == nil {
		t.Error("zero makespan accepted")
	}
	if _, err := FigureSVG(dlt.Instance{Network: dlt.CP, Z: -1, W: []float64{1}}, SVGOptions{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestRenderSVGTitleEscaping(t *testing.T) {
	in := testInstance(dlt.CP)
	a, _ := dlt.Optimal(in)
	tl, _ := dlt.Schedule(in, a)
	out, err := RenderSVG(tl, SVGOptions{Title: `<script>&"attack"`})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}
