package gantt

import (
	"fmt"
	"html"
	"math"
	"strings"

	"dlsbl/internal/dlt"
)

// SVG rendering of schedule timelines: the same Figures 1–3 as the text
// charts, as standalone vector documents suitable for papers and READMEs.

// SVGOptions controls the vector rendering.
type SVGOptions struct {
	// Width is the drawing width in pixels (default 720).
	Width int
	// RowHeight is the per-processor lane height in pixels (default 28).
	RowHeight int
	// Title is drawn above the chart; empty uses "<network> bus schedule".
	Title string
	// ShowBus adds a lane with the bus occupancy.
	ShowBus bool
}

const (
	svgCommColor = "#7ca6d8" // communication spans
	svgCompColor = "#2f4f6f" // computation spans
	svgBusColor  = "#b8cde6"
	svgGridColor = "#d0d0d0"
	svgTextColor = "#222222"
	svgLabelW    = 46
	svgPad       = 10
	svgTitleH    = 24
	svgAxisH     = 22
)

// RenderSVG draws the timeline as a complete SVG document.
func RenderSVG(tl dlt.Timeline, opt SVGOptions) (string, error) {
	if len(tl.Spans) == 0 {
		return "", fmt.Errorf("gantt: empty timeline")
	}
	if !(tl.Makespan > 0) {
		return "", fmt.Errorf("gantt: non-positive makespan %v", tl.Makespan)
	}
	width := opt.Width
	if width == 0 {
		width = 720
	}
	rowH := opt.RowHeight
	if rowH == 0 {
		rowH = 28
	}
	if width < 100 || rowH < 10 {
		return "", fmt.Errorf("gantt: svg dimensions too small (%dx%d)", width, rowH)
	}
	m := tl.Instance.M()
	title := opt.Title
	if title == "" {
		title = fmt.Sprintf("%s bus schedule (z=%.3g, makespan=%.6g)", tl.Instance.Network, tl.Instance.Z, tl.Makespan)
	}

	rows := m
	busRow := -1
	if opt.ShowBus {
		busRow = 0
		rows++
	}
	chartW := width - svgLabelW - 2*svgPad
	chartH := rows * rowH
	totalH := svgTitleH + chartH + svgAxisH + 2*svgPad
	xOf := func(t float64) float64 {
		return float64(svgLabelW+svgPad) + t/tl.Makespan*float64(chartW)
	}
	laneY := func(row int) int { return svgTitleH + svgPad + row*rowH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, totalH, width, totalH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, totalH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" fill="%s">%s</text>`+"\n",
		svgPad, svgTitleH-8, svgTextColor, html.EscapeString(title))

	// Grid: ~8 vertical time ticks.
	ticks := 8
	for k := 0; k <= ticks; k++ {
		t := tl.Makespan * float64(k) / float64(ticks)
		x := xOf(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="0.5"/>`+"\n",
			x, laneY(0), x, laneY(0)+chartH, svgGridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="%s" text-anchor="middle">%.3g</text>`+"\n",
			x, laneY(0)+chartH+14, svgTextColor, t)
	}

	// Lane labels.
	if opt.ShowBus {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">bus</text>`+"\n",
			svgPad, laneY(0)+rowH/2+4, svgTextColor)
	}
	for i := 0; i < m; i++ {
		row := i
		if opt.ShowBus {
			row++
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">P%d</text>`+"\n",
			svgPad, laneY(row)+rowH/2+4, svgTextColor, i+1)
	}

	// Spans.
	for _, s := range tl.Spans {
		if s.Proc < 0 || s.Proc >= m {
			return "", fmt.Errorf("gantt: span for unknown processor %d", s.Proc)
		}
		row := s.Proc
		if opt.ShowBus {
			row++
		}
		color := svgCompColor
		if s.Kind == dlt.Comm {
			color = svgCommColor
		}
		x := xOf(s.Start)
		w := math.Max(xOf(s.End)-x, 1)
		y := laneY(row) + 3
		h := rowH - 6
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>P%d %s [%.6g, %.6g) frac=%.4g</title></rect>`+"\n",
			x, y, w, h, color, s.Proc+1, s.Kind, s.Start, s.End, s.Frac)
		if s.BusOwner && opt.ShowBus {
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`+"\n",
				x, laneY(busRow)+3, w, h, svgBusColor)
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// FigureSVG renders the optimal schedule of an instance as SVG.
func FigureSVG(in dlt.Instance, opt SVGOptions) (string, error) {
	a, err := dlt.Optimal(in)
	if err != nil {
		return "", err
	}
	tl, err := dlt.Schedule(in, a)
	if err != nil {
		return "", err
	}
	return RenderSVG(tl, opt)
}
