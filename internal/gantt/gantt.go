// Package gantt renders schedule timelines as text Gantt charts,
// reproducing the execution diagrams of the paper's Figures 1 (CP),
// 2 (NCP-FE) and 3 (NCP-NFE): one row per processor, communication spans
// drawn with '▒' and computation spans with '█', plus a separate bus row
// showing the one-port serialization.
package gantt

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"dlsbl/internal/dlt"
)

// Options controls rendering.
type Options struct {
	// Width is the number of character cells representing the makespan.
	// Zero selects 72.
	Width int
	// ShowBus adds a top row with the bus occupancy.
	ShowBus bool
	// ShowTimes appends each processor's finishing time.
	ShowTimes bool
}

const (
	cellIdle = '·'
	cellComm = '▒'
	cellComp = '█'
)

// Render draws the timeline. Rows are labeled P1…Pm in instance order.
func Render(tl dlt.Timeline, opt Options) (string, error) {
	if len(tl.Spans) == 0 {
		return "", errors.New("gantt: empty timeline")
	}
	width := opt.Width
	if width == 0 {
		width = 72
	}
	if width < 8 {
		return "", fmt.Errorf("gantt: width %d too small", width)
	}
	if !(tl.Makespan > 0) {
		return "", fmt.Errorf("gantt: non-positive makespan %v", tl.Makespan)
	}
	m := tl.Instance.M()
	scale := float64(width) / tl.Makespan
	cell := func(t float64) int {
		c := int(math.Floor(t * scale))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	// A pipelined (multi-installment) timeline stacks one sub-bar per
	// installment round under each processor, so the comm/compute overlap
	// between consecutive installments is visible; single-round timelines
	// (every span at Round 0) render exactly as before.
	maxRound := 0
	for _, s := range tl.Spans {
		if s.Round > maxRound {
			maxRound = s.Round
		}
	}
	stack := maxRound + 1
	rows := make([][]rune, m*stack)
	for i := range rows {
		rows[i] = idleRow(width)
	}
	busRow := idleRow(width)
	for _, s := range tl.Spans {
		if s.Proc < 0 || s.Proc >= m {
			return "", fmt.Errorf("gantt: span for unknown processor %d", s.Proc)
		}
		if s.Round < 0 || s.Round > maxRound {
			return "", fmt.Errorf("gantt: span carries round %d", s.Round)
		}
		glyph := cellComp
		if s.Kind == dlt.Comm {
			glyph = cellComm
		}
		lo, hi := cell(s.Start), cell(s.End)
		if s.End > s.Start && hi == lo {
			hi = lo + 1 // make very short spans visible
			if hi > width {
				hi = width
			}
		}
		for c := lo; c < hi; c++ {
			rows[s.Proc*stack+s.Round][c] = glyph
			if s.BusOwner {
				busRow[c] = cellComm
			}
		}
	}

	finish := tl.FinishTimes()
	var b strings.Builder
	fmt.Fprintf(&b, "%s  z=%.3g  makespan=%.6g", tl.Instance.Network, tl.Instance.Z, tl.Makespan)
	if stack > 1 {
		fmt.Fprintf(&b, "  installments=%d", stack)
	}
	b.WriteByte('\n')
	if opt.ShowBus {
		fmt.Fprintf(&b, "%-5s |%s|\n", "bus", string(busRow))
	}
	for i := 0; i < m; i++ {
		for r := 0; r < stack; r++ {
			label := fmt.Sprintf("P%d", i+1)
			if stack > 1 {
				label = fmt.Sprintf("P%d.%d", i+1, r+1)
			}
			fmt.Fprintf(&b, "%-5s |%s|", label, string(rows[i*stack+r]))
			if opt.ShowTimes && r == stack-1 {
				fmt.Fprintf(&b, " T=%.6g (w=%.3g, α=%.4f)", finish[i], tl.Instance.W[i], fracOf(tl, i))
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "legend: %c comm  %c compute  %c idle\n", cellComm, cellComp, cellIdle)
	return b.String(), nil
}

// Figure renders the paper's figure for the given network class on an
// instance: the optimal allocation's timeline.
func Figure(in dlt.Instance, opt Options) (string, error) {
	a, err := dlt.Optimal(in)
	if err != nil {
		return "", err
	}
	tl, err := dlt.Schedule(in, a)
	if err != nil {
		return "", err
	}
	return Render(tl, opt)
}

// FigureRounds renders the pipelined counterpart: the load split into
// `rounds` installments under the throughput-balanced allocation
// (dlt.PipelinedAllocation), with one stacked sub-bar per installment.
// rounds <= 1 falls back to Figure.
func FigureRounds(in dlt.Instance, rounds int, policy dlt.RoundPolicy, opt Options) (string, error) {
	if rounds <= 1 {
		return Figure(in, opt)
	}
	a, err := dlt.PipelinedAllocation(in)
	if err != nil {
		return "", err
	}
	tl, err := dlt.MultiRoundSchedule(in, a, rounds, policy)
	if err != nil {
		return "", err
	}
	return Render(tl, opt)
}

func idleRow(width int) []rune {
	r := make([]rune, width)
	for i := range r {
		r[i] = cellIdle
	}
	return r
}

func fracOf(tl dlt.Timeline, proc int) float64 {
	var f float64
	for _, s := range tl.Spans {
		if s.Proc == proc && s.Kind == dlt.Comp {
			f += s.Frac
		}
	}
	return f
}
