// Package agent models the strategic processors of DLS-BL-NCP. Each
// processor privately knows its true per-unit processing time and follows
// a Behavior: the honest behavior implements the mechanism faithfully,
// and each deviant behavior realizes one of the cheating avenues Section 4
// enumerates — misreported bids, contradictory bids, slowed execution,
// misallocation by the load originator, unfounded claims, and incorrect
// or contradictory payment vectors.
//
// The behaviors are pure decision rules; internal/protocol drives them
// through the phases and the referee reacts to what they produce.
package agent

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/sig"
)

// Behavior is a processor's strategy: a set of deviation knobs whose zero
// value (with the factors defaulted to 1 by Normalize) is the honest,
// protocol-compliant strategy.
type Behavior struct {
	// Name labels the behavior in experiment output.
	Name string

	// BidFactor scales the reported bid: b = BidFactor·w. 1 is truthful,
	// <1 overstates capacity (claims to be faster), >1 understates it.
	BidFactor float64

	// SlackFactor scales execution: w̃ = max(w, SlackFactor·w). Values
	// below 1 are physically impossible and are clamped — a processor
	// cannot run faster than its true speed.
	SlackFactor float64

	// Equivocate broadcasts a second, contradictory signed bid during the
	// Bidding phase (offense (i) of Section 4).
	Equivocate bool
	// EquivocationFactor scales the second bid relative to the first.
	EquivocationFactor float64

	// FalseEquivocationReport accuses another processor of equivocation
	// without evidence (offense (v): unsubstantiated claims).
	FalseEquivocationReport bool

	// FrameRival files an unreachability report against the next
	// processor during the Bidding phase and MAINTAINS the claim even
	// after the referee relays the rival's verified bid — the framing
	// attack against the eviction rule. Alone it can never reach the
	// ⌈m/2⌉ corroboration threshold, so the rival stays in and the
	// maintained claim convicts the framer (offense (v) again: an
	// unsubstantiated claim, held against proof).
	FrameRival bool

	// MisallocateExtraBlocks only matters when this processor is the load
	// originator: it ships this many extra blocks (positive) or withholds
	// this many (negative) from the first other processor (offense (ii)).
	MisallocateExtraBlocks int

	// RefuseMediation only matters for a short-shipping originator: it
	// refuses to transmit the missing blocks through the referee.
	RefuseMediation bool

	// TamperBlocks only matters for the originator: it corrupts the data
	// of the blocks it ships, so the user-signature integrity check
	// fails.
	TamperBlocks bool

	// FalseShortageClaim raises an α'_i < α_i claim even though delivery
	// was complete (offense (v)).
	FalseShortageClaim bool

	// FalseExcessClaim raises an α'_i > α_i claim even though delivery
	// was exactly the assignment; the referee substantiates against the
	// data set and fines the claimant (also offense (v)).
	FalseExcessClaim bool

	// WrongPaymentFactor scales this processor's own entry in the payment
	// vector it submits (offense (iii)). 1 is honest.
	WrongPaymentFactor float64

	// EquivocatePayments submits two contradictory payment vectors.
	EquivocatePayments bool

	// TamperBidVectorEntry alters this processor's own bid inside the
	// vector it submits to the referee during a claim (offense (iv)); the
	// altered entry must be freshly signed, which is precisely the
	// equivocation evidence Lemma 5.2 relies on.
	TamperBidVectorEntry bool

	// Abstain opts the processor out entirely: "If P_i does not wish to
	// participate, it does not broadcast a bid and it receives a utility
	// of 0" (Section 4, Bidding). Abstaining is allowed, never fined.
	Abstain bool
}

// Normalize fills the neutral defaults for zero-valued factors so that
// Behavior{} is the honest strategy.
func (b Behavior) Normalize() Behavior {
	if b.BidFactor == 0 {
		b.BidFactor = 1
	}
	if b.SlackFactor == 0 {
		b.SlackFactor = 1
	}
	if b.EquivocationFactor == 0 {
		b.EquivocationFactor = 2
	}
	if b.WrongPaymentFactor == 0 {
		b.WrongPaymentFactor = 1
	}
	if b.Name == "" {
		b.Name = "honest"
	}
	return b
}

// Deviant reports whether the behavior departs from the protocol in any
// way the referee could fine (misreporting the bid alone is NOT a
// protocol deviation — it is a lie the mechanism absorbs, not an offense).
func (b Behavior) Deviant() bool {
	n := b.Normalize()
	return n.Equivocate || n.FalseEquivocationReport || n.FrameRival ||
		n.MisallocateExtraBlocks != 0 ||
		n.RefuseMediation || n.TamperBlocks || n.FalseShortageClaim || n.FalseExcessClaim ||
		n.WrongPaymentFactor != 1 || n.EquivocatePayments || n.TamperBidVectorEntry
}

// Canonical behaviors used by the experiments and examples.
var (
	Honest        = Behavior{Name: "honest"}
	OverBid       = Behavior{Name: "overbid-1.5x", BidFactor: 1.5}
	UnderBid      = Behavior{Name: "underbid-0.6x", BidFactor: 0.6}
	SlowExecution = Behavior{Name: "slack-1.5x", SlackFactor: 1.5}
	Equivocator   = Behavior{Name: "equivocator", Equivocate: true}
	FalseAccuser  = Behavior{Name: "false-accuser", FalseEquivocationReport: true}
	Framer        = Behavior{Name: "framer", FrameRival: true}
	OverShipper   = Behavior{Name: "overship-originator", MisallocateExtraBlocks: 3}
	ShortShipper  = Behavior{Name: "shortship-originator", MisallocateExtraBlocks: -3}
	BlockTamperer = Behavior{Name: "block-tamperer", MisallocateExtraBlocks: -3, TamperBlocks: true}
	Refuser       = Behavior{Name: "mediation-refuser", MisallocateExtraBlocks: -3, RefuseMediation: true}
	FalseClaimant = Behavior{Name: "false-shortage-claimant", FalseShortageClaim: true}
	ExcessClaimer = Behavior{Name: "false-excess-claimant", FalseExcessClaim: true}
	PaymentCheat  = Behavior{Name: "payment-cheat-2x", WrongPaymentFactor: 2}
	PaymentLiar   = Behavior{Name: "payment-equivocator", EquivocatePayments: true}
	VectorTamper  = Behavior{Name: "bid-vector-tamperer", TamperBidVectorEntry: true}
)

// DeviantCatalog lists every finable behavior, used by the compliance
// experiments (E8/E9).
var DeviantCatalog = []Behavior{
	Equivocator, FalseAccuser, Framer, OverShipper, ShortShipper, BlockTamperer,
	Refuser, FalseClaimant, ExcessClaimer, PaymentCheat, PaymentLiar, VectorTamper,
}

// Catalog returns every canonical behavior keyed by name — the honest and
// misreporting strategies plus the full deviant catalog. It is the lookup
// table behind the by-name behavior selection in cmd/dls-sim and the
// service job API.
func Catalog() map[string]Behavior {
	out := map[string]Behavior{
		Honest.Name:        Honest,
		OverBid.Name:       OverBid,
		UnderBid.Name:      UnderBid,
		SlowExecution.Name: SlowExecution,
		"abstain":          {Name: "abstain", Abstain: true},
	}
	for _, b := range DeviantCatalog {
		out[b.Name] = b
	}
	return out
}

// ByName looks a canonical behavior up by name. The empty name is the
// honest strategy.
func ByName(name string) (Behavior, bool) {
	if name == "" {
		return Honest, true
	}
	b, ok := Catalog()[name]
	return b, ok
}

// Agent is one strategic processor: identity, signing key, private true
// value, and strategy.
type Agent struct {
	ID       string
	Key      *sig.KeyPair
	TrueW    float64
	Behavior Behavior
}

// New creates an agent, normalizing its behavior.
func New(id string, key *sig.KeyPair, trueW float64, b Behavior) (*Agent, error) {
	if id == "" {
		return nil, errors.New("agent: empty id")
	}
	if key == nil || key.ID != id {
		return nil, fmt.Errorf("agent: key identity mismatch for %q", id)
	}
	if !(trueW > 0) || math.IsInf(trueW, 0) {
		return nil, fmt.Errorf("agent: invalid true value %v for %q", trueW, id)
	}
	return &Agent{ID: id, Key: key, TrueW: trueW, Behavior: b.Normalize()}, nil
}

// Bid returns the bid the agent reports: b = BidFactor·w.
func (a *Agent) Bid() float64 { return a.Behavior.BidFactor * a.TrueW }

// SecondBid returns the contradictory bid an equivocator also broadcasts,
// and whether one exists.
func (a *Agent) SecondBid() (float64, bool) {
	if !a.Behavior.Equivocate {
		return 0, false
	}
	return a.Bid() * a.Behavior.EquivocationFactor, true
}

// Exec returns the execution value w̃ the agent actually processes at:
// max(w, SlackFactor·w). The tamper-proof meter observes this value
// regardless of what the agent bid.
func (a *Agent) Exec() float64 {
	return math.Max(a.TrueW, a.Behavior.SlackFactor*a.TrueW)
}

// PaymentVector returns the vector the agent submits, given the correct
// vector it computed (all honest agents compute the same one): a payment
// cheat scales its own entry.
func (a *Agent) PaymentVector(correct []float64, self int) []float64 {
	out := append([]float64(nil), correct...)
	if f := a.Behavior.WrongPaymentFactor; f != 1 && self >= 0 && self < len(out) {
		out[self] *= f
	}
	return out
}

// TamperedOwnBid returns the altered bid a vector-tamperer signs into its
// submitted bid vector.
func (a *Agent) TamperedOwnBid() float64 { return a.Bid() * 3 }
