package agent

import (
	"math"
	"testing"

	"dlsbl/internal/sig"
)

func key(t *testing.T, id string, seed int64) *sig.KeyPair {
	t.Helper()
	k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNormalizeDefaults(t *testing.T) {
	n := Behavior{}.Normalize()
	if n.BidFactor != 1 || n.SlackFactor != 1 || n.WrongPaymentFactor != 1 {
		t.Errorf("normalized zero behavior = %+v", n)
	}
	if n.Name != "honest" {
		t.Errorf("name = %q", n.Name)
	}
	if n.EquivocationFactor != 2 {
		t.Errorf("equivocation factor = %v", n.EquivocationFactor)
	}
	// Explicit values survive.
	b := Behavior{Name: "x", BidFactor: 1.5, SlackFactor: 2, WrongPaymentFactor: 3}.Normalize()
	if b.BidFactor != 1.5 || b.SlackFactor != 2 || b.WrongPaymentFactor != 3 || b.Name != "x" {
		t.Errorf("explicit behavior mangled: %+v", b)
	}
}

func TestDeviant(t *testing.T) {
	if Honest.Deviant() {
		t.Error("honest flagged deviant")
	}
	// Misreporting alone is not a finable deviation.
	if OverBid.Deviant() || UnderBid.Deviant() || SlowExecution.Deviant() {
		t.Error("pure misreporting/slacking flagged as protocol deviation")
	}
	for _, b := range DeviantCatalog {
		if !b.Deviant() {
			t.Errorf("catalog behavior %q not flagged deviant", b.Name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	k := key(t, "P1", 1)
	if _, err := New("", k, 1, Honest); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("P1", nil, 1, Honest); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := New("P2", k, 1, Honest); err == nil {
		t.Error("key identity mismatch accepted")
	}
	if _, err := New("P1", k, 0, Honest); err == nil {
		t.Error("zero true value accepted")
	}
	if _, err := New("P1", k, math.Inf(1), Honest); err == nil {
		t.Error("infinite true value accepted")
	}
}

func TestBidAndExec(t *testing.T) {
	k := key(t, "P1", 2)
	honest, err := New("P1", k, 2, Honest)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Bid() != 2 || honest.Exec() != 2 {
		t.Errorf("honest bid/exec = %v/%v", honest.Bid(), honest.Exec())
	}

	over, _ := New("P1", k, 2, OverBid)
	if over.Bid() != 3 {
		t.Errorf("overbid = %v, want 3", over.Bid())
	}
	if over.Exec() != 2 {
		t.Errorf("overbidder exec = %v, want true speed 2", over.Exec())
	}

	slow, _ := New("P1", k, 2, SlowExecution)
	if slow.Bid() != 2 || slow.Exec() != 3 {
		t.Errorf("slacker bid/exec = %v/%v, want 2/3", slow.Bid(), slow.Exec())
	}

	// SlackFactor below 1 clamps to true speed.
	impossible, _ := New("P1", k, 2, Behavior{SlackFactor: 0.5})
	if impossible.Exec() != 2 {
		t.Errorf("sub-unit slack produced exec %v", impossible.Exec())
	}
}

func TestSecondBid(t *testing.T) {
	k := key(t, "P1", 3)
	honest, _ := New("P1", k, 2, Honest)
	if _, ok := honest.SecondBid(); ok {
		t.Error("honest agent has a second bid")
	}
	eq, _ := New("P1", k, 2, Equivocator)
	b2, ok := eq.SecondBid()
	if !ok || b2 != 4 {
		t.Errorf("second bid = %v, %v; want 4, true", b2, ok)
	}
	if b2 == eq.Bid() {
		t.Error("second bid equals first — not an equivocation")
	}
}

func TestPaymentVector(t *testing.T) {
	k := key(t, "P1", 4)
	correct := []float64{1, 2, 3}
	honest, _ := New("P1", k, 2, Honest)
	got := honest.PaymentVector(correct, 0)
	for i := range correct {
		if got[i] != correct[i] {
			t.Errorf("honest vector = %v", got)
		}
	}
	got[1] = 99
	if correct[1] == 99 {
		t.Error("PaymentVector aliases its input")
	}

	cheat, _ := New("P1", k, 2, PaymentCheat)
	c := cheat.PaymentVector(correct, 1)
	if c[1] != 4 || c[0] != 1 || c[2] != 3 {
		t.Errorf("cheat vector = %v, want [1 4 3]", c)
	}
	// Out-of-range self index leaves the vector untouched.
	safe := cheat.PaymentVector(correct, 7)
	if safe[0] != 1 || safe[1] != 2 || safe[2] != 3 {
		t.Errorf("out-of-range self mangled vector: %v", safe)
	}
}

func TestTamperedOwnBid(t *testing.T) {
	k := key(t, "P1", 5)
	a, _ := New("P1", k, 2, VectorTamper)
	if a.TamperedOwnBid() == a.Bid() {
		t.Error("tampered bid equals real bid")
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range DeviantCatalog {
		n := b.Normalize().Name
		if seen[n] {
			t.Errorf("duplicate behavior name %q", n)
		}
		seen[n] = true
	}
}
