package session

import (
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
)

func pool() *Session {
	return &Session{
		Network: dlt.NCPFE,
		TrueW:   []float64{1, 1.5, 2, 2.5},
		Fine:    20,
		Policy:  BanDeviants,
	}
}

func honestJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Z: 0.2, Seed: int64(i + 1)}
	}
	return jobs
}

func TestValidation(t *testing.T) {
	if _, err := (&Session{Network: dlt.NCPFE, TrueW: []float64{1}}).Run(honestJobs(1)); err == nil {
		t.Error("single processor accepted")
	}
	if _, err := pool().Run(nil); err == nil {
		t.Error("empty job list accepted")
	}
	cp := pool()
	cp.Network = dlt.CP
	if _, err := cp.Run(honestJobs(1)); err == nil {
		t.Error("CP network accepted")
	}
}

func TestHonestSessionAccumulates(t *testing.T) {
	rep, err := pool().Run(honestJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	for i := range rep.CumulativeUtility {
		var sum float64
		for _, r := range rep.Rounds {
			sum += r.Utilities[i]
		}
		if rep.CumulativeUtility[i] != sum {
			t.Errorf("cumulative[%d] = %v, rounds sum %v", i, rep.CumulativeUtility[i], sum)
		}
		if rep.CumulativeUtility[i] <= 0 {
			t.Errorf("honest processor %d earned %v over 3 jobs", i, rep.CumulativeUtility[i])
		}
		if rep.Banned[i] || rep.BannedAfter[i] != -1 {
			t.Errorf("honest processor %d banned", i)
		}
	}
}

func TestDeviantBannedAndForfeitsFuture(t *testing.T) {
	jobs := honestJobs(4)
	// P2 cheats on its payment vector in round 1 (index 0 of jobs).
	jobs[1].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
	rep, err := pool().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Banned[1] || rep.BannedAfter[1] != 1 {
		t.Fatalf("cheat not banned after round 1: banned=%v after=%d", rep.Banned[1], rep.BannedAfter[1])
	}
	// Rounds 2 and 3 run without P2.
	for r := 2; r < 4; r++ {
		if rep.Rounds[r].Participated[1] {
			t.Errorf("round %d: banned P2 participated", r)
		}
		if rep.Rounds[r].Utilities[1] != 0 {
			t.Errorf("round %d: banned P2 earned %v", r, rep.Rounds[r].Utilities[1])
		}
		if !rep.Rounds[r].Completed {
			t.Errorf("round %d did not complete without P2", r)
		}
	}
	// The long-run cost of the single deviation: the fine plus every
	// forfeited future bonus. Compare with an all-honest session.
	honest, err := pool().Run(honestJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	loss := honest.CumulativeUtility[1] - rep.CumulativeUtility[1]
	if loss <= 20 {
		t.Errorf("repeated-play loss %v not above the one-shot fine 20", loss)
	}
}

func TestForgivePolicyKeepsDeviants(t *testing.T) {
	s := pool()
	s.Policy = Forgive
	jobs := honestJobs(3)
	jobs[0].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
	rep, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Banned[1] {
		t.Error("forgive policy banned someone")
	}
	for r := 1; r < 3; r++ {
		if !rep.Rounds[r].Participated[1] {
			t.Errorf("round %d: forgiven P2 excluded", r)
		}
	}
}

func TestBanningOriginatorHalts(t *testing.T) {
	jobs := honestJobs(2)
	// The NCP-FE originator (P1) over-ships in round 0 and gets fined.
	jobs[0].Behaviors = []agent.Behavior{agent.OverShipper}
	if _, err := pool().Run(jobs); err == nil {
		t.Error("session continued after banning the load originator")
	}
}

func TestPolicyString(t *testing.T) {
	if Forgive.String() != "forgive" || BanDeviants.String() != "ban-deviants" {
		t.Error("policy names wrong")
	}
}

// TestMultiloadSessionReusesBids: with Multiload on, a pool bids once and
// serves later rounds from the cache; economics match the per-job-bidding
// session exactly, the traffic accounting shows the saved Θ(m²)
// exchanges, and a ban flips the bid profile so the session re-bids on
// its own.
func TestMultiloadSessionReusesBids(t *testing.T) {
	jobs := honestJobs(4)
	perJob, err := pool().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ml := pool()
	ml.Multiload = true
	st, err := ml.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m := len(ml.TrueW)
	for r, job := range jobs {
		out, err := ml.Step(st, job)
		if err != nil {
			t.Fatal(err)
		}
		if wantReuse := r > 0; out.BidReused != wantReuse {
			t.Fatalf("round %d: BidReused=%v, want %v", r, out.BidReused, wantReuse)
		}
		want := perJob.Rounds[r]
		for i := 0; i < m; i++ {
			if out.Payments[i] != want.Payments[i] || out.Utilities[i] != want.Utilities[i] {
				t.Fatalf("round %d: multiload economics diverge from per-job bidding", r)
			}
		}
	}
	if st.Traffic.DeliveriesSaved != 3*m*m {
		t.Fatalf("DeliveriesSaved = %d, want 3·m² = %d", st.Traffic.DeliveriesSaved, 3*m*m)
	}
	if bs := st.BidStats(); bs.Rounds != 4 || bs.Rebids != 1 || bs.RoundsSinceRebid != 3 {
		t.Fatalf("BidStats = %+v, want 4 rounds, 1 rebid, 3 since", bs)
	}

	// A ban (P2 cheats) changes the profile: the next round re-bids
	// without P2, and the one after reuses the post-ban bids.
	cheat := Job{Z: 0.2, Seed: 50, Behaviors: []agent.Behavior{{}, agent.PaymentCheat}}
	out, err := ml.Step(st, cheat)
	if err != nil {
		t.Fatal(err)
	}
	if !out.BidReused {
		t.Fatal("payment-only cheat should not force a rebid")
	}
	if !st.Banned[1] {
		t.Fatal("cheat not banned")
	}
	out, err = ml.Step(st, Job{Z: 0.2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if out.BidReused || out.Participated[1] {
		t.Fatalf("post-ban round: BidReused=%v Participated[1]=%v, want fresh bidding without P2",
			out.BidReused, out.Participated[1])
	}
	out, err = ml.Step(st, Job{Z: 0.2, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if !out.BidReused || out.Participated[1] {
		t.Fatal("post-ban steady state should reuse the survivor bids")
	}

	// The founding Z is pinned.
	if _, err := ml.Step(st, Job{Z: 0.3, Seed: 53}); err == nil {
		t.Fatal("multiload pool accepted a job with a different z")
	}
}

// TestMultiloadRunAggregates: the whole-slice Run entry point works in
// multiload mode too, bans included.
func TestMultiloadRunAggregates(t *testing.T) {
	s := pool()
	s.Multiload = true
	jobs := honestJobs(4)
	jobs[1].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
	rep, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Banned[1] || rep.BannedAfter[1] != 1 {
		t.Fatalf("cheat not banned: %v after %d", rep.Banned[1], rep.BannedAfter[1])
	}
	for r := 2; r < 4; r++ {
		if rep.Rounds[r].Participated[1] || !rep.Rounds[r].Completed {
			t.Fatalf("round %d wrong without banned P2", r)
		}
	}
	if !rep.Rounds[1].BidReused || rep.Rounds[2].BidReused || !rep.Rounds[3].BidReused {
		t.Fatalf("reuse pattern = [%v %v %v %v], want [false true false true]",
			rep.Rounds[0].BidReused, rep.Rounds[1].BidReused, rep.Rounds[2].BidReused, rep.Rounds[3].BidReused)
	}
}
