package session

import (
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
)

func pool() *Session {
	return &Session{
		Network: dlt.NCPFE,
		TrueW:   []float64{1, 1.5, 2, 2.5},
		Fine:    20,
		Policy:  BanDeviants,
	}
}

func honestJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Z: 0.2, Seed: int64(i + 1)}
	}
	return jobs
}

func TestValidation(t *testing.T) {
	if _, err := (&Session{Network: dlt.NCPFE, TrueW: []float64{1}}).Run(honestJobs(1)); err == nil {
		t.Error("single processor accepted")
	}
	if _, err := pool().Run(nil); err == nil {
		t.Error("empty job list accepted")
	}
	cp := pool()
	cp.Network = dlt.CP
	if _, err := cp.Run(honestJobs(1)); err == nil {
		t.Error("CP network accepted")
	}
}

func TestHonestSessionAccumulates(t *testing.T) {
	rep, err := pool().Run(honestJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	for i := range rep.CumulativeUtility {
		var sum float64
		for _, r := range rep.Rounds {
			sum += r.Utilities[i]
		}
		if rep.CumulativeUtility[i] != sum {
			t.Errorf("cumulative[%d] = %v, rounds sum %v", i, rep.CumulativeUtility[i], sum)
		}
		if rep.CumulativeUtility[i] <= 0 {
			t.Errorf("honest processor %d earned %v over 3 jobs", i, rep.CumulativeUtility[i])
		}
		if rep.Banned[i] || rep.BannedAfter[i] != -1 {
			t.Errorf("honest processor %d banned", i)
		}
	}
}

func TestDeviantBannedAndForfeitsFuture(t *testing.T) {
	jobs := honestJobs(4)
	// P2 cheats on its payment vector in round 1 (index 0 of jobs).
	jobs[1].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
	rep, err := pool().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Banned[1] || rep.BannedAfter[1] != 1 {
		t.Fatalf("cheat not banned after round 1: banned=%v after=%d", rep.Banned[1], rep.BannedAfter[1])
	}
	// Rounds 2 and 3 run without P2.
	for r := 2; r < 4; r++ {
		if rep.Rounds[r].Participated[1] {
			t.Errorf("round %d: banned P2 participated", r)
		}
		if rep.Rounds[r].Utilities[1] != 0 {
			t.Errorf("round %d: banned P2 earned %v", r, rep.Rounds[r].Utilities[1])
		}
		if !rep.Rounds[r].Completed {
			t.Errorf("round %d did not complete without P2", r)
		}
	}
	// The long-run cost of the single deviation: the fine plus every
	// forfeited future bonus. Compare with an all-honest session.
	honest, err := pool().Run(honestJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	loss := honest.CumulativeUtility[1] - rep.CumulativeUtility[1]
	if loss <= 20 {
		t.Errorf("repeated-play loss %v not above the one-shot fine 20", loss)
	}
}

func TestForgivePolicyKeepsDeviants(t *testing.T) {
	s := pool()
	s.Policy = Forgive
	jobs := honestJobs(3)
	jobs[0].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
	rep, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Banned[1] {
		t.Error("forgive policy banned someone")
	}
	for r := 1; r < 3; r++ {
		if !rep.Rounds[r].Participated[1] {
			t.Errorf("round %d: forgiven P2 excluded", r)
		}
	}
}

func TestBanningOriginatorHalts(t *testing.T) {
	jobs := honestJobs(2)
	// The NCP-FE originator (P1) over-ships in round 0 and gets fined.
	jobs[0].Behaviors = []agent.Behavior{agent.OverShipper}
	if _, err := pool().Run(jobs); err == nil {
		t.Error("session continued after banning the load originator")
	}
}

func TestPolicyString(t *testing.T) {
	if Forgive.String() != "forgive" || BanDeviants.String() != "ban-deviants" {
		t.Error("policy names wrong")
	}
}
