// Package session runs a SEQUENCE of divisible-load jobs over the same
// processor pool — the setting a real deployment lives in. One-shot
// DLS-BL-NCP already makes a single deviation unprofitable (the fine);
// repeated play adds the second deterrent the paper's economics imply but
// never spell out: a processor caught cheating can be excluded from
// future jobs, forfeiting its stream of bonuses. The session tracks the
// cumulative ledger across rounds and implements pluggable reputation
// policies.
//
// The package exposes two granularities. Run plays a fixed slice of jobs
// and returns an aggregate Report — the one-shot experiment shape. State
// and Step expose the same machinery one round at a time, so a
// long-running owner (internal/service keeps one State per named pool)
// can interleave rounds with other work while the reputation state and
// the warm Keys ring persist between jobs.
package session

import (
	"errors"
	"fmt"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/pipeline"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// Policy decides what happens to processors the referee fined.
type Policy int

const (
	// Forgive keeps fined processors in the pool: every job stands alone
	// and the fine is the only deterrent.
	Forgive Policy = iota
	// BanDeviants excludes a fined processor from all subsequent jobs:
	// it also forfeits its future bonuses.
	BanDeviants
)

// String names the policy.
func (p Policy) String() string {
	if p == Forgive {
		return "forgive"
	}
	return "ban-deviants"
}

// Job is one round: the communication rate of this job's bus session, a
// seed, and per-processor behaviors for the round (nil = all honest).
type Job struct {
	Z         float64
	Seed      int64
	Behaviors []agent.Behavior
	// NBlocks and BlockSize override the round's dataset granularity;
	// zero selects the protocol defaults (64·m blocks of 32 bytes).
	NBlocks   int
	BlockSize int
	// Faults, when non-nil, runs this round over an unreliable bus (see
	// bus.FaultPlan); Retry bounds the round's retransmission machinery.
	// A processor EVICTED for unreachability is not a deviant: it is not
	// fined, and BanDeviants does not exclude it from later rounds — a
	// transient outage must not carry the permanent penalty reserved for
	// strategic cheating.
	Faults *bus.FaultPlan
	Retry  protocol.RetryPolicy
	// Tracer receives this round's span and event records (see
	// protocol.Config.Tracer); nil costs nothing.
	Tracer obs.Tracer
	// Installments pipelines this job: > 1 serves the load in that many
	// installment sub-rounds (pipeline.RunLoad) under InstallmentPolicy,
	// overlapping communication with computation. Requires Multiload (the
	// sub-rounds ride the pool's cached bids) and an overlap-capable
	// network class; 0 or 1 serves the load whole, unchanged.
	Installments      int
	InstallmentPolicy dlt.RoundPolicy
	// FailoverIn kills the primary referee at the start of the named phase
	// of this job and promotes the pool's standby referee (see
	// protocol.Config.FailoverIn); requires Session.Standby.
	FailoverIn string
}

// Session is a processor pool playing repeated jobs.
type Session struct {
	// Network is NCPFE or NCPNFE (DLS-BL-NCP classes).
	Network dlt.Network
	// TrueW are the pool's private processing rates.
	TrueW []float64
	// Fine is the per-job fine magnitude F (0 = derived per job).
	Fine float64
	// Policy is the reputation rule.
	Policy Policy
	// Keys, when non-nil, keeps the pool warm between rounds: every round
	// reuses the ring's cached Ed25519 pairs instead of regenerating
	// them, cutting the dominant per-run cost. Payments are unaffected
	// (see protocol.Config.Keys).
	Keys *sig.Keyring
	// Multiload amortizes the Bidding phase across the pool's rounds via
	// a protocol.BidSession: the pool bids once and every later round is
	// served from the cached signed bids — Θ(m) control-plane traffic per
	// job instead of Θ(m²) — re-bidding automatically when the effective
	// bid profile changes (a ban forcing abstention, a behavior change
	// that moves a bid, an eviction). The first multiload round's Z
	// founds the bid session; later rounds must carry the same Z. The
	// economics are identical either way (see TestBidReuseParityProperty).
	Multiload bool
	// Codec selects the envelope payload encoding for every round's hot
	// phase payloads (see protocol.Config.Codec); the zero value is the
	// legacy JSON format.
	Codec sig.Codec
	// Memo, when non-nil, is the pool's shared verified-envelope memo
	// (see protocol.Config.Memo). Non-multiload rounds thread it into
	// each protocol.Run; multiload pools pass it to the BidSession, which
	// otherwise creates its own.
	Memo *sig.VerifyMemo
	// Standby arms a standby referee for every round (see
	// protocol.Config.Standby): the primary streams its audit state to a
	// replica that Job.FailoverIn can promote mid-round.
	Standby bool
}

// State is the reputation state a pool carries between rounds. Step
// mutates it in place; a fresh NewState starts a pool with a clean
// record.
type State struct {
	// Round counts the jobs played so far.
	Round int
	// CumulativeUtility[i] sums processor i's utility over all rounds.
	CumulativeUtility []float64
	// Banned[i] is true if processor i was excluded at some point;
	// BannedAfter[i] is the round index whose verdict banned it (-1 if
	// never).
	Banned      []bool
	BannedAfter []int
	// Traffic accumulates the pool's control-plane bus traffic across
	// rounds, and — under Multiload — the traffic bid reuse avoided.
	Traffic TrafficStats

	// bid is the pool's amortized bidding session (Multiload only),
	// created lazily on the first Step; bidZ is the Z it was founded
	// with.
	bid  *protocol.BidSession
	bidZ float64
}

// TrafficStats totals a pool's control-plane traffic across rounds.
type TrafficStats struct {
	// Messages / Deliveries / Units are what actually crossed the bus
	// (bus.Stats semantics: Messages counts a broadcast once, Deliveries
	// counts receiver-side arrivals — the Θ(m²) term).
	Messages   int
	Deliveries int
	Units      int
	// MessagesSaved / DeliveriesSaved / UnitsSaved total the Bidding
	// exchanges that bid reuse avoided; zero outside Multiload.
	MessagesSaved   int
	DeliveriesSaved int
	UnitsSaved      int
}

// BidStats reports the pool's amortized-bidding counters (zero value
// outside Multiload or before the first round).
func (st *State) BidStats() protocol.SessionStats {
	if st.bid == nil {
		return protocol.SessionStats{}
	}
	return st.bid.Stats()
}

// Report aggregates a session.
type Report struct {
	// Rounds holds each job's protocol outcome, in order.
	Rounds []*protocol.Outcome
	// CumulativeUtility[i] sums processor i's utility over all rounds.
	CumulativeUtility []float64
	// Banned[i] is true if processor i was excluded at some point;
	// BannedAfter[i] is the round index whose verdict banned it (-1 if
	// never).
	Banned      []bool
	BannedAfter []int
}

// NewState validates the pool and returns a clean reputation state.
func (s *Session) NewState() (*State, error) {
	m := len(s.TrueW)
	if m < 2 {
		return nil, errors.New("session: need at least two processors")
	}
	if s.Network != dlt.NCPFE && s.Network != dlt.NCPNFE {
		return nil, fmt.Errorf("session: DLS-BL-NCP requires an NCP class, got %v", s.Network)
	}
	st := &State{
		CumulativeUtility: make([]float64, m),
		Banned:            make([]bool, m),
		BannedAfter:       make([]int, m),
	}
	for i := range st.BannedAfter {
		st.BannedAfter[i] = -1
	}
	return st, nil
}

// Step plays one job against the pool, forcing processors st has banned
// to abstain, and folds the outcome into st. Under BanDeviants a fined
// processor is banned from subsequent rounds; banning the
// load-originating processor returns the round's outcome together with an
// error (the pool has no load source without it) and leaves the ban
// unrecorded, exactly as Run ends the session there. A protocol-level
// failure returns a nil outcome and leaves st untouched.
func (s *Session) Step(st *State, job Job) (*protocol.Outcome, error) {
	m := len(s.TrueW)
	origIdx := s.Network.Originator(m)
	behaviors := make([]agent.Behavior, m)
	for i := 0; i < m; i++ {
		if i < len(job.Behaviors) {
			behaviors[i] = job.Behaviors[i]
		}
		if st.Banned[i] {
			behaviors[i] = agent.Behavior{Name: "banned", Abstain: true}
		}
	}
	var out *protocol.Outcome
	var err error
	if job.Installments > 1 && !s.Multiload {
		return nil, fmt.Errorf("session: round %d: installment pipelining requires a Multiload pool", st.Round)
	}
	if s.Multiload {
		out, err = s.stepMultiload(st, job, behaviors)
	} else {
		out, err = protocol.Run(protocol.Config{
			Network:    s.Network,
			Z:          job.Z,
			TrueW:      s.TrueW,
			Behaviors:  behaviors,
			Fine:       s.Fine,
			NBlocks:    job.NBlocks,
			BlockSize:  job.BlockSize,
			Seed:       job.Seed,
			Faults:     job.Faults,
			Retry:      job.Retry,
			Keys:       s.Keys,
			Tracer:     job.Tracer,
			Codec:      s.Codec,
			Memo:       s.Memo,
			Standby:    s.Standby,
			FailoverIn: job.FailoverIn,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("session: round %d: %w", st.Round, err)
	}
	st.Traffic.Messages += out.BusStats.Messages
	st.Traffic.Deliveries += out.BusStats.Deliveries
	st.Traffic.Units += out.BusStats.Units
	if st.bid != nil {
		bs := st.bid.Stats()
		st.Traffic.MessagesSaved = bs.SavedMessages
		st.Traffic.DeliveriesSaved = bs.SavedDeliveries
		st.Traffic.UnitsSaved = bs.SavedUnits
	}
	round := st.Round
	st.Round++
	for i := 0; i < m; i++ {
		st.CumulativeUtility[i] += out.Utilities[i]
	}
	if s.Policy == BanDeviants {
		for i := 0; i < m; i++ {
			if out.Fines[i] > 0 && !st.Banned[i] {
				if i == origIdx {
					return out, fmt.Errorf("session: round %d banned the load-originating processor P%d; the pool has no load source", round, i+1)
				}
				st.Banned[i] = true
				st.BannedAfter[i] = round
			}
		}
	}
	return out, nil
}

// stepMultiload serves one round from the pool's BidSession, founding it
// on first use. Bans flow in as Abstain behaviors, so a freshly banned
// processor flips the bid profile and the session re-bids on its own —
// Step never needs to tell it.
func (s *Session) stepMultiload(st *State, job Job, behaviors []agent.Behavior) (*protocol.Outcome, error) {
	if st.bid == nil {
		bid, err := protocol.NewBidSession(protocol.Config{
			Network: s.Network,
			Z:       job.Z,
			TrueW:   s.TrueW,
			Fine:    s.Fine,
			Keys:    s.Keys,
			Codec:   s.Codec,
			Memo:    s.Memo,
			Standby: s.Standby,
		})
		if err != nil {
			return nil, err
		}
		st.bid, st.bidZ = bid, job.Z
	}
	if job.Z != st.bidZ {
		return nil, fmt.Errorf("session: multiload pool founded with z=%v cannot serve a job with z=%v", st.bidZ, job.Z)
	}
	jc := protocol.JobConfig{
		Seed:       job.Seed,
		NBlocks:    job.NBlocks,
		BlockSize:  job.BlockSize,
		Behaviors:  behaviors,
		Faults:     job.Faults,
		Retry:      job.Retry,
		Tracer:     job.Tracer,
		FailoverIn: job.FailoverIn,
	}
	if job.Installments > 1 {
		return pipeline.RunLoad(st.bid, pipeline.Load{
			Job:    jc,
			Rounds: job.Installments,
			Policy: job.InstallmentPolicy,
		})
	}
	return st.bid.Run(jc)
}

// Run plays the jobs in order. Under BanDeviants, a processor fined in
// round r is forced to abstain from rounds r+1…; banning the
// load-originating processor ends the session with an error (the pool
// has no load source without it).
func (s *Session) Run(jobs []Job) (*Report, error) {
	if len(jobs) == 0 {
		return nil, errors.New("session: no jobs")
	}
	st, err := s.NewState()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		CumulativeUtility: st.CumulativeUtility,
		Banned:            st.Banned,
		BannedAfter:       st.BannedAfter,
	}
	for _, job := range jobs {
		out, err := s.Step(st, job)
		if out != nil {
			rep.Rounds = append(rep.Rounds, out)
		}
		if err != nil {
			if out == nil {
				return nil, err
			}
			return rep, err
		}
	}
	return rep, nil
}
