package protocol

import (
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// Non-participation: "If P_i does not wish to participate, it does not
// broadcast a bid and it receives a utility of 0" (Section 4, Bidding).

func TestAbstainerGetsZeroAndOthersProceed(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE) // w = (1, 1.5, 2, 2.5)
	bs := make([]agent.Behavior, 4)
	bs[2] = agent.Behavior{Name: "abstainer", Abstain: true}
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("run with abstainer terminated in %s", out.TerminatedIn)
	}
	if len(out.Procs) != 4 || len(out.Bids) != 4 {
		t.Fatalf("outcome not in config space: %d procs", len(out.Procs))
	}
	if out.Participated[2] {
		t.Error("abstainer marked as participant")
	}
	for _, i := range []int{0, 1, 3} {
		if !out.Participated[i] {
			t.Errorf("P%d marked absent", i+1)
		}
	}
	// The abstainer's entries are all zero.
	if out.Bids[2] != 0 || out.Alloc[2] != 0 || out.Payments[2] != 0 ||
		out.Utilities[2] != 0 || out.Fines[2] != 0 || out.WorkCost[2] != 0 {
		t.Errorf("abstainer has nonzero entries: bid=%v α=%v Q=%v U=%v",
			out.Bids[2], out.Alloc[2], out.Payments[2], out.Utilities[2])
	}
	// The remaining three run the standard mechanism among themselves.
	mech := core.Mechanism{Network: dlt.NCPFE, Z: cfg.Z}
	sub := []float64{1.0, 1.5, 2.5}
	want, err := mech.Run(sub, core.TruthfulExec(sub))
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{out.Payments[0], out.Payments[1], out.Payments[3]}
	for i := range want.Payment {
		if relErr(got[i], want.Payment[i]) > tol {
			t.Errorf("participant payment %d = %v, want %v", i, got[i], want.Payment[i])
		}
	}
	// Allocation over participants sums to 1.
	var sum float64
	for _, a := range out.Alloc {
		sum += a
	}
	if relErr(sum, 1) > tol {
		t.Errorf("allocation sums to %v", sum)
	}
}

func TestAbstainingOriginatorRejected(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, 4)
	bs[0] = agent.Behavior{Abstain: true} // NCP-FE originator
	cfg.Behaviors = bs
	if _, err := Run(cfg); err == nil {
		t.Error("abstaining FE originator accepted")
	}
	nfe := honestConfig(dlt.NCPNFE)
	bs2 := make([]agent.Behavior, 4)
	bs2[3] = agent.Behavior{Abstain: true} // NCP-NFE originator
	nfe.Behaviors = bs2
	if _, err := Run(nfe); err == nil {
		t.Error("abstaining NFE originator accepted")
	}
}

func TestTooFewParticipants(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, 4)
	for i := 1; i < 4; i++ {
		bs[i] = agent.Behavior{Abstain: true}
	}
	cfg.Behaviors = bs
	if _, err := Run(cfg); err == nil {
		t.Error("single-participant run accepted")
	}
}

func TestAbstainerPlusDeviant(t *testing.T) {
	// P3 abstains, P2 equivocates: the fine is split among the TWO
	// remaining participants only, and the abstainer stays at zero.
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, 4)
	bs[2] = agent.Behavior{Abstain: true}
	bs[1] = agent.Equivocator
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("equivocation not caught with an abstainer present")
	}
	F := out.FineMagnitude
	if relErr(out.Fines[1], F) > tol {
		t.Errorf("equivocator fined %v, want %v", out.Fines[1], F)
	}
	if out.Rewards[2] != 0 || out.Utilities[2] != 0 {
		t.Error("abstainer received fine proceeds")
	}
	for _, i := range []int{0, 3} {
		if relErr(out.Rewards[i], F/2) > tol {
			t.Errorf("P%d reward %v, want F/2=%v", i+1, out.Rewards[i], F/2)
		}
	}
}

func TestAbstentionNotDeviant(t *testing.T) {
	if (agent.Behavior{Abstain: true}).Deviant() {
		t.Error("abstention flagged as a finable deviation")
	}
}
