package protocol

import (
	"errors"
	"fmt"
	"sort"

	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/payment"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
	"dlsbl/internal/workload"
)

// ---- Phase: Bidding -------------------------------------------------------

// bidExchange performs the all-to-all broadcast of signed bids over the
// (possibly faulty) bus: every logical bid message is retransmitted under
// its original nonce with capped exponential backoff until each receiver
// holds a verified copy or the retry budget runs out. It returns the
// per-receiver verified deliveries, each sender's primary (agreed) bid
// envelope and nonce, and — per receiver — the sorted participant indices
// of the senders whose primary bid that receiver still lacks after the
// budget. Deciding who is actually unreachable is the caller's job: under
// the witness-corroboration rule a residual missing pair alone evicts
// nobody (see healMissingBids).
func (r *run) bidExchange() (received [][]bus.Message, firstEnvs []sig.Envelope, missing [][]int, primaryNonces []uint64, err error) {
	type logical struct {
		sender  int // participant index
		env     sig.Envelope
		nonce   uint64
		primary bool // the sender's first (agreed) bid
	}
	var msgs []logical
	firstEnvs = make([]sig.Envelope, r.m)
	primaryNonces = make([]uint64, r.m)
	for i, a := range r.agents {
		env, err := r.seal(a.Key, referee.KindBid, referee.BidPayload{Proc: a.ID, Bid: a.Bid(), Round: r.roundID})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		firstEnvs[i] = env
		nonce, err := r.net.BroadcastTagged(a.ID, referee.KindBid, env, 1, 0)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		primaryNonces[i] = nonce
		msgs = append(msgs, logical{sender: i, env: env, nonce: nonce, primary: true})
		if second, ok := a.SecondBid(); ok {
			// Equivocators broadcast a second, contradictory bid.
			env2, err := r.seal(a.Key, referee.KindBid, referee.BidPayload{Proc: a.ID, Bid: second, Round: r.roundID})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			nonce2, err := r.net.BroadcastTagged(a.ID, referee.KindBid, env2, 1, 0)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			msgs = append(msgs, logical{sender: i, env: env2, nonce: nonce2, primary: false})
		}
	}

	// need[receiver][nonce] = index into msgs still awaited by that
	// receiver. Nonces are globally unique, so the nonce alone keys a
	// logical message.
	need := make([]map[uint64]int, r.m)
	for ri := range r.agents {
		need[ri] = make(map[uint64]int, len(msgs))
		for mi, lm := range msgs {
			if lm.sender != ri {
				need[ri][lm.nonce] = mi
			}
		}
	}
	received = make([][]bus.Message, r.m)
	outstanding := func() int {
		n := 0
		for ri := range need {
			n += len(need[ri])
		}
		return n
	}
	for attempt := 1; ; attempt++ {
		for ri, a := range r.agents {
			if err := r.xp.pull(a.ID); err != nil {
				return nil, nil, nil, nil, err
			}
			for _, lm := range msgs {
				if _, wanted := need[ri][lm.nonce]; !wanted {
					continue
				}
				if m, ok := r.xp.takeNonce(a.ID, r.agents[lm.sender].ID, lm.nonce); ok {
					received[ri] = append(received[ri], m)
					delete(need[ri], lm.nonce)
				}
			}
		}
		if outstanding() == 0 {
			break
		}
		r.xp.stats.Timeouts++
		r.xp.event(obs.Event{Kind: obs.EvTimeout, Msg: referee.KindBid,
			Detail: fmt.Sprintf("%d bid deliveries outstanding", outstanding())})
		if attempt >= r.xp.policy.MaxAttempts || r.xp.sleep(attempt) {
			break
		}
		// Point-to-point retransmission of exactly the missing copies,
		// under the original nonces (idempotent at the receivers). Iterate
		// msgs in index order, not the need map: send order decides which
		// seeded fault draws hit which deliveries, so it must be
		// deterministic for FaultPlan's reproducibility contract to hold.
		for ri, a := range r.agents {
			for _, lm := range msgs {
				if _, wanted := need[ri][lm.nonce]; !wanted {
					continue
				}
				if _, err := r.net.SendTagged(r.agents[lm.sender].ID, a.ID, referee.KindBid, lm.env, 1, lm.nonce); err != nil {
					return nil, nil, nil, nil, err
				}
				r.xp.stats.Retransmits++
				r.xp.event(obs.Event{Kind: obs.EvRetransmit, From: r.agents[lm.sender].ID, To: a.ID, Msg: referee.KindBid})
			}
		}
	}

	missing = make([][]int, r.m)
	if outstanding() == 0 {
		return received, firstEnvs, missing, primaryNonces, nil
	}
	for ri := range need {
		for _, mi := range need[ri] {
			if msgs[mi].primary {
				missing[ri] = append(missing[ri], msgs[mi].sender)
			}
		}
		sort.Ints(missing[ri])
	}
	return received, firstEnvs, missing, primaryNonces, nil
}

// witnessReport is one unreachability allegation in pre-eviction
// participant space: witness claims it never received accused's primary
// bid. genuine marks allegations backed by an actually missing delivery
// (as opposed to a framer's fabricated one).
type witnessReport struct {
	witness, accused int
	genuine          bool
}

// relayTask is one below-threshold report the referee mediated with a bid
// relay; phaseBidding adjudicates it once the referee exists.
type relayTask struct {
	witness, accused int // pre-eviction participant indices
	report           sig.Envelope
	evidence         referee.WitnessEvidence
}

// healMissingBids turns the residual missing primary-bid pairs of the
// exchange into evictions and mediated witness reports:
//
//   - a sender nobody can reach, or a receiver that heard nobody, is
//     unreachable outright (no witnesses needed — the whole pool agrees);
//   - an accused reported missing by ≥ ⌈m/2⌉ DISTINCT witnesses
//     (referee.CorroborationThreshold over the pre-eviction count) is
//     evicted: corroboration at that scale cannot be manufactured by a
//     single strategic processor;
//   - every below-threshold report triggers a bid relay instead: the
//     witness files a signed WitnessReportPayload with the referee, the
//     referee fetches the accused's primary bid envelope from any holder
//     and relays the verified copy to the witness, healing a genuine
//     targeted loss. The report is adjudicated later (JudgeWitnessReport):
//     a witness that maintains its claim against the verified relay — the
//     framing attack — is convicted.
//
// It returns the eviction set (participant index → reason) and the relay
// tasks to adjudicate, and appends relayed bids to the received rows of
// genuinely missing witnesses.
func (r *run) healMissingBids(received [][]bus.Message, missing [][]int, primaryNonces []uint64) (map[int]string, []relayTask, error) {
	unreachable := make(map[int]string)
	m0 := r.m
	anyMissing := false
	for ri := range missing {
		if len(missing[ri]) > 0 {
			anyMissing = true
		}
	}
	framers := false
	for _, a := range r.agents {
		if a.Behavior.FrameRival {
			framers = true
		}
	}
	if !anyMissing && !framers {
		return unreachable, nil, nil
	}

	// Wholesale failures first: they need no corroboration machinery.
	sendFail := make([]int, m0) // receivers missing i's primary bid
	for ri := range missing {
		for _, s := range missing[ri] {
			sendFail[s]++
		}
	}
	for i := range r.agents {
		switch {
		case sendFail[i] == m0-1:
			unreachable[i] = fmt.Sprintf("bid undeliverable to all %d peers within the retry budget", m0-1)
		case len(missing[i]) == m0-1:
			unreachable[i] = fmt.Sprintf("received none of %d peer bids within the retry budget", m0-1)
		}
	}

	// Witness reports: every genuinely missing pair among live parties,
	// plus each framer's fabricated allegation against its rival.
	thresh := referee.CorroborationThreshold(m0)
	var reports []witnessReport
	reportedBy := make(map[int]map[int]bool) // accused → distinct witnesses
	addReport := func(w, a int, genuine bool) {
		if _, gone := unreachable[w]; gone {
			return
		}
		if _, gone := unreachable[a]; gone {
			return
		}
		if reportedBy[a] == nil {
			reportedBy[a] = make(map[int]bool)
		}
		if reportedBy[a][w] {
			return
		}
		reportedBy[a][w] = true
		reports = append(reports, witnessReport{witness: w, accused: a, genuine: genuine})
	}
	for ri := range missing {
		for _, s := range missing[ri] {
			addReport(ri, s, true)
		}
	}
	for i, a := range r.agents {
		if a.Behavior.FrameRival {
			addReport(i, (i+1)%m0, false)
		}
	}

	// Corroborated unreachability: ≥ ⌈m/2⌉ distinct witnesses agree.
	for a := 0; a < m0; a++ {
		ws := reportedBy[a]
		if len(ws) < thresh {
			continue
		}
		unreachable[a] = fmt.Sprintf("unreachable: %d of %d witnesses corroborate (threshold %d)",
			len(ws), m0-1, thresh)
		if r.tracer != nil {
			// Corroborated reports never reach the per-report relay loop
			// below (the accused is already gone), so the tally is the only
			// place the transcript can show each witness — and the sentinel
			// demands threshold-many before the eviction event.
			wits := make([]int, 0, len(ws))
			for w := range ws {
				wits = append(wits, w)
			}
			sort.Ints(wits)
			for _, w := range wits {
				r.tracer.Event(obs.Event{
					Kind: obs.EvWitnessReport, From: r.agents[w].ID, To: r.agents[a].ID,
					Msg: referee.KindWitnessReport, Round: r.roundID,
					Detail: fmt.Sprintf("%d of %d witnesses, threshold %d", len(ws), m0-1, thresh),
				})
			}
		}
	}

	// Below-threshold reports: file with the referee and mediate by relay.
	var tasks []relayTask
	holderEnv := make(map[int]sig.Envelope) // accused → primary bid from a holder
	for _, rep := range reports {
		if _, gone := unreachable[rep.witness]; gone {
			continue
		}
		if _, gone := unreachable[rep.accused]; gone {
			continue
		}
		w, a := r.agents[rep.witness], r.agents[rep.accused]
		env, err := r.seal(w.Key, referee.KindWitnessReport,
			referee.WitnessReportPayload{Witness: w.ID, Accused: a.ID, Round: r.roundID})
		if err != nil {
			return nil, nil, err
		}
		if r.tracer != nil {
			r.tracer.Event(obs.Event{
				Kind: obs.EvWitnessReport, From: w.ID, To: a.ID, Msg: referee.KindWitnessReport,
				Round:  r.roundID,
				Detail: fmt.Sprintf("%d of %d witnesses, threshold %d", len(reportedBy[rep.accused]), m0-1, thresh),
			})
		}
		if _, err := r.xp.sendReliable(w.ID, r.refAddr, referee.KindWitnessReport, env, 1); err != nil {
			if errors.Is(err, ErrUnreachable) {
				unreachable[rep.witness] = "unreachable while filing a witness report"
				continue
			}
			return nil, nil, err
		}
		ev := referee.WitnessEvidence{
			Corroborating: len(reportedBy[rep.accused]),
			Witnesses:     m0 - 1,
			Threshold:     thresh,
		}
		// The referee obtains the accused's primary bid from the first
		// reachable holder (once per accused; later reports reuse it).
		bidEnv, have := holderEnv[rep.accused]
		if !have {
			for hi := range r.agents {
				if hi == rep.accused {
					continue
				}
				if _, gone := unreachable[hi]; gone {
					continue
				}
				var held *sig.Envelope
				for mi := range received[hi] {
					if received[hi][mi].From == a.ID && received[hi][mi].Nonce == primaryNonces[rep.accused] {
						held = &received[hi][mi].Env
						break
					}
				}
				if held == nil {
					continue
				}
				if _, err := r.xp.sendReliable(r.agents[hi].ID, r.refAddr, referee.KindBid, *held, 1); err != nil {
					if errors.Is(err, ErrUnreachable) {
						continue
					}
					return nil, nil, err
				}
				bidEnv, have = *held, true
				holderEnv[rep.accused] = bidEnv
				break
			}
		}
		if !have {
			// Not a dead sender, yet no holder could produce the bid: the
			// accused's bid is unobtainable after all.
			unreachable[rep.accused] = "bid unobtainable from any holder during witness mediation"
			continue
		}
		ev.RelayDelivered = true
		relayed, err := r.xp.sendReliable(r.refAddr, w.ID, referee.KindBid, bidEnv, 1)
		if err != nil {
			if errors.Is(err, ErrUnreachable) {
				unreachable[rep.witness] = "unreachable during the referee's bid relay"
				continue
			}
			return nil, nil, err
		}
		if rep.genuine {
			// The relay heals the loss: the witness now holds the verified
			// bid and the round proceeds with no eviction.
			received[rep.witness] = append(received[rep.witness], relayed)
		}
		// A framer maintains its fabricated claim against its rival even
		// while holding the relayed proof; an honest witness withdraws.
		ev.ClaimMaintained = w.Behavior.FrameRival && rep.accused == (rep.witness+1)%m0
		tasks = append(tasks, relayTask{witness: rep.witness, accused: rep.accused, report: env, evidence: ev})
	}
	return unreachable, tasks, nil
}

// phaseBidding performs the all-to-all broadcast of signed bids, collects
// and cross-verifies them, adjudicates unreachability through the
// witness-corroboration rule (corroborated accused are evicted, framers
// are convicted, genuine targeted losses are healed by a referee bid
// relay), and lets processors inform the referee about equivocation.
// Returns true when a verdict terminated the protocol.
func (r *run) phaseBidding() (bool, error) {
	r.xp.beginPhase()
	received, firstEnvs, missing, primaryNonces, err := r.bidExchange()
	if err != nil {
		return false, err
	}
	unreachable, tasks, err := r.healMissingBids(received, missing, primaryNonces)
	if err != nil {
		return false, err
	}
	evictedNow := append([]EvictionEvent(nil), r.outcome.Evictions...)
	if err := r.applyEvictions(unreachable, "bidding"); err != nil {
		return false, err
	}
	evictedNow = r.outcome.Evictions[len(evictedNow):]
	// Drop the per-receiver state of evicted processors; r.agents/r.procs
	// now hold the survivors, and the slices must stay index-aligned.
	if len(unreachable) > 0 {
		keptRecv, keptEnvs := received[:0], firstEnvs[:0]
		for ri := range received {
			if _, gone := unreachable[ri]; !gone {
				keptRecv = append(keptRecv, received[ri])
				keptEnvs = append(keptEnvs, firstEnvs[ri])
			}
		}
		received, firstEnvs = keptRecv, keptEnvs
	}

	// Collection: each surviving processor verifies every delivery,
	// discarding failures. All honest processors see identical broadcasts
	// (the retry layer restores atomicity), so one representative
	// collection suffices for the agreed bid vector; equivocation
	// detection scans per receiver.
	type seenBid struct {
		envs []sig.Envelope
		bids []float64
	}
	r.bids = make([]float64, r.m)
	r.bidEnvs = make([]sig.Envelope, r.m)
	var equivocators []int
	evidence := make(map[int][2]sig.Envelope)
	for i := range r.agents {
		seen := make(map[string]*seenBid)
		for _, msg := range received[i] {
			var bp referee.BidPayload
			if err := r.open(&msg.Env, &bp); err != nil {
				continue // failed verification: discarded (paper)
			}
			if bp.Proc != msg.Env.Sender {
				continue
			}
			sb := seen[bp.Proc]
			if sb == nil {
				sb = &seenBid{}
				seen[bp.Proc] = sb
			}
			duplicate := false
			for _, prev := range sb.bids {
				if prev == bp.Bid {
					duplicate = true
					break
				}
			}
			if duplicate {
				continue
			}
			sb.envs = append(sb.envs, msg.Env)
			sb.bids = append(sb.bids, bp.Bid)
		}
		// Record the agreed bids from the first collector's perspective;
		// fill in each sender's first-seen bid.
		if i == 0 {
			for j, p := range r.procs {
				if j == 0 {
					continue
				}
				if sb := seen[p]; sb != nil && len(sb.bids) > 0 {
					r.bids[j] = sb.bids[0]
					r.bidEnvs[j] = sb.envs[0]
				}
			}
		}
		// Equivocation detection by this receiver.
		for j, p := range r.procs {
			if sb := seen[p]; sb != nil && len(sb.bids) > 1 {
				if _, already := evidence[j]; !already {
					equivocators = append(equivocators, j)
					evidence[j] = [2]sig.Envelope{sb.envs[0], sb.envs[1]}
				}
			}
		}
	}
	// A processor's own bid is what it broadcast first.
	for i, a := range r.agents {
		r.bids[i] = a.Bid()
		r.bidEnvs[i] = firstEnvs[i]
	}

	// The referee comes into existence with a publicly known fine.
	fine := r.cfg.Fine
	if fine == 0 {
		fine = referee.SuggestedFine(r.bids, 4)
	}
	r.ref, err = referee.New(r.reg, r.ledger, r.mech, r.procs, fine)
	if err != nil {
		return false, err
	}
	r.ref.UseVerifier(r.ver)
	// A round that runs its own Bidding phase IS its bids' epoch.
	r.ref.BindRounds(r.roundID, r.bidEpoch)
	if err := r.armStandby(); err != nil {
		return false, err
	}
	r.recordInstallment()
	r.outcome.FineMagnitude = fine
	// Evictions are availability failures, not offenses: they enter the
	// audit transcript (action "eviction") but carry no fine.
	for _, ev := range evictedNow {
		r.ref.RecordEviction(ev.Proc, ev.Phase, ev.Reason)
	}

	// Adjudicate the mediated witness reports. A maintained claim against
	// the verified relay is a convictable framing attempt; the fine never
	// terminates the round — the framer's bid is bound and the honest
	// majority proceeds.
	for _, t := range tasks {
		if _, gone := unreachable[t.witness]; gone {
			continue
		}
		if _, gone := unreachable[t.accused]; gone {
			continue
		}
		r.evidence(r.agents[t.witness].ID, referee.KindWitnessReport)
		v, err := r.ref.JudgeWitnessReport(t.report, t.evidence)
		if err != nil {
			return false, err
		}
		r.record(v)
		if !v.Clean() {
			if err := r.ref.Settle(v, nil); err != nil {
				return false, err
			}
			if r.tracer != nil {
				for _, g := range v.Guilty {
					r.tracer.Event(obs.Event{
						Kind: obs.EvFramingConviction, From: g, Round: r.roundID, Detail: v.Reason,
					})
				}
			}
		}
		if v.Terminates {
			return true, nil
		}
	}

	// Unfounded accusations fire first if a false accuser exists: it
	// signals the referee with non-evidence against its neighbour.
	for i, a := range r.agents {
		if !a.Behavior.FalseEquivocationReport {
			continue
		}
		victim := r.agents[(i+1)%r.m]
		// The "evidence" is the victim's single legitimate bid twice.
		r.evidence(a.ID, "dls/equivocation-report")
		v, err := r.ref.JudgeEquivocation(a.ID, firstEnvs[(i+1)%r.m], firstEnvs[(i+1)%r.m])
		if err != nil {
			return false, err
		}
		_ = victim
		r.record(v)
		if err := r.ref.Settle(v, nil); err != nil {
			return false, err
		}
		if v.Terminates {
			return true, nil
		}
	}

	// Genuine equivocation: the first honest observer informs against the
	// equivocator, providing both signed bids as evidence.
	for _, j := range equivocators {
		accuser := ""
		for i, a := range r.agents {
			if i != j && !a.Behavior.Deviant() {
				accuser = a.ID
				break
			}
		}
		if accuser == "" {
			accuser = r.procs[(j+1)%r.m]
		}
		ev := evidence[j]
		// The report travels over the bus to the referee: two envelopes,
		// delivered reliably (retransmitted under one nonce if faulty).
		if _, err := r.xp.sendReliable(accuser, r.refAddr, "dls/equivocation-report", ev[0], 2); err != nil {
			return false, err
		}
		r.evidence(accuser, "dls/equivocation-report")
		v, err := r.ref.JudgeEquivocation(accuser, ev[0], ev[1])
		if err != nil {
			return false, err
		}
		r.record(v)
		if err := r.ref.Settle(v, nil); err != nil {
			return false, err
		}
		if v.Terminates {
			return true, nil
		}
	}
	return false, nil
}

// ---- Phase: Allocating Load -------------------------------------------------

// allocate applies the round's allocation rule to a bid vector: the
// paper's single-round optimal split for whole-load rounds, the
// steady-state balanced split (dlt.PipelinedAllocation) for installment
// sub-rounds — where the single-round rule would keep the first-served
// processor busy for the entire makespan and leave the pipeline nothing
// to overlap.
func (r *run) allocate(bids []float64) (dlt.Allocation, error) {
	in := dlt.Instance{Network: r.cfg.Network, Z: r.cfg.Z, W: bids}
	if r.instOf > 1 {
		return dlt.PipelinedAllocation(in)
	}
	return dlt.Optimal(in)
}

// recomputeCounts is the referee's recomputation callback: from an agreed
// bid vector to per-processor block counts.
func (r *run) recomputeCounts(bids []float64) ([]int, error) {
	alloc, err := r.allocate(bids)
	if err != nil {
		return nil, err
	}
	asg, err := workload.Partition(alloc, r.nBlocks)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(asg))
	for i, a := range asg {
		counts[i] = a.Count()
	}
	return counts, nil
}

// signedBidVector builds the vector of signed bids a party submits to the
// referee during a claim. A vector tamperer replaces its own entry with a
// freshly signed different bid — the only way to alter a signature-
// protected vector, and exactly what Lemma 5.2 catches.
func (r *run) signedBidVector(i int) (sig.Envelope, error) {
	a := r.agents[i]
	envs := append([]sig.Envelope(nil), r.bidEnvs...)
	if a.Behavior.TamperBidVectorEntry {
		// The forger stamps its own current bid epoch (per-processor after
		// a splice) — an off-epoch entry would be rejected outright; this
		// way the fresh signature itself is what convicts (Lemma 5.2).
		forged, err := r.seal(a.Key, referee.KindBid, referee.BidPayload{Proc: a.ID, Bid: a.TamperedOwnBid(), Round: r.epochOf(i)})
		if err != nil {
			return sig.Envelope{}, err
		}
		envs[i] = forged
	}
	return r.seal(a.Key, referee.KindBidVector, referee.BidVectorPayload{Proc: a.ID, Bids: envs, Round: r.roundID})
}

// workDoneAt returns the termination compensations when a claim stops the
// protocol during delivery to recipient `upTo` (order position in the
// delivery sequence): everyone whose delivery completed earlier has
// commenced work, plus the NCP-FE originator, which computes from time 0.
func (r *run) workDoneAt(deliveryOrder []int, upTo int) map[string]float64 {
	work := make(map[string]float64)
	if r.cfg.Network == dlt.NCPFE {
		work[r.procs[r.origIdx]] = r.alloc[r.origIdx] * r.agents[r.origIdx].Exec() * r.loadFrac
	}
	for pos := 0; pos < upTo; pos++ {
		i := deliveryOrder[pos]
		work[r.procs[i]] = r.alloc[i] * r.agents[i].Exec() * r.loadFrac
	}
	return work
}

// phaseAllocating computes the allocation everywhere, ships the blocks,
// and adjudicates misallocation claims. Returns true on termination.
func (r *run) phaseAllocating() (bool, error) {
	r.xp.beginPhase()
	if err := r.failover(obs.PhaseAllocating); err != nil {
		return false, err
	}
	var err error
	r.alloc, err = r.allocate(r.bids)
	if err != nil {
		return false, err
	}
	r.assigns, err = workload.Partition(r.alloc, r.nBlocks)
	if err != nil {
		return false, err
	}

	orig := r.agents[r.origIdx]
	// Delivery order: index order, skipping the originator (Theorem 2.2
	// makes the order irrelevant for optimality).
	var order []int
	for i := range r.procs {
		if i != r.origIdx {
			order = append(order, i)
		}
	}
	// The originator's misallocation targets the first recipient.
	misTarget := -1
	if orig.Behavior.MisallocateExtraBlocks != 0 && len(order) > 0 {
		misTarget = order[0]
	}

	for pos, i := range order {
		a := r.agents[i]
		expected := r.assigns[i].Count()
		delivered := expected
		if i == misTarget {
			delivered += orig.Behavior.MisallocateExtraBlocks
			if delivered < 0 {
				delivered = 0
			}
		}

		switch {
		case a.Behavior.FalseShortageClaim && delivered == expected:
			// Unfounded shortage claim: mediation completes a verified
			// delivery, the claimant persists, the claimant is fined.
			r.evidence(a.ID, "dls/short-delivery-claim")
			v, err := r.ref.MediateShortDelivery(a.ID, orig.ID, referee.ShortDeliveryEvidence{ClaimantStillClaims: true})
			if err != nil {
				return false, err
			}
			r.record(v)
			if err := r.ref.Settle(v, r.workDoneAt(order, pos)); err != nil {
				return false, err
			}
			if v.Terminates {
				return true, nil
			}

		case a.Behavior.FalseExcessClaim && delivered == expected:
			// Unfounded α'_i > α_i claim: the referee compares the
			// claimant's blocks against the data set, finds delivery
			// exactly right, and fines the claimant.
			claimVec, err := r.signedBidVector(i)
			if err != nil {
				return false, err
			}
			origVec, err := r.signedBidVector(r.origIdx)
			if err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(a.ID, r.refAddr, referee.KindBidVector, claimVec, r.m); err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(orig.ID, r.refAddr, referee.KindBidVector, origVec, r.m); err != nil {
				return false, err
			}
			r.evidence(a.ID, referee.KindBidVector)
			v, err := r.ref.JudgeAllocationClaim(a.ID, orig.ID, claimVec, origVec, delivered, r.recomputeCounts)
			if err != nil {
				return false, err
			}
			r.record(v)
			if err := r.ref.Settle(v, r.workDoneAt(order, pos)); err != nil {
				return false, err
			}
			if v.Terminates {
				return true, nil
			}

		case a.Behavior.TamperBidVectorEntry && delivered == expected:
			// The tamperer manufactures a claim to smuggle its altered
			// vector to the referee; the fresh signature convicts it.
			claimVec, err := r.signedBidVector(i)
			if err != nil {
				return false, err
			}
			origVec, err := r.signedBidVector(r.origIdx)
			if err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(a.ID, r.refAddr, referee.KindBidVector, claimVec, r.m); err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(orig.ID, r.refAddr, referee.KindBidVector, origVec, r.m); err != nil {
				return false, err
			}
			r.evidence(a.ID, referee.KindBidVector)
			v, err := r.ref.JudgeAllocationClaim(a.ID, orig.ID, claimVec, origVec, delivered, r.recomputeCounts)
			if err != nil {
				return false, err
			}
			r.record(v)
			if err := r.ref.Settle(v, r.workDoneAt(order, pos)); err != nil {
				return false, err
			}
			if v.Terminates {
				return true, nil
			}

		case delivered > expected:
			// α'_i > α_i: the claim is substantiated against the data
			// set; both parties submit their bid vectors.
			claimVec, err := r.signedBidVector(i)
			if err != nil {
				return false, err
			}
			origVec, err := r.signedBidVector(r.origIdx)
			if err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(a.ID, r.refAddr, referee.KindBidVector, claimVec, r.m); err != nil {
				return false, err
			}
			if _, err := r.xp.sendReliable(orig.ID, r.refAddr, referee.KindBidVector, origVec, r.m); err != nil {
				return false, err
			}
			r.evidence(a.ID, referee.KindBidVector)
			v, err := r.ref.JudgeAllocationClaim(a.ID, orig.ID, claimVec, origVec, delivered, r.recomputeCounts)
			if err != nil {
				return false, err
			}
			r.record(v)
			if err := r.ref.Settle(v, r.workDoneAt(order, pos)); err != nil {
				return false, err
			}
			if v.Terminates {
				return true, nil
			}

		case delivered < expected:
			// α'_i < α_i: the referee mediates, forwarding verified
			// blocks from the originator to the claimant.
			ev := referee.ShortDeliveryEvidence{
				OriginatorRefused: orig.Behavior.RefuseMediation,
				IntegrityFailed:   orig.Behavior.TamperBlocks,
			}
			r.evidence(a.ID, "dls/short-delivery-claim")
			v, err := r.ref.MediateShortDelivery(a.ID, orig.ID, ev)
			if err != nil {
				return false, err
			}
			r.record(v)
			if !v.Clean() {
				if err := r.ref.Settle(v, r.workDoneAt(order, pos)); err != nil {
					return false, err
				}
			}
			if v.Terminates {
				return true, nil
			}
			// Mediation succeeded: the missing blocks arrived verified;
			// delivery is now exactly the assignment.
		}
	}
	return false, nil
}

// ---- Phase: Processing Load ---------------------------------------------------

// phaseProcessing executes the assignments at each agent's execution rate,
// records the tamper-proof meters, and has the referee broadcast
// (φ_1,…,φ_m).
func (r *run) phaseProcessing() error {
	r.xp.beginPhase()
	if err := r.failover(obs.PhaseProcessing); err != nil {
		return err
	}
	// Mid-run crash recovery (Theorem 2.2): a processor that dies at the
	// start of this phase's computation is evicted, the survivors re-solve
	// the allocation over the remaining pool, and the round proceeds — on
	// an installment schedule only the current and later installments are
	// re-planned, so work already metered stays credited through the
	// telescoping per-installment payments.
	if p := r.cfg.Faults; p != nil && len(p.Crashes) > 0 {
		inst := r.inst
		if inst == 0 {
			inst = 1 // whole-load rounds count as installment 1
		}
		evict := make(map[int]string)
		for _, id := range p.CrashAt(inst) {
			for i, proc := range r.procs {
				if proc == id {
					evict[i] = fmt.Sprintf("crashed at the start of Processing Load (installment %d)", inst)
				}
			}
		}
		if len(evict) > 0 {
			if fb, ok := r.net.(*bus.Bus); ok {
				for i := range evict {
					fb.MarkUnresponsive(r.procs[i])
				}
			}
			mark := len(r.outcome.Evictions)
			if err := r.applyEvictions(evict, obs.PhaseProcessing); err != nil {
				return err
			}
			for _, ev := range r.outcome.Evictions[mark:] {
				if _, err := r.ref.Evict(ev.Proc, ev.Phase, ev.Reason); err != nil {
					return err
				}
			}
			var err error
			if r.alloc, err = r.allocate(r.bids); err != nil {
				return err
			}
			if r.assigns, err = workload.Partition(r.alloc, r.nBlocks); err != nil {
				return err
			}
			if r.tracer != nil {
				r.tracer.Event(obs.Event{
					Kind: obs.EvCheckpointResume, Round: r.roundID,
					Detail: fmt.Sprintf("%d survivors re-solved the allocation after crash eviction", r.m),
				})
			}
		}
	}
	exec := make([]float64, r.m)
	phi := make([]float64, r.m)
	work := make([]float64, r.m)
	for i, a := range r.agents {
		exec[i] = a.Exec()
		// φ_i covers the load actually processed this round — the whole
		// load ordinarily, an installment's share on a pipelined
		// sub-round. At loadFrac=1 the multiplication is by the constant
		// 1, so the meters are bit-identical to the unscaled path.
		phi[i] = r.alloc[i] * exec[i] * r.loadFrac
		work[i] = phi[i]
		if err := r.ref.RecordMeter(a.ID, phi[i]); err != nil {
			return err
		}
	}
	r.outcome.Exec = exec
	r.outcome.Phi = phi
	r.outcome.WorkCost = work

	// Realized schedule: communication at the bid-derived fractions,
	// computation at the observed execution rates. Data-plane latency
	// jitter only exists in the event-driven realization — the closed-form
	// equations assume exact α·z transfer times — so a jittery plan routes
	// through the simulator on a bus carrying the same plan.
	var tl dlt.Timeline
	var err error
	if p := r.cfg.Faults; p != nil && p.DataPlaneActive() {
		tl, err = SimulateTimelineFaultsNamed(r.cfg.Network, r.cfg.Z, r.alloc, exec, p, r.procs)
	} else {
		realized := dlt.Instance{Network: r.cfg.Network, Z: r.cfg.Z, W: exec}
		tl, err = dlt.Schedule(realized, r.alloc)
	}
	if err != nil {
		return err
	}
	if r.loadFrac != 1 {
		// An installment sub-round moves loadFrac of the load; every term
		// of the one-port schedule is linear in the load, so the realized
		// sub-round timeline is the unit schedule scaled down.
		for i := range tl.Spans {
			tl.Spans[i].Start *= r.loadFrac
			tl.Spans[i].End *= r.loadFrac
			tl.Spans[i].Frac *= r.loadFrac
		}
		tl.Makespan *= r.loadFrac
	}
	r.outcome.Timeline = tl
	r.outcome.Makespan = tl.Makespan

	// Referee broadcasts the meter vector; every processor must end up
	// holding a verified copy (the payment computation depends on it).
	env, err := r.seal(r.refKey, referee.KindMeters, referee.MetersPayload{Phi: phi})
	if err != nil {
		return err
	}
	missing, err := r.xp.broadcastReliable(r.refAddr, referee.KindMeters, env, r.m, r.procs)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("%w: meters broadcast undelivered to %v", ErrUnreachable, missing)
	}
	return nil
}

// ---- Phase: Computing Payments --------------------------------------------------

// phasePayments has every processor derive the execution values from the
// broadcast meters, compute the payment vector, and submit it signed to
// the referee, which checks unanimity, fines deviants, and forwards Q to
// the payment infrastructure.
func (r *run) phasePayments() error {
	r.xp.beginPhase()
	if err := r.failover(obs.PhasePayments); err != nil {
		return err
	}
	// w̃_j = φ_j / α_j; a processor with no load reveals nothing, so its
	// bid stands in (its compensation and valuation are zero anyway).
	derived := make([]float64, r.m)
	for j := range derived {
		if r.alloc[j] > 0 {
			// The meters cover α_j·loadFrac of the load, so the per-unit
			// rate divides the fraction back out (a division by exactly
			// α_j when loadFrac is 1).
			derived[j] = r.outcome.Phi[j] / (r.alloc[j] * r.loadFrac)
		} else {
			derived[j] = r.bids[j]
		}
	}
	if r.instOf > 1 {
		// Installment sub-round: the R-installment payment rule (balanced
		// allocation, multi-round makespan terms). The zero-alloc engine
		// hot path stays reserved for whole-load rounds, which are the
		// only payment hot path.
		mout, err := core.Mechanism{Network: r.cfg.Network, Z: r.cfg.Z}.
			RunRounds(r.bids, derived, r.instOf, r.policy, core.WithVerification)
		if err != nil {
			return err
		}
		r.payOut = *mout
	} else if err := r.engine.RunInto(r.bids, derived, core.WithVerification, &r.payOut); err != nil {
		return err
	}
	out := &r.payOut
	if err := r.ref.CheckFineSufficient(out.Compensation); err != nil {
		// The configured fine violates F ≥ Σ α_j·w̃_j; surface it rather
		// than continue with a toothless deterrent.
		return fmt.Errorf("protocol: %w", err)
	}

	subs := make(map[string][]sig.Envelope, r.m)
	for i, a := range r.agents {
		q := a.PaymentVector(out.Payment, i)
		env, err := r.seal(a.Key, referee.KindPayment, referee.PaymentPayload{Proc: a.ID, Q: q, Round: r.roundID})
		if err != nil {
			return err
		}
		if _, err := r.xp.sendReliable(a.ID, r.refAddr, referee.KindPayment, env, r.m); err != nil {
			return err
		}
		// A sealed payment vector the referee can verify is signed
		// evidence — the sentinel requires some before any conviction.
		r.evidence(a.ID, referee.KindPayment)
		subs[a.ID] = []sig.Envelope{env}
		if a.Behavior.EquivocatePayments {
			q2 := append([]float64(nil), q...)
			q2[i] += 1
			env2, err := r.seal(a.Key, referee.KindPayment, referee.PaymentPayload{Proc: a.ID, Q: q2, Round: r.roundID})
			if err != nil {
				return err
			}
			if _, err := r.xp.sendReliable(a.ID, r.refAddr, referee.KindPayment, env2, r.m); err != nil {
				return err
			}
			subs[a.ID] = append(subs[a.ID], env2)
		}
	}

	v, q, err := r.ref.JudgePayments(r.bids, derived, subs)
	if err != nil {
		return err
	}
	r.record(v)
	if err := r.ref.Settle(v, nil); err != nil {
		return err
	}

	// Forward Q to the payment infrastructure as an invoice: the user
	// remits payment. Q is per-unit-load; the installment's share scales
	// it, so across a pipelined load the per-installment payments sum to
	// (telescope into) the single-round payment — exactly so at
	// loadFrac=1, where the scaling multiplies by the constant 1.
	paid := make([]float64, len(q))
	inv := payment.Invoice{Payer: UserID}
	for i, p := range r.procs {
		paid[i] = q[i] * r.loadFrac
		inv.Lines = append(inv.Lines, payment.InvoiceLine{
			Account: p,
			Memo:    fmt.Sprintf("payment Q for %s (C=%.6g, B=%.6g)", p, out.Compensation[i], out.Bonus[i]),
			Amount:  paid[i],
		})
	}
	if err := r.ledger.PayInvoice(inv); err != nil {
		return err
	}
	r.outcome.Invoice = inv
	r.outcome.Payments = paid
	if r.tracer != nil {
		// Economic sentinel events: one payment event per processor with
		// the Definition 3.1 decomposition Q = C + B (load-fraction
		// scaled, like the invoice lines), then the invoice total — the
		// stream a Sentinel checks payment shape and conservation on.
		total := 0.0
		for i, p := range r.procs {
			r.tracer.Event(obs.Event{
				Kind: obs.EvPayment, From: p, Round: r.roundID,
				Values: []float64{paid[i], out.Compensation[i] * r.loadFrac, out.Bonus[i] * r.loadFrac},
			})
			total += paid[i]
		}
		r.tracer.Event(obs.Event{
			Kind: obs.EvInvoice, From: UserID, Round: r.roundID,
			Values: []float64{total},
		})
	}
	return nil
}
