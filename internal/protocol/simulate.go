package protocol

import (
	"fmt"

	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/sim"
)

// SimulateTimeline replays the load distribution and processing as
// discrete events on a simulated one-port bus: the originator issues each
// transfer as a reservation on the shared data plane, a delivery event
// fires when the transfer completes, and each processor's computation is
// an event chain of its own. It is an *independent* realization of the
// schedule — the closed-form finishing-time equations never appear — and
// the tests cross-validate it against dlt.Schedule span by span.
//
// alloc is in processor index order; exec are the execution values the
// computations run at.
func SimulateTimeline(net dlt.Network, z float64, alloc dlt.Allocation, exec []float64) (dlt.Timeline, error) {
	return SimulateTimelineFaults(net, z, alloc, exec, nil)
}

// SimulateTimelineFaults is SimulateTimeline over a bus carrying the
// given FaultPlan. Control-plane faults are irrelevant here (the load
// transfers use the data plane only); what matters is the data-plane
// slice of the plan — JitterMax, which stretches each reserved transfer
// by seeded uniform jitter, and per-pair Jitter rules when the
// destinations are named (SimulateTimelineFaultsNamed). A nil plan
// reproduces SimulateTimeline exactly.
func SimulateTimelineFaults(net dlt.Network, z float64, alloc dlt.Allocation, exec []float64, plan *bus.FaultPlan) (dlt.Timeline, error) {
	return SimulateTimelineFaultsNamed(net, z, alloc, exec, plan, nil)
}

// SimulateTimelineFaultsNamed is SimulateTimelineFaults with the
// processors' bus identities supplied, so a plan's per-pair (targeted)
// jitter rules can key each reserved transfer by its destination. procs,
// when non-nil, must be index-aligned with alloc; nil procs reserves
// untargeted transfers (global jitter only), reproducing
// SimulateTimelineFaults exactly.
func SimulateTimelineFaultsNamed(net dlt.Network, z float64, alloc dlt.Allocation, exec []float64, plan *bus.FaultPlan, procs []string) (dlt.Timeline, error) {
	m := len(alloc)
	if len(exec) != m {
		return dlt.Timeline{}, fmt.Errorf("protocol: %d exec values for %d fractions", len(exec), m)
	}
	if procs != nil && len(procs) != m {
		return dlt.Timeline{}, fmt.Errorf("protocol: %d processor names for %d fractions", len(procs), m)
	}
	if net != dlt.NCPFE && net != dlt.NCPNFE && net != dlt.CP {
		return dlt.Timeline{}, fmt.Errorf("protocol: unknown network %v", net)
	}
	plane, err := bus.NewFaulty(z, plan)
	if err != nil {
		return dlt.Timeline{}, err
	}
	engine := sim.New()
	tl := dlt.Timeline{Instance: dlt.Instance{Network: net, Z: z, W: append([]float64(nil), exec...)}}

	compute := func(proc int, start float64) error {
		return engine.At(start, func() {
			end := engine.Now() + alloc[proc]*exec[proc]
			tl.Spans = append(tl.Spans, dlt.Span{
				Proc: proc, Kind: dlt.Comp, Start: engine.Now(), End: end, Frac: alloc[proc],
			})
		})
	}

	orig := net.Originator(m)
	lastTransferEnd := 0.0
	for i := 0; i < m; i++ {
		if i == orig {
			continue // the originator's fraction never crosses the bus
		}
		proc := i
		to := ""
		if procs != nil {
			to = procs[proc]
		}
		start, end, err := plane.ReserveTransferTo(0, alloc[proc], to)
		if err != nil {
			return dlt.Timeline{}, err
		}
		tl.Spans = append(tl.Spans, dlt.Span{
			Proc: proc, Kind: dlt.Comm, Start: start, End: end, Frac: alloc[proc], BusOwner: true,
		})
		if end > lastTransferEnd {
			lastTransferEnd = end
		}
		// Delivery event: computation starts the instant the fraction
		// arrives.
		if err := compute(proc, end); err != nil {
			return dlt.Timeline{}, err
		}
	}
	switch net {
	case dlt.NCPFE:
		// Front end: the originator computes from time zero.
		if err := compute(orig, 0); err != nil {
			return dlt.Timeline{}, err
		}
	case dlt.NCPNFE:
		// No front end: the originator computes after its last transfer.
		if err := compute(orig, lastTransferEnd); err != nil {
			return dlt.Timeline{}, err
		}
	case dlt.CP:
		// The control processor never computes; all workers were served
		// above (orig = -1, so nobody was skipped).
	}
	if err := engine.Run(4 * m); err != nil {
		return dlt.Timeline{}, err
	}
	for _, s := range tl.Spans {
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}
