package protocol

import (
	"fmt"
	"strings"
	"testing"

	"dlsbl/internal/dlt"
)

// TestRunSubInstallments drives the installment sub-round API directly:
// a reserved session round served as two equal installments completes
// both, stamps the "<salt>:rN.iK" IDs, and scales each installment's
// money flow by its fraction; accessor coverage (Network, Z) rides
// along.
func TestRunSubInstallments(t *testing.T) {
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{3, 2, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Network() != dlt.NCPFE || s.Z() != 0.2 {
		t.Fatalf("accessors: network %v, z %v", s.Network(), s.Z())
	}
	job := JobConfig{Seed: 7, NBlocks: 64}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	n := s.NextRound()
	fracs, err := dlt.RoundFractions(2, dlt.EqualRounds)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for k, frac := range fracs {
		out, err := s.RunSub(job, n, k+1, 2, frac, dlt.EqualRounds)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed {
			t.Fatalf("installment %d terminated in %s", k+1, out.TerminatedIn)
		}
		if want := fmt.Sprintf(":r%d.i%d", n, k+1); !strings.HasSuffix(out.RoundID, want) {
			t.Errorf("installment %d round ID %q, want suffix %q", k+1, out.RoundID, want)
		}
		if out.Installment != k+1 || out.LoadFraction != frac {
			t.Errorf("installment %d stamped (%d, %v), want (%d, %v)",
				k+1, out.Installment, out.LoadFraction, k+1, frac)
		}
		for _, q := range out.Payments {
			total += q
		}
	}
	if total <= 0 {
		t.Error("installments paid nothing")
	}

	// Guard rails: unreserved rounds, out-of-range installments and
	// fractions are rejected.
	if _, err := s.RunSub(job, n+99, 1, 2, 0.5, dlt.EqualRounds); err == nil {
		t.Error("unreserved round accepted")
	}
	if _, err := s.RunSub(job, n, 3, 2, 0.5, dlt.EqualRounds); err == nil {
		t.Error("installment 3 of 2 accepted")
	}
	if _, err := s.RunSub(job, n, 1, 2, 0, dlt.EqualRounds); err == nil {
		t.Error("zero fraction accepted")
	}
}
