package protocol

import (
	"os"
	"strconv"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/referee"
)

// faultFreeReference runs the honest configuration on a reliable bus and
// returns its outcome, the baseline every faulty run is compared against.
func faultFreeReference(t testing.TB, net dlt.Network) *Outcome {
	t.Helper()
	out, err := Run(honestConfig(net))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("fault-free reference run did not complete: %+v", out.Verdicts)
	}
	return out
}

// assertSamePayments requires bit-identical payments: retries and
// duplicate suppression must be invisible to the economics, because
// payments derive only from bids and execution meters, neither of which
// a (non-evicting) fault plan can alter.
func assertSamePayments(t *testing.T, got, want *Outcome) {
	t.Helper()
	if len(got.Payments) != len(want.Payments) {
		t.Fatalf("payment vector length %d, want %d", len(got.Payments), len(want.Payments))
	}
	for i := range want.Payments {
		if got.Payments[i] != want.Payments[i] {
			t.Errorf("Q[%d]=%v under faults, %v fault-free", i, got.Payments[i], want.Payments[i])
		}
	}
	if got.UserCost != want.UserCost {
		t.Errorf("user cost %v under faults, %v fault-free", got.UserCost, want.UserCost)
	}
}

// TestSingleFaultClassesComplete checks that the protocol completes under
// each fault class in isolation, with payments exactly equal to the
// fault-free run and no evictions: the retry/dedup machinery absorbs the
// faults entirely.
func TestSingleFaultClassesComplete(t *testing.T) {
	cases := []struct {
		name string
		plan bus.FaultPlan
		// exercised reports whether the fault class actually fired, from
		// the run's counters — a vacuous pass is a test bug.
		exercised func(o *Outcome) bool
	}{
		{"drop-only", bus.FaultPlan{Seed: 11, Drop: 0.15},
			func(o *Outcome) bool { return o.BusStats.Dropped > 0 && o.Fault.Retransmits > 0 }},
		{"dup-only", bus.FaultPlan{Seed: 12, Duplicate: 0.5},
			func(o *Outcome) bool { return o.BusStats.Duplicated > 0 && o.Fault.DupDiscards > 0 }},
		{"delay-only", bus.FaultPlan{Seed: 13, Delay: 0.5},
			func(o *Outcome) bool { return o.BusStats.Delayed > 0 }},
		{"reorder-only", bus.FaultPlan{Seed: 14, Reorder: 0.9},
			func(o *Outcome) bool { return o.BusStats.Reordered > 0 }},
		{"corrupt-only", bus.FaultPlan{Seed: 15, Corrupt: 0.2},
			func(o *Outcome) bool { return o.BusStats.Corrupted > 0 && o.Fault.CorruptDiscards > 0 }},
	}
	for _, net := range []dlt.Network{dlt.NCPFE, dlt.NCPNFE} {
		want := faultFreeReference(t, net)
		for _, tc := range cases {
			t.Run(tc.name+"/"+net.String(), func(t *testing.T) {
				cfg := honestConfig(net)
				plan := tc.plan
				cfg.Faults = &plan
				out, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !out.Completed {
					t.Fatalf("run under %s terminated in %s", tc.name, out.TerminatedIn)
				}
				if len(out.Evictions) != 0 {
					t.Fatalf("unexpected evictions: %+v", out.Evictions)
				}
				if !tc.exercised(out) {
					t.Fatalf("fault class never fired: bus=%+v fault=%+v", out.BusStats, out.Fault)
				}
				assertSamePayments(t, out, want)
			})
		}
	}
}

// TestAcceptanceDropAndDuplicate is the issue's acceptance scenario: a
// seeded FaultPlan with 10%% drop and 5%% duplication must complete with
// the same payment vector as the fault-free run and zero evictions.
func TestAcceptanceDropAndDuplicate(t *testing.T) {
	want := faultFreeReference(t, dlt.NCPFE)
	cfg := honestConfig(dlt.NCPFE)
	cfg.Faults = &bus.FaultPlan{Seed: 42, Drop: 0.10, Duplicate: 0.05}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("acceptance run terminated in %s", out.TerminatedIn)
	}
	if out.Fault.Evictions != 0 || len(out.Evictions) != 0 {
		t.Fatalf("acceptance run evicted: %+v", out.Evictions)
	}
	assertSamePayments(t, out, want)
}

// TestMixedFaultSoak runs the protocol under a combined plan across many
// seeds. DLSBL_SOAK_ROUNDS overrides the round count (the `faults-soak`
// make target sets it high).
func TestMixedFaultSoak(t *testing.T) {
	rounds := 25
	if s := os.Getenv("DLSBL_SOAK_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad DLSBL_SOAK_ROUNDS=%q: %v", s, err)
		}
		rounds = n
	}
	want := faultFreeReference(t, dlt.NCPNFE)
	for seed := int64(1); seed <= int64(rounds); seed++ {
		cfg := honestConfig(dlt.NCPNFE)
		cfg.Faults = &bus.FaultPlan{
			Seed: seed, Drop: 0.08, Duplicate: 0.08, Delay: 0.08, Corrupt: 0.08, Reorder: 0.15,
		}
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Completed {
			t.Fatalf("seed %d: terminated in %s", seed, out.TerminatedIn)
		}
		if len(out.Evictions) != 0 {
			t.Fatalf("seed %d: evicted %+v", seed, out.Evictions)
		}
		assertSamePayments(t, out, want)
	}
}

// TestFaultRunsDeterministic: equal configs (including the fault seed)
// must reproduce the identical outcome, counters included.
func TestFaultRunsDeterministic(t *testing.T) {
	mk := func() *Outcome {
		cfg := honestConfig(dlt.NCPFE)
		cfg.Faults = &bus.FaultPlan{Seed: 3, Drop: 0.1, Duplicate: 0.1, Delay: 0.1, Corrupt: 0.1, Reorder: 0.2}
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	if a.BusStats != b.BusStats {
		t.Errorf("bus stats diverged:\n%+v\n%+v", a.BusStats, b.BusStats)
	}
	if a.Fault != b.Fault {
		t.Errorf("fault stats diverged:\n%+v\n%+v", a.Fault, b.Fault)
	}
	for i := range a.Payments {
		if a.Payments[i] != b.Payments[i] {
			t.Errorf("Q[%d] diverged: %v vs %v", i, a.Payments[i], b.Payments[i])
		}
	}
}

// TestEvictionRegimeDeterministic drives the protocol into the regime
// where the retry budget actually runs out — many processors, heavy
// loss, a tight attempt budget — and requires equal configs to reproduce
// bit-identical outcomes, evictions (victims, phases and reason strings)
// included. This is the regime where retransmission send order decides
// which seeded fault draws hit which deliveries: iterating a Go map
// there once made the same seed evict different processors across runs.
func TestEvictionRegimeDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		mk := func() (*Outcome, error) {
			return Run(Config{
				Network: dlt.NCPFE,
				Z:       0.1,
				TrueW:   []float64{1.0, 1.3, 1.6, 1.9, 2.2, 2.5},
				Seed:    7,
				Faults:  &bus.FaultPlan{Seed: seed, Drop: 0.35, Duplicate: 0.15, JitterMax: 0.3},
				Retry:   RetryPolicy{MaxAttempts: 3},
			})
		}
		a, errA := mk()
		b, errB := mk()
		if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
			t.Fatalf("seed %d: errors diverged: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			continue // deterministic abort — both runs agree
		}
		if a.BusStats != b.BusStats {
			t.Errorf("seed %d: bus stats diverged:\n%+v\n%+v", seed, a.BusStats, b.BusStats)
		}
		if a.Fault != b.Fault {
			t.Errorf("seed %d: fault stats diverged:\n%+v\n%+v", seed, a.Fault, b.Fault)
		}
		if a.Makespan != b.Makespan {
			t.Errorf("seed %d: makespan diverged: %v vs %v", seed, a.Makespan, b.Makespan)
		}
		if len(a.Evictions) != len(b.Evictions) {
			t.Fatalf("seed %d: eviction counts diverged:\n%+v\n%+v", seed, a.Evictions, b.Evictions)
		}
		for i := range a.Evictions {
			if a.Evictions[i] != b.Evictions[i] {
				t.Errorf("seed %d: eviction %d diverged:\n%+v\n%+v", seed, i, a.Evictions[i], b.Evictions[i])
			}
		}
		for i := range a.Payments {
			if a.Payments[i] != b.Payments[i] {
				t.Errorf("seed %d: Q[%d] diverged: %v vs %v", seed, i, a.Payments[i], b.Payments[i])
			}
		}
	}
}

// TestUnresponsiveProcessorEvicted: a blackholed processor must be
// evicted in the Bidding phase, the survivors must complete the run on
// the re-solved allocation (Theorem 2.2: any subset is still optimal),
// and the referee's transcript must carry an "eviction" entry with no
// fine attached.
func TestUnresponsiveProcessorEvicted(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE) // TrueW = {1.0, 1.5, 2.0, 2.5}
	cfg.Faults = &bus.FaultPlan{Seed: 1, Unresponsive: []string{"P3"}}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivors did not complete: terminated in %s", out.TerminatedIn)
	}
	if len(out.Evictions) != 1 || out.Evictions[0].Proc != "P3" || out.Evictions[0].Phase != "bidding" {
		t.Fatalf("evictions = %+v, want exactly P3 in bidding", out.Evictions)
	}
	if !out.Evicted[2] || out.Evicted[0] || out.Evicted[1] || out.Evicted[3] {
		t.Errorf("Evicted = %v, want only index 2", out.Evicted)
	}
	if !out.Participated[2] {
		t.Errorf("evicted processor should still count as a participant")
	}
	if out.Fault.Evictions != 1 {
		t.Errorf("Fault.Evictions = %d, want 1", out.Fault.Evictions)
	}
	// No fine, no payment, zero utility for the evicted processor.
	if out.Fines[2] != 0 || out.Payments[2] != 0 || out.Utilities[2] != 0 {
		t.Errorf("evicted P3 has fines=%v payments=%v utility=%v, want all zero",
			out.Fines[2], out.Payments[2], out.Utilities[2])
	}
	// The transcript records the eviction as its own action kind, with
	// nobody declared guilty, and the chain still verifies.
	var evEntries []referee.AuditEntry
	for _, e := range out.Transcript {
		if e.Action == "eviction" {
			evEntries = append(evEntries, e)
		}
	}
	if len(evEntries) != 1 {
		t.Fatalf("transcript has %d eviction entries, want 1:\n%+v", len(evEntries), out.Transcript)
	}
	if len(evEntries[0].Guilty) != 0 {
		t.Errorf("eviction entry declares guilt: %+v", evEntries[0])
	}
	if err := referee.VerifyEntries(out.Transcript); err != nil {
		t.Errorf("transcript broken after eviction: %v", err)
	}

	// The survivors' payments equal a fresh fault-free run over the
	// reduced true-value vector {1.0, 1.5, 2.5}.
	refCfg := honestConfig(dlt.NCPFE)
	refCfg.TrueW = []float64{1.0, 1.5, 2.5}
	want, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range []int{0, 1, 3} {
		if relErr(out.Payments[i], want.Payments[k]) > tol {
			t.Errorf("survivor P%d payment %v, reduced-run says %v", i+1, out.Payments[i], want.Payments[k])
		}
	}
}

// TestUnresponsiveOriginatorFails: the load-originating processor cannot
// be evicted — without it nobody can source the load, so the run must
// surface an error instead of limping on.
func TestUnresponsiveOriginatorFails(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE) // NCPFE originator is P1
	cfg.Faults = &bus.FaultPlan{Seed: 1, Unresponsive: []string{"P1"}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("run with a dead originator succeeded")
	}
}

// TestTooFewSurvivorsFails: evicting all but one processor must error —
// DLS-BL-NCP needs at least two parties.
func TestTooFewSurvivorsFails(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	cfg.Faults = &bus.FaultPlan{Seed: 1, Unresponsive: []string{"P2", "P3", "P4"}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("run with a single survivor succeeded")
	}
}

// TestJitterInflatesMakespan: data-plane latency jitter must stretch the
// realized makespan beyond the fault-free optimum while leaving payments
// untouched (payments derive from meters, not from the wall clock).
func TestJitterInflatesMakespan(t *testing.T) {
	want := faultFreeReference(t, dlt.NCPFE)
	cfg := honestConfig(dlt.NCPFE)
	cfg.Faults = &bus.FaultPlan{Seed: 2, JitterMax: 0.3}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("jittered run terminated in %s", out.TerminatedIn)
	}
	if !(out.Makespan > want.Makespan) {
		t.Errorf("jittered makespan %v not above fault-free %v", out.Makespan, want.Makespan)
	}
	assertSamePayments(t, out, want)
}

// TestEquivocatorStillCaughtUnderFaults: the deviation machinery must
// survive the unreliable bus — an equivocator is convicted and fined even
// when its contradictory bids cross a lossy medium.
func TestEquivocatorStillCaughtUnderFaults(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	cfg = withBehavior(cfg, 1, agent.Equivocator)
	cfg.Faults = &bus.FaultPlan{Seed: 6, Drop: 0.1, Duplicate: 0.1}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("equivocation run completed; expected termination with a fine")
	}
	if out.Fines[1] == 0 {
		t.Errorf("equivocator not fined: %+v", out.Fines)
	}
}

// BenchmarkProtocolRun guards the zero-overhead claim at the protocol
// level: a nil FaultPlan must not slow Run relative to the seed
// implementation's single-send/single-drain pattern.
func BenchmarkProtocolRun(b *testing.B) {
	bench := func(b *testing.B, plan *bus.FaultPlan) {
		cfg := honestConfig(dlt.NCPFE)
		cfg.Faults = plan
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Completed {
				b.Fatal("run did not complete")
			}
		}
	}
	b.Run("nil-plan", func(b *testing.B) { bench(b, nil) })
	b.Run("mixed-faults", func(b *testing.B) {
		bench(b, &bus.FaultPlan{Seed: 9, Drop: 0.1, Duplicate: 0.05, Delay: 0.1, Corrupt: 0.05})
	})
}
