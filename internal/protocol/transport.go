package protocol

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/bus"
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// RetryPolicy bounds the reliable-delivery machinery layered over the
// (possibly faulty) bus: every logical message may be transmitted at most
// MaxAttempts times, with capped exponential backoff between attempts,
// and each protocol phase has a virtual-time deadline on the total
// backoff it may accumulate. Exhausting either budget for a processor's
// traffic marks that processor unreachable; the Bidding phase converts
// unreachable processors into evictions (survivors re-solve the
// allocation — Theorem 2.2 guarantees any subset is still optimal), while
// later phases surface unreachability as an error, since by then the
// remaining parties were all proven live.
type RetryPolicy struct {
	// MaxAttempts is the per-logical-message transmission budget
	// (first send + retransmissions). Zero selects 8.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseBackoff is the virtual-time wait before the first retry; each
	// further retry doubles it. Zero selects 1.
	BaseBackoff float64 `json:"base_backoff,omitempty"`
	// MaxBackoff caps the doubling. Zero selects 32.
	MaxBackoff float64 `json:"max_backoff,omitempty"`
	// PhaseDeadline bounds the total backoff virtual time one phase may
	// spend before unreachability is declared. Zero selects +Inf (the
	// attempt budget alone governs).
	PhaseDeadline float64 `json:"phase_deadline,omitempty"`
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 1
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 32
	}
	if p.PhaseDeadline == 0 {
		p.PhaseDeadline = math.Inf(1)
	}
	return p
}

func (p RetryPolicy) validate() error {
	if p.MaxAttempts < 0 || p.BaseBackoff < 0 || p.MaxBackoff < 0 || p.PhaseDeadline < 0 {
		return errors.New("protocol: negative retry policy parameter")
	}
	if math.IsNaN(p.BaseBackoff) || math.IsNaN(p.MaxBackoff) || math.IsNaN(p.PhaseDeadline) {
		return errors.New("protocol: NaN retry policy parameter")
	}
	return nil
}

// backoff returns the capped exponential wait before retry `attempt`
// (attempt 1 is the first retransmission).
func (p RetryPolicy) backoff(attempt int) float64 {
	d := p.BaseBackoff * math.Pow(2, float64(attempt-1))
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// FaultStats counts what the reliable-transport layer did during one
// protocol run. All zeros on a reliable bus.
type FaultStats struct {
	// Retransmits counts transmissions beyond each logical message's
	// first attempt.
	Retransmits int
	// DupDiscards counts deliveries dropped by (sender, nonce)
	// deduplication — fault-injected duplicates and already-received
	// retransmissions.
	DupDiscards int
	// CorruptDiscards counts deliveries whose signature failed
	// verification on arrival.
	CorruptDiscards int
	// Timeouts counts retry rounds that ended with at least one expected
	// delivery still missing.
	Timeouts int
	// BackoffTime is the total virtual time spent waiting between
	// attempts, across all phases.
	BackoffTime float64
	// Evictions counts processors removed from the run for
	// unreachability.
	Evictions int
}

// ErrUnreachable reports a peer whose traffic could not be delivered
// within the retry budget.
var ErrUnreachable = errors.New("protocol: peer unreachable within retry budget")

// nonceKey identifies a logical message for receiver-side deduplication.
type nonceKey struct {
	from  string
	nonce uint64
}

// rxBuf is one endpoint's receive state: verified, deduplicated messages
// not yet consumed by the phase logic.
type rxBuf struct {
	pending []bus.Message
	seen    map[nonceKey]bool
}

// transport layers idempotent, retrying delivery over the medium. It
// owns every endpoint's inbox: phases consume verified messages through
// takeNonce instead of draining the medium directly, so duplicated,
// delayed and retransmitted copies collapse into exactly-once delivery
// to the protocol logic. The medium is any bus.Medium — the simulated
// bus or a real socket (internal/netbus); the retry/dedup/eviction
// machinery here is identical over both.
type transport struct {
	net    bus.Medium
	reg    *sig.Registry
	policy RetryPolicy
	rx     map[string]*rxBuf
	stats  FaultStats
	// phaseBackoff is the backoff virtual time accumulated in the current
	// phase, checked against policy.PhaseDeadline.
	phaseBackoff float64
	// tracer receives transport-level events (dedup hits, corrupt
	// discards, retransmits, timeouts); nil when tracing is off.
	tracer obs.Tracer
	// ver, when non-nil, routes arrival verification through the run's
	// memoized batch verifier (see Config.Memo); nil keeps plain
	// per-envelope verification.
	ver *sig.BatchVerifier
}

// verify checks one arriving envelope, through the batch verifier when
// the run has one.
func (t *transport) verify(e *sig.Envelope) error {
	if t.ver != nil {
		return t.ver.Verify(e)
	}
	return e.Verify(t.reg)
}

// event emits one transport event when tracing is on.
func (t *transport) event(e obs.Event) {
	if t.tracer != nil {
		t.tracer.Event(e)
	}
}

func newTransport(net bus.Medium, reg *sig.Registry, policy RetryPolicy) (*transport, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	return &transport{
		net:    net,
		reg:    reg,
		policy: policy.withDefaults(),
		rx:     make(map[string]*rxBuf),
	}, nil
}

func (t *transport) buf(id string) *rxBuf {
	b := t.rx[id]
	if b == nil {
		b = &rxBuf{seen: make(map[nonceKey]bool)}
		t.rx[id] = b
	}
	return b
}

// beginPhase resets the per-phase deadline clock.
func (t *transport) beginPhase() { t.phaseBackoff = 0 }

// sleep charges one backoff interval against the phase deadline and
// reports whether the deadline has passed.
func (t *transport) sleep(attempt int) (deadlineExceeded bool) {
	d := t.policy.backoff(attempt)
	t.phaseBackoff += d
	t.stats.BackoffTime += d
	return t.phaseBackoff > t.policy.PhaseDeadline
}

// pull drains the endpoint's bus inbox into its receive buffer, dropping
// copies that fail signature verification (per the paper: unverifiable
// messages are discarded) and copies already seen (idempotent handling by
// (sender, nonce)).
func (t *transport) pull(id string) error {
	msgs, err := t.net.Drain(id)
	if err != nil {
		return err
	}
	b := t.buf(id)
	for i := range msgs {
		m := msgs[i]
		if t.verify(&msgs[i].Env) != nil {
			t.stats.CorruptDiscards++
			t.event(obs.Event{Kind: obs.EvCorruptDiscard, From: m.From, To: id, Msg: m.Kind})
			continue
		}
		k := nonceKey{from: m.From, nonce: m.Nonce}
		if b.seen[k] {
			t.stats.DupDiscards++
			t.event(obs.Event{Kind: obs.EvDedupHit, From: m.From, To: id, Msg: m.Kind})
			continue
		}
		b.seen[k] = true
		b.pending = append(b.pending, m)
	}
	return nil
}

// takeNonce removes and returns the pending message with the given
// logical identity, if present.
func (t *transport) takeNonce(id, from string, nonce uint64) (bus.Message, bool) {
	b := t.buf(id)
	for i, m := range b.pending {
		if m.From == from && m.Nonce == nonce {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return m, true
		}
	}
	return bus.Message{}, false
}

// sendReliable unicasts one logical message until the receiver holds a
// verified copy, retrying with capped exponential backoff. On a reliable
// bus this is a single transmission and a single drain — the exact
// traffic pattern of the original protocol. The delivered message is
// consumed from the receiver's buffer and returned.
func (t *transport) sendReliable(from, to, kind string, env sig.Envelope, size int) (bus.Message, error) {
	nonce := t.net.NextNonce()
	for attempt := 1; ; attempt++ {
		if _, err := t.net.SendTagged(from, to, kind, env, size, nonce); err != nil {
			return bus.Message{}, err
		}
		if attempt > 1 {
			t.stats.Retransmits++
			t.event(obs.Event{Kind: obs.EvRetransmit, From: from, To: to, Msg: kind})
		}
		if err := t.pull(to); err != nil {
			return bus.Message{}, err
		}
		if m, ok := t.takeNonce(to, from, nonce); ok {
			return m, nil
		}
		t.stats.Timeouts++
		t.event(obs.Event{Kind: obs.EvTimeout, From: from, To: to, Msg: kind})
		if attempt >= t.policy.MaxAttempts || t.sleep(attempt) {
			return bus.Message{}, fmt.Errorf("%w: %s → %s (%s) after %d attempts",
				ErrUnreachable, from, to, kind, attempt)
		}
	}
}

// broadcastReliable broadcasts one logical message until every receiver
// holds a verified copy; missed receivers are retried by unicast under
// the same nonce. It returns the receivers still missing after the
// budget (empty on success); the delivered copies are consumed.
func (t *transport) broadcastReliable(from, kind string, env sig.Envelope, size int, receivers []string) ([]string, error) {
	nonce, err := t.net.BroadcastTagged(from, kind, env, size, 0)
	if err != nil {
		return nil, err
	}
	missing := make(map[string]bool, len(receivers))
	for _, r := range receivers {
		missing[r] = true
	}
	for attempt := 1; ; attempt++ {
		for _, r := range receivers {
			if !missing[r] {
				continue
			}
			if err := t.pull(r); err != nil {
				return nil, err
			}
			if _, ok := t.takeNonce(r, from, nonce); ok {
				delete(missing, r)
			}
		}
		if len(missing) == 0 {
			return nil, nil
		}
		t.stats.Timeouts++
		t.event(obs.Event{Kind: obs.EvTimeout, From: from, Msg: kind,
			Detail: fmt.Sprintf("%d receivers missing", len(missing))})
		if attempt >= t.policy.MaxAttempts || t.sleep(attempt) {
			var left []string
			for _, r := range receivers {
				if missing[r] {
					left = append(left, r)
				}
			}
			return left, nil
		}
		for _, r := range receivers {
			if missing[r] {
				if _, err := t.net.SendTagged(from, r, kind, env, size, nonce); err != nil {
					return nil, err
				}
				t.stats.Retransmits++
				t.event(obs.Event{Kind: obs.EvRetransmit, From: from, To: r, Msg: kind})
			}
		}
	}
}
