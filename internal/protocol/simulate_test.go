package protocol

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dlsbl/internal/dlt"
)

// TestSimulateMatchesClosedFormSchedule: the event-driven realization and
// the analytic schedule agree on every processor's finish time and on the
// makespan, across all three network classes.
func TestSimulateMatchesClosedFormSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, net := range dlt.Networks {
		for trial := 0; trial < 60; trial++ {
			m := 1 + rng.Intn(12)
			if net != dlt.CP && m < 2 {
				m = 2
			}
			in := dlt.DefaultRandomInstance(rng, net, m)
			alloc, err := dlt.Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			// Random execution slack on top of the bids.
			exec := make([]float64, m)
			for i := range exec {
				exec[i] = in.W[i] * (1 + rng.Float64())
			}
			analytic, err := dlt.Schedule(dlt.Instance{Network: net, Z: in.Z, W: exec}, alloc)
			if err != nil {
				t.Fatal(err)
			}
			simulated, err := SimulateTimeline(net, in.Z, alloc, exec)
			if err != nil {
				t.Fatal(err)
			}
			af := analytic.FinishTimes()
			sf := simulated.FinishTimes()
			for i := range af {
				if relErr(af[i], sf[i]) > 1e-9 {
					t.Errorf("%v m=%d: T[%d] analytic %v, simulated %v", net, m, i, af[i], sf[i])
				}
			}
			if relErr(analytic.Makespan, simulated.Makespan) > 1e-9 {
				t.Errorf("%v m=%d: makespan analytic %v, simulated %v", net, m, analytic.Makespan, simulated.Makespan)
			}
			assertBusSerial(t, simulated)
		}
	}
}

func assertBusSerial(t *testing.T, tl dlt.Timeline) {
	t.Helper()
	spans := tl.BusSpans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End-1e-12 {
			t.Errorf("simulated bus spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
}

// TestSimulateMatchesProtocolOutcome: the timeline the full protocol
// reports equals the event-driven one for the same inputs.
func TestSimulateMatchesProtocolOutcome(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := SimulateTimeline(dlt.NCPFE, cfg.Z, out.Alloc, out.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(out.Makespan, simulated.Makespan) > 1e-9 {
		t.Errorf("protocol makespan %v, simulated %v", out.Makespan, simulated.Makespan)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateTimeline(dlt.NCPFE, 0.2, dlt.Allocation{0.5, 0.5}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SimulateTimeline(dlt.Network(9), 0.2, dlt.Allocation{1}, []float64{1}); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := SimulateTimeline(dlt.NCPFE, -1, dlt.Allocation{0.5, 0.5}, []float64{1, 1}); err == nil {
		t.Error("negative z accepted")
	}
}

// TestSimulateZeroFraction: processors with zero load finish at their
// (empty) delivery instant and contribute nothing to the makespan.
func TestSimulateZeroFraction(t *testing.T) {
	tl, err := SimulateTimeline(dlt.NCPFE, 0.5, dlt.Allocation{0.7, 0.3, 0}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(0.7, 0.5*0.3+0.3)
	if relErr(tl.Makespan, want) > 1e-9 {
		t.Errorf("makespan %v, want %v", tl.Makespan, want)
	}
}
