package protocol

import (
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

func cpConfig() Config {
	return Config{
		Network: dlt.CP,
		Z:       0.2,
		TrueW:   []float64{1.0, 1.5, 2.0, 2.5},
		Seed:    7,
	}
}

func TestRunCPHonest(t *testing.T) {
	out, err := RunCP(cpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("centralized run not completed")
	}
	mech := core.Mechanism{Network: dlt.CP, Z: 0.2}
	want, err := mech.Run(cpConfig().TrueW, core.TruthfulExec(cpConfig().TrueW))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Payment {
		if relErr(out.Payments[i], want.Payment[i]) > tol {
			t.Errorf("Q[%d]=%v, central mechanism says %v", i, out.Payments[i], want.Payment[i])
		}
		if relErr(out.Utilities[i], want.Utility[i]) > tol {
			t.Errorf("U[%d]=%v, want %v", i, out.Utilities[i], want.Utility[i])
		}
	}
	if relErr(out.UserCost, want.UserCost) > tol {
		t.Errorf("user cost %v, want %v", out.UserCost, want.UserCost)
	}
	for i, f := range out.Fines {
		if f != 0 {
			t.Errorf("fine %v on P%d in a refereeless protocol", f, i+1)
		}
	}
}

// TestRunCPTrafficLinear: the centralized protocol exchanges Θ(m)
// control units — m bids in, m payment notices out — versus the
// decentralized Θ(m²).
func TestRunCPTrafficLinear(t *testing.T) {
	for _, m := range []int{4, 16, 64} {
		w := make([]float64, m)
		for i := range w {
			w[i] = 1 + float64(i)*0.1
		}
		out, err := RunCP(Config{Network: dlt.CP, Z: 0.1, TrueW: w, Seed: 1, NBlocks: 8 * m})
		if err != nil {
			t.Fatal(err)
		}
		if out.BusStats.Units != 2*m {
			t.Errorf("m=%d: centralized units %d, want 2m=%d", m, out.BusStats.Units, 2*m)
		}
		ncp, err := Run(Config{Network: dlt.NCPFE, Z: 0.1, TrueW: w, Seed: 1, NBlocks: 8 * m})
		if err != nil {
			t.Fatal(err)
		}
		if ncp.BusStats.Units <= out.BusStats.Units {
			t.Errorf("m=%d: decentralization did not cost traffic (%d vs %d)",
				m, ncp.BusStats.Units, out.BusStats.Units)
		}
	}
}

// TestRunCPMisreportingAbsorbed: lying still doesn't pay under the
// trusted center — same mechanism, same incentives.
func TestRunCPMisreportingAbsorbed(t *testing.T) {
	base, err := RunCP(cpConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []agent.Behavior{agent.OverBid, agent.UnderBid, agent.SlowExecution} {
		cfg := cpConfig()
		cfg.Behaviors = make([]agent.Behavior, 4)
		cfg.Behaviors[2] = b
		out, err := RunCP(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if out.Utilities[2] > base.Utilities[2]+tol {
			t.Errorf("%s: liar utility %v beats honest %v", b.Name, out.Utilities[2], base.Utilities[2])
		}
	}
}

func TestRunCPValidation(t *testing.T) {
	bad := cpConfig()
	bad.Network = dlt.NCPFE
	if _, err := RunCP(bad); err == nil {
		t.Error("non-CP network accepted")
	}
	short := cpConfig()
	short.TrueW = []float64{1}
	if _, err := RunCP(short); err == nil {
		t.Error("single processor accepted")
	}
	abstain := cpConfig()
	abstain.Behaviors = []agent.Behavior{{Abstain: true}}
	if _, err := RunCP(abstain); err == nil {
		t.Error("abstention accepted by the centralized runner")
	}
	negZ := cpConfig()
	negZ.Z = -1
	if _, err := RunCP(negZ); err == nil {
		t.Error("negative z accepted")
	}
	zeroW := cpConfig()
	zeroW.TrueW = []float64{1, 0}
	if _, err := RunCP(zeroW); err == nil {
		t.Error("zero speed accepted")
	}
}
