package protocol

import (
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
)

// TestEquivocationSurvivesDedup pins down an interaction between the
// reliable transport and the paper's equivocation defense: (sender,
// nonce) deduplication must not launder a re-signed, contradictory bid
// into silence. When a processor transmits a second, different bid under
// the nonce of its first one — disguising the cheat as a retransmission —
// the transport keeps the first verified copy (so the protocol's view is
// unchanged) and the discarded copy's signature remains independently
// verifiable equivocation evidence that convicts the signer.
func TestEquivocationSurvivesDedup(t *testing.T) {
	net, err := bus.New(0.1)
	if err != nil {
		t.Fatal(err)
	}
	reg := sig.NewRegistry()
	keys := map[string]*sig.KeyPair{}
	for i, id := range []string{"P1", "P2", referee.Account} {
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(id, k.Public); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(id); err != nil {
			t.Fatal(err)
		}
		keys[id] = k
	}
	xp, err := newTransport(net, reg, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}

	// P1 signs two different bids and sends both under ONE nonce: the
	// honest-looking original, then the contradiction dressed up as a
	// retransmission.
	first, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 3.5})
	if err != nil {
		t.Fatal(err)
	}
	nonce := net.NextNonce()
	for _, env := range []sig.Envelope{first, second} {
		if _, err := net.SendTagged("P1", referee.Account, referee.KindBid, env, 1, nonce); err != nil {
			t.Fatal(err)
		}
	}

	// The transport delivers exactly one copy — the first verified one.
	if err := xp.pull(referee.Account); err != nil {
		t.Fatal(err)
	}
	if xp.stats.DupDiscards != 1 {
		t.Fatalf("DupDiscards = %d, want 1", xp.stats.DupDiscards)
	}
	m, ok := xp.takeNonce(referee.Account, "P1", nonce)
	if !ok {
		t.Fatal("deduplicated message not delivered at all")
	}
	var bp referee.BidPayload
	if err := m.Env.Open(reg, &bp); err != nil {
		t.Fatal(err)
	}
	if bp.Bid != 2 {
		t.Fatalf("delivered bid = %v, want the FIRST copy (2)", bp.Bid)
	}
	if _, again := xp.takeNonce(referee.Account, "P1", nonce); again {
		t.Fatal("second copy leaked through deduplication")
	}

	// The discarded envelope is still a valid signature over a different
	// payload — exactly the evidence pair sig.IsEquivocation defines.
	if !sig.IsEquivocation(reg, first, second) {
		t.Fatal("contradictory signed bids not recognized as equivocation")
	}

	// And the referee convicts on it: P2 presents both envelopes, P1 is
	// found guilty and the run terminates.
	ledger, err := payment.NewLedger(UserID, referee.Account, "P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referee.New(reg, ledger, core.Mechanism{Network: dlt.NCPFE, Z: 0.1}, []string{"P1", "P2"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.JudgeEquivocation("P2", first, second)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" || !v.Terminates {
		t.Fatalf("verdict = %+v, want P1 guilty and termination", v)
	}
}

// roundTestRig builds a two-processor referee rig with a keyring-style
// fixed PKI, for the cross-round adjudication tests below.
func roundTestRig(t *testing.T) (*sig.Registry, map[string]*sig.KeyPair, *referee.Referee) {
	t.Helper()
	reg := sig.NewRegistry()
	keys := map[string]*sig.KeyPair{}
	for i, id := range []string{"P1", "P2", referee.Account} {
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(id, k.Public); err != nil {
			t.Fatal(err)
		}
		keys[id] = k
	}
	ledger, err := payment.NewLedger(UserID, referee.Account, "P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referee.New(reg, ledger, core.Mechanism{Network: dlt.NCPFE, Z: 0.1}, []string{"P1", "P2"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return reg, keys, ref
}

// TestStaleRoundReplayRejected: the round-ID binding that makes bid reuse
// safe. An attacker records P1's signed Allocation-phase bid vector (and
// its signed payment vector) in round j and replays them in round j+1.
// The signatures still verify — the envelopes are authentic — but the
// round stamp inside the signed payload no longer matches the round the
// referee is bound to, so both replays are rejected/fined.
func TestStaleRoundReplayRejected(t *testing.T) {
	reg, keys, _ := roundTestRig(t)
	const epoch = "s1:r1"

	bid1, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2, Round: epoch})
	if err != nil {
		t.Fatal(err)
	}
	bid2, err := sig.Seal(keys["P2"], referee.KindBid, referee.BidPayload{Proc: "P2", Bid: 3, Round: epoch})
	if err != nil {
		t.Fatal(err)
	}
	// Round j (== the bid epoch): P1's vector is accepted.
	vecJ, err := sig.Seal(keys["P1"], referee.KindBidVector,
		referee.BidVectorPayload{Proc: "P1", Bids: []sig.Envelope{bid1, bid2}, Round: epoch})
	if err != nil {
		t.Fatal(err)
	}
	_, _, refJ := roundTestRig(t)
	refJ.BindRounds(epoch, epoch)
	if _, err := refJ.VerifyBidVector(vecJ); err != nil {
		t.Fatalf("current-round vector rejected: %v", err)
	}

	// Round j+1 reuses the same bid epoch but carries a new round ID: the
	// replayed round-j vector must fail verification.
	_, _, refJ1 := roundTestRig(t)
	refJ1.BindRounds("s1:r2", epoch)
	if _, err := refJ1.VerifyBidVector(vecJ); err == nil {
		t.Fatal("bid vector captured in round j accepted in round j+1")
	}
	// A fresh vector over the SAME cached epoch bids, stamped with the
	// new round, is what an honest submitter sends — and it passes.
	vecJ1, err := sig.Seal(keys["P1"], referee.KindBidVector,
		referee.BidVectorPayload{Proc: "P1", Bids: []sig.Envelope{bid1, bid2}, Round: "s1:r2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refJ1.VerifyBidVector(vecJ1); err != nil {
		t.Fatalf("honest round-j+1 vector over cached epoch bids rejected: %v", err)
	}
	// A vector whose INNER bid was signed outside the epoch (a replay of
	// a superseded bid) also fails, even with a current round stamp.
	staleBid, err := sig.Seal(keys["P2"], referee.KindBid, referee.BidPayload{Proc: "P2", Bid: 9, Round: "s1:r0"})
	if err != nil {
		t.Fatal(err)
	}
	vecStale, err := sig.Seal(keys["P1"], referee.KindBidVector,
		referee.BidVectorPayload{Proc: "P1", Bids: []sig.Envelope{bid1, staleBid}, Round: "s1:r2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refJ1.VerifyBidVector(vecStale); err == nil {
		t.Fatal("vector smuggling an off-epoch bid accepted")
	}

	// Payment phase: a round-j payment vector replayed in round j+1 is a
	// finable deviation for its nominal sender. P2 submits the correct
	// vector (the mechanism's own output) stamped with the current round.
	bids, exec := []float64{2, 3}, []float64{2, 3}
	mout, err := (core.Mechanism{Network: dlt.NCPFE, Z: 0.1}).Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	payJ, err := sig.Seal(keys["P1"], referee.KindPayment,
		referee.PaymentPayload{Proc: "P1", Q: mout.Payment, Round: epoch})
	if err != nil {
		t.Fatal(err)
	}
	payJ1, err := sig.Seal(keys["P2"], referee.KindPayment,
		referee.PaymentPayload{Proc: "P2", Q: mout.Payment, Round: "s1:r2"})
	if err != nil {
		t.Fatal(err)
	}
	_ = reg
	v, _, err := refJ1.JudgePayments(bids, exec, map[string][]sig.Envelope{
		"P1": {payJ}, "P2": {payJ1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" {
		t.Fatalf("verdict = %+v, want only the replayer P1 fined", v)
	}
}

// TestEquivocatedRebidStillConvicts: amortization must not weaken the
// equivocation defense. During a REBID round (round n of a session, not
// round one), a processor broadcasts two contradictory bids — both
// stamped with the new epoch's round ID. The referee, bound to that
// epoch, convicts exactly as in the single-shot protocol. End-to-end via
// BidSession: a rate change forces the rebid, the equivocator cheats in
// it, and the conviction lands mid-session.
func TestEquivocatedRebidStillConvicts(t *testing.T) {
	// Referee-level: current-epoch contradictory pair convicts the signer.
	_, keys, ref := roundTestRig(t)
	ref.BindRounds("s1:r5", "s1:r5")
	a, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2, Round: "s1:r5"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 4, Round: "s1:r5"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.JudgeEquivocation("P2", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" || !v.Terminates {
		t.Fatalf("verdict = %+v, want P1 convicted in the rebid epoch", v)
	}

	// Session-level: rounds 1–2 honest, round 3 is a rate-change rebid in
	// which P2 equivocates.
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{3, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 2, NBlocks: 48}
	for k := 0; k < 2; k++ {
		if _, err := s.Run(job); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AnnounceRate(1, 2.5); err != nil {
		t.Fatal(err)
	}
	cheat := job
	cheat.Behaviors = []agent.Behavior{{}, agent.Equivocator, {}}
	out, err := s.Run(cheat)
	if err != nil {
		t.Fatal(err)
	}
	if out.BidReused {
		t.Fatal("rate-change round reused stale bids")
	}
	if out.Completed || len(out.Verdicts) == 0 || out.Verdicts[0].Guilty[0] != "P2" {
		t.Fatalf("rebid-round equivocator not convicted: completed=%v verdicts=%+v", out.Completed, out.Verdicts)
	}
	if out.Fines[1] == 0 {
		t.Fatal("convicted equivocator paid no fine")
	}
}

// TestCrossEpochEvidenceIsUnfounded guards honest re-bidders: after a
// legitimate rate change, a processor's old and new signed bids differ —
// a valid sig.IsEquivocation pair. Under round binding that pair is NOT
// convictable: the old bid belongs to a superseded epoch, so the referee
// rules the accusation unfounded and fines the accuser, exactly the
// paper's penalty for unsubstantiated claims.
func TestCrossEpochEvidenceIsUnfounded(t *testing.T) {
	_, keys, ref := roundTestRig(t)
	oldBid, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2, Round: "s1:r1"})
	if err != nil {
		t.Fatal(err)
	}
	newBid, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2.5, Round: "s1:r4"})
	if err != nil {
		t.Fatal(err)
	}
	if !sig.IsEquivocation(sigRegistryOf(t, keys), oldBid, newBid) {
		t.Fatal("cross-epoch pair should look like raw equivocation to the signature layer")
	}
	ref.BindRounds("s1:r4", "s1:r4")
	v, err := ref.JudgeEquivocation("P2", oldBid, newBid)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P2" {
		t.Fatalf("verdict = %+v, want the accuser P2 fined for framing an honest re-bidder", v)
	}
}

func sigRegistryOf(t *testing.T, keys map[string]*sig.KeyPair) *sig.Registry {
	t.Helper()
	reg := sig.NewRegistry()
	for id, k := range keys {
		if err := reg.Register(id, k.Public); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}
