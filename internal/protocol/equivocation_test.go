package protocol

import (
	"testing"

	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
)

// TestEquivocationSurvivesDedup pins down an interaction between the
// reliable transport and the paper's equivocation defense: (sender,
// nonce) deduplication must not launder a re-signed, contradictory bid
// into silence. When a processor transmits a second, different bid under
// the nonce of its first one — disguising the cheat as a retransmission —
// the transport keeps the first verified copy (so the protocol's view is
// unchanged) and the discarded copy's signature remains independently
// verifiable equivocation evidence that convicts the signer.
func TestEquivocationSurvivesDedup(t *testing.T) {
	net, err := bus.New(0.1)
	if err != nil {
		t.Fatal(err)
	}
	reg := sig.NewRegistry()
	keys := map[string]*sig.KeyPair{}
	for i, id := range []string{"P1", "P2", referee.Account} {
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(id, k.Public); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(id); err != nil {
			t.Fatal(err)
		}
		keys[id] = k
	}
	xp, err := newTransport(net, reg, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}

	// P1 signs two different bids and sends both under ONE nonce: the
	// honest-looking original, then the contradiction dressed up as a
	// retransmission.
	first, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := sig.Seal(keys["P1"], referee.KindBid, referee.BidPayload{Proc: "P1", Bid: 3.5})
	if err != nil {
		t.Fatal(err)
	}
	nonce := net.NextNonce()
	for _, env := range []sig.Envelope{first, second} {
		if _, err := net.SendTagged("P1", referee.Account, referee.KindBid, env, 1, nonce); err != nil {
			t.Fatal(err)
		}
	}

	// The transport delivers exactly one copy — the first verified one.
	if err := xp.pull(referee.Account); err != nil {
		t.Fatal(err)
	}
	if xp.stats.DupDiscards != 1 {
		t.Fatalf("DupDiscards = %d, want 1", xp.stats.DupDiscards)
	}
	m, ok := xp.takeNonce(referee.Account, "P1", nonce)
	if !ok {
		t.Fatal("deduplicated message not delivered at all")
	}
	var bp referee.BidPayload
	if err := m.Env.Open(reg, &bp); err != nil {
		t.Fatal(err)
	}
	if bp.Bid != 2 {
		t.Fatalf("delivered bid = %v, want the FIRST copy (2)", bp.Bid)
	}
	if _, again := xp.takeNonce(referee.Account, "P1", nonce); again {
		t.Fatal("second copy leaked through deduplication")
	}

	// The discarded envelope is still a valid signature over a different
	// payload — exactly the evidence pair sig.IsEquivocation defines.
	if !sig.IsEquivocation(reg, first, second) {
		t.Fatal("contradictory signed bids not recognized as equivocation")
	}

	// And the referee convicts on it: P2 presents both envelopes, P1 is
	// found guilty and the run terminates.
	ledger, err := payment.NewLedger(UserID, referee.Account, "P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referee.New(reg, ledger, core.Mechanism{Network: dlt.NCPFE, Z: 0.1}, []string{"P1", "P2"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.JudgeEquivocation("P2", first, second)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Guilty) != 1 || v.Guilty[0] != "P1" || !v.Terminates {
		t.Fatalf("verdict = %+v, want P1 guilty and termination", v)
	}
}
