package protocol

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/payment"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
	"dlsbl/internal/workload"
)

// RunCP executes the centralized DLS-BL protocol of the authors' earlier
// paper (the system this paper removes the trust assumption from): a
// TRUSTED control processor P0 collects the signed bids, computes the
// allocation, distributes the load, observes the meters, computes the
// payments and bills the user. No referee, no fines, no cross-checking —
// the control processor's honesty is assumed, exactly what DLS-BL-NCP
// exists to avoid.
//
// Only the lying knobs of a Behavior (BidFactor, SlackFactor, Abstain)
// act here: protocol deviations target the mechanics of mutual
// verification, and with a trusted center there are no mechanics to
// subvert. The run measures what decentralization costs — compare the
// BusStats against Run's (Theorem 5.4: Θ(m) here vs Θ(m²) there).
const cpControlID = "P0"

// RunCP executes the centralized protocol on a CP-network configuration.
func RunCP(cfg Config) (*Outcome, error) {
	if cfg.Network != dlt.CP {
		return nil, fmt.Errorf("protocol: RunCP requires the CP network class, got %v", cfg.Network)
	}
	if len(cfg.TrueW) < 2 {
		return nil, errors.New("protocol: need at least two processors")
	}
	for i, w := range cfg.TrueW {
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("protocol: invalid true value w[%d]=%v", i, w)
		}
	}
	if !(cfg.Z >= 0) || math.IsInf(cfg.Z, 0) {
		return nil, fmt.Errorf("protocol: invalid z=%v", cfg.Z)
	}
	m := len(cfg.TrueW)
	nBlocks := cfg.NBlocks
	if nBlocks == 0 {
		nBlocks = 64 * m
	}
	blockSize := cfg.BlockSize
	if blockSize == 0 {
		blockSize = 32
	}

	reg := sig.NewRegistry()
	seed := cfg.Seed
	newKey := func(id string) (*sig.KeyPair, error) {
		seed++
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(seed))
		if err != nil {
			return nil, err
		}
		if err := reg.Register(id, k.Public); err != nil {
			return nil, err
		}
		return k, nil
	}
	if _, err := newKey(UserID); err != nil {
		return nil, err
	}
	if _, err := newKey(cpControlID); err != nil {
		return nil, err
	}

	procs := make([]string, m)
	agents := make([]*agent.Agent, m)
	for i := 0; i < m; i++ {
		procs[i] = fmt.Sprintf("P%d", i+1)
		k, err := newKey(procs[i])
		if err != nil {
			return nil, err
		}
		var b agent.Behavior
		if i < len(cfg.Behaviors) {
			b = cfg.Behaviors[i]
		}
		if b.Abstain {
			return nil, errors.New("protocol: RunCP does not model abstention")
		}
		a, err := agent.New(procs[i], k, cfg.TrueW[i], b)
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}

	net, err := bus.New(cfg.Z)
	if err != nil {
		return nil, err
	}
	for _, id := range append([]string{cpControlID}, procs...) {
		if err := net.Attach(id); err != nil {
			return nil, err
		}
	}
	ledger, err := payment.NewLedger(append([]string{UserID}, procs...)...)
	if err != nil {
		return nil, err
	}

	// Bidding: every processor unicasts its signed bid to P0.
	bids := make([]float64, m)
	for i, a := range agents {
		env, err := sig.Seal(a.Key, referee.KindBid, referee.BidPayload{Proc: a.ID, Bid: a.Bid()})
		if err != nil {
			return nil, err
		}
		if err := net.Send(a.ID, cpControlID, referee.KindBid, env, 1); err != nil {
			return nil, err
		}
		bids[i] = a.Bid()
	}
	msgs, err := net.Drain(cpControlID)
	if err != nil {
		return nil, err
	}
	for _, msg := range msgs {
		var bp referee.BidPayload
		if err := msg.Env.Open(reg, &bp); err != nil {
			return nil, fmt.Errorf("protocol: control processor rejected a bid: %w", err)
		}
	}

	// Allocation and distribution by the trusted center.
	alloc, err := dlt.Optimal(dlt.Instance{Network: dlt.CP, Z: cfg.Z, W: bids})
	if err != nil {
		return nil, err
	}
	assigns, err := workload.Partition(alloc, nBlocks)
	if err != nil {
		return nil, err
	}

	// Processing: the center observes the meters directly.
	exec := make([]float64, m)
	phi := make([]float64, m)
	for i, a := range agents {
		exec[i] = a.Exec()
		phi[i] = alloc[i] * exec[i]
	}
	realized := dlt.Instance{Network: dlt.CP, Z: cfg.Z, W: exec}
	tl, err := dlt.Schedule(realized, alloc)
	if err != nil {
		return nil, err
	}

	// Payments: computed once by P0, announced to each processor (one
	// scalar each), billed to the user.
	eng := core.NewPaymentEngine(dlt.CP, cfg.Z)
	derived := make([]float64, m)
	for j := range derived {
		if alloc[j] > 0 {
			derived[j] = phi[j] / alloc[j]
		} else {
			derived[j] = bids[j]
		}
	}
	out, err := eng.Run(bids, derived, core.WithVerification)
	if err != nil {
		return nil, err
	}
	for _, p := range procs {
		// The center announces each processor's payment: one scalar per
		// processor — the Θ(m) control traffic of the centralized design.
		env := sig.Envelope{Sender: cpControlID, Kind: referee.KindPayment}
		if err := net.Send(cpControlID, p, referee.KindPayment, env, 1); err != nil {
			return nil, err
		}
	}
	inv := payment.Invoice{Payer: UserID}
	for i, p := range procs {
		inv.Lines = append(inv.Lines, payment.InvoiceLine{
			Account: p,
			Memo:    fmt.Sprintf("payment Q for %s (centralized DLS-BL)", p),
			Amount:  out.Payment[i],
		})
	}
	if err := ledger.PayInvoice(inv); err != nil {
		return nil, err
	}

	res := &Outcome{
		Completed:    true,
		Procs:        procs,
		Participated: make([]bool, m),
		Bids:         bids,
		Alloc:        alloc,
		Assignments:  assigns,
		Exec:         exec,
		Phi:          phi,
		Payments:     append([]float64(nil), out.Payment...),
		Fines:        make([]float64, m),
		Rewards:      make([]float64, m),
		Utilities:    make([]float64, m),
		WorkCost:     append([]float64(nil), phi...),
		Timeline:     tl,
		Makespan:     tl.Makespan,
		Invoice:      inv,
		UserCost:     out.UserCost,
		BusStats:     net.Stats(),
	}
	for i := range res.Participated {
		res.Participated[i] = true
		res.Utilities[i] = out.Payment[i] - phi[i]
	}
	return res, nil
}
