package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsbl/internal/adversarytest"
	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
)

// The sentinel's false-positive contract: the economic invariants it
// checks hold on EVERY correct execution of the mechanism, no matter how
// the agents behave — deviants are convicted with evidence, evictions
// are corroborated, and the arithmetic always balances. A sentinel
// attached to any protocol run (honest, faulty bus, or full Byzantine
// tiers) must therefore stay clear; anything it latches in these sweeps
// is a protocol bug, not an adversary.

// runWithSentinel plays cfg with a fresh sentinel attached and fails the
// test if it latches.
func runWithSentinel(t *testing.T, name string, cfg Config) {
	t.Helper()
	s := obs.NewSentinel()
	cfg.Tracer = obs.Multi(cfg.Tracer, s)
	if _, err := Run(cfg); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !s.Ok() {
		t.Errorf("%s: sentinel latched on a correct execution: %q", name, s.Violations())
	}
}

func TestSentinelStaysClearOnHonestRuns(t *testing.T) {
	for _, net := range []dlt.Network{dlt.NCPFE, dlt.NCPNFE} {
		runWithSentinel(t, net.String(), honestConfig(net))
	}
}

// The X16 shape: an unreliable bus (drops, duplicates, jitter) under a
// tight retry budget, driving retransmissions and eviction paths.
func TestSentinelStaysClearOnFaultyBusSweep(t *testing.T) {
	for _, p := range []float64{0.1, 0.2, 0.3} {
		for trial := 0; trial < 3; trial++ {
			cfg := honestConfig(dlt.NCPFE)
			cfg.Faults = &bus.FaultPlan{
				Seed:      int64(trial)*101 + 7,
				Drop:      p,
				Duplicate: p / 2,
				JitterMax: p,
			}
			cfg.Retry = RetryPolicy{MaxAttempts: 3}
			name := fmt.Sprintf("p=%.1f/trial=%d", p, trial)
			s := obs.NewSentinel()
			cfg.Tracer = s
			// An aborted run (retry budget exhausted) is a legitimate
			// outcome here; the sentinel must stay clear either way.
			if _, err := Run(cfg); err != nil {
				t.Logf("%s: aborted: %v", name, err)
			}
			if !s.Ok() {
				t.Errorf("%s: sentinel latched: %q", name, s.Violations())
			}
		}
	}
}

// The X19 shape: the Byzantine adversary tiers — targeted faults below
// and at the corroboration threshold, framing, crashes, and referee
// failover — each producing real evictions and convictions whose
// transcript must still satisfy the sentinel.
func TestSentinelStaysClearOnAdversaryTiers(t *testing.T) {
	const m = 6
	rng := rand.New(rand.NewSource(42))
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.5 + rng.Float64()*7.5
	}
	base := Config{Network: dlt.NCPFE, Z: 0.1, TrueW: w, Seed: 42, NBlocks: 8 * m}
	victim := adversarytest.ProcID(m / 2)
	peers := func(n int) []string {
		var ids []string
		for i := 0; i < m && len(ids) < n; i++ {
			if id := adversarytest.ProcID(i); id != victim {
				ids = append(ids, id)
			}
		}
		return ids
	}
	thresh := (m + 1) / 2

	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"drop-below-threshold", func() Config {
			cfg := base
			cfg.Faults = adversarytest.Blackhole(42, victim, peers(thresh-1)...)
			return cfg
		}},
		{"drop-at-threshold", func() Config {
			cfg := base
			cfg.Faults = adversarytest.Blackhole(42, victim, peers(thresh)...)
			return cfg
		}},
		{"framing", func() Config {
			cfg := base
			cfg.Behaviors = adversarytest.Framing(m, 0)
			return cfg
		}},
		{"crash", func() Config {
			cfg := base
			cfg.Faults = adversarytest.CrashPlan(42, 0, victim)
			return cfg
		}},
		{"crash-with-failover", func() Config {
			cfg := base
			cfg.Standby = true
			cfg.FailoverIn = obs.PhaseProcessing
			cfg.Faults = adversarytest.CrashPlan(42, 0, victim)
			return cfg
		}},
	}
	for _, tc := range cases {
		runWithSentinel(t, tc.name, tc.cfg())
	}
}

// Every single-agent deviation the referee can convict must leave an
// evidence trail the sentinel accepts.
func TestSentinelStaysClearOnConvictedDeviants(t *testing.T) {
	deviants := []agent.Behavior{
		{Name: "equivocate", Equivocate: true},
		{Name: "false-equivocation-report", FalseEquivocationReport: true},
		{Name: "false-shortage-claim", FalseShortageClaim: true},
		{Name: "false-excess-claim", FalseExcessClaim: true},
		{Name: "wrong-payment", WrongPaymentFactor: 1.5},
		{Name: "equivocate-payments", EquivocatePayments: true},
		{Name: "tamper-bid-vector", TamperBidVectorEntry: true},
		{Name: "misallocate", MisallocateExtraBlocks: 2},
		{Name: "short-ship", MisallocateExtraBlocks: -2},
		{Name: "overbid", BidFactor: 1.6},
	}
	for _, b := range deviants {
		runWithSentinel(t, b.Name, withBehavior(honestConfig(dlt.NCPFE), 1, b))
	}
}

// replayThrough plays a recorder's event records into a sentinel,
// optionally doctoring each event first — the true-positive harness: a
// stream that reports something the mechanism did not do must latch.
func replayThrough(s *obs.Sentinel, recs []obs.Record, doctor func(*obs.Event) bool) {
	for _, r := range recs {
		if r.Type != "event" {
			continue
		}
		e := obs.Event{
			Kind: r.Name, From: r.From, To: r.To, Msg: r.Msg,
			Round: r.Round, Detail: r.Detail, Origin: r.Origin,
			Values: append([]float64(nil), r.Values...),
		}
		if doctor != nil && !doctor(&e) {
			continue
		}
		s.Event(e)
	}
}

func TestSentinelLatchesOnDoctoredStreams(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := withBehavior(honestConfig(dlt.NCPFE), 1, agent.Behavior{Name: "framing", FrameRival: true})
	cfg.Tracer = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	recs := rec.Records()

	// Sanity: the untampered replay is clean.
	s := obs.NewSentinel()
	replayThrough(s, recs, nil)
	if !s.Ok() {
		t.Fatalf("untampered replay latched: %q", s.Violations())
	}

	t.Run("inflated-payment", func(t *testing.T) {
		s := obs.NewSentinel()
		first := true
		replayThrough(s, recs, func(e *obs.Event) bool {
			if e.Kind == obs.EvPayment && first {
				first = false
				e.Values[0] *= 1.01 // Q no longer equals C + B
			}
			return true
		})
		if s.Ok() {
			t.Fatal("tampered payment Q did not latch")
		}
	})
	t.Run("skimmed-invoice", func(t *testing.T) {
		s := obs.NewSentinel()
		replayThrough(s, recs, func(e *obs.Event) bool {
			if e.Kind == obs.EvInvoice {
				e.Values[0] *= 0.99 // user billed less than processors received
			}
			return true
		})
		if s.Ok() {
			t.Fatal("skimmed invoice did not latch")
		}
	})
	t.Run("conviction-without-evidence", func(t *testing.T) {
		s := obs.NewSentinel()
		replayThrough(s, recs, func(e *obs.Event) bool {
			// Drop every signed-evidence submission; the framer's
			// conviction then arrives unsubstantiated.
			return e.Kind != obs.EvEvidence && e.Kind != obs.EvWitnessReport
		})
		if s.Ok() {
			t.Fatal("evidence-free conviction did not latch")
		}
	})
}

func TestSentinelLatchesOnUnwitnessedEviction(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := honestConfig(dlt.NCPFE)
	cfg.Tracer = rec
	cfg.Faults = adversarytest.Blackhole(1, "P3", "P1", "P2") // corroborated eviction
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	s := obs.NewSentinel()
	replayThrough(s, rec.Records(), func(e *obs.Event) bool {
		return e.Kind != obs.EvWitnessReport // erase the corroboration trail
	})
	if s.Ok() {
		t.Fatal("eviction stripped of its witness reports did not latch")
	}
}
