package protocol

import (
	"testing"

	"dlsbl/internal/dlt"
)

// FuzzBidSessionMembership drives a BidSession through arbitrary
// interleavings of rounds, joins, leaves and rate announcements and
// checks it against an independent membership model. Two invariants,
// asserted after every round:
//
//  1. No stale member sets: the round's participant set is exactly the
//     model's current active set — a member that joined is served, a
//     member that left never is.
//  2. No spurious re-bids: the round reuses the cached bids if and only
//     if the active set and announced rates are unchanged since the
//     round that captured the cache. In particular, announcing a rate a
//     member already has, or changing a rate and reverting it before the
//     next round, must NOT trigger a rebid.
//
// The input is a byte stream of (op, arg) pairs: op%4 selects
// run/join/leave/announce, arg parameterizes it. The model never looks at
// bidProfile or the session internals — it recomputes expectations from
// first principles, so the two can disagree.
func FuzzBidSessionMembership(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00"))                         // run ×3: one bid, two reuses
	f.Add([]byte("\x00\x00\x01\x04\x00\x00\x00\x00"))                 // join mid-stream
	f.Add([]byte("\x00\x00\x02\x01\x00\x00"))                         // leave mid-stream
	f.Add([]byte("\x00\x00\x03\x05\x00\x00\x03\x05\x00\x00"))         // rate change, then same-rate announce
	f.Add([]byte("\x00\x00\x03\x09\x03\x01\x00\x00"))                 // change then revert before the round
	f.Add([]byte("\x01\x07\x02\x02\x03\x06\x00\x00\x02\x01\x00\x00")) // churn burst
	f.Add([]byte("\x02\x00\x02\x07\x03\x00"))                         // illegal ops only

	f.Fuzz(func(t *testing.T, ops []byte) {
		s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.1, TrueW: []float64{2, 3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		// The model.
		rates := []float64{2, 3, 4}
		gone := []bool{false, false, false}
		active := func() int {
			n := 0
			for _, g := range gone {
				if !g {
					n++
				}
			}
			return n
		}
		var snapRates []float64 // announced rates when the cache was captured
		var snapGone []bool     // membership when the cache was captured
		const maxOps = 24
		steps := 0

		rateOf := func(arg byte) float64 { return 0.5 + float64(arg%16)*0.25 }

		for k := 0; k+1 < len(ops) && steps < maxOps; k += 2 {
			steps++
			op, arg := ops[k], ops[k+1]
			switch op % 4 {
			case 0: // serve a round
				out, err := s.Run(JobConfig{Seed: 42, NBlocks: 4 * len(rates), BlockSize: 8})
				if err != nil {
					t.Fatalf("step %d: %v", steps, err)
				}
				if !out.Completed {
					t.Fatalf("step %d: honest round did not complete", steps)
				}
				if len(out.Participated) != len(rates) {
					t.Fatalf("step %d: round over %d members, model has %d", steps, len(out.Participated), len(rates))
				}
				for i := range rates {
					if out.Participated[i] == gone[i] {
						t.Fatalf("step %d: member P%d participated=%v but gone=%v — stale member set",
							steps, i+1, out.Participated[i], gone[i])
					}
				}
				wantReuse := snapGone != nil && len(snapGone) == len(gone)
				if wantReuse {
					for i := range gone {
						if gone[i] != snapGone[i] || (!gone[i] && rates[i] != snapRates[i]) {
							wantReuse = false
							break
						}
					}
				}
				if out.BidReused != wantReuse {
					t.Fatalf("step %d: BidReused=%v, model expects %v (gone=%v rates=%v snapGone=%v snapRates=%v)",
						steps, out.BidReused, wantReuse, gone, rates, snapGone, snapRates)
				}
				snapRates = append([]float64(nil), rates...)
				snapGone = append([]bool(nil), gone...)

			case 1: // join
				if len(rates) >= 8 {
					continue // keep the pool small; skip in both model and impl
				}
				w := rateOf(arg)
				idx, err := s.Join(w)
				if err != nil || idx != len(rates) {
					t.Fatalf("step %d: Join(%v) = (%d, %v)", steps, w, idx, err)
				}
				rates = append(rates, w)
				gone = append(gone, false)

			case 2: // leave
				i := int(arg) % len(rates)
				legal := !gone[i] && i != 0 && active() > 2 // P1 originates under NCP-FE
				err := s.Leave(i)
				if legal != (err == nil) {
					t.Fatalf("step %d: Leave(%d) err=%v, model says legal=%v", steps, i, err, legal)
				}
				if legal {
					gone[i] = true
				}

			case 3: // announce rate
				i := int(arg) % len(rates)
				w := rateOf(arg / byte(len(rates)))
				err := s.AnnounceRate(i, w)
				if gone[i] != (err != nil) {
					t.Fatalf("step %d: AnnounceRate(%d, %v) err=%v, gone=%v", steps, i, w, err, gone[i])
				}
				if !gone[i] {
					rates[i] = w
				}
			}
		}
	})
}
