package protocol

import (
	"encoding/json"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
)

// TestTracerNilParity is the tentpole's safety contract: the tracer
// only observes. Over a randomized sweep of deviant and faulty
// configurations, a run with a Recorder attached must produce an
// Outcome — payments, fines, transcript hash chain, eviction list,
// everything — bit-identical to the same run with Tracer nil, and a
// failing run must fail with the same error.
func TestTracerNilParity(t *testing.T) {
	catalog := agent.Catalog()
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 3 + rng.Intn(3)
		w := make([]float64, m)
		for i := range w {
			w[i] = 0.5 + 2.5*rng.Float64()
		}
		cfg := Config{
			Network: dlt.NCPFE,
			Z:       0.05 + 0.4*rng.Float64(),
			TrueW:   w,
			Seed:    int64(trial),
		}
		if rng.Intn(2) == 0 {
			cfg.Network = dlt.NCPNFE
		}
		// Roughly half the trials inject a deviant; P1 originates under
		// NCP-FE, so deviants land on later indices to keep most runs
		// adjudicable rather than erroring out at the source.
		if rng.Intn(2) == 0 {
			cfg = withBehavior(cfg, 1+rng.Intn(m-1), catalog[names[rng.Intn(len(names))]])
		}
		// A third of the trials run over a lossy bus.
		if rng.Intn(3) == 0 {
			cfg.Faults = &bus.FaultPlan{
				Seed:      int64(trial) + 1000,
				Drop:      0.2 * rng.Float64(),
				Duplicate: 0.2 * rng.Float64(),
				Corrupt:   0.1 * rng.Float64(),
			}
			cfg.Retry = RetryPolicy{MaxAttempts: 6}
		}

		plain, plainErr := Run(cfg)
		traced := cfg
		traced.Tracer = obs.NewRecorder()
		got, gotErr := Run(traced)

		if (plainErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: nil-tracer err=%v, traced err=%v", trial, plainErr, gotErr)
		}
		if plainErr != nil {
			if plainErr.Error() != gotErr.Error() {
				t.Fatalf("trial %d: error text diverged:\n  nil:    %v\n  traced: %v", trial, plainErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(plain, got) {
			t.Fatalf("trial %d: traced outcome diverged from nil-tracer outcome\nconfig: %+v", trial, cfg)
		}
	}
}

// TestChromeTraceFaultyMultiload drives a BidSession through an
// eviction and a reuse round under one Recorder, then checks the
// record stream and its Chrome rendering structurally: spans nest and
// their timestamps never run backwards, every eviction and bid-reuse
// event carries its round ID, and the exported JSON parses with only
// non-negative slice durations.
func TestChromeTraceFaultyMultiload(t *testing.T) {
	s := sessionBase(t, 3, 2, 4, 5)
	rec := obs.NewRecorder()
	out, err := s.Run(JobConfig{Seed: 5, NBlocks: 64, Tracer: rec,
		Faults: &bus.FaultPlan{Seed: 1, Unresponsive: []string{"P3"}},
		Retry:  RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Evicted[2] {
		t.Fatalf("P3 not evicted: %v", out.Evicted)
	}
	reused, err := s.Run(JobConfig{Seed: 6, NBlocks: 64, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !reused.BidReused {
		t.Fatal("second round did not reuse the cached bids")
	}

	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("recorder captured nothing")
	}
	var stack []string
	lastTS := 0.0
	evictions, reuses := 0, 0
	for i, r := range recs {
		if r.TS < lastTS {
			t.Fatalf("record %d: timestamp ran backwards (%v after %v)", i, r.TS, lastTS)
		}
		lastTS = r.TS
		switch r.Type {
		case "begin":
			stack = append(stack, r.Name)
		case "end":
			if len(stack) == 0 || stack[len(stack)-1] != r.Name {
				t.Fatalf("record %d: end %q does not close the innermost span (stack %v)", i, r.Name, stack)
			}
			stack = stack[:len(stack)-1]
		case "event":
			switch r.Name {
			case obs.EvEviction:
				evictions++
				if r.Round == "" {
					t.Fatalf("record %d: eviction event carries no round ID", i)
				}
			case obs.EvBidReused:
				reuses++
				if r.Round == "" {
					t.Fatalf("record %d: bid_reused event carries no round ID", i)
				}
			}
		default:
			t.Fatalf("record %d: unknown type %q", i, r.Type)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans at end of stream: %v", stack)
	}
	if evictions == 0 || reuses == 0 {
		t.Fatalf("want both eviction and bid_reused events, got %d evictions, %d reuses", evictions, reuses)
	}

	raw, err := obs.ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	slices, instants := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Fatalf("slice %q has negative duration %v", e.Name, e.Dur)
			}
		case "i":
			instants++
		case "M":
		default:
			t.Fatalf("unexpected phase type %q", e.Ph)
		}
		if e.PID != 1 {
			t.Fatalf("event %q on pid %d, want 1", e.Name, e.PID)
		}
	}
	// Two rounds × five phases; the reuse round's Bidding span is present
	// (it wraps the cache installation) even though no bids crossed the bus.
	if slices != 10 {
		t.Fatalf("want 10 phase slices (2 rounds × 5 phases), got %d", slices)
	}
	if instants == 0 {
		t.Fatal("no instant events in the Chrome trace")
	}
}

// BenchmarkTracerOverhead pits the nil-tracer path (the default every
// production run without -trace takes) against a streaming NDJSON
// tracer, over a full honest protocol run. The nil path must stay
// within noise of the pre-tracer baseline: every emission site guards
// with a nil check, so the instrumented build adds one predictable
// branch per site and nothing else.
func BenchmarkTracerOverhead(b *testing.B) {
	base := honestConfig(dlt.NCPFE)
	b.Run("nil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-discard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Tracer = obs.NewStream(io.Discard)
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
