package protocol

import (
	"strings"
	"testing"
)

// TestRoundRefRoundTrip: every canonical identifier parses back to its
// fields and re-renders byte-for-byte.
func TestRoundRefRoundTrip(t *testing.T) {
	cases := []RoundRef{
		{Salt: "s0011223344556677", Round: 1},
		{Salt: "s0011223344556677", Round: 12, Installment: 3},
		{Salt: "x", Round: 2147483637, Installment: 1},
		{Salt: "with.dots.and-r", Round: 7, Installment: 10},
	}
	for _, want := range cases {
		s := want.String()
		got, err := ParseRoundRef(s)
		if err != nil {
			t.Fatalf("ParseRoundRef(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseRoundRef(%q) = %+v, want %+v", s, got, want)
		}
		if got.String() != s {
			t.Errorf("round trip of %q produced %q", s, got.String())
		}
	}
}

// TestParseRoundRefRejects: anything but the canonical spelling is
// refused — missing salt, extra colons, leading zeros, zero or negative
// counters, junk suffixes. One canonical spelling per round is what makes
// replayed-artifact detection a string comparison.
func TestParseRoundRefRejects(t *testing.T) {
	bad := []string{
		"",
		"s01",              // no colon
		":r1",              // empty salt
		"s01:r1:i2",        // extra colon
		"s01:x1",           // wrong round marker
		"s01:r",            // no round number
		"s01:r0",           // rounds are 1-based
		"s01:r01",          // leading zero
		"s01:r1.",          // dangling separator
		"s01:r1.2",         // missing installment marker
		"s01:r1.i",         // no installment number
		"s01:r1.i0",        // installments are 1-based
		"s01:r1.i007",      // leading zeros
		"s01:r1.i2.i3",     // double installment
		"s01:r+1",          // sign
		"s01:r1.i2 ",       // trailing junk
		"s01:r99999999999", // overflows a plausible counter
	}
	for _, s := range bad {
		if ref, err := ParseRoundRef(s); err == nil {
			t.Errorf("ParseRoundRef(%q) accepted as %+v", s, ref)
		}
	}
}

// FuzzRoundRef: the parser never panics, and accepts exactly the fixed
// points of String — every accepted input re-renders to itself, with
// in-range fields.
func FuzzRoundRef(f *testing.F) {
	f.Add("s0011223344556677:r1")
	f.Add("s0011223344556677:r12.i3")
	f.Add("x:r2147483637.i1")
	f.Add("s01:r01")
	f.Add(":r1.i2")
	f.Add("s01:r1.i2.i3")
	f.Fuzz(func(t *testing.T, s string) {
		ref, err := ParseRoundRef(s)
		if err != nil {
			return
		}
		if ref.Salt == "" || strings.Contains(ref.Salt, ":") {
			t.Fatalf("accepted %q with bad salt %q", s, ref.Salt)
		}
		if ref.Round <= 0 || ref.Installment < 0 {
			t.Fatalf("accepted %q with out-of-range fields %+v", s, ref)
		}
		if got := ref.String(); got != s {
			t.Fatalf("accepted %q but re-renders as %q", s, got)
		}
	})
}
