package protocol

import (
	"fmt"
	"strings"
)

// Round identifiers. Every session round is stamped with a salted ID the
// signed per-round artifacts and the referee's audit transcript carry:
//
//	<salt>:rN       — whole-load round N
//	<salt>:rN.iK    — installment K (1-based) of round N, a sub-round of
//	                  the pipelined scheduler (internal/pipeline)
//
// The salt is the session's deterministic identifier (sessionSalt) and
// never contains a colon; N and K are positive decimals with no leading
// zeros, so every reference has exactly one canonical spelling —
// ParseRoundRef accepts only that spelling and String reproduces it
// byte-for-byte (the round-trip the FuzzRoundRef target pins down).
// Distinct installments of one load therefore stamp distinct round IDs,
// which is what keeps the referee's replay and equivocation checks sharp
// under pipelining: a payment or bid vector captured in sub-round rN.i2
// and replayed in rN.i3 fails the round match like any stale-round
// replay.

// RoundRef is a parsed session round identifier.
type RoundRef struct {
	// Salt is the session identifier the round belongs to (non-empty,
	// no ':').
	Salt string
	// Round is the 1-based session round number N.
	Round int
	// Installment is the 1-based installment number K for sub-rounds;
	// 0 for a whole-load round.
	Installment int
}

// String renders the canonical identifier.
func (r RoundRef) String() string {
	if r.Installment > 0 {
		return fmt.Sprintf("%s:r%d.i%d", r.Salt, r.Round, r.Installment)
	}
	return fmt.Sprintf("%s:r%d", r.Salt, r.Round)
}

// parseDecimal parses a positive decimal with no leading zeros (the only
// spelling String emits). Returns 0 on any other input.
func parseDecimal(s string) int {
	if s == "" || s[0] == '0' {
		return 0
	}
	n := 0
	for i := 0; i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0
		}
		if n > (1<<31-1-9)/10 {
			return 0 // would overflow any plausible round counter
		}
		n = n*10 + int(d-'0')
	}
	return n
}

// ParseRoundRef parses a canonical round identifier. It accepts exactly
// the strings RoundRef.String produces: for every valid input,
// ParseRoundRef(s).String() == s.
func ParseRoundRef(s string) (RoundRef, error) {
	salt, rest, ok := strings.Cut(s, ":")
	if !ok || salt == "" || strings.Contains(rest, ":") {
		return RoundRef{}, fmt.Errorf("protocol: round id %q is not <salt>:rN[.iK]", s)
	}
	if len(rest) < 2 || rest[0] != 'r' {
		return RoundRef{}, fmt.Errorf("protocol: round id %q is not <salt>:rN[.iK]", s)
	}
	numPart, instPart, hasInst := strings.Cut(rest[1:], ".")
	ref := RoundRef{Salt: salt}
	if ref.Round = parseDecimal(numPart); ref.Round == 0 {
		return RoundRef{}, fmt.Errorf("protocol: round id %q has invalid round number", s)
	}
	if hasInst {
		if len(instPart) < 2 || instPart[0] != 'i' {
			return RoundRef{}, fmt.Errorf("protocol: round id %q has invalid installment suffix", s)
		}
		if ref.Installment = parseDecimal(instPart[1:]); ref.Installment == 0 {
			return RoundRef{}, fmt.Errorf("protocol: round id %q has invalid installment number", s)
		}
	}
	return ref, nil
}
