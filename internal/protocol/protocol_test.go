package protocol

import (
	"math"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/referee"
)

const tol = 1e-9

func relErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

func honestConfig(net dlt.Network) Config {
	return Config{
		Network: net,
		Z:       0.2,
		TrueW:   []float64{1.0, 1.5, 2.0, 2.5},
		Seed:    7,
	}
}

func withBehavior(cfg Config, idx int, b agent.Behavior) Config {
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[idx] = b
	cfg.Behaviors = bs
	return cfg
}

func TestHonestRunCompletes(t *testing.T) {
	for _, net := range []dlt.Network{dlt.NCPFE, dlt.NCPNFE} {
		cfg := honestConfig(net)
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", net, err)
		}
		if !out.Completed {
			t.Fatalf("%v: honest run terminated in %s: %+v", net, out.TerminatedIn, out.Verdicts)
		}
		if err := out.Alloc.Validate(4); err != nil {
			t.Errorf("%v: allocation infeasible: %v", net, err)
		}
		for i, b := range out.Bids {
			if b != cfg.TrueW[i] {
				t.Errorf("%v: bid[%d]=%v, want truthful %v", net, i, b, cfg.TrueW[i])
			}
		}
		for i, f := range out.Fines {
			if f != 0 {
				t.Errorf("%v: honest P%d fined %v", net, i+1, f)
			}
		}
		// Payments must equal the centrally computed DLS-BL payments.
		mech := core.Mechanism{Network: net, Z: cfg.Z}
		want, err := mech.Run(cfg.TrueW, core.TruthfulExec(cfg.TrueW))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Payment {
			if relErr(out.Payments[i], want.Payment[i]) > tol {
				t.Errorf("%v: Q[%d]=%v, central says %v", net, i, out.Payments[i], want.Payment[i])
			}
			if relErr(out.Utilities[i], want.Utility[i]) > tol {
				t.Errorf("%v: U[%d]=%v, central says %v", net, i, out.Utilities[i], want.Utility[i])
			}
			if out.Utilities[i] < -tol {
				t.Errorf("%v: honest utility U[%d]=%v < 0", net, i, out.Utilities[i])
			}
		}
		if relErr(out.UserCost, want.UserCost) > tol {
			t.Errorf("%v: user cost %v, central says %v", net, out.UserCost, want.UserCost)
		}
		// Realized makespan equals the optimal DLT makespan for the true
		// profile.
		_, ms, err := dlt.OptimalMakespan(dlt.Instance{Network: net, Z: cfg.Z, W: cfg.TrueW})
		if err != nil {
			t.Fatal(err)
		}
		if relErr(out.Makespan, ms) > tol {
			t.Errorf("%v: realized makespan %v, want %v", net, out.Makespan, ms)
		}
		// Assignments cover the dataset.
		total := 0
		for _, a := range out.Assignments {
			total += a.Count()
		}
		if total != 64*4 {
			t.Errorf("%v: assignments cover %d blocks, want %d", net, total, 64*4)
		}
		// Exec values observed at true speed.
		for i, e := range out.Exec {
			if relErr(e, cfg.TrueW[i]) > tol {
				t.Errorf("%v: exec[%d]=%v, want %v", net, i, e, cfg.TrueW[i])
			}
		}
	}
}

func TestHonestRunTraffic(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := len(cfg.TrueW)
	s := out.BusStats
	// m bid broadcasts + 1 meter broadcast; m payment unicasts.
	if s.Broadcasts != m+1 {
		t.Errorf("broadcasts = %d, want %d", s.Broadcasts, m+1)
	}
	if s.Unicasts != m {
		t.Errorf("unicasts = %d, want %d", s.Unicasts, m)
	}
	// Units: m bids of size 1 + meters of size m + m payment vectors of
	// size m ⇒ m + m + m² — the Θ(m²) of Theorem 5.4.
	if want := m + m + m*m; s.Units != want {
		t.Errorf("units = %d, want %d", s.Units, want)
	}
}

func TestEquivocatorFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 1, agent.Equivocator)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "bidding" {
		t.Fatalf("run not terminated in bidding: %+v", out)
	}
	F := out.FineMagnitude
	if F <= 0 {
		t.Fatal("no fine magnitude")
	}
	if relErr(out.Fines[1], F) > tol {
		t.Errorf("equivocator fined %v, want F=%v", out.Fines[1], F)
	}
	if relErr(out.Utilities[1], -F) > tol {
		t.Errorf("equivocator utility %v, want −F=%v", out.Utilities[1], -F)
	}
	// The others split F evenly: F/(m−1) each.
	for _, i := range []int{0, 2, 3} {
		if relErr(out.Rewards[i], F/3) > tol {
			t.Errorf("P%d reward %v, want F/3=%v", i+1, out.Rewards[i], F/3)
		}
		if out.Utilities[i] < -tol {
			t.Errorf("innocent P%d utility %v < 0", i+1, out.Utilities[i])
		}
	}
	if out.UserCost != 0 {
		t.Errorf("user paid %v for a terminated run", out.UserCost)
	}
}

func TestFalseAccuserFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 2, agent.FalseAccuser)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "bidding" {
		t.Fatalf("run not terminated in bidding: %+v", out)
	}
	if out.Fines[2] != out.FineMagnitude {
		t.Errorf("false accuser fined %v, want %v", out.Fines[2], out.FineMagnitude)
	}
	for _, i := range []int{0, 1, 3} {
		if out.Fines[i] != 0 {
			t.Errorf("innocent P%d fined %v", i+1, out.Fines[i])
		}
	}
}

func TestOverShippingOriginatorFined(t *testing.T) {
	// NCP-FE: originator is P1 (index 0).
	cfg := withBehavior(honestConfig(dlt.NCPFE), 0, agent.OverShipper)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "allocating" {
		t.Fatalf("run not terminated in allocating: completed=%v in=%q", out.Completed, out.TerminatedIn)
	}
	if out.Fines[0] != out.FineMagnitude {
		t.Errorf("originator fined %v, want %v", out.Fines[0], out.FineMagnitude)
	}
}

func TestShortShippingRemediatedWithoutFine(t *testing.T) {
	// A cooperative short-shipper is remediated through the referee and
	// the run completes with nobody fined (cases (i) of Section 4 with a
	// compliant mediation).
	cfg := withBehavior(honestConfig(dlt.NCPFE), 0, agent.ShortShipper)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("remediated run terminated in %s", out.TerminatedIn)
	}
	for i, f := range out.Fines {
		if f != 0 {
			t.Errorf("P%d fined %v after successful mediation", i+1, f)
		}
	}
	// The mediation verdict is on record.
	found := false
	for _, v := range out.Verdicts {
		if v.Phase == "allocating" && v.Clean() {
			found = true
		}
	}
	if !found {
		t.Error("no clean mediation verdict recorded")
	}
}

func TestMediationRefuserFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 0, agent.Refuser)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "allocating" {
		t.Fatal("refusing originator did not terminate the run")
	}
	if out.Fines[0] != out.FineMagnitude {
		t.Errorf("refuser fined %v, want %v", out.Fines[0], out.FineMagnitude)
	}
}

func TestBlockTampererFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 0, agent.BlockTamperer)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("block tamperer run completed")
	}
	if out.Fines[0] != out.FineMagnitude {
		t.Errorf("tamperer fined %v, want %v", out.Fines[0], out.FineMagnitude)
	}
}

func TestFalseShortageClaimantFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 2, agent.FalseClaimant)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "allocating" {
		t.Fatal("false claimant did not terminate the run")
	}
	if out.Fines[2] != out.FineMagnitude {
		t.Errorf("claimant fined %v, want %v", out.Fines[2], out.FineMagnitude)
	}
	if out.Fines[0] != 0 {
		t.Errorf("innocent originator fined %v", out.Fines[0])
	}
}

func TestFalseExcessClaimantFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 1, agent.ExcessClaimer)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "allocating" {
		t.Fatal("false excess claimant did not terminate the run")
	}
	if out.Fines[1] != out.FineMagnitude {
		t.Errorf("claimant fined %v, want %v", out.Fines[1], out.FineMagnitude)
	}
	if out.Fines[0] != 0 {
		t.Errorf("innocent originator fined %v", out.Fines[0])
	}
}

func TestWorkCompensationOnLateTermination(t *testing.T) {
	// The false claimant sits at index 3 (last recipient in NCP-FE), so
	// recipients P2, P3 received their loads earlier and the originator
	// computes from time zero: all three must be compensated α_j·w̃_j out
	// of the fine pool.
	cfg := withBehavior(honestConfig(dlt.NCPFE), 3, agent.FalseClaimant)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("run completed despite false claim")
	}
	alloc, err := dlt.Optimal(dlt.Instance{Network: dlt.NCPFE, Z: cfg.Z, W: cfg.TrueW})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} {
		minWork := alloc[i] * cfg.TrueW[i]
		if out.Rewards[i] < minWork-tol {
			t.Errorf("P%d reward %v below commenced-work compensation %v", i+1, out.Rewards[i], minWork)
		}
	}
}

func TestPaymentCheatFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 1, agent.PaymentCheat)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Payment-phase fines do not terminate the run.
	if !out.Completed {
		t.Fatalf("payment-cheat run terminated in %s", out.TerminatedIn)
	}
	if out.Fines[1] != out.FineMagnitude {
		t.Errorf("cheat fined %v, want %v", out.Fines[1], out.FineMagnitude)
	}
	// The forwarded payments are the recomputed truth.
	mech := core.Mechanism{Network: dlt.NCPFE, Z: cfg.Z}
	want, err := mech.Run(cfg.TrueW, core.TruthfulExec(cfg.TrueW))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Payment {
		if relErr(out.Payments[i], want.Payment[i]) > tol {
			t.Errorf("Q[%d]=%v, want %v", i, out.Payments[i], want.Payment[i])
		}
	}
	// The cheat's utility is far below its honest utility.
	if out.Utilities[1] >= want.Utility[1] {
		t.Errorf("cheat utility %v not below honest %v", out.Utilities[1], want.Utility[1])
	}
	// The innocent majority splits the fine: xF/(m−x) each on top of
	// their payments.
	share := out.FineMagnitude / 3
	for _, i := range []int{0, 2, 3} {
		if relErr(out.Rewards[i], share) > tol {
			t.Errorf("P%d reward %v, want %v", i+1, out.Rewards[i], share)
		}
	}
}

func TestPaymentEquivocatorFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 3, agent.PaymentLiar)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("payment equivocation terminated the run")
	}
	if out.Fines[3] != out.FineMagnitude {
		t.Errorf("payment equivocator fined %v, want %v", out.Fines[3], out.FineMagnitude)
	}
}

func TestVectorTampererFined(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 2, agent.VectorTamper)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "allocating" {
		t.Fatal("vector tamperer did not terminate the run")
	}
	if out.Fines[2] != out.FineMagnitude {
		t.Errorf("tamperer fined %v, want %v", out.Fines[2], out.FineMagnitude)
	}
}

// TestMisreportingAbsorbedWithoutFines: over/under-bidding and slacking
// are lies the mechanism handles economically — no referee involvement,
// run completes, and the liar ends up no better than honest (Theorem 5.2
// through the full protocol).
func TestMisreportingAbsorbedWithoutFines(t *testing.T) {
	base, err := Run(honestConfig(dlt.NCPFE))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []agent.Behavior{agent.OverBid, agent.UnderBid, agent.SlowExecution} {
		cfg := withBehavior(honestConfig(dlt.NCPFE), 1, b)
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !out.Completed {
			t.Fatalf("%s: run terminated in %s", b.Name, out.TerminatedIn)
		}
		for i, f := range out.Fines {
			if f != 0 {
				t.Errorf("%s: P%d fined %v for a non-protocol deviation", b.Name, i+1, f)
			}
		}
		if out.Utilities[1] > base.Utilities[1]+tol {
			t.Errorf("%s: liar utility %v beats honest %v", b.Name, out.Utilities[1], base.Utilities[1])
		}
	}
}

// TestUnderbidderExecutesAtTrueSpeed: an underbidder physically cannot
// meet its bid; the meter exposes w̃ = w > b and the bonus shrinks.
func TestUnderbidderMeterExposure(t *testing.T) {
	cfg := withBehavior(honestConfig(dlt.NCPFE), 1, agent.UnderBid)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(out.Exec[1], cfg.TrueW[1]) > tol {
		t.Errorf("underbidder executed at %v, physical floor is %v", out.Exec[1], cfg.TrueW[1])
	}
	if out.Exec[1] <= out.Bids[1] {
		t.Error("meter did not expose the underbid")
	}
}

func TestLedgerConservation(t *testing.T) {
	for _, b := range append([]agent.Behavior{agent.Honest}, agent.DeviantCatalog...) {
		idx := 1
		if b.MisallocateExtraBlocks != 0 || b.TamperBlocks || b.RefuseMediation {
			idx = 0 // originator-only behaviors
		}
		cfg := withBehavior(honestConfig(dlt.NCPFE), idx, b)
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		// Σ processor balances + user balance = 0 (referee escrow always
		// drains): money in = money out.
		var procNet float64
		for i := range out.Procs {
			procNet += out.Utilities[i] + out.WorkCost[i] // = balance
		}
		if math.Abs(procNet-out.UserCost) > 1e-6 {
			t.Errorf("%s: processors net %v, user paid %v", b.Name, procNet, out.UserCost)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ok := honestConfig(dlt.NCPFE)
	bad := []Config{
		{Network: dlt.CP, Z: ok.Z, TrueW: ok.TrueW},
		{Network: dlt.NCPFE, Z: ok.Z, TrueW: []float64{1}},
		{Network: dlt.NCPFE, Z: -1, TrueW: ok.TrueW},
		{Network: dlt.NCPFE, Z: ok.Z, TrueW: []float64{1, 0}},
		{Network: dlt.NCPFE, Z: ok.Z, TrueW: ok.TrueW, Fine: -1},
		{Network: dlt.NCPFE, Z: ok.Z, TrueW: ok.TrueW, NBlocks: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestExplicitFineTooSmallSurfaces(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	cfg.Fine = 1e-6 // violates F ≥ Σ α_j·w̃_j
	if _, err := Run(cfg); err == nil {
		t.Error("insufficient fine accepted silently")
	}
}

func TestNCPNFEOriginatorDeviations(t *testing.T) {
	// In NCP-NFE the originator is the LAST processor.
	m := 4
	cfg := honestConfig(dlt.NCPNFE)
	bs := make([]agent.Behavior, m)
	bs[m-1] = agent.OverShipper
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("NFE over-shipper run completed")
	}
	if out.Fines[m-1] != out.FineMagnitude {
		t.Errorf("NFE originator fined %v, want %v", out.Fines[m-1], out.FineMagnitude)
	}
}

func TestOutcomeTranscriptVerifies(t *testing.T) {
	for _, b := range []agent.Behavior{agent.Honest, agent.Equivocator, agent.PaymentCheat} {
		cfg := withBehavior(honestConfig(dlt.NCPFE), 1, b)
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(out.Transcript) == 0 {
			t.Fatalf("%s: empty transcript", b.Name)
		}
		if err := referee.VerifyEntries(out.Transcript); err != nil {
			t.Errorf("%s: transcript failed verification: %v", b.Name, err)
		}
		// A deviant run must contain a guilty verdict record.
		if b.Deviant() {
			found := false
			for _, e := range out.Transcript {
				if e.Action == "verdict" && len(e.Guilty) > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: no guilty verdict in transcript", b.Name)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(honestConfig(dlt.NCPFE))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(honestConfig(dlt.NCPFE))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.UserCost != b.UserCost {
		t.Error("identical configs produced different outcomes")
	}
	for i := range a.Payments {
		if a.Payments[i] != b.Payments[i] {
			t.Error("payments differ between identical runs")
		}
	}
}
