package protocol

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dlsbl/internal/adversarytest"
	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/referee"
)

// Byzantine adversary tiers, end to end. Every adversary in this file is
// a deterministic, seeded model from internal/adversarytest, so each
// test pins one concrete attack and the exact defensive outcome:
// targeted message faults (tier 1) heal by bid relay or evict only under
// ≥⌈m/2⌉ corroboration, framing (tier 2) convicts the framer and never
// the rival, crashes (tier 3) re-allocate over the survivors, and the
// standby referee adjudicates a round whose primary died mid-flight.

func recordKinds(rec *obs.Recorder, kind string) []obs.Record {
	var out []obs.Record
	for _, r := range rec.Records() {
		if r.Type == "event" && r.Name == kind {
			out = append(out, r)
		}
	}
	return out
}

// TestTargetedFaultPaymentsParity is the satellite-1 property: across
// randomized per-pair attack plans and randomized deviant behaviors, any
// run the targeted plan does NOT manage to evict from settles bit-
// identically to the same configuration on a clean bus — the witness
// mediation and relay machinery is economically invisible. Runs where
// the plan does align enough witnesses must still complete, and may only
// evict for corroborated or wholesale unreachability.
func TestTargetedFaultPaymentsParity(t *testing.T) {
	behaviors := []agent.Behavior{
		agent.Honest, agent.OverBid, agent.UnderBid, agent.SlowExecution, agent.Framer,
	}
	rng := rand.New(rand.NewSource(90210))
	const m = 4
	var parityRuns, evictRuns int
	for iter := 0; iter < 12; iter++ {
		seed := rng.Int63()
		deviant := rng.Intn(m)
		b := behaviors[rng.Intn(len(behaviors))]
		plan := adversarytest.RandomPairs(seed, m, 1+rng.Intn(3), 1)
		t.Run(fmt.Sprintf("iter%d_%s_P%d", iter, b.Name, deviant+1), func(t *testing.T) {
			cfg := withBehavior(honestConfig(dlt.NCPFE), deviant, b)
			want, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = plan
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Evictions) > 0 {
				evictRuns++
				if !got.Completed {
					t.Fatalf("run under plan %+v terminated in %s", plan.Pairs, got.TerminatedIn)
				}
				for _, ev := range got.Evictions {
					if !strings.Contains(ev.Reason, "corroborate") &&
						!strings.Contains(ev.Reason, "within the retry budget") {
						t.Errorf("eviction of %s without corroboration or wholesale failure: %q",
							ev.Proc, ev.Reason)
					}
				}
				return
			}
			parityRuns++
			if got.Completed != want.Completed || got.TerminatedIn != want.TerminatedIn {
				t.Fatalf("completion diverges: faulty (%v, %q) vs clean (%v, %q)",
					got.Completed, got.TerminatedIn, want.Completed, want.TerminatedIn)
			}
			for _, cmp := range []struct {
				name       string
				got, wantV []float64
			}{
				{"payments", got.Payments, want.Payments},
				{"fines", got.Fines, want.Fines},
				{"utilities", got.Utilities, want.Utilities},
			} {
				if !reflect.DeepEqual(cmp.got, cmp.wantV) {
					t.Errorf("%s diverge under a non-evicting plan: %v vs %v",
						cmp.name, cmp.got, cmp.wantV)
				}
			}
			if got.UserCost != want.UserCost {
				t.Errorf("user cost %v under faults, %v clean", got.UserCost, want.UserCost)
			}
		})
	}
	if parityRuns == 0 || evictRuns == 0 {
		t.Fatalf("property vacuous: %d parity runs, %d evicting runs — retune seeds",
			parityRuns, evictRuns)
	}
}

// TestCorroboratedEvictionThreshold pins the tier-1 eviction rule at the
// boundary: blackholing a sender's bid to exactly ⌈m/2⌉ receivers evicts
// it (that many distinct witnesses cannot be manufactured), while one
// receiver fewer stays below threshold — the referee relays the bid, the
// round heals, and the economics match the clean run bit-for-bit.
func TestCorroboratedEvictionThreshold(t *testing.T) {
	const m = 4
	if thresh := referee.CorroborationThreshold(m); thresh != 2 {
		t.Fatalf("threshold for m=4 is %d, the cases below assume 2", thresh)
	}

	t.Run("at-threshold-evicts", func(t *testing.T) {
		rec := obs.NewRecorder()
		cfg := honestConfig(dlt.NCPFE)
		cfg.Tracer = rec
		cfg.Faults = adversarytest.Blackhole(1, "P3",
			"P1", "P2") // thresh receivers miss P3's bid
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed {
			t.Fatalf("survivors did not complete: terminated in %s", out.TerminatedIn)
		}
		if len(out.Evictions) != 1 || out.Evictions[0].Proc != "P3" {
			t.Fatalf("evictions = %+v, want exactly P3", out.Evictions)
		}
		if !strings.Contains(out.Evictions[0].Reason, "corroborate") {
			t.Errorf("eviction reason %q does not cite corroboration", out.Evictions[0].Reason)
		}
		if !out.Evicted[2] || out.Payments[2] != 0 {
			t.Errorf("evicted P3 still paid: evicted=%v payment=%v", out.Evicted[2], out.Payments[2])
		}
		for _, i := range []int{0, 1, 3} {
			if out.Payments[i] <= 0 {
				t.Errorf("survivor P%d unpaid: %v", i+1, out.Payments[i])
			}
		}
		// Corroborated evictions never reach the relay loop, so the tally
		// emits one witness_report per corroborating witness (exactly the
		// threshold here) — and no framer-style conviction either.
		if got := len(recordKinds(rec, obs.EvWitnessReport)); got != 2 {
			t.Errorf("%d witness_report events, want threshold 2", got)
		}
		if got := len(recordKinds(rec, obs.EvFramingConviction)); got != 0 {
			t.Errorf("%d framing_conviction events on a genuine outage", got)
		}
		if err := referee.VerifyEntries(out.Transcript); err != nil {
			t.Fatalf("transcript after eviction does not verify: %v", err)
		}
	})

	t.Run("below-threshold-heals", func(t *testing.T) {
		want := faultFreeReference(t, dlt.NCPFE)
		rec := obs.NewRecorder()
		cfg := honestConfig(dlt.NCPFE)
		cfg.Tracer = rec
		cfg.Faults = adversarytest.Blackhole(1, "P3", "P1") // one witness short
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed || len(out.Evictions) != 0 {
			t.Fatalf("lone witness must heal by relay, got evictions %+v", out.Evictions)
		}
		assertSamePayments(t, out, want)
		if got := len(recordKinds(rec, obs.EvWitnessReport)); got != 1 {
			t.Errorf("%d witness_report events, want 1", got)
		}
		if got := len(recordKinds(rec, obs.EvFramingConviction)); got != 0 {
			t.Errorf("honest witness convicted: %d framing_conviction events", got)
		}
	})

	t.Run("isolated-pair-heals", func(t *testing.T) {
		want := faultFreeReference(t, dlt.NCPFE)
		cfg := honestConfig(dlt.NCPFE)
		cfg.Faults = adversarytest.IsolatePair(3, "P1", "P4")
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed || len(out.Evictions) != 0 {
			t.Fatalf("pair partition must heal by relay, got evictions %+v", out.Evictions)
		}
		assertSamePayments(t, out, want)
	})
}

// TestFramingSuite is the satellite-3 regression suite: for every pool
// size m ∈ {3..16}, a strategic processor that fabricates an
// unreachability report against its rival never gets the rival evicted
// (one witness is always below ⌈m/2⌉), is always convicted when it
// maintains the claim against the referee's verified relay, and the
// conviction never terminates the round.
func TestFramingSuite(t *testing.T) {
	for m := 3; m <= 16; m++ {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			attacker := m / 2 // vary the seat with the pool size
			rival := adversarytest.FramingRival(m, attacker)
			w := make([]float64, m)
			for i := range w {
				w[i] = 1 + 0.5*float64(i)
			}
			rec := obs.NewRecorder()
			cfg := Config{
				Network:   dlt.NCPFE,
				Z:         0.2,
				TrueW:     w,
				Seed:      int64(1000 + m),
				Behaviors: adversarytest.Framing(m, attacker),
				Tracer:    rec,
			}
			out, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Completed {
				t.Fatalf("framing terminated the round in %s", out.TerminatedIn)
			}
			if len(out.Evictions) != 0 {
				t.Fatalf("framing caused evictions: %+v", out.Evictions)
			}
			if out.Evicted[rival] {
				t.Fatalf("rival P%d evicted on a single fabricated report", rival+1)
			}
			if out.Fines[attacker] <= 0 {
				t.Errorf("framer P%d not fined: %v", attacker+1, out.Fines[attacker])
			}
			for i := range w {
				if i != attacker && out.Fines[i] != 0 {
					t.Errorf("honest P%d fined %v", i+1, out.Fines[i])
				}
			}
			convictions := recordKinds(rec, obs.EvFramingConviction)
			if len(convictions) != 1 {
				t.Fatalf("%d framing_conviction events, want 1", len(convictions))
			}
			if convictions[0].From != adversarytest.ProcID(attacker) {
				t.Errorf("conviction names %s, want %s",
					convictions[0].From, adversarytest.ProcID(attacker))
			}
			if err := referee.VerifyEntries(out.Transcript); err != nil {
				t.Fatalf("transcript does not verify: %v", err)
			}
		})
	}
}

// TestRefereeFailover kills the primary referee at the start of each
// later phase and promotes the replicated standby. The promoted referee
// must finish the round with verdicts, payments and user cost
// bit-identical to the uninterrupted run; the transcript differs by
// exactly the audited failover entry and still verifies.
func TestRefereeFailover(t *testing.T) {
	want := faultFreeReference(t, dlt.NCPFE)
	for _, phase := range []string{obs.PhaseAllocating, obs.PhaseProcessing, obs.PhasePayments} {
		t.Run(phase, func(t *testing.T) {
			rec := obs.NewRecorder()
			cfg := honestConfig(dlt.NCPFE)
			cfg.Standby = true
			cfg.FailoverIn = phase
			cfg.Tracer = rec
			out, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Completed {
				t.Fatalf("failed-over run terminated in %s", out.TerminatedIn)
			}
			assertSamePayments(t, out, want)
			if !reflect.DeepEqual(out.Verdicts, want.Verdicts) {
				t.Errorf("verdicts diverge:\n standby: %+v\n primary: %+v", out.Verdicts, want.Verdicts)
			}
			if !reflect.DeepEqual(out.Utilities, want.Utilities) {
				t.Errorf("utilities diverge: %v vs %v", out.Utilities, want.Utilities)
			}
			var failovers int
			for _, e := range out.Transcript {
				if e.Action == "failover" {
					failovers++
				}
			}
			if failovers != 1 {
				t.Errorf("%d failover transcript entries, want 1", failovers)
			}
			if len(out.Transcript) != len(want.Transcript)+1 {
				t.Errorf("transcript length %d, want %d (+1 failover entry)",
					len(out.Transcript), len(want.Transcript))
			}
			if err := referee.VerifyEntries(out.Transcript); err != nil {
				t.Fatalf("failed-over transcript does not verify: %v", err)
			}
			if got := len(recordKinds(rec, obs.EvRefereeFailover)); got != 1 {
				t.Errorf("%d referee_failover events, want 1", got)
			}
		})
	}
}

// TestStandbyReplicationInvisible: a standby that never gets promoted
// must not perturb the round — same payments, same transcript.
func TestStandbyReplicationInvisible(t *testing.T) {
	want := faultFreeReference(t, dlt.NCPFE)
	cfg := honestConfig(dlt.NCPFE)
	cfg.Standby = true
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("run with idle standby terminated in %s", out.TerminatedIn)
	}
	assertSamePayments(t, out, want)
	if !reflect.DeepEqual(out.Transcript, want.Transcript) {
		t.Error("idle standby changed the audit transcript")
	}
}

// TestCrashRecoveryWholeLoad is the tier-3 whole-load case: a processor
// that fail-stops at the start of Processing Load is evicted, the
// survivors re-solve the allocation (Theorem 2.2: any subset is still
// optimal) and finish the round; the dead processor earns nothing.
func TestCrashRecoveryWholeLoad(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := honestConfig(dlt.NCPFE)
	cfg.Tracer = rec
	cfg.Faults = adversarytest.CrashPlan(5, 0, "P2")
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivors did not complete: terminated in %s", out.TerminatedIn)
	}
	if len(out.Evictions) != 1 || out.Evictions[0].Proc != "P2" ||
		out.Evictions[0].Phase != obs.PhaseProcessing {
		t.Fatalf("evictions = %+v, want P2 in processing", out.Evictions)
	}
	if !out.Evicted[1] || out.Payments[1] != 0 || out.Utilities[1] != 0 {
		t.Errorf("crashed P2 still credited: evicted=%v payment=%v utility=%v",
			out.Evicted[1], out.Payments[1], out.Utilities[1])
	}
	for _, i := range []int{0, 2, 3} {
		if out.Payments[i] <= 0 {
			t.Errorf("survivor P%d unpaid: %v", i+1, out.Payments[i])
		}
	}
	if got := len(recordKinds(rec, obs.EvCheckpointResume)); got != 1 {
		t.Errorf("%d checkpoint_resume events, want 1", got)
	}
	if err := referee.VerifyEntries(out.Transcript); err != nil {
		t.Fatalf("transcript after crash recovery does not verify: %v", err)
	}
}

// TestCrashAndFailoverCompose: the composite adversary — a crash during
// Processing Load while the round is ALSO failing over to the standby —
// still completes, because the promoted referee replays the same
// eviction/re-allocation logic the primary would have.
func TestCrashAndFailoverCompose(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	cfg.Standby = true
	cfg.FailoverIn = obs.PhaseProcessing
	cfg.Faults = adversarytest.CrashPlan(5, 0, "P2")
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("composite adversary run terminated in %s", out.TerminatedIn)
	}
	if len(out.Evictions) != 1 || out.Evictions[0].Proc != "P2" {
		t.Fatalf("evictions = %+v, want exactly P2", out.Evictions)
	}
	if err := referee.VerifyEntries(out.Transcript); err != nil {
		t.Fatalf("transcript does not verify: %v", err)
	}
}
