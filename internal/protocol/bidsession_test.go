package protocol

import (
	"reflect"
	"strings"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/referee"
)

func sessionBase(t *testing.T, w ...float64) *BidSession {
	t.Helper()
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBidSessionAmortizesBidding is the tentpole's core contract: after
// the first round, rounds are served from the cached bid set — the Θ(m²)
// bid exchange disappears from the bus (deliveries drop to Θ(m)), the
// round IDs stay distinct, the audit transcript records the reuse, and
// the payments are bit-identical to standalone per-job bidding.
func TestBidSessionAmortizesBidding(t *testing.T) {
	w := []float64{3, 2, 4, 5}
	s := sessionBase(t, w...)
	job := JobConfig{Seed: 7, NBlocks: 64}

	standalone, err := Run(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w, Seed: 7, NBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}

	var outs []*Outcome
	for k := 0; k < 4; k++ {
		out, err := s.Run(job)
		if err != nil {
			t.Fatalf("round %d: %v", k+1, err)
		}
		if !out.Completed {
			t.Fatalf("round %d did not complete", k+1)
		}
		outs = append(outs, out)
	}

	if outs[0].BidReused {
		t.Fatal("first round cannot reuse bids")
	}
	for k, out := range outs[1:] {
		if !out.BidReused {
			t.Fatalf("round %d re-bid although nothing changed", k+2)
		}
	}

	// Distinct, session-salted round IDs.
	seen := map[string]bool{}
	for _, out := range outs {
		if out.RoundID == "" || seen[out.RoundID] {
			t.Fatalf("round ID %q missing or repeated", out.RoundID)
		}
		seen[out.RoundID] = true
	}

	// Economics are identical whether the bids are fresh or cached.
	for k, out := range outs {
		if !reflect.DeepEqual(out.Bids, standalone.Bids) ||
			!reflect.DeepEqual(out.Alloc, standalone.Alloc) ||
			!reflect.DeepEqual(out.Payments, standalone.Payments) ||
			!reflect.DeepEqual(out.Utilities, standalone.Utilities) ||
			out.UserCost != standalone.UserCost {
			t.Fatalf("round %d economics diverge from standalone run", k+1)
		}
	}

	// Traffic: a bidding round pays m·m receiver-side deliveries for the
	// bid exchange; a reuse round only carries the meters broadcast and
	// the payment submissions — Θ(m).
	m := len(w)
	bidRound, reuseRound := outs[0].BusStats.Deliveries, outs[1].BusStats.Deliveries
	if bidRound-reuseRound != m*m {
		t.Fatalf("bidding round deliveries %d − reuse round deliveries %d = %d, want m²=%d",
			bidRound, reuseRound, bidRound-reuseRound, m*m)
	}

	// The referee's transcript makes the reuse auditable.
	found := false
	for _, e := range outs[2].Transcript {
		if e.Action == "bid-reuse" {
			found = true
			if e.Round != outs[2].RoundID {
				t.Fatalf("bid-reuse entry stamped %q, round is %q", e.Round, outs[2].RoundID)
			}
			if !strings.Contains(e.Detail, outs[0].RoundID) {
				t.Fatalf("bid-reuse entry %q does not name the bid epoch %q", e.Detail, outs[0].RoundID)
			}
		}
	}
	if !found {
		t.Fatal("reuse round transcript has no bid-reuse entry")
	}
	if err := referee.VerifyEntries(outs[2].Transcript); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Rounds != 4 || st.Rebids != 1 || st.RoundsSinceRebid != 3 {
		t.Fatalf("stats = %+v, want 4 rounds, 1 rebid, 3 since", st)
	}
	if st.SavedDeliveries != 3*m*m {
		t.Fatalf("SavedDeliveries = %d, want 3·m² = %d", st.SavedDeliveries, 3*m*m)
	}
	if st.BidEpoch != outs[0].RoundID {
		t.Fatalf("BidEpoch = %q, want %q", st.BidEpoch, outs[0].RoundID)
	}
}

// TestBidSessionRebidTriggers pins every reuse-vs-rebid decision: rate
// changes, membership changes and bid-affecting behavior changes re-bid;
// no-op announcements and payment-only behavior changes do not.
func TestBidSessionRebidTriggers(t *testing.T) {
	s := sessionBase(t, 3, 2, 4)
	job := JobConfig{Seed: 3, NBlocks: 48}
	mustRun := func(wantReuse bool, what string) *Outcome {
		t.Helper()
		out, err := s.Run(job)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if out.BidReused != wantReuse {
			t.Fatalf("%s: BidReused = %v, want %v", what, out.BidReused, wantReuse)
		}
		return out
	}

	mustRun(false, "first round")
	mustRun(true, "steady state")

	// Announcing the CURRENT rate is not a change.
	if err := s.AnnounceRate(1, 2); err != nil {
		t.Fatal(err)
	}
	mustRun(true, "same-rate announcement")

	// A real rate change re-bids once, then reuse resumes.
	if err := s.AnnounceRate(1, 2.5); err != nil {
		t.Fatal(err)
	}
	mustRun(false, "rate change")
	mustRun(true, "after rate change")

	// A join re-bids with the larger pool.
	idx, err := s.Join(6)
	if err != nil {
		t.Fatal(err)
	}
	out := mustRun(false, "join")
	if !out.Participated[idx] {
		t.Fatalf("joined member P%d did not participate", idx+1)
	}
	mustRun(true, "after join")

	// A leave re-bids without the departed member.
	if err := s.Leave(1); err != nil {
		t.Fatal(err)
	}
	out = mustRun(false, "leave")
	if out.Participated[1] {
		t.Fatal("departed member still participates")
	}
	mustRun(true, "after leave")

	// A payment-phase deviation does not touch the bids: no rebid.
	job.Behaviors = make([]agent.Behavior, 3)
	job.Behaviors[2] = agent.PaymentCheat
	out = mustRun(true, "payment-only behavior change")
	if len(out.Verdicts) == 0 || out.Verdicts[len(out.Verdicts)-1].Clean() {
		t.Fatal("payment cheat was not fined in the reuse round")
	}

	// A bid-affecting behavior change re-bids.
	job.Behaviors[2] = agent.OverBid
	mustRun(false, "bid factor change")
}

// TestBidSessionMembershipRules pins the member-management invariants.
func TestBidSessionMembershipRules(t *testing.T) {
	s := sessionBase(t, 3, 2, 4)
	if err := s.Leave(0); err == nil {
		t.Fatal("NCP-FE load originator allowed to leave")
	}
	if err := s.Leave(7); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
	if err := s.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(1); err == nil {
		t.Fatal("double leave accepted")
	}
	if err := s.Leave(2); err == nil {
		t.Fatal("leave below two members accepted")
	}
	if err := s.AnnounceRate(1, 5); err == nil {
		t.Fatal("rate announcement from departed member accepted")
	}
	if _, err := s.Join(-1); err == nil {
		t.Fatal("invalid join rate accepted")
	}
	got := s.Members()
	want := []Member{{Index: 0, ID: "P1", W: 3}, {Index: 2, ID: "P3", W: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Members() = %+v, want %+v", got, want)
	}

	// NCP-NFE pins the highest index as originator.
	nfe, err := NewBidSession(Config{Network: dlt.NCPNFE, Z: 0.2, TrueW: []float64{3, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nfe.Leave(2); err == nil {
		t.Fatal("NCP-NFE load originator allowed to leave")
	}

	// Per-job fields are rejected in the session config.
	if _, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 2}, Seed: 9}); err == nil {
		t.Fatal("per-job Seed accepted in session config")
	}
}

// TestBidSessionEvictionForcesFreshMemberSet: a member evicted for
// unreachability during a bidding round is gone for good — the captured
// cache holds the survivors, later rounds reuse it without the evictee,
// and no round is ever served with the stale pre-eviction member set.
func TestBidSessionEvictionForcesFreshMemberSet(t *testing.T) {
	s := sessionBase(t, 3, 2, 4, 5)
	faulty := JobConfig{Seed: 5, NBlocks: 64,
		Faults: &bus.FaultPlan{Seed: 1, Unresponsive: []string{"P3"}}}
	out, err := s.Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if out.BidReused || !out.Evicted[2] {
		t.Fatalf("round 1: BidReused=%v Evicted=%v, want fresh bidding and P3 evicted", out.BidReused, out.Evicted)
	}
	// Clean follow-up round: reuse, survivors only.
	out2, err := s.Run(JobConfig{Seed: 6, NBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.BidReused {
		t.Fatal("round 2 re-bid although the survivor set is unchanged")
	}
	if out2.Participated[2] || out2.Bids[2] != 0 {
		t.Fatal("evicted member served in a later round (stale member set)")
	}
	if got := len(s.Members()); got != 3 {
		t.Fatalf("%d members after eviction, want 3", got)
	}
}

// TestBidSessionTerminatedBiddingKeepsOldCache: a rebid round that
// terminates during Bidding (equivocation conviction) establishes no new
// epoch; when the pool reverts to the cached profile, the session resumes
// serving from the ORIGINAL epoch rather than re-bidding.
func TestBidSessionTerminatedBiddingKeepsOldCache(t *testing.T) {
	s := sessionBase(t, 3, 2, 4)
	job := JobConfig{Seed: 11, NBlocks: 48}
	out, err := s.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	epoch := out.RoundID

	cheat := job
	cheat.Behaviors = []agent.Behavior{{}, agent.Equivocator, {}}
	out2, err := s.Run(cheat)
	if err != nil {
		t.Fatal(err)
	}
	if out2.BidReused || out2.Completed || out2.TerminatedIn != "bidding" {
		t.Fatalf("equivocation round: reused=%v completed=%v in=%q, want fresh terminated bidding",
			out2.BidReused, out2.Completed, out2.TerminatedIn)
	}
	if len(out2.Verdicts) == 0 || out2.Verdicts[0].Guilty[0] != "P2" {
		t.Fatalf("equivocator not convicted: %+v", out2.Verdicts)
	}

	out3, err := s.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !out3.BidReused {
		t.Fatal("session re-bid although the terminated round left the old cache valid")
	}
	if st := s.Stats(); st.BidEpoch != epoch {
		t.Fatalf("serving from epoch %q, want the original %q", st.BidEpoch, epoch)
	}
}
