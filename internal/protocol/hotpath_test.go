package protocol

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// TestHotPathParityProperty is the fast-path soundness property: for
// random pools, random per-job behaviors (bid-space deviants, slack
// execution, payment cheats — and occasionally bidding-phase deviants
// that terminate the round), random fault plans and random mid-stream
// rate changes, a session on the legacy path (JSON codec, memoization
// disabled) and a session on the hot path (binary codec, verified-envelope
// memo) produce bit-identical Outcomes — payments, fines, utilities,
// verdicts, transcript hashes, traffic counters, everything. The fast
// path changes how bytes are encoded and which verifications are
// *re*-performed, never what is accepted or paid.
func TestHotPathParityProperty(t *testing.T) {
	const iterations = 20
	const jobsPerPool = 5
	for it := 0; it < iterations; it++ {
		it := it
		t.Run(fmt.Sprintf("pool%02d", it), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(9000 + it)))
			m := 2 + rng.Intn(5)
			w := make([]float64, m)
			for i := range w {
				w[i] = 0.5 + 4*rng.Float64()
			}
			network := dlt.NCPFE
			if rng.Intn(2) == 1 {
				network = dlt.NCPNFE
			}
			z := 0.05 + rng.Float64()/2

			cold, err := NewBidSession(Config{
				Network: network, Z: z, TrueW: w,
				Codec: sig.CodecJSON, Memo: sig.DisabledVerifyMemo(),
			})
			if err != nil {
				t.Fatal(err)
			}
			hot, err := NewBidSession(Config{
				Network: network, Z: z, TrueW: w,
				Codec: sig.CodecBinary, // Memo defaults to an enabled one
			})
			if err != nil {
				t.Fatal(err)
			}

			behaviors := make([]agent.Behavior, m)
			roll := func() {
				for i := range behaviors {
					switch rng.Intn(8) {
					case 0:
						behaviors[i] = agent.OverBid
					case 1:
						behaviors[i] = agent.UnderBid
					case 2:
						behaviors[i] = agent.SlowExecution
					case 3:
						behaviors[i] = agent.PaymentCheat
					case 4:
						behaviors[i] = agent.Equivocator
					default:
						behaviors[i] = agent.Behavior{}
					}
				}
			}
			roll()

			for j := 0; j < jobsPerPool; j++ {
				// Occasionally mutate the stream the way a live pool does:
				// new behaviors (forces a full rebid in both arms) or a
				// single rate change (runs the incremental splice path in
				// both arms).
				switch rng.Intn(4) {
				case 0:
					roll()
				case 1:
					i := rng.Intn(m)
					nw := 0.5 + 4*rng.Float64()
					if err := cold.AnnounceRate(i, nw); err != nil {
						t.Fatal(err)
					}
					if err := hot.AnnounceRate(i, nw); err != nil {
						t.Fatal(err)
					}
				}
				job := JobConfig{
					Seed:      rng.Int63n(1 << 30),
					NBlocks:   32 * m,
					BlockSize: 16,
					Behaviors: append([]agent.Behavior(nil), behaviors...),
				}
				if rng.Intn(4) > 0 {
					job.Faults = &bus.FaultPlan{
						Seed:      rng.Int63n(1 << 30),
						Drop:      rng.Float64() * 0.15,
						Duplicate: rng.Float64() * 0.2,
						Delay:     rng.Float64() * 0.3,
						Reorder:   rng.Float64() * 0.2,
						Corrupt:   rng.Float64() * 0.05,
					}
				}

				coldOut, coldErr := cold.Run(job)
				hotOut, hotErr := hot.Run(job)
				if (coldErr == nil) != (hotErr == nil) {
					t.Fatalf("job %d: cold err %v, hot err %v", j, coldErr, hotErr)
				}
				if coldErr != nil {
					if coldErr.Error() != hotErr.Error() {
						t.Fatalf("job %d: errors diverge\ncold %v\n hot %v", j, coldErr, hotErr)
					}
					continue
				}
				if !reflect.DeepEqual(coldOut, hotOut) {
					t.Fatalf("job %d: hot-path outcome diverges from legacy path\ncold %+v\n hot %+v", j, coldOut, hotOut)
				}
			}
			if cs, hs := cold.Stats(), hot.Stats(); cs != hs {
				t.Fatalf("session stats diverge: cold %+v, hot %+v", cs, hs)
			}
		})
	}
}

// econView extracts the economic payload of an outcome for comparison
// against an independent protocol.Run (which has no session fields like
// RoundID or BidSpliced).
type econView struct {
	Bids, Exec, Phi, Payments, Fines, Rewards, Utilities, WorkCost []float64
	Alloc                                                          dlt.Allocation
	UserCost, Makespan, Fine                                       float64
	Completed                                                      bool
}

func econOf(o *Outcome) econView {
	return econView{
		Bids: o.Bids, Exec: o.Exec, Phi: o.Phi, Payments: o.Payments,
		Fines: o.Fines, Rewards: o.Rewards, Utilities: o.Utilities,
		WorkCost: o.WorkCost, Alloc: o.Alloc, UserCost: o.UserCost,
		Makespan: o.Makespan, Fine: o.FineMagnitude, Completed: o.Completed,
	}
}

// runSpliceRound runs one session job under a recorder and asserts it was
// served by the incremental re-bid path: BidSpliced set, BidReused clear,
// a bid-splice transcript entry, and the bid_spliced obs event.
func runSpliceRound(t *testing.T, s *BidSession, job JobConfig) *Outcome {
	t.Helper()
	rec := obs.NewRecorder()
	job.Tracer = rec
	out, err := s.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !out.BidSpliced || out.BidReused {
		t.Fatalf("BidSpliced=%v BidReused=%v, want spliced round", out.BidSpliced, out.BidReused)
	}
	found := false
	for _, e := range out.Transcript {
		if e.Action == "bid-splice" {
			found = true
		}
	}
	if !found {
		t.Error("spliced round left no bid-splice transcript entry")
	}
	found = false
	for _, r := range rec.Records() {
		if r.Name == obs.EvBidSpliced {
			found = true
		}
	}
	if !found {
		t.Error("spliced round emitted no bid_spliced obs event")
	}
	return out
}

// TestIncrementalRebidRateChange: a single member announcing a new rate
// triggers a splice round — only that member re-broadcasts (Θ(m)
// deliveries instead of Θ(m²)) — whose economics are bit-identical to a
// fresh protocol.Run at the new rates; the pool then settles back into
// reuse of the spliced cache.
func TestIncrementalRebidRateChange(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5, 3, 3.5}
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 7, NBlocks: 96, BlockSize: 16}

	full, err := s.Run(job) // round 1: full exchange
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(job); err != nil { // round 2: reuse
		t.Fatal(err)
	}
	if err := s.AnnounceRate(2, 1.25); err != nil {
		t.Fatal(err)
	}
	spliced := runSpliceRound(t, s, job) // round 3: splice

	w2 := append([]float64(nil), w...)
	w2[2] = 1.25
	independent, err := Run(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w2, Seed: 7, NBlocks: 96, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := econOf(spliced), econOf(independent); !reflect.DeepEqual(got, want) {
		t.Fatalf("spliced round economics diverge from independent run\n got %+v\nwant %+v", got, want)
	}

	// The splice re-broadcast is Θ(m): the full exchange's round put m
	// bid broadcasts on the bus, the splice round exactly one.
	if spliced.BusStats.Deliveries >= full.BusStats.Deliveries {
		t.Errorf("splice round cost %d deliveries, full exchange %d; want fewer",
			spliced.BusStats.Deliveries, full.BusStats.Deliveries)
	}

	out4, err := s.Run(job) // round 4: reuse of the spliced cache
	if err != nil {
		t.Fatal(err)
	}
	if !out4.BidReused || out4.BidSpliced {
		t.Fatalf("round after splice: BidReused=%v BidSpliced=%v, want pure reuse", out4.BidReused, out4.BidSpliced)
	}
	st := s.Stats()
	if st.Rebids != 1 || st.IncrementalRebids != 1 || st.RoundsSinceRebid != 1 {
		t.Fatalf("stats = %+v, want 1 rebid, 1 incremental, 1 since", st)
	}
}

// TestIncrementalRebidJoin: an appended member joins by broadcasting one
// fresh bid while incumbents' cached envelopes are spliced in (and
// forwarded to the newcomer); economics match a fresh run over the grown
// pool.
func TestIncrementalRebidJoin(t *testing.T) {
	w := []float64{1, 1.5, 2}
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 11, NBlocks: 64, BlockSize: 16}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2.5); err != nil {
		t.Fatal(err)
	}
	spliced := runSpliceRound(t, s, job)

	independent, err := Run(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5}, Seed: 11, NBlocks: 64, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := econOf(spliced), econOf(independent); !reflect.DeepEqual(got, want) {
		t.Fatalf("join-splice economics diverge from independent run\n got %+v\nwant %+v", got, want)
	}
	if st := s.Stats(); st.Rebids != 1 || st.IncrementalRebids != 1 {
		t.Fatalf("stats = %+v, want 1 rebid and 1 incremental", st)
	}
}

// TestIncrementalRebidLeave: a departing member costs no bid traffic at
// all — the survivors' cached envelopes are re-verified and spliced, and
// the economics match a fresh run where the member abstains.
func TestIncrementalRebidLeave(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 13, NBlocks: 64, BlockSize: 16}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(2); err != nil {
		t.Fatal(err)
	}
	spliced := runSpliceRound(t, s, job)

	independent, err := Run(Config{
		Network: dlt.NCPFE, Z: 0.2, TrueW: w, Seed: 13, NBlocks: 64, BlockSize: 16,
		Behaviors: []agent.Behavior{{}, {}, {Name: "departed", Abstain: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := econOf(spliced), econOf(independent); !reflect.DeepEqual(got, want) {
		t.Fatalf("leave-splice economics diverge from independent run\n got %+v\nwant %+v", got, want)
	}
}

// TestSpliceFallsBackToFullRebid pins the splice preconditions: a
// two-member delta and a deviant profile are both unspliceable, so the
// session runs the full exchange — correctness never depends on the fast
// path applying.
func TestSpliceFallsBackToFullRebid(t *testing.T) {
	w := []float64{1, 1.5, 2, 2.5}
	s, err := NewBidSession(Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 17, NBlocks: 64, BlockSize: 16}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}

	// Two rates change at once: not a single-member delta.
	if err := s.AnnounceRate(1, 1.6); err != nil {
		t.Fatal(err)
	}
	if err := s.AnnounceRate(2, 2.1); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if out.BidSpliced || out.BidReused {
		t.Fatalf("two-member delta: BidSpliced=%v BidReused=%v, want full rebid", out.BidSpliced, out.BidReused)
	}

	// The changed member equivocates: the new profile has a bidding-phase
	// deviant, which is never spliceable (and terminates the round).
	if err := s.AnnounceRate(1, 1.7); err != nil {
		t.Fatal(err)
	}
	deviant := JobConfig{Seed: 19, NBlocks: 64, BlockSize: 16,
		Behaviors: []agent.Behavior{{}, agent.Equivocator}}
	out, err = s.Run(deviant)
	if err != nil {
		t.Fatal(err)
	}
	if out.BidSpliced {
		t.Fatal("deviant profile ran the splice path")
	}
	if out.Completed {
		t.Fatal("equivocation round completed; expected a terminating verdict")
	}
	if st := s.Stats(); st.IncrementalRebids != 0 {
		t.Fatalf("stats = %+v, want no incremental rebids", st)
	}
}

// TestSessionMemoCollapsesVerification pins the memo's effect where it
// matters: across reuse rounds the session's shared memo absorbs the
// cached-bid re-verifications, so round n+1 performs no more full
// verifications of bid envelopes than round n forced.
func TestSessionMemoCollapsesVerification(t *testing.T) {
	memo := sig.NewVerifyMemo()
	s, err := NewBidSession(Config{
		Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5},
		Memo: memo,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Seed: 23, NBlocks: 64, BlockSize: 16}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	after1 := memo.Stats()
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	after2 := memo.Stats()
	if after2.Hits <= after1.Hits {
		t.Fatalf("reuse round hit the memo %d times (was %d); want growth", after2.Hits, after1.Hits)
	}
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	after3 := memo.Stats()
	// Every round signs fresh per-round artifacts (meters, payment
	// submissions) that rightly miss — their round stamp is new — so the
	// steady-state invariant is that reuse rounds miss a constant amount:
	// the cached-bid re-verifications have all collapsed into hits.
	if d2, d3 := after2.Misses-after1.Misses, after3.Misses-after2.Misses; d3 > d2 {
		t.Fatalf("reuse-round misses grew: %d then %d; cached bids are not memoized", d2, d3)
	}
}
