package protocol

import (
	"testing"

	"dlsbl/internal/dlt"
	"dlsbl/internal/sig"
)

// TestWarmKeyringBitIdenticalEconomics: running with a warm keyring must
// not perturb a single economic quantity. Payments, fines, allocations
// and utilities depend only on bids, meters and the seeded dataset —
// never on key bytes — so a cached keypair changes cost, not outcome.
func TestWarmKeyringBitIdenticalEconomics(t *testing.T) {
	base := Config{Network: dlt.NCPFE, Z: 0.25, TrueW: []float64{1, 1.5, 2, 2.5, 3}}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := base
		cfg.Seed = seed
		cold, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		ring := sig.NewKeyring()
		cfg.Keys = ring
		first, err := Run(cfg) // fills the ring
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Run(cfg) // reuses every pair
		if err != nil {
			t.Fatal(err)
		}

		for name, pair := range map[string][2]*Outcome{
			"cold vs filling": {cold, first},
			"cold vs warm":    {cold, warm},
		} {
			a, b := pair[0], pair[1]
			if !eq(a.Payments, b.Payments) || !eq(a.Fines, b.Fines) ||
				!eq(a.Alloc, b.Alloc) || !eq(a.Utilities, b.Utilities) ||
				a.UserCost != b.UserCost || a.Makespan != b.Makespan {
				t.Fatalf("seed %d %s: economics diverged", seed, name)
			}
		}
		// The ring holds exactly one pair per participant (m processors,
		// originator, referee) and repeated runs do not grow it.
		if want := len(base.TrueW) + 2; ring.Len() != want {
			t.Fatalf("keyring has %d pairs, want %d", ring.Len(), want)
		}
	}
}

// TestPartiallyWarmKeyring: a ring holding only some identities must
// still produce the cold run's exact outcome — the key-seed counter
// advances for cached identities too, so the generated remainder matches
// what a cold run would have drawn.
func TestPartiallyWarmKeyring(t *testing.T) {
	cfg := Config{Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 2, 3}, Seed: 9}
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	full := sig.NewKeyring()
	cfg.Keys = full
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	partial := sig.NewKeyring()
	for _, id := range []string{"P2", "referee"} {
		k, _ := full.Get(id)
		if k == nil {
			t.Fatalf("full ring missing %s", id)
		}
		if err := partial.Put(k); err != nil {
			t.Fatal(err)
		}
	}

	cfg.Keys = partial
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(out.Payments, cold.Payments) || !eq(out.Fines, cold.Fines) || !eq(out.Alloc, cold.Alloc) {
		t.Fatal("partially warm ring diverged from cold run")
	}
	if want := len(cfg.TrueW) + 2; partial.Len() != want {
		t.Fatalf("ring grew to %d pairs, want %d", partial.Len(), want)
	}
}

func eq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
