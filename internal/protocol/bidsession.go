package protocol

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
)

// Bid reuse across a stream of loads. The paper re-runs the full Θ(m²)
// signed bid exchange for every load, but Theorem 2.2 (order-independence)
// and the strategyproofness argument (Theorem 3.1) hold for ANY load size
// once the bid vector is fixed: the bids are per-unit processing times,
// independent of how much load arrives. A BidSession therefore runs the
// Bidding phase once, keeps the verified signed bids, and serves any
// number of Allocation/Processing/Payment rounds against them — re-bidding
// only when the member set changes (join, leave, eviction, abstention) or
// a processor announces a different rate. Per-job traffic drops from
// Θ(m²) to Θ(m) after round one: Θ(m² + k·m) across k jobs.
//
// Every round gets a fresh session-salted round ID folded into the signed
// per-round artifacts and the referee's audit transcript, so a message
// captured in round j and replayed in round j+1 is detectable (its round
// stamp no longer matches). The cached bid envelopes carry the ID of the
// round they were signed in — their "bid epoch" — and the referee is bound
// to both IDs each round (referee.BindRounds).

// bidCache is the product of one clean Bidding phase: the agreed bid
// vector, the signed envelopes behind it, and the bus traffic the exchange
// cost (what every reuse round saves). It is valid for exactly the member
// set and bid values it was captured with; BidSession re-bids the moment
// either changes, and executeRound independently re-verifies every cached
// envelope before serving a round from it.
type bidCache struct {
	epoch   string   // base epoch: round ID of the last full bid exchange
	procs   []string // participant ids, index order
	bids    []float64
	bidEnvs []sig.Envelope
	// epochs, when non-nil, holds the per-participant epoch each cached
	// bid was actually signed in — a spliced cache mixes the base epoch
	// with the splice rounds' fresh IDs. Nil means epoch applies
	// uniformly (a cache straight from a full exchange).
	epochs  []string
	fine    float64   // F in force when the bids were established
	bidding bus.Stats // traffic the bid exchange cost
	served  int       // reuse rounds served so far
}

// epochFor returns the epoch cached bid i was signed in.
func (c *bidCache) epochFor(i int) string {
	if c.epochs != nil {
		return c.epochs[i]
	}
	return c.epoch
}

// captureBidCache snapshots the verified bid set right after a clean
// Bidding phase. Bidding is the first traffic on the bus, so the stats at
// this instant are exactly the exchange's cost.
func (r *run) captureBidCache() *bidCache {
	return &bidCache{
		epoch:   r.roundID,
		procs:   append([]string(nil), r.procs...),
		bids:    append([]float64(nil), r.bids...),
		bidEnvs: append([]sig.Envelope(nil), r.bidEnvs...),
		fine:    r.ref.Fine(),
		bidding: r.net.Stats(),
	}
}

// reuseBidding stands in for phaseBidding on a reuse round: it installs
// the cached bid set after re-verifying every envelope against this
// round's fresh PKI registry — the cache is trusted for liveness, never
// for authenticity — and brings the referee into existence bound to the
// current round and the cache's bid epoch. An O(m) pass instead of the
// Θ(m²) exchange.
func (r *run) reuseBidding(c *bidCache) error {
	r.xp.beginPhase()
	if r.bidEpoch != c.epoch {
		return fmt.Errorf("protocol: round bound to bid epoch %q but cache holds epoch %q", r.bidEpoch, c.epoch)
	}
	if len(c.procs) != r.m {
		return fmt.Errorf("protocol: bid cache holds %d processors, round has %d (stale member set)", len(c.procs), r.m)
	}
	for i, p := range r.procs {
		if c.procs[i] != p {
			return fmt.Errorf("protocol: bid cache processor %d is %s, round has %s (stale member set)", i, c.procs[i], p)
		}
	}
	if err := r.checkCachedBids(c); err != nil {
		return err
	}
	r.bids = append([]float64(nil), c.bids...)
	r.bidEnvs = append([]sig.Envelope(nil), c.bidEnvs...)
	if c.epochs != nil {
		r.epochs = append([]string(nil), c.epochs...)
	}
	var err error
	r.ref, err = referee.New(r.reg, r.ledger, r.mech, r.procs, c.fine)
	if err != nil {
		return err
	}
	r.ref.UseVerifier(r.ver)
	if c.epochs != nil {
		if err := r.ref.BindRoundsSpliced(r.roundID, r.bidEpoch, c.epochs); err != nil {
			return err
		}
	} else {
		r.ref.BindRounds(r.roundID, r.bidEpoch)
	}
	if err := r.armStandby(); err != nil {
		return err
	}
	r.recordInstallment()
	r.outcome.FineMagnitude = c.fine
	c.served++
	r.ref.RecordBidReuse(c.epoch, c.served)
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind:   obs.EvBidReused,
			Round:  r.roundID,
			Detail: fmt.Sprintf("epoch %s, reuse round %d", c.epoch, c.served),
		})
	}
	return nil
}

// checkCachedBids re-verifies every cached envelope against this round's
// fresh PKI registry and re-checks its binding to the cache — sender,
// epoch, bid value and the agent's current announced bid. With a memo the
// batch verification collapses into memo hits for bit-identical envelopes
// that verified in an earlier round; the payload decodes and the value
// checks run in full either way.
func (r *run) checkCachedBids(c *bidCache) error {
	var memoBefore int
	if r.ver != nil && r.ver.Memo().Enabled() {
		memoBefore = r.ver.Stats().MemoHits
		if errs := r.ver.VerifyEach(c.bidEnvs); errs != nil {
			for i, err := range errs {
				if err != nil {
					return fmt.Errorf("protocol: cached bid of %s failed re-verification: %w", c.procs[i], err)
				}
			}
		}
		if r.tracer != nil {
			st := r.ver.Stats()
			r.tracer.Event(obs.Event{
				Kind:   obs.EvVerifyBatch,
				Round:  r.roundID,
				Detail: fmt.Sprintf("%d cached bids, %d memo hits", len(c.bidEnvs), st.MemoHits-memoBefore),
			})
			if h := st.MemoHits - memoBefore; h > 0 {
				r.tracer.Event(obs.Event{
					Kind:   obs.EvVerifyMemoHit,
					Round:  r.roundID,
					Detail: fmt.Sprintf("%d verifications skipped", h),
				})
			}
		}
	}
	for i := range c.bidEnvs {
		env := &c.bidEnvs[i]
		var bp referee.BidPayload
		if err := r.open(env, &bp); err != nil {
			return fmt.Errorf("protocol: cached bid of %s failed re-verification: %w", c.procs[i], err)
		}
		if env.Sender != c.procs[i] || bp.Proc != c.procs[i] {
			return fmt.Errorf("protocol: cached bid %d signed by %q, want %q", i, env.Sender, c.procs[i])
		}
		if bp.Round != c.epochFor(i) {
			return fmt.Errorf("protocol: cached bid of %s carries round %q, epoch is %q", c.procs[i], bp.Round, c.epochFor(i))
		}
		if bp.Bid != c.bids[i] {
			return fmt.Errorf("protocol: cached bid of %s is %v in the envelope, %v in the cache", c.procs[i], bp.Bid, c.bids[i])
		}
		if got := r.agents[i].Bid(); got != c.bids[i] {
			return fmt.Errorf("protocol: %s now bids %v but the cache holds %v; a rebid round is required", c.procs[i], got, c.bids[i])
		}
	}
	return nil
}

// ---- Incremental re-bid (bid splicing) ------------------------------------
//
// A full re-bid costs the Θ(m²) exchange even when only ONE member's
// conduct changed — a rate announcement, a join, a leave. For those
// single-member deltas the session runs an incremental re-bid instead:
// the changed member broadcasts one fresh bid (Θ(m) deliveries), every
// other member's cached envelope is re-verified and spliced in unchanged,
// and the referee is bound to per-processor epochs
// (referee.BindRoundsSpliced) so each bid is checked against the round it
// was actually signed in. Any deviation from the happy path — deviants in
// either profile, an unreachable peer, a stale cache — falls back to the
// full exchange.

// spliceKind classifies the single-member delta an incremental re-bid
// absorbs.
type spliceKind int

const (
	spliceRate  spliceKind = iota // one member announced a different rate
	spliceJoin                    // one member joined (appended config index)
	spliceLeave                   // one member left
)

// String names the splice kind for transcript entries and logs.
func (k spliceKind) String() string {
	switch k {
	case spliceRate:
		return "rate-change"
	case spliceJoin:
		return "join"
	default:
		return "leave"
	}
}

// spliceOp names the changed member in participant space: oldIdx indexes
// the cached participant list (-1 for a join), newIdx this round's (-1
// for a leave).
type spliceOp struct {
	kind   spliceKind
	oldIdx int
	newIdx int
}

// spliceDelta compares the cached bid profile with this round's and
// reports the single-member delta between them, if that is all that
// separates them. Profiles with bidding-phase deviants (equivocators,
// false accusers) are never spliceable — their exchanges are not made of
// independent per-member broadcasts.
func spliceDelta(old, new []bidProfile) (spliceOp, bool) {
	clean := func(ps []bidProfile) bool {
		for _, p := range ps {
			if p.present && (p.hasSecond || p.accuses || p.frames) {
				return false
			}
		}
		return true
	}
	if !clean(old) || !clean(new) {
		return spliceOp{}, false
	}
	// rank maps a config index to its participant index.
	rank := func(ps []bidProfile, idx int) int {
		n := 0
		for i := 0; i < idx; i++ {
			if ps[i].present {
				n++
			}
		}
		return n
	}
	if len(new) == len(old)+1 {
		for i := range old {
			if old[i] != new[i] {
				return spliceOp{}, false
			}
		}
		if !new[len(new)-1].present {
			return spliceOp{}, false
		}
		return spliceOp{kind: spliceJoin, oldIdx: -1, newIdx: rank(new, len(new)-1)}, true
	}
	if len(new) != len(old) {
		return spliceOp{}, false
	}
	diff := -1
	for i := range old {
		if old[i] != new[i] {
			if diff >= 0 {
				return spliceOp{}, false
			}
			diff = i
		}
	}
	if diff < 0 {
		return spliceOp{}, false
	}
	switch {
	case old[diff].present && new[diff].present:
		return spliceOp{kind: spliceRate, oldIdx: rank(old, diff), newIdx: rank(new, diff)}, true
	case old[diff].present && !new[diff].present:
		return spliceOp{kind: spliceLeave, oldIdx: rank(old, diff), newIdx: -1}, true
	default:
		// A member (re)appearing mid-list has no append position to splice
		// into; only appended joins are spliceable.
		return spliceOp{}, false
	}
}

// spliceBidding stands in for phaseBidding on an incremental re-bid
// round. It aligns this round's participants with the cache, re-verifies
// every kept envelope (memoized when the run has a memo), has the changed
// member broadcast its fresh bid under the current round ID, forwards the
// incumbent bids to a joining newcomer, and binds the referee to the
// resulting per-processor epochs. It returns the spliced cache future
// reuse rounds serve from.
func (r *run) spliceBidding(c *bidCache, sp spliceOp) (*bidCache, error) {
	r.xp.beginPhase()
	if r.bidEpoch != c.epoch {
		return nil, fmt.Errorf("protocol: round bound to bid epoch %q but cache holds epoch %q", r.bidEpoch, c.epoch)
	}
	// src[i] is the cached index serving participant i; -1 marks the
	// freshly bidding member.
	src := make([]int, r.m)
	switch sp.kind {
	case spliceRate:
		if r.m != len(c.procs) || sp.newIdx < 0 || sp.newIdx >= r.m {
			return nil, fmt.Errorf("protocol: splice: round has %d participants, cache holds %d (stale member set)", r.m, len(c.procs))
		}
		for i := range src {
			src[i] = i
		}
		src[sp.newIdx] = -1
	case spliceJoin:
		if r.m != len(c.procs)+1 || sp.newIdx != r.m-1 {
			return nil, fmt.Errorf("protocol: splice: join must append (round has %d participants, cache holds %d)", r.m, len(c.procs))
		}
		for i := 0; i < r.m-1; i++ {
			src[i] = i
		}
		src[r.m-1] = -1
	case spliceLeave:
		if r.m != len(c.procs)-1 || sp.oldIdx < 0 || sp.oldIdx >= len(c.procs) {
			return nil, fmt.Errorf("protocol: splice: round has %d participants, cache holds %d (stale member set)", r.m, len(c.procs))
		}
		for i := range src {
			if i < sp.oldIdx {
				src[i] = i
			} else {
				src[i] = i + 1
			}
		}
	}
	for i, s := range src {
		if s >= 0 && c.procs[s] != r.procs[i] {
			return nil, fmt.Errorf("protocol: splice: participant %d is %s, cache holds %s (stale member set)", i, r.procs[i], c.procs[s])
		}
	}

	// Kept envelopes: re-verified against this round's fresh registry and
	// re-checked against the cache, exactly as a reuse round would.
	r.bids = make([]float64, r.m)
	r.bidEnvs = make([]sig.Envelope, r.m)
	epochs := make([]string, r.m)
	for i, s := range src {
		if s < 0 {
			continue
		}
		env := &c.bidEnvs[s]
		var bp referee.BidPayload
		if err := r.open(env, &bp); err != nil {
			return nil, fmt.Errorf("protocol: cached bid of %s failed re-verification: %w", c.procs[s], err)
		}
		if env.Sender != c.procs[s] || bp.Proc != c.procs[s] {
			return nil, fmt.Errorf("protocol: cached bid %d signed by %q, want %q", s, env.Sender, c.procs[s])
		}
		if bp.Round != c.epochFor(s) {
			return nil, fmt.Errorf("protocol: cached bid of %s carries round %q, epoch is %q", c.procs[s], bp.Round, c.epochFor(s))
		}
		if bp.Bid != c.bids[s] {
			return nil, fmt.Errorf("protocol: cached bid of %s is %v in the envelope, %v in the cache", c.procs[s], bp.Bid, c.bids[s])
		}
		if got := r.agents[i].Bid(); got != c.bids[s] {
			return nil, fmt.Errorf("protocol: %s now bids %v but the cache holds %v; a full rebid is required", c.procs[s], got, c.bids[s])
		}
		r.bids[i] = c.bids[s]
		r.bidEnvs[i] = c.bidEnvs[s]
		epochs[i] = c.epochFor(s)
	}

	// The changed member broadcasts its fresh bid, signed in THIS round —
	// its new bid epoch. Θ(m) deliveries instead of the Θ(m²) exchange.
	changed := ""
	if sp.newIdx >= 0 {
		a := r.agents[sp.newIdx]
		changed = a.ID
		env, err := r.seal(a.Key, referee.KindBid, referee.BidPayload{Proc: a.ID, Bid: a.Bid(), Round: r.roundID})
		if err != nil {
			return nil, err
		}
		others := make([]string, 0, r.m-1)
		for i, p := range r.procs {
			if i != sp.newIdx {
				others = append(others, p)
			}
		}
		missing, err := r.xp.broadcastReliable(a.ID, referee.KindBid, env, 1, others)
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("%w: spliced bid of %s undelivered to %v", ErrUnreachable, a.ID, missing)
		}
		r.bids[sp.newIdx] = a.Bid()
		r.bidEnvs[sp.newIdx] = env
		epochs[sp.newIdx] = r.roundID
	} else {
		changed = c.procs[sp.oldIdx]
	}
	// A joining newcomer holds none of the cached bids: each incumbent
	// forwards its own signed envelope point-to-point (Θ(m) unicasts).
	if sp.kind == spliceJoin {
		newcomer := r.procs[sp.newIdx]
		for i, s := range src {
			if s < 0 {
				continue
			}
			if _, err := r.xp.sendReliable(r.procs[i], newcomer, referee.KindBid, r.bidEnvs[i], 1); err != nil {
				return nil, err
			}
		}
	}

	// The spliced bid vector is a new public vector, so a derived fine is
	// re-derived from it exactly as a full exchange would — a join or a
	// rate change can move the suggested F. An explicitly configured fine
	// is fixed either way.
	fine := r.cfg.Fine
	if fine == 0 {
		fine = referee.SuggestedFine(r.bids, 4)
	}
	var err error
	r.ref, err = referee.New(r.reg, r.ledger, r.mech, r.procs, fine)
	if err != nil {
		return nil, err
	}
	r.ref.UseVerifier(r.ver)
	if err := r.ref.BindRoundsSpliced(r.roundID, r.bidEpoch, epochs); err != nil {
		return nil, err
	}
	if err := r.armStandby(); err != nil {
		return nil, err
	}
	r.recordInstallment()
	r.epochs = epochs
	r.outcome.FineMagnitude = fine
	r.ref.RecordBidSplice(changed, sp.kind.String(), c.epoch)
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind:   obs.EvBidSpliced,
			Round:  r.roundID,
			Detail: fmt.Sprintf("%s of %s onto epoch %s", sp.kind, changed, c.epoch),
		})
	}
	return &bidCache{
		epoch:   c.epoch,
		procs:   append([]string(nil), r.procs...),
		bids:    append([]float64(nil), r.bids...),
		bidEnvs: append([]sig.Envelope(nil), r.bidEnvs...),
		epochs:  epochs,
		fine:    fine,
		// Future reuse rounds save (approximately) the last full
		// exchange's traffic; the splice itself cost only Θ(m).
		bidding: c.bidding,
	}, nil
}

// JobConfig describes one load served by a BidSession. The session owns
// the network class, bus rate z, member set, true rates, fine and keyring;
// a job brings everything load-specific. Behaviors are indexed by the
// session's member (config) index and default to honest; members that
// left or were evicted are forced to Abstain regardless.
type JobConfig struct {
	// Z overrides nothing — the bus rate is session state. (Field order
	// mirrors Config for the load-specific subset.)

	// Seed drives key generation (first round only — later rounds hit the
	// session keyring) and the synthetic dataset.
	Seed int64
	// NBlocks and BlockSize set the dataset granularity; zero selects the
	// protocol defaults.
	NBlocks   int
	BlockSize int
	// Behaviors assigns per-member strategies for this job.
	Behaviors []agent.Behavior
	// Faults and Retry configure the link layer for this job.
	Faults *bus.FaultPlan
	Retry  RetryPolicy
	// FailoverIn kills the primary referee at the start of the named phase
	// of this job's round and promotes the standby (Config.FailoverIn);
	// requires the session to have been founded with Standby set.
	FailoverIn string
	// Tracer receives this round's span and event records (see
	// Config.Tracer); per-job because trace ownership follows the load,
	// not the pool.
	Tracer obs.Tracer
}

// bidProfile is what a member's Bidding-phase conduct would look like this
// round: whether it participates, what it would bid, and whether it would
// deviate during bidding (equivocate or raise a false accusation). Two
// rounds with element-wise equal profiles produce byte-identical bid
// exchanges, so the cached one can serve — the reuse decision is this
// comparison and nothing else, which is what makes "never re-bids when
// nothing changed" and "always re-bids when something did" hold by
// construction.
type bidProfile struct {
	present   bool
	bid       float64
	hasSecond bool
	second    float64
	accuses   bool
	// frames marks a member that files a fabricated unreachability report
	// during Bidding. Framer rounds never serve from (or splice onto) the
	// cache: the framing attempt — and its conviction — belongs to every
	// round the framer actually runs a Bidding phase in.
	frames bool
}

// profileFrames reports whether any present member frames a rival this
// round; such rounds always run the full bid exchange.
func profileFrames(ps []bidProfile) bool {
	for _, p := range ps {
		if p.present && p.frames {
			return true
		}
	}
	return false
}

// SessionStats counts what a BidSession did and saved.
type SessionStats struct {
	// Rounds is the number of Run calls that produced an outcome or error.
	Rounds int
	// Rebids is the number of rounds that ran a full Bidding phase.
	Rebids int
	// IncrementalRebids is the number of rounds that spliced a single
	// changed member's fresh bid into the cached set instead of running
	// the full exchange.
	IncrementalRebids int
	// RoundsSinceRebid counts consecutive reuse rounds since the last
	// rebid.
	RoundsSinceRebid int
	// BidEpoch is the round ID the cached bids were signed in; empty
	// before the first successful bidding round.
	BidEpoch string
	// SavedMessages / SavedDeliveries / SavedUnits total the bus traffic
	// the reuse rounds avoided (the cached Bidding exchange's cost, once
	// per reuse round). Deliveries is the Θ(m²) term: m broadcasts × m−1
	// receivers each.
	SavedMessages   int
	SavedDeliveries int
	SavedUnits      int
}

// Member describes one active session member.
type Member struct {
	Index int     // config index, stable for the session's lifetime
	ID    string  // processor id, "P<Index+1>"
	W     float64 // announced per-unit processing time
}

// BidSession amortizes the Bidding phase across a stream of loads. It is
// not safe for concurrent use: callers (the service layer's per-pool
// runners, the session chainer) serialize rounds.
//
// Member indices are config indices: a member that leaves keeps its index
// (as a permanent abstainer) so later joins never alias an old identity —
// signed bids name "P<i+1>" and identity reuse would let an old member's
// envelopes verify for a new one. Note the load originator
// (Network.Originator) can never leave: NCP-FE pins P1, NCP-NFE pins the
// highest index, so under NCP-NFE each Join transfers the originator role
// to the newcomer.
type BidSession struct {
	base  Config // Network, Z, Fine, Keys; TrueW/Behaviors are per-round
	trueW []float64
	gone  []bool
	salt  string

	cache        *bidCache
	cacheProfile []bidProfile

	rounds     int
	rebids     int
	splices    int
	sinceRebid int
	saved      bus.Stats
}

// NewBidSession creates a session over cfg's network class, bus rate,
// initial member rates, fine policy and keyring. cfg.Behaviors, Seed,
// NBlocks, BlockSize, Faults and Retry are per-job (JobConfig) and must be
// zero here. A nil cfg.Keys gets a fresh keyring — the ring is what lets a
// reuse round's fresh PKI registry verify envelopes signed rounds ago.
func NewBidSession(cfg Config) (*BidSession, error) {
	if cfg.Behaviors != nil || cfg.Faults != nil || cfg.NBlocks != 0 || cfg.BlockSize != 0 || cfg.Seed != 0 || (cfg.Retry != RetryPolicy{}) || cfg.Tracer != nil || cfg.LoadFrac != 0 || cfg.FailoverIn != "" {
		return nil, errors.New("protocol: per-job fields (Behaviors, Seed, NBlocks, BlockSize, Faults, Retry, Tracer, LoadFrac, FailoverIn) belong in JobConfig, not the session Config")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &BidSession{
		base:  cfg,
		trueW: append([]float64(nil), cfg.TrueW...),
		gone:  make([]bool, len(cfg.TrueW)),
		salt:  sessionSalt(cfg),
	}
	if s.base.Keys == nil {
		s.base.Keys = sig.NewKeyring()
	}
	if s.base.Memo == nil {
		// Sessions memoize by default: their whole point is reusing the
		// same envelopes round after round, which is exactly what the
		// verified-envelope memo collapses into hits. Outcomes are
		// unaffected (a hit only skips re-verifying a byte-identical,
		// already-verified envelope); pass sig.DisabledVerifyMemo() to
		// opt out.
		s.base.Memo = sig.NewVerifyMemo()
	}
	return s, nil
}

// sessionSalt derives a deterministic session identifier from the
// founding configuration, so round IDs are reproducible for a given
// session history (no clock, no global RNG).
func sessionSalt(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%g|%v", cfg.Network, cfg.Z, cfg.TrueW)
	return fmt.Sprintf("s%016x", h.Sum64())
}

// Run serves one load. It decides reuse-vs-rebid by comparing this job's
// bid profile against the cached one, stamps the round with a fresh
// session-salted ID, and on a rebid round captures the new bid set. A
// round that errors changes no session state other than consuming its
// round number.
func (s *BidSession) Run(job JobConfig) (*Outcome, error) {
	s.rounds++
	return s.serve(job, RoundRef{Salt: s.salt, Round: s.rounds}, 1, 1, 1, 0)
}

// NextRound reserves and returns the next session round number. The
// pipelined scheduler (internal/pipeline) reserves a round up front and
// serves it in installment sub-rounds via RunSub; plain Run reserves its
// own round. A reserved round that is never served simply leaves a gap
// in the numbering — round IDs only ever need to be distinct.
func (s *BidSession) NextRound() int {
	s.rounds++
	return s.rounds
}

// RunSub serves installment k (1-based) of `of` sub-rounds of session
// round n (from NextRound), carrying frac of the load divided under the
// given policy. The sub-round is a full protocol round under the ID
// "<salt>:rN.iK" — served from the cached bid set when the profile
// allows, re-bidding otherwise, exactly like Run — with the money flow
// scaled by frac (Config.LoadFrac) and the allocation/payment rule
// switched to the installment class (dlt.PipelinedAllocation +
// multi-round makespan terms). With of=1 the ID collapses to the plain
// "<salt>:rN" and the round is byte-identical to a Run round, allocation
// rule included.
func (s *BidSession) RunSub(job JobConfig, n, k, of int, frac float64, policy dlt.RoundPolicy) (*Outcome, error) {
	if n < 1 || n > s.rounds {
		return nil, fmt.Errorf("protocol: sub-round of unreserved session round %d", n)
	}
	if k < 1 || of < 1 || k > of {
		return nil, fmt.Errorf("protocol: installment %d of %d out of range", k, of)
	}
	if !(frac > 0) || frac > 1 {
		return nil, fmt.Errorf("protocol: installment fraction %v outside (0,1]", frac)
	}
	rr := RoundRef{Salt: s.salt, Round: n}
	if of > 1 {
		rr.Installment = k
	}
	return s.serve(job, rr, k, of, frac, policy)
}

// serve executes one (sub-)round under the given round reference,
// deciding reuse vs incremental re-bid vs full exchange by bid-profile
// comparison. frac scales the money flow; inst/instOf/policy mark the
// installment for the referee's transcript and select the installment
// allocation rule (1/1 for whole-load rounds, which skip both).
func (s *BidSession) serve(job JobConfig, rr RoundRef, inst, instOf int, frac float64, policy dlt.RoundPolicy) (*Outcome, error) {
	round := rr.String()
	cfg := s.roundConfig(job)
	cfg.LoadFrac = frac
	prof := profileFor(cfg)
	rb := roundBinding{round: round}
	if instOf > 1 {
		rb.inst, rb.instOf, rb.policy = inst, instOf, policy
	}

	if s.cache != nil && profilesEqual(prof, s.cacheProfile) && !profileFrames(prof) {
		rb.epoch = s.cache.epoch
		out, _, err := executeRound(cfg, rb, s.cache, nil)
		if err != nil {
			return nil, err
		}
		s.sinceRebid++
		s.saved.Messages += s.cache.bidding.Messages
		s.saved.Deliveries += s.cache.bidding.Deliveries
		s.saved.Units += s.cache.bidding.Units
		return out, nil
	}

	// Single-member delta against the cached profile: try the incremental
	// re-bid first. Any failure on the spliced path — an unreachable peer,
	// a stale cache, a downstream phase error — falls back to the full
	// exchange below; the aborted attempt built only per-round state, so
	// nothing leaks into the retry (which reuses this round's ID).
	if s.cache != nil {
		if sp, ok := spliceDelta(s.cacheProfile, prof); ok {
			rb.epoch = s.cache.epoch
			out, spliced, err := executeRound(cfg, rb, s.cache, &sp)
			if err == nil {
				s.splices++
				s.sinceRebid = 0
				s.cache = spliced
				s.cacheProfile = prof
				return out, nil
			}
		}
	}

	rb.epoch = round
	out, cache, err := executeRound(cfg, rb, nil, nil)
	if err != nil {
		return nil, err
	}
	s.rebids++
	s.sinceRebid = 0
	// Bidding-phase evictions permanently remove members; the captured
	// cache (if any) already holds survivors only, so the profile it is
	// filed under must mark the evicted absent too.
	for i, ev := range out.Evicted {
		if ev && i < len(s.gone) {
			s.gone[i] = true
			prof[i] = bidProfile{}
		}
	}
	if cache != nil {
		// A terminated Bidding phase (equivocation verdict, unfounded
		// accusation) yields no cache; the previous cache — if its member
		// set still matches a future profile — remains serviceable.
		s.cache = cache
		s.cacheProfile = prof
	}
	return out, nil
}

// roundConfig assembles the per-round protocol Config: session state plus
// the job's load-specific fields, with departed members forced to Abstain.
func (s *BidSession) roundConfig(job JobConfig) Config {
	cfg := Config{
		Network:    s.base.Network,
		Z:          s.base.Z,
		TrueW:      append([]float64(nil), s.trueW...),
		Fine:       s.base.Fine,
		NBlocks:    job.NBlocks,
		BlockSize:  job.BlockSize,
		Seed:       job.Seed,
		Faults:     job.Faults,
		Retry:      job.Retry,
		Keys:       s.base.Keys,
		Tracer:     job.Tracer,
		Codec:      s.base.Codec,
		Memo:       s.base.Memo,
		Standby:    s.base.Standby,
		FailoverIn: job.FailoverIn,
	}
	behaviors := make([]agent.Behavior, len(s.trueW))
	for i := range behaviors {
		if i < len(job.Behaviors) {
			behaviors[i] = job.Behaviors[i]
		}
		if s.gone[i] {
			behaviors[i] = agent.Behavior{Name: "departed", Abstain: true}
		}
	}
	cfg.Behaviors = behaviors
	return cfg
}

// profileFor derives the bid profile a Config would produce, mirroring
// agent.Bid/SecondBid exactly (same expressions, so float equality is
// sound).
func profileFor(cfg Config) []bidProfile {
	prof := make([]bidProfile, len(cfg.TrueW))
	for i, w := range cfg.TrueW {
		var b agent.Behavior
		if i < len(cfg.Behaviors) {
			b = cfg.Behaviors[i]
		}
		b = b.Normalize()
		if b.Abstain {
			continue
		}
		p := bidProfile{present: true, bid: b.BidFactor * w, accuses: b.FalseEquivocationReport, frames: b.FrameRival}
		if b.Equivocate {
			p.hasSecond = true
			p.second = p.bid * b.EquivocationFactor
		}
		prof[i] = p
	}
	return prof
}

func profilesEqual(a, b []bidProfile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Join adds a member with per-unit processing time w and returns its
// config index. The next Run re-bids (the profile grew). Under NCP-NFE the
// newcomer becomes the load originator (P_m originates).
func (s *BidSession) Join(w float64) (int, error) {
	if !(w > 0) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("protocol: invalid rate %v", w)
	}
	s.trueW = append(s.trueW, w)
	s.gone = append(s.gone, false)
	return len(s.trueW) - 1, nil
}

// Leave removes member i from all future rounds. The load originator
// cannot leave (without it there is no load source), and at least two
// members must remain. The next Run re-bids.
func (s *BidSession) Leave(i int) error {
	if i < 0 || i >= len(s.trueW) {
		return fmt.Errorf("protocol: no member %d", i)
	}
	if s.gone[i] {
		return fmt.Errorf("protocol: member P%d already left", i+1)
	}
	if i == s.base.Network.Originator(len(s.trueW)) {
		return fmt.Errorf("protocol: the load-originating processor P%d cannot leave", i+1)
	}
	active := 0
	for j, g := range s.gone {
		if !g && j != i {
			active++
		}
	}
	if active < 2 {
		return errors.New("protocol: need at least two remaining members")
	}
	s.gone[i] = true
	return nil
}

// AnnounceRate records member i's new per-unit processing time. If the
// value actually differs, the next Run re-bids; announcing the current
// rate changes nothing and triggers no rebid (the profile is unchanged).
func (s *BidSession) AnnounceRate(i int, w float64) error {
	if i < 0 || i >= len(s.trueW) {
		return fmt.Errorf("protocol: no member %d", i)
	}
	if s.gone[i] {
		return fmt.Errorf("protocol: member P%d has left", i+1)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("protocol: invalid rate %v", w)
	}
	s.trueW[i] = w
	return nil
}

// Network returns the session's network class.
func (s *BidSession) Network() dlt.Network { return s.base.Network }

// Z returns the session's per-unit bus communication time.
func (s *BidSession) Z() float64 { return s.base.Z }

// Members lists the active members.
func (s *BidSession) Members() []Member {
	var out []Member
	for i, w := range s.trueW {
		if !s.gone[i] {
			out = append(out, Member{Index: i, ID: fmt.Sprintf("P%d", i+1), W: w})
		}
	}
	return out
}

// Stats reports the session counters.
func (s *BidSession) Stats() SessionStats {
	st := SessionStats{
		Rounds:            s.rounds,
		Rebids:            s.rebids,
		IncrementalRebids: s.splices,
		RoundsSinceRebid:  s.sinceRebid,
		SavedMessages:     s.saved.Messages,
		SavedDeliveries:   s.saved.Deliveries,
		SavedUnits:        s.saved.Units,
	}
	if s.cache != nil {
		st.BidEpoch = s.cache.epoch
	}
	return st
}
