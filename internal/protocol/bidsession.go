package protocol

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/obs"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
)

// Bid reuse across a stream of loads. The paper re-runs the full Θ(m²)
// signed bid exchange for every load, but Theorem 2.2 (order-independence)
// and the strategyproofness argument (Theorem 3.1) hold for ANY load size
// once the bid vector is fixed: the bids are per-unit processing times,
// independent of how much load arrives. A BidSession therefore runs the
// Bidding phase once, keeps the verified signed bids, and serves any
// number of Allocation/Processing/Payment rounds against them — re-bidding
// only when the member set changes (join, leave, eviction, abstention) or
// a processor announces a different rate. Per-job traffic drops from
// Θ(m²) to Θ(m) after round one: Θ(m² + k·m) across k jobs.
//
// Every round gets a fresh session-salted round ID folded into the signed
// per-round artifacts and the referee's audit transcript, so a message
// captured in round j and replayed in round j+1 is detectable (its round
// stamp no longer matches). The cached bid envelopes carry the ID of the
// round they were signed in — their "bid epoch" — and the referee is bound
// to both IDs each round (referee.BindRounds).

// bidCache is the product of one clean Bidding phase: the agreed bid
// vector, the signed envelopes behind it, and the bus traffic the exchange
// cost (what every reuse round saves). It is valid for exactly the member
// set and bid values it was captured with; BidSession re-bids the moment
// either changes, and executeRound independently re-verifies every cached
// envelope before serving a round from it.
type bidCache struct {
	epoch   string   // round ID the bids were signed in
	procs   []string // participant ids, index order
	bids    []float64
	bidEnvs []sig.Envelope
	fine    float64   // F in force when the bids were established
	bidding bus.Stats // traffic the bid exchange cost
	served  int       // reuse rounds served so far
}

// captureBidCache snapshots the verified bid set right after a clean
// Bidding phase. Bidding is the first traffic on the bus, so the stats at
// this instant are exactly the exchange's cost.
func (r *run) captureBidCache() *bidCache {
	return &bidCache{
		epoch:   r.roundID,
		procs:   append([]string(nil), r.procs...),
		bids:    append([]float64(nil), r.bids...),
		bidEnvs: append([]sig.Envelope(nil), r.bidEnvs...),
		fine:    r.ref.Fine(),
		bidding: r.net.Stats(),
	}
}

// reuseBidding stands in for phaseBidding on a reuse round: it installs
// the cached bid set after re-verifying every envelope against this
// round's fresh PKI registry — the cache is trusted for liveness, never
// for authenticity — and brings the referee into existence bound to the
// current round and the cache's bid epoch. An O(m) pass instead of the
// Θ(m²) exchange.
func (r *run) reuseBidding(c *bidCache) error {
	r.xp.beginPhase()
	if r.bidEpoch != c.epoch {
		return fmt.Errorf("protocol: round bound to bid epoch %q but cache holds epoch %q", r.bidEpoch, c.epoch)
	}
	if len(c.procs) != r.m {
		return fmt.Errorf("protocol: bid cache holds %d processors, round has %d (stale member set)", len(c.procs), r.m)
	}
	for i, p := range r.procs {
		if c.procs[i] != p {
			return fmt.Errorf("protocol: bid cache processor %d is %s, round has %s (stale member set)", i, c.procs[i], p)
		}
	}
	for i, env := range c.bidEnvs {
		var bp referee.BidPayload
		if err := env.Open(r.reg, &bp); err != nil {
			return fmt.Errorf("protocol: cached bid of %s failed re-verification: %w", c.procs[i], err)
		}
		if env.Sender != c.procs[i] || bp.Proc != c.procs[i] {
			return fmt.Errorf("protocol: cached bid %d signed by %q, want %q", i, env.Sender, c.procs[i])
		}
		if bp.Round != c.epoch {
			return fmt.Errorf("protocol: cached bid of %s carries round %q, epoch is %q", c.procs[i], bp.Round, c.epoch)
		}
		if bp.Bid != c.bids[i] {
			return fmt.Errorf("protocol: cached bid of %s is %v in the envelope, %v in the cache", c.procs[i], bp.Bid, c.bids[i])
		}
		if got := r.agents[i].Bid(); got != c.bids[i] {
			return fmt.Errorf("protocol: %s now bids %v but the cache holds %v; a rebid round is required", c.procs[i], got, c.bids[i])
		}
	}
	r.bids = append([]float64(nil), c.bids...)
	r.bidEnvs = append([]sig.Envelope(nil), c.bidEnvs...)
	var err error
	r.ref, err = referee.New(r.reg, r.ledger, r.mech, r.procs, c.fine)
	if err != nil {
		return err
	}
	r.ref.BindRounds(r.roundID, r.bidEpoch)
	r.outcome.FineMagnitude = c.fine
	c.served++
	r.ref.RecordBidReuse(c.epoch, c.served)
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind:   obs.EvBidReused,
			Round:  r.roundID,
			Detail: fmt.Sprintf("epoch %s, reuse round %d", c.epoch, c.served),
		})
	}
	return nil
}

// JobConfig describes one load served by a BidSession. The session owns
// the network class, bus rate z, member set, true rates, fine and keyring;
// a job brings everything load-specific. Behaviors are indexed by the
// session's member (config) index and default to honest; members that
// left or were evicted are forced to Abstain regardless.
type JobConfig struct {
	// Z overrides nothing — the bus rate is session state. (Field order
	// mirrors Config for the load-specific subset.)

	// Seed drives key generation (first round only — later rounds hit the
	// session keyring) and the synthetic dataset.
	Seed int64
	// NBlocks and BlockSize set the dataset granularity; zero selects the
	// protocol defaults.
	NBlocks   int
	BlockSize int
	// Behaviors assigns per-member strategies for this job.
	Behaviors []agent.Behavior
	// Faults and Retry configure the link layer for this job.
	Faults *bus.FaultPlan
	Retry  RetryPolicy
	// Tracer receives this round's span and event records (see
	// Config.Tracer); per-job because trace ownership follows the load,
	// not the pool.
	Tracer obs.Tracer
}

// bidProfile is what a member's Bidding-phase conduct would look like this
// round: whether it participates, what it would bid, and whether it would
// deviate during bidding (equivocate or raise a false accusation). Two
// rounds with element-wise equal profiles produce byte-identical bid
// exchanges, so the cached one can serve — the reuse decision is this
// comparison and nothing else, which is what makes "never re-bids when
// nothing changed" and "always re-bids when something did" hold by
// construction.
type bidProfile struct {
	present   bool
	bid       float64
	hasSecond bool
	second    float64
	accuses   bool
}

// SessionStats counts what a BidSession did and saved.
type SessionStats struct {
	// Rounds is the number of Run calls that produced an outcome or error.
	Rounds int
	// Rebids is the number of rounds that ran a full Bidding phase.
	Rebids int
	// RoundsSinceRebid counts consecutive reuse rounds since the last
	// rebid.
	RoundsSinceRebid int
	// BidEpoch is the round ID the cached bids were signed in; empty
	// before the first successful bidding round.
	BidEpoch string
	// SavedMessages / SavedDeliveries / SavedUnits total the bus traffic
	// the reuse rounds avoided (the cached Bidding exchange's cost, once
	// per reuse round). Deliveries is the Θ(m²) term: m broadcasts × m−1
	// receivers each.
	SavedMessages   int
	SavedDeliveries int
	SavedUnits      int
}

// Member describes one active session member.
type Member struct {
	Index int     // config index, stable for the session's lifetime
	ID    string  // processor id, "P<Index+1>"
	W     float64 // announced per-unit processing time
}

// BidSession amortizes the Bidding phase across a stream of loads. It is
// not safe for concurrent use: callers (the service layer's per-pool
// runners, the session chainer) serialize rounds.
//
// Member indices are config indices: a member that leaves keeps its index
// (as a permanent abstainer) so later joins never alias an old identity —
// signed bids name "P<i+1>" and identity reuse would let an old member's
// envelopes verify for a new one. Note the load originator
// (Network.Originator) can never leave: NCP-FE pins P1, NCP-NFE pins the
// highest index, so under NCP-NFE each Join transfers the originator role
// to the newcomer.
type BidSession struct {
	base  Config // Network, Z, Fine, Keys; TrueW/Behaviors are per-round
	trueW []float64
	gone  []bool
	salt  string

	cache        *bidCache
	cacheProfile []bidProfile

	rounds     int
	rebids     int
	sinceRebid int
	saved      bus.Stats
}

// NewBidSession creates a session over cfg's network class, bus rate,
// initial member rates, fine policy and keyring. cfg.Behaviors, Seed,
// NBlocks, BlockSize, Faults and Retry are per-job (JobConfig) and must be
// zero here. A nil cfg.Keys gets a fresh keyring — the ring is what lets a
// reuse round's fresh PKI registry verify envelopes signed rounds ago.
func NewBidSession(cfg Config) (*BidSession, error) {
	if cfg.Behaviors != nil || cfg.Faults != nil || cfg.NBlocks != 0 || cfg.BlockSize != 0 || cfg.Seed != 0 || (cfg.Retry != RetryPolicy{}) || cfg.Tracer != nil {
		return nil, errors.New("protocol: per-job fields (Behaviors, Seed, NBlocks, BlockSize, Faults, Retry, Tracer) belong in JobConfig, not the session Config")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &BidSession{
		base:  cfg,
		trueW: append([]float64(nil), cfg.TrueW...),
		gone:  make([]bool, len(cfg.TrueW)),
		salt:  sessionSalt(cfg),
	}
	if s.base.Keys == nil {
		s.base.Keys = sig.NewKeyring()
	}
	return s, nil
}

// sessionSalt derives a deterministic session identifier from the
// founding configuration, so round IDs are reproducible for a given
// session history (no clock, no global RNG).
func sessionSalt(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%g|%v", cfg.Network, cfg.Z, cfg.TrueW)
	return fmt.Sprintf("s%016x", h.Sum64())
}

// Run serves one load. It decides reuse-vs-rebid by comparing this job's
// bid profile against the cached one, stamps the round with a fresh
// session-salted ID, and on a rebid round captures the new bid set. A
// round that errors changes no session state other than consuming its
// round number.
func (s *BidSession) Run(job JobConfig) (*Outcome, error) {
	s.rounds++
	round := fmt.Sprintf("%s:r%d", s.salt, s.rounds)
	cfg := s.roundConfig(job)
	prof := profileFor(cfg)

	if s.cache != nil && profilesEqual(prof, s.cacheProfile) {
		out, _, err := executeRound(cfg, roundBinding{round: round, epoch: s.cache.epoch}, s.cache)
		if err != nil {
			return nil, err
		}
		s.sinceRebid++
		s.saved.Messages += s.cache.bidding.Messages
		s.saved.Deliveries += s.cache.bidding.Deliveries
		s.saved.Units += s.cache.bidding.Units
		return out, nil
	}

	out, cache, err := executeRound(cfg, roundBinding{round: round, epoch: round}, nil)
	if err != nil {
		return nil, err
	}
	s.rebids++
	s.sinceRebid = 0
	// Bidding-phase evictions permanently remove members; the captured
	// cache (if any) already holds survivors only, so the profile it is
	// filed under must mark the evicted absent too.
	for i, ev := range out.Evicted {
		if ev && i < len(s.gone) {
			s.gone[i] = true
			prof[i] = bidProfile{}
		}
	}
	if cache != nil {
		// A terminated Bidding phase (equivocation verdict, unfounded
		// accusation) yields no cache; the previous cache — if its member
		// set still matches a future profile — remains serviceable.
		s.cache = cache
		s.cacheProfile = prof
	}
	return out, nil
}

// roundConfig assembles the per-round protocol Config: session state plus
// the job's load-specific fields, with departed members forced to Abstain.
func (s *BidSession) roundConfig(job JobConfig) Config {
	cfg := Config{
		Network:   s.base.Network,
		Z:         s.base.Z,
		TrueW:     append([]float64(nil), s.trueW...),
		Fine:      s.base.Fine,
		NBlocks:   job.NBlocks,
		BlockSize: job.BlockSize,
		Seed:      job.Seed,
		Faults:    job.Faults,
		Retry:     job.Retry,
		Keys:      s.base.Keys,
		Tracer:    job.Tracer,
	}
	behaviors := make([]agent.Behavior, len(s.trueW))
	for i := range behaviors {
		if i < len(job.Behaviors) {
			behaviors[i] = job.Behaviors[i]
		}
		if s.gone[i] {
			behaviors[i] = agent.Behavior{Name: "departed", Abstain: true}
		}
	}
	cfg.Behaviors = behaviors
	return cfg
}

// profileFor derives the bid profile a Config would produce, mirroring
// agent.Bid/SecondBid exactly (same expressions, so float equality is
// sound).
func profileFor(cfg Config) []bidProfile {
	prof := make([]bidProfile, len(cfg.TrueW))
	for i, w := range cfg.TrueW {
		var b agent.Behavior
		if i < len(cfg.Behaviors) {
			b = cfg.Behaviors[i]
		}
		b = b.Normalize()
		if b.Abstain {
			continue
		}
		p := bidProfile{present: true, bid: b.BidFactor * w, accuses: b.FalseEquivocationReport}
		if b.Equivocate {
			p.hasSecond = true
			p.second = p.bid * b.EquivocationFactor
		}
		prof[i] = p
	}
	return prof
}

func profilesEqual(a, b []bidProfile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Join adds a member with per-unit processing time w and returns its
// config index. The next Run re-bids (the profile grew). Under NCP-NFE the
// newcomer becomes the load originator (P_m originates).
func (s *BidSession) Join(w float64) (int, error) {
	if !(w > 0) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("protocol: invalid rate %v", w)
	}
	s.trueW = append(s.trueW, w)
	s.gone = append(s.gone, false)
	return len(s.trueW) - 1, nil
}

// Leave removes member i from all future rounds. The load originator
// cannot leave (without it there is no load source), and at least two
// members must remain. The next Run re-bids.
func (s *BidSession) Leave(i int) error {
	if i < 0 || i >= len(s.trueW) {
		return fmt.Errorf("protocol: no member %d", i)
	}
	if s.gone[i] {
		return fmt.Errorf("protocol: member P%d already left", i+1)
	}
	if i == s.base.Network.Originator(len(s.trueW)) {
		return fmt.Errorf("protocol: the load-originating processor P%d cannot leave", i+1)
	}
	active := 0
	for j, g := range s.gone {
		if !g && j != i {
			active++
		}
	}
	if active < 2 {
		return errors.New("protocol: need at least two remaining members")
	}
	s.gone[i] = true
	return nil
}

// AnnounceRate records member i's new per-unit processing time. If the
// value actually differs, the next Run re-bids; announcing the current
// rate changes nothing and triggers no rebid (the profile is unchanged).
func (s *BidSession) AnnounceRate(i int, w float64) error {
	if i < 0 || i >= len(s.trueW) {
		return fmt.Errorf("protocol: no member %d", i)
	}
	if s.gone[i] {
		return fmt.Errorf("protocol: member P%d has left", i+1)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("protocol: invalid rate %v", w)
	}
	s.trueW[i] = w
	return nil
}

// Members lists the active members.
func (s *BidSession) Members() []Member {
	var out []Member
	for i, w := range s.trueW {
		if !s.gone[i] {
			out = append(out, Member{Index: i, ID: fmt.Sprintf("P%d", i+1), W: w})
		}
	}
	return out
}

// Stats reports the session counters.
func (s *BidSession) Stats() SessionStats {
	st := SessionStats{
		Rounds:           s.rounds,
		Rebids:           s.rebids,
		RoundsSinceRebid: s.sinceRebid,
		SavedMessages:    s.saved.Messages,
		SavedDeliveries:  s.saved.Deliveries,
		SavedUnits:       s.saved.Units,
	}
	if s.cache != nil {
		st.BidEpoch = s.cache.epoch
	}
	return st
}
