// Package protocol executes the DLS-BL-NCP mechanism end-to-end
// (Section 4 of the paper): m strategic processors on a bus network
// without a control processor run the five phases — Initialization,
// Bidding, Allocating Load, Processing Load, Computing Payments — with a
// passive referee adjudicating deviations and a payment ledger settling
// compensations, bonuses, fines and rewards.
//
// The processors follow pluggable strategies (internal/agent), so every
// deviation class the paper enumerates can be injected and its economic
// consequence measured. A Run produces a full Outcome: bids, allocation,
// realized schedule, meter readings, payments, fines, per-processor
// utilities and the bus traffic statistics behind the Θ(m²)
// communication-complexity theorem.
package protocol

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/payment"
	"dlsbl/internal/referee"
	"dlsbl/internal/sig"
	"dlsbl/internal/workload"
)

// Reserved ledger/bus identities.
const (
	UserID = "user"
)

// Config describes one protocol run.
type Config struct {
	// Network must be NCPFE or NCPNFE — the two classes DLS-BL-NCP
	// targets. (The CP class has a trusted control processor and runs
	// DLS-BL directly via internal/core.)
	Network dlt.Network
	// Z is the per-unit communication time of the bus.
	Z float64
	// TrueW are the private per-unit processing times t_i = w_i.
	TrueW []float64
	// Behaviors assigns a strategy to each processor; nil entries and a
	// short slice default to honest.
	Behaviors []agent.Behavior
	// Fine is the publicly known fine magnitude F. Zero selects
	// referee.SuggestedFine over the bids.
	Fine float64
	// NBlocks is the dataset granularity; zero selects 64·m blocks.
	NBlocks int
	// BlockSize is the block payload size in bytes; zero selects 32.
	BlockSize int
	// Seed drives key generation and the synthetic dataset.
	Seed int64
	// Faults, when non-nil, replaces the paper's reliable atomic-broadcast
	// bus with a seeded adversarial link layer (drops, duplicates, delays,
	// signature-breaking corruption, reordering, latency jitter, crashed
	// endpoints). The protocol then runs its reliable-transport machinery:
	// nonce-deduplicated retransmission with capped exponential backoff,
	// and eviction of unreachable processors with survivor re-allocation.
	// Nil keeps the reliable bus and costs nothing.
	Faults *bus.FaultPlan
	// Retry bounds the retransmission machinery; the zero value selects
	// the defaults documented on RetryPolicy. Ignored (but validated)
	// when Faults is nil, since a reliable bus never retries.
	Retry RetryPolicy
	// Keys, when non-nil, is a warm keypair cache shared across runs:
	// setup reuses cached pairs for the user, referee and processor
	// identities instead of generating fresh ones, and deposits newly
	// generated pairs back. Ed25519 key generation dominates Run's cost,
	// so a long-lived pool pays it once per identity, not once per job.
	// The economics are unaffected — payments, fines and utilities depend
	// on bids and meters, never on key bytes — so a warm run's ledger is
	// bit-identical to a cold run's with the same Seed.
	Keys *sig.Keyring
	// Tracer, when non-nil, receives structured span and event records for
	// the run: one span per protocol phase (with the session round ID and
	// bid epoch), and one event per bus delivery outcome, transport
	// decision (dedup hit, retransmit, timeout) and protocol incident
	// (eviction, bid reuse, conviction). A Tracer only observes — the nil
	// path executes the exact pre-tracing instruction stream, so payments
	// and audit transcripts are bit-identical with tracing on or off
	// (TestTracerNilParity).
	Tracer obs.Tracer
	// Codec selects the envelope payload encoding for the hot phase
	// payloads the run seals (bids, bid vectors, payments, meters). The
	// zero value is CodecJSON — the legacy wire format. CodecBinary uses
	// the deterministic length-prefixed encoding (sig.BinaryAppender),
	// which skips encoding/json on the hot path; both encodings are
	// self-describing on the wire, so receivers need no configuration and
	// mixed traffic decodes fine. Payments, verdicts and transcripts are
	// bit-identical under either codec (TestHotPathParity).
	Codec sig.Codec
	// Medium, when non-nil, carries the run's control-plane traffic
	// instead of a freshly built simulated bus: every signed envelope
	// (bids, bid vectors, meters, payments) travels through it, with the
	// retry/dedup/eviction machinery of the reliable transport layered
	// on top unchanged. internal/netbus provides the real-socket (UDP)
	// implementation, so a Medium-backed run can span OS processes; the
	// simulated bus remains the deterministic default when Medium is
	// nil. The run attaches its processor and referee identities on
	// setup, so a long-lived Medium must accept re-attachment of known
	// endpoints (bus.Medium documents this). Mutually exclusive with
	// Faults — an external medium owns its own failure behavior.
	Medium bus.Medium
	// LoadFrac is the fraction of the full load this run serves; zero
	// selects 1 (the whole load). The pipelined scheduler sets it on
	// installment sub-rounds so the money flow scales with the work: the
	// meters φ_i, payments, fines-eligible work compensation and the
	// user's invoice all carry the factor, and the per-installment
	// payments telescope back to the single-round payment (exactly so at
	// LoadFrac=1, where every scaling multiplication is by the float
	// constant 1 and therefore bit-identical to the unscaled path).
	LoadFrac float64
	// Memo, when non-nil, routes every envelope verification in the run
	// (transport arrivals, cached bids, referee re-opens) through a
	// sig.BatchVerifier consulting this verified-envelope memo. A memo hit
	// is possible only for a byte-identical envelope that already verified
	// against the same registered key, so adjudications are unchanged —
	// the memo is what lets a BidSession's reuse rounds skip re-verifying
	// bit-identical cached envelopes. Share one memo across the rounds of
	// a session or pool; nil keeps the legacy per-envelope verification.
	Memo *sig.VerifyMemo
	// Standby arms a standby referee: a replica endpoint
	// (referee.StandbyAccount) attaches to the bus, the primary referee
	// streams every audit append, meter reading, eviction and installment
	// binding to it over the reliable transport, and the standby verifies
	// the stream against the incremental hash chain. The replication is
	// observation only — verdicts, payments and the primary's transcript
	// are bit-identical with Standby on or off — until FailoverIn promotes
	// the standby mid-round.
	Standby bool
	// FailoverIn, when non-empty, kills the primary referee at the start
	// of the named phase (obs.PhaseAllocating, obs.PhaseProcessing or
	// obs.PhasePayments) and promotes the standby: the promoted referee
	// adjudicates the rest of the round from the replicated state, with
	// verdicts and payments bit-identical to an uninterrupted primary's.
	// Requires Standby.
	FailoverIn string
}

func (c *Config) validate() error {
	if c.Network != dlt.NCPFE && c.Network != dlt.NCPNFE {
		return fmt.Errorf("protocol: DLS-BL-NCP requires an NCP network class, got %v", c.Network)
	}
	if len(c.TrueW) < 2 {
		return errors.New("protocol: need at least two processors")
	}
	for i, w := range c.TrueW {
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("protocol: invalid true value w[%d]=%v", i, w)
		}
	}
	if !(c.Z >= 0) || math.IsInf(c.Z, 0) {
		return fmt.Errorf("protocol: invalid z=%v", c.Z)
	}
	if c.Fine < 0 || math.IsNaN(c.Fine) || math.IsInf(c.Fine, 0) {
		return fmt.Errorf("protocol: invalid fine %v", c.Fine)
	}
	if c.NBlocks < 0 || c.BlockSize < 0 {
		return errors.New("protocol: negative dataset parameters")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Medium != nil && c.Faults != nil {
		return errors.New("protocol: Medium and Faults are mutually exclusive (an external medium owns its own failure behavior)")
	}
	if err := c.Retry.validate(); err != nil {
		return err
	}
	if c.Codec != sig.CodecJSON && c.Codec != sig.CodecBinary {
		return fmt.Errorf("protocol: unknown payload codec %d", c.Codec)
	}
	if c.LoadFrac != 0 && (!(c.LoadFrac > 0) || c.LoadFrac > 1) {
		return fmt.Errorf("protocol: load fraction %v outside (0,1]", c.LoadFrac)
	}
	switch c.FailoverIn {
	case "", obs.PhaseAllocating, obs.PhaseProcessing, obs.PhasePayments:
	default:
		return fmt.Errorf("protocol: unknown failover phase %q", c.FailoverIn)
	}
	if c.FailoverIn != "" && !c.Standby {
		return errors.New("protocol: FailoverIn requires Standby")
	}
	return nil
}

// EvictionEvent records a processor's removal from a run for
// unreachability. An eviction is an availability failure, not an offense:
// no fine is assessed, the survivors re-solve the allocation over the
// reduced bid vector (any participant subset is still optimal by
// Theorem 2.2), and the referee's audit transcript carries a dedicated
// "eviction" entry so the event stays distinguishable from a strategic
// fine.
type EvictionEvent struct {
	Proc   string // processor id, e.g. "P3"
	Phase  string // phase that declared unreachability
	Reason string
}

// Outcome records everything a protocol run produced.
type Outcome struct {
	// Completed is true when all five phases finished; false when a
	// verdict terminated the run early.
	Completed bool
	// TerminatedIn names the phase a terminating verdict fired in.
	TerminatedIn string
	// Verdicts lists every adjudication, clean ones included.
	Verdicts []referee.Verdict

	// Procs names every configured processor (P1…Pm in config order).
	Procs []string
	// Participated[i] is false for processors that abstained (did not
	// broadcast a bid); all their per-processor entries below are zero
	// and their utility is 0, per the paper's Bidding phase.
	Participated []bool
	Bids         []float64
	Alloc        dlt.Allocation
	// Assignments are the block ranges the allocation maps to.
	Assignments []workload.Assignment
	// Exec are the execution values w̃ derived from the meters (only for
	// completed runs).
	Exec []float64
	// Phi are the raw meter readings φ_i = α_i·w̃_i.
	Phi []float64
	// Payments is the vector Q forwarded to the payment infrastructure.
	Payments []float64
	// Fines[i] is the total fines processor i paid.
	Fines []float64
	// Rewards[i] is the total fine redistributions processor i received.
	Rewards []float64
	// Utilities[i] is the processor's final economic position: every
	// ledger flow it saw (payments + rewards − fines) minus the cost of
	// the work it actually performed.
	Utilities []float64
	// WorkCost[i] is that cost, α_i·w̃_i over the work actually done.
	WorkCost []float64

	// Timeline is the realized schedule (completed runs only). Its
	// processor indices are in participant order — when processors
	// abstained, row k is the k-th participant, not config index k.
	Timeline dlt.Timeline
	// Makespan is the realized total execution time.
	Makespan float64
	// Invoice is the bill forwarded to the payment infrastructure
	// (completed runs only).
	Invoice payment.Invoice
	// UserCost is what the user paid in total.
	UserCost float64
	// Evicted[i] is true for processors removed mid-run for
	// unreachability (only possible under a FaultPlan). Their payments,
	// fines and utilities are zero; Evictions holds the audited events.
	Evicted []bool
	// Evictions lists the eviction events in occurrence order.
	Evictions []EvictionEvent
	// Fault counts what the reliable-transport layer did (retransmits,
	// dedup discards, backoff time, evictions); all zeros on a reliable
	// bus.
	Fault FaultStats
	// RoundID is the session-salted round identifier this outcome was
	// produced under; empty for standalone Run invocations.
	RoundID string
	// BidReused is true when the round was served from a BidSession's
	// cached bid set instead of a fresh Bidding phase.
	BidReused bool
	// BidSpliced is true when the round ran an incremental re-bid: a
	// single changed member broadcast a fresh bid and the referee spliced
	// it into the cached bid set (everyone else's bid stayed in its
	// original epoch). Mutually exclusive with BidReused.
	BidSpliced bool
	// Installment is the 1-based installment number when this outcome is
	// one sub-round of a pipelined load; 0 for whole-load rounds.
	Installment int
	// LoadFraction is the fraction of the full load this outcome covers:
	// 1 for whole-load rounds, the installment's share for sub-rounds,
	// and 1 again for an aggregated pipelined outcome (its installments
	// sum to the whole load).
	LoadFraction float64
	// Installments holds the per-installment outcomes of a pipelined
	// load, in installment order. Each carries its own sub-round ID and
	// independently verifiable Transcript; the aggregate's own Transcript
	// is nil (there is no single referee log spanning sub-rounds — that
	// separability is what keeps per-job and per-installment evidence
	// auditable in isolation). Nil for ordinary rounds.
	Installments []*Outcome
	// BusStats is the control-plane traffic (Theorem 5.4), including the
	// bus-level fault counters (drops, duplicates, …).
	BusStats bus.Stats
	// Transcript is the referee's hash-chained audit log; verify it with
	// referee.VerifyEntries.
	Transcript []referee.AuditEntry
	// FineMagnitude is the F in force.
	FineMagnitude float64
}

// run carries the mutable state threaded through the phases. All
// per-processor state inside the run is in PARTICIPANT space (abstainers
// filtered out); finish() expands it back to config space.
type run struct {
	cfg   Config
	fullM int
	part  []int // participant→config index
	// initialPart snapshots part before any eviction, for the
	// Participated expansion.
	initialPart []int
	// evictedCfg lists config indices of evicted processors.
	evictedCfg []int
	m          int
	procs      []string
	agents     []*agent.Agent
	keys       map[string]*sig.KeyPair
	reg        *sig.Registry
	net        bus.Medium
	xp         *transport
	ledger     *payment.Ledger
	ref        *referee.Referee
	refKey     *sig.KeyPair
	// refAddr is the bus endpoint referee-bound traffic targets:
	// referee.Account until a failover promotes the standby, then
	// referee.StandbyAccount.
	refAddr string
	// standby / standbyKey exist when cfg.Standby armed replication;
	// failedOver latches once the standby has been promoted.
	standby    *referee.Standby
	standbyKey *sig.KeyPair
	failedOver bool
	userKey    *sig.KeyPair
	dataset    *workload.Dataset
	mech       core.Mechanism
	// engine is the O(m) payment engine behind the Computing Payments
	// phase; payOut is its reused scratch Outcome, so repeated protocol
	// rounds do not allocate per-run payment state.
	engine  *core.PaymentEngine
	payOut  core.Outcome
	outcome *Outcome
	bidEnvs []sig.Envelope // agreed signed bid of each processor, index order
	bids    []float64
	alloc   dlt.Allocation
	assigns []workload.Assignment
	nBlocks int
	origIdx int
	// roundID / bidEpoch are the session round identifiers (see
	// roundBinding); both empty for standalone runs.
	roundID  string
	bidEpoch string
	// loadFrac is cfg.LoadFrac with the zero default resolved to 1, and
	// inst/instOf name the installment this run serves (0/0 for
	// whole-load rounds). policy is the load's installment division
	// policy; it only matters when instOf > 1.
	loadFrac float64
	inst     int
	instOf   int
	policy   dlt.RoundPolicy
	// epochs, when non-nil, holds the per-participant bid epoch in force
	// (spliced caches mix epochs); nil means bidEpoch applies uniformly.
	epochs []string
	// ver is the run's batch verifier (non-nil iff cfg.Memo is set); the
	// transport and the referee route verification through it.
	ver *sig.BatchVerifier
	// tracer is cfg.Tracer, threaded here (and into the bus and the
	// transport) so phases can emit protocol-level events; nil when
	// tracing is off.
	tracer obs.Tracer
}

// epochOf returns the bid epoch in force for participant i.
func (r *run) epochOf(i int) string {
	if r.epochs != nil {
		return r.epochs[i]
	}
	return r.bidEpoch
}

// seal signs v under the run's configured payload codec.
func (r *run) seal(k *sig.KeyPair, kind string, v any) (sig.Envelope, error) {
	return sig.SealCodec(k, kind, v, r.cfg.Codec)
}

// open verifies an envelope (through the batch verifier when the run has
// one) and decodes its payload.
func (r *run) open(env *sig.Envelope, v any) error {
	if r.ver != nil {
		return r.ver.Open(env, v)
	}
	return env.Open(r.reg, v)
}

// roundBinding names the session round a protocol execution belongs to.
// round is the current round's session-salted ID, stamped on every signed
// per-round artifact (bid vectors, payment vectors) and on every audit
// entry; epoch is the round the bid set in force was signed in — equal to
// round when this execution runs its own Bidding phase, older when it is
// served from a BidSession cache. The zero value is the standalone case:
// no message carries a round and none is checked.
type roundBinding struct {
	round string
	epoch string
	// inst / instOf, when instOf > 1, mark this execution as installment
	// inst of instOf sub-rounds of one pipelined load; the referee enters
	// an "installment" transcript entry so the audit shows the structure.
	// policy is the load's installment division policy — it selects the
	// R-installment makespan terms of the payment rule.
	inst   int
	instOf int
	policy dlt.RoundPolicy
}

// Run executes the protocol standalone: five full phases, no session.
func Run(cfg Config) (*Outcome, error) {
	out, _, err := executeRound(cfg, roundBinding{}, nil, nil)
	return out, err
}

// RunRound is Run with an explicit round identity. Sessions mint their
// own round IDs; a standalone round normally runs anonymously, which
// leaves trace-context-bearing media (the netbus) nothing to stamp into
// frames. Deployment drivers that want datagrams attributed to the
// round pass one here. The ID is observational — two runs differing
// only in it settle identically — but it must match across runs whose
// transcripts are compared for parity.
func RunRound(cfg Config, round string) (*Outcome, error) {
	out, _, err := executeRound(cfg, roundBinding{round: round}, nil, nil)
	return out, err
}

// executeRound executes one protocol round. With a nil cache it runs the
// full five phases and, when Bidding completes cleanly, captures the
// verified bid set into a fresh bidCache for reuse. With a non-nil cache
// it skips the Θ(m²) bid exchange entirely: the cached, already-verified
// signed bids are re-checked against this round's fresh PKI registry (an
// O(m) pass) and the remaining phases run against them. A non-nil splice
// additionally runs the incremental re-bid path: one changed member
// broadcasts a fresh bid and the cache supplies everyone else's.
func executeRound(cfg Config, rb roundBinding, cache *bidCache, splice *spliceOp) (*Outcome, *bidCache, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	// Phase spans. Every BeginPhase is paired with an EndPhase on every
	// exit path — including terminating verdicts and errors — so a trace
	// of a failed run still renders closed slices.
	tr := cfg.Tracer
	begin := func(name string) {
		if tr != nil {
			tr.BeginPhase(name, rb.round, rb.epoch)
		}
	}
	end := func(name string) {
		if tr != nil {
			tr.EndPhase(name)
		}
	}
	begin(obs.PhaseInit)
	r, err := setup(cfg)
	end(obs.PhaseInit)
	if err != nil {
		return nil, nil, err
	}
	r.roundID, r.bidEpoch = rb.round, rb.epoch
	r.inst, r.instOf, r.policy = rb.inst, rb.instOf, rb.policy
	// Media that carry a trace context on the wire (the netbus) get this
	// round's identity stamped into outgoing frames; the simulated bus
	// has no such method and is untouched. Independent of the local
	// tracer: remote nodes attribute datagrams to rounds even when the
	// driver itself records nothing.
	if rc, ok := r.net.(interface{ SetRoundContext(round, epoch string) }); ok {
		rc.SetRoundContext(rb.round, rb.epoch)
	}
	if tr != nil {
		r.tracer = tr
		r.net.SetTracer(tr)
		r.xp.tracer = tr
	}
	var fresh *bidCache
	finish := func(e error) (*Outcome, *bidCache, error) {
		out, ferr := r.finish(e)
		if ferr != nil {
			return nil, nil, ferr
		}
		out.RoundID = rb.round
		out.BidReused = cache != nil && splice == nil
		out.BidSpliced = cache != nil && splice != nil
		return out, fresh, nil
	}
	switch {
	case cache != nil && splice != nil:
		begin(obs.PhaseBidding)
		fresh, err = r.spliceBidding(cache, *splice)
		end(obs.PhaseBidding)
		if err != nil {
			return nil, nil, err
		}
	case cache != nil:
		begin(obs.PhaseBidding)
		err := r.reuseBidding(cache)
		end(obs.PhaseBidding)
		if err != nil {
			return nil, nil, err
		}
	default:
		begin(obs.PhaseBidding)
		terminated, err := r.phaseBidding()
		end(obs.PhaseBidding)
		if err != nil || terminated {
			// A terminated Bidding phase established no reusable bid set.
			return finish(err)
		}
		fresh = r.captureBidCache()
	}
	begin(obs.PhaseAllocating)
	terminated, err := r.phaseAllocating()
	end(obs.PhaseAllocating)
	if err != nil || terminated {
		return finish(err)
	}
	begin(obs.PhaseProcessing)
	err = r.phaseProcessing()
	end(obs.PhaseProcessing)
	if err != nil {
		return finish(err)
	}
	begin(obs.PhasePayments)
	err = r.phasePayments()
	end(obs.PhasePayments)
	if err != nil {
		return finish(err)
	}
	r.outcome.Completed = true
	return finish(nil)
}

func setup(cfg Config) (*run, error) {
	fullM := len(cfg.TrueW)
	behaviorOf := func(i int) agent.Behavior {
		if i < len(cfg.Behaviors) {
			return cfg.Behaviors[i]
		}
		return agent.Behavior{}
	}
	// Abstainers never broadcast a bid; the protocol runs over the
	// participants only (Section 4: non-participants receive utility 0).
	var part []int
	for i := 0; i < fullM; i++ {
		if !behaviorOf(i).Abstain {
			part = append(part, i)
		}
	}
	if len(part) < 2 {
		return nil, errors.New("protocol: need at least two participating processors")
	}
	loadHolder := cfg.Network.Originator(fullM)
	if behaviorOf(loadHolder).Abstain {
		return nil, fmt.Errorf("protocol: the load-originating processor P%d cannot abstain", loadHolder+1)
	}
	m := len(part)
	r := &run{
		cfg:      cfg,
		fullM:    fullM,
		part:     part,
		m:        m,
		keys:     make(map[string]*sig.KeyPair, m+2),
		reg:      sig.NewRegistry(),
		mech:     core.Mechanism{Network: cfg.Network, Z: cfg.Z},
		engine:   core.NewPaymentEngine(cfg.Network, cfg.Z),
		outcome:  &Outcome{},
		origIdx:  cfg.Network.Originator(m),
		nBlocks:  cfg.NBlocks,
		loadFrac: cfg.LoadFrac,
		refAddr:  referee.Account,
	}
	if r.loadFrac == 0 {
		r.loadFrac = 1
	}
	if r.nBlocks == 0 {
		r.nBlocks = 64 * m
	}
	blockSize := cfg.BlockSize
	if blockSize == 0 {
		blockSize = 32
	}

	// Identities, keys, PKI. Participants keep their configured names.
	for _, orig := range part {
		r.procs = append(r.procs, fmt.Sprintf("P%d", orig+1))
	}
	seed := cfg.Seed
	newKey := func(id string) (*sig.KeyPair, error) {
		// The per-identity seed advances whether or not the ring hits, so
		// a partially warm ring generates the same keys a cold run would.
		seed++
		if k, ok := cfg.Keys.Get(id); ok {
			if err := r.reg.Register(id, k.Public); err != nil {
				return nil, err
			}
			r.keys[id] = k
			return k, nil
		}
		k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(seed))
		if err != nil {
			return nil, err
		}
		if err := r.reg.Register(id, k.Public); err != nil {
			return nil, err
		}
		r.keys[id] = k
		if cfg.Keys != nil {
			if err := cfg.Keys.Put(k); err != nil {
				return nil, err
			}
		}
		return k, nil
	}
	var err error
	if r.userKey, err = newKey(UserID); err != nil {
		return nil, err
	}
	if r.refKey, err = newKey(referee.Account); err != nil {
		return nil, err
	}
	for i, id := range r.procs {
		k, err := newKey(id)
		if err != nil {
			return nil, err
		}
		orig := part[i]
		a, err := agent.New(id, k, cfg.TrueW[orig], behaviorOf(orig))
		if err != nil {
			return nil, err
		}
		r.agents = append(r.agents, a)
	}

	// The standby key is generated LAST so that every earlier identity's
	// deterministic key — and therefore every signed artifact and payment
	// of the run — is bit-identical to a non-standby run's with the same
	// Seed.
	if cfg.Standby {
		if r.standbyKey, err = newKey(referee.StandbyAccount); err != nil {
			return nil, err
		}
		r.standby = referee.NewStandby()
	}

	r.initialPart = append([]int(nil), part...)

	// Bus (reliable or fault-injected), transport, ledger, dataset.
	// A typo'd Unresponsive name would otherwise be silently inert.
	if cfg.Faults != nil {
		known := make(map[string]bool, len(r.procs))
		for _, id := range r.procs {
			known[id] = true
		}
		for _, id := range cfg.Faults.Unresponsive {
			if !known[id] {
				return nil, fmt.Errorf("protocol: fault plan marks unknown processor %q unresponsive (have %v)", id, r.procs)
			}
		}
		for _, c := range cfg.Faults.Crashes {
			if !known[c.Proc] {
				return nil, fmt.Errorf("protocol: fault plan crashes unknown processor %q (have %v)", c.Proc, r.procs)
			}
		}
	}
	if cfg.Medium != nil {
		r.net = cfg.Medium
	} else if r.net, err = bus.NewFaulty(cfg.Z, cfg.Faults); err != nil {
		return nil, err
	}
	if r.xp, err = newTransport(r.net, r.reg, cfg.Retry); err != nil {
		return nil, err
	}
	if cfg.Memo != nil {
		// One batch verifier per run (it is not concurrency-safe), but the
		// memo it consults is the caller's and outlives the run — that is
		// what makes reuse rounds' verifications collapse into memo hits.
		r.ver = sig.NewBatchVerifier(r.reg, cfg.Memo)
		r.xp.ver = r.ver
	}
	endpoints := append(append([]string(nil), r.procs...), referee.Account)
	if cfg.Standby {
		endpoints = append(endpoints, referee.StandbyAccount)
	}
	for _, id := range endpoints {
		if err := r.net.Attach(id); err != nil {
			return nil, err
		}
	}
	accounts := append([]string{UserID, referee.Account}, r.procs...)
	if r.ledger, err = payment.NewLedger(accounts...); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := workload.SyntheticData(rng, r.nBlocks*blockSize)
	// Lazy preparation: chunking and identification happen now, the ~8·m
	// per-block user signatures only when a block's integrity is actually
	// contested (Dataset.Seal / Verify). Sealing is deterministic, so a
	// contested round's dataset is bit-identical to an eager one's.
	if r.dataset, err = workload.PrepareLazy(r.userKey, data, blockSize); err != nil {
		return nil, err
	}
	return r, nil
}

// finish assembles the Outcome from the run state and the ledger,
// expanding every per-processor series from participant space back to
// config space (abstainers get zero entries).
func (r *run) finish(err error) (*Outcome, error) {
	if err != nil {
		return nil, err
	}
	o := r.outcome
	o.Installment = r.inst
	o.LoadFraction = r.loadFrac
	o.BusStats = r.net.Stats()
	o.Fault = r.xp.stats
	if r.ref != nil {
		o.FineMagnitude = r.ref.Fine()
		o.Transcript = r.ref.Transcript()
	}

	fines := make([]float64, r.m)
	rewards := make([]float64, r.m)
	utilities := make([]float64, r.m)
	workCost := o.WorkCost
	if workCost == nil {
		workCost = make([]float64, r.m)
	}
	index := make(map[string]int, r.m)
	for i, p := range r.procs {
		index[p] = i
	}
	for _, e := range r.ledger.History() {
		if i, ok := index[e.From]; ok && e.To == referee.Account {
			fines[i] += e.Amount
		}
		if i, ok := index[e.To]; ok && e.From == referee.Account {
			rewards[i] += e.Amount
		}
	}
	for i, p := range r.procs {
		bal, berr := r.ledger.Balance(p)
		if berr != nil {
			return nil, berr
		}
		utilities[i] = bal - workCost[i]
	}
	userBal, berr := r.ledger.Balance(UserID)
	if berr != nil {
		return nil, berr
	}
	o.UserCost = -userBal

	// Expansion to config space.
	o.Procs = make([]string, r.fullM)
	o.Participated = make([]bool, r.fullM)
	for i := range o.Procs {
		o.Procs[i] = fmt.Sprintf("P%d", i+1)
	}
	expand := func(sub []float64) []float64 {
		if sub == nil {
			return nil
		}
		full := make([]float64, r.fullM)
		for i, orig := range r.part {
			full[orig] = sub[i]
		}
		return full
	}
	o.Evicted = make([]bool, r.fullM)
	for _, orig := range r.initialPart {
		o.Participated[orig] = true
	}
	for _, orig := range r.evictedCfg {
		o.Evicted[orig] = true
	}
	o.Bids = expand(r.bids)
	o.Alloc = dlt.Allocation(expand(r.alloc))
	o.Exec = expand(o.Exec)
	o.Phi = expand(o.Phi)
	o.Payments = expand(o.Payments)
	o.Fines = expand(fines)
	o.Rewards = expand(rewards)
	o.Utilities = expand(utilities)
	o.WorkCost = expand(workCost)
	if r.assigns != nil {
		full := make([]workload.Assignment, r.fullM)
		for i, orig := range r.part {
			full[orig] = r.assigns[i]
		}
		o.Assignments = full
	}
	return o, nil
}

// applyEvictions removes unreachable processors (participant indices →
// reason) from the run: the survivors carry on with the reduced bid
// vector, which phaseAllocating re-solves — optimal for any participant
// subset by Theorem 2.2. The load-originating processor cannot be
// evicted (without it there is no load), and at least two survivors must
// remain.
func (r *run) applyEvictions(evict map[int]string, phase string) error {
	if len(evict) == 0 {
		return nil
	}
	if reason, gone := evict[r.origIdx]; gone {
		return fmt.Errorf("protocol: load-originating processor %s unreachable (%s); no survivor can source the load",
			r.procs[r.origIdx], reason)
	}
	if r.m-len(evict) < 2 {
		return fmt.Errorf("protocol: only %d of %d processors reachable; need at least two", r.m-len(evict), r.m)
	}
	idxs := make([]int, 0, len(evict))
	for i := range evict {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r.outcome.Evictions = append(r.outcome.Evictions, EvictionEvent{
			Proc: r.procs[i], Phase: phase, Reason: evict[i],
		})
		r.evictedCfg = append(r.evictedCfg, r.part[i])
		r.xp.stats.Evictions++
		if r.tracer != nil {
			r.tracer.Event(obs.Event{
				Kind: obs.EvEviction, From: r.procs[i], Round: r.roundID, Detail: evict[i],
			})
		}
	}
	// Per-participant series established by earlier phases shrink with the
	// pool: an eviction after Bidding (a mid-computation crash) must keep
	// bids, envelopes, epochs, allocation and assignments index-aligned
	// with the survivors. dropEvicted is a no-op for not-yet-built slices.
	r.bids = dropEvicted(r.bids, r.m, evict)
	r.bidEnvs = dropEvicted(r.bidEnvs, r.m, evict)
	r.epochs = dropEvicted(r.epochs, r.m, evict)
	r.alloc = dlt.Allocation(dropEvicted([]float64(r.alloc), r.m, evict))
	r.assigns = dropEvicted(r.assigns, r.m, evict)
	part := r.part[:0]
	procs := r.procs[:0]
	agents := r.agents[:0]
	for i := 0; i < r.m; i++ {
		if _, gone := evict[i]; gone {
			continue
		}
		part = append(part, r.part[i])
		procs = append(procs, r.procs[i])
		agents = append(agents, r.agents[i])
	}
	r.part, r.procs, r.agents = part, procs, agents
	r.m = len(part)
	r.origIdx = r.cfg.Network.Originator(r.m)
	return nil
}

// dropEvicted filters a per-participant slice down to the survivors. A
// slice that is not m long (typically nil, not yet established by its
// phase) passes through untouched.
func dropEvicted[T any](s []T, m int, evict map[int]string) []T {
	if len(s) != m {
		return s
	}
	kept := s[:0]
	for i := range s {
		if _, gone := evict[i]; !gone {
			kept = append(kept, s[i])
		}
	}
	return kept
}

// armStandby attaches the standby referee to the freshly created primary:
// the replication send seals each AuditReplicaPayload with the referee
// key, ships it over the reliable transport to the standby endpoint, and
// applies it to the standby's verified replica immediately. No-op when
// the run has no standby.
func (r *run) armStandby() error {
	if r.standby == nil {
		return nil
	}
	return r.ref.AttachStandby(func(p referee.AuditReplicaPayload) error {
		env, err := r.seal(r.refKey, referee.KindAuditReplica, p)
		if err != nil {
			return err
		}
		m, err := r.xp.sendReliable(r.refAddr, referee.StandbyAccount, referee.KindAuditReplica, env, 1)
		if err != nil {
			return err
		}
		return r.standby.Apply(r.reg, m.Env)
	})
}

// failover kills the primary referee and promotes the standby when the
// run is configured to fail over at the start of the given phase. The
// promoted referee adjudicates the rest of the round from the replicated
// state; RecordFailover is the single deliberate transcript divergence
// from an uninterrupted run.
func (r *run) failover(phase string) error {
	if r.standby == nil || r.failedOver || r.cfg.FailoverIn != phase || r.ref == nil {
		return nil
	}
	if err := r.ref.ReplicationErr(); err != nil {
		return fmt.Errorf("protocol: standby not promotable: %w", err)
	}
	if fb, ok := r.net.(*bus.Bus); ok {
		fb.MarkUnresponsive(referee.Account)
	}
	promoted, err := r.standby.Promote(r.reg, r.ledger, r.mech)
	if err != nil {
		return err
	}
	promoted.UseVerifier(r.ver)
	promoted.RecordFailover(referee.Account, referee.StandbyAccount)
	r.ref = promoted
	r.refKey = r.standbyKey
	r.refAddr = referee.StandbyAccount
	r.standby = nil
	r.failedOver = true
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind: obs.EvRefereeFailover, From: referee.Account, To: referee.StandbyAccount,
			Round:  r.roundID,
			Detail: fmt.Sprintf("standby promoted at the start of the %s phase", phase),
		})
	}
	return nil
}

// recordInstallment enters the installment boundary into the referee's
// transcript (and the trace) on sub-rounds; whole-load rounds skip it, so
// their transcripts are byte-identical to the pre-pipelining ones.
func (r *run) recordInstallment() {
	if r.instOf <= 1 || r.ref == nil {
		return
	}
	r.ref.RecordInstallment(r.inst, r.instOf, r.loadFrac, r.policy)
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind:   obs.EvInstallment,
			Round:  r.roundID,
			Detail: fmt.Sprintf("installment %d/%d carrying load fraction %.9g", r.inst, r.instOf, r.loadFrac),
		})
	}
}

// evidence traces one signed, referee-verified submission — the
// material grounding whatever verdict the subsequent judgment returns.
// The economic sentinel's conviction invariant keys on these events: a
// conviction with no preceding evidence event in its round means the
// stream (or the implementation) convicted without adjudicating
// anything verifiable.
func (r *run) evidence(from, kind string) {
	if r.tracer != nil {
		r.tracer.Event(obs.Event{
			Kind: obs.EvEvidence, From: from, To: r.refAddr, Msg: kind, Round: r.roundID,
		})
	}
}

func (r *run) record(v referee.Verdict) {
	r.outcome.Verdicts = append(r.outcome.Verdicts, v)
	if v.Terminates {
		r.outcome.TerminatedIn = v.Phase
	}
	if r.tracer != nil {
		for _, g := range v.Guilty {
			r.tracer.Event(obs.Event{
				Kind: obs.EvConviction, From: g, Round: r.roundID, Detail: v.Reason,
			})
		}
	}
}
