package protocol

import (
	"math"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
)

// Multi-deviant scenarios: the paper's fine distribution is defined for x
// simultaneous deviants ("The referee fines F to the x processors …
// distributes xF/(m−x) to each of the m−x correct processors").

func TestTwoPaymentCheatsBothFined(t *testing.T) {
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[1] = agent.PaymentCheat
	bs[3] = agent.PaymentCheat
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("payment-phase fines must not terminate: %+v", out.Verdicts)
	}
	F := out.FineMagnitude
	for _, i := range []int{1, 3} {
		if relErr(out.Fines[i], F) > tol {
			t.Errorf("cheat P%d fined %v, want F=%v", i+1, out.Fines[i], F)
		}
	}
	// x=2 deviants of m=4: the 2 correct processors receive xF/(m−x) = F
	// each.
	for _, i := range []int{0, 2} {
		if relErr(out.Rewards[i], F) > tol {
			t.Errorf("correct P%d reward %v, want xF/(m−x)=%v", i+1, out.Rewards[i], F)
		}
	}
}

func TestPaymentCheatAndSlackerTogether(t *testing.T) {
	// A payment cheat and a (non-finable) slacker coexist: only the
	// cheat is fined; the slacker just earns a smaller bonus.
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[1] = agent.PaymentCheat
	bs[2] = agent.SlowExecution
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("run terminated")
	}
	if out.Fines[1] != out.FineMagnitude {
		t.Errorf("cheat fined %v", out.Fines[1])
	}
	if out.Fines[2] != 0 {
		t.Errorf("slacker fined %v for a non-protocol deviation", out.Fines[2])
	}
	// The slacker's meter shows the slack.
	if relErr(out.Exec[2], cfg.TrueW[2]*1.5) > tol {
		t.Errorf("slacker exec %v, want %v", out.Exec[2], cfg.TrueW[2]*1.5)
	}
	base, err := Run(honestConfig(dlt.NCPFE))
	if err != nil {
		t.Fatal(err)
	}
	// The slacker also receives a share of the CHEAT's redistributed
	// fine; net of that windfall, slacking still loses money.
	ownEarnings := out.Utilities[2] - out.Rewards[2]
	if ownEarnings >= base.Utilities[2] {
		t.Errorf("slacker earnings %v (ex-rewards) not below honest %v", ownEarnings, base.Utilities[2])
	}
}

func TestEquivocatorPreemptsLaterDeviations(t *testing.T) {
	// A bidding-phase termination means allocation-phase deviants never
	// get to act: only the equivocator is fined.
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[2] = agent.Equivocator
	bs[0] = agent.OverShipper // would deviate later, never reached
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.TerminatedIn != "bidding" {
		t.Fatalf("expected bidding-phase termination, got %+v", out)
	}
	if out.Fines[2] != out.FineMagnitude {
		t.Errorf("equivocator fined %v", out.Fines[2])
	}
	if out.Fines[0] != 0 {
		t.Errorf("unreached over-shipper fined %v", out.Fines[0])
	}
}

func TestCombinedLiarAndEquivocator(t *testing.T) {
	// An overbidding equivocator: both knobs set; the equivocation is
	// what gets it fined.
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[1] = agent.Behavior{Name: "overbid-equivocator", BidFactor: 1.5, Equivocate: true}
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Fatal("equivocation not caught")
	}
	if out.Fines[1] != out.FineMagnitude {
		t.Errorf("fined %v", out.Fines[1])
	}
	// Its recorded bid reflects the lie.
	if relErr(out.Bids[1], cfg.TrueW[1]*1.5) > tol {
		t.Errorf("bid %v, want %v", out.Bids[1], cfg.TrueW[1]*1.5)
	}
}

func TestManyProcessorsOneDeviant(t *testing.T) {
	// Scale check: m=16 with one payment equivocator; the other 15 split
	// the fine.
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1 + float64(i)*0.2
	}
	bs := make([]agent.Behavior, 16)
	bs[7] = agent.PaymentLiar
	out, err := Run(Config{Network: dlt.NCPFE, Z: 0.05, TrueW: w, Behaviors: bs, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("run terminated")
	}
	if out.Fines[7] != out.FineMagnitude {
		t.Errorf("liar fined %v", out.Fines[7])
	}
	share := out.FineMagnitude / 15
	for i := range w {
		if i == 7 {
			continue
		}
		if math.Abs(out.Rewards[i]-share) > 1e-9 {
			t.Errorf("P%d reward %v, want %v", i+1, out.Rewards[i], share)
		}
	}
}

func TestExtremeShortShipClampsToZero(t *testing.T) {
	// Withholding more blocks than the target's entire assignment clamps
	// delivery at zero; cooperative mediation still remediates it.
	cfg := honestConfig(dlt.NCPFE)
	bs := make([]agent.Behavior, len(cfg.TrueW))
	bs[0] = agent.Behavior{Name: "total-withholder", MisallocateExtraBlocks: -100000}
	cfg.Behaviors = bs
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("remediated run terminated in %s", out.TerminatedIn)
	}
	for i, f := range out.Fines {
		if f != 0 {
			t.Errorf("P%d fined %v after cooperative remediation", i+1, f)
		}
	}
}

func TestAllBehaviorsOnNCPNFE(t *testing.T) {
	// The full deviation catalog also works when the originator is P_m.
	m := 4
	base := Config{Network: dlt.NCPNFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5}, Seed: 9}
	baseOut, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range agent.DeviantCatalog {
		idx := 1
		if b.MisallocateExtraBlocks != 0 || b.TamperBlocks || b.RefuseMediation {
			idx = m - 1 // NFE originator
		}
		cfg := base
		cfg.Behaviors = make([]agent.Behavior, m)
		cfg.Behaviors[idx] = b
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		finedDeviant := out.Fines[idx] > 0
		isCooperativeShortShip := b.MisallocateExtraBlocks < 0 && !b.RefuseMediation && !b.TamperBlocks
		if isCooperativeShortShip {
			if finedDeviant {
				t.Errorf("%s: cooperative short-shipper fined on NFE", b.Name)
			}
		} else if !finedDeviant {
			t.Errorf("%s: deviant not fined on NFE", b.Name)
		}
		for i := range out.Fines {
			if i != idx && out.Fines[i] != 0 {
				t.Errorf("%s: innocent P%d fined", b.Name, i+1)
			}
		}
		if out.Utilities[idx] > baseOut.Utilities[idx]+tol {
			t.Errorf("%s: deviation profitable on NFE (%v > %v)", b.Name, out.Utilities[idx], baseOut.Utilities[idx])
		}
	}
}
