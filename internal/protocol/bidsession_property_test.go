package protocol

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
)

// TestBidReuseParityProperty is the amortization soundness property: for
// random pools (m, rates, z, network class), random per-job behaviors
// drawn from the bid-preserving strategy space, and random per-job fault
// plans, the outcomes of k jobs served from ONE BidSession (bid once,
// reuse k−1 times) are bit-identical — bids, allocation, payments, fines,
// utilities, user cost — to k fully independent protocol.Run invocations
// that each pay the full Θ(m²) Bidding phase. The economics read bids and
// meters, never transcripts or keys, so caching the bid exchange must be
// invisible to the money.
//
// Iterations run as parallel subtests so `go test -race` exercises the
// session machinery alongside the rest of the suite's concurrency.
func TestBidReuseParityProperty(t *testing.T) {
	const iterations = 24
	const jobsPerPool = 5
	for it := 0; it < iterations; it++ {
		it := it
		t.Run(fmt.Sprintf("pool%02d", it), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(5000 + it)))
			m := 2 + rng.Intn(5)
			w := make([]float64, m)
			for i := range w {
				w[i] = 0.5 + 4*rng.Float64()
			}
			network := dlt.NCPFE
			if rng.Intn(2) == 1 {
				network = dlt.NCPNFE
			}
			z := 0.05 + rng.Float64()/2

			base := Config{Network: network, Z: z, TrueW: w}
			s, err := NewBidSession(base)
			if err != nil {
				t.Fatal(err)
			}

			// One fixed behavior assignment per pool: the bid profile must
			// stay constant across the k jobs for reuse to engage at all.
			// Drawn from strategies that bid once and never terminate the
			// run: truthful and misreported bids, slack execution, payment
			// cheating. (Bidding-phase deviations force rebids by design
			// and are covered by the trigger and adversarial tests.)
			behaviors := make([]agent.Behavior, m)
			for i := range behaviors {
				switch rng.Intn(6) {
				case 0:
					behaviors[i] = agent.OverBid
				case 1:
					behaviors[i] = agent.UnderBid
				case 2:
					behaviors[i] = agent.SlowExecution
				case 3:
					behaviors[i] = agent.PaymentCheat
				}
			}

			for j := 0; j < jobsPerPool; j++ {
				job := JobConfig{
					Seed:      rng.Int63n(1 << 30),
					NBlocks:   32 * m,
					BlockSize: 16,
					Behaviors: behaviors,
				}
				// Random link faults on most jobs. JitterMax stays zero:
				// data-plane jitter draws from the same RNG stream as the
				// control-plane faults, and the two modes put different
				// traffic on the bus, so jittered timelines are not
				// comparable (payments still would be — but the assertion
				// below compares whole outcomes). Rates are kept below the
				// eviction regime; the retry budget absorbs the rest.
				if rng.Intn(4) > 0 {
					job.Faults = &bus.FaultPlan{
						Seed:      rng.Int63n(1 << 30),
						Drop:      rng.Float64() * 0.15,
						Duplicate: rng.Float64() * 0.2,
						Delay:     rng.Float64() * 0.3,
						Reorder:   rng.Float64() * 0.2,
						Corrupt:   rng.Float64() * 0.05,
					}
				}

				cfg := base
				cfg.TrueW = w
				cfg.Behaviors = behaviors
				cfg.Seed = job.Seed
				cfg.NBlocks = job.NBlocks
				cfg.BlockSize = job.BlockSize
				cfg.Faults = job.Faults

				independent, err := Run(cfg)
				if err != nil {
					t.Fatalf("job %d independent: %v", j, err)
				}
				amortized, err := s.Run(job)
				if err != nil {
					t.Fatalf("job %d amortized: %v", j, err)
				}
				if len(independent.Evictions) > 0 || len(amortized.Evictions) > 0 {
					// An eviction permanently shrinks the session pool while
					// independent runs keep retrying the full pool — the two
					// modes legitimately diverge from here. Astronomically
					// rare at these fault rates (p_drop^attempts per link).
					t.Skipf("job %d evicted a processor; pool histories diverge", j)
				}
				if wantReuse := j > 0; amortized.BidReused != wantReuse {
					t.Fatalf("job %d: BidReused = %v, want %v", j, amortized.BidReused, wantReuse)
				}

				type econ struct {
					Bids, Exec, Phi, Payments, Fines, Rewards, Utilities, WorkCost []float64
					Alloc                                                          dlt.Allocation
					UserCost, Makespan, Fine                                       float64
					Completed                                                      bool
				}
				view := func(o *Outcome) econ {
					return econ{
						Bids: o.Bids, Exec: o.Exec, Phi: o.Phi, Payments: o.Payments,
						Fines: o.Fines, Rewards: o.Rewards, Utilities: o.Utilities,
						WorkCost: o.WorkCost, Alloc: o.Alloc, UserCost: o.UserCost,
						Makespan: o.Makespan, Fine: o.FineMagnitude, Completed: o.Completed,
					}
				}
				if got, want := view(amortized), view(independent); !reflect.DeepEqual(got, want) {
					t.Fatalf("job %d: amortized outcome diverges from independent run\n got %+v\nwant %+v", j, got, want)
				}
				if !reflect.DeepEqual(amortized.Assignments, independent.Assignments) {
					t.Fatalf("job %d: block assignments diverge", j)
				}
			}
		})
	}
}
