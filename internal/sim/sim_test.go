package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New()
	var order []string
	if err := e.At(3, func() { order = append(order, "c") }); err != nil {
		t.Fatal(err)
	}
	if err := e.At(1, func() { order = append(order, "a") }); err != nil {
		t.Fatal(err)
	}
	if err := e.At(2, func() { order = append(order, "b") }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := order; got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d, want 3", e.Processed())
	}
}

func TestEngineTieBreaksInSchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.At(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("simultaneous events fired out of scheduling order: %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var trace []float64
	if err := e.At(1, func() {
		trace = append(trace, e.Now())
		if err := e.After(2, func() { trace = append(trace, e.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Errorf("trace = %v, want [1 3]", trace)
	}
}

func TestEngineRejectsPastAndInvalid(t *testing.T) {
	e := New()
	if err := e.At(1, func() {}); err != nil {
		t.Fatal(err)
	}
	for e.Step() {
	}
	if err := e.At(0.5, func() {}); err == nil {
		t.Error("scheduling into the past accepted")
	}
	if err := e.At(math.NaN(), func() {}); err == nil {
		t.Error("NaN time accepted")
	}
	if err := e.At(math.Inf(1), func() {}); err == nil {
		t.Error("infinite time accepted")
	}
	if err := e.At(2, nil); err == nil {
		t.Error("nil action accepted")
	}
	if err := e.After(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := e.After(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
}

func TestEngineSameInstantScheduling(t *testing.T) {
	e := New()
	ran := false
	if err := e.At(1, func() {
		// Scheduling at the current instant must be allowed.
		if err := e.After(0, func() { ran = true }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("same-instant event did not run")
	}
}

func TestEngineRunBound(t *testing.T) {
	e := New()
	var keepGoing func()
	keepGoing = func() {
		if err := e.After(1, keepGoing); err != nil {
			t.Error(err)
		}
	}
	if err := e.At(0, keepGoing); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err == nil {
		t.Error("unbounded self-scheduling not caught")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	s1, e1, err := r.Reserve(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 || e1 != 2 {
		t.Errorf("first reservation [%v,%v), want [0,2)", s1, e1)
	}
	// Requested earlier than the resource frees: pushed back.
	s2, e2, err := r.Reserve(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 2 || e2 != 5 {
		t.Errorf("second reservation [%v,%v), want [2,5)", s2, e2)
	}
	// Requested after it frees: granted at request time.
	s3, e3, err := r.Reserve(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 10 || e3 != 11 {
		t.Errorf("third reservation [%v,%v), want [10,11)", s3, e3)
	}
	if r.FreeAt() != 11 {
		t.Errorf("FreeAt = %v, want 11", r.FreeAt())
	}
	if _, _, err := r.Reserve(0, -1); err == nil {
		t.Error("negative duration accepted")
	}
	if _, _, err := r.Reserve(math.NaN(), 1); err == nil {
		t.Error("NaN earliest accepted")
	}
}

// Property: a random set of reservations never overlaps and is granted in
// FIFO order.
func TestQuickResourceNoOverlap(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		r := NewResource("bus")
		prevEnd := math.Inf(-1)
		for i := 0; i < n; i++ {
			start, end, err := r.Reserve(rng.Float64()*10, rng.Float64())
			if err != nil {
				return false
			}
			if start < prevEnd || end < start {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events run in non-decreasing time order regardless of the
// scheduling order.
func TestQuickEngineMonotoneTime(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%100
		e := New()
		var times []float64
		for i := 0; i < n; i++ {
			if err := e.At(rng.Float64()*100, func() { times = append(times, e.Now()) }); err != nil {
				return false
			}
		}
		if err := e.Run(0); err != nil {
			return false
		}
		return sort.Float64sAreSorted(times) && len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
