// Package sim is a minimal deterministic discrete-event engine driving
// the virtual time of the bus-network simulation: communication spans of
// length α·z, computation spans of length α·w̃, and the protocol phases
// between them. Determinism matters — two runs with the same seed must
// produce identical timelines — so simultaneous events fire in scheduling
// order.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Engine is a discrete-event executor. The zero value is not ready; use
// New.
type Engine struct {
	now     float64
	queue   eventHeap
	nextID  int
	nEvents int
}

// New returns an engine at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.nEvents }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules action to run at absolute virtual time t. Scheduling into
// the past is an error; scheduling at the current instant is allowed and
// runs after already-queued events at the same time.
func (e *Engine) At(t float64, action func()) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: invalid event time %v", t)
	}
	if t < e.now {
		return fmt.Errorf("sim: cannot schedule at %v, now is %v", t, e.now)
	}
	if action == nil {
		return errors.New("sim: nil action")
	}
	heap.Push(&e.queue, &event{time: t, seq: e.nextID, action: action})
	e.nextID++
	return nil
}

// After schedules action d time units from now; d must be non-negative.
func (e *Engine) After(d float64, action func()) error {
	if math.IsNaN(d) || d < 0 {
		return fmt.Errorf("sim: invalid delay %v", d)
	}
	return e.At(e.now+d, action)
}

// Step executes the single earliest event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.time
	e.nEvents++
	ev.action()
	return true
}

// Run executes events until the queue drains. maxEvents bounds runaway
// simulations; Run returns an error if the bound is hit.
func (e *Engine) Run(maxEvents int) error {
	for n := 0; ; n++ {
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events with %d still pending", maxEvents, len(e.queue))
		}
		if !e.Step() {
			return nil
		}
	}
}

// event is one scheduled action. seq breaks time ties deterministically in
// scheduling order.
type event struct {
	time   float64
	seq    int
	action func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource models a serially shared facility such as the one-port bus: at
// most one occupant at a time, FIFO order of reservation.
type Resource struct {
	free float64 // time the resource next becomes free
	name string
}

// NewResource names a resource; the name appears in error messages only.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Reserve books the resource for a span of the given duration starting no
// earlier than `earliest`, returning the span's [start, end). Reservations
// are granted in call order, which matches the deterministic scheduling
// order of the engine.
func (r *Resource) Reserve(earliest, duration float64) (start, end float64, err error) {
	if math.IsNaN(earliest) || math.IsNaN(duration) || duration < 0 {
		return 0, 0, fmt.Errorf("sim: invalid reservation on %s (earliest=%v, duration=%v)", r.name, earliest, duration)
	}
	start = math.Max(earliest, r.free)
	end = start + duration
	r.free = end
	return start, end, nil
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() float64 { return r.free }
