package dynamics

import (
	"math/rand"
	"testing"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// lazyFirstSlack lists slack candidates laziest-first so that ties expose
// indifference (see the tie-resolution comment in Run).
var lazyFirstSlack = []float64{2, 1.5, 1.25, 1}

var bidGrid = []float64{0.5, 0.75, 1, 1.25, 1.5, 2}

func baseConfig(rule core.PaymentRule, seed int64) Config {
	return Config{
		Network:   dlt.NCPFE,
		Z:         0.2,
		TrueW:     []float64{1, 1.5, 2, 2.5, 3},
		Rule:      rule,
		BidGrid:   bidGrid,
		SlackGrid: lazyFirstSlack,
		Rounds:    4 * 5, // four full sweeps
		Seed:      seed,
	}
}

func TestValidation(t *testing.T) {
	ok := baseConfig(core.WithVerification, 1)
	bad := []func(Config) Config{
		func(c Config) Config { c.TrueW = []float64{1}; return c },
		func(c Config) Config { c.BidGrid = nil; return c },
		func(c Config) Config { c.SlackGrid = nil; return c },
		func(c Config) Config { c.SlackGrid = []float64{0.5}; return c },
		func(c Config) Config { c.BidGrid = []float64{0}; return c },
		func(c Config) Config { c.Rounds = 0; return c },
	}
	for i, mut := range bad {
		if _, err := Run(mut(ok)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestVerifiedConvergesToTruth: under the paper's rule, best response
// lands every agent at bid factor 1 AND slack 1, from any random start.
func TestVerifiedConvergesToTruth(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		tr, err := Run(baseConfig(core.WithVerification, seed))
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged(true) {
			t.Errorf("seed %d: final state %+v not truthful", seed, tr.Final)
		}
		last := tr.Stats[len(tr.Stats)-1]
		if last.MeanBidDev != 0 || last.MeanSlack != 1 {
			t.Errorf("seed %d: final stats %+v", seed, last)
		}
	}
}

// TestUnverifiedRaceToTheBottom: without the meter, honesty collapses
// completely. An underbid claims more speed, grabs more load, and the
// realized makespan is evaluated at the (unexposed) lie, so the bonus
// only grows: every agent best-responds to the LOWEST bid factor on the
// grid. Slack is payoff-indifferent, so lazy-first tie-breaking parks it
// at the lazy cap. Verification is what anchors both knobs to the truth.
func TestUnverifiedRaceToTheBottom(t *testing.T) {
	minBid := bidGrid[0]
	for _, b := range bidGrid {
		if b < minBid {
			minBid = b
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		tr, err := Run(baseConfig(core.WithoutVerification, seed))
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range tr.Final.BidFactors {
			if b != minBid {
				t.Errorf("seed %d: agent %d bid factor %v, expected the race-to-the-bottom %v",
					seed, i, b, minBid)
			}
		}
		for i, s := range tr.Final.SlackFactors {
			if s != lazyFirstSlack[0] {
				t.Errorf("seed %d: agent %d slack %v, expected the lazy cap %v",
					seed, i, s, lazyFirstSlack[0])
			}
		}
	}
}

// TestOnePassSuffices: strategyproofness means best response against ANY
// profile is truthful, so a single sweep already fixes every bid.
func TestOnePassSuffices(t *testing.T) {
	cfg := baseConfig(core.WithVerification, 3)
	cfg.Rounds = len(cfg.TrueW) // exactly one sweep
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged(true) {
		t.Errorf("one sweep did not suffice: %+v", tr.Final)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Run(baseConfig(core.WithVerification, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(core.WithVerification, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Stats {
		if a.Stats[i] != b.Stats[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

// TestTraceShape: stats recorded per round with sensible bounds.
func TestTraceShape(t *testing.T) {
	cfg := baseConfig(core.WithVerification, 5)
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stats) != cfg.Rounds {
		t.Fatalf("%d stats for %d rounds", len(tr.Stats), cfg.Rounds)
	}
	for _, s := range tr.Stats {
		if s.MeanBidDev < 0 || s.MeanSlack < 1 || s.TruthfulBids < 0 || s.TruthfulBids > len(cfg.TrueW) {
			t.Errorf("implausible stat %+v", s)
		}
	}
}

// TestRandomInstances: convergence holds on random regime-safe instances,
// not just the fixture.
func TestRandomInstancesConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		in := core.RegimeSafeInstance(rng, dlt.NCPFE, 2+rng.Intn(5))
		cfg := Config{
			Network:   dlt.NCPFE,
			Z:         in.Z,
			TrueW:     in.W,
			Rule:      core.WithVerification,
			BidGrid:   bidGrid,
			SlackGrid: lazyFirstSlack,
			Rounds:    2 * in.M(),
			Seed:      int64(trial),
		}
		tr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged(true) {
			t.Errorf("trial %d: no convergence on %+v: %+v", trial, in, tr.Final)
		}
	}
}
