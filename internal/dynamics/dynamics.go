// Package dynamics runs best-response bidding dynamics on top of the
// DLS-BL mechanism: agents repeatedly re-optimize their bid and execution
// strategies against everyone else's current strategies. Strategyproofness
// (Theorem 3.1) says truth-telling is a dominant strategy, so the
// truthful profile is the unique fixed point and best response should
// converge to it in one pass per agent; the verification ablation says
// the execution knob loses its anchor without the meter. This package
// measures both claims instead of assuming them.
package dynamics

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// Config describes one dynamics run.
type Config struct {
	Network dlt.Network
	Z       float64
	TrueW   []float64
	// Rule selects the payment rule (the E12 ablation knob).
	Rule core.PaymentRule
	// BidGrid are the candidate bid factors b/t an updating agent
	// considers; it must contain 1 for the truthful fixed point to be
	// reachable.
	BidGrid []float64
	// SlackGrid are the candidate execution factors w̃/t (values < 1 are
	// physically impossible and rejected).
	SlackGrid []float64
	// Rounds is the number of best-response updates (one agent per
	// round, round-robin).
	Rounds int
	// Seed drives the random initial strategies.
	Seed int64
}

func (c Config) validate() error {
	if len(c.TrueW) < 2 {
		return errors.New("dynamics: need at least two agents")
	}
	if len(c.BidGrid) == 0 || len(c.SlackGrid) == 0 {
		return errors.New("dynamics: empty strategy grids")
	}
	for _, g := range c.BidGrid {
		if !(g > 0) || math.IsInf(g, 0) {
			return fmt.Errorf("dynamics: invalid bid factor %v", g)
		}
	}
	for _, s := range c.SlackGrid {
		if !(s >= 1) || math.IsInf(s, 0) {
			return fmt.Errorf("dynamics: invalid slack factor %v (must be ≥ 1)", s)
		}
	}
	if c.Rounds <= 0 {
		return errors.New("dynamics: rounds must be positive")
	}
	return nil
}

// State is the strategy profile at some instant.
type State struct {
	BidFactors   []float64
	SlackFactors []float64
}

// RoundStat summarizes the profile after one update round.
type RoundStat struct {
	Round        int
	MeanBidDev   float64 // mean |bid factor − 1|
	MeanSlack    float64 // mean slack factor
	TruthfulBids int     // agents with bid factor exactly 1
}

// Trace is the full history of a dynamics run.
type Trace struct {
	Stats []RoundStat
	Final State
}

// Converged reports whether the final profile is fully truthful in bids
// and (for the verified rule) fully full-speed.
func (tr *Trace) Converged(checkSlack bool) bool {
	for _, b := range tr.Final.BidFactors {
		if b != 1 {
			return false
		}
	}
	if checkSlack {
		for _, s := range tr.Final.SlackFactors {
			if s != 1 {
				return false
			}
		}
	}
	return true
}

// Run executes the best-response dynamics.
func Run(cfg Config) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := len(cfg.TrueW)
	rng := rand.New(rand.NewSource(cfg.Seed))

	state := State{
		BidFactors:   make([]float64, m),
		SlackFactors: make([]float64, m),
	}
	for i := 0; i < m; i++ {
		state.BidFactors[i] = cfg.BidGrid[rng.Intn(len(cfg.BidGrid))]
		state.SlackFactors[i] = cfg.SlackGrid[rng.Intn(len(cfg.SlackGrid))]
	}

	// Best-response dynamics run the mechanism rounds·|grid|² times; one
	// payment engine with reused buffers keeps the whole loop free of
	// per-run allocations.
	eng := core.NewPaymentEngine(cfg.Network, cfg.Z)
	var payOut core.Outcome
	bids := make([]float64, m)
	exec := make([]float64, m)
	utility := func(st State, agent int) (float64, error) {
		for j := 0; j < m; j++ {
			bids[j] = cfg.TrueW[j] * st.BidFactors[j]
			exec[j] = math.Max(cfg.TrueW[j], cfg.TrueW[j]*st.SlackFactors[j])
		}
		if err := eng.RunInto(bids, exec, cfg.Rule, &payOut); err != nil {
			return 0, err
		}
		return payOut.Utility[agent], nil
	}

	tr := &Trace{}
	for round := 0; round < cfg.Rounds; round++ {
		i := round % m
		bestU := math.Inf(-1)
		bestBid, bestSlack := state.BidFactors[i], state.SlackFactors[i]
		for _, bf := range cfg.BidGrid {
			for _, sf := range cfg.SlackGrid {
				cand := state
				cand.BidFactors = append([]float64(nil), state.BidFactors...)
				cand.SlackFactors = append([]float64(nil), state.SlackFactors...)
				cand.BidFactors[i] = bf
				cand.SlackFactors[i] = sf
				u, err := utility(cand, i)
				if err != nil {
					return nil, err
				}
				// Ties resolve to the EARLIEST grid candidate, so the
				// grid order encodes the agent's lexicographic
				// preference among payoff-equal strategies. Listing lazy
				// strategies first exposes indifference: under the
				// unverified rule slacking costs nothing, and the agent
				// will happily sit at the laziest tied option.
				if u > bestU+1e-12 {
					bestU = u
					bestBid, bestSlack = bf, sf
				}
			}
		}
		state.BidFactors[i] = bestBid
		state.SlackFactors[i] = bestSlack

		stat := RoundStat{Round: round}
		for j := 0; j < m; j++ {
			stat.MeanBidDev += math.Abs(state.BidFactors[j] - 1)
			stat.MeanSlack += state.SlackFactors[j]
			if state.BidFactors[j] == 1 {
				stat.TruthfulBids++
			}
		}
		stat.MeanBidDev /= float64(m)
		stat.MeanSlack /= float64(m)
		tr.Stats = append(tr.Stats, stat)
	}
	tr.Final = state
	return tr, nil
}
