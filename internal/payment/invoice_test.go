package payment

import (
	"math"
	"strings"
	"testing"
)

func TestInvoiceTotalsAndString(t *testing.T) {
	inv := Invoice{
		Payer: "user",
		Lines: []InvoiceLine{
			{Account: "P1", Memo: "Q1", Amount: 4},
			{Account: "P2", Memo: "Q2", Amount: -1.5},
		},
	}
	if inv.Total() != 2.5 {
		t.Errorf("total = %v, want 2.5", inv.Total())
	}
	s := inv.String()
	for _, want := range []string{"invoice to user", "P1", "P2", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestInvoiceValidate(t *testing.T) {
	good := Invoice{Payer: "user", Lines: []InvoiceLine{{Account: "P1", Amount: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Invoice{
		{},
		{Payer: "user"},
		{Payer: "user", Lines: []InvoiceLine{{Account: "", Amount: 1}}},
		{Payer: "user", Lines: []InvoiceLine{{Account: "user", Amount: 1}}},
		{Payer: "user", Lines: []InvoiceLine{{Account: "P1", Amount: math.NaN()}}},
		{Payer: "user", Lines: []InvoiceLine{{Account: "P1", Amount: math.Inf(1)}}},
	}
	for i, inv := range bad {
		if err := inv.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, inv)
		}
	}
}

func TestPayInvoiceFlows(t *testing.T) {
	l, err := NewLedger("user", "P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	inv := Invoice{
		Payer: "user",
		Lines: []InvoiceLine{
			{Account: "P1", Memo: "Q1", Amount: 4},
			{Account: "P2", Memo: "refund", Amount: -1.5},
		},
	}
	if err := l.PayInvoice(inv); err != nil {
		t.Fatal(err)
	}
	for account, want := range map[string]float64{"user": -2.5, "P1": 4, "P2": -1.5} {
		got, err := l.Balance(account)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s = %v, want %v", account, got, want)
		}
	}
	if l.NetDrift() != 0 {
		t.Errorf("drift %v", l.NetDrift())
	}
	// Unknown payee aborts.
	if err := l.PayInvoice(Invoice{Payer: "user", Lines: []InvoiceLine{{Account: "ghost", Amount: 1}}}); err == nil {
		t.Error("unknown payee accepted")
	}
	// Invalid invoice rejected before any transfer.
	before := len(l.History())
	if err := l.PayInvoice(Invoice{Payer: "user"}); err == nil {
		t.Error("empty invoice accepted")
	}
	if len(l.History()) != before {
		t.Error("invalid invoice moved money")
	}
}
