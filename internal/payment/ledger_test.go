package payment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpenAndTransfer(t *testing.T) {
	l, err := NewLedger("user", "P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer("user", "P1", 10, "payment Q1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer("user", "P2", 2.5, "payment Q2"); err != nil {
		t.Fatal(err)
	}
	for account, want := range map[string]float64{"user": -12.5, "P1": 10, "P2": 2.5} {
		got, err := l.Balance(account)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s balance = %v, want %v", account, got, want)
		}
	}
	if drift := l.NetDrift(); drift != 0 {
		t.Errorf("net drift = %v", drift)
	}
	h := l.History()
	if len(h) != 2 || h[0].Memo != "payment Q1" || h[1].Amount != 2.5 {
		t.Errorf("history = %+v", h)
	}
}

func TestTransferValidation(t *testing.T) {
	l, err := NewLedger("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer("a", "b", -1, ""); err == nil {
		t.Error("negative amount accepted")
	}
	if err := l.Transfer("a", "b", math.NaN(), ""); err == nil {
		t.Error("NaN amount accepted")
	}
	if err := l.Transfer("a", "b", math.Inf(1), ""); err == nil {
		t.Error("infinite amount accepted")
	}
	if err := l.Transfer("a", "a", 1, ""); err == nil {
		t.Error("self transfer accepted")
	}
	if err := l.Transfer("ghost", "b", 1, ""); err == nil {
		t.Error("unknown source accepted")
	}
	if err := l.Transfer("a", "ghost", 1, ""); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := l.Transfer("a", "b", 0, "zero ok"); err != nil {
		t.Errorf("zero transfer rejected: %v", err)
	}
}

func TestOpenValidation(t *testing.T) {
	l, err := NewLedger("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Open(""); err == nil {
		t.Error("empty account accepted")
	}
	if err := l.Open("a"); err == nil {
		t.Error("duplicate account accepted")
	}
	if _, err := NewLedger("x", "x"); err == nil {
		t.Error("duplicate in constructor accepted")
	}
	if _, err := l.Balance("ghost"); err == nil {
		t.Error("unknown balance query accepted")
	}
}

func TestAccountsSorted(t *testing.T) {
	l, err := NewLedger("zeta", "alpha", "mid")
	if err != nil {
		t.Fatal(err)
	}
	got := l.Accounts()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("accounts = %v, want %v", got, want)
		}
	}
}

func TestHistoryIsCopy(t *testing.T) {
	l, _ := NewLedger("a", "b")
	if err := l.Transfer("a", "b", 1, "x"); err != nil {
		t.Fatal(err)
	}
	h := l.History()
	h[0].Amount = 999
	if l.History()[0].Amount != 1 {
		t.Error("History exposes internal storage")
	}
}

// Property: conservation — after any sequence of random transfers, the
// sum of all balances is ~0 and each balance equals inflow − outflow.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		accounts := []string{"user", "P1", "P2", "P3", "referee"}
		l, err := NewLedger(accounts...)
		if err != nil {
			return false
		}
		flows := make(map[string]float64)
		n := int(nRaw) % 200
		for i := 0; i < n; i++ {
			from := accounts[rng.Intn(len(accounts))]
			to := accounts[rng.Intn(len(accounts))]
			if from == to {
				continue
			}
			amt := rng.Float64() * 100
			if err := l.Transfer(from, to, amt, "rand"); err != nil {
				return false
			}
			flows[from] -= amt
			flows[to] += amt
		}
		if math.Abs(l.NetDrift()) > 1e-9 {
			return false
		}
		for _, a := range accounts {
			b, err := l.Balance(a)
			if err != nil {
				return false
			}
			if math.Abs(b-flows[a]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
