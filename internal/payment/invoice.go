package payment

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Invoice is the bill the referee forwards to the payment infrastructure
// at the end of the Computing Payments phase: one line per processor with
// its payment Q_i ("The bill is presented to the user who remits
// payment"). Negative lines are refunds the account owes the payer — a
// processor whose bonus went negative pays back.
type Invoice struct {
	Payer string
	Lines []InvoiceLine
}

// InvoiceLine is one payee entry.
type InvoiceLine struct {
	Account string
	Memo    string
	Amount  float64 // may be negative: the account refunds the payer
}

// Total returns the payer's net obligation Σ amounts.
func (inv Invoice) Total() float64 {
	var t float64
	for _, l := range inv.Lines {
		t += l.Amount
	}
	return t
}

// Validate checks the invoice is executable.
func (inv Invoice) Validate() error {
	if inv.Payer == "" {
		return errors.New("payment: invoice has no payer")
	}
	if len(inv.Lines) == 0 {
		return errors.New("payment: invoice has no lines")
	}
	for i, l := range inv.Lines {
		if l.Account == "" {
			return fmt.Errorf("payment: line %d has no account", i)
		}
		if l.Account == inv.Payer {
			return fmt.Errorf("payment: line %d pays the payer itself", i)
		}
		if math.IsNaN(l.Amount) || math.IsInf(l.Amount, 0) {
			return fmt.Errorf("payment: line %d has invalid amount %v", i, l.Amount)
		}
	}
	return nil
}

// String renders the bill for humans.
func (inv Invoice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invoice to %s:\n", inv.Payer)
	for _, l := range inv.Lines {
		fmt.Fprintf(&b, "  %-8s %12.6f  %s\n", l.Account, l.Amount, l.Memo)
	}
	fmt.Fprintf(&b, "  %-8s %12.6f\n", "total", inv.Total())
	return b.String()
}

// PayInvoice executes every line on the ledger: positive amounts flow
// payer → account, negative amounts account → payer. Execution is atomic
// in the sense that the invoice is validated up front, but individual
// transfers that fail (unknown account) abort mid-way — callers create
// all accounts beforehand.
func (l *Ledger) PayInvoice(inv Invoice) error {
	if err := inv.Validate(); err != nil {
		return err
	}
	for _, line := range inv.Lines {
		if line.Amount >= 0 {
			if err := l.Transfer(inv.Payer, line.Account, line.Amount, line.Memo); err != nil {
				return err
			}
		} else {
			if err := l.Transfer(line.Account, inv.Payer, -line.Amount, line.Memo); err != nil {
				return err
			}
		}
	}
	return nil
}
