// Package payment implements the payment infrastructure DLS-BL-NCP
// assumes: accounts for the user, the processors and the referee's fine
// escrow, with double-entry transfers so money is conserved — every fine
// collected is exactly redistributed and every payment the user remits
// lands on some processor's balance.
package payment

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Entry is one executed transfer.
type Entry struct {
	From   string
	To     string
	Amount float64
	Memo   string
}

// Ledger is a double-entry book over named accounts. Balances are signed:
// the user account naturally goes negative as it pays out (it represents
// external funds), and a fined processor may end below zero.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]float64
	history  []Entry
}

// NewLedger opens a ledger with the given accounts at zero balance.
func NewLedger(accounts ...string) (*Ledger, error) {
	l := &Ledger{balances: make(map[string]float64, len(accounts))}
	for _, a := range accounts {
		if err := l.Open(a); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Open adds an account at zero balance.
func (l *Ledger) Open(account string) error {
	if account == "" {
		return errors.New("payment: empty account name")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.balances[account]; dup {
		return fmt.Errorf("payment: account %q already open", account)
	}
	l.balances[account] = 0
	return nil
}

// Transfer moves amount from one account to another. Zero-amount
// transfers are recorded (they document a zero payment); negative or
// non-finite amounts are rejected — to charge someone, transfer in the
// other direction.
func (l *Ledger) Transfer(from, to string, amount float64, memo string) error {
	if math.IsNaN(amount) || math.IsInf(amount, 0) || amount < 0 {
		return fmt.Errorf("payment: invalid amount %v", amount)
	}
	if from == to {
		return fmt.Errorf("payment: self-transfer on %q", from)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[from]; !ok {
		return fmt.Errorf("payment: unknown account %q", from)
	}
	if _, ok := l.balances[to]; !ok {
		return fmt.Errorf("payment: unknown account %q", to)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	l.history = append(l.history, Entry{From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// Balance returns an account's balance.
func (l *Ledger) Balance(account string) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.balances[account]
	if !ok {
		return 0, fmt.Errorf("payment: unknown account %q", account)
	}
	return b, nil
}

// Accounts returns the open account names, sorted.
func (l *Ledger) Accounts() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.balances))
	for a := range l.balances {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// History returns a copy of all executed transfers in order.
func (l *Ledger) History() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.history...)
}

// NetDrift returns Σ balances, which double-entry bookkeeping keeps at
// exactly zero up to floating-point error; tests assert it stays below
// tolerance.
func (l *Ledger) NetDrift() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s float64
	for _, b := range l.balances {
		s += b
	}
	return s
}
