package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dlsbl/internal/dlt"
)

// TestRunRoundsDegenerate: rounds ≤ 1 delegates to the single-round
// engine, so the outcome is bit-identical to Run.
func TestRunRoundsDegenerate(t *testing.T) {
	m := Mechanism{Network: dlt.NCPFE, Z: 0.2}
	bids := []float64{3, 2, 4, 5}
	exec := []float64{3, 2.5, 4, 5}
	want, err := m.Run(bids, exec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rounds := range []int{0, 1} {
		got, err := m.RunRounds(bids, exec, rounds, dlt.EqualRounds, WithVerification)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rounds=%d diverges from single-round Run", rounds)
		}
	}
}

// TestRunRoundsIdentities: the multi-round mechanism keeps the structural
// identities of Definition 3.1 — utility equals bonus, payment equals
// compensation plus bonus, user cost is the payment total — and truthful
// full-speed execution yields a non-negative bonus for every agent
// (voluntary participation in the installment class).
func TestRunRoundsIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, net := range []dlt.Network{dlt.CP, dlt.NCPFE} {
		for trial := 0; trial < 25; trial++ {
			n := 2 + rng.Intn(10)
			bids := make([]float64, n)
			for i := range bids {
				bids[i] = 1 + 2*rng.Float64()
			}
			m := Mechanism{Network: net, Z: 0.05 + 0.2*rng.Float64()}
			rounds := 2 + rng.Intn(6)
			out, err := m.RunRounds(bids, TruthfulExec(bids), rounds, dlt.GeometricRounds, WithVerification)
			if err != nil {
				t.Fatalf("%v n=%d R=%d: %v", net, n, rounds, err)
			}
			sum := 0.0
			for i := 0; i < n; i++ {
				if math.Abs(out.Utility[i]-out.Bonus[i]) > 1e-12 {
					t.Errorf("%v n=%d R=%d: U[%d]=%v but B[%d]=%v", net, n, rounds, i, out.Utility[i], i, out.Bonus[i])
				}
				if math.Abs(out.Payment[i]-(out.Compensation[i]+out.Bonus[i])) > 1e-12 {
					t.Errorf("%v n=%d R=%d: Q[%d] != C+B", net, n, rounds, i)
				}
				if out.Bonus[i] < -1e-9 {
					t.Errorf("%v n=%d R=%d: truthful agent %d has negative bonus %v", net, n, rounds, i, out.Bonus[i])
				}
				if math.Abs(out.Compensation[i]-out.Alloc[i]*bids[i]) > 1e-12 {
					t.Errorf("%v n=%d R=%d: C[%d] != α·w̃", net, n, rounds, i)
				}
				sum += out.Payment[i]
			}
			if math.Abs(sum-out.UserCost) > 1e-9 {
				t.Errorf("%v n=%d R=%d: user cost %v, payments sum %v", net, n, rounds, out.UserCost, sum)
			}
		}
	}
}

// TestRunRoundsSlowExecutionCostsBonus: executing slower than bid shrinks
// the realized-makespan term and with it the bonus — the verification
// incentive survives in the installment class.
func TestRunRoundsSlowExecutionCostsBonus(t *testing.T) {
	m := Mechanism{Network: dlt.NCPFE, Z: 0.1}
	bids := []float64{3, 2, 4, 5, 2.5}
	honest, err := m.RunRounds(bids, TruthfulExec(bids), 4, dlt.EqualRounds, WithVerification)
	if err != nil {
		t.Fatal(err)
	}
	slow := TruthfulExec(bids)
	slow[2] *= 1.4
	lazy, err := m.RunRounds(bids, slow, 4, dlt.EqualRounds, WithVerification)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Bonus[2] >= honest.Bonus[2] {
		t.Errorf("slow execution did not shrink the bonus: %v -> %v", honest.Bonus[2], lazy.Bonus[2])
	}
	if _, err := m.RunRounds(bids[:1], bids[:1], 4, dlt.EqualRounds, WithVerification); err == nil {
		t.Error("lone agent accepted")
	}
	if _, err := m.RunRounds(bids, []float64{1, -1, 1, 1, 1}, 4, dlt.EqualRounds, WithVerification); err == nil {
		t.Error("negative execution value accepted")
	}
}
